// Facts: immutable tuples with monotone time tags.
#pragma once

#include <cstdint>
#include <vector>

#include "support/value.hpp"
#include "wm/schema.hpp"

namespace parulel {

/// Monotone fact identifier, doubling as the OPS5 "time tag": larger id
/// means more recently asserted. Ids are never reused within a run, so a
/// FactId uniquely names one assert event — which is what refraction and
/// the recency-based conflict-resolution strategies need.
using FactId = std::uint64_t;
constexpr FactId kInvalidFact = 0;  // valid ids start at 1

/// One working-memory element. Slots are immutable; `modify` is
/// retract-plus-assert producing a fresh FactId (OPS5 semantics).
struct Fact {
  FactId id = kInvalidFact;
  TemplateId tmpl = kInvalidTemplate;
  std::vector<Value> slots;

  /// Structural key (template + slots), ignoring the time tag.
  std::size_t content_hash() const {
    std::size_t h = std::hash<std::uint32_t>{}(tmpl);
    for (const auto& v : slots) h = hash_combine(h, v.hash());
    return h;
  }

  bool same_content(const Fact& other) const {
    return tmpl == other.tmpl && slots == other.slots;
  }
};

}  // namespace parulel
