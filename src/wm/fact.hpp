// Facts: immutable tuples with monotone time tags.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/value.hpp"
#include "wm/schema.hpp"

namespace parulel {

/// Monotone fact identifier, doubling as the OPS5 "time tag": larger id
/// means more recently asserted. Ids are never reused within a run, so a
/// FactId uniquely names one assert event — which is what refraction and
/// the recency-based conflict-resolution strategies need.
using FactId = std::uint64_t;
constexpr FactId kInvalidFact = 0;  // valid ids start at 1

/// Dense 32-bit handle of one fact record inside a FactStore (see
/// wm/fact_store.hpp). Rows are assigned in assert order and never
/// reused, so row order == id order == recency order; unlike FactIds,
/// rows are contiguous (reserved-id tombstones get no row), which is
/// what lets alpha memories and join indexes store 4-byte handles.
using FactRow = std::uint32_t;
constexpr FactRow kNoFactRow = 0xffffffffu;

/// Canonical structural hash of fact content (template + slots), time
/// tag excluded. The single definition shared by the store's content
/// index, the checkpoint/journal fingerprint digests and the
/// distributed global fingerprint — these must agree bit-for-bit, so
/// none of them may re-derive the recipe locally.
inline std::size_t fact_content_hash(TemplateId tmpl,
                                     std::span<const Value> slots) {
  std::size_t h = std::hash<std::uint32_t>{}(tmpl);
  for (const Value& v : slots) h = hash_combine(h, v.hash());
  return h;
}

/// Re-mix a content hash before XOR-accumulating it into an
/// order-independent fingerprint (structured hash pairs would cancel
/// under plain XOR). Shared by WorkingMemory::content_fingerprint and
/// DistributedEngine::global_fingerprint, which equivalence tests and
/// journal batch records compare across engines.
inline std::uint64_t fingerprint_mix(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

/// One working-memory element as an owned record. The live store keeps
/// facts columnar (FactStore) and hands out FactViews; this struct
/// survives only at serialization boundaries — exact snapshots, the
/// journal codec — where a self-contained (id, tmpl, slots) tuple is
/// the wire/disk shape. Slots are immutable; `modify` is retract-plus-
/// assert producing a fresh FactId (OPS5 semantics).
struct Fact {
  FactId id = kInvalidFact;
  TemplateId tmpl = kInvalidTemplate;
  std::vector<Value> slots;

  /// Structural key (template + slots), ignoring the time tag.
  std::size_t content_hash() const { return fact_content_hash(tmpl, slots); }

  bool same_content(const Fact& other) const {
    return tmpl == other.tmpl && slots == other.slots;
  }
};

}  // namespace parulel
