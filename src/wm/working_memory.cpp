#include "wm/working_memory.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "support/error.hpp"

namespace parulel {

WorkingMemory::WorkingMemory(const Schema& schema) : schema_(schema) {
  extents_.resize(schema.size());
}

FactId WorkingMemory::assert_fact(TemplateId tmpl, std::vector<Value> slots) {
  assert(tmpl < schema_.size());
  if (static_cast<int>(slots.size()) != schema_.at(tmpl).arity()) {
    throw RuntimeError("assert arity mismatch for template '" +
                       std::string("?") + "'");
  }
  // Set semantics: absorb duplicates of alive facts.
  Fact probe{0, tmpl, std::move(slots)};
  const std::size_t h = probe.content_hash();
  auto& group = content_index_.group_for(h);
  for (const FactId other : group) {
    if (facts_[other - 1].same_content(probe)) return kInvalidFact;
  }

  const FactId id = next_id_++;
  probe.id = id;
  facts_.push_back(std::move(probe));
  alive_.push_back(true);
  extent_pos_.push_back(extents_[tmpl].size());
  extents_[tmpl].push_back(id);
  group.push_back(id);
  ++alive_count_;
  pending_.added.push_back(id);
  return id;
}

FactId WorkingMemory::assert_fact_at(FactId id, TemplateId tmpl,
                                     std::vector<Value> slots) {
  assert(tmpl < schema_.size());
  if (id <= high_water()) {
    throw RuntimeError("assert_fact_at: id not above high-water mark");
  }
  if (static_cast<int>(slots.size()) != schema_.at(tmpl).arity()) {
    throw RuntimeError("assert_fact_at: arity mismatch");
  }
  Fact probe{0, tmpl, std::move(slots)};
  const std::size_t h = probe.content_hash();
  auto& group = content_index_.group_for(h);
  for (const FactId other : group) {
    if (facts_[other - 1].same_content(probe)) {
      throw RuntimeError("assert_fact_at: duplicate alive content");
    }
  }

  reserve_ids(id - 1);
  probe.id = id;
  next_id_ = id + 1;
  facts_.push_back(std::move(probe));
  alive_.push_back(true);
  extent_pos_.push_back(extents_[tmpl].size());
  extents_[tmpl].push_back(id);
  group.push_back(id);
  ++alive_count_;
  pending_.added.push_back(id);
  return id;
}

void WorkingMemory::reserve_ids(FactId high_water) {
  while (next_id_ <= high_water) {
    // Permanent tombstone: never alive, never in an extent or the
    // content index, so no code path beyond fact()/alive() can see it.
    facts_.push_back(Fact{next_id_, kInvalidTemplate, {}});
    alive_.push_back(false);
    extent_pos_.push_back(0);
    ++next_id_;
  }
}

bool WorkingMemory::retract(FactId id) {
  if (id == kInvalidFact || id >= next_id_ || !alive_[id - 1]) return false;
  alive_[id - 1] = false;
  --alive_count_;

  const Fact& f = facts_[id - 1];
  // Swap-remove from extent; fix the moved fact's position.
  auto& ext = extents_[f.tmpl];
  const std::size_t pos = extent_pos_[id - 1];
  const FactId moved = ext.back();
  ext[pos] = moved;
  extent_pos_[moved - 1] = pos;
  ext.pop_back();

  // Remove from content index (groups hold alive ids only).
  auto* g = content_index_.find(f.content_hash());
  g->erase(std::find(g->begin(), g->end(), id));

  // A fact asserted and retracted within the same (undrained) delta
  // cancels out: matchers must never see it at all. Only ids above the
  // last drain's high-water mark can be pending additions.
  if (id > drain_floor_) {
    if (auto it =
            std::find(pending_.added.begin(), pending_.added.end(), id);
        it != pending_.added.end()) {
      pending_.added.erase(it);
      return true;
    }
  }
  pending_.removed.push_back(id);
  return true;
}

FactId WorkingMemory::modify(FactId id,
                             const std::vector<std::pair<int, Value>>& updates) {
  if (id == kInvalidFact || id >= next_id_ || !alive_[id - 1]) {
    return kInvalidFact;
  }
  std::vector<Value> slots = facts_[id - 1].slots;
  for (const auto& [slot, value] : updates) {
    assert(slot >= 0 && slot < static_cast<int>(slots.size()));
    slots[static_cast<std::size_t>(slot)] = value;
  }
  const TemplateId tmpl = facts_[id - 1].tmpl;
  retract(id);
  return assert_fact(tmpl, std::move(slots));
}

bool WorkingMemory::alive(FactId id) const {
  return id != kInvalidFact && id < next_id_ && alive_[id - 1];
}

std::optional<FactId> WorkingMemory::find(
    TemplateId tmpl, const std::vector<Value>& slots) const {
  Fact probe{0, tmpl, slots};
  if (const auto* g = content_index_.find(probe.content_hash())) {
    for (const FactId id : *g) {
      if (facts_[id - 1].same_content(probe)) return id;
    }
  }
  return std::nullopt;
}

const std::vector<FactId>& WorkingMemory::extent(TemplateId tmpl) const {
  assert(tmpl < extents_.size());
  return extents_[tmpl];
}

Delta WorkingMemory::drain_delta() {
  Delta out = std::move(pending_);
  pending_ = Delta{};
  drain_floor_ = next_id_ - 1;
  return out;
}

std::string WorkingMemory::to_string(FactId id,
                                     const SymbolTable& symbols) const {
  const Fact& f = fact(id);
  const TemplateDef& def = schema_.at(f.tmpl);
  std::ostringstream os;
  os << "(" << symbols.name(def.name);
  for (std::size_t i = 0; i < f.slots.size(); ++i) {
    os << " (" << symbols.name(def.slot_names[i]) << " "
       << f.slots[i].to_string(symbols) << ")";
  }
  os << ")";
  return os.str();
}

std::uint64_t WorkingMemory::content_fingerprint() const {
  // XOR of per-fact content hashes is order-independent.
  std::uint64_t fp = 0x5bd1e995u;
  for (std::size_t i = 0; i < facts_.size(); ++i) {
    if (!alive_[i]) continue;
    // Re-mix each content hash so XOR doesn't cancel structured pairs.
    std::uint64_t h = facts_[i].content_hash();
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    fp ^= h;
  }
  return fp;
}

}  // namespace parulel
