#include "wm/working_memory.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "support/error.hpp"

namespace parulel {

namespace {

/// Per-slot hashes + canonical content hash in one pass. Must agree
/// bit-for-bit with fact_content_hash(); the slot hashes feed the
/// store's cached hash column.
std::size_t hash_slots(TemplateId tmpl, std::span<const Value> slots,
                       std::vector<std::size_t>& slot_hashes) {
  slot_hashes.clear();
  std::size_t h = std::hash<std::uint32_t>{}(tmpl);
  for (const Value& v : slots) {
    const std::size_t vh = v.hash();
    slot_hashes.push_back(vh);
    h = hash_combine(h, vh);
  }
  return h;
}

}  // namespace

WorkingMemory::WorkingMemory(const Schema& schema) : schema_(schema) {
  extents_.resize(schema.size());
}

FactId WorkingMemory::assert_fact(TemplateId tmpl, std::vector<Value> slots) {
  assert(tmpl < schema_.size());
  if (static_cast<int>(slots.size()) != schema_.at(tmpl).arity()) {
    throw RuntimeError("assert arity mismatch for template '" +
                       std::string("?") + "'");
  }
  // Set semantics: absorb duplicates of alive facts.
  const std::size_t h = hash_slots(tmpl, slots, hash_scratch_);
  auto& group = content_index_.group_for(h);
  for (const FactRow other : group) {
    if (store_.view_row(other).same_content(tmpl, slots)) return kInvalidFact;
  }

  const FactId id = next_id_++;
  const FactRow row = store_.append(id, tmpl, slots, hash_scratch_, h);
  extent_pos_.push_back(extents_[tmpl].size());
  extents_[tmpl].push_back(id);
  group.push_back(row);
  ++alive_count_;
  pending_.added.push_back(id);
  return id;
}

FactId WorkingMemory::assert_fact_at(FactId id, TemplateId tmpl,
                                     std::vector<Value> slots) {
  assert(tmpl < schema_.size());
  if (id <= high_water()) {
    throw RuntimeError("assert_fact_at: id not above high-water mark");
  }
  if (static_cast<int>(slots.size()) != schema_.at(tmpl).arity()) {
    throw RuntimeError("assert_fact_at: arity mismatch");
  }
  const std::size_t h = hash_slots(tmpl, slots, hash_scratch_);
  auto& group = content_index_.group_for(h);
  for (const FactRow other : group) {
    if (store_.view_row(other).same_content(tmpl, slots)) {
      throw RuntimeError("assert_fact_at: duplicate alive content");
    }
  }

  reserve_ids(id - 1);
  next_id_ = id + 1;
  const FactRow row = store_.append(id, tmpl, slots, hash_scratch_, h);
  extent_pos_.push_back(extents_[tmpl].size());
  extents_[tmpl].push_back(id);
  group.push_back(row);
  ++alive_count_;
  pending_.added.push_back(id);
  return id;
}

void WorkingMemory::reserve_ids(FactId high_water) {
  while (next_id_ <= high_water) {
    // Permanent tombstone: no fact record at all — never alive, never in
    // an extent or the content index, so no code path beyond alive() can
    // see it (view() asserts against it in debug builds).
    store_.append_reserved(next_id_);
    extent_pos_.push_back(0);
    ++next_id_;
  }
}

bool WorkingMemory::retract(FactId id) {
  if (id == kInvalidFact || id >= next_id_) return false;
  const FactRow row = store_.row_of(id);
  if (row == kNoFactRow || !store_.alive_row(row)) return false;
  store_.set_alive(row, false);
  --alive_count_;

  // Swap-remove from extent; fix the moved fact's position.
  auto& ext = extents_[store_.tmpl_of(row)];
  const std::size_t pos = extent_pos_[id - 1];
  const FactId moved = ext.back();
  ext[pos] = moved;
  extent_pos_[moved - 1] = pos;
  ext.pop_back();

  // Remove from content index (groups hold alive rows only).
  auto* g = content_index_.find(store_.content_hash_of(row));
  g->erase(std::find(g->begin(), g->end(), row));

  // A fact asserted and retracted within the same (undrained) delta
  // cancels out: matchers must never see it at all. Only ids above the
  // last drain's high-water mark can be pending additions.
  if (id > drain_floor_) {
    if (auto it =
            std::find(pending_.added.begin(), pending_.added.end(), id);
        it != pending_.added.end()) {
      pending_.added.erase(it);
      return true;
    }
  }
  pending_.removed.push_back(id);
  return true;
}

FactId WorkingMemory::modify(FactId id,
                             const std::vector<std::pair<int, Value>>& updates) {
  if (!alive(id)) return kInvalidFact;
  const FactView fact = view(id);
  std::vector<Value> slots = fact.copy_slots();
  for (const auto& [slot, value] : updates) {
    assert(slot >= 0 && slot < static_cast<int>(slots.size()));
    slots[static_cast<std::size_t>(slot)] = value;
  }
  const TemplateId tmpl = fact.tmpl();
  retract(id);
  return assert_fact(tmpl, std::move(slots));
}

bool WorkingMemory::alive(FactId id) const {
  if (id == kInvalidFact || id >= next_id_) return false;
  const FactRow row = store_.row_of(id);
  return row != kNoFactRow && store_.alive_row(row);
}

std::optional<FactId> WorkingMemory::find(
    TemplateId tmpl, const std::vector<Value>& slots) const {
  if (const auto* g = content_index_.find(fact_content_hash(tmpl, slots))) {
    for (const FactRow row : *g) {
      const FactView fact = store_.view_row(row);
      if (fact.same_content(tmpl, slots)) return fact.id();
    }
  }
  return std::nullopt;
}

const std::vector<FactId>& WorkingMemory::extent(TemplateId tmpl) const {
  assert(tmpl < extents_.size());
  return extents_[tmpl];
}

Delta WorkingMemory::drain_delta() {
  Delta out = std::move(pending_);
  pending_ = Delta{};
  drain_floor_ = next_id_ - 1;
  return out;
}

std::string WorkingMemory::to_string(FactId id,
                                     const SymbolTable& symbols) const {
  const FactView fact = view(id);
  const TemplateDef& def = schema_.at(fact.tmpl());
  std::ostringstream os;
  os << "(" << symbols.name(def.name);
  for (std::uint32_t i = 0; i < fact.slot_count(); ++i) {
    os << " (" << symbols.name(def.slot_names[i]) << " "
       << fact.slot(i).to_string(symbols) << ")";
  }
  os << ")";
  return os.str();
}

std::uint64_t WorkingMemory::content_fingerprint() const {
  // XOR of re-mixed per-fact content hashes is order-independent.
  std::uint64_t fp = 0x5bd1e995u;
  for (std::size_t row = 0; row < store_.rows(); ++row) {
    if (!store_.alive_row(static_cast<FactRow>(row))) continue;
    fp ^= fingerprint_mix(store_.content_hash_of(static_cast<FactRow>(row)));
  }
  return fp;
}

}  // namespace parulel
