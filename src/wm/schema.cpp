#include "wm/schema.hpp"

#include "support/error.hpp"

namespace parulel {

TemplateId Schema::define(Symbol name, std::vector<Symbol> slot_names) {
  if (by_name_.contains(name)) {
    throw ParseError("duplicate template definition");
  }
  for (std::size_t i = 0; i < slot_names.size(); ++i) {
    for (std::size_t j = i + 1; j < slot_names.size(); ++j) {
      if (slot_names[i] == slot_names[j]) {
        throw ParseError("duplicate slot name in template");
      }
    }
  }
  const auto id = static_cast<TemplateId>(defs_.size());
  defs_.push_back(TemplateDef{name, std::move(slot_names)});
  by_name_.emplace(name, id);
  return id;
}

std::optional<TemplateId> Schema::find(Symbol name) const {
  if (auto it = by_name_.find(name); it != by_name_.end()) return it->second;
  return std::nullopt;
}

}  // namespace parulel
