// Working memory: the fact store the engines and matchers share.
//
// Design points:
//  - *Set semantics.* Asserting a fact whose (template, slots) content
//    already exists alive is absorbed (returns kInvalidFact). This is
//    CLIPS's default and is what makes saturation workloads (transitive
//    closure etc.) terminate.
//  - *Stable storage.* Fact records are kept (tombstoned, not freed) for
//    the lifetime of the store, so matchers may hold FactIds across
//    retraction and still read slot values while draining deltas.
//  - *Handles, not records.* Consumers read facts through FactView
//    handles from view(id); the store underneath is columnar
//    (wm/fact_store.hpp) and its layout is not part of the API. There
//    is deliberately no `const Fact&` / fact-array escape hatch.
//  - *Delta log.* Every mutation appends to the pending delta, which the
//    engine hands to its matcher once per cycle; `drain_delta()` moves it
//    out.
//  - *Single-writer.* WM mutation is only ever performed by the engine's
//    merge phase on one thread; parallel RHS execution writes to per-
//    thread DeltaBuffers (see engine/), never to WM directly.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/flat_group_map.hpp"
#include "wm/fact_store.hpp"
#include "wm/schema.hpp"

namespace parulel {

/// The changes applied to working memory since the matcher last ran.
struct Delta {
  std::vector<FactId> added;
  std::vector<FactId> removed;

  bool empty() const { return added.empty() && removed.empty(); }
  void clear() {
    added.clear();
    removed.clear();
  }
};

class WorkingMemory {
 public:
  explicit WorkingMemory(const Schema& schema);

  /// Assert a fact. Returns its new FactId, or kInvalidFact when an alive
  /// fact with identical content absorbed it (set semantics).
  FactId assert_fact(TemplateId tmpl, std::vector<Value> slots);

  /// Retract by id. Returns false when the id is unknown or already dead.
  bool retract(FactId id);

  /// Assert a fact under a caller-chosen id — the journal-recovery path
  /// (service/journal.hpp), which must rebuild a store whose FactIds
  /// match the pre-crash run exactly (clients hold ids across restarts,
  /// and replay determinism depends on the time-tag order). `id` must be
  /// above high_water(); skipped ids in between become permanent
  /// tombstones, exactly as if those facts had lived and been retracted.
  /// Unlike assert_fact, a live duplicate is an error (the journal never
  /// records absorbed asserts), so this throws RuntimeError instead of
  /// absorbing.
  FactId assert_fact_at(FactId id, TemplateId tmpl, std::vector<Value> slots);

  /// Advance the id counter so high_water() == `high_water`, tombstoning
  /// the skipped ids. Recovery calls this last so post-restore asserts
  /// continue the pre-crash numbering.
  void reserve_ids(FactId high_water);

  /// OPS5 modify: retract `id` and assert a copy with `slot` replaced.
  /// Returns the new FactId (or kInvalidFact if absorbed / id dead).
  FactId modify(FactId id, const std::vector<std::pair<int, Value>>& updates);

  /// Typed view of the fact record for `id`; valid for alive and
  /// retracted (tombstoned) facts. Debug builds assert the id names a
  /// materialized record — reserved-id tombstones have none. Inline:
  /// this is the per-candidate load of every join loop.
  FactView view(FactId id) const {
    assert(id != kInvalidFact && id < next_id_ && "view: unknown FactId");
    assert(store_.row_of(id) != kNoFactRow &&
           "view: reserved id has no fact record");
    return store_.view_row(store_.row_of(id));
  }

  /// The columnar store behind the views, for code that iterates rows
  /// or caches column base pointers (the compiled VM). Read-only.
  const FactStore& store() const { return store_; }

  bool alive(FactId id) const;

  /// Find the alive fact with this exact content, if any.
  std::optional<FactId> find(TemplateId tmpl,
                             const std::vector<Value>& slots) const;

  /// All alive facts of a template (unordered).
  const std::vector<FactId>& extent(TemplateId tmpl) const;

  /// Count of alive facts across all templates.
  std::size_t alive_count() const { return alive_count_; }

  /// Largest id handed out so far.
  FactId high_water() const { return next_id_ - 1; }

  /// Move out the pending delta (added/removed since last drain).
  Delta drain_delta();

  /// Peek at the pending delta without consuming it.
  const Delta& pending_delta() const { return pending_; }

  const Schema& schema() const { return schema_; }

  /// Render a fact as "(tmpl (slot val) ...)" for diagnostics.
  std::string to_string(FactId id, const SymbolTable& symbols) const;

  /// A stable fingerprint of the alive fact *contents* (ids excluded):
  /// two stores with the same alive facts hash equal regardless of the
  /// order or time tags of assertion. Used by determinism/equivalence
  /// tests between engines.
  std::uint64_t content_fingerprint() const;

 private:
  const Schema& schema_;
  FactStore store_;
  std::vector<std::vector<FactId>> extents_;  // per template, alive only
  std::vector<std::size_t> extent_pos_;       // fact id - 1 -> index in extent
  // content hash -> alive fact rows (set-semantics duplicate detection).
  FlatGroupMap<FactRow> content_index_;
  FactId next_id_ = 1;
  FactId drain_floor_ = 0;  ///< ids at or below this predate the pending delta
  std::size_t alive_count_ = 0;
  Delta pending_;
  std::vector<std::size_t> hash_scratch_;  ///< per-slot hashes of one assert
};

}  // namespace parulel
