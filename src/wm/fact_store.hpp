// FactStore: cache-conscious struct-of-arrays storage for facts.
//
// The previous store kept one heap-allocated `std::vector<Value>` per
// fact, so every slot test in the match layer chased two pointers and
// landed on a cache line private to that fact. Here all fact state
// lives in flat columns:
//
//   per row:   id, template, cached content hash, alive flag, and the
//              row's offset into the slot arenas (prefix array)
//   per slot:  kind byte, 64-bit payload image, cached value hash —
//              three parallel arenas appended in assert order
//
// Rows are dense 32-bit handles (FactRow) assigned in assert order and
// never reused; the id -> row map is a flat array indexed by id - 1
// (FactIds are consecutive), with kNoFactRow marking reserved-id
// tombstones that never materialized a record. Row order == id order,
// so recency comparisons and candidate-enumeration determinism carry
// over from the id-based store unchanged.
//
// Consumers never touch the columns directly: WorkingMemory::view(id)
// returns a FactView — a 16-byte handle resolving slot reads straight
// into the arenas. Retracted facts keep their row (stable storage), so
// views of tombstoned facts stay readable while matchers drain deltas.
//
// Cached hashes: the per-slot value hash is computed once at assert
// (the content hash already needs it) and reused by every alpha-memory
// index insertion and join-key composition afterwards — the
// "hash once per fact, not once per accepting memory" rule that used
// to require threading scratch buffers through the match layer.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "wm/fact.hpp"

namespace parulel {

class AlphaMemory;
class FactStore;

/// Read-only view of one fact record inside a FactStore. A trivially
/// copyable handle (store pointer + row + cached slot-arena offset):
/// cheap to pass by value, resolves every accessor with one arena or
/// column load. Valid as long as the store exists — including for
/// retracted (tombstoned) facts, per the stable-storage contract.
class FactView {
 public:
  FactView() = default;

  inline FactId id() const;
  inline TemplateId tmpl() const;
  inline std::uint32_t slot_count() const;
  inline Value slot(std::size_t i) const;
  /// Cached Value::hash() of slot i (computed once at assert).
  inline std::size_t slot_hash(std::size_t i) const;
  /// Cached canonical content hash (see fact_content_hash).
  inline std::uint64_t content_hash() const;
  inline bool alive() const;
  FactRow row() const { return row_; }

  inline bool same_content(TemplateId tmpl,
                           std::span<const Value> slots) const;
  inline bool same_content(const FactView& other) const;

  /// Materialize the slots as an owned vector (serialization paths).
  inline std::vector<Value> copy_slots() const;

 private:
  friend class FactStore;
  // Alpha memories resolve pure-group representatives through the
  // inserted fact's store (no store reference of their own).
  friend class AlphaMemory;
  FactView(const FactStore* store, FactRow row, std::uint32_t begin)
      : store_(store), row_(row), begin_(begin) {}

  const FactStore* store_ = nullptr;
  FactRow row_ = kNoFactRow;
  std::uint32_t begin_ = 0;  ///< first slot's offset into the arenas
};

class FactStore {
 public:
  /// Append the record for `id` (must be the next consecutive id) and
  /// return its row. `slot_hashes` are the per-slot Value::hash()
  /// values and `content_hash` the canonical structural hash — the
  /// caller (WorkingMemory) computes both during duplicate detection,
  /// so the store never rehashes.
  FactRow append(FactId id, TemplateId tmpl, std::span<const Value> slots,
                 std::span<const std::size_t> slot_hashes,
                 std::uint64_t content_hash) {
    assert(id == row_of_.size() + 1 && "ids must be appended in order");
    const FactRow row = static_cast<FactRow>(id_.size());
    id_.push_back(id);
    tmpl_.push_back(tmpl);
    chash_.push_back(content_hash);
    alive_.push_back(1);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      kind_pool_.push_back(static_cast<std::uint8_t>(slots[i].kind()));
      payload_pool_.push_back(slots[i].raw_payload());
      hash_pool_.push_back(slot_hashes[i]);
    }
    slot_begin_.push_back(static_cast<std::uint32_t>(kind_pool_.size()));
    row_of_.push_back(row);
    return row;
  }

  /// Advance the id sequence past `id` without materializing a record —
  /// a reserved-id tombstone (journal recovery). Such ids have no row;
  /// only alive()/row_of() may be asked about them.
  void append_reserved(FactId id) {
    assert(id == row_of_.size() + 1 && "ids must be appended in order");
    (void)id;
    row_of_.push_back(kNoFactRow);
  }

  void set_alive(FactRow row, bool alive) {
    alive_[row] = alive ? 1 : 0;
  }

  /// Row for `id`, or kNoFactRow for reserved-id tombstones.
  /// Precondition: 1 <= id <= ids().
  FactRow row_of(FactId id) const {
    return row_of_[static_cast<std::size_t>(id - 1)];
  }

  FactView view_row(FactRow row) const {
    return FactView(this, row, slot_begin_[row]);
  }

  FactId id_of(FactRow row) const { return id_[row]; }
  TemplateId tmpl_of(FactRow row) const { return tmpl_[row]; }
  std::uint64_t content_hash_of(FactRow row) const { return chash_[row]; }
  bool alive_row(FactRow row) const { return alive_[row] != 0; }

  /// Count of materialized rows (excludes reserved-id tombstones).
  std::size_t rows() const { return id_.size(); }
  /// Count of ids handed out (== WorkingMemory high-water mark).
  std::size_t ids() const { return row_of_.size(); }

  // Column base pointers for the compiled VM, which caches them across
  // a whole join program (stable while no facts are asserted — matchers
  // never mutate working memory).
  const std::uint32_t* slot_begin_data() const { return slot_begin_.data(); }
  const std::uint8_t* kind_data() const { return kind_pool_.data(); }
  const std::uint64_t* payload_data() const { return payload_pool_.data(); }
  const std::uint64_t* slot_hash_data() const { return hash_pool_.data(); }
  const FactId* id_data() const { return id_.data(); }

  /// Slot base offset of `row` into the arenas (what view_row caches).
  std::uint32_t slot_begin(FactRow row) const { return slot_begin_[row]; }

  Value slot_at(std::uint32_t offset) const {
    return Value::from_raw(static_cast<ValueKind>(kind_pool_[offset]),
                           payload_pool_[offset]);
  }
  std::size_t slot_hash_at(std::uint32_t offset) const {
    return hash_pool_[offset];
  }

 private:
  friend class FactView;

  // Per-row columns (index = FactRow).
  std::vector<FactId> id_;
  std::vector<TemplateId> tmpl_;
  std::vector<std::uint64_t> chash_;   ///< cached content hashes
  std::vector<std::uint8_t> alive_;
  /// rows() + 1 prefix offsets into the arenas: row r's slots live at
  /// [slot_begin_[r], slot_begin_[r + 1]). The leading 0 keeps slot
  /// addressing branch-free in the VM's candidate loops.
  std::vector<std::uint32_t> slot_begin_{0};

  // Slot arenas, appended in assert order.
  std::vector<std::uint8_t> kind_pool_;
  std::vector<std::uint64_t> payload_pool_;
  std::vector<std::uint64_t> hash_pool_;  ///< cached Value::hash per slot

  /// id - 1 -> row (FactIds are consecutive, so a flat array beats any
  /// hash map here); kNoFactRow for reserved-id tombstones.
  std::vector<FactRow> row_of_;
};

inline FactId FactView::id() const { return store_->id_[row_]; }
inline TemplateId FactView::tmpl() const { return store_->tmpl_[row_]; }
inline bool FactView::alive() const { return store_->alive_[row_] != 0; }

inline std::uint32_t FactView::slot_count() const {
  return store_->slot_begin_[row_ + 1] - begin_;
}

inline Value FactView::slot(std::size_t i) const {
  const std::size_t o = begin_ + i;
  return Value::from_raw(static_cast<ValueKind>(store_->kind_pool_[o]),
                         store_->payload_pool_[o]);
}

inline std::size_t FactView::slot_hash(std::size_t i) const {
  return store_->hash_pool_[begin_ + i];
}

inline std::uint64_t FactView::content_hash() const {
  return store_->chash_[row_];
}

inline bool FactView::same_content(TemplateId tmpl,
                                   std::span<const Value> slots) const {
  if (this->tmpl() != tmpl || slot_count() != slots.size()) return false;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (slot(i) != slots[i]) return false;
  }
  return true;
}

inline bool FactView::same_content(const FactView& other) const {
  const std::uint32_t n = slot_count();
  if (tmpl() != other.tmpl() || n != other.slot_count()) return false;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (slot(i) != other.slot(i)) return false;
  }
  return true;
}

inline std::vector<Value> FactView::copy_slots() const {
  const std::uint32_t n = slot_count();
  std::vector<Value> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(slot(i));
  return out;
}

}  // namespace parulel
