// Fact templates (classes): named slots over which patterns match.
//
// Mirrors CLIPS `deftemplate` / OPS5 `literalize`: a template has a name
// and an ordered list of named slots; every fact of that template is a
// fixed-arity tuple of Values.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/symbol_table.hpp"

namespace parulel {

/// Dense index of a template within its Schema.
using TemplateId = std::uint32_t;
constexpr TemplateId kInvalidTemplate = static_cast<TemplateId>(-1);

/// One template definition.
struct TemplateDef {
  Symbol name = 0;
  std::vector<Symbol> slot_names;

  /// Slot position by name, or nullopt.
  std::optional<int> slot_index(Symbol slot) const {
    for (std::size_t i = 0; i < slot_names.size(); ++i) {
      if (slot_names[i] == slot) return static_cast<int>(i);
    }
    return std::nullopt;
  }

  int arity() const { return static_cast<int>(slot_names.size()); }
};

/// The set of templates a program defines. Append-only.
class Schema {
 public:
  /// Define a template; raises ParseError on duplicate names.
  TemplateId define(Symbol name, std::vector<Symbol> slot_names);

  /// Lookup by name.
  std::optional<TemplateId> find(Symbol name) const;

  const TemplateDef& at(TemplateId id) const { return defs_[id]; }
  std::size_t size() const { return defs_.size(); }

 private:
  std::vector<TemplateDef> defs_;
  std::unordered_map<Symbol, TemplateId> by_name_;
};

}  // namespace parulel
