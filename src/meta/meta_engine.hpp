// Meta-rule evaluation: the redaction fixpoint.
//
// Once per object-level cycle, the PARULEL engine hands the eligible
// conflict set to this evaluator. It reifies the instantiations into a
// private meta working memory, matches the program's defmetarule set
// against them, and fires *all* meta instantiations per round,
// set-oriented like the object level. Each (redact ?i) retracts the
// reified fact for object instantiation ?i, which can enable or disable
// further meta matches; rounds repeat until no new redaction occurs.
//
// Termination: a redacted instantiation's meta fact is withdrawn and
// never re-asserted within the fixpoint, and meta-level refraction stops
// repeat firings, so the redacted set grows monotonically and the loop
// ends after at most |eligible| productive rounds.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "lang/program.hpp"
#include "match/conflict_set.hpp"
#include "wm/working_memory.hpp"

namespace parulel {

namespace obs {
class MetricsRegistry;
}  // namespace obs

struct MetaOutcome {
  std::vector<InstId> redacted;     ///< object-level instantiation ids
  std::uint64_t meta_firings = 0;
  std::uint64_t rounds = 0;
};

class MetaEngine {
 public:
  explicit MetaEngine(const Program& program) : program_(program) {}

  /// True when the program has meta rules at all.
  bool active() const { return !program_.meta_rules.empty(); }

  /// Run the redaction fixpoint over `eligible` (ascending InstIds).
  /// `output`, when non-null, receives meta-rule printout text.
  /// `metrics`, when non-null, accumulates meta.rounds / meta.firings /
  /// meta.redactions counters across fixpoints (obs layer).
  MetaOutcome run(const WorkingMemory& object_wm, const ConflictSet& cs,
                  const std::vector<InstId>& eligible,
                  std::ostream* output = nullptr,
                  obs::MetricsRegistry* metrics = nullptr) const;

 private:
  const Program& program_;
};

}  // namespace parulel
