// Reification: object-level instantiations as meta-level facts.
//
// PARULEL's programmable conflict resolution works by exposing the cycle's
// conflict set to meta-rules as ordinary facts. For an object rule
//
//   (defrule assign ... binds ?g ?s ... => ...)
//
// the analyzer synthesized a meta template
//
//   (deftemplate inst-assign (slot id) (slot g) (slot s))
//
// and this module asserts one `inst-assign` fact per eligible
// instantiation, with `id` = the instantiation's conflict-set id and each
// variable slot = its bound value.
#pragma once

#include <vector>

#include "lang/program.hpp"
#include "match/conflict_set.hpp"
#include "wm/working_memory.hpp"

namespace parulel {

/// Assert one meta fact per instantiation id in `eligible` (ascending
/// order for determinism). Returns, aligned with `eligible`, the meta
/// FactId of each reified instantiation (so redactions can retract them).
std::vector<FactId> reify_conflict_set(const Program& program,
                                       const WorkingMemory& object_wm,
                                       const ConflictSet& cs,
                                       const std::vector<InstId>& eligible,
                                       WorkingMemory& meta_wm);

}  // namespace parulel
