#include "meta/reify.hpp"

#include "match/instantiation.hpp"

namespace parulel {

std::vector<FactId> reify_conflict_set(const Program& program,
                                       const WorkingMemory& object_wm,
                                       const ConflictSet& cs,
                                       const std::vector<InstId>& eligible,
                                       WorkingMemory& meta_wm) {
  std::vector<FactId> meta_ids;
  meta_ids.reserve(eligible.size());
  std::vector<Value> env;
  for (InstId id : eligible) {
    const Instantiation& inst = cs.get(id);
    const CompiledRule& rule = program.rules[inst.rule];
    rebuild_env(
        rule, inst.facts,
        [&](FactId f) { return object_wm.view(f); }, env);

    std::vector<Value> slots;
    slots.reserve(1 + static_cast<std::size_t>(rule.num_lhs_vars));
    slots.push_back(Value::integer(static_cast<std::int64_t>(id)));
    for (int v = 0; v < rule.num_lhs_vars; ++v) {
      slots.push_back(env[static_cast<std::size_t>(v)]);
    }
    // Distinct ids make every meta fact unique, so set-semantics
    // absorption cannot trigger here.
    meta_ids.push_back(
        meta_wm.assert_fact(program.inst_templates[inst.rule],
                            std::move(slots)));
  }
  return meta_ids;
}

}  // namespace parulel
