#include "meta/meta_engine.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "match/treat.hpp"
#include "meta/reify.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace parulel {

MetaOutcome MetaEngine::run(const WorkingMemory& object_wm,
                            const ConflictSet& cs,
                            const std::vector<InstId>& eligible,
                            std::ostream* output,
                            obs::MetricsRegistry* metrics) const {
  MetaOutcome outcome;
  (void)metrics;  // referenced only when PARULEL_OBS_ENABLED
  if (!active() || eligible.empty()) return outcome;

  WorkingMemory meta_wm(program_.meta_schema);
  const std::vector<FactId> meta_facts =
      reify_conflict_set(program_, object_wm, cs, eligible, meta_wm);

  // Object InstId -> meta FactId, for retraction on redact.
  std::unordered_map<InstId, FactId> fact_of_inst;
  fact_of_inst.reserve(eligible.size());
  for (std::size_t i = 0; i < eligible.size(); ++i) {
    fact_of_inst.emplace(eligible[i], meta_facts[i]);
  }

  TreatMatcher matcher(program_.meta_rules, program_.meta_alphas,
                       program_.meta_schema.size());
  std::unordered_set<InstId> redacted;

  for (;;) {
    ++outcome.rounds;
    matcher.apply_delta(meta_wm, meta_wm.drain_delta());
    ConflictSet& meta_cs = matcher.conflict_set();
    const std::vector<InstId> to_fire = meta_cs.alive_ids();
    if (to_fire.empty()) break;

    // Fire the whole meta conflict set (set-oriented), collecting the
    // round's redactions.
    std::vector<InstId> newly_redacted;
    std::vector<Value> env;
    for (InstId mid : to_fire) {
      const Instantiation& minst = meta_cs.get(mid);
      const CompiledRule& mrule = program_.meta_rules[minst.rule];
      rebuild_env(
          mrule, minst.facts,
          [&](FactId f) { return meta_wm.view(f); }, env);
      for (const auto& action : mrule.actions) {
        switch (action.kind) {
          case CompiledAction::Kind::Redact: {
            const Value v = action.args[0].eval(env);
            if (!v.is_int()) {
              throw RuntimeError("redact target must be an instantiation id");
            }
            const auto target = static_cast<InstId>(v.as_int());
            if (fact_of_inst.contains(target) &&
                redacted.insert(target).second) {
              newly_redacted.push_back(target);
            }
            break;
          }
          case CompiledAction::Kind::Bind: {
            const Value v = action.args[0].eval(env);
            if (static_cast<std::size_t>(action.bind_var) >= env.size()) {
              env.resize(static_cast<std::size_t>(action.bind_var) + 1);
            }
            env[static_cast<std::size_t>(action.bind_var)] = v;
            break;
          }
          case CompiledAction::Kind::Printout: {
            if (output) {
              for (const auto& item : action.args) {
                *output << item.eval(env).to_string(*program_.symbols);
              }
              *output << '\n';
            }
            break;
          }
          default:
            throw RuntimeError(
                "meta-rules may only redact, bind, and printout");
        }
      }
      meta_cs.mark_fired(mid);
      ++outcome.meta_firings;
    }

    if (newly_redacted.empty()) {
      // All firings were printout-only; refraction guarantees progress,
      // so loop once more — the next round's conflict set shrinks.
      continue;
    }
    // Withdraw the redacted instantiations' meta facts; the next round's
    // matches can no longer be justified by them.
    std::sort(newly_redacted.begin(), newly_redacted.end());
    for (InstId target : newly_redacted) {
      meta_wm.retract(fact_of_inst.at(target));
      outcome.redacted.push_back(target);
    }
  }

  std::sort(outcome.redacted.begin(), outcome.redacted.end());
  PARULEL_OBS_ONLY(if (metrics) {
    metrics->add("meta.rounds", outcome.rounds);
    metrics->add("meta.firings", outcome.meta_firings);
    metrics->add("meta.redactions", outcome.redacted.size());
  })
  return outcome;
}

}  // namespace parulel
