#include "compile/bytecode.hpp"

#include <sstream>

#include "lang/program.hpp"

namespace parulel {

const char* opcode_name(OpCode op) {
  switch (op) {
    case OpCode::TestConst: return "test-const";
    case OpCode::TestIntra: return "test-intra";
    case OpCode::EmitAlpha: return "emit-alpha";
    case OpCode::IterFixed: return "iter-fixed";
    case OpCode::IterScan: return "iter-scan";
    case OpCode::IterProbe: return "iter-probe";
    case OpCode::Next: return "next";
    case OpCode::NextVerify: return "next-verify";
    case OpCode::TestEq: return "test-eq";
    case OpCode::Bind: return "bind";
    case OpCode::Guard: return "guard";
    case OpCode::GuardCmp: return "guard-cmp";
    case OpCode::PinLoad: return "pin-load";
    case OpCode::PinTest: return "pin-test";
    case OpCode::Quant: return "quant";
    case OpCode::Emit: return "emit";
    case OpCode::Halt: return "halt";
  }
  return "?";
}

std::size_t CodeImage::byte_size() const {
  return code.size() * sizeof(Instr) + consts.size() * sizeof(Value) +
         eqs.size() * sizeof(EqRef) +
         key_regs.size() * sizeof(std::int32_t) +
         key_lists.size() * sizeof(KeyList) +
         eq_lists.size() * sizeof(KeyList) +
         quants.size() * sizeof(QuantCheck);
}

namespace {

/// Render one instruction with only its meaningful operands.
void render_instr(std::ostream& os, const Instr& in) {
  os << opcode_name(in.op);
  switch (in.op) {
    case OpCode::TestConst:
      os << " slot=" << in.a << " const=" << in.b << " fail=@" << in.c;
      break;
    case OpCode::TestIntra:
      os << " slots=(" << in.a << "," << in.b << ") fail=@" << in.c;
      break;
    case OpCode::EmitAlpha:
      os << " alpha=" << in.a;
      break;
    case OpCode::IterFixed:
      os << " level=" << in.a;
      break;
    case OpCode::IterScan:
      os << " level=" << in.a << " alpha=" << in.b;
      break;
    case OpCode::IterProbe:
      os << " level=" << in.a << " alpha=" << in.b << " index=" << in.c
         << " key=#" << in.d;
      break;
    case OpCode::Next:
      os << " level=" << in.a << " done=@" << in.b << " ce=" << in.c;
      break;
    case OpCode::NextVerify:
      os << " level=" << in.a << " done=@" << in.b << " ce=" << in.c
         << " eqs=#" << in.d;
      break;
    case OpCode::TestEq:
      os << " slot=" << in.a << " reg=" << in.b << " fail=@" << in.c;
      break;
    case OpCode::Bind:
      os << " slot=" << in.a << " reg=" << in.b;
      if (in.c) os << " hashed";
      break;
    case OpCode::Guard:
      os << " expr=" << in.a << " fail=@" << in.b;
      break;
    case OpCode::GuardCmp:
      os << " reg=" << in.a << ((in.d & 2) ? " const=" : " reg=") << in.b
         << " fail=@" << in.c << ((in.d & 1) ? " neq" : " eq");
      break;
    case OpCode::PinLoad:
      os << " reg=" << in.a << " pivot-slot=" << in.b;
      if (in.c) os << " hashed";
      break;
    case OpCode::PinTest:
      os << " reg=" << in.a << " pin=" << in.b << " fail=@" << in.c;
      break;
    case OpCode::Quant:
      os << " check=" << in.a << " fail=@" << in.b;
      break;
    case OpCode::Emit:
      os << " rule=" << in.a << " resume=@" << in.b;
      break;
    case OpCode::Halt:
      break;
  }
}

/// Render a [entry, Halt] range of the code array.
void render_range(std::ostream& os, const CodeImage& image,
                  std::int32_t entry) {
  for (std::size_t pc = static_cast<std::size_t>(entry);
       pc < image.code.size(); ++pc) {
    os << "  @" << pc << ": ";
    render_instr(os, image.code[pc]);
    os << "\n";
    if (image.code[pc].op == OpCode::Halt) break;
  }
}

}  // namespace

std::string CodeImage::listing(const Program& program) const {
  std::ostringstream os;
  const SymbolTable& syms = *program.symbols;

  os << "; parulel compiled image: " << code.size() << " instrs, "
     << byte_size() << " bytes\n";
  os << "; pools: consts=" << consts.size() << " exprs=" << exprs.size()
     << " eqs=" << eqs.size() << " keys=" << key_lists.size()
     << " verifies=" << eq_lists.size() << " quants=" << quants.size()
     << "\n\n";

  if (!consts.empty()) {
    os << "const-pool:\n";
    for (std::size_t i = 0; i < consts.size(); ++i) {
      os << "  " << i << ": " << consts[i].to_string(syms) << "\n";
    }
    os << "\n";
  }
  if (!key_lists.empty()) {
    os << "key-pool:\n";
    for (std::size_t i = 0; i < key_lists.size(); ++i) {
      os << "  #" << i << ": regs(";
      for (std::uint32_t k = 0; k < key_lists[i].count; ++k) {
        if (k) os << " ";
        os << key_regs[key_lists[i].offset + k];
      }
      os << ")" << (key_lists[i].full ? " covers" : "") << "\n";
    }
    os << "\n";
  }
  if (!eq_lists.empty()) {
    os << "verify-pool:\n";
    for (std::size_t i = 0; i < eq_lists.size(); ++i) {
      os << "  #" << i << ": eqs(";
      for (std::uint32_t k = 0; k < eq_lists[i].count; ++k) {
        if (k) os << " ";
        os << eqs[eq_lists[i].offset + k].slot << "=r"
           << eqs[eq_lists[i].offset + k].reg;
      }
      os << ")\n";
    }
    os << "\n";
  }
  if (!quants.empty()) {
    os << "quant-pool:\n";
    for (std::size_t i = 0; i < quants.size(); ++i) {
      const QuantCheck& q = quants[i];
      os << "  " << i << ": " << (q.exists ? "exists" : "not")
         << " alpha=" << q.alpha << " index=" << q.index_handle << " eqs(";
      for (std::uint32_t k = 0; k < q.eq_count; ++k) {
        if (k) os << " ";
        os << eqs[q.eq_offset + k].slot << "=r" << eqs[q.eq_offset + k].reg;
      }
      os << ")\n";
    }
    os << "\n";
  }

  for (TemplateId t = 0; t < net_entry.size(); ++t) {
    if (net_entry[t] < 0) continue;
    os << "net " << syms.name(program.schema.at(t).name) << ":  ; @"
       << net_entry[t] << "\n";
    render_range(os, *this, net_entry[t]);
    os << "\n";
  }

  for (std::size_t r = 0; r < rules.size(); ++r) {
    const std::string_view rule_name = syms.name(program.rules[r].name);
    for (std::size_t p = 0; p < rules[r].derive.size(); ++p) {
      os << "derive " << rule_name << "/" << p << ":  ; @"
         << rules[r].derive[p] << "\n";
      render_range(os, *this, rules[r].derive[p]);
      os << "\n";
    }
    for (std::size_t n = 0; n < rules[r].rematch.size(); ++n) {
      os << "rematch " << rule_name << "/neg" << n << ":  ; @"
         << rules[r].rematch[n] << "\n";
      render_range(os, *this, rules[r].rematch[n]);
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace parulel
