// Lowering pass: analyzed rules + join plans -> bytecode image.
//
// The compiler consumes exactly what the interpreted TREAT matcher
// consumes — the analyzer's CompiledRules/AlphaSpecs and the join
// planner's RulePlans — and emits programs that enumerate in the same
// order the interpreter does. That order-preservation is the whole
// correctness story: the VM produces instantiations in the identical
// sequence, so conflict-set contents, InstIds, and therefore engine
// fingerprints match the interpreter exactly (the differential sweep in
// tests/test_random_programs.cpp holds it to that).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "compile/bytecode.hpp"
#include "lang/program.hpp"
#include "match/join.hpp"

namespace parulel {

struct CompileStats;

/// Lower a rule set into a code image. `plans` must come from
/// build_join_plans over the same rules (the matcher's JoinEngine
/// provides it); index handles in the plans are baked into probe
/// instructions, so the image is only meaningful against an AlphaStore
/// that registered the same indexes. Fills the codegen fields of
/// `stats` when non-null.
CodeImage compile_rules(std::span<const CompiledRule> rules,
                        std::span<const AlphaSpec> alphas,
                        std::size_t template_count,
                        const std::vector<RulePlan>& plans,
                        CompileStats* stats = nullptr);

/// Compile `program`'s object-level rules standalone and render the
/// listing (the CLI's --compile-dump). Deterministic: equal programs
/// produce byte-identical listings.
std::string compile_listing(const Program& program);

}  // namespace parulel
