// Bytecode for compiled rule programs.
//
// The compiler (compile/compiler.hpp) lowers an analyzed rule set into
// one flat instruction array holding three program families:
//
//   - a discrimination net per template: the fused alpha tests of every
//     pattern shape, arranged as a DFA-style trie so shapes with common
//     test prefixes run those tests once;
//   - a derive program per (rule, positive position): the rule's
//     seminaive join (DerivePlan) flattened into specialized iterate/
//     test/bind/guard instructions with the join loops unrolled per
//     level;
//   - a rematch program per (rule, quantified CE): the constrained
//     re-derivation that runs when a (not ...) blocker leaves or an
//     (exists ...) witness arrives, with the blocker's join key pinned
//     into registers above the rule's variable frame.
//
// Instructions are fixed-width (opcode + four int32 operands); variable
// -length payloads — literals, guard expressions, verify lists, probe
// key lists, quantifier checks — live in side pools referenced by
// index. The image is a pure value type: it owns copies of everything
// it references except alpha memories and the conflict set, which the
// VM (compile/vm.hpp) supplies at run time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lang/expr.hpp"
#include "support/value.hpp"

namespace parulel {

struct Program;

/// VM opcodes. Keep in sync with the label table in compile/vm.cpp and
/// the name table in bytecode.cpp.
enum class OpCode : std::uint8_t {
  // Discrimination net (operate on the fact under classification).
  TestConst,   ///< a=slot, b=const-pool idx, c=fail pc
  TestIntra,   ///< a=slot, b=slot, c=fail pc
  EmitAlpha,   ///< a=alpha id: the fact passes this alpha's tests

  // Join loops (operate on per-level iteration frames).
  IterFixed,   ///< a=level: iterate {pivot fact}
  IterScan,    ///< a=level, b=alpha: iterate the whole alpha memory
  IterProbe,   ///< a=level, b=alpha, c=index handle, d=key-list id
  Next,        ///< a=level, b=exhausted pc, c=CE position for facts[c]
  NextVerify,  ///< Next fused with an eq-verify list: a=level,
               ///< b=exhausted pc, c=CE position, d=eq-list id. Skips
               ///< candidates failing any (slot, reg) equality without
               ///< re-dispatching — the join inner loop as one handler.
  TestEq,      ///< a=slot, b=env reg, c=fail pc (cur.slots[a] == env[b])
  Bind,        ///< a=slot, b=env reg, c=1 if reg keys a probe (cache hash)
  Guard,       ///< a=expr-pool idx, b=fail pc
  GuardCmp,    ///< Specialized structural eq/neq guard: a=env reg,
               ///< b=env reg (or const-pool idx when d bit1 is set),
               ///< c=fail pc, d bit0=1 for neq. The common `(neq ?x ?y)`
               ///< test as one compare instead of an expr-tree walk.
  PinLoad,     ///< a=env reg, b=pivot slot, c=1 if reg keys a probe
  PinTest,     ///< a=env reg, b=env reg, c=fail pc (env[a] == env[b])
  Quant,       ///< a=quant-pool idx, b=fail pc
  Emit,        ///< a=rule, b=resume pc: facts[]/env[] form an inst

  Halt,
};

/// Number of distinct opcodes (size of the dispatch tables).
constexpr std::size_t kOpCount = static_cast<std::size_t>(OpCode::Halt) + 1;

/// Export name of an opcode ("test-const", "iter-probe", ...).
const char* opcode_name(OpCode op);

/// One fixed-width instruction. Unused operands stay 0.
struct Instr {
  OpCode op = OpCode::Halt;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t c = 0;
  std::int32_t d = 0;
};

/// (slot, env register) pair: verify lists for probes and quantifier
/// checks re-check real slot equality behind the hash index.
struct EqRef {
  std::int32_t slot = 0;
  std::int32_t reg = 0;
};

/// A probe key: env registers whose values key a hash index, in the
/// index's canonical slot order. Slice of CodeImage::key_regs.
struct KeyList {
  std::uint32_t offset = 0;
  std::uint32_t count = 0;
  /// Probe keys only: 1 when the indexed slots cover the probe's whole
  /// verify list, so a canonical-key match on a pure group at probe
  /// time proves every candidate passes and NextVerify can skip its
  /// per-candidate eq loop (see AlphaMemory::probe_group_canon).
  std::uint32_t full = 0;
};

/// One quantified-CE satisfaction check ((not ...) / (exists ...)),
/// shared between the derive and rematch programs of a rule.
struct QuantCheck {
  std::uint32_t alpha = 0;
  bool exists = false;           ///< true: needs >=1 match; false: none
  std::int32_t index_handle = -1;
  std::uint32_t eq_offset = 0;   ///< verify list in CodeImage::eqs
  std::uint32_t eq_count = 0;
  std::uint32_t key_offset = 0;  ///< probe key in CodeImage::key_regs
  std::uint32_t key_count = 0;
};

/// Entry points of one rule's programs.
struct RuleCode {
  /// derive[p]: seminaive join with positive position p fixed to the
  /// pivot fact. Aligned with CompiledRule::positives.
  std::vector<std::int32_t> derive;
  /// rematch[n]: pinned re-derivation for quantified CE n. Aligned with
  /// CompiledRule::negatives.
  std::vector<std::int32_t> rematch;
};

/// A compiled code image: flat code plus the side pools it references.
/// Value type; independent of any live matcher state.
struct CodeImage {
  std::vector<Instr> code;
  std::vector<Value> consts;
  std::vector<CompiledExpr> exprs;   ///< guard fragments (deep copies)
  std::vector<EqRef> eqs;
  std::vector<std::int32_t> key_regs;
  std::vector<KeyList> key_lists;
  std::vector<KeyList> eq_lists;  ///< NextVerify verify lists, into eqs
  std::vector<QuantCheck> quants;

  /// net_entry[tmpl]: discrimination-net entry pc, -1 when no pattern
  /// mentions the template.
  std::vector<std::int32_t> net_entry;
  /// Per-rule derive/rematch entry points (index = RuleId).
  std::vector<RuleCode> rules;

  // VM sizing, computed at codegen time so the interpreter can
  // preallocate every runtime buffer once.
  std::int32_t env_size = 0;     ///< max vars + pin registers of any rule
  std::int32_t max_levels = 0;   ///< deepest join nesting
  std::int32_t max_positives = 0;
  std::int32_t max_key = 0;      ///< widest probe key

  /// Total bytes of the serialized image (code + pools).
  std::size_t byte_size() const;

  /// Deterministic human-readable listing (the --compile-dump format):
  /// pools, then the net per template, then each rule's programs, with
  /// jump targets as absolute pcs. `program` supplies rule/template
  /// names; pass the same program the image was compiled from.
  std::string listing(const Program& program) const;
};

}  // namespace parulel
