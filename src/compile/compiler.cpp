#include "compile/compiler.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <unordered_map>

#include "obs/stats.hpp"

namespace parulel {
namespace {

/// One fused alpha test: a constant check or an intra-fact slot
/// equality, in the canonical order the net trie is built over.
struct NetTest {
  bool intra = false;
  std::int32_t a = 0;
  std::int32_t b = 0;
  Value value;

  bool operator==(const NetTest& o) const {
    return intra == o.intra && a == o.a && b == o.b &&
           (intra || value == o.value);
  }
};

/// Canonical test sequence of one alpha spec. Sorting by slot maximizes
/// prefix sharing across specs and is safe: alpha tests are a pure
/// conjunction.
std::vector<NetTest> canonical_tests(const AlphaSpec& spec) {
  std::vector<NetTest> tests;
  std::vector<CompiledPattern::ConstTest> consts = spec.const_tests;
  std::stable_sort(consts.begin(), consts.end(),
                   [](const auto& x, const auto& y) { return x.slot < y.slot; });
  for (const auto& t : consts) {
    NetTest nt;
    nt.a = t.slot;
    nt.value = t.value;
    tests.push_back(nt);
  }
  std::vector<CompiledPattern::IntraEq> intras = spec.intra_eqs;
  std::stable_sort(intras.begin(), intras.end(), [](const auto& x, const auto& y) {
    return x.slot_a != y.slot_a ? x.slot_a < y.slot_a : x.slot_b < y.slot_b;
  });
  for (const auto& e : intras) {
    NetTest nt;
    nt.intra = true;
    nt.a = e.slot_a;
    nt.b = e.slot_b;
    tests.push_back(nt);
  }
  return tests;
}

/// Trie node of the per-template discrimination net. Children keep
/// first-insertion order (specs are inserted in ascending alpha id, so
/// layout is deterministic).
struct NetNode {
  std::vector<std::pair<NetTest, std::unique_ptr<NetNode>>> children;
  std::vector<std::uint32_t> accepts;
};

class Builder {
 public:
  Builder(std::span<const CompiledRule> rules,
          std::span<const AlphaSpec> alphas, std::size_t template_count,
          const std::vector<RulePlan>& plans)
      : rules_(rules), alphas_(alphas), plans_(plans) {
    image_.net_entry.assign(template_count, -1);
  }

  CodeImage build() {
    build_nets();
    image_.rules.resize(rules_.size());
    for (RuleId r = 0; r < rules_.size(); ++r) {
      const CompiledRule& rule = rules_[r];
      image_.env_size =
          std::max(image_.env_size,
                   rule.num_vars + static_cast<std::int32_t>(
                                       plans_[r].neg_rematch.empty()
                                           ? 0
                                           : max_pins(plans_[r])));
      image_.max_levels = std::max(
          image_.max_levels, static_cast<std::int32_t>(rule.positives.size()));
      image_.max_positives = image_.max_levels;
      for (std::size_t p = 0; p < rule.positives.size(); ++p) {
        image_.rules[r].derive.push_back(emit_derive(r, p));
        ++programs_;
      }
      for (std::size_t n = 0; n < rule.negatives.size(); ++n) {
        image_.rules[r].rematch.push_back(emit_rematch(r, n));
        ++programs_;
      }
    }
    mark_keyed_regs();
    return std::move(image_);
  }

  std::uint64_t programs() const { return programs_; }
  std::uint64_t net_nodes() const { return net_nodes_; }
  std::uint64_t net_shared() const { return net_tests_total_ - net_nodes_; }

 private:
  /// Flag every Bind/PinLoad whose register appears in some probe key
  /// (join key lists and quantifier keys both live in key_regs). The VM
  /// caches the value hash at the flagged writes and composes probe
  /// hashes from the cache, instead of rehashing key values per probe.
  void mark_keyed_regs() {
    std::vector<bool> keyed(static_cast<std::size_t>(image_.env_size), false);
    for (std::int32_t reg : image_.key_regs) {
      keyed[static_cast<std::size_t>(reg)] = true;
    }
    for (Instr& in : image_.code) {
      if (in.op == OpCode::Bind) {
        in.c = keyed[static_cast<std::size_t>(in.b)] ? 1 : 0;
      } else if (in.op == OpCode::PinLoad) {
        in.c = keyed[static_cast<std::size_t>(in.a)] ? 1 : 0;
      }
    }
  }

  static std::size_t max_pins(const RulePlan& plan) {
    std::size_t pins = 0;
    for (const auto& rp : plan.neg_rematch) {
      pins = std::max(pins, rp.pins.size());
    }
    return pins;
  }

  std::int32_t pc() const {
    return static_cast<std::int32_t>(image_.code.size());
  }

  std::int32_t emit(OpCode op, std::int32_t a = 0, std::int32_t b = 0,
                    std::int32_t c = 0, std::int32_t d = 0) {
    image_.code.push_back({op, a, b, c, d});
    return pc() - 1;
  }

  std::int32_t add_const(const Value& v) {
    for (std::size_t i = 0; i < image_.consts.size(); ++i) {
      if (image_.consts[i] == v) return static_cast<std::int32_t>(i);
    }
    image_.consts.push_back(v);
    return static_cast<std::int32_t>(image_.consts.size() - 1);
  }

  /// Lower one guard. Structural eq/neq over variables and constants
  /// compiles to a single GuardCmp — no expression-tree walk per
  /// candidate — which covers the bulk of real guards (waltz is wall-
  /// to-wall `neq`). Everything else falls back to the expr pool.
  void emit_guard(const CompiledExpr* g, std::int32_t fail_pc) {
    if ((g->op == ExprOp::Eq || g->op == ExprOp::Ne) && g->args.size() == 2) {
      const CompiledExpr& l = g->args[0];
      const CompiledExpr& r = g->args[1];
      const std::int32_t kind = g->op == ExprOp::Ne ? 1 : 0;
      if (l.op == ExprOp::Var && r.op == ExprOp::Var) {
        emit(OpCode::GuardCmp, l.var, r.var, fail_pc, kind);
        return;
      }
      if (l.op == ExprOp::Var && r.op == ExprOp::Const) {
        emit(OpCode::GuardCmp, l.var, add_const(r.constant), fail_pc,
             kind | 2);
        return;
      }
      if (l.op == ExprOp::Const && r.op == ExprOp::Var) {
        emit(OpCode::GuardCmp, r.var, add_const(l.constant), fail_pc,
             kind | 2);
        return;
      }
    }
    emit(OpCode::Guard, add_expr(g), fail_pc);
  }

  /// Deep-copy a guard into the expr pool (cached per source node, so a
  /// guard shared by several derive orders is stored once).
  std::int32_t add_expr(const CompiledExpr* e) {
    auto it = expr_cache_.find(e);
    if (it != expr_cache_.end()) return it->second;
    image_.exprs.push_back(*e);
    const auto idx = static_cast<std::int32_t>(image_.exprs.size() - 1);
    expr_cache_.emplace(e, idx);
    return idx;
  }

  /// Verify list for a NextVerify: (slot, reg) pairs in the eqs pool.
  template <typename EqSeq>
  std::int32_t add_eq_list(const EqSeq& eq_seq) {
    KeyList el;
    el.offset = static_cast<std::uint32_t>(image_.eqs.size());
    for (const auto& eq : eq_seq) {
      image_.eqs.push_back({eq.slot, eq.var});
    }
    el.count = static_cast<std::uint32_t>(image_.eqs.size()) - el.offset;
    image_.eq_lists.push_back(el);
    return static_cast<std::int32_t>(image_.eq_lists.size() - 1);
  }

  /// `full`: the index's slots cover the probe's entire verify list
  /// (true unless some slot is joined against two variables), enabling
  /// the VM's once-per-probe canonical-key verification.
  std::int32_t add_key_list(std::span<const std::int32_t> regs, bool full) {
    KeyList kl;
    kl.offset = static_cast<std::uint32_t>(image_.key_regs.size());
    kl.count = static_cast<std::uint32_t>(regs.size());
    kl.full = full ? 1 : 0;
    image_.key_regs.insert(image_.key_regs.end(), regs.begin(), regs.end());
    image_.key_lists.push_back(kl);
    image_.max_key =
        std::max(image_.max_key, static_cast<std::int32_t>(regs.size()));
    return static_cast<std::int32_t>(image_.key_lists.size() - 1);
  }

  /// QuantCheck for (rule, negative CE), created once and shared by the
  /// rule's derive and rematch programs.
  std::int32_t add_quant(RuleId r, std::size_t n) {
    const std::uint64_t key = (static_cast<std::uint64_t>(r) << 32) | n;
    auto it = quant_cache_.find(key);
    if (it != quant_cache_.end()) return it->second;
    const PositionPlan& neg = plans_[r].negatives[n];
    QuantCheck q;
    q.alpha = neg.alpha;
    q.exists = rules_[r].negatives[n].exists;
    q.index_handle = neg.index_handle;
    q.eq_offset = static_cast<std::uint32_t>(image_.eqs.size());
    for (const auto& eq : neg.join_eqs) {
      image_.eqs.push_back({eq.slot, eq.var});
    }
    q.eq_count = static_cast<std::uint32_t>(image_.eqs.size()) - q.eq_offset;
    q.key_offset = static_cast<std::uint32_t>(image_.key_regs.size());
    for (VarId v : neg.key_vars) image_.key_regs.push_back(v);
    q.key_count =
        static_cast<std::uint32_t>(image_.key_regs.size()) - q.key_offset;
    image_.max_key =
        std::max(image_.max_key, static_cast<std::int32_t>(q.key_count));
    image_.quants.push_back(q);
    const auto idx = static_cast<std::int32_t>(image_.quants.size() - 1);
    quant_cache_.emplace(key, idx);
    return idx;
  }

  // -- discrimination net -------------------------------------------------

  void build_nets() {
    const std::size_t template_count = image_.net_entry.size();
    std::vector<NetNode> roots(template_count);
    std::vector<bool> used(template_count, false);
    for (std::uint32_t a = 0; a < alphas_.size(); ++a) {
      const AlphaSpec& spec = alphas_[a];
      used[spec.tmpl] = true;
      NetNode* node = &roots[spec.tmpl];
      for (const NetTest& t : canonical_tests(spec)) {
        ++net_tests_total_;
        NetNode* child = nullptr;
        for (auto& [test, sub] : node->children) {
          if (test == t) {
            child = sub.get();
            break;
          }
        }
        if (!child) {
          node->children.emplace_back(t, std::make_unique<NetNode>());
          child = node->children.back().second.get();
        }
        node = child;
      }
      node->accepts.push_back(a);
    }
    for (std::size_t t = 0; t < template_count; ++t) {
      if (!used[t]) continue;
      image_.net_entry[t] = pc();
      emit_net_node(roots[t]);
      emit(OpCode::Halt);
    }
  }

  void emit_net_node(const NetNode& node) {
    for (std::uint32_t a : node.accepts) {
      emit(OpCode::EmitAlpha, static_cast<std::int32_t>(a));
    }
    for (const auto& [test, sub] : node.children) {
      ++net_nodes_;
      std::int32_t tpc;
      if (test.intra) {
        tpc = emit(OpCode::TestIntra, test.a, test.b);
      } else {
        tpc = emit(OpCode::TestConst, test.a, add_const(test.value));
      }
      emit_net_node(*sub);
      // A failed test skips the whole subtree; passing specs in sibling
      // branches are still reachable (alphas are not mutually
      // exclusive), so control always converges here.
      image_.code[static_cast<std::size_t>(tpc)].c = pc();
    }
  }

  // -- join programs ------------------------------------------------------

  /// Common tail of every join program: quantifier checks over the
  /// fully bound environment, then instantiation emission, looping back
  /// into the innermost iteration.
  void emit_tail(RuleId r, std::int32_t inner_next,
                 std::vector<std::int32_t>& next_pcs) {
    for (std::size_t n = 0; n < rules_[r].negatives.size(); ++n) {
      emit(OpCode::Quant, add_quant(r, n), inner_next);
    }
    emit(OpCode::Emit, static_cast<std::int32_t>(r), inner_next);
    const std::int32_t halt_pc = emit(OpCode::Halt);
    // Exhausting level s resumes level s-1; exhausting level 0 ends the
    // program.
    for (std::size_t s = 0; s < next_pcs.size(); ++s) {
      image_.code[static_cast<std::size_t>(next_pcs[s])].b =
          s == 0 ? halt_pc : next_pcs[s - 1];
    }
  }

  /// Seminaive derivation with positive position `fixed` bound to the
  /// pivot fact: the DerivePlan's reordered join, one level per step.
  std::int32_t emit_derive(RuleId r, std::size_t fixed) {
    const DerivePlan& dp = plans_[r].derive[fixed];
    const std::int32_t entry = pc();
    std::vector<std::int32_t> next_pcs;
    for (std::size_t s = 0; s < dp.steps.size(); ++s) {
      const DeriveStep& step = dp.steps[s];
      const auto level = static_cast<std::int32_t>(s);
      if (s == 0) {
        emit(OpCode::IterFixed, level);
      } else if (step.index_handle >= 0) {
        std::vector<std::int32_t> regs(step.key_vars.begin(),
                                       step.key_vars.end());
        // key_slots are the unique slots of step.eqs, so equal sizes
        // mean the index key decides the whole verify list.
        emit(OpCode::IterProbe, level,
             static_cast<std::int32_t>(step.alpha), step.index_handle,
             add_key_list(regs,
                          step.eqs.size() == step.key_slots.size()));
      } else {
        emit(OpCode::IterScan, level, static_cast<std::int32_t>(step.alpha));
      }
      // Join-loop specialization: the eq-verify list rides inside the
      // iteration instruction, so rejected candidates never leave the
      // handler (no dispatch per failed test).
      const std::int32_t next_pc =
          step.eqs.empty()
              ? emit(OpCode::Next, level, 0, step.pattern)
              : emit(OpCode::NextVerify, level, 0, step.pattern,
                     add_eq_list(step.eqs));
      next_pcs.push_back(next_pc);
      for (const auto& def : step.defs) {
        emit(OpCode::Bind, def.slot, def.var);
      }
      for (const CompiledExpr* guard : step.guards) {
        emit_guard(guard, next_pc);
      }
    }
    emit_tail(r, next_pcs.back(), next_pcs);
    return entry;
  }

  /// Constrained re-derivation for quantified CE `n`: source-order join
  /// over the positives with the blocker's join key pinned into
  /// registers above the rule's variable frame, probing position 0 by
  /// the pinned slots when the plan indexed them.
  std::int32_t emit_rematch(RuleId r, std::size_t n) {
    const CompiledRule& rule = rules_[r];
    const RulePlan& plan = plans_[r];
    const NegRematchPlan& rp = plan.neg_rematch[n];
    const std::int32_t entry = pc();

    // Pin registers live at env[num_vars + j]; Bind never touches them.
    auto pin_reg = [&](VarId var) -> std::int32_t {
      for (std::size_t j = 0; j < rp.pins.size(); ++j) {
        if (rp.pins[j].var == var) {
          return rule.num_vars + static_cast<std::int32_t>(j);
        }
      }
      return -1;
    };
    for (std::size_t j = 0; j < rp.pins.size(); ++j) {
      emit(OpCode::PinLoad, rule.num_vars + static_cast<std::int32_t>(j),
           rp.pins[j].blocker_slot);
    }

    std::vector<std::int32_t> next_pcs;
    for (std::size_t p = 0; p < rule.positives.size(); ++p) {
      const PositionPlan& pos = plan.positives[p];
      const auto level = static_cast<std::int32_t>(p);
      if (p == 0 && rp.index_handle >= 0) {
        std::vector<std::int32_t> regs;
        for (VarId v : rp.pos0_vars) regs.push_back(pin_reg(v));
        // Position 0 verifies via PinTest instructions, not a verify
        // list, so the canonical fast path buys nothing here.
        emit(OpCode::IterProbe, level, static_cast<std::int32_t>(pos.alpha),
             rp.index_handle, add_key_list(regs, false));
      } else if (p > 0 && pos.index_handle >= 0) {
        std::vector<std::int32_t> regs(pos.key_vars.begin(),
                                       pos.key_vars.end());
        emit(OpCode::IterProbe, level, static_cast<std::int32_t>(pos.alpha),
             pos.index_handle,
             add_key_list(regs,
                          pos.join_eqs.size() == pos.key_slots.size()));
      } else {
        emit(OpCode::IterScan, level, static_cast<std::int32_t>(pos.alpha));
      }
      const std::int32_t next_pc =
          pos.join_eqs.empty()
              ? emit(OpCode::Next, level, 0, static_cast<std::int32_t>(p))
              : emit(OpCode::NextVerify, level, 0,
                     static_cast<std::int32_t>(p), add_eq_list(pos.join_eqs));
      next_pcs.push_back(next_pc);
      for (const auto& def : rule.positives[p].defines) {
        emit(OpCode::Bind, def.slot, def.var);
      }
      for (const auto& pin : rp.pins) {
        if (plan.def_position[static_cast<std::size_t>(pin.var)] ==
            static_cast<int>(p)) {
          emit(OpCode::PinTest, pin.var, pin_reg(pin.var), next_pc);
        }
      }
      for (const auto& guard : rule.guards[p]) {
        emit_guard(&guard, next_pc);
      }
    }
    emit_tail(r, next_pcs.back(), next_pcs);
    return entry;
  }

  std::span<const CompiledRule> rules_;
  std::span<const AlphaSpec> alphas_;
  const std::vector<RulePlan>& plans_;
  CodeImage image_;
  std::unordered_map<const CompiledExpr*, std::int32_t> expr_cache_;
  std::unordered_map<std::uint64_t, std::int32_t> quant_cache_;
  std::uint64_t programs_ = 0;
  std::uint64_t net_nodes_ = 0;
  std::uint64_t net_tests_total_ = 0;
};

}  // namespace

CodeImage compile_rules(std::span<const CompiledRule> rules,
                        std::span<const AlphaSpec> alphas,
                        std::size_t template_count,
                        const std::vector<RulePlan>& plans,
                        CompileStats* stats) {
  const auto start = std::chrono::steady_clock::now();
  Builder builder(rules, alphas, template_count, plans);
  CodeImage image = builder.build();
  if (stats) {
    stats->codegen_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    stats->code_bytes = image.byte_size();
    stats->instructions = image.code.size();
    stats->const_pool = image.consts.size();
    stats->expr_pool = image.exprs.size();
    stats->programs = builder.programs();
    stats->net_nodes = builder.net_nodes();
    stats->net_shared = builder.net_shared();
  }
  return image;
}

std::string compile_listing(const Program& program) {
  AlphaStore alphas(program.alphas, program.schema.size());
  const std::vector<RulePlan> plans =
      build_join_plans(program.rules, alphas);
  const CodeImage image = compile_rules(
      program.rules, program.alphas, program.schema.size(), plans, nullptr);
  return image.listing(program);
}

}  // namespace parulel
