// CompiledMatcher: the threaded-code VM behind --matcher compiled.
//
// The delta-driving skeleton is the TREAT algorithm, step for step (see
// match/treat.cpp); what changes is the hot paths. Alpha routing runs
// the compiled discrimination net instead of re-testing every spec, and
// the seminaive derive / pinned-rematch joins execute specialized
// bytecode on a threaded-code interpreter (computed goto on GCC/Clang,
// switch fallback) with all iteration state preallocated — no per-node
// allocations, unlike the interpreter's recursive DFS.
//
// Because the programs enumerate candidates in exactly the interpreter's
// order over identically populated alpha memories, the conflict set —
// contents AND InstIds — is bit-identical to TreatMatcher's. That makes
// the compiled matcher a drop-in for the seq/par engines, sessions, the
// sharded NetServer, and journal recovery, with the interpreter as the
// oracle (tests/test_random_programs.cpp holds fingerprints, conflict
// sizes, and cycle counts equal across both).
#pragma once

#include <span>
#include <vector>

#include "compile/bytecode.hpp"
#include "match/join.hpp"
#include "match/matcher.hpp"
#include "match/quant_index.hpp"
#include "obs/stats.hpp"

namespace parulel {

class CompiledMatcher : public Matcher {
 public:
  /// `rules` and `alpha_specs` must outlive the matcher (they live in
  /// the Program). Compiles at construction; codegen cost lands in
  /// compile_stats().codegen_ns.
  CompiledMatcher(std::span<const CompiledRule> rules,
                  std::span<const AlphaSpec> alpha_specs,
                  std::size_t template_count);

  void apply_delta(const WorkingMemory& wm, const Delta& delta) override;
  ConflictSet& conflict_set() override { return cs_; }
  const MatchStats& stats() const override { return stats_; }
  const char* name() const override { return "compiled"; }
  const CompileStats* compile_stats() const override { return &cstats_; }

  /// The code image this matcher executes (tests, --compile-dump).
  const CodeImage& image() const { return image_; }

 protected:
  MatchStats& stats_mut() override { return stats_; }

 private:
  /// Classify a fact through the discrimination net; fills net_out_
  /// with accepting alpha ids in ascending order.
  void run_net(const WorkingMemory& wm, FactId fid);

  /// Execute a program (net, derive, or rematch) with `pivot` as the
  /// classified/fixed/blocker fact. Join programs emit into the
  /// conflict set.
  void execute(const WorkingMemory& wm, std::int32_t entry, FactId pivot);

  /// Quantified-CE satisfaction under the current env (Quant opcode).
  bool quant_found(const WorkingMemory& wm, const QuantCheck& q);

  /// Conflict-set emission for a fully bound join (Emit opcode).
  void do_emit(std::int32_t rule_operand);

  // Cold paths, identical to TreatMatcher (they are hash-probe bound,
  // not dispatch bound).
  void remove_blocked(const WorkingMemory& wm, RuleId rule, int neg_index,
                      FactId fid);
  void remove_disabled(const WorkingMemory& wm, RuleId rule, int neg_index,
                       FactId fid);

  std::span<const CompiledRule> rules_;
  AlphaStore alphas_;
  JoinEngine join_;  ///< plan construction + quantifier helpers
  ConflictSet cs_;
  QuantIndex quant_;
  MatchStats stats_;
  CompileStats cstats_;
  CodeImage image_;

  struct AlphaUse {
    RuleId rule;
    int position;
  };
  std::vector<std::vector<AlphaUse>> positive_uses_;
  std::vector<std::vector<AlphaUse>> negative_uses_;

  // Preallocated interpreter state (sized from the image at build).
  struct Frame {
    const FactRow* data = nullptr;
    std::size_t size = 0;
    std::size_t idx = 0;
    /// The probe's canonical-key match already proved every candidate
    /// passes the level's verify list (NextVerify skips its eq loop).
    bool verified = false;
  };
  std::vector<Value> env_;
  // Hash of env_[r], maintained at Bind/PinLoad for registers the
  // compiler flagged as probe keys. Probe hashes are composed from this
  // cache, so the inner join loops never rehash a Value. Entries for
  // unflagged registers are stale by design — the plans guarantee every
  // keyed register is written before the probe that reads it.
  std::vector<std::size_t> env_hash_;
  std::vector<FactId> facts_;
  std::vector<Frame> frames_;
  std::vector<std::uint32_t> net_out_;
  FactRow fixed_[1] = {kNoFactRow};

  // Per-delta scratch.
  std::vector<std::uint32_t> added_alphas_;   ///< flattened per-fact hits
  std::vector<std::size_t> added_offsets_;
  std::vector<InstId> removed_scratch_;
  std::vector<Value> env_scratch_;
};

}  // namespace parulel
