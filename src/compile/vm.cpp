#include "compile/vm.hpp"

#include <algorithm>
#include <chrono>

#include "compile/compiler.hpp"

// Threaded-code dispatch: GCC and Clang get computed goto (one indirect
// branch per handler, which the branch predictor learns per-site);
// other compilers fall back to a switch in a loop.
#if defined(__GNUC__) || defined(__clang__)
#define PARULEL_VM_COMPUTED_GOTO 1
#else
#define PARULEL_VM_COMPUTED_GOTO 0
#endif

namespace parulel {

CompiledMatcher::CompiledMatcher(std::span<const CompiledRule> rules,
                                 std::span<const AlphaSpec> alpha_specs,
                                 std::size_t template_count)
    : rules_(rules),
      alphas_(alpha_specs, template_count),
      join_(rules, alphas_),
      quant_(rules, join_.plans()),
      positive_uses_(alpha_specs.size()),
      negative_uses_(alpha_specs.size()) {
  image_ = compile_rules(rules, alpha_specs, template_count, join_.plans(),
                         &cstats_);
  for (RuleId r = 0; r < rules_.size(); ++r) {
    const CompiledRule& rule = rules_[r];
    for (std::size_t p = 0; p < rule.positives.size(); ++p) {
      positive_uses_[rule.positives[p].alpha].push_back(
          {r, static_cast<int>(p)});
    }
    for (std::size_t n = 0; n < rule.negatives.size(); ++n) {
      negative_uses_[rule.negatives[n].alpha].push_back(
          {r, static_cast<int>(n)});
    }
  }
  env_.resize(static_cast<std::size_t>(image_.env_size));
  env_hash_.resize(static_cast<std::size_t>(image_.env_size), 0);
  facts_.resize(static_cast<std::size_t>(image_.max_positives), kInvalidFact);
  frames_.resize(static_cast<std::size_t>(image_.max_levels));
  net_out_.reserve(alpha_specs.size());
}

void CompiledMatcher::run_net(const WorkingMemory& wm, FactId fid) {
  net_out_.clear();
  ++cstats_.net_runs;
  const std::int32_t entry =
      image_.net_entry[static_cast<std::size_t>(wm.view(fid).tmpl())];
  if (entry < 0) return;
  execute(wm, entry, fid);
  // The trie emits in traversal order; callers expect the interpreter's
  // ascending-alpha order.
  std::sort(net_out_.begin(), net_out_.end());
}

bool CompiledMatcher::quant_found(const WorkingMemory& wm,
                                  const QuantCheck& q) {
  ++cstats_.quant_checks;
  const AlphaMemory& mem = alphas_.memory(q.alpha);
  if (q.eq_count == 0) return mem.size() > 0;
  const EqRef* eqs = image_.eqs.data() + q.eq_offset;
  const FactStore& store = wm.store();
  auto matches = [&](FactRow row) {
    const FactView f = store.view_row(row);
    for (std::uint32_t i = 0; i < q.eq_count; ++i) {
      if (f.slot(static_cast<std::size_t>(eqs[i].slot)) !=
          env_[static_cast<std::size_t>(eqs[i].reg)]) {
        return false;
      }
    }
    return true;
  };
  if (q.index_handle >= 0) {
    const std::int32_t* regs = image_.key_regs.data() + q.key_offset;
    std::size_t h = kJoinKeySeed;
    for (std::uint32_t i = 0; i < q.key_count; ++i) {
      h = hash_combine(h, env_hash_[static_cast<std::size_t>(regs[i])]);
    }
    const AlphaMemory::ProbeHit hit = mem.probe_group_canon(q.index_handle, h);
    if (!hit.group || hit.group->empty()) return false;
    if (hit.rep != kNoFactRow && q.eq_count == q.key_count) {
      // Full key coverage over a pure group: one canonical-key
      // comparison against the representative answers the check for
      // every candidate at once.
      const FactView rep = store.view_row(hit.rep);
      for (std::uint32_t i = 0; i < q.key_count; ++i) {
        if (rep.slot(static_cast<std::size_t>(hit.rep_slots[i])) !=
            env_[static_cast<std::size_t>(regs[i])]) {
          return false;
        }
      }
      return true;
    }
    for (FactRow row : *hit.group) {
      if (matches(row)) return true;
    }
    return false;
  }
  for (FactRow row : mem.rows()) {
    if (matches(row)) return true;
  }
  return false;
}

void CompiledMatcher::do_emit(std::int32_t rule_operand) {
  const auto rule = static_cast<RuleId>(rule_operand);
  const CompiledRule& r = rules_[rule];
  Instantiation inst;
  inst.rule = rule;
  inst.facts.assign(facts_.begin(),
                    facts_.begin() +
                        static_cast<std::ptrdiff_t>(r.positives.size()));
  const InstId id = cs_.add(std::move(inst));
  ++cstats_.emits;
  if (id != kInvalidInst) {
    ++stats_.insts_derived;
    if (!r.negatives.empty()) {
      quant_.add(rule, id,
                 std::span<const Value>(env_.data(),
                                        static_cast<std::size_t>(r.num_vars)));
    }
  }
}

void CompiledMatcher::execute(const WorkingMemory& wm, std::int32_t entry,
                              FactId pivot) {
  const Instr* const code = image_.code.data();
  const Value* const consts = image_.consts.data();
  // Column base pointers, stable for the whole program: execute() never
  // mutates working memory, and matchers never assert.
  const FactStore& store = wm.store();
  const std::uint32_t* const sb = store.slot_begin_data();
  const std::uint8_t* const kp = store.kind_data();
  const std::uint64_t* const pp = store.payload_data();
  const FactId* const ids = store.id_data();
  // Load slot `i` of the fact whose arena offset is `off`.
  const auto slot_val = [&](std::uint32_t off, std::int32_t i) {
    const std::uint32_t o = off + static_cast<std::uint32_t>(i);
    return Value::from_raw(static_cast<ValueKind>(kp[o]), pp[o]);
  };
  const FactRow prow = store.row_of(pivot);
  const std::uint32_t pivo = sb[prow];  // pivot's arena offset
  std::int32_t pc = entry;
  std::uint32_t curo = pivo;  // current fact's arena offset
  std::uint64_t ndisp = 0;

#if PARULEL_VM_COMPUTED_GOTO
  // Order must match the OpCode enum exactly.
  static const void* const kLabels[kOpCount] = {
      &&L_TestConst, &&L_TestIntra, &&L_EmitAlpha, &&L_IterFixed,
      &&L_IterScan,  &&L_IterProbe, &&L_Next,      &&L_NextVerify,
      &&L_TestEq,    &&L_Bind,      &&L_Guard,     &&L_GuardCmp,
      &&L_PinLoad,   &&L_PinTest,   &&L_Quant,     &&L_Emit,
      &&L_Halt};
#define VM_CASE(op) L_##op:
#define VM_NEXT()                                                   \
  do {                                                              \
    ++ndisp;                                                        \
    goto* kLabels[static_cast<std::size_t>(code[pc].op)];           \
  } while (0)
  VM_NEXT();
#else
#define VM_CASE(op) case OpCode::op:
#define VM_NEXT() break
  for (;;) {
    ++ndisp;
    switch (code[pc].op) {
#endif

  VM_CASE(TestConst) {
    const Instr& in = code[pc];
    pc = slot_val(curo, in.a) == consts[in.b] ? pc + 1 : in.c;
  }
  VM_NEXT();

  VM_CASE(TestIntra) {
    const Instr& in = code[pc];
    pc = slot_val(curo, in.a) == slot_val(curo, in.b) ? pc + 1 : in.c;
  }
  VM_NEXT();

  VM_CASE(EmitAlpha) {
    net_out_.push_back(static_cast<std::uint32_t>(code[pc].a));
    ++pc;
  }
  VM_NEXT();

  VM_CASE(IterFixed) {
    Frame& f = frames_[static_cast<std::size_t>(code[pc].a)];
    fixed_[0] = prow;
    f.data = fixed_;
    f.size = 1;
    f.idx = 0;
    f.verified = false;
    ++pc;
  }
  VM_NEXT();

  VM_CASE(IterScan) {
    const Instr& in = code[pc];
    const std::vector<FactRow>& rows =
        alphas_.memory(static_cast<std::uint32_t>(in.b)).rows();
    Frame& f = frames_[static_cast<std::size_t>(in.a)];
    f.data = rows.data();
    f.size = rows.size();
    f.idx = 0;
    f.verified = false;
    ++pc;
  }
  VM_NEXT();

  VM_CASE(IterProbe) {
    const Instr& in = code[pc];
    const AlphaMemory& mem = alphas_.memory(static_cast<std::uint32_t>(in.b));
    const KeyList& kl = image_.key_lists[static_cast<std::size_t>(in.d)];
    // Compose the key hash from the per-register cache (no Value::hash,
    // no key copy), then iterate the index group in place (no candidate
    // copy). The group is stable for the whole program: execute() never
    // mutates alpha memories.
    const std::int32_t* regs = image_.key_regs.data() + kl.offset;
    std::size_t h = kJoinKeySeed;
    for (std::uint32_t i = 0; i < kl.count; ++i) {
      h = hash_combine(h, env_hash_[static_cast<std::size_t>(regs[i])]);
    }
    Frame& f = frames_[static_cast<std::size_t>(in.a)];
    f.idx = 0;
    f.verified = false;
    const AlphaMemory::ProbeHit hit = mem.probe_group_canon(in.c, h);
    if (hit.group) {
      f.data = hit.group->data();
      f.size = hit.group->size();
      if (kl.full && hit.rep != kNoFactRow) {
        // Canonical-key verification: every member of a pure group
        // shares its key-slot values, so one comparison of the
        // representative against the probe key decides all candidates —
        // a match lets NextVerify skip its per-candidate eq loop, a
        // mismatch (necessarily a hash collision) means no candidate
        // can pass.
        f.verified = true;
        const std::uint32_t ro = sb[hit.rep];
        for (std::uint32_t i = 0; i < kl.count; ++i) {
          if (slot_val(ro, hit.rep_slots[i]) !=
              env_[static_cast<std::size_t>(regs[i])]) {
            f.size = 0;
            break;
          }
        }
      }
    } else {
      f.data = nullptr;
      f.size = 0;
    }
    ++pc;
  }
  VM_NEXT();

  VM_CASE(Next) {
    const Instr& in = code[pc];
    Frame& f = frames_[static_cast<std::size_t>(in.a)];
    if (f.idx == f.size) {
      pc = in.b;
    } else {
      const FactRow row = f.data[f.idx++];
      curo = sb[row];
      facts_[static_cast<std::size_t>(in.c)] = ids[row];
      ++pc;
    }
  }
  VM_NEXT();

  VM_CASE(NextVerify) {
    const Instr& in = code[pc];
    Frame& f = frames_[static_cast<std::size_t>(in.a)];
    if (f.verified) {
      // The probe's canonical-key match already proved every candidate
      // passes the eq list: degrade to a plain Next.
      if (f.idx == f.size) {
        pc = in.b;
      } else {
        const FactRow row = f.data[f.idx++];
        curo = sb[row];
        facts_[static_cast<std::size_t>(in.c)] = ids[row];
        ++pc;
      }
    } else {
      const KeyList& el = image_.eq_lists[static_cast<std::size_t>(in.d)];
      const EqRef* const eqs = image_.eqs.data() + el.offset;
      // The fused join inner loop: rejected candidates stay inside the
      // handler, costing slot compares but no dispatch.
      for (;;) {
        if (f.idx == f.size) {
          pc = in.b;
          break;
        }
        const FactRow row = f.data[f.idx++];
        const std::uint32_t co = sb[row];
        bool ok = true;
        for (std::uint32_t i = 0; i < el.count; ++i) {
          if (slot_val(co, eqs[i].slot) !=
              env_[static_cast<std::size_t>(eqs[i].reg)]) {
            ok = false;
            break;
          }
        }
        if (ok) {
          curo = co;
          facts_[static_cast<std::size_t>(in.c)] = ids[row];
          ++pc;
          break;
        }
      }
    }
  }
  VM_NEXT();

  VM_CASE(TestEq) {
    const Instr& in = code[pc];
    pc = slot_val(curo, in.a) == env_[static_cast<std::size_t>(in.b)]
             ? pc + 1
             : in.c;
  }
  VM_NEXT();

  VM_CASE(Bind) {
    const Instr& in = code[pc];
    const Value v = slot_val(curo, in.a);
    env_[static_cast<std::size_t>(in.b)] = v;
    if (in.c) {
      // Cached hash from the store's hash column (computed at assert).
      env_hash_[static_cast<std::size_t>(in.b)] =
          store.slot_hash_at(curo + static_cast<std::uint32_t>(in.a));
    }
    ++pc;
  }
  VM_NEXT();

  VM_CASE(Guard) {
    const Instr& in = code[pc];
    pc = CompiledExpr::truthy(
             image_.exprs[static_cast<std::size_t>(in.a)].eval(env_))
             ? pc + 1
             : in.b;
  }
  VM_NEXT();

  VM_CASE(GuardCmp) {
    const Instr& in = code[pc];
    const Value& lhs = env_[static_cast<std::size_t>(in.a)];
    const Value& rhs = (in.d & 2) ? consts[in.b]
                                  : env_[static_cast<std::size_t>(in.b)];
    pc = ((lhs == rhs) == ((in.d & 1) == 0)) ? pc + 1 : in.c;
  }
  VM_NEXT();

  VM_CASE(PinLoad) {
    const Instr& in = code[pc];
    const Value v = slot_val(pivo, in.b);
    env_[static_cast<std::size_t>(in.a)] = v;
    if (in.c) {
      env_hash_[static_cast<std::size_t>(in.a)] =
          store.slot_hash_at(pivo + static_cast<std::uint32_t>(in.b));
    }
    ++pc;
  }
  VM_NEXT();

  VM_CASE(PinTest) {
    const Instr& in = code[pc];
    pc = env_[static_cast<std::size_t>(in.a)] ==
                 env_[static_cast<std::size_t>(in.b)]
             ? pc + 1
             : in.c;
  }
  VM_NEXT();

  VM_CASE(Quant) {
    const Instr& in = code[pc];
    const QuantCheck& q = image_.quants[static_cast<std::size_t>(in.a)];
    pc = quant_found(wm, q) == q.exists ? pc + 1 : in.b;
  }
  VM_NEXT();

  VM_CASE(Emit) {
    const Instr& in = code[pc];
    do_emit(in.a);
    pc = in.b;
  }
  VM_NEXT();

  VM_CASE(Halt) { goto done; }
#if !PARULEL_VM_COMPUTED_GOTO
    }
  }
#endif

done:
  cstats_.dispatches += ndisp;
#undef VM_CASE
#undef VM_NEXT
}




void CompiledMatcher::apply_delta(const WorkingMemory& wm,
                                  const Delta& delta) {
  ++stats_.deltas_processed;

  // Same event queues as the interpreter (see match/treat.cpp): quant
  // work is deferred so it observes the complete post-delta state.
  struct QuantEvent {
    RuleId rule;
    int neg;
    FactId fact;
  };
  std::vector<QuantEvent> unblocks;
  std::vector<QuantEvent> disables;

  // 1. Removals: net-classify, update alphas, drop dead instantiations.
  for (FactId fid : delta.removed) {
    const FactView fact = wm.view(fid);
    run_net(wm, fid);
    stats_.alpha_activations += net_out_.size();
    for (std::uint32_t a : net_out_) {
      for (const AlphaUse& use : negative_uses_[a]) {
        const bool exists =
            rules_[use.rule].negatives[static_cast<std::size_t>(use.position)]
                .exists;
        if (exists) {
          disables.push_back({use.rule, use.position, fid});
        } else {
          unblocks.push_back({use.rule, use.position, fid});
        }
      }
      alphas_.memory(a).erase(fact);
    }
    removed_scratch_.clear();
    cs_.remove_by_fact(fid, &removed_scratch_);
    stats_.insts_invalidated += removed_scratch_.size();
  }

  // 2. Additions into alpha memories first (joins and quantifier checks
  // must see the complete post-delta state). The net runs once per
  // fact; the hit lists are kept for steps 3 and 4.
  const auto upkeep_start = std::chrono::steady_clock::now();
  added_alphas_.clear();
  added_offsets_.clear();
  for (FactId fid : delta.added) {
    const FactView fact = wm.view(fid);
    run_net(wm, fid);
    added_offsets_.push_back(added_alphas_.size());
    for (std::uint32_t a : net_out_) {
      alphas_.memory(a).insert(fact);
      added_alphas_.push_back(a);
    }
  }
  added_offsets_.push_back(added_alphas_.size());
  stats_.alpha_upkeep_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - upkeep_start)
          .count());

  // 3. New facts in quantified alphas: (not ...) blocks existing
  // matches; (exists ...) may enable new ones.
  for (std::size_t i = 0; i < delta.added.size(); ++i) {
    const FactId fid = delta.added[i];
    for (std::size_t j = added_offsets_[i]; j < added_offsets_[i + 1]; ++j) {
      const std::uint32_t a = added_alphas_[j];
      for (const AlphaUse& use : negative_uses_[a]) {
        const bool exists =
            rules_[use.rule].negatives[static_cast<std::size_t>(use.position)]
                .exists;
        if (exists) {
          unblocks.push_back({use.rule, use.position, fid});
        } else {
          remove_blocked(wm, use.rule, use.position, fid);
        }
      }
    }
  }

  // 4. Seminaive derivation: run the compiled derive program of every
  // (rule, position) whose alpha accepted an added fact.
  for (std::size_t i = 0; i < delta.added.size(); ++i) {
    const FactId fid = delta.added[i];
    stats_.alpha_activations += added_offsets_[i + 1] - added_offsets_[i];
    for (std::size_t j = added_offsets_[i]; j < added_offsets_[i + 1]; ++j) {
      const std::uint32_t a = added_alphas_[j];
      for (const AlphaUse& use : positive_uses_[a]) {
        ++cstats_.derive_runs;
        execute(wm,
                image_.rules[use.rule]
                    .derive[static_cast<std::size_t>(use.position)],
                fid);
      }
    }
  }

  // 5. Departed (exists ...) witnesses may kill instantiations.
  for (const auto& d : disables) {
    remove_disabled(wm, d.rule, d.neg, d.fact);
  }

  // 6. Constrained re-derivations last (dedup-protected).
  for (const auto& u : unblocks) {
    ++stats_.full_rematches;
    ++cstats_.rematch_runs;
    execute(wm,
            image_.rules[u.rule].rematch[static_cast<std::size_t>(u.neg)],
            u.fact);
  }

  stats_.state_entries = cs_.size();
}

void CompiledMatcher::remove_blocked(const WorkingMemory& wm, RuleId rule_id,
                                     int neg_index, FactId fid) {
  const FactView fact = wm.view(fid);
  const CompiledRule& rule = rules_[rule_id];
  const PositionPlan& neg =
      join_.plan(rule_id).negatives[static_cast<std::size_t>(neg_index)];
  quant_.for_candidates(
      cs_, rule_id, static_cast<std::size_t>(neg_index), fact,
      [&](InstId id) {
        const Instantiation& inst = cs_.get(id);
        rebuild_env(
            rule, inst.facts,
            [&](FactId f) { return wm.view(f); }, env_scratch_);
        if (JoinEngine::fact_blocks(fact, neg, env_scratch_)) {
          cs_.remove(id);
          ++stats_.insts_invalidated;
        }
      });
}

void CompiledMatcher::remove_disabled(const WorkingMemory& wm, RuleId rule_id,
                                      int neg_index, FactId fid) {
  const FactView fact = wm.view(fid);
  const CompiledRule& rule = rules_[rule_id];
  const PositionPlan& neg =
      join_.plan(rule_id).negatives[static_cast<std::size_t>(neg_index)];
  quant_.for_candidates(
      cs_, rule_id, static_cast<std::size_t>(neg_index), fact,
      [&](InstId id) {
        const Instantiation& inst = cs_.get(id);
        rebuild_env(
            rule, inst.facts,
            [&](FactId f) { return wm.view(f); }, env_scratch_);
        if (JoinEngine::fact_blocks(fact, neg, env_scratch_) &&
            !join_.quantified_satisfied(wm, neg, env_scratch_)) {
          cs_.remove(id);
          ++stats_.insts_invalidated;
        }
      });
}

}  // namespace parulel
