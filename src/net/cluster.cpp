#include "net/cluster.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace parulel::net {

namespace {

void set_nonblocking(int fd) {
  const int fl = ::fcntl(fd, F_GETFL, 0);
  if (fl >= 0) ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
}

}  // namespace

LineConn::LineConn(int fd) : fd_(fd) {
  if (fd_ < 0) return;
  set_nonblocking(fd_);
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

LineConn::~LineConn() { close(); }

LineConn::LineConn(LineConn&& other) noexcept
    : fd_(other.fd_), rbuf_(std::move(other.rbuf_)) {
  other.fd_ = -1;
}

LineConn& LineConn::operator=(LineConn&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    rbuf_ = std::move(other.rbuf_);
    other.fd_ = -1;
  }
  return *this;
}

void LineConn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rbuf_.clear();
}

bool LineConn::read_lines(std::vector<std::string>& out) {
  if (fd_ < 0) return false;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd_, buf, sizeof buf);
    if (n > 0) {
      rbuf_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // EOF or hard error: split out what we have, then report dead.
    std::size_t at;
    while ((at = rbuf_.find('\n')) != std::string::npos) {
      out.push_back(rbuf_.substr(0, at));
      rbuf_.erase(0, at + 1);
    }
    close();
    return false;
  }
  std::size_t at;
  while ((at = rbuf_.find('\n')) != std::string::npos) {
    out.push_back(rbuf_.substr(0, at));
    rbuf_.erase(0, at + 1);
  }
  return true;
}

bool LineConn::write_line(std::string_view line) {
  if (fd_ < 0) return false;
  std::string data(line);
  data.push_back('\n');
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd_, data.data() + off, data.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd_, POLLOUT, 0};
      const int rc = ::poll(&pfd, 1, 5000);
      if (rc > 0) continue;
      // Timed out (peer not draining = effectively dead) or poll error.
      close();
      return false;
    }
    close();
    return false;
  }
  return true;
}

int dial_tcp(const std::string& host, std::uint16_t port, std::string* error,
             std::uint64_t timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "bad address: " + host;
    ::close(fd);
    return -1;
  }
  const std::string where = host + ":" + std::to_string(port);
  set_nonblocking(fd);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    if (error) *error = "connect " + where + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    do {
      rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    } while (rc < 0 && errno == EINTR);
    if (rc <= 0) {
      if (error) {
        *error = "connect " + where + ": " +
                 (rc == 0 ? "timed out" : std::strerror(errno));
      }
      ::close(fd);
      return -1;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
    if (so_error != 0) {
      if (error) *error = "connect " + where + ": " + std::strerror(so_error);
      ::close(fd);
      return -1;
    }
  }
  return fd;
}

int listen_tcp(std::uint16_t port, std::uint16_t* bound_port,
               std::string* error) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error) {
      *error = "bind 127.0.0.1:" + std::to_string(port) + ": " +
               std::strerror(errno);
    }
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 64) != 0) {
    if (error) *error = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof(addr);
  if (bound_port &&
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    *bound_port = ntohs(addr.sin_port);
  }
  return fd;
}

int accept_conn(int listen_fd) {
  const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
  if (fd < 0) return -1;
  return fd;
}

}  // namespace parulel::net
