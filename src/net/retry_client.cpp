#include "net/retry_client.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

namespace parulel::net {

namespace {

std::pair<std::string, std::string> cmd_and_name(const std::string& line) {
  std::istringstream in(line);
  std::string cmd;
  std::string name;
  in >> cmd >> name;
  return {cmd, name};
}

bool is_mutating(const std::string& cmd) {
  return cmd == "assert" || cmd == "retract" || cmd == "run";
}

}  // namespace

RetryClient::RetryClient(RetryConfig config)
    : config_(std::move(config)),
      client_(NetClient::Options{config_.connect_timeout_ms,
                                 config_.io_timeout_ms}),
      rng_(config_.seed) {}

std::uint64_t RetryClient::parse_field(const std::string& status,
                                       std::string_view key) {
  const std::size_t at = status.find(key);
  if (at == std::string::npos) return 0;
  const char* first = status.data() + at + key.size();
  const char* last = status.data() + status.size();
  std::uint64_t k = 0;
  std::from_chars(first, last, k);
  return k;
}

std::uint64_t RetryClient::parse_committed(const std::string& status) {
  return parse_field(status, " committed=");
}

void RetryClient::prune_committed(SessionState& s, const std::string& status) {
  const std::uint64_t k = parse_committed(status);
  while (k > 0 && !s.replay.empty() && s.replay.front().first <= k) {
    s.replay.pop_front();
  }
}

std::uint64_t RetryClient::backoff_delay_ms(unsigned attempt) {
  // Exponential ceiling min(base * 2^(k-1), max), computed without ever
  // shifting past the cap: `base << shift` overflows for large attempt
  // counts (or a large base), wrapping the delay back to ~0 and turning
  // the backoff into a tight retry hammer exactly when the server is at
  // its sickest. Stop doubling as soon as the ceiling passes max.
  std::uint64_t ceiling = config_.backoff_base_ms;
  for (unsigned k = 1; k < attempt && ceiling < config_.backoff_max_ms; ++k) {
    if (ceiling > config_.backoff_max_ms / 2) {
      ceiling = config_.backoff_max_ms;
    } else {
      ceiling *= 2;
    }
  }
  ceiling = std::min(ceiling, config_.backoff_max_ms);
  // Full jitter: sleep uniform in [0, ceiling]. Clients that lost the
  // same primary at the same moment draw independent delays across the
  // WHOLE window, so a restarted server sees reconnects spread out
  // instead of a synchronized stampede at base*2^k milliseconds.
  return ceiling > 0 ? rng_.below(ceiling + 1) : 0;
}

void RetryClient::backoff(unsigned attempt) {
  const std::uint64_t ms = backoff_delay_ms(attempt);
  stats_.backoff_ms += ms;
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

std::size_t RetryClient::unacked() const {
  std::size_t n = 0;
  for (const auto& [name, s] : sessions_) n += s.replay.size();
  return n;
}

void RetryClient::fail_over() {
  if (config_.endpoints.empty()) return;
  endpoint_ = (endpoint_ + 1) % (config_.endpoints.size() + 1);
  ++stats_.failovers;
}

bool RetryClient::refused_as_standby(const Response& r) {
  return r.status.find("not-primary") != std::string::npos;
}

bool RetryClient::reconnect_and_resume(const std::string& session,
                                       std::uint64_t req, Response* out,
                                       bool* handled) {
  ++stats_.reconnects;
  const std::string& host =
      endpoint_ == 0 ? config_.host : config_.endpoints[endpoint_ - 1].first;
  const std::uint16_t port =
      endpoint_ == 0 ? config_.port : config_.endpoints[endpoint_ - 1].second;
  if (!client_.connect(host, port)) {
    error_ = client_.error();
    // Dial failure: this server may be dead for good — fail over to the
    // next endpoint on the list before the next attempt.
    fail_over();
    return false;
  }
  for (auto& [name, s] : sessions_) {
    Response r;
    if (!client_.request("resume " + name, r)) {
      error_ = client_.error();
      return false;
    }
    if (r.ok()) {
      ++stats_.resumed;
      prune_committed(s, r.status);
      s.next_req =
          std::max(s.next_req, parse_field(r.status, " acked=") + 1);
    } else if (refused_as_standby(r)) {
      // A hot standby fencing promotion: its primary is still alive, so
      // this endpoint cannot serve the name YET. Not an answer — move
      // along the list (usually straight back to the primary).
      error_ = "resume " + name + ": " + r.status;
      client_.close();
      fail_over();
      return false;
    } else if (r.status.find("no durable session") != std::string::npos &&
               !s.open_line.empty()) {
      // The server genuinely lost the state (fresh journal directory):
      // rebuild from the original open line, then replay everything
      // still buffered.
      Response ro;
      if (!client_.request(s.open_line, ro)) {
        error_ = client_.error();
        return false;
      }
      if (!ro.ok()) {
        error_ = "reopen " + name + ": " + ro.status;
        client_.close();
        if (refused_as_standby(ro)) fail_over();
        return false;
      }
      ++stats_.reopened;
    } else {
      // "attached to another conversation" is transient — the server
      // may not have reaped our dead connection yet; quarantined
      // journals and the like burn through max_attempts and give up.
      error_ = "resume " + name + ": " + r.status;
      client_.close();
      return false;
    }

    // Replay the unacked suffix in order. The server's dedup window
    // makes this exactly-once: an id whose effect survived is answered
    // from the cached response, a fresh id executes normally. Iterate
    // a copy — pruning mutates the deque.
    const std::vector<std::pair<std::uint64_t, std::string>> lines(
        s.replay.begin(), s.replay.end());
    std::uint64_t committed = 0;
    std::vector<std::uint64_t> refused;
    for (const auto& [id, wire] : lines) {
      Response rr;
      if (!client_.request(wire, rr)) {
        error_ = client_.error();
        return false;
      }
      ++stats_.replayed;
      if (rr.ok()) {
        committed = std::max(committed, parse_committed(rr.status));
      } else {
        // Refused (or stale): either it never applied, or it applied
        // and its id aged out of the dedup window — committed either
        // way, so it must not be replayed again.
        refused.push_back(id);
      }
      if (name == session && id == req && out != nullptr) {
        *out = rr;
        *handled = true;
      }
    }
    while (committed > 0 && !s.replay.empty() &&
           s.replay.front().first <= committed) {
      s.replay.pop_front();
    }
    for (const std::uint64_t id : refused) {
      std::erase_if(s.replay, [id](const auto& e) { return e.first == id; });
    }
  }
  return true;
}

void RetryClient::finish(const std::string& cmd, const std::string& name,
                         std::uint64_t req, const std::string& line,
                         Response& out) {
  auto sit = sessions_.find(name);
  if (!out.ok()) {
    // A delivered refusal: the op did NOT apply (the server records
    // acks only for ok responses). Drop it from the replay buffer —
    // resending it after a reconnect would apply an op the user saw
    // fail.
    if (req != 0 && sit != sessions_.end()) {
      std::erase_if(sit->second.replay,
                    [req](const auto& e) { return e.first == req; });
    }
    if (cmd == "open" &&
        out.status.find("durable session exists") != std::string::npos) {
      // Our earlier open applied but its ack was lost: adopt the
      // session via resume instead of failing the caller.
      Response r;
      if (client_.request("resume " + name, r) && r.ok()) {
        ++stats_.resumed;
        SessionState s;
        s.open_line = line;
        s.next_req = parse_field(r.status, " acked=") + 1;
        sessions_[name] = std::move(s);
        out = r;
      }
    }
    return;
  }
  if (cmd == "open" || cmd == "resume") {
    SessionState s;
    s.open_line = line;
    // A resumed session already consumed request ids: continue the
    // sequence ABOVE the server's acked watermark, or fresh commands
    // would hit the dedup window and replay stale cached responses.
    s.next_req = parse_field(out.status, " acked=") + 1;
    sessions_[name] = std::move(s);
  } else if (cmd == "close") {
    sessions_.erase(name);
  } else if (sit != sessions_.end()) {
    prune_committed(sit->second, out.status);
  }
}

bool RetryClient::exec(const std::string& line, Response& out) {
  ++stats_.requests;
  const auto [cmd, name] = cmd_and_name(line);
  std::string wire = line;
  std::uint64_t req = 0;
  if (is_mutating(cmd)) {
    auto sit = sessions_.find(name);
    if (sit != sessions_.end()) {
      req = sit->second.next_req++;
      wire = "@" + std::to_string(req) + " " + line;
      sit->second.replay.emplace_back(req, wire);
    }
  }
  bool counted_retry = false;
  for (unsigned attempt = 0; attempt < config_.max_attempts; ++attempt) {
    if (attempt > 0) {
      if (!counted_retry) {
        ++stats_.retries;
        counted_retry = true;
      }
      backoff(attempt);
    }
    if (!client_.connected()) {
      bool handled = false;
      if (!reconnect_and_resume(name, req, &out, &handled)) {
        if (client_.timed_out()) ++stats_.timeouts;
        client_.close();
        continue;
      }
      if (handled) {
        // The current line was replayed as part of the resume sweep;
        // its response is already captured.
        finish(cmd, name, req, line, out);
        return true;
      }
    }
    if (!client_.request(wire, out)) {
      if (client_.timed_out()) ++stats_.timeouts;
      error_ = client_.error();
      client_.close();
      continue;
    }
    if (!out.ok() && !config_.endpoints.empty() &&
        refused_as_standby(out)) {
      // A fenced standby refusing an open/resume is an endpoint miss,
      // not a delivered answer: retry on the next server in the list.
      error_ = out.status;
      client_.close();
      fail_over();
      continue;
    }
    finish(cmd, name, req, line, out);
    return true;
  }
  ++stats_.giveups;
  return false;
}

}  // namespace parulel::net
