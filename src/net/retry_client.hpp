// RetryClient: exactly-once request delivery over a flaky network.
//
// Wraps NetClient with the client half of the parulel/2 contract:
// every mutating command (assert/retract/run) on a known session is
// stamped with a monotonically increasing `@N` request id and kept in a
// per-session replay buffer until the server reports it committed.
// When the connection dies — reset, timeout, server crash — exec()
// backs off (bounded exponential + seed-driven jitter), redials,
// reattaches each session with `resume NAME` (falling back to replaying
// the original `open` line if the server lost the durable state), and
// resends the buffered lines in order. The server's dedup window makes
// the resends safe: an id whose effect survived the crash is answered
// from the cached response instead of re-executing, so a batch is
// applied exactly once no matter how many times the wire ate its ack.
//
// Buffer pruning, the part that keeps this exactly-once rather than
// at-least-once:
//   - `committed=K` (on run/resume responses) prunes every id <= K —
//     those are journaled server-side and will survive any crash;
//   - an `err` response prunes that id immediately: the request was
//     REFUSED, the user saw the failure, and silently replaying it
//     after a reconnect would apply an op the user believes failed.
//
// FAILOVER: RetryConfig::endpoints is an ordered list of backups tried
// after {host, port}. A failed dial — or a standby answering
// `err not-primary` because its replication link still sees the
// primary (the promotion fence) — advances the endpoint cursor
// round-robin, so when the primary is kill -9'd the same
// resume-and-replay machinery lands on the hot standby (which promotes
// the name from its replicated journal) and the stream continues with
// the exactly-once guarantees intact. A dead CLUSTER — every endpoint
// refusing — burns through max_attempts and returns false, which the
// CLI surfaces as a terminal `err unavailable`.
//
// Non-mutating commands (query, stats, ...) are retried unstamped —
// they are idempotent reads. Used by `parulel_cli --connect --retry N`
// and the crash-recovery tests (tests/test_net.cpp).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "net/client.hpp"
#include "obs/stats.hpp"
#include "support/rng.hpp"

namespace parulel::net {

struct RetryConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  /// Transport attempts per exec() before giving up.
  unsigned max_attempts = 8;

  /// Backoff before attempt k (k >= 1): full jitter, uniform in
  /// [0, min(base * 2^(k-1), max)]. The exponential ceiling saturates
  /// at `max` instead of overflowing at high attempt counts, and the
  /// full-window jitter decorrelates clients that all lost the same
  /// primary at the same moment (no synchronized reconnect stampede).
  std::uint64_t backoff_base_ms = 10;
  std::uint64_t backoff_max_ms = 2'000;

  std::uint64_t connect_timeout_ms = 2'000;
  std::uint64_t io_timeout_ms = 5'000;

  /// Jitter stream seed (deterministic backoff schedules under test).
  std::uint64_t seed = 1;

  /// Ordered failover list, tried AFTER {host, port}: when a dial
  /// fails, the client advances to the next endpoint (round-robin over
  /// the whole list) before the next attempt, counting a failover.
  /// Sessions resume on whichever server answers — a backup serves a
  /// failed-over `resume NAME` from its replicated journal.
  std::vector<std::pair<std::string, std::uint16_t>> endpoints;
};

class RetryClient {
 public:
  explicit RetryClient(RetryConfig config);

  RetryClient(const RetryClient&) = delete;
  RetryClient& operator=(const RetryClient&) = delete;

  /// Send one protocol line with retry/reconnect/replay. Returns true
  /// when A response was obtained (out.ok() may still be false — an
  /// `err` response is a delivered answer, not a transport failure);
  /// false after max_attempts transport failures (see error()).
  bool exec(const std::string& line, Response& out);

  /// Unacknowledged stamped lines across all sessions (0 = everything
  /// the user was told `ok` about is journaled server-side).
  std::size_t unacked() const;

  const std::string& error() const { return error_; }
  const RetryStats& stats() const { return stats_; }
  bool connected() const { return client_.connected(); }

  /// The delay backoff(attempt) would sleep, in ms: full jitter drawn
  /// uniformly from [0, min(base * 2^(attempt-1), max)], with the
  /// exponential ceiling saturating at max instead of overflowing.
  /// Exposed (and draws from the jitter stream) so tests can verify the
  /// schedule without sleeping through it.
  std::uint64_t backoff_delay_ms(unsigned attempt);

 private:
  struct SessionState {
    std::string open_line;   ///< replayed when the server lost the state
    std::uint64_t next_req = 1;
    /// Stamped lines sent but not yet known committed, oldest first.
    std::deque<std::pair<std::uint64_t, std::string>> replay;
  };

  /// Dial + resume every session + replay buffers. When the current
  /// exec()'s stamped line is replayed along the way, its response is
  /// captured into *out and *handled set.
  bool reconnect_and_resume(const std::string& session, std::uint64_t req,
                            Response* out, bool* handled);
  /// Post-delivery bookkeeping: session registration, buffer pruning,
  /// the open-collision -> resume fallback.
  void finish(const std::string& cmd, const std::string& name,
              std::uint64_t req, const std::string& line, Response& out);
  /// Sleep for backoff_delay_ms(attempt), accumulating stats.
  void backoff(unsigned attempt);
  /// Advance the endpoint cursor round-robin (counts a failover).
  void fail_over();
  /// `err not-primary`: a fenced hot standby whose primary still lives.
  static bool refused_as_standby(const Response& r);
  void prune_committed(SessionState& s, const std::string& status);
  /// " key=" integer extraction from a status line; 0 when absent.
  static std::uint64_t parse_field(const std::string& status,
                                   std::string_view key);
  static std::uint64_t parse_committed(const std::string& status);

  /// Endpoint the next dial targets: 0 = {host, port}, k > 0 =
  /// endpoints[k - 1]. Advanced round-robin on dial failure.
  std::size_t endpoint_ = 0;

  RetryConfig config_;
  NetClient client_;
  Rng rng_;
  /// Ordered map: resume/replay order is deterministic.
  std::map<std::string, SessionState> sessions_;
  RetryStats stats_;
  std::string error_;
};

}  // namespace parulel::net
