#include "net/replication.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "distrib/faults.hpp"
#include "service/journal.hpp"

namespace parulel::net {

namespace {

constexpr std::string_view kReplHello = "repl-hello parulel/2\n";
constexpr std::string_view kReplHelloOk = "ok repl-hello parulel/2";

std::string hex_encode(std::string_view bytes) {
  static const char digits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out += digits[c >> 4];
    out += digits[c & 0xf];
  }
  return out;
}

bool hex_decode(std::string_view hex, std::string* out) {
  if (hex.size() % 2 != 0) return false;
  out->clear();
  out->reserve(hex.size() / 2);
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out->push_back(static_cast<char>((hi << 4) | lo));
  }
  return true;
}

/// Blocking full send; false on any failure.
bool send_all(int fd, std::string_view data) {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return true;
}

void fsync_parent_dir(const std::string& path) {
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  const int fd = ::open(dir.empty() ? "." : dir.c_str(),
                        O_RDONLY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

/// Same constraints as the service's durable names: a shipped NAME
/// becomes a filename, so it must never traverse out of the journal
/// directory — even if the peer is confused or hostile.
bool safe_name(const std::string& name) {
  if (name.empty() || name.size() > 128 || name.front() == '.') return false;
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '-' && c != '.') {
      return false;
    }
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------- hub

ReplicationHub::ReplicationHub(std::uint64_t timeout_ms,
                               std::unique_ptr<FaultInjector> injector)
    : timeout_ms_(timeout_ms), injector_(std::move(injector)) {}

ReplicationHub::~ReplicationHub() { shutdown(); }

void ReplicationHub::adopt(int fd) {
  std::unique_ptr<Conn> old;
  {
    std::scoped_lock lock(mutex_);
    old = std::move(conn_);
    if (old && old->open) {
      old->open = false;
      ::shutdown(old->fd, SHUT_RDWR);
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->gen = ++gen_counter_;
    conn->open = true;
    ++stats_.replica_connects;
    Conn* cp = conn.get();
    conn->reader = std::thread([this, cp] { reader_loop(cp); });
    conn_ = std::move(conn);
    cv_.notify_all();
  }
  if (old) {
    if (old->reader.joinable()) old->reader.join();
    if (old->fd >= 0) ::close(old->fd);
  }
}

void ReplicationHub::shutdown() {
  std::unique_ptr<Conn> old;
  {
    std::scoped_lock lock(mutex_);
    old = std::move(conn_);
    if (old && old->open) {
      old->open = false;
      ::shutdown(old->fd, SHUT_RDWR);
    }
    cv_.notify_all();
  }
  if (old) {
    if (old->reader.joinable()) old->reader.join();
    if (old->fd >= 0) ::close(old->fd);
  }
}

void ReplicationHub::reader_loop(Conn* conn) {
  std::string buf;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t nl;
    while ((nl = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      std::uint64_t ack = 0;
      std::istringstream in(line);
      std::string cmd;
      in >> cmd >> ack;
      if (cmd != "repl-ack") continue;
      std::scoped_lock lock(mutex_);
      if (auto it = ackloss_.find(ack); it != ackloss_.end()) {
        // Chaos: this frame's ack is "lost on the wire" — the commit
        // that waits for it times out and degrades. Acks are
        // cumulative, so a later one heals the watermark.
        ackloss_.erase(it);
        continue;
      }
      ++stats_.acks_received;
      if (ack > conn->last_acked) conn->last_acked = ack;
      if (conn->degraded && conn->last_acked >= conn->last_sent) {
        conn->degraded = false;  // caught up: semi-sync resumes
      }
      cv_.notify_all();
    }
  }
  std::scoped_lock lock(mutex_);
  conn->open = false;
  cv_.notify_all();
}

void ReplicationHub::kill_locked() {
  if (conn_ && conn_->open) {
    conn_->open = false;
    ::shutdown(conn_->fd, SHUT_RDWR);  // reader exits; join at replace
  }
  cv_.notify_all();
}

bool ReplicationHub::send_locked(const std::string& frame) {
  if (!send_all(conn_->fd, frame)) {
    kill_locked();
    return false;
  }
  return true;
}

std::uint64_t ReplicationHub::send_snapshot_locked(const std::string& name,
                                                   const std::string& bytes) {
  const std::uint64_t ship = conn_->next_ship++;
  std::string frame = "repl-snapshot " + name + " " + std::to_string(ship) +
                      " " + (bytes.empty() ? std::string("-")
                                           : hex_encode(bytes)) +
                      "\n";
  if (!send_locked(frame)) return 0;
  conn_->synced.insert(name);
  conn_->last_sent = ship;
  ++stats_.snapshots_shipped;
  stats_.bytes_shipped += bytes.size();
  return ship;
}

void ReplicationHub::wait_ack_locked(std::unique_lock<std::mutex>& lock,
                                     std::uint64_t ship) {
  if (timeout_ms_ == 0 || conn_->degraded) {
    ++stats_.async_commits;
    return;
  }
  const std::uint64_t gen = conn_->gen;
  cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms_), [&] {
    return !conn_ || conn_->gen != gen || !conn_->open ||
           conn_->last_acked >= ship;
  });
  if (conn_ && conn_->gen == gen && conn_->open &&
      conn_->last_acked >= ship) {
    ++stats_.sync_commits;
    return;
  }
  if (conn_ && conn_->gen == gen && conn_->open) {
    // The replica is alive but slow: degrade to async rather than
    // stall the data path; the ack reader re-arms semi-sync once the
    // watermark catches up.
    ++stats_.repl_degraded;
    conn_->degraded = true;
  }
  ++stats_.async_commits;
}

void ReplicationHub::sync_name(const std::string& name,
                               const std::string& bytes) {
  std::scoped_lock lock(mutex_);
  if (!conn_ || !conn_->open || conn_->synced.count(name)) return;
  send_snapshot_locked(name, bytes);
}

void ReplicationHub::ship_batch(const std::string& name, std::uint64_t seq,
                                const std::string& payload,
                                const std::string& path) {
  (void)seq;  // the record's own seq rides inside the payload
  std::unique_lock lock(mutex_);
  if (!conn_ || !conn_->open) return;  // no replica: local-only commit
  FaultVerdict verdict;
  if (injector_) verdict = injector_->roll();
  if (verdict.drop) {
    // Cut the channel mid-stream: the replica reconnects and the
    // per-connection synced set forces a full file resync.
    kill_locked();
    return;
  }
  if (verdict.delay > 0) {
    lock.unlock();
    std::this_thread::sleep_for(std::chrono::milliseconds(verdict.delay));
    lock.lock();
    if (!conn_ || !conn_->open) return;
  }
  std::uint64_t ship = 0;
  if (!conn_->synced.count(name)) {
    // First frame for this name on this connection: ship the whole
    // file. The caller holds the session lock, so the read is
    // consistent and already contains this batch.
    std::string bytes;
    if (!read_file(path, &bytes)) return;
    if (verdict.duplicate) ackloss_.insert(conn_->next_ship);
    ship = send_snapshot_locked(name, bytes);
  } else {
    if (verdict.duplicate) ackloss_.insert(conn_->next_ship);
    ship = conn_->next_ship++;
    std::string frame = "repl-batch " + name + " " + std::to_string(ship) +
                        " " + hex_encode(payload) + "\n";
    if (!send_locked(frame)) return;
    conn_->last_sent = ship;
    ++stats_.batches_shipped;
    stats_.bytes_shipped += payload.size();
  }
  if (ship == 0) return;
  wait_ack_locked(lock, ship);
}

void ReplicationHub::ship_file(const std::string& name,
                               const std::string& path) {
  std::unique_lock lock(mutex_);
  if (!conn_ || !conn_->open) return;
  std::string bytes;
  if (!read_file(path, &bytes)) return;
  const std::uint64_t ship = send_snapshot_locked(name, bytes);
  if (ship == 0) return;
  wait_ack_locked(lock, ship);
}

void ReplicationHub::ship_remove(const std::string& name) {
  std::scoped_lock lock(mutex_);
  if (!conn_ || !conn_->open) return;
  const std::uint64_t ship = conn_->next_ship++;
  std::string frame =
      "repl-snapshot " + name + " " + std::to_string(ship) + " -\n";
  if (!send_locked(frame)) return;
  conn_->last_sent = ship;
  conn_->synced.erase(name);
}

bool ReplicationHub::caught_up() const {
  std::scoped_lock lock(mutex_);
  return conn_ && conn_->open && conn_->last_acked == conn_->last_sent;
}

ReplStats ReplicationHub::stats_snapshot() const {
  std::scoped_lock lock(mutex_);
  return stats_;
}

// ------------------------------------------------------------ applier

ReplicaApplier::ReplicaApplier(
    Config config, std::function<bool(const std::string&)> is_promoted)
    : config_(std::move(config)), is_promoted_(std::move(is_promoted)) {}

ReplicaApplier::~ReplicaApplier() { stop(); }

void ReplicaApplier::start() {
  std::scoped_lock lock(mutex_);
  if (thread_.joinable()) return;
  stopping_ = false;
  // Arm the fence's grace clock: until the first handshake (or for
  // grace_ms, whichever comes first) the standby refuses promotion —
  // "I have not heard from the primary yet" is not evidence it died.
  last_up_ = std::chrono::steady_clock::now();
  thread_ = std::thread([this] { loop(); });
}

void ReplicaApplier::stop() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  }
  if (thread_.joinable()) thread_.join();
}

ReplStats ReplicaApplier::stats_snapshot() const {
  std::scoped_lock lock(mutex_);
  return stats_;
}

bool ReplicaApplier::replicating(std::uint64_t grace_ms) const {
  std::scoped_lock lock(mutex_);
  if (link_up_) return true;
  return std::chrono::steady_clock::now() - last_up_ <
         std::chrono::milliseconds(grace_ms);
}

void ReplicaApplier::loop() {
  for (;;) {
    {
      std::scoped_lock lock(mutex_);
      if (stopping_) return;
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    bool served_stop = false;
    if (fd >= 0) {
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(config_.port);
      if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) == 1 &&
          ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
              0) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        {
          std::scoped_lock lock(mutex_);
          if (stopping_) {
            ::close(fd);
            return;
          }
          fd_ = fd;
        }
        served_stop = serve(fd);
        {
          std::scoped_lock lock(mutex_);
          fd_ = -1;
          if (link_up_) {
            link_up_ = false;
            last_up_ = std::chrono::steady_clock::now();
          }
        }
      }
      ::close(fd);
    }
    if (served_stop) return;
    // Primary unreachable (or the channel died): back off and redial.
    // The per-connection handshake makes reconnects self-healing — the
    // primary full-resyncs every name the new channel touches.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config_.reconnect_backoff_ms));
  }
}

bool ReplicaApplier::serve(int fd) {
  if (!send_all(fd, kReplHello)) return false;
  std::string buf;
  char chunk[65536];
  bool handshaken = false;
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      std::scoped_lock lock(mutex_);
      return stopping_;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t nl;
    while ((nl = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!handshaken) {
        if (line.rfind(kReplHelloOk, 0) != 0) return false;
        handshaken = true;
        std::scoped_lock lock(mutex_);
        ++stats_.replica_connects;
        link_up_ = true;
        continue;
      }
      std::uint64_t ship = 0;
      if (!apply_frame(line, &ship)) return false;
      if (ship != 0 &&
          !send_all(fd, "repl-ack " + std::to_string(ship) + "\n")) {
        return false;
      }
    }
  }
}

bool ReplicaApplier::apply_frame(const std::string& line,
                                 std::uint64_t* ship) {
  std::istringstream in(line);
  std::string cmd;
  std::string name;
  std::uint64_t seq = 0;
  std::string hex;
  in >> cmd >> name >> seq >> hex;
  auto bad = [this] {
    std::scoped_lock lock(mutex_);
    ++stats_.apply_errors;
    return false;  // drop the connection: reconnect forces a resync
  };
  if ((cmd != "repl-batch" && cmd != "repl-snapshot") || seq == 0 ||
      hex.empty() || !safe_name(name)) {
    return bad();
  }
  *ship = seq;
  const std::string path =
      (std::filesystem::path(config_.journal_dir) / (name + ".wal"))
          .string();
  if (is_promoted_ && is_promoted_(name)) {
    // Failover happened: a local session owns this file now. Ack and
    // drop — the primary's stream is stale for this name.
    return true;
  }
  if (cmd == "repl-batch") {
    std::string payload;
    if (!hex_decode(hex, &payload)) return bad();
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
    if (fd < 0) return bad();  // no snapshot first? resync fixes it
    const std::string frame = service::frame_record(payload);
    const char* p = frame.data();
    std::size_t left = frame.size();
    bool wrote = true;
    while (left > 0) {
      const ssize_t n = ::write(fd, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        wrote = false;
        break;
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    if (wrote && config_.fsync && ::fsync(fd) != 0) wrote = false;
    ::close(fd);
    if (!wrote) return bad();
    std::scoped_lock lock(mutex_);
    ++stats_.applied_batches;
    return true;
  }
  // repl-snapshot: "-" means the primary closed (unlinked) the name;
  // anything else is the whole file, applied via tmp+fsync+rename so
  // the replica's copy is never torn by its own crash either.
  if (hex == "-") {
    ::unlink(path.c_str());
    std::scoped_lock lock(mutex_);
    ++stats_.applied_snapshots;
    return true;
  }
  std::string bytes;
  if (!hex_decode(hex, &bytes)) return bad();
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(),
                        O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) return bad();
  bool wrote = true;
  const char* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      wrote = false;
      break;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (wrote && ::fsync(fd) != 0) wrote = false;
  ::close(fd);
  if (!wrote || ::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return bad();
  }
  fsync_parent_dir(path);
  std::scoped_lock lock(mutex_);
  ++stats_.applied_snapshots;
  return true;
}

}  // namespace parulel::net
