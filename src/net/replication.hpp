// The replication channel: primary -> backup journal shipping, the
// parulel/2 extension documented in PROTOCOL.md ("Replication").
//
// A backup NetServer started with --replica-of HOST:PORT dials its
// primary, sends `repl-hello parulel/2`, and from then on only ever
// RECEIVES: the primary ships every durable batch record
// (`repl-batch`) and every whole-file rewrite (`repl-snapshot`) down
// the channel, and the replica answers each frame with a cumulative
// `repl-ack`. The replica applies frames to DISK ONLY — its journal
// files stay byte-identical to the primary's, and they become live
// sessions lazily, through the normal recovery path, the moment a
// failed-over client issues `resume NAME`.
//
// Two halves, one per role:
//
//   - ReplicationHub (primary): owns the replica connection a shard
//     accepted via `repl-hello`, serializes every frame send under one
//     lock, and implements the SEMI-SYNC commit wait — the service's
//     on_batch_durable hook calls ship_batch() while still holding the
//     session lock, so the `ok` cannot leave the process until the
//     replica acked (or the wait timed out). A timeout flips the
//     connection to DEGRADED (async) mode and bumps repl_degraded
//     instead of blocking the data path; catching up on acks restores
//     semi-sync. Per-connection `synced` set: the first frame for a
//     name always ships the whole file, so a fresh (or reconnected)
//     replica needs no shared state to catch up.
//
//   - ReplicaApplier (backup): the dial/apply/ack client thread, with
//     reconnect + backoff. A name the replica has PROMOTED (a
//     failed-over client resumed it, so a local session now owns the
//     file) is never touched again — frames for it are acked and
//     dropped.
//
// The hub reuses the NetFaultPlan injector for chaos runs: a rolled
// drop cuts the channel (the replica reconnects and full-resyncs),
// ack loss eats one frame's ack (exercising the degrade machinery),
// delay holds the frame. None of that may change client-visible
// responses — replication rides strictly behind the data path.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "obs/stats.hpp"

namespace parulel {
class FaultInjector;
}

namespace parulel::net {

class ReplicationHub {
 public:
  /// `timeout_ms` is the semi-sync ack wait (0 = pure async);
  /// `injector` (optional) rolls chaos verdicts per shipped frame.
  ReplicationHub(std::uint64_t timeout_ms,
                 std::unique_ptr<FaultInjector> injector);
  ~ReplicationHub();

  ReplicationHub(const ReplicationHub&) = delete;
  ReplicationHub& operator=(const ReplicationHub&) = delete;

  /// Take ownership of a handshaken replication socket (blocking mode,
  /// `ok repl-hello` already sent). Replaces any previous replica.
  void adopt(int fd);

  /// Initial catch-up: full-sync `name` unless the live connection
  /// already shipped it. `bytes` is the whole journal file.
  void sync_name(const std::string& name, const std::string& bytes);

  /// ServiceConfig::on_batch_durable — called under the session lock.
  /// Ships the record (or, for a name this connection has not synced
  /// yet, the whole file at `path`) and performs the semi-sync wait.
  void ship_batch(const std::string& name, std::uint64_t seq,
                  const std::string& payload, const std::string& path);

  /// ServiceConfig::on_journal_rewritten — snapshot truncation or a
  /// fresh create replaced the file wholesale; ship it whole.
  void ship_file(const std::string& name, const std::string& path);

  /// ServiceConfig::on_journal_removed — `close NAME` unlinked the
  /// journal; tell the replica to unlink its copy.
  void ship_remove(const std::string& name);

  /// True when a replica is connected and every shipped frame is acked
  /// (the kill-primary chaos gate polls this before pulling the plug).
  bool caught_up() const;

  ReplStats stats_snapshot() const;

  /// Close the channel and join the ack reader.
  void shutdown();

 private:
  struct Conn {
    int fd = -1;
    std::uint64_t gen = 0;
    bool open = false;
    std::set<std::string> synced;
    std::uint64_t next_ship = 1;
    std::uint64_t last_sent = 0;
    std::uint64_t last_acked = 0;
    bool degraded = false;
    std::thread reader;
  };

  void reader_loop(Conn* conn);
  /// Sends under mutex_ (all frames serialized); kills the connection
  /// on a write failure. False when the frame did not go out.
  bool send_locked(const std::string& frame);
  void kill_locked();
  void wait_ack_locked(std::unique_lock<std::mutex>& lock,
                       std::uint64_t ship);
  /// Build + send one repl-snapshot frame for `name` carrying `bytes`;
  /// returns the ship seq (0 when nothing was sent).
  std::uint64_t send_snapshot_locked(const std::string& name,
                                     const std::string& bytes);

  const std::uint64_t timeout_ms_;
  std::unique_ptr<FaultInjector> injector_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::unique_ptr<Conn> conn_;
  std::uint64_t gen_counter_ = 0;
  std::set<std::uint64_t> ackloss_;  ///< ship seqs whose ack chaos eats
  ReplStats stats_;
};

class ReplicaApplier {
 public:
  struct Config {
    std::string host;
    std::uint16_t port = 0;
    std::string journal_dir;
    bool fsync = true;  ///< fsync each applied record (mirror primary)
    std::uint64_t reconnect_backoff_ms = 200;
  };

  /// `is_promoted(name)` answers whether a local session owns `name`'s
  /// file now (failover happened) — such frames are acked and dropped.
  ReplicaApplier(Config config,
                 std::function<bool(const std::string&)> is_promoted);
  ~ReplicaApplier();

  ReplicaApplier(const ReplicaApplier&) = delete;
  ReplicaApplier& operator=(const ReplicaApplier&) = delete;

  void start();
  void stop();

  /// Promotion-fence input: true while the replication link is up, or
  /// has been down for less than `grace_ms` (a chaos cut heals within
  /// the reconnect backoff — only a primary that STAYS unreachable
  /// clears the fence). Also true for the first `grace_ms` after
  /// start(), before the first handshake: a restarted standby must not
  /// promote its shadow files just because it has not dialed home yet.
  bool replicating(std::uint64_t grace_ms) const;

  ReplStats stats_snapshot() const;

 private:
  void loop();
  /// Serve one established connection until it fails; true = orderly
  /// stop requested, false = reconnect.
  bool serve(int fd);
  bool apply_frame(const std::string& line, std::uint64_t* ship);

  Config config_;
  std::function<bool(const std::string&)> is_promoted_;

  std::thread thread_;
  mutable std::mutex mutex_;
  bool stopping_ = false;
  int fd_ = -1;  ///< live socket, for stop() to shutdown(2)
  bool link_up_ = false;  ///< handshake done, frames flowing
  /// When the link last went down (or start() time before the first
  /// handshake) — the fence's grace clock.
  std::chrono::steady_clock::time_point last_up_{};
  ReplStats stats_;
};

}  // namespace parulel::net
