// Cluster socket plumbing: the small, nonblocking line-IO layer the
// multi-process cluster runtime (distrib/site_runner.hpp,
// distrib/cluster_driver.hpp) is built on.
//
// Cluster peers exchange newline-terminated parulel/2 lines, but unlike
// the request/response NetClient a site must interleave many peers plus
// the driver without dedicating a thread to each, so every connection
// is nonblocking and the runtime polls. LineConn owns one such fd and
// splits the byte stream back into lines; reads never block (drain
// whatever the kernel has), writes block at most briefly (poll for
// writability per chunk — cluster lines are small and the peer is
// always draining, so a stuck write means a dead peer, which surfaces
// as a write error and becomes a redial).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace parulel::net {

/// One nonblocking line-oriented TCP connection. Move-only; owns the
/// fd. A read or write failure closes the connection — the cluster
/// runtime treats any dead conn the same way (redial, retransmit), so
/// there is no per-error state to carry.
class LineConn {
 public:
  LineConn() = default;
  /// Takes ownership of `fd`; flips it nonblocking and sets
  /// TCP_NODELAY (barrier latency is round-trip-bound).
  explicit LineConn(int fd);
  ~LineConn();

  LineConn(LineConn&& other) noexcept;
  LineConn& operator=(LineConn&& other) noexcept;
  LineConn(const LineConn&) = delete;
  LineConn& operator=(const LineConn&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Drain every byte the kernel has ready and append each complete
  /// line (newline stripped) to `out`. Never blocks. Returns false —
  /// and closes — on EOF or a read error; lines already split are
  /// still in `out`.
  bool read_lines(std::vector<std::string>& out);

  /// Write one line (newline appended), polling for writability on a
  /// full socket buffer. Returns false — and closes — on error.
  bool write_line(std::string_view line);

 private:
  int fd_ = -1;
  std::string rbuf_;
};

/// Blocking-with-timeout TCP connect. Returns the connected fd, or -1
/// with `error` set.
int dial_tcp(const std::string& host, std::uint16_t port, std::string* error,
             std::uint64_t timeout_ms = 5000);

/// Nonblocking loopback listener. Binds 127.0.0.1:`port` (0 = ephemeral;
/// the bound port lands in `*bound_port`). Returns the listen fd, or -1
/// with `error` set.
int listen_tcp(std::uint16_t port, std::uint16_t* bound_port,
               std::string* error);

/// Accept one pending connection off a nonblocking listener, or -1 when
/// none is waiting.
int accept_conn(int listen_fd);

}  // namespace parulel::net
