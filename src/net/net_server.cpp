#include "net/net_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstring>
#include <deque>
#include <exception>
#include <sstream>
#include <thread>
#include <unordered_map>

#include <filesystem>

#include "distrib/faults.hpp"
#include "net/replication.hpp"
#include "service/protocol.hpp"
#include "support/error.hpp"

namespace parulel::net {

namespace {

constexpr std::string_view kServerFull = "err server-full\n";
constexpr std::string_view kLineTooLong = "err line-too-long\n";
constexpr std::string_view kBackpressure = "err backpressure\n";

double parse_rate(const std::string& key, const std::string& value) {
  double rate = 0.0;
  auto [p, ec] =
      std::from_chars(value.data(), value.data() + value.size(), rate);
  if (ec != std::errc() || p != value.data() + value.size() || rate < 0.0 ||
      rate >= 1.0) {
    throw ParseError("net-fault-plan: " + key + " wants a rate in [0, 1), got " +
                     value);
  }
  return rate;
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  std::uint64_t out = 0;
  auto [p, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc() || p != value.data() + value.size()) {
    throw ParseError("net-fault-plan: " + key + " wants an integer, got " +
                     value);
  }
  return out;
}

/// The session NAME a request line addresses, or empty when the line is
/// connection-local (hello/quit/bare stats), nameless, or malformed.
/// Mirrors the protocol tokenizer: whitespace-split, '#' starts a
/// comment, an optional '@N' request-id token precedes the command.
std::string_view route_name(std::string_view line) {
  std::string_view tok[3];
  std::size_t ntok = 0;
  std::size_t i = 0;
  while (i < line.size() && ntok < 3) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i >= line.size()) break;
    std::size_t j = i;
    while (j < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[j]))) {
      ++j;
    }
    const std::string_view t = line.substr(i, j - i);
    if (t.front() == '#') break;
    tok[ntok++] = t;
    i = j;
  }
  if (ntok == 0) return {};
  std::size_t c = 0;
  if (tok[0].front() == '@') c = 1;  // parulel/2 request-id prefix
  if (ntok <= c + 1) return {};
  const std::string_view cmd = tok[c];
  if (cmd == "open" || cmd == "resume" || cmd == "assert" ||
      cmd == "retract" || cmd == "run" || cmd == "query" ||
      cmd == "snapshot" || cmd == "restore" || cmd == "close" ||
      cmd == "stats") {
    return tok[c + 1];
  }
  return {};
}

}  // namespace

NetFaultPlan NetFaultPlan::parse(const std::string& spec) {
  NetFaultPlan plan;
  std::istringstream in(spec);
  std::string pair;
  while (std::getline(in, pair, ',')) {
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      throw ParseError("net-fault-plan: want key=value, got " + pair);
    }
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    if (key == "seed") {
      plan.seed = parse_u64(key, value);
    } else if (key == "drop") {
      plan.drop_rate = parse_rate(key, value);
    } else if (key == "ackloss") {
      plan.ack_loss_rate = parse_rate(key, value);
    } else if (key == "delay") {
      plan.delay_rate = parse_rate(key, value);
    } else if (key == "maxdelay") {
      plan.max_delay_ms =
          static_cast<unsigned>(std::max<std::uint64_t>(1, parse_u64(key, value)));
    } else {
      throw ParseError("net-fault-plan: unknown key: " + key);
    }
  }
  return plan;
}

/// One live client connection: socket, its protocol conversation, the
/// framing buffers, and per-connection accounting. Owned by exactly one
/// shard; only that shard's thread ever touches it.
struct NetServer::Conn {
  int fd = -1;
  std::uint64_t id = 0;  ///< server-unique; keys cross-shard conversations
  std::unique_ptr<service::ServeProtocol> protocol;

  std::string rbuf;       ///< bytes received, not yet framed into lines
  std::string wbuf;       ///< response bytes not yet written
  std::size_t woff = 0;   ///< consumed prefix of wbuf

  std::uint64_t last_active_ms = 0;
  std::uint64_t hold_until_ms = 0;  ///< fault-injected response delay
  bool read_done = false;          ///< client half-closed (EOF seen)
  bool closing = false;            ///< flush wbuf, then close
  bool skipping_oversize = false;  ///< discarding up to the next newline
  bool dead = false;               ///< swept by the event loop
  bool awaiting_forward = false;   ///< parked: a line is executing on its
                                   ///< session's home shard
  bool did_forward = false;        ///< remote conversations may exist
  bool fwd_ack_loss = false;       ///< rolled verdict held for the reply
  unsigned fwd_delay_ms = 0;       ///< rolled verdict held for the reply
  int prev_errors = 0;             ///< protocol error count already folded

  std::size_t pending_write() const { return wbuf.size() - woff; }
};

/// One cross-thread mailbox message. The acceptor posts NewConn, Drain,
/// and Terminate; shards post Forward / Reply / CloseRemote to each
/// other. Each mailbox is FIFO, which is the ordering the protocol
/// relies on (a connection's Forwards precede its CloseRemote).
struct NetServer::Msg {
  enum class Kind : std::uint8_t {
    NewConn,      ///< acceptor hands over a socket (fd, conn_id)
    Forward,      ///< execute `line` for conn_id; reply to `origin`
    Reply,        ///< a Forward's response bytes coming home
    CloseRemote,  ///< conn_id died: destroy its remote conversation
    Drain,        ///< graceful shutdown: flush and close
    Terminate,    ///< drain complete everywhere: exit the loop
  };
  Kind kind = Kind::NewConn;
  int fd = -1;
  std::uint64_t conn_id = 0;
  unsigned origin = 0;
  std::string line;
  std::string response;
  int error_delta = 0;
  bool quit = false;
};

/// One event-loop shard: its own RuleService, poll loop, connections,
/// fault injector, stats row, and the remote conversations it executes
/// on behalf of connections owned by other shards. Everything here is
/// confined to the shard thread except the mailbox and the stats row.
struct NetServer::Shard {
  NetServer* server = nullptr;
  unsigned index = 0;
  unsigned nshards = 1;
  std::unique_ptr<service::RuleService> service;
  std::unique_ptr<FaultInjector> injector;  ///< null = no fault plan
  int wake_read_fd = -1;
  int wake_write_fd = -1;
  std::thread thread;

  std::mutex mbox_mutex;
  std::deque<Msg> mbox;

  std::vector<std::unique_ptr<Conn>> conns;
  std::unordered_map<std::uint64_t, Conn*> by_id;
  /// conn id -> the protocol conversation executing that connection's
  /// forwarded lines against THIS shard's service (echo off: the origin
  /// shard echoes). Destroyed by CloseRemote or Terminate, which
  /// detaches durable sessions exactly like a local disconnect.
  std::unordered_map<std::uint64_t, std::unique_ptr<service::ServeProtocol>>
      remote;

  bool draining = false;
  bool terminate = false;
  std::uint64_t drain_deadline = 0;

  mutable std::mutex stats_mutex;
  NetStats stats;

  ~Shard() {
    for (auto& conn : conns) {
      if (conn->fd >= 0) ::close(conn->fd);
    }
    if (wake_read_fd >= 0) ::close(wake_read_fd);
    if (wake_write_fd >= 0) ::close(wake_write_fd);
  }

  void loop();
  void handle_msg(Msg& msg);
  void drain_mailbox();
  void sweep_dead();
  void handle_line(Conn& conn, std::string_view line);
  void handle_repl_hello(Conn& conn, std::string_view line);
  void execute_local(Conn& conn, std::string_view line,
                     const FaultVerdict& verdict);
  void forward(Conn& conn, unsigned home, std::string_view line,
               const FaultVerdict& verdict);
  void process_lines(Conn& conn);
  void conn_readable(Conn& conn);
  void conn_writable(Conn& conn);
};

NetServer::NetServer(NetServerConfig config) : config_(std::move(config)) {
  config_.service.workers = 0;  // synchronous: responses are a pure
                                // function of each connection's stream
  config_.service.session_ids = &session_ids_;
  if (config_.shards == 0) config_.shards = 1;
  if (config_.service.journal.enabled()) {
    // Any journaled server can be a replication primary: the hub sits
    // idle until a replica dials in with `repl-hello`. Created before
    // the shard services so their ship hooks can bind it. The hub's
    // chaos injector rolls its own stream (seed + 1009, clear of the
    // per-shard seed + i streams) so schedules stay deterministic.
    std::unique_ptr<FaultInjector> injector;
    if (config_.faults.enabled()) {
      FaultPlan plan;
      plan.seed = config_.faults.seed + 1009;
      plan.loss_rate = config_.faults.drop_rate;
      plan.duplicate_rate = config_.faults.ack_loss_rate;
      plan.delay_rate = config_.faults.delay_rate;
      plan.max_delay_cycles = config_.faults.max_delay_ms;
      injector = std::make_unique<FaultInjector>(plan);
    }
    hub_ = std::make_unique<ReplicationHub>(config_.repl_timeout_ms,
                                            std::move(injector));
    const std::string dir = config_.service.journal.dir;
    config_.service.on_batch_durable =
        [this, dir](const std::string& name, std::uint64_t seq,
                    const std::string& payload) {
          const std::string path =
              (std::filesystem::path(dir) / (name + ".wal")).string();
          hub_->ship_batch(name, seq, payload, path);
        };
    config_.service.on_journal_rewritten =
        [this](const std::string& name, const std::string& path) {
          hub_->ship_file(name, path);
        };
    config_.service.on_journal_removed = [this](const std::string& name) {
      hub_->ship_remove(name);
    };
  }
  if (!config_.replica_of.empty()) {
    // Promotion fence: while this standby's replication link is up (or
    // only briefly down — a chaos cut, not a dead primary), refuse to
    // promote shadow files or open fresh durable names. Serving a name
    // the primary still owns is split-brain. The applier is created in
    // start(); until then the guard reports not-replicating, which is
    // fine — no connection is accepted before start() either.
    config_.service.promotion_guard = [this]() -> std::string {
      if (applier_ && applier_->replicating(config_.promote_grace_ms)) {
        return "still replicating from " + config_.replica_of;
      }
      return std::string();
    };
  }
  shards_.reserve(config_.shards);
  for (unsigned i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->server = this;
    shard->index = i;
    shard->nshards = config_.shards;
    shard->service = std::make_unique<service::RuleService>(config_.service);
    if (config_.faults.enabled()) {
      // Reuse the distributed engine's seed-driven injector: loss maps
      // to a pre-execution drop, duplication to post-execution ack
      // loss, and delay cycles to milliseconds of response hold. Each
      // shard gets its own stream (seed + index) so schedules stay
      // deterministic per (load, seed, shard) without shards sharing a
      // generator; with shards == 1 this is the old schedule exactly.
      FaultPlan plan;
      plan.seed = config_.faults.seed + i;
      plan.loss_rate = config_.faults.drop_rate;
      plan.duplicate_rate = config_.faults.ack_loss_rate;
      plan.delay_rate = config_.faults.delay_rate;
      plan.max_delay_cycles = config_.faults.max_delay_ms;
      shard->injector = std::make_unique<FaultInjector>(plan);
    }
    shards_.push_back(std::move(shard));
  }
  stats_.shards = config_.shards;
}

NetServer::~NetServer() {
  if (applier_) applier_->stop();
  if (hub_) hub_->shutdown();
  shards_.clear();  // closes shard-owned sockets and wake pipes
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (stop_read_fd_ >= 0) ::close(stop_read_fd_);
  if (stop_write_fd_ >= 0) ::close(stop_write_fd_);
}

std::uint64_t NetServer::now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t NetServer::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t NetServer::busy_clock_ns() {
  // Per-thread CPU time, not wall time: busy_ns feeds the R-S4
  // slowest-shard makespan model, and on an oversubscribed host a shard
  // thread preempted mid-request would otherwise charge its wait to
  // "busy". CPU time measures the work itself wherever it's scheduled.
  struct timespec ts;
  if (::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
  }
  return now_ns();
}

service::RuleService& NetServer::shard_service(unsigned i) {
  return *shards_.at(i)->service;
}

bool NetServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    error_ = "bad bind address: " + config_.host;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    error_ = "bind " + config_.host + ":" + std::to_string(config_.port) +
             ": " + std::strerror(errno);
    return false;
  }
  if (::listen(listen_fd_, config_.backlog) != 0) {
    error_ = std::string("listen: ") + std::strerror(errno);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }

  int pipefds[2];
  if (::pipe2(pipefds, O_NONBLOCK | O_CLOEXEC) != 0) {
    error_ = std::string("pipe2: ") + std::strerror(errno);
    return false;
  }
  stop_read_fd_ = pipefds[0];
  stop_write_fd_ = pipefds[1];

  for (auto& shard : shards_) {
    if (::pipe2(pipefds, O_NONBLOCK | O_CLOEXEC) != 0) {
      error_ = std::string("pipe2: ") + std::strerror(errno);
      return false;
    }
    shard->wake_read_fd = pipefds[0];
    shard->wake_write_fd = pipefds[1];
  }

  if (!config_.replica_of.empty()) {
    // Hot standby: no startup recovery — the shipped *.wal files stay
    // passive shadow copies until a failed-over client resumes a name
    // (lazy promotion through resume_durable). Eager recovery here
    // would fight the applier for the files it is still appending to.
    if (!config_.service.journal.enabled()) {
      error_ = "--replica-of requires --journal-dir";
      return false;
    }
    const std::size_t colon = config_.replica_of.rfind(':');
    std::uint16_t rport = 0;
    if (colon != std::string::npos) {
      const std::string p = config_.replica_of.substr(colon + 1);
      std::uint64_t v = 0;
      auto [end, ec] = std::from_chars(p.data(), p.data() + p.size(), v);
      if (ec == std::errc() && end == p.data() + p.size() && v > 0 &&
          v <= 65535) {
        rport = static_cast<std::uint16_t>(v);
      }
    }
    if (colon == std::string::npos || rport == 0) {
      error_ = "bad --replica-of (want HOST:PORT): " + config_.replica_of;
      return false;
    }
    ReplicaApplier::Config rcfg;
    rcfg.host = config_.replica_of.substr(0, colon);
    rcfg.port = rport;
    rcfg.journal_dir = config_.service.journal.dir;
    rcfg.fsync = config_.service.journal.fsync;
    applier_ = std::make_unique<ReplicaApplier>(
        rcfg, [this](const std::string& name) {
          const unsigned n = static_cast<unsigned>(shards_.size());
          return shard_service(service::shard_for_name(name, n))
              .has_durable(name);
        });
    applier_->start();
  } else if (config_.service.journal.enabled()) {
    // Rebuild durable sessions before the first connection: a client
    // may lead with `resume NAME` the moment we accept. Each shard's
    // service recovers exactly the names the pinning hash assigns it,
    // so a name's journal (and any quarantine verdict) lives on its
    // home shard. Reports merge sorted by name for stable output.
    for (unsigned i = 0; i < shards_.size(); ++i) {
      const unsigned n = static_cast<unsigned>(shards_.size());
      auto reports = shards_[i]->service->recover_journals(
          [i, n](const std::string& name) {
            return service::shard_for_name(name, n) == i;
          });
      recovery_reports_.insert(recovery_reports_.end(),
                               std::make_move_iterator(reports.begin()),
                               std::make_move_iterator(reports.end()));
    }
    std::sort(recovery_reports_.begin(), recovery_reports_.end(),
              [](const service::RecoveryReport& a,
                 const service::RecoveryReport& b) { return a.name < b.name; });
  }
  return true;
}

void NetServer::stop() {
  if (stop_write_fd_ < 0) return;
  const char byte = 's';
  // Async-signal-safe by construction: one write, result ignored (the
  // pipe being full already means a stop is pending).
  [[maybe_unused]] ssize_t n = ::write(stop_write_fd_, &byte, 1);
}

NetStats NetServer::stats_snapshot() const {
  NetStats out;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    out = stats_;
  }
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->stats_mutex);
    for (const auto& f : obs::net_fields()) {
      out.*f.member += shard->stats.*f.member;
    }
  }
  return out;
}

std::vector<NetStats> NetServer::shard_stats() const {
  std::vector<NetStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->stats_mutex);
    out.push_back(shard->stats);
  }
  return out;
}

void NetServer::post(unsigned shard, Msg msg) {
  Shard& s = *shards_[shard];
  {
    std::lock_guard<std::mutex> lock(s.mbox_mutex);
    s.mbox.push_back(std::move(msg));
  }
  const char byte = 'w';
  // Nonblocking; a full pipe already means a wake is pending.
  [[maybe_unused]] ssize_t n = ::write(s.wake_write_fd, &byte, 1);
}

void NetServer::accept_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN (or a transient error): done for now
    if (live_conns_.load(std::memory_order_relaxed) >=
        config_.max_connections) {
      // Reject-not-block at the accept layer too: a one-line structured
      // refusal, then close. Best effort — the write may short-circuit.
      [[maybe_unused]] ssize_t n =
          ::write(fd, kServerFull.data(), kServerFull.size());
      ::close(fd);
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.rejected_full;
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    live_conns_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.accepted;
    }
    Msg msg;
    msg.kind = Msg::Kind::NewConn;
    msg.fd = fd;
    msg.conn_id = next_conn_id_++;
    post(next_shard_, std::move(msg));
    next_shard_ = (next_shard_ + 1) % static_cast<unsigned>(shards_.size());
  }
}

void NetServer::run() {
  for (auto& shard : shards_) {
    shard->thread = std::thread([s = shard.get()] { s->loop(); });
  }

  // The acceptor: distribute sockets until stop() (or a poll failure).
  pollfd pfds[2];
  while (!draining_) {
    pfds[0] = {stop_read_fd_, POLLIN, 0};
    pfds[1] = {listen_fd_, POLLIN, 0};
    const int ready = ::poll(pfds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      {
        std::lock_guard<std::mutex> lock(error_mutex_);
        error_ = std::string("poll: ") + std::strerror(errno);
      }
      break;
    }
    if (pfds[0].revents & POLLIN) {
      char buf[64];
      while (::read(stop_read_fd_, buf, sizeof(buf)) > 0) {
      }
      break;
    }
    if (pfds[1].revents & (POLLIN | POLLERR)) accept_ready();
  }
  draining_ = true;

  // Graceful drain: no new connections, every shard flushes what it
  // has (forwarded replies still in flight included), then terminate
  // once the last connection anywhere is gone. The per-shard drain
  // deadline bounds the wait.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (unsigned i = 0; i < shards_.size(); ++i) {
    Msg msg;
    msg.kind = Msg::Kind::Drain;
    post(i, std::move(msg));
  }
  {
    std::unique_lock<std::mutex> lock(drain_mutex_);
    drain_cv_.wait(lock, [this] {
      return live_conns_.load(std::memory_order_relaxed) == 0;
    });
  }
  for (unsigned i = 0; i < shards_.size(); ++i) {
    Msg msg;
    msg.kind = Msg::Kind::Terminate;
    post(i, std::move(msg));
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  if (applier_) applier_->stop();
  if (hub_) hub_->shutdown();
}

ReplStats NetServer::repl_stats_snapshot() const {
  ReplStats out;
  const ReplStats rows[] = {
      hub_ ? hub_->stats_snapshot() : ReplStats{},
      applier_ ? applier_->stats_snapshot() : ReplStats{},
  };
  for (const ReplStats& row : rows) {
    for (const auto& f : obs::repl_fields()) {
      out.*f.member += row.*f.member;
    }
  }
  return out;
}

bool NetServer::repl_caught_up() const {
  return hub_ && hub_->caught_up();
}

void NetServer::Shard::handle_msg(Msg& msg) {
  switch (msg.kind) {
    case Msg::Kind::NewConn: {
      auto conn = std::make_unique<Conn>();
      conn->fd = msg.fd;
      conn->id = msg.conn_id;
      service::ServeProtocol::Options popts;
      popts.echo = server->config_.echo;
      conn->protocol =
          std::make_unique<service::ServeProtocol>(*service, popts);
      conn->last_active_ms = now_ms();
      if (draining) {
        // Raced a shutdown: nothing was served, close on the sweep.
        conn->closing = true;
        conn->dead = true;
      }
      by_id[conn->id] = conn.get();
      conns.push_back(std::move(conn));
      std::lock_guard<std::mutex> lock(stats_mutex);
      stats.active = conns.size();
      break;
    }
    case Msg::Kind::Forward: {
      auto& proto = remote[msg.conn_id];
      if (!proto) {
        service::ServeProtocol::Options popts;
        popts.echo = false;  // the origin shard echoes
        proto = std::make_unique<service::ServeProtocol>(*service, popts);
      }
      Msg reply;
      reply.kind = Msg::Kind::Reply;
      reply.conn_id = msg.conn_id;
      const int errors_before = proto->errors();
      const std::uint64_t t0 = busy_clock_ns();
      try {
        const auto status = proto->handle_line(msg.line, reply.response);
        reply.quit = status == service::ServeProtocol::Status::Quit;
        reply.error_delta = proto->errors() - errors_before;
      } catch (const std::exception& e) {
        reply.response.assign("err internal: ");
        reply.response += e.what();
        reply.response += '\n';
        reply.error_delta = 1;
      }
      {
        std::lock_guard<std::mutex> lock(stats_mutex);
        stats.busy_ns += busy_clock_ns() - t0;
      }
      server->post(msg.origin, std::move(reply));
      break;
    }
    case Msg::Kind::Reply: {
      auto it = by_id.find(msg.conn_id);
      if (it == by_id.end()) break;  // connection already gone
      Conn& conn = *it->second;
      conn.awaiting_forward = false;
      const bool ack_loss = conn.fwd_ack_loss;
      const unsigned delay = conn.fwd_delay_ms;
      conn.fwd_ack_loss = false;
      conn.fwd_delay_ms = 0;
      if (msg.error_delta != 0) {
        std::lock_guard<std::mutex> lock(stats_mutex);
        stats.protocol_errors += static_cast<std::uint64_t>(msg.error_delta);
      }
      if (conn.dead) break;
      if (ack_loss) {
        // Ack loss: the request RAN on its home shard but the response
        // is discarded and the connection cut — the retry path must
        // answer the replayed id from the dedup window.
        conn.dead = true;
        std::lock_guard<std::mutex> lock(stats_mutex);
        ++stats.fault_dropped;
        break;
      }
      if (!msg.response.empty()) {
        conn.wbuf += msg.response;
        std::lock_guard<std::mutex> lock(stats_mutex);
        ++stats.responses_out;
      }
      if (msg.quit) conn.closing = true;
      if (delay > 0) {
        conn.hold_until_ms = std::max(conn.hold_until_ms, now_ms() + delay);
        std::lock_guard<std::mutex> lock(stats_mutex);
        ++stats.fault_delayed;
      }
      // Unparked: pipelined lines may already be buffered behind the
      // forwarded one; resume framing where process_lines left off.
      process_lines(conn);
      if (conn.read_done && !conn.awaiting_forward) conn.closing = true;
      break;
    }
    case Msg::Kind::CloseRemote:
      remote.erase(msg.conn_id);  // detaches durable sessions
      break;
    case Msg::Kind::Drain: {
      if (draining) break;
      draining = true;
      drain_deadline = now_ms() + server->config_.drain_timeout_ms;
      // Stop reading everywhere; connections with nothing queued and
      // nothing in flight close now, the rest get until the deadline.
      // Fault-injected response holds are void during drain.
      for (auto& conn : conns) {
        conn->closing = true;
        conn->hold_until_ms = 0;
        if (conn->pending_write() == 0 && !conn->awaiting_forward) {
          conn->dead = true;
        }
      }
      break;
    }
    case Msg::Kind::Terminate:
      terminate = true;
      break;
  }
}

void NetServer::Shard::drain_mailbox() {
  std::deque<Msg> batch;
  {
    std::lock_guard<std::mutex> lock(mbox_mutex);
    batch.swap(mbox);
  }
  for (Msg& msg : batch) handle_msg(msg);
}

void NetServer::Shard::sweep_dead() {
  const std::size_t before = conns.size();
  std::erase_if(conns, [&](const std::unique_ptr<Conn>& conn) {
    if (!conn->dead) return false;
    ::close(conn->fd);
    conn->fd = -1;
    by_id.erase(conn->id);
    if (conn->did_forward) {
      // Tear down the remote conversations (detaching their durable
      // sessions). Mailbox FIFO ensures any in-flight Forward for this
      // connection executes before its CloseRemote arrives.
      for (unsigned i = 0; i < nshards; ++i) {
        if (i == index) continue;
        Msg msg;
        msg.kind = Msg::Kind::CloseRemote;
        msg.conn_id = conn->id;
        server->post(i, std::move(msg));
      }
    }
    server->live_conns_.fetch_sub(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(stats_mutex);
    ++stats.closed;
    if (draining) ++stats.drained;
    return true;
  });
  if (conns.size() != before) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex);
      stats.active = conns.size();
    }
    // The acceptor may be waiting for the last connection to go.
    {
      std::lock_guard<std::mutex> lock(server->drain_mutex_);
    }
    server->drain_cv_.notify_all();
  }
}

void NetServer::Shard::forward(Conn& conn, unsigned home,
                               std::string_view line,
                               const FaultVerdict& verdict) {
  if (server->config_.echo) {
    // Echo belongs to the origin (it owns the response ordering); the
    // remote conversation runs with echo off.
    conn.wbuf += "> ";
    conn.wbuf += line;
    conn.wbuf += '\n';
  }
  conn.awaiting_forward = true;
  conn.did_forward = true;
  conn.fwd_ack_loss = verdict.duplicate;
  conn.fwd_delay_ms = verdict.delay;
  {
    std::lock_guard<std::mutex> lock(stats_mutex);
    ++stats.forwarded;
  }
  Msg msg;
  msg.kind = Msg::Kind::Forward;
  msg.conn_id = conn.id;
  msg.origin = index;
  msg.line.assign(line);
  server->post(home, std::move(msg));
}

void NetServer::Shard::handle_line(Conn& conn, std::string_view line) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex);
    ++stats.lines_in;
  }
  if (conn.pending_write() >= server->config_.write_buffer_reject) {
    conn.wbuf += kBackpressure;
    std::lock_guard<std::mutex> lock(stats_mutex);
    ++stats.backpressure_rejects;
    return;
  }
  if (line.rfind("repl-hello", 0) == 0) {
    // A replica is dialing in: this connection stops being a protocol
    // conversation and becomes the replication channel. Never
    // fault-injected — the chaos plan targets the channel's own frame
    // stream (hub injector), not the handshake.
    handle_repl_hello(conn, line);
    return;
  }
  FaultVerdict verdict;
  if (injector) verdict = injector->roll();
  if (verdict.drop) {
    // Cut BEFORE the request executes: the client sees a dead
    // connection with no state change — a plain resend is safe.
    conn.dead = true;
    std::lock_guard<std::mutex> lock(stats_mutex);
    ++stats.fault_dropped;
    return;
  }
  if (nshards > 1 && server->config_.service.journal.enabled()) {
    // Journaled sessions are pinned to shards by name hash; a line
    // addressing a name homed elsewhere is forwarded and the
    // connection parks until the reply (preserving in-order 1:1
    // pipelining). Plain servers never route: their session names are
    // per-connection namespaces that live and die on this shard.
    const std::string_view name = route_name(line);
    if (!name.empty()) {
      const unsigned home = service::shard_for_name(name, nshards);
      if (home != index) {
        forward(conn, home, line, verdict);
        return;
      }
    }
  }
  execute_local(conn, line, verdict);
}

void NetServer::Shard::handle_repl_hello(Conn& conn, std::string_view line) {
  // Expect exactly "repl-hello parulel/2".
  std::istringstream in{std::string(line)};
  std::string cmd;
  std::string version;
  std::string extra;
  in >> cmd >> version >> extra;
  if (version != service::ServeProtocol::kProtocolVersion || !extra.empty()) {
    conn.wbuf += "err unsupported protocol version: " + version +
                 " (replication speaks " +
                 std::string(service::ServeProtocol::kProtocolVersion) + ")\n";
    std::lock_guard<std::mutex> lock(stats_mutex);
    ++stats.protocol_errors;
    ++stats.responses_out;
    return;
  }
  if (!server->hub_) {
    conn.wbuf += "err replication requires a journaled server\n";
    std::lock_guard<std::mutex> lock(stats_mutex);
    ++stats.protocol_errors;
    ++stats.responses_out;
    return;
  }
  // Detach the socket from the event loop: flip it to blocking, flush
  // anything queued plus the handshake reply, and hand it to the hub.
  // The Conn shell dies on the next sweep (fd -1: nothing to close).
  const int fd = conn.fd;
  conn.fd = -1;
  conn.dead = true;
  const int fl = ::fcntl(fd, F_GETFL, 0);
  if (fl >= 0) ::fcntl(fd, F_SETFL, fl & ~O_NONBLOCK);
  std::string response = conn.wbuf.substr(conn.woff);
  response += "ok repl-hello ";
  response += service::ServeProtocol::kProtocolVersion;
  response += '\n';
  conn.wbuf.clear();
  conn.woff = 0;
  const char* p = response.data();
  std::size_t left = response.size();
  while (left > 0) {
    const ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex);
    ++stats.responses_out;
  }
  server->hub_->adopt(fd);
  // Initial catch-up: full-sync every durable name the new channel has
  // not seen (all of them — the synced set is per-connection). Each
  // file read happens under its session's lock, so concurrent commits
  // serialize against it and nothing is lost in between: a name whose
  // commit beats the sync ships its file inline via ship_batch, and
  // sync_name skips names the connection already synced.
  for (unsigned i = 0; i < nshards; ++i) {
    auto& svc = server->shard_service(i);
    for (const std::string& name : svc.durable_names()) {
      std::string bytes;
      if (svc.read_journal_file(name, &bytes)) {
        server->hub_->sync_name(name, bytes);
      }
    }
  }
}

void NetServer::Shard::execute_local(Conn& conn, std::string_view line,
                                     const FaultVerdict& verdict) {
  const std::size_t before = conn.wbuf.size();
  service::ServeProtocol::Status status;
  const std::uint64_t t0 = busy_clock_ns();
  try {
    status = conn.protocol->handle_line(line, conn.wbuf);
  } catch (const std::exception& e) {
    // One client's runtime failure must never take the server down —
    // surface it as a structured error on that connection only.
    conn.wbuf.resize(before);
    conn.wbuf += "err internal: ";
    conn.wbuf += e.what();
    conn.wbuf += '\n';
    std::lock_guard<std::mutex> lock(stats_mutex);
    ++stats.protocol_errors;
    ++stats.responses_out;
    stats.busy_ns += busy_clock_ns() - t0;
    return;
  }
  const int errors_now = conn.protocol->errors();
  {
    std::lock_guard<std::mutex> lock(stats_mutex);
    if (conn.wbuf.size() > before) ++stats.responses_out;
    stats.protocol_errors +=
        static_cast<std::uint64_t>(errors_now - conn.prev_errors);
    stats.busy_ns += busy_clock_ns() - t0;
  }
  conn.prev_errors = errors_now;
  if (status == service::ServeProtocol::Status::Quit) {
    conn.closing = true;
  }
  if (verdict.duplicate) {
    // Ack loss, the nastiest case for exactly-once: the request RAN
    // (durable state changed, journal written) but its response is
    // discarded and the connection cut — the client must retry the same
    // request id and be answered from the dedup window.
    conn.wbuf.resize(before);
    conn.dead = true;
    std::lock_guard<std::mutex> lock(stats_mutex);
    ++stats.fault_dropped;
  } else if (verdict.delay > 0) {
    conn.hold_until_ms =
        std::max(conn.hold_until_ms, now_ms() + verdict.delay);
    std::lock_guard<std::mutex> lock(stats_mutex);
    ++stats.fault_delayed;
  }
}

void NetServer::Shard::process_lines(Conn& conn) {
  while (!conn.closing && !conn.dead && !conn.awaiting_forward) {
    if (conn.skipping_oversize) {
      const std::size_t nl = conn.rbuf.find('\n');
      if (nl == std::string::npos) {
        conn.rbuf.clear();
        return;
      }
      conn.rbuf.erase(0, nl + 1);
      conn.skipping_oversize = false;
      continue;
    }
    const std::size_t nl = conn.rbuf.find('\n');
    if (nl == std::string::npos) {
      if (conn.rbuf.size() > server->config_.max_line_bytes) {
        // The line already exceeds the cap with no end in sight:
        // answer now, discard until the newline eventually arrives.
        conn.rbuf.clear();
        conn.skipping_oversize = true;
        conn.wbuf += kLineTooLong;
        std::lock_guard<std::mutex> lock(stats_mutex);
        ++stats.oversize_lines;
      }
      return;
    }
    std::string line = conn.rbuf.substr(0, nl);
    conn.rbuf.erase(0, nl + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    conn.last_active_ms = now_ms();
    if (line.size() > server->config_.max_line_bytes) {
      conn.wbuf += kLineTooLong;
      std::lock_guard<std::mutex> lock(stats_mutex);
      ++stats.oversize_lines;
      continue;
    }
    handle_line(conn, line);
  }
}

void NetServer::Shard::conn_readable(Conn& conn) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.rbuf.append(buf, static_cast<std::size_t>(n));
      std::lock_guard<std::mutex> lock(stats_mutex);
      stats.bytes_in += static_cast<std::uint64_t>(n);
      continue;
    }
    if (n == 0) {
      // Half-close: the client sent everything and shut down its write
      // side. Finish the lines we have, flush responses, then close.
      conn.read_done = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn.dead = true;  // reset / hard error: nothing left to salvage
    return;
  }
  process_lines(conn);
  // A parked connection keeps its EOF pending: the forwarded reply (and
  // any lines buffered behind it) must land before the close.
  if (conn.read_done && !conn.awaiting_forward) conn.closing = true;
}

void NetServer::Shard::conn_writable(Conn& conn) {
  while (conn.pending_write() > 0) {
    const ssize_t n = ::send(conn.fd, conn.wbuf.data() + conn.woff,
                             conn.pending_write(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.woff += static_cast<std::size_t>(n);
      std::lock_guard<std::mutex> lock(stats_mutex);
      stats.bytes_out += static_cast<std::uint64_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    conn.dead = true;  // EPIPE / reset: the reader is gone
    return;
  }
  if (conn.pending_write() == 0) {
    conn.wbuf.clear();
    conn.woff = 0;
    if (conn.closing && !conn.awaiting_forward) conn.dead = true;
  } else if (conn.pending_write() > server->config_.write_buffer_close) {
    conn.dead = true;
    std::lock_guard<std::mutex> lock(stats_mutex);
    ++stats.overflow_closed;
  }
}

void NetServer::Shard::loop() {
  std::vector<pollfd> pfds;
  std::vector<Conn*> polled;

  for (;;) {
    drain_mailbox();
    if (terminate) {
      // Drain completed everywhere (the acceptor saw zero live
      // connections): destroy the remote conversations (detaching
      // their durable sessions) and exit. conns is empty by now save
      // for pathological force-kills, which close unceremoniously.
      for (auto& conn : conns) {
        ::close(conn->fd);
        conn->fd = -1;
        server->live_conns_.fetch_sub(1, std::memory_order_relaxed);
      }
      conns.clear();
      by_id.clear();
      remote.clear();
      std::lock_guard<std::mutex> lock(stats_mutex);
      stats.active = 0;
      return;
    }
    sweep_dead();

    pfds.clear();
    polled.clear();
    pfds.push_back({wake_read_fd, POLLIN, 0});
    const std::uint64_t poll_now = now_ms();
    std::uint64_t hold_wake = 0;  ///< earliest fault-hold expiry, 0 = none
    for (auto& conn : conns) {
      if (conn->hold_until_ms > poll_now) {
        // Fault-injected delay: the response (and further reads) wait
        // until the hold expires; the poll timeout wakes us for it.
        if (hold_wake == 0 || conn->hold_until_ms < hold_wake) {
          hold_wake = conn->hold_until_ms;
        }
        continue;
      }
      conn->hold_until_ms = 0;
      short events = 0;
      if (!conn->closing && !conn->read_done && !conn->awaiting_forward) {
        events |= POLLIN;
      }
      if (conn->pending_write() > 0) events |= POLLOUT;
      if (events == 0) {
        if (!conn->awaiting_forward) {
          // closing with nothing left to write: close on the next sweep
          conn->dead = true;
        }
        // parked with nothing to write: the mailbox wake unparks it
        continue;
      }
      pfds.push_back({conn->fd, events, 0});
      polled.push_back(conn.get());
    }

    int timeout = -1;
    const std::uint64_t now = now_ms();
    if (draining) {
      if (!conns.empty()) {
        timeout = drain_deadline > now ? static_cast<int>(drain_deadline - now)
                                       : 0;
      }
      // empty while draining: block on the wake pipe until Terminate
      // (or a Forward from a shard still draining its connections).
    } else if (server->config_.idle_timeout_ms > 0) {
      std::uint64_t next = server->config_.idle_timeout_ms;
      for (const auto& conn : conns) {
        const std::uint64_t age = now - conn->last_active_ms;
        const std::uint64_t left =
            age >= server->config_.idle_timeout_ms
                ? 0
                : server->config_.idle_timeout_ms - age;
        next = std::min(next, left);
      }
      timeout = static_cast<int>(next);
    }
    if (hold_wake != 0) {
      const std::uint64_t left = hold_wake > now ? hold_wake - now : 0;
      if (timeout < 0 || static_cast<std::uint64_t>(timeout) > left) {
        timeout = static_cast<int>(left);
      }
    }

    const int ready = ::poll(pfds.data(), pfds.size(), timeout);
    if (ready < 0) {
      if (errno == EINTR) continue;
      // A shard's poll failing is a server-level failure: record it and
      // drain everything.
      {
        std::lock_guard<std::mutex> lock(server->error_mutex_);
        if (server->error_.empty()) {
          server->error_ = std::string("poll: ") + std::strerror(errno);
        }
      }
      server->stop();
      continue;
    }

    if (pfds[0].revents & POLLIN) {
      char buf[64];
      while (::read(wake_read_fd, buf, sizeof(buf)) > 0) {
      }
      // The mailbox drains at the top of the next iteration.
    }

    for (std::size_t i = 0; i < polled.size(); ++i) {
      Conn& conn = *polled[i];
      if (conn.dead) continue;
      const short revents = pfds[1 + i].revents;
      if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
        // POLLHUP with readable data still pending is delivered along
        // with POLLIN; drain reads first, then let recv() see the EOF.
        if (!(revents & POLLIN)) {
          conn.dead = true;
          continue;
        }
      }
      if (revents & POLLIN) conn_readable(conn);
      if (!conn.dead && (conn.pending_write() > 0 ||
                         (conn.closing && !conn.awaiting_forward))) {
        conn_writable(conn);
      }
    }

    // Idle collection (not during drain — drain has its own deadline;
    // not while parked — a forwarded line is actively in flight).
    if (!draining && server->config_.idle_timeout_ms > 0) {
      const std::uint64_t cutoff = now_ms();
      for (auto& conn : conns) {
        if (conn->dead || conn->closing || conn->awaiting_forward) continue;
        if (cutoff - conn->last_active_ms >=
            server->config_.idle_timeout_ms) {
          conn->dead = true;
          std::lock_guard<std::mutex> lock(stats_mutex);
          ++stats.idle_closed;
        }
      }
    }
    if (draining && !conns.empty() && now_ms() >= drain_deadline) {
      for (auto& conn : conns) conn->dead = true;
    }
  }
}

}  // namespace parulel::net
