#include "net/net_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstring>
#include <exception>
#include <sstream>

#include "distrib/faults.hpp"
#include "service/protocol.hpp"
#include "support/error.hpp"

namespace parulel::net {

namespace {

constexpr std::string_view kServerFull = "err server-full\n";
constexpr std::string_view kLineTooLong = "err line-too-long\n";
constexpr std::string_view kBackpressure = "err backpressure\n";

double parse_rate(const std::string& key, const std::string& value) {
  double rate = 0.0;
  auto [p, ec] =
      std::from_chars(value.data(), value.data() + value.size(), rate);
  if (ec != std::errc() || p != value.data() + value.size() || rate < 0.0 ||
      rate >= 1.0) {
    throw ParseError("net-fault-plan: " + key + " wants a rate in [0, 1), got " +
                     value);
  }
  return rate;
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  std::uint64_t out = 0;
  auto [p, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc() || p != value.data() + value.size()) {
    throw ParseError("net-fault-plan: " + key + " wants an integer, got " +
                     value);
  }
  return out;
}

}  // namespace

NetFaultPlan NetFaultPlan::parse(const std::string& spec) {
  NetFaultPlan plan;
  std::istringstream in(spec);
  std::string pair;
  while (std::getline(in, pair, ',')) {
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      throw ParseError("net-fault-plan: want key=value, got " + pair);
    }
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    if (key == "seed") {
      plan.seed = parse_u64(key, value);
    } else if (key == "drop") {
      plan.drop_rate = parse_rate(key, value);
    } else if (key == "ackloss") {
      plan.ack_loss_rate = parse_rate(key, value);
    } else if (key == "delay") {
      plan.delay_rate = parse_rate(key, value);
    } else if (key == "maxdelay") {
      plan.max_delay_ms =
          static_cast<unsigned>(std::max<std::uint64_t>(1, parse_u64(key, value)));
    } else {
      throw ParseError("net-fault-plan: unknown key: " + key);
    }
  }
  return plan;
}

/// One live client connection: socket, its protocol conversation, the
/// framing buffers, and per-connection accounting.
struct NetServer::Conn {
  int fd = -1;
  std::unique_ptr<service::ServeProtocol> protocol;

  std::string rbuf;       ///< bytes received, not yet framed into lines
  std::string wbuf;       ///< response bytes not yet written
  std::size_t woff = 0;   ///< consumed prefix of wbuf

  std::uint64_t last_active_ms = 0;
  std::uint64_t hold_until_ms = 0;  ///< fault-injected response delay
  bool read_done = false;          ///< client half-closed (EOF seen)
  bool closing = false;            ///< flush wbuf, then close
  bool skipping_oversize = false;  ///< discarding up to the next newline
  bool dead = false;               ///< swept by the event loop
  int prev_errors = 0;             ///< protocol error count already folded

  std::size_t pending_write() const { return wbuf.size() - woff; }
};

NetServer::NetServer(NetServerConfig config) : config_(std::move(config)) {
  config_.service.workers = 0;  // synchronous: responses are a pure
                                // function of each connection's stream
  service_ = std::make_unique<service::RuleService>(config_.service);
  if (config_.faults.enabled()) {
    // Reuse the distributed engine's seed-driven injector: loss maps to
    // a pre-execution drop, duplication to post-execution ack loss, and
    // delay cycles to milliseconds of response hold.
    FaultPlan plan;
    plan.seed = config_.faults.seed;
    plan.loss_rate = config_.faults.drop_rate;
    plan.duplicate_rate = config_.faults.ack_loss_rate;
    plan.delay_rate = config_.faults.delay_rate;
    plan.max_delay_cycles = config_.faults.max_delay_ms;
    injector_ = std::make_unique<FaultInjector>(plan);
  }
}

NetServer::~NetServer() {
  for (auto& conn : conns_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (stop_read_fd_ >= 0) ::close(stop_read_fd_);
  if (stop_write_fd_ >= 0) ::close(stop_write_fd_);
}

std::uint64_t NetServer::now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool NetServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    error_ = "bad bind address: " + config_.host;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    error_ = "bind " + config_.host + ":" + std::to_string(config_.port) +
             ": " + std::strerror(errno);
    return false;
  }
  if (::listen(listen_fd_, config_.backlog) != 0) {
    error_ = std::string("listen: ") + std::strerror(errno);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }

  int pipefds[2];
  if (::pipe2(pipefds, O_NONBLOCK | O_CLOEXEC) != 0) {
    error_ = std::string("pipe2: ") + std::strerror(errno);
    return false;
  }
  stop_read_fd_ = pipefds[0];
  stop_write_fd_ = pipefds[1];

  if (config_.service.journal.enabled()) {
    // Rebuild durable sessions before the first connection: a client
    // may lead with `resume NAME` the moment we accept.
    recovery_reports_ = service_->recover_journals();
  }
  return true;
}

void NetServer::stop() {
  if (stop_write_fd_ < 0) return;
  const char byte = 's';
  // Async-signal-safe by construction: one write, result ignored (the
  // pipe being full already means a stop is pending).
  [[maybe_unused]] ssize_t n = ::write(stop_write_fd_, &byte, 1);
}

NetStats NetServer::stats_snapshot() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void NetServer::begin_drain() {
  if (draining_) return;
  draining_ = true;
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Stop reading everywhere; connections with nothing queued close now,
  // the rest get until drain_timeout_ms to absorb their responses.
  // Fault-injected response holds are void during drain.
  for (auto& conn : conns_) {
    conn->closing = true;
    conn->hold_until_ms = 0;
    if (conn->pending_write() == 0) conn->dead = true;
  }
}

void NetServer::accept_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN (or a transient error): done for now
    if (conns_.size() >= config_.max_connections) {
      // Reject-not-block at the accept layer too: a one-line structured
      // refusal, then close. Best effort — the write may short-circuit.
      [[maybe_unused]] ssize_t n =
          ::write(fd, kServerFull.data(), kServerFull.size());
      ::close(fd);
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.rejected_full;
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    service::ServeProtocol::Options popts;
    popts.echo = config_.echo;
    conn->protocol =
        std::make_unique<service::ServeProtocol>(*service_, popts);
    conn->last_active_ms = now_ms();
    conns_.push_back(std::move(conn));
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.accepted;
    stats_.active = conns_.size();
  }
}

void NetServer::handle_line(Conn& conn, std::string_view line) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.lines_in;
  }
  if (conn.pending_write() >= config_.write_buffer_reject) {
    conn.wbuf += kBackpressure;
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.backpressure_rejects;
    return;
  }
  FaultVerdict verdict;
  if (injector_) verdict = injector_->roll();
  if (verdict.drop) {
    // Cut BEFORE the request executes: the client sees a dead
    // connection with no state change — a plain resend is safe.
    conn.dead = true;
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.fault_dropped;
    return;
  }
  const std::size_t before = conn.wbuf.size();
  service::ServeProtocol::Status status;
  try {
    status = conn.protocol->handle_line(line, conn.wbuf);
  } catch (const std::exception& e) {
    // One client's runtime failure must never take the server down —
    // surface it as a structured error on that connection only.
    conn.wbuf.resize(before);
    conn.wbuf += "err internal: ";
    conn.wbuf += e.what();
    conn.wbuf += '\n';
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.protocol_errors;
    ++stats_.responses_out;
    return;
  }
  const int errors_now = conn.protocol->errors();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (conn.wbuf.size() > before) ++stats_.responses_out;
    stats_.protocol_errors +=
        static_cast<std::uint64_t>(errors_now - conn.prev_errors);
  }
  conn.prev_errors = errors_now;
  if (status == service::ServeProtocol::Status::Quit) {
    conn.closing = true;
  }
  if (verdict.duplicate) {
    // Ack loss, the nastiest case for exactly-once: the request RAN
    // (durable state changed, journal written) but its response is
    // discarded and the connection cut — the client must retry the same
    // request id and be answered from the dedup window.
    conn.wbuf.resize(before);
    conn.dead = true;
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.fault_dropped;
  } else if (verdict.delay > 0) {
    conn.hold_until_ms =
        std::max(conn.hold_until_ms, now_ms() + verdict.delay);
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.fault_delayed;
  }
}

void NetServer::process_lines(Conn& conn) {
  while (!conn.closing) {
    if (conn.skipping_oversize) {
      const std::size_t nl = conn.rbuf.find('\n');
      if (nl == std::string::npos) {
        conn.rbuf.clear();
        return;
      }
      conn.rbuf.erase(0, nl + 1);
      conn.skipping_oversize = false;
      continue;
    }
    const std::size_t nl = conn.rbuf.find('\n');
    if (nl == std::string::npos) {
      if (conn.rbuf.size() > config_.max_line_bytes) {
        // The line already exceeds the cap with no end in sight:
        // answer now, discard until the newline eventually arrives.
        conn.rbuf.clear();
        conn.skipping_oversize = true;
        conn.wbuf += kLineTooLong;
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.oversize_lines;
      }
      return;
    }
    std::string line = conn.rbuf.substr(0, nl);
    conn.rbuf.erase(0, nl + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    conn.last_active_ms = now_ms();
    if (line.size() > config_.max_line_bytes) {
      conn.wbuf += kLineTooLong;
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.oversize_lines;
      continue;
    }
    handle_line(conn, line);
  }
}

void NetServer::conn_readable(Conn& conn) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.rbuf.append(buf, static_cast<std::size_t>(n));
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.bytes_in += static_cast<std::uint64_t>(n);
      continue;
    }
    if (n == 0) {
      // Half-close: the client sent everything and shut down its write
      // side. Finish the lines we have, flush responses, then close.
      conn.read_done = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn.dead = true;  // reset / hard error: nothing left to salvage
    return;
  }
  process_lines(conn);
  if (conn.read_done) conn.closing = true;
}

void NetServer::conn_writable(Conn& conn) {
  while (conn.pending_write() > 0) {
    const ssize_t n = ::send(conn.fd, conn.wbuf.data() + conn.woff,
                             conn.pending_write(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.woff += static_cast<std::size_t>(n);
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.bytes_out += static_cast<std::uint64_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    conn.dead = true;  // EPIPE / reset: the reader is gone
    return;
  }
  if (conn.pending_write() == 0) {
    conn.wbuf.clear();
    conn.woff = 0;
    if (conn.closing) conn.dead = true;
  } else if (conn.pending_write() > config_.write_buffer_close) {
    conn.dead = true;
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.overflow_closed;
  }
}

void NetServer::run() {
  std::uint64_t drain_deadline = 0;
  std::vector<pollfd> pfds;
  std::vector<Conn*> polled;

  for (;;) {
    // Sweep connections closed in the previous round.
    const std::size_t before = conns_.size();
    std::erase_if(conns_, [&](const std::unique_ptr<Conn>& conn) {
      if (!conn->dead) return false;
      ::close(conn->fd);
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.closed;
      if (draining_) ++stats_.drained;
      return true;
    });
    if (conns_.size() != before) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.active = conns_.size();
    }

    if (draining_ && conns_.empty()) return;
    if (draining_ && drain_deadline == 0) {
      drain_deadline = now_ms() + config_.drain_timeout_ms;
    }

    pfds.clear();
    polled.clear();
    if (!draining_) {
      pfds.push_back({stop_read_fd_, POLLIN, 0});
      pfds.push_back({listen_fd_, POLLIN, 0});
    }
    const std::uint64_t poll_now = now_ms();
    std::uint64_t hold_wake = 0;  ///< earliest fault-hold expiry, 0 = none
    for (auto& conn : conns_) {
      if (conn->hold_until_ms > poll_now) {
        // Fault-injected delay: the response (and further reads) wait
        // until the hold expires; the poll timeout wakes us for it.
        if (hold_wake == 0 || conn->hold_until_ms < hold_wake) {
          hold_wake = conn->hold_until_ms;
        }
        continue;
      }
      conn->hold_until_ms = 0;
      short events = 0;
      if (!conn->closing && !conn->read_done) events |= POLLIN;
      if (conn->pending_write() > 0) events |= POLLOUT;
      if (events == 0) {
        // closing with nothing left to write: close on the next sweep
        conn->dead = true;
        continue;
      }
      pfds.push_back({conn->fd, events, 0});
      polled.push_back(conn.get());
    }

    if (pfds.empty() && hold_wake == 0) {
      continue;  // drain marked every conn dead: re-sweep
    }

    int timeout = -1;
    const std::uint64_t now = now_ms();
    if (draining_) {
      timeout = drain_deadline > now
                    ? static_cast<int>(drain_deadline - now)
                    : 0;
    } else if (config_.idle_timeout_ms > 0) {
      std::uint64_t next = config_.idle_timeout_ms;
      for (const auto& conn : conns_) {
        const std::uint64_t age = now - conn->last_active_ms;
        const std::uint64_t left =
            age >= config_.idle_timeout_ms ? 0
                                           : config_.idle_timeout_ms - age;
        next = std::min(next, left);
      }
      timeout = static_cast<int>(next);
    }
    if (hold_wake != 0) {
      const std::uint64_t left = hold_wake > now ? hold_wake - now : 0;
      if (timeout < 0 || static_cast<std::uint64_t>(timeout) > left) {
        timeout = static_cast<int>(left);
      }
    }

    const int ready = ::poll(pfds.data(), pfds.size(), timeout);
    if (ready < 0) {
      if (errno == EINTR) continue;
      error_ = std::string("poll: ") + std::strerror(errno);
      begin_drain();
      continue;
    }

    std::size_t base = 0;
    if (!draining_) {
      if (pfds[0].revents & POLLIN) {
        char buf[64];
        while (::read(stop_read_fd_, buf, sizeof(buf)) > 0) {
        }
        begin_drain();
        continue;  // re-enter with drain bookkeeping in place
      }
      if (pfds[1].revents & (POLLIN | POLLERR)) accept_ready();
      base = 2;
    }

    for (std::size_t i = 0; i < polled.size(); ++i) {
      Conn& conn = *polled[i];
      if (conn.dead) continue;
      const short revents = pfds[base + i].revents;
      if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
        // POLLHUP with readable data still pending is delivered along
        // with POLLIN; drain reads first, then let recv() see the EOF.
        if (!(revents & POLLIN)) {
          conn.dead = true;
          continue;
        }
      }
      if (revents & POLLIN) conn_readable(conn);
      if (!conn.dead && (conn.pending_write() > 0 || conn.closing)) {
        conn_writable(conn);
      }
    }

    // Idle collection (not during drain — drain has its own deadline).
    if (!draining_ && config_.idle_timeout_ms > 0) {
      const std::uint64_t cutoff = now_ms();
      for (auto& conn : conns_) {
        if (conn->dead || conn->closing) continue;
        if (cutoff - conn->last_active_ms >= config_.idle_timeout_ms) {
          conn->dead = true;
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.idle_closed;
        }
      }
    }
    if (draining_ && now_ms() >= drain_deadline) {
      for (auto& conn : conns_) conn->dead = true;
    }
  }
}

}  // namespace parulel::net
