// NetClient: a small blocking client for the parulel wire protocol.
//
// Speaks the line protocol documented in PROTOCOL.md to a NetServer (or
// anything else that serves it): connect() dials TCP and performs the
// versioned `hello` handshake; request() sends one command line and
// reads its response. send_line()/read_response() are also exposed
// separately so callers can pipeline — write a burst of commands, then
// collect the responses in order (the server guarantees one status line
// per command, in request order).
//
// Framing recap (the part a client must know): every command line gets
// exactly one `ok ...` or `err ...` status line, except `query`, whose
// `ok query n=N` status is followed by N `fact ...` detail lines —
// read_response() folds those into Response::details. Blank and
// comment-only lines produce no response at all; don't send them if
// you plan to count replies.
//
// Used by `parulel_cli --connect` (interactive / scripted sessions) and
// by bench/bench_s2_net.cpp (the load generator).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace parulel::net {

/// One command's reply: the status line (newline stripped) plus any
/// `fact` detail lines a query carried.
struct Response {
  std::string status;
  std::vector<std::string> details;

  bool ok() const { return status.rfind("ok", 0) == 0; }
};

class NetClient {
 public:
  struct Options {
    /// Give up on connect() after this long; 0 = the OS default
    /// (minutes of kernel SYN retries — set this for anything
    /// interactive or retried).
    std::uint64_t connect_timeout_ms = 0;

    /// Per-send/recv timeout once connected (SO_SNDTIMEO/SO_RCVTIMEO);
    /// 0 = block forever. A timed-out call fails the request and sets
    /// timed_out() so retry loops can tell a slow server from a dead
    /// one.
    std::uint64_t io_timeout_ms = 0;
  };

  NetClient() = default;
  explicit NetClient(Options options) : options_(options) {}
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Dial host:port and perform the `hello` handshake. False on
  /// connect, write, or version failure (see error()); the connection
  /// is closed on any failure.
  bool connect(const std::string& host, std::uint16_t port);

  bool connected() const { return fd_ >= 0; }
  void close();

  /// The version the server announced in `ok hello VERSION`.
  const std::string& server_version() const { return server_version_; }

  const std::string& error() const { return error_; }

  /// True when the LAST failure was an I/O or connect timeout.
  bool timed_out() const { return timed_out_; }

  /// Write one command line (a '\n' is appended). False on I/O failure.
  bool send_line(std::string_view line);

  /// Read one response: a status line plus, for `ok query n=N`, the N
  /// detail lines. False on I/O failure or EOF mid-response.
  bool read_response(Response& out);

  /// send_line + read_response.
  bool request(std::string_view line, Response& out);

 private:
  bool read_line(std::string& out);
  bool fail(std::string msg);
  bool connect_with_timeout(const void* addr, std::size_t addr_len,
                            const std::string& where);

  Options options_;
  int fd_ = -1;
  std::string rbuf_;
  std::string server_version_;
  std::string error_;
  bool timed_out_ = false;
};

}  // namespace parulel::net
