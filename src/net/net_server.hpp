// NetServer: the rule service on a TCP socket, served by N event-loop
// shards.
//
// Threading model (one acceptor + `shards` shard threads):
//
//   - run() is the ACCEPTOR: it polls the listen socket and the
//     self-pipe, enforces `max_connections` globally, and hands each
//     accepted connection to a shard round-robin through that shard's
//     mailbox (a mutex-guarded FIFO plus a wake pipe). The acceptor
//     never touches connection or session state.
//   - each SHARD runs the classic poll(2) loop over exactly its own
//     connections, fronting its OWN RuleService (workers forced to 0 so
//     responses stay a pure function of each connection's stream). A
//     shard exclusively owns its connections' buffers, its sessions'
//     engine state, dedup windows, and journal files — there are no
//     cross-shard locks on the data path; shards share nothing but the
//     acceptor's connection count and the stats snapshots.
//
// Durable sessions are PINNED to shards by name hash
// (service::shard_for_name): startup recovery partitions *.wal files
// across the shard services by the same hash, so a name's journal is
// owned by exactly one shard forever. When a connection on shard A
// addresses a session whose home is shard B (journaled servers only —
// on plain servers session names are per-connection and never leave
// their shard), the line is FORWARDED: the connection parks (preserving
// the 1:1 in-order pipelining contract), shard B executes the line in a
// per-connection remote conversation against its own service, and the
// response rides a mailbox reply back to shard A's write buffer. The
// forwarding handshake is what makes cross-shard `resume` work: any
// connection can resume any name, wherever it lands.
//
// Everything else is the single-loop server's contract, per shard:
// newline-framed pipelined requests, reject-not-block backpressure
// (`err backpressure` past write_buffer_reject, disconnect past
// write_buffer_close), `err line-too-long` past max_line_bytes with
// discard-to-newline resync, idle collection, `err server-full` at the
// accept layer, and per-connection `err internal` isolation.
//
// Shutdown is a graceful drain: stop() (async-signal-safe: one write to
// a self-pipe) stops the accept loop and broadcasts a drain to every
// shard; queued responses (including in-flight forwarded replies) are
// flushed for up to `drain_timeout_ms`, then everything closes and
// run() returns once every shard is empty.
//
// Aggregate counters export through the obs layer (NetStats /
// net_fields() → metrics, bench JSON): stats_snapshot() sums the
// per-shard counter rows plus the acceptor's own (accepted,
// rejected_full); shard_stats() exposes the unsummed rows, which is
// what the R-S4 bench's slowest-shard makespan model reads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/stats.hpp"
#include "service/service.hpp"

namespace parulel {
class FaultInjector;
}

namespace parulel::net {

class ReplicationHub;
class ReplicaApplier;

/// Seed-driven connection-level fault injection, for hardening the
/// retry/recovery stack under test: a rolled fault can DROP a
/// connection before a request executes, lose the acknowledgement
/// AFTER it executes (the nastiest case for exactly-once — the state
/// changed, the client never heard), or delay a response. Verdicts come
/// from the same splitmix64 injector the distributed engine uses
/// (distrib/faults.hpp), so a (load, seed) pair replays the same fault
/// schedule every run. Each shard rolls its own injector seeded
/// seed + shard index; verdicts are decided on the connection's owning
/// shard and apply to forwarded lines too (drop before the forward,
/// ack loss / delay to the reply).
struct NetFaultPlan {
  std::uint64_t seed = 1;
  double drop_rate = 0.0;      ///< P(connection cut before the request runs)
  double ack_loss_rate = 0.0;  ///< P(request runs, response lost, conn cut)
  double delay_rate = 0.0;     ///< P(response held back before sending)
  unsigned max_delay_ms = 50;  ///< delay uniform in [1, max] milliseconds

  bool enabled() const {
    return drop_rate > 0.0 || ack_loss_rate > 0.0 || delay_rate > 0.0;
  }

  /// Parse the CLI spec: comma-separated key=value pairs, e.g.
  ///   seed=7,drop=0.01,ackloss=0.01,delay=0.05,maxdelay=50
  /// Rates must be in [0, 1). Throws ParseError on malformed input.
  static NetFaultPlan parse(const std::string& spec);
};

struct NetServerConfig {
  /// Bind address. The protocol's `open` reads server-side files, so
  /// binding beyond loopback is an explicit, considered act.
  std::string host = "127.0.0.1";

  /// 0 = ephemeral: the kernel picks; NetServer::port() reports it.
  std::uint16_t port = 0;

  int backlog = 64;
  std::size_t max_connections = 64;

  /// Event-loop shards. 1 (the default) reproduces the single-loop
  /// server exactly: one thread, no forwarding. Clamped to >= 1.
  unsigned shards = 1;

  /// Longest accepted request line; longer ones are discarded up to the
  /// next newline and answered with `err line-too-long`.
  std::size_t max_line_bytes = 64 * 1024;

  /// Pending-write threshold past which new request lines are rejected
  /// with `err backpressure` instead of executed (reject-not-block).
  std::size_t write_buffer_reject = 256 * 1024;

  /// Pending-write hard cap: a client this far behind on reading is
  /// disconnected.
  std::size_t write_buffer_close = 4 * 1024 * 1024;

  /// Close connections with no complete request for this long.
  /// 0 disables idle collection.
  std::uint64_t idle_timeout_ms = 0;

  /// How long a graceful stop() keeps flushing queued responses before
  /// force-closing what remains.
  std::uint64_t drain_timeout_ms = 2'000;

  /// Tuning for the per-shard RuleServices. `workers` is forced to 0 —
  /// commands execute synchronously on their shard's event loop, which
  /// is what makes per-connection responses deterministic.
  service::ServiceConfig service;

  /// Echo each command line (prefixed "> ") before its response.
  bool echo = false;

  /// Connection-level fault injection (off unless a rate is set). When
  /// a plan is set on a journaled server, the replication channel rolls
  /// its own verdict stream (seed + 1009) per shipped frame: drop cuts
  /// the channel, ackloss eats a frame's ack (degrade drill), delay
  /// holds the frame. Client-visible responses must be unaffected.
  NetFaultPlan faults;

  /// Run as a hot standby of this primary ("HOST:PORT"; empty = not a
  /// replica). Requires journaling. The server skips startup recovery,
  /// applies the primary's shipped frames to its own journal dir, and
  /// promotes names lazily when a failed-over client resumes them.
  std::string replica_of;

  /// Semi-sync replication: how long a durable commit waits for the
  /// replica's ack before degrading to async (repl_degraded counts the
  /// flips). 0 = pure async shipping.
  std::uint64_t repl_timeout_ms = 1'000;

  /// Promotion fence (replicas only): a failed-over client's resume
  /// promotes a shadow journal ONLY once the replication link has been
  /// down for at least this long. While the primary is reachable — or
  /// was, this recently — the standby answers `err not-primary` and the
  /// client goes back to the list. Guards against split-brain when a
  /// flaky client-side network fails over from a primary that is alive.
  std::uint64_t promote_grace_ms = 2'000;
};

class NetServer {
 public:
  explicit NetServer(NetServerConfig config);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Bind + listen + arm the stop pipe and the shard wake pipes; when
  /// the service is journaled, recover durable sessions BEFORE
  /// accepting traffic — each shard's service recovers exactly the
  /// names it owns under the pinning hash (reports, merged and sorted
  /// by name, kept in recovery_reports()). False on failure (error()).
  bool start();

  /// What start() recovered (empty unless journaling is enabled).
  const std::vector<service::RecoveryReport>& recovery_reports() const {
    return recovery_reports_;
  }

  /// The bound port (resolves config.port == 0), valid after start().
  std::uint16_t port() const { return port_; }

  /// Serve until stop(): spawns the shard threads, runs the accept
  /// loop, and returns once every connection is drained, closed, and
  /// every shard thread joined. Call from exactly one thread, after
  /// start().
  void run();

  /// Request a graceful drain. Callable from any thread and from signal
  /// handlers (it performs one write() on a self-pipe, nothing else).
  void stop();

  /// Aggregate counters (per-shard rows summed, plus the acceptor's);
  /// callable from any thread while run() is live.
  NetStats stats_snapshot() const;

  /// The unsummed per-shard counter rows, in shard order. `busy_ns` per
  /// row is that shard thread's request-execution CPU time — the
  /// slowest row is the R-S4 ideal-multicore makespan.
  std::vector<NetStats> shard_stats() const;

  /// Replication counters: the hub's shipping/ack rows on a primary,
  /// the applier's apply rows on a replica (merged — a server is one
  /// or the other).
  ReplStats repl_stats_snapshot() const;

  /// Primary only: a replica is connected and every shipped frame is
  /// acked. The chaos tests poll this before killing the primary.
  bool repl_caught_up() const;

  /// Number of event-loop shards actually serving.
  unsigned shards() const { return static_cast<unsigned>(shards_.size()); }

  /// Shard 0's fronted service. Touch only when run() is not executing
  /// — the shard's event loop owns it while serving. (With shards == 1
  /// this is THE service, as before; sharded callers want
  /// shard_service(i).)
  service::RuleService& service() { return shard_service(0); }

  /// Shard `i`'s fronted service; same ownership caveat as service().
  service::RuleService& shard_service(unsigned i);

  const std::string& error() const { return error_; }
  const NetServerConfig& config() const { return config_; }

 private:
  struct Conn;
  struct Shard;
  struct Msg;

  void accept_ready();
  void post(unsigned shard, Msg msg);
  static std::uint64_t now_ms();
  static std::uint64_t now_ns();
  /// Calling thread's CPU time — busy_ns accounting (see the .cpp).
  static std::uint64_t busy_clock_ns();

  NetServerConfig config_;
  /// Shared SessionId source for the per-shard services: ids stay
  /// server-unique, so `open NAME id=N` matches single-shard numbering.
  std::atomic<std::uint64_t> session_ids_{1};
  /// Primary half of the replication channel (journaled servers only);
  /// created before the shard services so their ship hooks can bind it.
  std::unique_ptr<ReplicationHub> hub_;
  /// Replica half (--replica-of only): dial/apply/ack client thread.
  std::unique_ptr<ReplicaApplier> applier_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<service::RecoveryReport> recovery_reports_;
  std::string error_;
  std::mutex error_mutex_;  ///< shards may report poll failures

  int listen_fd_ = -1;
  int stop_read_fd_ = -1;
  int stop_write_fd_ = -1;
  std::uint16_t port_ = 0;
  bool draining_ = false;

  unsigned next_shard_ = 0;          ///< round-robin assignment cursor
  std::uint64_t next_conn_id_ = 1;   ///< server-unique connection ids

  /// Live connections across all shards: the accept-layer capacity
  /// check, and the drain-completion condition the acceptor waits on.
  std::atomic<std::size_t> live_conns_{0};
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;

  mutable std::mutex stats_mutex_;
  NetStats stats_;  ///< acceptor-owned counters (accepted, rejected_full)
};

}  // namespace parulel::net
