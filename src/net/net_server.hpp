// NetServer: the rule service on a TCP socket.
//
// A single-threaded poll(2) event loop fronting ONE shared RuleService:
// a multi-client accept loop, newline-framed requests with pipelining
// (any number of commands may be in flight per connection; responses
// come back in order), per-connection write buffering, and the
// protections that keep one client from hurting the rest:
//
//   - backpressure is reject-not-block, the same contract as the
//     service's bounded queues: while a connection's pending write
//     buffer is past `write_buffer_reject`, further complete lines get
//     a cheap `err backpressure` instead of being executed — the server
//     thread never blocks on a slow reader, and the request:response
//     1:1 pipelining contract is preserved;
//   - a connection whose write buffer passes `write_buffer_close` (the
//     client stopped reading entirely) is closed;
//   - request lines longer than `max_line_bytes` are discarded up to
//     the next newline and answered with `err line-too-long`;
//   - connections idle past `idle_timeout_ms` are closed;
//   - at `max_connections`, new arrivals get `err server-full` and an
//     immediate close.
//
// Protocol handling is the same transport-agnostic ServeProtocol the
// stdin `--serve` loop wraps (service/protocol.hpp), one instance per
// connection: session NAMEs are a per-connection namespace, and a
// dropped connection closes exactly the sessions it opened. Because the
// loop is single-threaded and the service synchronous (workers == 0),
// responses on one connection are a pure function of that connection's
// request stream — byte-identical with stdin serving, which
// tests/test_net.cpp proves over the example scripts.
//
// Shutdown is a graceful drain: stop() (async-signal-safe: one write to
// a self-pipe) stops the accept loop, already-queued responses are
// flushed for up to `drain_timeout_ms`, then everything closes and
// run() returns.
//
// Aggregate counters export through the obs layer (NetStats /
// net_fields() → metrics, bench JSON); per-connection counters drive
// the idle/backpressure decisions and fold into the aggregate on close.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/stats.hpp"
#include "service/service.hpp"

namespace parulel {
class FaultInjector;
}

namespace parulel::net {

/// Seed-driven connection-level fault injection, for hardening the
/// retry/recovery stack under test: a rolled fault can DROP a
/// connection before a request executes, lose the acknowledgement
/// AFTER it executes (the nastiest case for exactly-once — the state
/// changed, the client never heard), or delay a response. Verdicts come
/// from the same splitmix64 injector the distributed engine uses
/// (distrib/faults.hpp), so a (load, seed) pair replays the same fault
/// schedule every run.
struct NetFaultPlan {
  std::uint64_t seed = 1;
  double drop_rate = 0.0;      ///< P(connection cut before the request runs)
  double ack_loss_rate = 0.0;  ///< P(request runs, response lost, conn cut)
  double delay_rate = 0.0;     ///< P(response held back before sending)
  unsigned max_delay_ms = 50;  ///< delay uniform in [1, max] milliseconds

  bool enabled() const {
    return drop_rate > 0.0 || ack_loss_rate > 0.0 || delay_rate > 0.0;
  }

  /// Parse the CLI spec: comma-separated key=value pairs, e.g.
  ///   seed=7,drop=0.01,ackloss=0.01,delay=0.05,maxdelay=50
  /// Rates must be in [0, 1). Throws ParseError on malformed input.
  static NetFaultPlan parse(const std::string& spec);
};

struct NetServerConfig {
  /// Bind address. The protocol's `open` reads server-side files, so
  /// binding beyond loopback is an explicit, considered act.
  std::string host = "127.0.0.1";

  /// 0 = ephemeral: the kernel picks; NetServer::port() reports it.
  std::uint16_t port = 0;

  int backlog = 64;
  std::size_t max_connections = 64;

  /// Longest accepted request line; longer ones are discarded up to the
  /// next newline and answered with `err line-too-long`.
  std::size_t max_line_bytes = 64 * 1024;

  /// Pending-write threshold past which new request lines are rejected
  /// with `err backpressure` instead of executed (reject-not-block).
  std::size_t write_buffer_reject = 256 * 1024;

  /// Pending-write hard cap: a client this far behind on reading is
  /// disconnected.
  std::size_t write_buffer_close = 4 * 1024 * 1024;

  /// Close connections with no complete request for this long.
  /// 0 disables idle collection.
  std::uint64_t idle_timeout_ms = 0;

  /// How long a graceful stop() keeps flushing queued responses before
  /// force-closing what remains.
  std::uint64_t drain_timeout_ms = 2'000;

  /// Tuning for the fronted RuleService. `workers` is forced to 0 —
  /// commands execute synchronously on the event loop, which is what
  /// makes per-connection responses deterministic.
  service::ServiceConfig service;

  /// Echo each command line (prefixed "> ") before its response.
  bool echo = false;

  /// Connection-level fault injection (off unless a rate is set).
  NetFaultPlan faults;
};

class NetServer {
 public:
  explicit NetServer(NetServerConfig config);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Bind + listen + arm the stop pipe; when the service is journaled,
  /// recover durable sessions BEFORE accepting traffic (reports kept in
  /// recovery_reports()). False on failure (see error()).
  bool start();

  /// What start() recovered (empty unless journaling is enabled).
  const std::vector<service::RecoveryReport>& recovery_reports() const {
    return recovery_reports_;
  }

  /// The bound port (resolves config.port == 0), valid after start().
  std::uint16_t port() const { return port_; }

  /// Serve until stop(); returns once every connection is drained and
  /// closed. Call from exactly one thread, after start().
  void run();

  /// Request a graceful drain. Callable from any thread and from signal
  /// handlers (it performs one write() on a self-pipe, nothing else).
  void stop();

  /// Aggregate counters; callable from any thread while run() is live.
  NetStats stats_snapshot() const;

  /// The fronted service. Touch only when run() is not executing — the
  /// event loop owns it while serving.
  service::RuleService& service() { return *service_; }

  const std::string& error() const { return error_; }
  const NetServerConfig& config() const { return config_; }

 private:
  struct Conn;

  void accept_ready();
  void conn_readable(Conn& conn);
  void conn_writable(Conn& conn);
  void process_lines(Conn& conn);
  void handle_line(Conn& conn, std::string_view line);
  void begin_drain();
  static std::uint64_t now_ms();

  NetServerConfig config_;
  std::unique_ptr<service::RuleService> service_;
  std::unique_ptr<FaultInjector> injector_;  ///< null = no fault plan
  std::vector<service::RecoveryReport> recovery_reports_;
  std::string error_;

  int listen_fd_ = -1;
  int stop_read_fd_ = -1;
  int stop_write_fd_ = -1;
  std::uint16_t port_ = 0;
  bool draining_ = false;

  std::vector<std::unique_ptr<Conn>> conns_;

  mutable std::mutex stats_mutex_;
  NetStats stats_;
};

}  // namespace parulel::net
