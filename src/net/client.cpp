#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>

#include "service/protocol.hpp"

namespace parulel::net {

NetClient::~NetClient() { close(); }

void NetClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rbuf_.clear();
}

bool NetClient::fail(std::string msg) {
  error_ = std::move(msg);
  close();
  return false;
}

bool NetClient::connect(const std::string& host, std::uint16_t port) {
  close();
  error_.clear();
  server_version_.clear();

  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return fail(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return fail("bad address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return fail("connect " + host + ":" + std::to_string(port) + ": " +
                std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  // Versioned handshake: refuse to talk to a server speaking something
  // we don't.
  Response hello;
  std::string greeting = "hello ";
  greeting += service::ServeProtocol::kProtocolVersion;
  if (!request(greeting, hello)) return false;
  if (!hello.ok()) {
    return fail("handshake refused: " + hello.status);
  }
  const std::size_t space = hello.status.rfind(' ');
  server_version_ = space == std::string::npos
                        ? std::string()
                        : hello.status.substr(space + 1);
  if (server_version_ != service::ServeProtocol::kProtocolVersion) {
    return fail("server speaks " + server_version_ + ", client speaks " +
                std::string(service::ServeProtocol::kProtocolVersion));
  }
  return true;
}

bool NetClient::send_line(std::string_view line) {
  if (fd_ < 0) {
    error_ = "not connected";
    return false;
  }
  std::string frame(line);
  frame += '\n';
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + off, frame.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail(std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool NetClient::read_line(std::string& out) {
  for (;;) {
    const std::size_t nl = rbuf_.find('\n');
    if (nl != std::string::npos) {
      out = rbuf_.substr(0, nl);
      rbuf_.erase(0, nl + 1);
      if (!out.empty() && out.back() == '\r') out.pop_back();
      return true;
    }
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      rbuf_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return fail(n == 0 ? "connection closed by server"
                       : std::string("recv: ") + std::strerror(errno));
  }
}

bool NetClient::read_response(Response& out) {
  out.status.clear();
  out.details.clear();
  if (fd_ < 0) {
    error_ = "not connected";
    return false;
  }
  if (!read_line(out.status)) return false;

  // `ok query n=N` is the one multi-line response: N `fact` lines follow.
  constexpr std::string_view kQuery = "ok query n=";
  if (out.status.rfind(kQuery, 0) == 0) {
    std::size_t n = 0;
    const char* first = out.status.data() + kQuery.size();
    const char* last = out.status.data() + out.status.size();
    auto [p, ec] = std::from_chars(first, last, n);
    if (ec != std::errc() || p != last) {
      return fail("bad query response: " + out.status);
    }
    out.details.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::string detail;
      if (!read_line(detail)) return false;
      out.details.push_back(std::move(detail));
    }
  }
  return true;
}

bool NetClient::request(std::string_view line, Response& out) {
  return send_line(line) && read_response(out);
}

}  // namespace parulel::net
