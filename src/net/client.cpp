#include "net/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>

#include "service/protocol.hpp"

namespace parulel::net {

namespace {

timeval to_timeval(std::uint64_t ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  return tv;
}

}  // namespace

NetClient::~NetClient() { close(); }

void NetClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rbuf_.clear();
}

bool NetClient::fail(std::string msg) {
  error_ = std::move(msg);
  close();
  return false;
}

bool NetClient::connect_with_timeout(const void* addr, std::size_t addr_len,
                                     const std::string& where) {
  // Bounded connect: flip to non-blocking, start the connect, poll for
  // writability, read SO_ERROR for the verdict, flip back to blocking.
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd_, static_cast<const sockaddr*>(addr),
                     static_cast<socklen_t>(addr_len));
  if (rc != 0 && errno != EINPROGRESS) {
    return fail("connect " + where + ": " + std::strerror(errno));
  }
  if (rc != 0) {
    pollfd pfd{fd_, POLLOUT, 0};
    do {
      rc = ::poll(&pfd, 1, static_cast<int>(options_.connect_timeout_ms));
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
      timed_out_ = true;
      return fail("connect " + where + ": timed out after " +
                  std::to_string(options_.connect_timeout_ms) + "ms");
    }
    if (rc < 0) {
      return fail("connect " + where + ": " + std::strerror(errno));
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &so_error, &len);
    if (so_error != 0) {
      return fail("connect " + where + ": " + std::strerror(so_error));
    }
  }
  ::fcntl(fd_, F_SETFL, flags);
  return true;
}

bool NetClient::connect(const std::string& host, std::uint16_t port) {
  close();
  error_.clear();
  server_version_.clear();
  timed_out_ = false;

  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return fail(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return fail("bad address: " + host);
  }
  const std::string where = host + ":" + std::to_string(port);
  if (options_.connect_timeout_ms > 0) {
    if (!connect_with_timeout(&addr, sizeof(addr), where)) return false;
  } else if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) != 0) {
    return fail("connect " + where + ": " + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options_.io_timeout_ms > 0) {
    const timeval tv = to_timeval(options_.io_timeout_ms);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }

  // Versioned handshake: refuse to talk to a server speaking something
  // we don't. The current revision and the legacy one are both fine —
  // parulel/2 is a superset of parulel/1.
  Response hello;
  std::string greeting = "hello ";
  greeting += service::ServeProtocol::kProtocolVersion;
  if (!request(greeting, hello)) return false;
  if (!hello.ok()) {
    // Downgrade path: an old server refuses parulel/2 with a structured
    // error naming what it does speak; try the legacy revision once.
    std::string legacy = "hello ";
    legacy += service::ServeProtocol::kProtocolVersionLegacy;
    if (!request(legacy, hello)) return false;
    if (!hello.ok()) return fail("handshake refused: " + hello.status);
  }
  const std::size_t space = hello.status.rfind(' ');
  server_version_ = space == std::string::npos
                        ? std::string()
                        : hello.status.substr(space + 1);
  if (server_version_ != service::ServeProtocol::kProtocolVersion &&
      server_version_ != service::ServeProtocol::kProtocolVersionLegacy) {
    return fail("server speaks " + server_version_ + ", client speaks " +
                std::string(service::ServeProtocol::kProtocolVersion));
  }
  return true;
}

bool NetClient::send_line(std::string_view line) {
  if (fd_ < 0) {
    error_ = "not connected";
    return false;
  }
  timed_out_ = false;
  std::string frame(line);
  frame += '\n';
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + off, frame.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        timed_out_ = true;
        return fail("send: timed out");
      }
      return fail(std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool NetClient::read_line(std::string& out) {
  for (;;) {
    const std::size_t nl = rbuf_.find('\n');
    if (nl != std::string::npos) {
      out = rbuf_.substr(0, nl);
      rbuf_.erase(0, nl + 1);
      if (!out.empty() && out.back() == '\r') out.pop_back();
      return true;
    }
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      rbuf_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      timed_out_ = true;
      return fail("recv: timed out");
    }
    return fail(n == 0 ? "connection closed by server"
                       : std::string("recv: ") + std::strerror(errno));
  }
}

bool NetClient::read_response(Response& out) {
  out.status.clear();
  out.details.clear();
  if (fd_ < 0) {
    error_ = "not connected";
    return false;
  }
  if (!read_line(out.status)) return false;

  // `ok query n=N` is the one multi-line response: N `fact` lines follow.
  constexpr std::string_view kQuery = "ok query n=";
  if (out.status.rfind(kQuery, 0) == 0) {
    std::size_t n = 0;
    const char* first = out.status.data() + kQuery.size();
    const char* last = out.status.data() + out.status.size();
    auto [p, ec] = std::from_chars(first, last, n);
    if (ec != std::errc() || p != last) {
      return fail("bad query response: " + out.status);
    }
    out.details.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::string detail;
      if (!read_line(detail)) return false;
      out.details.push_back(std::move(detail));
    }
  }
  return true;
}

bool NetClient::request(std::string_view line, Response& out) {
  return send_line(line) && read_response(out);
}

}  // namespace parulel::net
