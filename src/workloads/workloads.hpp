// Workload generators: the evaluation programs.
//
// Each generator emits a complete PARULEL program (templates, rules,
// meta-rules, deffacts) as source text plus a partition scheme for the
// distributed engine. These are reconstructions of the classic OPS5
// benchmark family the PARULEL literature evaluates on:
//
//   tc      — transitive closure over a random digraph; saturation
//             workload, embarrassingly parallel firing.
//   sieve   — prime sieve by parallel retraction of composites, with a
//             meta-rule that redacts redundant strikes (two factors
//             retracting one number) — the write-conflict ablation.
//   waltz   — Waltz line labeling as rule-based arc consistency over the
//             Huffman–Clowes junction dictionary, on N replicated cube
//             drawings (the classic Waltz benchmark shape).
//   manners — Miss Manners-style greedy seating; meta-rules select one
//             extension per cycle: the canonical low-parallelism program.
//   synth   — parameterized k-way join chain for match-cost benches.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

namespace parulel::workloads {

struct Workload {
  std::string name;
  std::string description;
  std::string source;  ///< full program text, parse with parse_program()
  /// Template name -> slot name for the distributed engine; templates
  /// absent are replicated. Empty = workload is not distribution-ready.
  std::unordered_map<std::string, std::string> partition;
};

/// Transitive closure: `nodes` vertices, `edges` random edges.
Workload make_tc(int nodes, int edges, std::uint64_t seed);

/// Sieve: numbers 2..max_n. `dedup_strikes` adds the meta-rule that
/// redacts all but the lowest-factor strike per composite.
Workload make_sieve(int max_n, bool dedup_strikes);

/// Waltz labeling over `cubes` replicated cube drawings.
///
/// `prebuilt_witnesses` (the default, mirroring AC-4's upfront counter
/// initialization) asserts the initial support set as facts, so cycle 1
/// goes straight to pruning. With `false`, the witness set is built BY
/// RULES in cycle 1 while a defer-prune meta-rule withholds premature
/// pruning — the meta-stratification showcase — at the cost of a
/// quadratic meta conflict set; use small sizes.
Workload make_waltz(int cubes, bool prebuilt_witnesses = true);

/// Miss Manners: `guests` (even), `hobbies` distinct hobbies, every
/// guest also shares hobby 1 so greedy seating always succeeds.
Workload make_manners(int guests, int hobbies, std::uint64_t seed);

/// Join-chain stress: `chain` relations r0..r{chain-1}, `facts` tuples
/// per relation with keys uniform in [0, range).
Workload make_synth(int chain, int facts, int range, std::uint64_t seed);

/// Conway's Life on an `n` x `n` torus for `generations` steps: one rule
/// performs a 9-way join (a cell and its eight neighbors) and computes
/// the next state arithmetically — the deep-join, fully data-parallel
/// workload. Every cell of a generation fires in one PARULEL cycle.
Workload make_life(int n, int generations, std::uint64_t seed);

/// Single-source shortest paths by parallel relaxation over a random
/// weighted digraph. A meta-rule keeps only the BEST relaxation per
/// node per cycle (programmable conflict resolution doing real
/// algorithmic work: without it, stale longer paths also fire and are
/// later superseded — both variants converge, the meta variant in
/// fewer firings).
Workload make_routing(int nodes, int edges, std::uint64_t seed,
                      bool best_only_meta = true);

}  // namespace parulel::workloads
