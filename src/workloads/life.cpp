// Conway's Life as a production system.
//
// One rule performs a 9-way join: a cell, its precomputed neighbor-list
// fact, and the eight neighbor cells of the same generation; the RHS
// computes the next state arithmetically and asserts the next-generation
// cell. Refraction (not negation) stops re-derivation, and a maxgen
// guard bounds the run. Every cell of a generation fires in a single
// PARULEL cycle, so cycles == generations while the OPS5 baseline needs
// n*n cycles per generation.
#include <sstream>

#include "support/rng.hpp"
#include "workloads/workloads.hpp"

namespace parulel::workloads {

Workload make_life(int n, int generations, std::uint64_t seed) {
  if (n < 3) n = 3;

  std::ostringstream src;
  src << "; Conway's Life on a " << n << "x" << n << " torus\n"
      << "(deftemplate cell (slot id) (slot gen) (slot alive))\n"
      << "(deftemplate nbrs (slot c) (slot n1) (slot n2) (slot n3)"
         " (slot n4) (slot n5) (slot n6) (slot n7) (slot n8))\n"
      << "(deftemplate maxgen (slot g))\n"
      << "\n"
      << "(defrule step\n"
      << "  (maxgen (g ?mg))\n"
      << "  (cell (id ?c) (gen ?g) (alive ?a))\n"
      << "  (test (< ?g ?mg))\n"
      << "  (nbrs (c ?c) (n1 ?p1) (n2 ?p2) (n3 ?p3) (n4 ?p4)"
         " (n5 ?p5) (n6 ?p6) (n7 ?p7) (n8 ?p8))\n"
      << "  (cell (id ?p1) (gen ?g) (alive ?a1))\n"
      << "  (cell (id ?p2) (gen ?g) (alive ?a2))\n"
      << "  (cell (id ?p3) (gen ?g) (alive ?a3))\n"
      << "  (cell (id ?p4) (gen ?g) (alive ?a4))\n"
      << "  (cell (id ?p5) (gen ?g) (alive ?a5))\n"
      << "  (cell (id ?p6) (gen ?g) (alive ?a6))\n"
      << "  (cell (id ?p7) (gen ?g) (alive ?a7))\n"
      << "  (cell (id ?p8) (gen ?g) (alive ?a8))\n"
      << "  =>\n"
      << "  (bind ?count (+ ?a1 ?a2 ?a3 ?a4 ?a5 ?a6 ?a7 ?a8))\n"
      << "  (bind ?next (or (== ?count 3)"
         " (and (== ?count 2) (== ?a 1))))\n"
      << "  (assert (cell (id ?c) (gen (+ ?g 1)) (alive ?next))))\n"
      << "\n";

  Rng rng(seed);
  src << "(deffacts board\n"
      << "  (maxgen (g " << generations << "))\n";
  auto id_of = [n](int x, int y) { return x * n + y; };
  for (int x = 0; x < n; ++x) {
    for (int y = 0; y < n; ++y) {
      const int alive = rng.unit() < 0.35 ? 1 : 0;
      src << "  (cell (id " << id_of(x, y) << ") (gen 0) (alive " << alive
          << "))\n";
      src << "  (nbrs (c " << id_of(x, y) << ")";
      int k = 1;
      for (int dx = -1; dx <= 1; ++dx) {
        for (int dy = -1; dy <= 1; ++dy) {
          if (dx == 0 && dy == 0) continue;
          const int nx = (x + dx + n) % n;
          const int ny = (y + dy + n) % n;
          src << " (n" << k << " " << id_of(nx, ny) << ")";
          ++k;
        }
      }
      src << ")\n";
    }
  }
  src << ")\n";

  Workload w;
  w.name = "life";
  w.description = "Life " + std::to_string(n) + "x" + std::to_string(n) +
                  " torus, " + std::to_string(generations) + " generations";
  w.source = src.str();
  // The 9-way join crosses the whole board: not partitionable by a
  // single slot (a cell's neighbors hash elsewhere).
  w.partition = {};
  return w;
}

}  // namespace parulel::workloads
