// Single-source shortest paths by parallel relaxation.
//
// The `relax` rule improves a node's distance via `modify` — the fused
// retract+assert makes concurrent improvements of one node first-writer-
// wins, so the single-dist-per-node invariant holds without meta-rules
// (convergence by monotonicity). The `best_only_meta` variant adds the
// PARULEL move: a meta-rule redacts every relaxation of a node except
// the best one each cycle, turning wasted firings into redactions and
// cutting convergence cycles — programmable conflict resolution doing
// real algorithmic work.
#include <sstream>

#include "support/rng.hpp"
#include "workloads/workloads.hpp"

namespace parulel::workloads {

Workload make_routing(int nodes, int edges, std::uint64_t seed,
                      bool best_only_meta) {
  if (nodes < 2) nodes = 2;
  constexpr std::int64_t kInf = 1000000;

  std::ostringstream src;
  src << "; single-source shortest paths by relaxation\n"
      << "(deftemplate edge (slot from) (slot to) (slot w))\n"
      << "(deftemplate dist (slot node) (slot d))\n"
      << "\n"
      << "(defrule relax\n"
      << "  (dist (node ?u) (d ?du))\n"
      << "  (edge (from ?u) (to ?v) (w ?w))\n"
      << "  ?dv <- (dist (node ?v) (d ?d))\n"
      << "  (test (> ?d (+ ?du ?w)))\n"
      << "  =>\n"
      << "  (modify ?dv (d (+ ?du ?w))))\n"
      << "\n";

  if (best_only_meta) {
    src << "; keep only the best relaxation per node per cycle\n"
        << "(defmetarule best-relax\n"
        << "  (inst-relax (id ?i) (v ?x) (du ?du1) (w ?w1))\n"
        << "  (inst-relax (id ?j) (v ?x) (du ?du2) (w ?w2))\n"
        << "  (test (or (< (+ ?du1 ?w1) (+ ?du2 ?w2))\n"
        << "            (and (== (+ ?du1 ?w1) (+ ?du2 ?w2)) (< ?i ?j))))\n"
        << "  =>\n"
        << "  (redact ?j))\n"
        << "\n";
  }

  // Ring (guarantees reachability from node 0) plus random chords.
  Rng rng(seed);
  src << "(deffacts graph\n";
  for (int v = 0; v < nodes; ++v) {
    src << "  (dist (node " << v << ") (d " << (v == 0 ? 0 : kInf)
        << "))\n";
    src << "  (edge (from " << v << ") (to " << (v + 1) % nodes << ") (w "
        << 1 + rng.below(10) << "))\n";
  }
  for (int e = nodes; e < edges; ++e) {
    const auto a = static_cast<std::int64_t>(
        rng.below(static_cast<std::uint64_t>(nodes)));
    const auto b = static_cast<std::int64_t>(
        rng.below(static_cast<std::uint64_t>(nodes)));
    if (a == b) continue;
    src << "  (edge (from " << a << ") (to " << b << ") (w "
        << 1 + rng.below(10) << "))\n";
  }
  src << ")\n";

  Workload w;
  w.name = best_only_meta ? "routing+meta" : "routing";
  w.description = "SSSP relaxation, " + std::to_string(nodes) +
                  " nodes / ~" + std::to_string(edges) + " edges" +
                  (best_only_meta ? ", best-only meta-rule" : "");
  w.source = src.str();
  // relax joins dist(?u) with dist(?v): inherently cross-partition.
  w.partition = {};
  return w;
}

}  // namespace parulel::workloads
