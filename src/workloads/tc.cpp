#include <sstream>
#include <unordered_set>

#include "support/rng.hpp"
#include "workloads/workloads.hpp"

namespace parulel::workloads {

Workload make_tc(int nodes, int edges, std::uint64_t seed) {
  std::ostringstream src;
  src << "; transitive closure over a random digraph\n"
      << "(deftemplate edge (slot from) (slot to))\n"
      << "(deftemplate path (slot from) (slot to))\n"
      << "\n"
      << "(defrule base\n"
      << "  (edge (from ?a) (to ?b))\n"
      << "  (not (path (from ?a) (to ?b)))\n"
      << "  =>\n"
      << "  (assert (path (from ?a) (to ?b))))\n"
      << "\n"
      << "(defrule extend\n"
      << "  (path (from ?a) (to ?b))\n"
      << "  (edge (from ?b) (to ?c))\n"
      << "  (not (path (from ?a) (to ?c)))\n"
      << "  =>\n"
      << "  (assert (path (from ?a) (to ?c))))\n"
      << "\n";

  // Distinct random edges, no self-loops.
  Rng rng(seed);
  std::unordered_set<std::uint64_t> used;
  src << "(deffacts graph\n";
  int emitted = 0;
  while (emitted < edges) {
    const auto a = static_cast<std::int64_t>(rng.below(
        static_cast<std::uint64_t>(nodes)));
    const auto b = static_cast<std::int64_t>(rng.below(
        static_cast<std::uint64_t>(nodes)));
    if (a == b) continue;
    const std::uint64_t key = static_cast<std::uint64_t>(a) *
                                  static_cast<std::uint64_t>(nodes) +
                              static_cast<std::uint64_t>(b);
    if (!used.insert(key).second) continue;
    src << "  (edge (from " << a << ") (to " << b << "))\n";
    ++emitted;
  }
  src << ")\n";

  Workload w;
  w.name = "tc";
  w.description = "transitive closure, " + std::to_string(nodes) +
                  " nodes / " + std::to_string(edges) + " edges";
  w.source = src.str();
  // path partitioned by source vertex; edge replicated so the `extend`
  // join (path.from = ?a everywhere) stays site-local.
  w.partition = {{"path", "from"}};
  return w;
}

}  // namespace parulel::workloads
