// Waltz line labeling as rule-based arc consistency.
//
// The classic Waltz benchmark labels the lines of a blocks-world drawing
// with {+, -, arrow} subject to the Huffman–Clowes junction dictionary,
// deleting impossible labels until the network is consistent. This
// generator reproduces that computational shape faithfully:
//
//   - the scene is N replicated cube drawings (the standard benchmark
//     scales exactly this way): 9 edges, 7 junctions per cube
//     (1 FORK, 3 ARROWs, 3 Ls);
//   - edge variables take values {plus, minus, af, ab} (af/ab = arrow
//     along/against the edge's j1->j2 orientation);
//   - junction tuple dictionaries (simplified Huffman–Clowes; see
//     DESIGN.md substitutions) are projected onto ordered pairs of
//     incident edges, yielding binary `compat` facts;
//   - the ruleset runs AC-4-style support counting: `witness` facts
//     record live support pairs, pruning retracts a domain value whose
//     witnesses for some arc are all gone, and a meta-rule defers
//     pruning while witness construction is still in flight — meta-rules
//     as programmable stratification, straight out of the PARULEL
//     playbook.
#include <array>
#include <sstream>
#include <string>
#include <vector>

#include "workloads/workloads.hpp"

namespace parulel::workloads {
namespace {

// End labels at a junction.
enum class End { P, M, In, Out };

// Edge variable values.
enum class Val { Plus, Minus, Af, Ab };

const char* val_name(Val v) {
  switch (v) {
    case Val::Plus: return "plus";
    case Val::Minus: return "minus";
    case Val::Af: return "af";
    case Val::Ab: return "ab";
  }
  return "?";
}

/// End label an edge value produces at a junction, given whether the
/// junction is the edge's j1 (tail of the af direction).
End end_of(Val v, bool at_j1) {
  switch (v) {
    case Val::Plus: return End::P;
    case Val::Minus: return End::M;
    case Val::Af: return at_j1 ? End::Out : End::In;
    case Val::Ab: return at_j1 ? End::In : End::Out;
  }
  return End::P;
}

struct JunctionKind {
  int arity;
  std::vector<std::vector<End>> tuples;
};

// Simplified Huffman–Clowes dictionaries (see file comment).
const JunctionKind& kind_L() {
  static const JunctionKind k{
      2,
      {{End::In, End::Out},
       {End::Out, End::In},
       {End::P, End::Out},
       {End::In, End::P},
       {End::M, End::In},
       {End::Out, End::M}}};
  return k;
}

const JunctionKind& kind_Fork() {
  static const JunctionKind k{
      3,
      {{End::P, End::P, End::P},
       {End::M, End::M, End::M},
       {End::M, End::In, End::Out},
       {End::Out, End::M, End::In},
       {End::In, End::Out, End::M}}};
  return k;
}

const JunctionKind& kind_Arrow() {  // (left barb, right barb, shaft)
  static const JunctionKind k{
      3,
      {{End::In, End::Out, End::P},
       {End::P, End::P, End::M},
       {End::M, End::M, End::P}}};
  return k;
}

struct Junction {
  const JunctionKind* kind;
  // Incident edges in role order; bool = this junction is the edge's j1.
  std::vector<std::pair<int, bool>> edges;
};

constexpr std::array<Val, 4> kAllVals = {Val::Plus, Val::Minus, Val::Af,
                                         Val::Ab};

}  // namespace

Workload make_waltz(int cubes, bool prebuilt_witnesses) {
  // --- Cube topology -----------------------------------------------------
  // Edges 0..8: 0..5 boundary hexagon, 6..8 inner spokes from the fork.
  //   boundary: A0-L0(0), L0-A1(1), A1-L1(2), L1-A2(3), A2-L2(4), L2-A0(5)
  //   spokes:   C-A0(6), C-A1(7), C-A2(8)
  // Edge orientation (j1 -> j2) is as listed above.
  // Junctions: C (fork), A0..A2 (arrows), L0..L2 (Ls).
  std::vector<Junction> junctions;
  // Fork C: roles = the three spokes, all at their j1.
  junctions.push_back({&kind_Fork(), {{6, true}, {7, true}, {8, true}}});
  // Arrow Ak: left barb = incoming boundary edge, right barb = outgoing
  // boundary edge, shaft = spoke (at its j2).
  junctions.push_back({&kind_Arrow(), {{5, false}, {0, true}, {6, false}}});
  junctions.push_back({&kind_Arrow(), {{1, false}, {2, true}, {7, false}}});
  junctions.push_back({&kind_Arrow(), {{3, false}, {4, true}, {8, false}}});
  // L junctions between consecutive boundary edges.
  junctions.push_back({&kind_L(), {{0, false}, {1, true}}});
  junctions.push_back({&kind_L(), {{2, false}, {3, true}}});
  junctions.push_back({&kind_L(), {{4, false}, {5, true}}});

  // --- Program text ------------------------------------------------------
  std::ostringstream src;
  src << "; Waltz line labeling as AC-4-style constraint propagation\n"
      << "(deftemplate domain (slot cube) (slot var) (slot value))\n"
      << "(deftemplate arc (slot cube) (slot x) (slot y))\n"
      << "(deftemplate compat (slot cube) (slot x) (slot y) (slot vx)"
         " (slot vy))\n"
      << "(deftemplate witness (slot cube) (slot x) (slot y) (slot vx)"
         " (slot vy))\n"
      << "\n"
      << "(defrule witness-build\n"
      << "  (declare (salience 100))\n"
      << "  (compat (cube ?c) (x ?x) (y ?y) (vx ?vx) (vy ?vy))\n"
      << "  (domain (cube ?c) (var ?x) (value ?vx))\n"
      << "  (domain (cube ?c) (var ?y) (value ?vy))\n"
      << "  (not (witness (cube ?c) (x ?x) (y ?y) (vx ?vx) (vy ?vy)))\n"
      << "  =>\n"
      << "  (assert (witness (cube ?c) (x ?x) (y ?y) (vx ?vx) (vy ?vy))))\n"
      << "\n"
      << "(defrule witness-dead-x\n"
      << "  (declare (salience 50))\n"
      << "  ?w <- (witness (cube ?c) (x ?x) (y ?y) (vx ?vx) (vy ?vy))\n"
      << "  (not (domain (cube ?c) (var ?x) (value ?vx)))\n"
      << "  =>\n"
      << "  (retract ?w))\n"
      << "\n"
      << "(defrule witness-dead-y\n"
      << "  (declare (salience 50))\n"
      << "  ?w <- (witness (cube ?c) (x ?x) (y ?y) (vx ?vx) (vy ?vy))\n"
      << "  (not (domain (cube ?c) (var ?y) (value ?vy)))\n"
      << "  =>\n"
      << "  (retract ?w))\n"
      << "\n"
      << "(defrule prune\n"
      << "  ?d <- (domain (cube ?c) (var ?x) (value ?vx))\n"
      << "  (arc (cube ?c) (x ?x) (y ?y))\n"
      << "  (not (witness (cube ?c) (x ?x) (y ?y) (vx ?vx)))\n"
      << "  =>\n"
      << "  (retract ?d))\n"
      << "\n"
      << "; Meta-rule stratification: while any witness is still being\n"
      << "; built, pruning is premature — withhold it this cycle.\n"
      << "(defmetarule defer-prune\n"
      << "  (inst-prune (id ?i) (c ?c))\n"
      << "  (inst-witness-build (id ?j) (c ?c))\n"
      << "  =>\n"
      << "  (redact ?i))\n"
      << "\n";

  // --- Facts -------------------------------------------------------------
  src << "(deffacts scene\n";
  for (int c = 0; c < cubes; ++c) {
    for (int e = 0; e < 9; ++e) {
      for (Val v : kAllVals) {
        src << "  (domain (cube " << c << ") (var e" << e << ") (value "
            << val_name(v) << "))\n";
      }
    }
    for (const auto& junction : junctions) {
      const auto& edges = junction.edges;
      const int arity = junction.kind->arity;
      for (int r1 = 0; r1 < arity; ++r1) {
        for (int r2 = 0; r2 < arity; ++r2) {
          if (r1 == r2) continue;
          const auto [e1, at_j1_1] = edges[static_cast<std::size_t>(r1)];
          const auto [e2, at_j1_2] = edges[static_cast<std::size_t>(r2)];
          src << "  (arc (cube " << c << ") (x e" << e1 << ") (y e" << e2
              << "))\n";
          // Project the tuple dictionary onto (r1, r2) in edge values.
          for (Val v1 : kAllVals) {
            for (Val v2 : kAllVals) {
              const End end1 = end_of(v1, at_j1_1);
              const End end2 = end_of(v2, at_j1_2);
              bool ok = false;
              for (const auto& tuple : junction.kind->tuples) {
                if (tuple[static_cast<std::size_t>(r1)] == end1 &&
                    tuple[static_cast<std::size_t>(r2)] == end2) {
                  ok = true;
                  break;
                }
              }
              if (ok) {
                src << "  (compat (cube " << c << ") (x e" << e1 << ") (y e"
                    << e2 << ") (vx " << val_name(v1) << ") (vy "
                    << val_name(v2) << "))\n";
                if (prebuilt_witnesses) {
                  // AC-4 initialization: all domain values start live,
                  // so every compat pair is initially supported.
                  src << "  (witness (cube " << c << ") (x e" << e1
                      << ") (y e" << e2 << ") (vx " << val_name(v1)
                      << ") (vy " << val_name(v2) << "))\n";
                }
              }
            }
          }
        }
      }
    }
  }
  src << ")\n";

  Workload w;
  w.name = "waltz";
  w.description = "Waltz labeling, " + std::to_string(cubes) +
                  " cube drawings" +
                  (prebuilt_witnesses ? "" : " (rule-built witnesses)");
  w.source = src.str();
  w.partition = {{"domain", "cube"},
                 {"arc", "cube"},
                 {"compat", "cube"},
                 {"witness", "cube"}};
  return w;
}

}  // namespace parulel::workloads
