#include <sstream>

#include "workloads/workloads.hpp"

namespace parulel::workloads {

Workload make_sieve(int max_n, bool dedup_strikes) {
  std::ostringstream src;
  src << "; sieve: strike every composite by parallel retraction\n"
      << "(deftemplate number (slot n))\n"
      << "\n"
      << "(defrule strike\n"
      << "  (number (n ?p))\n"
      << "  ?x <- (number (n ?q))\n"
      << "  (test (> ?q ?p))\n"
      << "  (test (== (mod ?q ?p) 0))\n"
      << "  =>\n"
      << "  (retract ?x))\n"
      << "\n";

  if (dedup_strikes) {
    // Without this, 12 is struck by 2, 3, 4, and 6 in the same cycle:
    // three of the four retractions are write conflicts. The meta-rule
    // keeps only the lowest-factor strike per composite (ties cannot
    // happen: equal p and q means equal instantiations).
    src << "(defmetarule one-strike-per-composite\n"
        << "  (inst-strike (id ?i) (p ?p1) (q ?q))\n"
        << "  (inst-strike (id ?j) (p ?p2) (q ?q))\n"
        << "  (test (< ?p1 ?p2))\n"
        << "  =>\n"
        << "  (redact ?j))\n"
        << "\n";
  }

  src << "(deffacts numbers\n";
  for (int n = 2; n <= max_n; ++n) {
    src << "  (number (n " << n << "))\n";
  }
  src << ")\n";

  Workload w;
  w.name = dedup_strikes ? "sieve+meta" : "sieve";
  w.description = "prime sieve to " + std::to_string(max_n) +
                  (dedup_strikes ? " with strike-dedup meta-rule" : "");
  w.source = src.str();
  // All patterns of `strike` join two different numbers: inherently
  // cross-partition, so the sieve is not distribution-ready.
  w.partition = {};
  return w;
}

}  // namespace parulel::workloads
