// Miss Manners-style seating.
//
// The canonical low-parallelism production-system benchmark: guests are
// seated one at a time, each adjacent pair must alternate sex and share
// a hobby. Under OPS5 this is driven by the conflict-resolution
// strategy; under PARULEL the selection is programmed as meta-rules that
// redact all but one extension per cycle — the paper's signature use of
// programmable conflict resolution. Every guest shares hobby 1, so the
// greedy (non-backtracking) search always completes.
#include <sstream>
#include <vector>

#include "support/rng.hpp"
#include "workloads/workloads.hpp"

namespace parulel::workloads {

Workload make_manners(int guests, int hobbies, std::uint64_t seed) {
  if (guests % 2 != 0) ++guests;  // equal sexes required for alternation
  if (hobbies < 1) hobbies = 1;

  std::ostringstream src;
  src << "; Miss Manners-style greedy seating\n"
      << "(deftemplate guest (slot name) (slot sex) (slot hobby))\n"
      << "(deftemplate last-seat (slot seat) (slot name) (slot sex))\n"
      << "(deftemplate seated (slot name))\n"
      << "(deftemplate context (slot state))\n"
      << "\n"
      << "(defrule seat-first\n"
      << "  ?ctx <- (context (state start))\n"
      << "  (guest (name ?n) (sex ?sx) (hobby ?h))\n"
      << "  =>\n"
      << "  (retract ?ctx)\n"
      << "  (assert (last-seat (seat 1) (name ?n) (sex ?sx)))\n"
      << "  (assert (seated (name ?n))))\n"
      << "\n"
      << "(defrule seat-next\n"
      << "  ?l <- (last-seat (seat ?s) (name ?n1) (sex ?sx1))\n"
      << "  (guest (name ?n1) (sex ?sx1) (hobby ?h))\n"
      << "  (guest (name ?n2) (sex ?sx2) (hobby ?h))\n"
      << "  (not (seated (name ?n2)))\n"
      << "  (test (!= ?sx1 ?sx2))\n"
      << "  =>\n"
      << "  (retract ?l)\n"
      << "  (assert (last-seat (seat (+ ?s 1)) (name ?n2) (sex ?sx2)))\n"
      << "  (assert (seated (name ?n2))))\n"
      << "\n"
      << "; Programmable conflict resolution: exactly one extension per\n"
      << "; cycle, lowest instantiation id (i.e. deterministic greedy).\n"
      << "(defmetarule pick-one-first\n"
      << "  (inst-seat-first (id ?i))\n"
      << "  (inst-seat-first (id ?j))\n"
      << "  (test (< ?i ?j))\n"
      << "  =>\n"
      << "  (redact ?j))\n"
      << "\n"
      << "(defmetarule pick-one-next\n"
      << "  (inst-seat-next (id ?i))\n"
      << "  (inst-seat-next (id ?j))\n"
      << "  (test (< ?i ?j))\n"
      << "  =>\n"
      << "  (redact ?j))\n"
      << "\n";

  Rng rng(seed);
  src << "(deffacts party\n"
      << "  (context (state start))\n";
  for (int g = 0; g < guests; ++g) {
    const char* sex = (g % 2 == 0) ? "m" : "f";
    // Hobby 1 for everyone (guarantees greedy completion), plus up to
    // two random extra hobbies.
    src << "  (guest (name g" << g << ") (sex " << sex << ") (hobby 1))\n";
    const int extras = static_cast<int>(rng.below(3));
    for (int e = 0; e < extras; ++e) {
      const auto h = 2 + static_cast<std::int64_t>(rng.below(
                             static_cast<std::uint64_t>(
                                 hobbies > 1 ? hobbies - 1 : 1)));
      src << "  (guest (name g" << g << ") (sex " << sex << ") (hobby " << h
          << "))\n";
    }
  }
  src << ")\n";

  Workload w;
  w.name = "manners";
  w.description = "Miss Manners seating, " + std::to_string(guests) +
                  " guests / " + std::to_string(hobbies) + " hobbies";
  w.source = src.str();
  w.partition = {};  // inherently global: one seating chain
  return w;
}

}  // namespace parulel::workloads
