// Synthetic join-chain stress: a single rule joining `chain` relations
// r0(a,b) |> r1(a,b) |> ... on b = next.a, emitting an `out` fact per
// complete chain. Parameterizes join depth, relation size, and key
// selectivity — the knobs for the match-algorithm comparison (R-T4).
#include <sstream>

#include "support/rng.hpp"
#include "workloads/workloads.hpp"

namespace parulel::workloads {

Workload make_synth(int chain, int facts, int range, std::uint64_t seed) {
  if (chain < 2) chain = 2;
  if (range < 1) range = 1;

  std::ostringstream src;
  src << "; synthetic " << chain << "-way join chain\n";
  for (int i = 0; i < chain; ++i) {
    src << "(deftemplate r" << i << " (slot a) (slot b))\n";
  }
  src << "(deftemplate out (slot a) (slot b))\n\n";

  src << "(defrule chain\n";
  for (int i = 0; i < chain; ++i) {
    src << "  (r" << i << " (a ?v" << i << ") (b ?v" << i + 1 << "))\n";
  }
  src << "  (not (out (a ?v0) (b ?v" << chain << ")))\n"
      << "  =>\n"
      << "  (assert (out (a ?v0) (b ?v" << chain << "))))\n\n";

  Rng rng(seed);
  src << "(deffacts relations\n";
  for (int i = 0; i < chain; ++i) {
    for (int f = 0; f < facts; ++f) {
      const auto a = static_cast<std::int64_t>(
          rng.below(static_cast<std::uint64_t>(range)));
      const auto b = static_cast<std::int64_t>(
          rng.below(static_cast<std::uint64_t>(range)));
      src << "  (r" << i << " (a " << a << ") (b " << b << "))\n";
    }
  }
  src << ")\n";

  Workload w;
  w.name = "synth";
  w.description = std::to_string(chain) + "-way join, " +
                  std::to_string(facts) + " facts/rel, range " +
                  std::to_string(range);
  w.source = src.str();
  w.partition = {};  // joins cross any single-slot partition
  return w;
}

}  // namespace parulel::workloads
