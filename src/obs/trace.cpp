#include "obs/trace.hpp"

namespace parulel::obs {

void TraceSink::cycle(const CycleStats& c, const CycleActivity& activity) {
  writer_.clear();
  writer_.begin_object();
  writer_.field("type", "cycle");
  writer_.field("engine", activity.engine);
  for (const auto& f : cycle_fields()) writer_.field(f.name, c.*f.member);
  writer_.field("total_ns", c.total_ns());
  writer_.field("insts_derived", activity.insts_derived);
  writer_.field("insts_invalidated", activity.insts_invalidated);
  writer_.field("alpha_activations", activity.alpha_activations);
  writer_.field("pool_jobs", activity.pool_jobs);
  writer_.field("pool_busy_ns", activity.pool_busy_ns);
  writer_.field("threads", static_cast<std::uint64_t>(activity.threads));
  writer_.end_object();
  os_ << writer_.str() << '\n';
  ++events_;
}

void TraceSink::run(const RunStats& stats, std::string_view engine,
                    const FaultStats* faults) {
  writer_.clear();
  writer_.begin_object();
  writer_.field("type", "run");
  writer_.field("engine", engine);
  for (const auto& f : run_fields()) writer_.field(f.name, stats.*f.member);
  writer_.field("halted", stats.halted);
  writer_.field("quiescent", stats.quiescent);
  writer_.field("termination", termination_name(stats.termination));
  if (faults) {
    for (const auto& f : fault_fields()) {
      writer_.field(f.name, faults->*f.member);
    }
  }
  writer_.end_object();
  os_ << writer_.str() << '\n';
  os_.flush();
  ++events_;
}

void TraceSink::service(const ServiceStats& stats) {
  writer_.clear();
  writer_.begin_object();
  writer_.field("type", "service");
  for (const auto& f : service_fields()) {
    writer_.field(f.name, stats.*f.member);
  }
  writer_.end_object();
  os_ << writer_.str() << '\n';
  os_.flush();
  ++events_;
}

}  // namespace parulel::obs
