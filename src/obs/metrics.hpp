// Metrics registry: named monotonic counters and gauges.
//
// Every subsystem that has numbers worth exporting — the engines, the
// matchers, the meta evaluator, the thread pool — reports into one
// MetricsRegistry handed in through its config. Counters are
// get-or-created by name, have stable addresses for the registry's
// lifetime, and are safe to bump from any thread; registration itself
// takes a lock, so callers hoist the Counter& out of hot loops.
//
// Export formats: `to_text()` (one "name value" line each, sorted — the
// greppable form) and `to_json()` (one flat object — the machine form).
//
// Compile-time gate: building with -DPARULEL_OBS_ENABLED=0 turns the
// PARULEL_OBS_ONLY(...) blocks in the engines into nothing, removing
// even the null-pointer checks from the recognize-act loop.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#ifndef PARULEL_OBS_ENABLED
#define PARULEL_OBS_ENABLED 1
#endif

#if PARULEL_OBS_ENABLED
#define PARULEL_OBS_ONLY(...) __VA_ARGS__
#else
#define PARULEL_OBS_ONLY(...)
#endif

namespace parulel::obs {

/// One named metric. Monotonic `add` for counters, absolute `set` for
/// gauges; the registry does not distinguish — exporters see a value.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  std::uint64_t get() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create the counter `name`. The reference stays valid for the
  /// registry's lifetime.
  Counter& counter(std::string_view name);

  /// Convenience: counter(name).set/add without keeping the handle.
  void set(std::string_view name, std::uint64_t v) { counter(name).set(v); }
  void add(std::string_view name, std::uint64_t n) { counter(name).add(n); }

  std::size_t size() const;

  /// Name/value snapshot, sorted by name.
  std::vector<std::pair<std::string, std::uint64_t>> snapshot() const;

  /// "name value\n" per metric, sorted by name.
  std::string to_text() const;

  /// One flat JSON object {"name":value,...}, sorted by name.
  std::string to_json() const;

 private:
  mutable std::mutex mutex_;
  // deque: stable element addresses across growth.
  std::deque<std::pair<std::string, Counter>> entries_;
};

}  // namespace parulel::obs
