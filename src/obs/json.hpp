// Minimal JSON writer for the observability layer.
//
// Appends into a caller-owned (or internal, reusable) std::string buffer;
// after the first few events the buffer reaches steady-state capacity and
// emission is allocation-free. Deliberately tiny: objects, arrays, string
// escaping, integers, doubles, booleans — everything the trace sink,
// metrics export, and bench reports need, and nothing else.
#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace parulel::obs {

class JsonWriter {
 public:
  JsonWriter() { buffer_.reserve(256); }

  /// Drop content, keep capacity — call between JSONL records.
  void clear() {
    buffer_.clear();
    need_comma_ = false;
  }

  const std::string& str() const { return buffer_; }

  JsonWriter& begin_object() {
    separate();
    buffer_ += '{';
    need_comma_ = false;
    return *this;
  }
  JsonWriter& end_object() {
    buffer_ += '}';
    need_comma_ = true;
    return *this;
  }
  JsonWriter& begin_array() {
    separate();
    buffer_ += '[';
    need_comma_ = false;
    return *this;
  }
  JsonWriter& end_array() {
    buffer_ += ']';
    need_comma_ = true;
    return *this;
  }

  JsonWriter& key(std::string_view k) {
    separate();
    append_string(k);
    buffer_ += ':';
    need_comma_ = false;
    return *this;
  }

  JsonWriter& value(std::uint64_t v) {
    separate();
    char tmp[24];
    const int n = std::snprintf(tmp, sizeof tmp, "%" PRIu64, v);
    buffer_.append(tmp, static_cast<std::size_t>(n));
    need_comma_ = true;
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    separate();
    char tmp[24];
    const int n = std::snprintf(tmp, sizeof tmp, "%" PRId64, v);
    buffer_.append(tmp, static_cast<std::size_t>(n));
    need_comma_ = true;
    return *this;
  }
  JsonWriter& value(double v) {
    separate();
    char tmp[40];
    // %.17g round-trips doubles; JSON has no inf/nan, clamp to null.
    int n;
    if (v != v || v > 1.7976931348623157e308 || v < -1.7976931348623157e308) {
      n = std::snprintf(tmp, sizeof tmp, "null");
    } else {
      n = std::snprintf(tmp, sizeof tmp, "%.17g", v);
    }
    buffer_.append(tmp, static_cast<std::size_t>(n));
    need_comma_ = true;
    return *this;
  }
  JsonWriter& value(bool v) {
    separate();
    buffer_ += v ? "true" : "false";
    need_comma_ = true;
    return *this;
  }
  JsonWriter& value(std::string_view v) {
    separate();
    append_string(v);
    need_comma_ = true;
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }

  JsonWriter& field(std::string_view k, std::uint64_t v) {
    return key(k).value(v);
  }
  JsonWriter& field(std::string_view k, std::int64_t v) {
    return key(k).value(v);
  }
  JsonWriter& field(std::string_view k, double v) { return key(k).value(v); }
  JsonWriter& field(std::string_view k, bool v) { return key(k).value(v); }
  JsonWriter& field(std::string_view k, std::string_view v) {
    return key(k).value(v);
  }
  JsonWriter& field(std::string_view k, const char* v) {
    return key(k).value(std::string_view(v));
  }

 private:
  void separate() {
    if (need_comma_) buffer_ += ',';
  }

  void append_string(std::string_view s) {
    buffer_ += '"';
    for (char c : s) {
      switch (c) {
        case '"': buffer_ += "\\\""; break;
        case '\\': buffer_ += "\\\\"; break;
        case '\n': buffer_ += "\\n"; break;
        case '\r': buffer_ += "\\r"; break;
        case '\t': buffer_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char tmp[8];
            std::snprintf(tmp, sizeof tmp, "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            buffer_ += tmp;
          } else {
            buffer_ += c;
          }
      }
    }
    buffer_ += '"';
  }

  std::string buffer_;
  bool need_comma_ = false;
};

}  // namespace parulel::obs
