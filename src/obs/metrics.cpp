#include "obs/metrics.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace parulel::obs {

Counter& MetricsRegistry::counter(std::string_view name) {
  std::scoped_lock lock(mutex_);
  for (auto& [n, c] : entries_) {
    if (n == name) return c;
  }
  entries_.emplace_back(std::piecewise_construct,
                        std::forward_as_tuple(name), std::forward_as_tuple());
  return entries_.back().second;
}

std::size_t MetricsRegistry::size() const {
  std::scoped_lock lock(mutex_);
  return entries_.size();
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::snapshot()
    const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  {
    std::scoped_lock lock(mutex_);
    out.reserve(entries_.size());
    for (const auto& [n, c] : entries_) out.emplace_back(n, c.get());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string MetricsRegistry::to_text() const {
  std::string out;
  for (const auto& [name, value] : snapshot()) {
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  JsonWriter w;
  w.begin_object();
  for (const auto& [name, value] : snapshot()) w.field(name, value);
  w.end_object();
  return w.str();
}

}  // namespace parulel::obs
