// Adapters from subsystem counter blocks (matcher, thread pool) to the
// obs layer: registry publication and per-cycle trace-activity deltas.
// Header-only; included by the engines, never by the subsystems it
// reads, so obs stays a leaf dependency.
#pragma once

#include <string>
#include <string_view>

#include "match/matcher.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace parulel::obs {

inline void publish_match_stats(MetricsRegistry& registry,
                                const MatchStats& m,
                                std::string_view prefix = "match.") {
  const std::string p(prefix);
  registry.set(p + "deltas_processed", m.deltas_processed);
  registry.set(p + "insts_derived", m.insts_derived);
  registry.set(p + "insts_invalidated", m.insts_invalidated);
  registry.set(p + "alpha_activations", m.alpha_activations);
  registry.set(p + "full_rematches", m.full_rematches);
  registry.set(p + "tokens_created", m.tokens_created);
  registry.set(p + "tokens_deleted", m.tokens_deleted);
  registry.set(p + "state_entries", m.state_entries);
  registry.set(p + "external_deltas", m.external_deltas);
}

inline void publish_pool_stats(MetricsRegistry& registry,
                               const PoolStatsSnapshot& p,
                               std::string_view prefix = "pool.") {
  const std::string pre(prefix);
  registry.set(pre + "batches", p.batches);
  registry.set(pre + "jobs", p.jobs);
  registry.set(pre + "busy_ns", p.busy_ns);
  registry.set(pre + "workers",
               static_cast<std::uint64_t>(p.per_worker_jobs.size()));
}

/// Difference two cumulative MatchStats snapshots into the per-cycle
/// activity fields of a trace event.
inline void fill_match_activity(CycleActivity& activity,
                                const MatchStats& now,
                                const MatchStats& before) {
  activity.insts_derived = now.insts_derived - before.insts_derived;
  activity.insts_invalidated =
      now.insts_invalidated - before.insts_invalidated;
  activity.alpha_activations =
      now.alpha_activations - before.alpha_activations;
}

/// Same, for cumulative thread-pool snapshots.
inline void fill_pool_activity(CycleActivity& activity,
                               const PoolStatsSnapshot& now,
                               const PoolStatsSnapshot& before) {
  activity.pool_jobs = now.jobs - before.jobs;
  activity.pool_busy_ns = now.busy_ns - before.busy_ns;
}

}  // namespace parulel::obs
