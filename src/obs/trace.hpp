// Structured trace sink: one JSON object per line (JSONL).
//
// The engines emit one "cycle" event per recognize-act cycle carrying
// the full CycleStats schema (phase timings, conflict-set dynamics,
// write conflicts, meta-rule work) plus per-cycle matcher and thread-
// pool activity deltas, and one final "run" event with the totals.
// Consumers stream the file line by line; every line is a complete JSON
// object with a "type" discriminator.
//
// Cost discipline: the sink is driven only from the engine's driving
// thread, reuses one JsonWriter buffer (steady-state emission performs
// no allocation), and the whole call site is guarded by a null check —
// tracing disabled costs one predictable branch per cycle, or nothing
// at all when compiled with -DPARULEL_OBS_ENABLED=0 (see
// PARULEL_OBS_ONLY in obs/metrics.hpp).
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/stats.hpp"

namespace parulel::obs {

/// Per-cycle activity outside CycleStats: matcher and pool deltas, run
/// identity. Engines fill this from cumulative counters by differencing
/// against the previous cycle's snapshot.
struct CycleActivity {
  std::string_view engine;               ///< engine->name()
  std::uint64_t insts_derived = 0;       ///< matcher: new instantiations
  std::uint64_t insts_invalidated = 0;   ///< matcher: retracted insts
  std::uint64_t alpha_activations = 0;   ///< matcher: fact x alpha events
  std::uint64_t pool_jobs = 0;           ///< thread pool: jobs executed
  std::uint64_t pool_busy_ns = 0;        ///< thread pool: summed busy time
  unsigned threads = 1;
};

class TraceSink {
 public:
  /// `os` must outlive the sink; the engines only write from their
  /// driving thread, so no locking is done here.
  explicit TraceSink(std::ostream& os) : os_(os) {}
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Emit one "cycle" event line.
  void cycle(const CycleStats& c, const CycleActivity& activity);

  /// Emit the final "run" event line. `faults`, when non-null (the
  /// distributed engine under a FaultPlan), appends every
  /// fault_fields() entry to the same event.
  void run(const RunStats& stats, std::string_view engine,
           const FaultStats* faults = nullptr);

  /// Emit one "service" event carrying the full service_fields()
  /// schema — the rule service emits these at shutdown and on demand
  /// (see RuleService::stats_snapshot).
  void service(const ServiceStats& stats);

  std::uint64_t events() const { return events_; }

 private:
  std::ostream& os_;
  JsonWriter writer_;
  std::uint64_t events_ = 0;
};

}  // namespace parulel::obs
