#include "obs/stats.hpp"

#include <algorithm>
#include <sstream>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace parulel {

const char* termination_name(TerminationReason r) {
  switch (r) {
    case TerminationReason::Quiescent: return "quiescent";
    case TerminationReason::Halted: return "halted";
    case TerminationReason::CycleLimit: return "cycle_limit";
    case TerminationReason::Unknown: break;
  }
  return "unknown";
}

void RunStats::absorb(const CycleStats& c) {
  cycles += 1;
  total_firings += c.fired;
  total_redactions += c.redacted;
  total_asserts += c.asserts;
  total_retracts += c.retracts;
  total_write_conflicts += c.write_conflicts;
  total_meta_firings += c.meta_firings;
  total_meta_rounds += c.meta_rounds;
  peak_conflict_set = std::max(peak_conflict_set, c.conflict_set_size);
  match_ns += c.match_ns;
  redact_ns += c.redact_ns;
  fire_ns += c.fire_ns;
  merge_ns += c.merge_ns;
}

std::string RunStats::summary() const {
  // Older call sites set only the bools; derive the reason from them
  // when the enum was never filled in.
  TerminationReason reason = termination;
  if (reason == TerminationReason::Unknown) {
    if (halted) reason = TerminationReason::Halted;
    else if (quiescent) reason = TerminationReason::Quiescent;
  }
  std::ostringstream os;
  os << "cycles=" << cycles << " firings=" << total_firings
     << " redactions=" << total_redactions << " asserts=" << total_asserts
     << " retracts=" << total_retracts
     << " peak_cs=" << peak_conflict_set
     << " wall_ms=" << static_cast<double>(wall_ns) / 1e6
     << " [" << termination_name(reason) << "]";
  return os.str();
}

std::string RunStats::to_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.field("type", "run");
  for (const auto& f : obs::run_fields()) w.field(f.name, this->*f.member);
  w.field("halted", halted);
  w.field("quiescent", quiescent);
  w.field("termination", termination_name(termination));
  w.end_object();
  return w.str();
}

void RunStats::publish(obs::MetricsRegistry& registry,
                       std::string_view prefix) const {
  std::string name;
  for (const auto& f : obs::run_fields()) {
    name.assign(prefix);
    name += f.name;
    registry.set(name, this->*f.member);
  }
  name.assign(prefix);
  name += "halted";
  registry.set(name, halted ? 1 : 0);
  name.assign(prefix);
  name += "quiescent";
  registry.set(name, quiescent ? 1 : 0);
  name.assign(prefix);
  name += "termination_code";
  registry.set(name, static_cast<std::uint64_t>(termination));
}

void FaultStats::publish(obs::MetricsRegistry& registry,
                         std::string_view prefix) const {
  std::string name;
  for (const auto& f : obs::fault_fields()) {
    name.assign(prefix);
    name += f.name;
    registry.set(name, this->*f.member);
  }
}

void ServiceStats::publish(obs::MetricsRegistry& registry,
                           std::string_view prefix) const {
  std::string name;
  for (const auto& f : obs::service_fields()) {
    name.assign(prefix);
    name += f.name;
    registry.set(name, this->*f.member);
  }
}

void NetStats::publish(obs::MetricsRegistry& registry,
                       std::string_view prefix) const {
  std::string name;
  for (const auto& f : obs::net_fields()) {
    name.assign(prefix);
    name += f.name;
    registry.set(name, this->*f.member);
  }
}

void JournalStats::publish(obs::MetricsRegistry& registry,
                           std::string_view prefix) const {
  std::string name;
  for (const auto& f : obs::journal_fields()) {
    name.assign(prefix);
    name += f.name;
    registry.set(name, this->*f.member);
  }
}

void RetryStats::publish(obs::MetricsRegistry& registry,
                         std::string_view prefix) const {
  std::string name;
  for (const auto& f : obs::retry_fields()) {
    name.assign(prefix);
    name += f.name;
    registry.set(name, this->*f.member);
  }
}

void ReplStats::publish(obs::MetricsRegistry& registry,
                        std::string_view prefix) const {
  std::string name;
  for (const auto& f : obs::repl_fields()) {
    name.assign(prefix);
    name += f.name;
    registry.set(name, this->*f.member);
  }
}

void ClusterStats::publish(obs::MetricsRegistry& registry,
                           std::string_view prefix) const {
  std::string name;
  for (const auto& f : obs::cluster_fields()) {
    name.assign(prefix);
    name += f.name;
    registry.set(name, this->*f.member);
  }
}

void CompileStats::publish(obs::MetricsRegistry& registry,
                           std::string_view prefix) const {
  std::string name;
  for (const auto& f : obs::compile_fields()) {
    name.assign(prefix);
    name += f.name;
    registry.set(name, this->*f.member);
  }
}

namespace obs {

namespace {

constexpr FieldDef<CycleStats> kCycleFields[] = {
    {"cycle", &CycleStats::cycle},
    {"conflict_set", &CycleStats::conflict_set_size},
    {"redacted", &CycleStats::redacted},
    {"fired", &CycleStats::fired},
    {"asserts", &CycleStats::asserts},
    {"retracts", &CycleStats::retracts},
    {"duplicate_asserts", &CycleStats::duplicate_asserts},
    {"write_conflicts", &CycleStats::write_conflicts},
    {"meta_rounds", &CycleStats::meta_rounds},
    {"meta_firings", &CycleStats::meta_firings},
    {"match_ns", &CycleStats::match_ns},
    {"redact_ns", &CycleStats::redact_ns},
    {"fire_ns", &CycleStats::fire_ns},
    {"merge_ns", &CycleStats::merge_ns},
};

constexpr FieldDef<RunStats> kRunFields[] = {
    {"cycles", &RunStats::cycles},
    {"firings", &RunStats::total_firings},
    {"redactions", &RunStats::total_redactions},
    {"asserts", &RunStats::total_asserts},
    {"retracts", &RunStats::total_retracts},
    {"write_conflicts", &RunStats::total_write_conflicts},
    {"meta_firings", &RunStats::total_meta_firings},
    {"meta_rounds", &RunStats::total_meta_rounds},
    {"peak_conflict_set", &RunStats::peak_conflict_set},
    {"wall_ns", &RunStats::wall_ns},
    {"match_ns", &RunStats::match_ns},
    {"redact_ns", &RunStats::redact_ns},
    {"fire_ns", &RunStats::fire_ns},
    {"merge_ns", &RunStats::merge_ns},
};

constexpr FieldDef<FaultStats> kFaultFields[] = {
    {"sent", &FaultStats::sent},
    {"delivered", &FaultStats::delivered},
    {"applied", &FaultStats::applied},
    {"dropped", &FaultStats::dropped},
    {"delayed", &FaultStats::delayed},
    {"retries", &FaultStats::retries},
    {"dup_suppressed", &FaultStats::dup_suppressed},
    {"wiped", &FaultStats::wiped},
    {"crashes", &FaultStats::crashes},
    {"restores", &FaultStats::restores},
    {"checkpoints", &FaultStats::checkpoints},
};

constexpr FieldDef<ServiceStats> kServiceFields[] = {
    {"requests", &ServiceStats::requests},
    {"asserts", &ServiceStats::asserts},
    {"retracts", &ServiceStats::retracts},
    {"runs", &ServiceStats::runs},
    {"queries", &ServiceStats::queries},
    {"batches", &ServiceStats::batches},
    {"batched_ops", &ServiceStats::batched_ops},
    {"rejected", &ServiceStats::rejected},
    {"quota_rejected", &ServiceStats::quota_rejected},
    {"evicted", &ServiceStats::evicted},
    {"sessions_opened", &ServiceStats::sessions_opened},
    {"sessions_closed", &ServiceStats::sessions_closed},
    {"queue_depth", &ServiceStats::queue_depth},
    {"peak_queue_depth", &ServiceStats::peak_queue_depth},
    {"latency_p50_ns", &ServiceStats::latency_p50_ns},
    {"latency_p99_ns", &ServiceStats::latency_p99_ns},
    {"latency_max_ns", &ServiceStats::latency_max_ns},
};

constexpr FieldDef<NetStats> kNetFields[] = {
    {"accepted", &NetStats::accepted},
    {"rejected_full", &NetStats::rejected_full},
    {"closed", &NetStats::closed},
    {"active", &NetStats::active},
    {"lines_in", &NetStats::lines_in},
    {"responses_out", &NetStats::responses_out},
    {"bytes_in", &NetStats::bytes_in},
    {"bytes_out", &NetStats::bytes_out},
    {"protocol_errors", &NetStats::protocol_errors},
    {"oversize_lines", &NetStats::oversize_lines},
    {"backpressure_rejects", &NetStats::backpressure_rejects},
    {"overflow_closed", &NetStats::overflow_closed},
    {"idle_closed", &NetStats::idle_closed},
    {"drained", &NetStats::drained},
    {"fault_dropped", &NetStats::fault_dropped},
    {"fault_delayed", &NetStats::fault_delayed},
    {"shards", &NetStats::shards},
    {"forwarded", &NetStats::forwarded},
    {"busy_ns", &NetStats::busy_ns},
};

constexpr FieldDef<JournalStats> kJournalFields[] = {
    {"records_written", &JournalStats::records_written},
    {"bytes_written", &JournalStats::bytes_written},
    {"fsyncs", &JournalStats::fsyncs},
    {"batches_logged", &JournalStats::batches_logged},
    {"ops_logged", &JournalStats::ops_logged},
    {"snapshots", &JournalStats::snapshots},
    {"recovered_sessions", &JournalStats::recovered_sessions},
    {"recovered_batches", &JournalStats::recovered_batches},
    {"recovered_ops", &JournalStats::recovered_ops},
    {"torn_tails", &JournalStats::torn_tails},
    {"recovery_failures", &JournalStats::recovery_failures},
    {"recovery_wall_ns", &JournalStats::recovery_wall_ns},
};

constexpr FieldDef<RetryStats> kRetryFields[] = {
    {"requests", &RetryStats::requests},
    {"retries", &RetryStats::retries},
    {"reconnects", &RetryStats::reconnects},
    {"failovers", &RetryStats::failovers},
    {"replayed", &RetryStats::replayed},
    {"resumed", &RetryStats::resumed},
    {"reopened", &RetryStats::reopened},
    {"timeouts", &RetryStats::timeouts},
    {"giveups", &RetryStats::giveups},
    {"backoff_ms", &RetryStats::backoff_ms},
};

constexpr FieldDef<ReplStats> kReplFields[] = {
    {"batches_shipped", &ReplStats::batches_shipped},
    {"bytes_shipped", &ReplStats::bytes_shipped},
    {"snapshots_shipped", &ReplStats::snapshots_shipped},
    {"acks_received", &ReplStats::acks_received},
    {"sync_commits", &ReplStats::sync_commits},
    {"async_commits", &ReplStats::async_commits},
    {"repl_degraded", &ReplStats::repl_degraded},
    {"replica_connects", &ReplStats::replica_connects},
    {"applied_batches", &ReplStats::applied_batches},
    {"applied_snapshots", &ReplStats::applied_snapshots},
    {"apply_errors", &ReplStats::apply_errors},
};

constexpr FieldDef<ClusterStats> kClusterFields[] = {
    {"barriers", &ClusterStats::barriers},
    {"spawns", &ClusterStats::spawns},
    {"kills", &ClusterStats::kills},
    {"deaths", &ClusterStats::deaths},
    {"restores", &ClusterStats::restores},
    {"sent", &ClusterStats::sent},
    {"applied", &ClusterStats::applied},
    {"dup_suppressed", &ClusterStats::dup_suppressed},
    {"retries", &ClusterStats::retries},
    {"dropped", &ClusterStats::dropped},
    {"delayed", &ClusterStats::delayed},
    {"redials", &ClusterStats::redials},
    {"batches", &ClusterStats::batches},
    {"snapshots", &ClusterStats::snapshots},
    {"firings", &ClusterStats::firings},
};

constexpr FieldDef<CompileStats> kCompileFields[] = {
    {"codegen_ns", &CompileStats::codegen_ns},
    {"code_bytes", &CompileStats::code_bytes},
    {"instructions", &CompileStats::instructions},
    {"const_pool", &CompileStats::const_pool},
    {"expr_pool", &CompileStats::expr_pool},
    {"programs", &CompileStats::programs},
    {"net_nodes", &CompileStats::net_nodes},
    {"net_shared", &CompileStats::net_shared},
    {"dispatches", &CompileStats::dispatches},
    {"net_runs", &CompileStats::net_runs},
    {"derive_runs", &CompileStats::derive_runs},
    {"rematch_runs", &CompileStats::rematch_runs},
    {"quant_checks", &CompileStats::quant_checks},
    {"emits", &CompileStats::emits},
};

}  // namespace

std::span<const FieldDef<CycleStats>> cycle_fields() { return kCycleFields; }

std::span<const FieldDef<RunStats>> run_fields() { return kRunFields; }

std::span<const FieldDef<FaultStats>> fault_fields() { return kFaultFields; }

std::span<const FieldDef<ServiceStats>> service_fields() {
  return kServiceFields;
}

std::span<const FieldDef<NetStats>> net_fields() { return kNetFields; }

std::span<const FieldDef<JournalStats>> journal_fields() {
  return kJournalFields;
}

std::span<const FieldDef<RetryStats>> retry_fields() { return kRetryFields; }

std::span<const FieldDef<ReplStats>> repl_fields() { return kReplFields; }

std::span<const FieldDef<ClusterStats>> cluster_fields() {
  return kClusterFields;
}

std::span<const FieldDef<CompileStats>> compile_fields() {
  return kCompileFields;
}

}  // namespace obs

}  // namespace parulel
