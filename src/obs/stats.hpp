// Per-cycle and per-run execution statistics.
//
// Every engine (sequential baseline, PARULEL parallel, distributed) fills
// the same structures so the bench harness can print uniform tables.
//
// This is the observability layer's single source of truth for the stat
// schema: `cycle_fields()` / `run_fields()` enumerate every numeric field
// by name, and the trace sink (obs/trace.hpp), the metrics registry
// export (RunStats::publish), the JSON serializers, and the bench
// reports (bench/bench_util.hpp) all iterate those tables instead of
// hand-listing fields. Adding a counter here makes it appear in every
// export format at once.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace parulel {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// One recognize-act cycle's accounting.
struct CycleStats {
  std::uint64_t cycle = 0;

  // Conflict-set dynamics.
  std::uint64_t conflict_set_size = 0;  ///< insts eligible after refraction
  std::uint64_t redacted = 0;           ///< removed by meta-rules
  std::uint64_t fired = 0;              ///< instantiations actually fired

  // Working-memory dynamics.
  std::uint64_t asserts = 0;
  std::uint64_t retracts = 0;
  std::uint64_t duplicate_asserts = 0;  ///< asserts absorbed by set semantics
  std::uint64_t write_conflicts = 0;    ///< clashing parallel writes detected

  // Meta-level work (parallel engine; zero for the sequential baseline).
  std::uint64_t meta_rounds = 0;        ///< redaction fixpoint rounds
  std::uint64_t meta_firings = 0;       ///< meta instantiations fired

  // Phase times, nanoseconds.
  std::uint64_t match_ns = 0;
  std::uint64_t redact_ns = 0;
  std::uint64_t fire_ns = 0;
  std::uint64_t merge_ns = 0;

  std::uint64_t total_ns() const {
    return match_ns + redact_ns + fire_ns + merge_ns;
  }
};

/// Whole-run accounting, the sum of all cycles plus run-level outcomes.
struct RunStats {
  std::uint64_t cycles = 0;
  std::uint64_t total_firings = 0;
  std::uint64_t total_redactions = 0;
  std::uint64_t total_asserts = 0;
  std::uint64_t total_retracts = 0;
  std::uint64_t total_write_conflicts = 0;
  std::uint64_t total_meta_firings = 0;
  std::uint64_t total_meta_rounds = 0;
  std::uint64_t peak_conflict_set = 0;
  bool halted = false;      ///< a rule executed (halt)
  bool quiescent = false;   ///< conflict set drained
  std::uint64_t wall_ns = 0;

  std::uint64_t match_ns = 0;
  std::uint64_t redact_ns = 0;
  std::uint64_t fire_ns = 0;
  std::uint64_t merge_ns = 0;

  std::vector<CycleStats> per_cycle;  ///< populated when tracing is enabled

  void absorb(const CycleStats& c);

  /// Human-readable multi-line summary.
  std::string summary() const;

  /// One JSON object with every run_fields() entry plus halted/quiescent.
  std::string to_json() const;

  /// Push every run_fields() entry into `registry` as "<prefix><name>".
  void publish(obs::MetricsRegistry& registry,
               std::string_view prefix = "run.") const;
};

namespace obs {

/// Schema entry: a stat field's export name and member pointer.
template <typename Struct>
struct FieldDef {
  const char* name;
  std::uint64_t Struct::*member;
};

/// Every numeric CycleStats field, in export order.
std::span<const FieldDef<CycleStats>> cycle_fields();

/// Every numeric RunStats field, in export order.
std::span<const FieldDef<RunStats>> run_fields();

}  // namespace obs

}  // namespace parulel
