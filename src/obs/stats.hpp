// Per-cycle and per-run execution statistics.
//
// Every engine (sequential baseline, PARULEL parallel, distributed) fills
// the same structures so the bench harness can print uniform tables.
//
// This is the observability layer's single source of truth for the stat
// schema: `cycle_fields()` / `run_fields()` enumerate every numeric field
// by name, and the trace sink (obs/trace.hpp), the metrics registry
// export (RunStats::publish), the JSON serializers, and the bench
// reports (bench/bench_util.hpp) all iterate those tables instead of
// hand-listing fields. Adding a counter here makes it appear in every
// export format at once.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace parulel {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// Why a run stopped. `quiescent`/`halted` bools predate this enum and
/// are kept in sync for older call sites; the enum adds the third state
/// — the silent `max_cycles` truncation — so callers (and the CLI exit
/// code) can tell an exhausted run from a finished one.
enum class TerminationReason : std::uint8_t {
  Unknown = 0,     ///< run() has not completed
  Quiescent = 1,   ///< conflict set drained / all sites idle
  Halted = 2,      ///< a rule executed (halt)
  CycleLimit = 3,  ///< stopped by EngineConfig/DistConfig::max_cycles
};

/// Stable export name for a TerminationReason.
const char* termination_name(TerminationReason r);

/// One recognize-act cycle's accounting.
struct CycleStats {
  std::uint64_t cycle = 0;

  // Conflict-set dynamics.
  std::uint64_t conflict_set_size = 0;  ///< insts eligible after refraction
  std::uint64_t redacted = 0;           ///< removed by meta-rules
  std::uint64_t fired = 0;              ///< instantiations actually fired

  // Working-memory dynamics.
  std::uint64_t asserts = 0;
  std::uint64_t retracts = 0;
  std::uint64_t duplicate_asserts = 0;  ///< asserts absorbed by set semantics
  std::uint64_t write_conflicts = 0;    ///< clashing parallel writes detected

  // Meta-level work (parallel engine; zero for the sequential baseline).
  std::uint64_t meta_rounds = 0;        ///< redaction fixpoint rounds
  std::uint64_t meta_firings = 0;       ///< meta instantiations fired

  // Phase times, nanoseconds.
  std::uint64_t match_ns = 0;
  std::uint64_t redact_ns = 0;
  std::uint64_t fire_ns = 0;
  std::uint64_t merge_ns = 0;

  std::uint64_t total_ns() const {
    return match_ns + redact_ns + fire_ns + merge_ns;
  }
};

/// Whole-run accounting, the sum of all cycles plus run-level outcomes.
struct RunStats {
  std::uint64_t cycles = 0;
  std::uint64_t total_firings = 0;
  std::uint64_t total_redactions = 0;
  std::uint64_t total_asserts = 0;
  std::uint64_t total_retracts = 0;
  std::uint64_t total_write_conflicts = 0;
  std::uint64_t total_meta_firings = 0;
  std::uint64_t total_meta_rounds = 0;
  std::uint64_t peak_conflict_set = 0;
  bool halted = false;      ///< a rule executed (halt)
  bool quiescent = false;   ///< conflict set drained
  TerminationReason termination = TerminationReason::Unknown;
  std::uint64_t wall_ns = 0;

  std::uint64_t match_ns = 0;
  std::uint64_t redact_ns = 0;
  std::uint64_t fire_ns = 0;
  std::uint64_t merge_ns = 0;

  std::vector<CycleStats> per_cycle;  ///< populated when tracing is enabled

  void absorb(const CycleStats& c);

  /// Human-readable multi-line summary.
  std::string summary() const;

  /// One JSON object with every run_fields() entry plus halted/quiescent.
  std::string to_json() const;

  /// Push every run_fields() entry into `registry` as "<prefix><name>".
  void publish(obs::MetricsRegistry& registry,
               std::string_view prefix = "run.") const;
};

/// Fault-injection and recovery accounting for the distributed engine's
/// reliable routing layer (src/distrib/faults.hpp). Lives in the obs
/// layer so the field table below feeds every exporter. Counter
/// invariants, verified by tests/test_faults.cpp at quiescence:
///   sent      == delivered + dropped          (every attempt resolves)
///   delivered == applied + dup_suppressed + wiped
/// so no message is lost silently and no op is applied twice.
struct FaultStats {
  std::uint64_t sent = 0;       ///< transmission attempts (incl. retries/dups)
  std::uint64_t delivered = 0;  ///< attempts that reached an inbox
  std::uint64_t applied = 0;    ///< messages applied to a working memory
  std::uint64_t dropped = 0;    ///< attempts lost (injected loss or dest down)
  std::uint64_t delayed = 0;    ///< attempts held in flight for extra cycles
  std::uint64_t retries = 0;    ///< retransmissions after ack timeout
  std::uint64_t dup_suppressed = 0;  ///< duplicate deliveries discarded
  std::uint64_t wiped = 0;      ///< inbox messages destroyed by a site crash
  std::uint64_t crashes = 0;    ///< injected site failures
  std::uint64_t restores = 0;   ///< checkpoint recoveries completed
  std::uint64_t checkpoints = 0;  ///< snapshots taken (incl. initial)

  /// Push every fault_fields() entry into `registry` as "<prefix><name>".
  void publish(obs::MetricsRegistry& registry,
               std::string_view prefix = "faults.") const;
};

/// Rule-service accounting (src/service/): request ingestion, batch
/// commits, backpressure, and per-request latency. Filled by
/// RuleService::stats_snapshot(); the latency percentiles are computed
/// there from a bounded reservoir of per-request commit latencies
/// (enqueue -> commit completion). The service_fields() table below
/// feeds the trace sink's "service" event, metrics publication, and the
/// bench JSON rows, so every exporter carries the same schema.
struct ServiceStats {
  std::uint64_t requests = 0;        ///< ops accepted into a queue
  std::uint64_t asserts = 0;         ///< accepted assert requests
  std::uint64_t retracts = 0;        ///< accepted retract requests
  std::uint64_t runs = 0;            ///< accepted run requests
  std::uint64_t queries = 0;         ///< synchronous queries served
  std::uint64_t batches = 0;         ///< recognize-act commits executed
  std::uint64_t batched_ops = 0;     ///< ops folded into those commits
  std::uint64_t rejected = 0;        ///< backpressure rejections (queue full)
  std::uint64_t quota_rejected = 0;  ///< fact-quota rejections
  std::uint64_t evicted = 0;         ///< idle sessions closed by eviction
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_closed = 0;  ///< explicit closes + evictions
  std::uint64_t queue_depth = 0;      ///< pending ops across sessions (gauge)
  std::uint64_t peak_queue_depth = 0;  ///< worst single-session depth seen
  std::uint64_t latency_p50_ns = 0;   ///< median request commit latency
  std::uint64_t latency_p99_ns = 0;
  std::uint64_t latency_max_ns = 0;

  /// Push every service_fields() entry into `registry` as "<prefix><name>".
  void publish(obs::MetricsRegistry& registry,
               std::string_view prefix = "service.") const;
};

/// TCP front-end accounting (src/net/net_server.hpp): connection
/// lifecycle, wire volume, and the protections that keep one client
/// from hurting the rest (backpressure rejects, oversize-line drops,
/// write-buffer overflow closes, idle timeouts). Filled by
/// NetServer::stats_snapshot() as the sum across event-loop shards
/// (NetServer::shard_stats() exposes the unsummed per-shard rows); the
/// net_fields() table feeds metrics publication and the bench JSON rows
/// like every other stat family.
struct NetStats {
  std::uint64_t accepted = 0;       ///< connections accepted
  std::uint64_t rejected_full = 0;  ///< refused at max_connections
  std::uint64_t closed = 0;         ///< connections fully closed
  std::uint64_t active = 0;         ///< open connections (gauge)
  std::uint64_t lines_in = 0;       ///< request lines parsed
  std::uint64_t responses_out = 0;  ///< response payloads emitted
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t protocol_errors = 0;     ///< `err` responses emitted
  std::uint64_t oversize_lines = 0;      ///< lines over max_line_bytes
  std::uint64_t backpressure_rejects = 0;  ///< lines refused: write buffer full
  std::uint64_t overflow_closed = 0;     ///< closed: write buffer past hard cap
  std::uint64_t idle_closed = 0;         ///< closed by idle timeout
  std::uint64_t drained = 0;             ///< closed by graceful shutdown drain
  std::uint64_t fault_dropped = 0;       ///< conns killed by --net-fault-plan
  std::uint64_t fault_delayed = 0;       ///< responses held by --net-fault-plan
  std::uint64_t shards = 0;              ///< event-loop shards serving (gauge)
  std::uint64_t forwarded = 0;           ///< lines forwarded to a session's
                                         ///< home shard (journaled, shards>1)
  std::uint64_t busy_ns = 0;             ///< shard-thread time spent executing
                                         ///< requests (drives the R-S4 model)

  /// Push every net_fields() entry into `registry` as "<prefix><name>".
  void publish(obs::MetricsRegistry& registry,
               std::string_view prefix = "net.") const;
};

/// Write-ahead-journal accounting (src/service/journal.hpp): the write
/// path (records framed, bytes, fsyncs, snapshots taken) and the
/// startup-recovery path (sessions rebuilt, batches/ops replayed, torn
/// tails tolerated, journals quarantined). Filled by
/// RuleService::journal_stats_snapshot(); the journal_fields() table
/// feeds metrics publication, the CLI's exit summary, and the bench
/// JSON rows like every other stat family.
struct JournalStats {
  std::uint64_t records_written = 0;  ///< CRC-framed records appended
  std::uint64_t bytes_written = 0;    ///< record bytes incl. framing
  std::uint64_t fsyncs = 0;           ///< fsync(2) calls issued
  std::uint64_t batches_logged = 0;   ///< batch records appended
  std::uint64_t ops_logged = 0;       ///< assert/retract ops inside them
  std::uint64_t snapshots = 0;        ///< snapshot rewrites (truncations)
  std::uint64_t recovered_sessions = 0;  ///< sessions rebuilt at startup
  std::uint64_t recovered_batches = 0;   ///< batch records replayed
  std::uint64_t recovered_ops = 0;       ///< ops re-applied in replay
  std::uint64_t torn_tails = 0;       ///< journals with a dropped torn tail
  std::uint64_t recovery_failures = 0;  ///< journals quarantined (fail closed)
  std::uint64_t recovery_wall_ns = 0;   ///< total startup-recovery time

  /// Push every journal_fields() entry into `registry` as "<prefix><name>".
  void publish(obs::MetricsRegistry& registry,
               std::string_view prefix = "journal.") const;
};

/// Client-side retry accounting (src/net/retry_client.hpp): how many
/// requests needed retransmission, reconnects with bounded exponential
/// backoff, sessions resumed vs reopened after reconnect, and replayed
/// request lines deduplicated server-side by parulel/2 request ids.
struct RetryStats {
  std::uint64_t requests = 0;    ///< exec() calls
  std::uint64_t retries = 0;     ///< requests that needed >= 1 retransmit
  std::uint64_t reconnects = 0;  ///< dial attempts after a lost connection
  /// Endpoint-list advances: a failed dial, or a fenced standby's
  /// `err not-primary` refusal.
  std::uint64_t failovers = 0;
  std::uint64_t replayed = 0;    ///< buffered lines resent after resume
  std::uint64_t resumed = 0;     ///< sessions reattached via `resume`
  std::uint64_t reopened = 0;    ///< sessions rebuilt via their open line
  std::uint64_t timeouts = 0;    ///< I/O timeouts observed
  std::uint64_t giveups = 0;     ///< requests abandoned after max attempts
  std::uint64_t backoff_ms = 0;  ///< total time slept backing off

  /// Push every retry_fields() entry into `registry` as "<prefix><name>".
  void publish(obs::MetricsRegistry& registry,
               std::string_view prefix = "retry.") const;
};

/// Journal-replication accounting (src/net/net_server.hpp): the
/// primary's shipping side (batches/snapshots sent, acks, the semi-sync
/// vs degraded split) and the replica's apply side (records applied to
/// its own journal files). Filled by NetServer::repl_stats_snapshot();
/// the repl_fields() table feeds metrics publication, the CLI's exit
/// summary, and the bench JSON rows like every other stat family.
struct ReplStats {
  std::uint64_t batches_shipped = 0;    ///< repl-batch frames sent
  std::uint64_t bytes_shipped = 0;      ///< payload bytes in those frames
  std::uint64_t snapshots_shipped = 0;  ///< repl-snapshot full-file syncs sent
  std::uint64_t acks_received = 0;      ///< repl-ack frames received
  std::uint64_t sync_commits = 0;       ///< commits that waited for a replica ack
  std::uint64_t async_commits = 0;      ///< commits shipped without waiting
  std::uint64_t repl_degraded = 0;      ///< semi-sync waits that timed out
  std::uint64_t replica_connects = 0;   ///< replication channels accepted/made
  std::uint64_t applied_batches = 0;    ///< replica: batch records applied
  std::uint64_t applied_snapshots = 0;  ///< replica: full-file syncs applied
  std::uint64_t apply_errors = 0;       ///< replica: frames that failed to apply

  /// Push every repl_fields() entry into `registry` as "<prefix><name>".
  void publish(obs::MetricsRegistry& registry,
               std::string_view prefix = "repl.") const;
};

/// Multi-process cluster accounting (src/distrib/cluster_driver.hpp):
/// the driver's view of a real-socket run — barriers driven, site
/// processes spawned/killed/respawned, plus the sums of the per-site
/// counters each `barrier-done` line reports (sends, applies,
/// dedup-suppressed duplicates, retransmissions, injector drops/delays,
/// peer redials, WAL batches and snapshot rewrites). The
/// cluster_fields() table feeds metrics publication, the CLI's exit
/// summary, and the bench JSON rows like every other stat family.
struct ClusterStats {
  std::uint64_t barriers = 0;    ///< barrier rounds completed
  std::uint64_t spawns = 0;      ///< site processes started (incl. respawns)
  std::uint64_t kills = 0;       ///< SIGKILLs delivered by the fault plan
  std::uint64_t deaths = 0;      ///< unexpected site exits detected
  std::uint64_t restores = 0;    ///< sites recovered and rejoined
  std::uint64_t sent = 0;        ///< cc-batch transmissions (incl. dups)
  std::uint64_t applied = 0;     ///< peer ops applied (post-dedup)
  std::uint64_t dup_suppressed = 0;  ///< duplicate deliveries discarded
  std::uint64_t retries = 0;     ///< retransmissions after ack timeout
  std::uint64_t dropped = 0;     ///< attempts lost (injector or dead conn)
  std::uint64_t delayed = 0;     ///< attempts held back by the injector
  std::uint64_t redials = 0;     ///< peer reconnect attempts
  std::uint64_t batches = 0;     ///< site WAL batch records written
  std::uint64_t snapshots = 0;   ///< site WAL snapshot rewrites
  std::uint64_t firings = 0;     ///< rule firings across all sites

  /// Push every cluster_fields() entry into `registry` as
  /// "<prefix><name>".
  void publish(obs::MetricsRegistry& registry,
               std::string_view prefix = "cluster.") const;
};

/// Rule-compiler accounting (src/compile/): one-shot codegen figures
/// filled when the bytecode image is built, plus cumulative VM dispatch
/// counters. Engines publish it whenever their matcher exposes one
/// (Matcher::compile_stats()); the compile_fields() table feeds metrics
/// publication and the bench JSON rows like every other stat family.
struct CompileStats {
  // Codegen (set once, at matcher construction).
  std::uint64_t codegen_ns = 0;     ///< wall time of the lowering pass
  std::uint64_t code_bytes = 0;     ///< serialized image size
  std::uint64_t instructions = 0;   ///< total emitted instructions
  std::uint64_t const_pool = 0;     ///< literal pool entries
  std::uint64_t expr_pool = 0;      ///< guard-expression pool entries
  std::uint64_t programs = 0;       ///< derive + rematch programs emitted
  std::uint64_t net_nodes = 0;      ///< discrimination-net test states
  std::uint64_t net_shared = 0;     ///< alpha tests saved by prefix sharing

  // Execution (cumulative across the matcher's lifetime).
  std::uint64_t dispatches = 0;     ///< instructions executed by the VM
  std::uint64_t net_runs = 0;       ///< facts classified through the net
  std::uint64_t derive_runs = 0;    ///< derive-program executions
  std::uint64_t rematch_runs = 0;   ///< rematch-program executions
  std::uint64_t quant_checks = 0;   ///< quantified-CE checks executed
  std::uint64_t emits = 0;          ///< instantiation emissions attempted

  /// Push every compile_fields() entry into `registry` as
  /// "<prefix><name>".
  void publish(obs::MetricsRegistry& registry,
               std::string_view prefix = "compile.") const;
};

namespace obs {

/// Schema entry: a stat field's export name and member pointer.
template <typename Struct>
struct FieldDef {
  const char* name;
  std::uint64_t Struct::*member;
};

/// Every numeric CycleStats field, in export order.
std::span<const FieldDef<CycleStats>> cycle_fields();

/// Every numeric RunStats field, in export order.
std::span<const FieldDef<RunStats>> run_fields();

/// Every numeric FaultStats field, in export order.
std::span<const FieldDef<FaultStats>> fault_fields();

/// Every numeric ServiceStats field, in export order.
std::span<const FieldDef<ServiceStats>> service_fields();

/// Every numeric NetStats field, in export order.
std::span<const FieldDef<NetStats>> net_fields();

/// Every numeric JournalStats field, in export order.
std::span<const FieldDef<JournalStats>> journal_fields();

/// Every numeric RetryStats field, in export order.
std::span<const FieldDef<RetryStats>> retry_fields();

/// Every numeric ReplStats field, in export order.
std::span<const FieldDef<ReplStats>> repl_fields();

/// Every numeric ClusterStats field, in export order.
std::span<const FieldDef<ClusterStats>> cluster_fields();

/// Every numeric CompileStats field, in export order.
std::span<const FieldDef<CompileStats>> compile_fields();

}  // namespace obs

}  // namespace parulel
