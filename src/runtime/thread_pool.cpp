#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <exception>

#include "support/timer.hpp"

namespace parulel {

/// A fork-join batch: a vector of jobs plus a next-job cursor and a
/// completion latch. Lives on the submitting thread's stack.
struct ThreadPool::Batch {
  const std::vector<std::function<void(unsigned)>>* jobs = nullptr;
  ThreadPool::WorkerStat* worker_stats = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::exception_ptr first_error;
  std::mutex error_mutex;

  // Returns true when this call completed the final job.
  bool run_some(unsigned worker_id) {
    const std::size_t n = jobs->size();
    WorkerStat& stat = worker_stats[worker_id];
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return false;
      const Timer job_timer;
      try {
        (*jobs)[i](worker_id);
      } catch (...) {
        std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      stat.jobs.fetch_add(1, std::memory_order_relaxed);
      stat.busy_ns.fetch_add(job_timer.elapsed_ns(),
                             std::memory_order_relaxed);
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::scoped_lock lock(done_mutex);
        done_cv.notify_all();
        return true;
      }
    }
  }
};

ThreadPool::ThreadPool(unsigned threads)
    : threads_(std::max(1u, threads)),
      worker_stats_(std::make_unique<WorkerStat[]>(threads_)) {
  // Worker 0 is the calling thread; only threads_-1 extra workers run.
  workers_.reserve(threads_ - 1);
  for (unsigned w = 1; w < threads_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  // jthread joins in its destructor.
}

PoolStatsSnapshot ThreadPool::stats() const {
  PoolStatsSnapshot snap;
  snap.batches = batches_.load(std::memory_order_relaxed);
  snap.per_worker_jobs.resize(threads_);
  snap.per_worker_busy_ns.resize(threads_);
  for (unsigned w = 0; w < threads_; ++w) {
    const std::uint64_t jobs =
        worker_stats_[w].jobs.load(std::memory_order_relaxed);
    const std::uint64_t busy =
        worker_stats_[w].busy_ns.load(std::memory_order_relaxed);
    snap.per_worker_jobs[w] = jobs;
    snap.per_worker_busy_ns[w] = busy;
    snap.jobs += jobs;
    snap.busy_ns += busy;
  }
  return snap;
}

unsigned ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp(hw == 0 ? 4u : hw, 1u, 64u);
}

void ThreadPool::worker_loop(unsigned worker_id) {
  for (;;) {
    Batch* batch = nullptr;
    {
      std::unique_lock lock(mutex_);
      work_ready_.wait(lock,
                       [this] { return shutting_down_ || current_ != nullptr; });
      if (shutting_down_) return;
      batch = current_;
    }
    batch->run_some(worker_id);
    // Park again; the submitter clears current_ once the batch drains.
    {
      std::unique_lock lock(mutex_);
      work_ready_.wait(lock, [this, batch] {
        return shutting_down_ || current_ != batch;
      });
      if (shutting_down_) return;
    }
  }
}

void ThreadPool::run_batch(
    const std::vector<std::function<void(unsigned)>>& jobs) {
  if (jobs.empty()) return;
  batches_.fetch_add(1, std::memory_order_relaxed);
  if (threads_ == 1 || jobs.size() == 1) {
    WorkerStat& stat = worker_stats_[0];
    for (const auto& job : jobs) {
      const Timer job_timer;
      job(0);
      stat.jobs.fetch_add(1, std::memory_order_relaxed);
      stat.busy_ns.fetch_add(job_timer.elapsed_ns(),
                             std::memory_order_relaxed);
    }
    return;
  }

  Batch batch;
  batch.jobs = &jobs;
  batch.worker_stats = worker_stats_.get();
  {
    std::scoped_lock lock(mutex_);
    assert(current_ == nullptr && "nested batches are not supported");
    current_ = &batch;
  }
  work_ready_.notify_all();

  batch.run_some(0);  // The caller is worker 0.
  {
    std::unique_lock lock(batch.done_mutex);
    batch.done_cv.wait(lock, [&batch, &jobs] {
      return batch.done.load(std::memory_order_acquire) == jobs.size();
    });
  }
  {
    std::scoped_lock lock(mutex_);
    current_ = nullptr;
  }
  work_ready_.notify_all();

  if (batch.first_error) std::rethrow_exception(batch.first_error);
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, unsigned)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (threads_ == 1 || n == 1) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    WorkerStat& stat = worker_stats_[0];
    const Timer job_timer;
    for (std::size_t i = begin; i < end; ++i) fn(i, 0);
    stat.jobs.fetch_add(1, std::memory_order_relaxed);
    stat.busy_ns.fetch_add(job_timer.elapsed_ns(),
                           std::memory_order_relaxed);
    return;
  }
  // Chunk into ~4 chunks per worker for load balance without per-index
  // dispatch overhead.
  const std::size_t chunks = std::min<std::size_t>(n, threads_ * 4ull);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<std::function<void(unsigned)>> jobs;
  jobs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    jobs.push_back([lo, hi, &fn](unsigned worker_id) {
      for (std::size_t i = lo; i < hi; ++i) fn(i, worker_id);
    });
  }
  run_batch(jobs);
}

}  // namespace parulel
