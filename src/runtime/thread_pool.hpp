// Fixed-size worker pool with fork-join task groups.
//
// The engines submit one task batch per engine phase (match, fire) and
// wait for the batch on a latch — CP.4 "think in tasks"; workers are
// created once per pool lifetime (CP.41) and joined by RAII (CP.25).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace parulel {

/// Snapshot of a pool's cumulative utilization counters (obs layer).
/// busy_ns sums job execution time across workers; utilization over a
/// wall-clock interval is busy_ns / (wall_ns * thread_count).
struct PoolStatsSnapshot {
  std::uint64_t batches = 0;  ///< fork-join batches submitted
  std::uint64_t jobs = 0;     ///< jobs (chunks) executed, all workers
  std::uint64_t busy_ns = 0;  ///< summed per-job execution time
  std::vector<std::uint64_t> per_worker_jobs;
  std::vector<std::uint64_t> per_worker_busy_ns;
};

/// A simple shared-queue thread pool.
///
/// Work items are std::function<void()>; per-phase batches are expressed
/// through `parallel_for`, which blocks the caller until the whole range
/// is processed. With `threads == 1` the pool degenerates to inline
/// execution on the calling thread (no workers are started), which keeps
/// single-thread baselines free of synchronization noise.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned thread_count() const { return threads_; }

  /// Run fn(begin..end) split into chunks across the pool; the calling
  /// thread participates. Returns when every index has been processed.
  /// fn receives (index, worker_id) with worker_id in [0, thread_count()).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, unsigned)>& fn);

  /// Run `jobs` closures across the pool (worker_id passed to each);
  /// blocks until all complete. Exceptions thrown by jobs propagate to
  /// the caller (the first one wins; the batch still drains).
  void run_batch(const std::vector<std::function<void(unsigned)>>& jobs);

  /// Hardware concurrency clamped to [1, 64].
  static unsigned default_threads();

  /// Cumulative utilization counters since construction. Cheap enough to
  /// keep always-on: one steady_clock read pair per job (chunk), never
  /// per index.
  PoolStatsSnapshot stats() const;

 private:
  struct Batch;
  void worker_loop(unsigned worker_id);

  /// Per-worker counters, cacheline-separated to avoid false sharing.
  struct alignas(64) WorkerStat {
    std::atomic<std::uint64_t> jobs{0};
    std::atomic<std::uint64_t> busy_ns{0};
  };

  unsigned threads_;
  std::unique_ptr<WorkerStat[]> worker_stats_;
  std::atomic<std::uint64_t> batches_{0};
  std::vector<std::jthread> workers_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  bool shutting_down_ = false;

  // The currently executing batch, if any. Only one batch runs at a time
  // (engine phases are sequential); workers pull chunk indices from it.
  Batch* current_ = nullptr;
};

}  // namespace parulel
