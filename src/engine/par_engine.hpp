// The PARULEL engine: set-oriented parallel rule firing with meta-rule
// conflict resolution.
//
// Each cycle:
//   1. match     — fold the working-memory delta into the conflict set
//                  (rule x delta parallel TREAT);
//   2. redact    — reify the eligible conflict set as meta facts and run
//                  the defmetarule redaction fixpoint; redacted
//                  instantiations are withheld this cycle (they remain
//                  eligible next cycle while still matched);
//   3. fire      — every surviving instantiation fires, in parallel,
//                  against the immutable pre-cycle snapshot of working
//                  memory, buffering writes;
//   4. merge     — buffers apply in ascending instantiation-id order
//                  (first-writer-wins on retract races), producing the
//                  next cycle's delta.
//
// Determinism: identical programs and initial facts produce identical
// cycle traces and final working memories for ANY thread count — thread
// parallelism only reorders read-only work.
#pragma once

#include <memory>

#include "engine/engine.hpp"
#include "meta/meta_engine.hpp"
#include "runtime/thread_pool.hpp"

namespace parulel {

class ParallelEngine : public Engine {
 public:
  /// `program` must outlive the engine.
  ParallelEngine(const Program& program, EngineConfig config);

  WorkingMemory& wm() override { return wm_; }
  void assert_initial_facts() override;
  RunStats run() override;
  const char* name() const override { return "parulel"; }

  /// One full match-redact-fire-merge cycle. Returns false when the
  /// firing set came up empty (quiescent or fully redacted) or halted.
  bool step(RunStats& stats);

  /// Service layer: fold working-memory changes injected from OUTSIDE
  /// the recognize-act loop (assert/retract/modify between runs) into
  /// the retained matcher as one external batch. Without this, the next
  /// step() would still pick the pending delta up, but through the
  /// internal path — the external entry point keeps the matcher's
  /// external_deltas counter honest (see Matcher::apply_external_delta).
  void absorb_external_delta();

  const Matcher& matcher() const { return *matcher_; }
  unsigned threads() const { return pool_->thread_count(); }
  bool halted() const { return halted_; }

  /// Journal recovery (service/journal.hpp): reinstate the pre-crash
  /// halted flag after a session rebuild — a halted session must come
  /// back halted, not runnable.
  void set_halted(bool halted) { halted_ = halted; }

 private:
  /// Emit this cycle's trace event (tracing enabled only): CycleStats
  /// plus matcher/pool activity differenced against the previous cycle.
  void trace_cycle(const CycleStats& cycle);

  const Program& program_;
  EngineConfig config_;
  WorkingMemory wm_;
  std::unique_ptr<ThreadPool> owned_pool_;  ///< null when config.pool is set
  ThreadPool* pool_;                        ///< owned_pool_ or config.pool
  std::unique_ptr<Matcher> matcher_;
  MetaEngine meta_;
  bool halted_ = false;

  // Previous-cycle cumulative snapshots for trace deltas.
  MatchStats trace_prev_match_;
  PoolStatsSnapshot trace_prev_pool_;
};

}  // namespace parulel
