// RHS action execution.
//
// Two modes:
//  - direct: the sequential engine applies actions to working memory as
//    they execute (OPS5 semantics);
//  - buffered: the PARULEL parallel engine evaluates actions against an
//    immutable WM snapshot into a PendingOps log, merged later. Buffered
//    execution is what makes parallel firing race-free: RHS evaluation
//    only reads, and all writes happen in one deterministic merge pass.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "lang/program.hpp"
#include "match/instantiation.hpp"
#include "wm/working_memory.hpp"

namespace parulel {

/// One buffered write. Modify is retract+assert fused so the merge can
/// apply first-writer-wins atomically (losing the retract skips the
/// paired assert).
struct PendingOp {
  enum class Kind : std::uint8_t { Assert, Retract, Modify };
  Kind kind = Kind::Assert;
  TemplateId tmpl = kInvalidTemplate;
  std::vector<Value> slots;  // Assert / Modify (full new content)
  FactId retract_id = kInvalidFact;  // Retract / Modify
};

/// Everything one instantiation's firing wants to do to the world.
struct PendingOps {
  std::vector<PendingOp> ops;
  std::string printout;  ///< accumulated printout text
  bool halt = false;
};

/// Outcome counters for a direct (sequential) firing.
struct DirectFireResult {
  std::uint64_t asserts = 0;
  std::uint64_t retracts = 0;
  std::uint64_t duplicate_asserts = 0;
  bool halt = false;
};

/// Fire `inst` directly against `wm` (sequential engine).
DirectFireResult fire_direct(const Program& program, const Instantiation& inst,
                             WorkingMemory& wm, std::ostream* output);

/// Evaluate `inst`'s RHS against `wm` as a read-only snapshot, buffering
/// writes into `out` (parallel engine).
void fire_buffered(const Program& program, const Instantiation& inst,
                   const WorkingMemory& wm, PendingOps& out);

/// Merge counters reported by apply_pending.
struct MergeResult {
  std::uint64_t asserts = 0;
  std::uint64_t retracts = 0;
  std::uint64_t duplicate_asserts = 0;
  std::uint64_t write_conflicts = 0;
  bool halt = false;
};

/// Apply one instantiation's buffered ops to `wm`; first-writer-wins on
/// retract races (a failed retract counts as a write conflict and, for
/// Modify, suppresses the paired assert).
void apply_pending(const PendingOps& pending, WorkingMemory& wm,
                   std::ostream* output, MergeResult& result);

}  // namespace parulel
