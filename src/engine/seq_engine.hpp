// Sequential OPS5/CLIPS-style baseline engine.
//
// Classic recognize-act loop: match (incremental), resolve conflicts
// with a hard-wired strategy, fire exactly ONE instantiation, repeat.
// This is the select-one-and-fire semantics PARULEL's set-oriented
// firing is measured against (experiment R-T2).
#pragma once

#include <memory>

#include "engine/engine.hpp"

namespace parulel {

class SequentialEngine : public Engine {
 public:
  /// `program` must outlive the engine.
  SequentialEngine(const Program& program, EngineConfig config);

  WorkingMemory& wm() override { return wm_; }
  void assert_initial_facts() override;
  RunStats run() override;
  const char* name() const override { return "sequential"; }

  /// Run exactly one recognize-act cycle. Returns false when quiescent
  /// or halted (nothing fired).
  bool step(RunStats& stats);

  const Matcher& matcher() const { return *matcher_; }

 private:
  /// Emit this cycle's trace event (tracing enabled only).
  void trace_cycle(const CycleStats& cycle);

  const Program& program_;
  EngineConfig config_;
  WorkingMemory wm_;
  std::unique_ptr<Matcher> matcher_;
  Rng rng_;
  bool halted_ = false;

  // Previous-cycle cumulative snapshot for trace deltas.
  MatchStats trace_prev_match_;
};

}  // namespace parulel
