// Conflict-resolution strategies for the sequential OPS5-style baseline.
//
// PARULEL's whole point is to replace these hard-wired strategies with
// programmable meta-rules; they live here as the faithful baseline:
//   First  — FIFO on instantiation id (stable, cheap)
//   Lex    — OPS5 LEX: salience, then recency of time tags (descending,
//            lexicographic), then fewer-conditions tie-break
//   Mea    — OPS5 MEA: salience, then recency of the first CE's fact,
//            then LEX on the rest
//   Random — uniform over the conflict set (seeded, reproducible)
#pragma once

#include <cstdint>
#include <span>

#include "lang/program.hpp"
#include "match/conflict_set.hpp"
#include "support/rng.hpp"

namespace parulel {

enum class Strategy : std::uint8_t { First, Lex, Mea, Random };

const char* strategy_name(Strategy s);

/// Pick the next instantiation to fire. Returns kInvalidInst on an empty
/// conflict set. Deterministic for a given seed/strategy/conflict set.
InstId select_instantiation(const ConflictSet& cs,
                            std::span<const CompiledRule> rules, Strategy s,
                            Rng& rng);

}  // namespace parulel
