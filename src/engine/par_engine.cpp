#include "engine/par_engine.hpp"

#include <algorithm>

#include "engine/actions.hpp"
#include "obs/report.hpp"
#include "support/error.hpp"
#include "support/timer.hpp"

namespace parulel {

void ParallelEngine::trace_cycle(const CycleStats& cycle) {
  obs::CycleActivity activity;
  activity.engine = name();
  activity.threads = pool_->thread_count();
  const MatchStats& match_now = matcher_->stats();
  const PoolStatsSnapshot pool_now = pool_->stats();
  obs::fill_match_activity(activity, match_now, trace_prev_match_);
  obs::fill_pool_activity(activity, pool_now, trace_prev_pool_);
  trace_prev_match_ = match_now;
  trace_prev_pool_ = pool_now;
  config_.trace->cycle(cycle, activity);
}

ParallelEngine::ParallelEngine(const Program& program, EngineConfig config)
    : program_(program),
      config_(config),
      wm_(program.schema),
      owned_pool_(config.pool
                      ? nullptr
                      : std::make_unique<ThreadPool>(std::max(1u, config.threads))),
      pool_(config.pool ? config.pool : owned_pool_.get()),
      meta_(program) {
  if (config_.matcher == MatcherKind::Rete) {
    throw RuntimeError(
        "the parallel engine requires a TREAT-family matcher");
  }
  matcher_ = make_matcher(config_.matcher, program_, pool_);
}

void ParallelEngine::assert_initial_facts() {
  for (const auto& fact : program_.initial_facts) {
    wm_.assert_fact(fact.tmpl, fact.slots);
  }
}

void ParallelEngine::absorb_external_delta() {
  const Delta delta = wm_.drain_delta();
  if (!delta.empty()) matcher_->apply_external_delta(wm_, delta);
}

bool ParallelEngine::step(RunStats& stats) {
  if (halted_) return false;
  CycleStats cycle;
  cycle.cycle = stats.cycles;

  // Phase 1: match.
  {
    ScopedAccumulator t(cycle.match_ns);
    matcher_->apply_delta(wm_, wm_.drain_delta());
  }
  ConflictSet& cs = matcher_->conflict_set();
  std::vector<InstId> eligible = cs.alive_ids();
  cycle.conflict_set_size = eligible.size();
  if (eligible.empty()) {
    stats.quiescent = true;
    return false;
  }

  if (config_.stratified_salience) {
    int max_salience = program_.rules[cs.get(eligible.front()).rule].salience;
    for (InstId id : eligible) {
      max_salience = std::max(
          max_salience, program_.rules[cs.get(id).rule].salience);
    }
    std::erase_if(eligible, [&](InstId id) {
      return program_.rules[cs.get(id).rule].salience != max_salience;
    });
  }

  // Phase 2: meta-rule redaction.
  std::vector<InstId> to_fire;
  {
    ScopedAccumulator t(cycle.redact_ns);
    if (meta_.active()) {
      const MetaOutcome outcome =
          meta_.run(wm_, cs, eligible, config_.output, config_.metrics);
      cycle.redacted = outcome.redacted.size();
      cycle.meta_rounds = outcome.rounds;
      cycle.meta_firings = outcome.meta_firings;
      // eligible and outcome.redacted are both ascending: set-difference.
      to_fire.reserve(eligible.size() - outcome.redacted.size());
      std::set_difference(eligible.begin(), eligible.end(),
                          outcome.redacted.begin(), outcome.redacted.end(),
                          std::back_inserter(to_fire));
    } else {
      to_fire = eligible;
    }
  }
  if (to_fire.empty()) {
    // Everything was redacted: the system is stalled by its own
    // meta-program — that is quiescence under PARULEL semantics.
    stats.quiescent = true;
    stats.absorb(cycle);
    if (config_.trace_cycles) stats.per_cycle.push_back(cycle);
    PARULEL_OBS_ONLY(if (config_.trace) trace_cycle(cycle);)
    return false;
  }

  // Phase 3: parallel firing against the frozen snapshot.
  std::vector<PendingOps> pending(to_fire.size());
  {
    ScopedAccumulator t(cycle.fire_ns);
    pool_->parallel_for(0, to_fire.size(), [&](std::size_t i, unsigned) {
      fire_buffered(program_, cs.get(to_fire[i]), wm_, pending[i]);
    });
  }

  // Phase 4: deterministic merge (ascending instantiation id).
  {
    ScopedAccumulator t(cycle.merge_ns);
    MergeResult merged;
    for (std::size_t i = 0; i < to_fire.size(); ++i) {
      if (config_.firing_log) {
        const Instantiation& inst = cs.get(to_fire[i]);
        config_.firing_log->push_back(
            {stats.cycles, inst.rule, inst.facts});
      }
      cs.mark_fired(to_fire[i]);
      apply_pending(pending[i], wm_, config_.output, merged);
    }
    cycle.fired = to_fire.size();
    cycle.asserts = merged.asserts;
    cycle.retracts = merged.retracts;
    cycle.duplicate_asserts = merged.duplicate_asserts;
    cycle.write_conflicts = merged.write_conflicts;
    if (merged.halt) {
      halted_ = true;
      stats.halted = true;
    }
  }

  stats.absorb(cycle);
  if (config_.trace_cycles) stats.per_cycle.push_back(cycle);
  PARULEL_OBS_ONLY(if (config_.trace) trace_cycle(cycle);)
  return true;
}

RunStats ParallelEngine::run() {
  RunStats stats;
  Timer wall;
  while (stats.cycles < config_.max_cycles) {
    if (!step(stats)) break;
  }
  stats.wall_ns = wall.elapsed_ns();
  stats.termination = stats.halted      ? TerminationReason::Halted
                      : stats.quiescent ? TerminationReason::Quiescent
                                        : TerminationReason::CycleLimit;
  PARULEL_OBS_ONLY({
    if (config_.trace) config_.trace->run(stats, name());
    if (config_.metrics) {
      stats.publish(*config_.metrics);
      obs::publish_match_stats(*config_.metrics, matcher_->stats());
      if (const CompileStats* cstats = matcher_->compile_stats()) {
        cstats->publish(*config_.metrics);
      }
      obs::publish_pool_stats(*config_.metrics, pool_->stats());
      config_.metrics->set("engine.threads", pool_->thread_count());
    }
  })
  return stats;
}

}  // namespace parulel
