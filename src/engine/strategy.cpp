#include "engine/strategy.hpp"

#include <algorithm>
#include <vector>

namespace parulel {
namespace {

/// Time tags sorted descending — the LEX comparison key.
std::vector<FactId> recency_key(const Instantiation& inst) {
  std::vector<FactId> tags = inst.facts;
  std::sort(tags.begin(), tags.end(), std::greater<>());
  return tags;
}

/// OPS5 LEX order: true when a should fire before b.
bool lex_before(const Instantiation& a, const Instantiation& b) {
  const std::vector<FactId> ka = recency_key(a);
  const std::vector<FactId> kb = recency_key(b);
  const std::size_t n = std::min(ka.size(), kb.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (ka[i] != kb[i]) return ka[i] > kb[i];
  }
  if (ka.size() != kb.size()) return ka.size() < kb.size();
  return a.id < b.id;  // stable tie-break
}

/// OPS5 MEA order: first CE recency dominates.
bool mea_before(const Instantiation& a, const Instantiation& b) {
  const FactId fa = a.facts.empty() ? 0 : a.facts.front();
  const FactId fb = b.facts.empty() ? 0 : b.facts.front();
  if (fa != fb) return fa > fb;
  return lex_before(a, b);
}

}  // namespace

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::First: return "first";
    case Strategy::Lex: return "lex";
    case Strategy::Mea: return "mea";
    case Strategy::Random: return "random";
  }
  return "?";
}

InstId select_instantiation(const ConflictSet& cs,
                            std::span<const CompiledRule> rules, Strategy s,
                            Rng& rng) {
  if (cs.empty()) return kInvalidInst;

  // Salience dominates every strategy (OPS5/CLIPS behaviour): restrict
  // to the highest-salience stratum first.
  const std::vector<InstId> all = cs.alive_ids();
  int max_salience = rules[cs.get(all.front()).rule].salience;
  for (InstId id : all) {
    max_salience = std::max(max_salience, rules[cs.get(id).rule].salience);
  }
  std::vector<InstId> ids;
  ids.reserve(all.size());
  for (InstId id : all) {
    if (rules[cs.get(id).rule].salience == max_salience) ids.push_back(id);
  }

  if (s == Strategy::First) return ids.front();
  if (s == Strategy::Random) {
    return ids[rng.below(ids.size())];
  }

  InstId best = ids.front();
  for (std::size_t i = 1; i < ids.size(); ++i) {
    const Instantiation& cand = cs.get(ids[i]);
    const Instantiation& cur = cs.get(best);
    const bool better = s == Strategy::Mea ? mea_before(cand, cur)
                                           : lex_before(cand, cur);
    if (better) best = ids[i];
  }
  return best;
}

}  // namespace parulel
