#include "engine/seq_engine.hpp"

#include "engine/actions.hpp"
#include "obs/report.hpp"
#include "support/error.hpp"
#include "support/timer.hpp"

namespace parulel {

void SequentialEngine::trace_cycle(const CycleStats& cycle) {
  obs::CycleActivity activity;
  activity.engine = name();
  activity.threads = 1;
  const MatchStats& match_now = matcher_->stats();
  obs::fill_match_activity(activity, match_now, trace_prev_match_);
  trace_prev_match_ = match_now;
  config_.trace->cycle(cycle, activity);
}

SequentialEngine::SequentialEngine(const Program& program,
                                   EngineConfig config)
    : program_(program),
      config_(config),
      wm_(program.schema),
      rng_(config.seed) {
  if (config_.matcher == MatcherKind::ParallelTreat) {
    throw RuntimeError(
        "the sequential engine cannot use the parallel matcher");
  }
  matcher_ = make_matcher(config_.matcher, program_);
}

void SequentialEngine::assert_initial_facts() {
  for (const auto& fact : program_.initial_facts) {
    wm_.assert_fact(fact.tmpl, fact.slots);
  }
}

bool SequentialEngine::step(RunStats& stats) {
  if (halted_) return false;
  CycleStats cycle;
  cycle.cycle = stats.cycles;

  {
    ScopedAccumulator t(cycle.match_ns);
    matcher_->apply_delta(wm_, wm_.drain_delta());
  }
  ConflictSet& cs = matcher_->conflict_set();
  cycle.conflict_set_size = cs.size();

  const InstId chosen = select_instantiation(cs, program_.rules,
                                             config_.strategy, rng_);
  if (chosen == kInvalidInst) {
    stats.quiescent = true;
    return false;
  }

  {
    ScopedAccumulator t(cycle.fire_ns);
    const Instantiation inst = cs.get(chosen);  // copy: fire mutates CS
    if (config_.firing_log) {
      config_.firing_log->push_back({stats.cycles, inst.rule, inst.facts});
    }
    cs.mark_fired(chosen);
    const DirectFireResult fired =
        fire_direct(program_, inst, wm_, config_.output);
    cycle.fired = 1;
    cycle.asserts = fired.asserts;
    cycle.retracts = fired.retracts;
    cycle.duplicate_asserts = fired.duplicate_asserts;
    if (fired.halt) {
      halted_ = true;
      stats.halted = true;
    }
  }

  stats.absorb(cycle);
  if (config_.trace_cycles) stats.per_cycle.push_back(cycle);
  PARULEL_OBS_ONLY(if (config_.trace) trace_cycle(cycle);)
  return true;
}

RunStats SequentialEngine::run() {
  RunStats stats;
  Timer wall;
  while (stats.cycles < config_.max_cycles) {
    if (!step(stats)) break;
  }
  stats.wall_ns = wall.elapsed_ns();
  stats.termination = stats.halted      ? TerminationReason::Halted
                      : stats.quiescent ? TerminationReason::Quiescent
                                        : TerminationReason::CycleLimit;
  PARULEL_OBS_ONLY({
    if (config_.trace) config_.trace->run(stats, name());
    if (config_.metrics) {
      stats.publish(*config_.metrics);
      obs::publish_match_stats(*config_.metrics, matcher_->stats());
      if (const CompileStats* cstats = matcher_->compile_stats()) {
        cstats->publish(*config_.metrics);
      }
      config_.metrics->set("engine.threads", 1);
    }
  })
  return stats;
}

}  // namespace parulel
