// Shared engine configuration and interface.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>

#include "engine/strategy.hpp"
#include "lang/program.hpp"
#include "match/matcher.hpp"
#include "support/stats.hpp"
#include "wm/working_memory.hpp"

namespace parulel {

class ThreadPool;

namespace obs {
class TraceSink;
class MetricsRegistry;
}  // namespace obs

/// One fired instantiation, for audit/explanation tooling.
struct FiringRecord {
  std::uint64_t cycle = 0;
  RuleId rule = 0;
  std::vector<FactId> facts;
};

struct EngineConfig {
  /// Worker threads for the parallel engine (>=1). The sequential engine
  /// ignores this.
  unsigned threads = 1;

  /// When non-null, the parallel engine runs its match/fire phases on
  /// this shared pool instead of creating a private one (`threads` is
  /// then ignored). The service layer points many sessions at one
  /// machine-sized pool this way. The pool must outlive the engine, and
  /// fork-join batches do not nest: at most one engine may be inside
  /// run()/step() on a given pool at any moment (RuleService serializes
  /// commits to guarantee this).
  ThreadPool* pool = nullptr;

  /// Safety valve: abort the run after this many cycles.
  std::uint64_t max_cycles = 10'000'000;

  /// Record per-cycle stats into RunStats::per_cycle.
  bool trace_cycles = false;

  /// Sequential engine: conflict-resolution strategy.
  Strategy strategy = Strategy::Lex;

  /// Which match algorithm to use. The parallel engine accepts Treat or
  /// ParallelTreat (Rete is inherently sequential here).
  MatcherKind matcher = MatcherKind::Rete;

  /// Sink for (printout ...) actions; null discards.
  std::ostream* output = nullptr;

  /// Seed for Strategy::Random.
  std::uint64_t seed = 1;

  /// Parallel engine: before meta-rule redaction, restrict each cycle's
  /// eligible set to the highest-salience stratum present. Off by
  /// default — pure PARULEL semantics ignores salience and leaves
  /// ordering to meta-rules; this option is the hybrid for programs
  /// written against OPS5-style stratification.
  bool stratified_salience = false;

  /// When non-null, receives one firing record per fired instantiation, in
  /// firing order — the audit trail for explanation tooling.
  std::vector<FiringRecord>* firing_log = nullptr;

  /// Observability (see src/obs/). `trace`, when non-null, receives one
  /// structured "cycle" event per recognize-act cycle and a final "run"
  /// event (JSONL). `metrics`, when non-null, receives engine, matcher,
  /// meta, and thread-pool counters at the end of run(). Both disabled
  /// paths cost one branch per cycle; compiling with
  /// -DPARULEL_OBS_ENABLED=0 removes even that.
  obs::TraceSink* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

/// Common engine surface: own a working memory, run to quiescence.
class Engine {
 public:
  virtual ~Engine() = default;

  virtual WorkingMemory& wm() = 0;
  const WorkingMemory& wm() const {
    return const_cast<Engine*>(this)->wm();
  }

  /// Assert the program's deffacts into working memory.
  virtual void assert_initial_facts() = 0;

  /// Run recognize-act cycles until quiescence, halt, or max_cycles.
  virtual RunStats run() = 0;

  virtual const char* name() const = 0;
};

}  // namespace parulel
