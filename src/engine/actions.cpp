#include "engine/actions.hpp"

#include <sstream>

#include "support/error.hpp"

namespace parulel {
namespace {

/// Evaluate the full new slot vector of an Assert action.
std::vector<Value> eval_assert_slots(const CompiledAction& action,
                                     std::span<const Value> env) {
  std::vector<Value> slots;
  slots.reserve(action.slot_values.size());
  for (const auto& expr : action.slot_values) {
    slots.push_back(expr.eval(env));
  }
  return slots;
}

/// New content of a Modify against the snapshot's current slots.
std::vector<Value> eval_modified_slots(const CompiledAction& action,
                                       const FactView& fact,
                                       std::span<const Value> env) {
  std::vector<Value> slots = fact.copy_slots();
  for (const auto& [slot, expr] : action.slot_updates) {
    slots[static_cast<std::size_t>(slot)] = expr.eval(env);
  }
  return slots;
}

}  // namespace

DirectFireResult fire_direct(const Program& program,
                             const Instantiation& inst, WorkingMemory& wm,
                             std::ostream* output) {
  const CompiledRule& rule = program.rules[inst.rule];
  std::vector<Value> env;
  rebuild_env(
      rule, inst.facts,
      [&](FactId f) { return wm.view(f); }, env);

  DirectFireResult result;
  for (const auto& action : rule.actions) {
    switch (action.kind) {
      case CompiledAction::Kind::Assert: {
        const FactId id =
            wm.assert_fact(action.tmpl, eval_assert_slots(action, env));
        if (id == kInvalidFact) {
          ++result.duplicate_asserts;
        } else {
          ++result.asserts;
        }
        break;
      }
      case CompiledAction::Kind::Retract: {
        const FactId target =
            inst.facts[static_cast<std::size_t>(action.ce_index)];
        if (wm.retract(target)) ++result.retracts;
        break;
      }
      case CompiledAction::Kind::Modify: {
        const FactId target =
            inst.facts[static_cast<std::size_t>(action.ce_index)];
        if (!wm.alive(target)) break;  // retracted earlier in this RHS
        const std::vector<Value> slots =
            eval_modified_slots(action, wm.view(target), env);
        ++result.retracts;
        wm.retract(target);
        // The tombstoned record stays readable (stable storage).
        if (wm.assert_fact(wm.view(target).tmpl(), slots) == kInvalidFact) {
          ++result.duplicate_asserts;
        } else {
          ++result.asserts;
        }
        break;
      }
      case CompiledAction::Kind::Bind:
        env[static_cast<std::size_t>(action.bind_var)] =
            action.args[0].eval(env);
        break;
      case CompiledAction::Kind::Halt:
        result.halt = true;
        return result;
      case CompiledAction::Kind::Printout: {
        if (output) {
          for (const auto& item : action.args) {
            *output << item.eval(env).to_string(*program.symbols);
          }
          *output << '\n';
        }
        break;
      }
      case CompiledAction::Kind::Redact:
        throw RuntimeError("redact reached an object-level firing");
    }
  }
  return result;
}

void fire_buffered(const Program& program, const Instantiation& inst,
                   const WorkingMemory& wm, PendingOps& out) {
  const CompiledRule& rule = program.rules[inst.rule];
  std::vector<Value> env;
  rebuild_env(
      rule, inst.facts,
      [&](FactId f) { return wm.view(f); }, env);

  std::ostringstream printout;
  for (const auto& action : rule.actions) {
    switch (action.kind) {
      case CompiledAction::Kind::Assert: {
        PendingOp op;
        op.kind = PendingOp::Kind::Assert;
        op.tmpl = action.tmpl;
        op.slots = eval_assert_slots(action, env);
        out.ops.push_back(std::move(op));
        break;
      }
      case CompiledAction::Kind::Retract: {
        PendingOp op;
        op.kind = PendingOp::Kind::Retract;
        op.retract_id = inst.facts[static_cast<std::size_t>(action.ce_index)];
        out.ops.push_back(std::move(op));
        break;
      }
      case CompiledAction::Kind::Modify: {
        const FactId target =
            inst.facts[static_cast<std::size_t>(action.ce_index)];
        const FactView fact = wm.view(target);
        PendingOp op;
        op.kind = PendingOp::Kind::Modify;
        op.retract_id = target;
        op.tmpl = fact.tmpl();
        op.slots = eval_modified_slots(action, fact, env);
        out.ops.push_back(std::move(op));
        break;
      }
      case CompiledAction::Kind::Bind:
        env[static_cast<std::size_t>(action.bind_var)] =
            action.args[0].eval(env);
        break;
      case CompiledAction::Kind::Halt:
        out.halt = true;
        out.printout += printout.str();
        return;
      case CompiledAction::Kind::Printout: {
        for (const auto& item : action.args) {
          printout << item.eval(env).to_string(*program.symbols);
        }
        printout << '\n';
        break;
      }
      case CompiledAction::Kind::Redact:
        throw RuntimeError("redact reached an object-level firing");
    }
  }
  out.printout += printout.str();
}

void apply_pending(const PendingOps& pending, WorkingMemory& wm,
                   std::ostream* output, MergeResult& result) {
  for (const auto& op : pending.ops) {
    switch (op.kind) {
      case PendingOp::Kind::Assert: {
        if (wm.assert_fact(op.tmpl, op.slots) == kInvalidFact) {
          ++result.duplicate_asserts;
        } else {
          ++result.asserts;
        }
        break;
      }
      case PendingOp::Kind::Retract: {
        if (wm.retract(op.retract_id)) {
          ++result.retracts;
        } else {
          ++result.write_conflicts;
        }
        break;
      }
      case PendingOp::Kind::Modify: {
        if (!wm.retract(op.retract_id)) {
          // Another instantiation won the race for this fact; its view
          // of the modify is void (first-writer-wins).
          ++result.write_conflicts;
          break;
        }
        ++result.retracts;
        if (wm.assert_fact(op.tmpl, op.slots) == kInvalidFact) {
          ++result.duplicate_asserts;
        } else {
          ++result.asserts;
        }
        break;
      }
    }
  }
  if (output && !pending.printout.empty()) *output << pending.printout;
  if (pending.halt) result.halt = true;
}

}  // namespace parulel
