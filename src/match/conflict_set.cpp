#include "match/conflict_set.hpp"

#include <algorithm>
#include <cassert>

namespace parulel {

InstId ConflictSet::add(Instantiation inst) {
  const std::size_t h = inst.key_hash();

  // Duplicate in the alive set?
  auto& key_group = by_key_.group_for(h);
  for (const InstId other : key_group) {
    if (insts_[other].same_key(inst)) return kInvalidInst;
  }
  // Refraction: already fired?
  auto [flo, fhi] = fired_.equal_range(h);
  for (auto it = flo; it != fhi; ++it) {
    if (it->second.same_key(inst)) return kInvalidInst;
  }

  const InstId id = static_cast<InstId>(insts_.size());
  inst.id = id;
  key_group.push_back(id);
  for (FactId f : inst.facts) by_fact_.group_for(f).push_back(id);
  if (inst.rule >= by_rule_.size()) by_rule_.resize(inst.rule + 1);
  by_rule_[inst.rule].push_back(id);
  insts_.push_back(std::move(inst));
  alive_.push_back(true);
  ++alive_count_;
  return id;
}

void ConflictSet::remove(InstId id) {
  if (id >= insts_.size() || !alive_[id]) return;
  alive_[id] = false;
  --alive_count_;

  const Instantiation& inst = insts_[id];
  if (auto* g = by_key_.find(inst.key_hash())) {
    g->erase(std::find(g->begin(), g->end(), id));
  }
  for (FactId f : inst.facts) {
    // A fact can appear twice in one instantiation (self-joins); the
    // id was indexed once per occurrence, so erase one per occurrence.
    auto* g = by_fact_.find(f);
    g->erase(std::find(g->begin(), g->end(), id));
  }
  // by_rule_ entries are purged lazily in of_rule().
}

bool ConflictSet::remove_by_key(const Instantiation& probe) {
  if (const auto* g = by_key_.find(probe.key_hash())) {
    for (const InstId id : *g) {
      if (insts_[id].same_key(probe)) {
        remove(id);
        return true;
      }
    }
  }
  return false;
}

void ConflictSet::remove_by_fact(FactId fact,
                                 std::vector<InstId>* removed_out) {
  // Collect first: remove() mutates by_fact_.
  const auto* g = by_fact_.find(fact);
  if (!g) return;
  scratch_rule_.assign(g->begin(), g->end());
  for (InstId id : scratch_rule_) {
    // Self-join duplicates appear once per occurrence; the first
    // removal kills the id, later ones no-op in remove().
    remove(id);
    if (removed_out) removed_out->push_back(id);
  }
}

void ConflictSet::mark_fired(InstId id) {
  assert(id < insts_.size() && alive_[id]);
  Instantiation copy = insts_[id];
  remove(id);
  fired_.emplace(copy.key_hash(), std::move(copy));
}

bool ConflictSet::has_fired(const Instantiation& inst) const {
  auto [lo, hi] = fired_.equal_range(inst.key_hash());
  for (auto it = lo; it != hi; ++it) {
    if (it->second.same_key(inst)) return true;
  }
  return false;
}

bool ConflictSet::alive(InstId id) const {
  return id < insts_.size() && alive_[id];
}

const Instantiation& ConflictSet::get(InstId id) const {
  assert(id < insts_.size());
  return insts_[id];
}

void ConflictSet::for_each(
    const std::function<void(const Instantiation&)>& fn) const {
  for (std::size_t i = 0; i < insts_.size(); ++i) {
    if (alive_[i]) fn(insts_[i]);
  }
}

std::vector<InstId> ConflictSet::of_rule(RuleId rule) const {
  std::vector<InstId> out;
  if (rule < by_rule_.size()) {
    for (InstId id : by_rule_[rule]) {
      if (alive_[id]) out.push_back(id);
    }
    std::sort(out.begin(), out.end());
  }
  return out;
}

std::vector<InstId> ConflictSet::alive_ids() const {
  std::vector<InstId> out;
  out.reserve(alive_count_);
  for (std::size_t i = 0; i < insts_.size(); ++i) {
    if (alive_[i]) out.push_back(static_cast<InstId>(i));
  }
  return out;
}

}  // namespace parulel
