#include "match/rete.hpp"

#include <algorithm>
#include <cassert>

namespace parulel {

ReteMatcher::TokenId ReteMatcher::BetaMemory::insert(Token token) {
  TokenId id;
  token.alive = true;
  if (!free_list.empty()) {
    id = free_list.back();
    free_list.pop_back();
    tokens[id] = std::move(token);
  } else {
    id = static_cast<TokenId>(tokens.size());
    tokens.push_back(std::move(token));
  }
  for (FactId f : tokens[id].facts) by_fact.emplace(f, id);
  ++alive_count;
  return id;
}

void ReteMatcher::BetaMemory::erase(TokenId id) {
  Token& token = tokens[id];
  assert(token.alive);
  for (FactId f : token.facts) {
    auto [lo, hi] = by_fact.equal_range(f);
    for (auto it = lo; it != hi; ++it) {
      if (it->second == id) {
        by_fact.erase(it);
        break;
      }
    }
  }
  if (token.key_hash != kNoKey) {
    auto [lo, hi] = by_key.equal_range(token.key_hash);
    for (auto it = lo; it != hi; ++it) {
      if (it->second == id) {
        by_key.erase(it);
        break;
      }
    }
  }
  token.alive = false;
  token.facts.clear();
  token.env.clear();
  token.neg_counts.clear();
  token.neg_keys.clear();
  token.key_hash = kNoKey;
  free_list.push_back(id);
  --alive_count;
}

ReteMatcher::ReteMatcher(std::span<const CompiledRule> rules,
                         std::span<const AlphaSpec> alpha_specs,
                         std::size_t template_count)
    : rules_(rules),
      alphas_(alpha_specs, template_count),
      positive_uses_(alpha_specs.size()),
      negative_uses_(alpha_specs.size()) {
  // Register alpha join indexes exactly as the TREAT planner does.
  plans_ = build_join_plans(rules, alphas_);

  nets_.resize(rules_.size());
  for (RuleId r = 0; r < rules_.size(); ++r) {
    const CompiledRule& rule = rules_[r];
    nets_[r].memories.resize(rule.positives.size());
    nets_[r].has_negatives = !rule.negatives.empty();
    for (std::size_t p = 0; p < rule.positives.size(); ++p) {
      positive_uses_[rule.positives[p].alpha].push_back(
          {r, static_cast<int>(p)});
    }
    for (std::size_t n = 0; n < rule.negatives.size(); ++n) {
      negative_uses_[rule.negatives[n].alpha].push_back(
          {r, static_cast<int>(n)});
    }
  }
}

std::size_t ReteMatcher::token_count() const {
  std::size_t n = 0;
  for (const auto& net : nets_) {
    for (const auto& mem : net.memories) n += mem.alive_count;
    n += net.gate.alive_count;
  }
  return n;
}

std::size_t ReteMatcher::left_key_hash(RuleId rule, std::size_t consumer_pos,
                                       std::span<const Value> env) const {
  const PositionPlan& plan = plans_[rule].positives[consumer_pos];
  std::size_t h = 0x2545f4914f6cdd1dULL;
  for (VarId v : plan.key_vars) {
    h = hash_combine(h, env[static_cast<std::size_t>(v)].hash());
  }
  return h;
}

std::size_t ReteMatcher::right_key_hash(RuleId rule, std::size_t consumer_pos,
                                        const FactView& fact) const {
  const PositionPlan& plan = plans_[rule].positives[consumer_pos];
  std::size_t h = 0x2545f4914f6cdd1dULL;
  for (int s : plan.key_slots) {
    // Cached per-slot hash from the store (same value as .hash()).
    h = hash_combine(h, fact.slot_hash(static_cast<std::size_t>(s)));
  }
  return h;
}

std::size_t ReteMatcher::neg_key_hash_env(RuleId rule, std::size_t n,
                                          std::span<const Value> env) const {
  const PositionPlan& plan = plans_[rule].negatives[n];
  std::size_t h = 0x2545f4914f6cdd1dULL;
  for (VarId v : plan.key_vars) {
    h = hash_combine(h, env[static_cast<std::size_t>(v)].hash());
  }
  return h;
}

std::size_t ReteMatcher::neg_key_hash_fact(RuleId rule, std::size_t n,
                                           const FactView& fact) const {
  const PositionPlan& plan = plans_[rule].negatives[n];
  std::size_t h = 0x2545f4914f6cdd1dULL;
  for (int s : plan.key_slots) {
    h = hash_combine(h, fact.slot_hash(static_cast<std::size_t>(s)));
  }
  return h;
}

void ReteMatcher::production_add(RuleId rule, const Token& token) {
  Instantiation inst;
  inst.rule = rule;
  inst.facts = token.facts;
  if (cs_.add(std::move(inst)) != kInvalidInst) ++stats_.insts_derived;
}

void ReteMatcher::production_remove(RuleId rule, const Token& token) {
  Instantiation probe;
  probe.rule = rule;
  probe.facts = token.facts;
  if (cs_.remove_by_key(probe)) ++stats_.insts_invalidated;
}

void ReteMatcher::arrive_at_gate(const WorkingMemory& wm, RuleId rule,
                                 Token token) {
  const CompiledRule& r = rules_[rule];
  RuleNet& net = nets_[rule];
  if (!net.has_negatives) {
    production_add(rule, token);
    return;
  }

  token.neg_counts.assign(r.negatives.size(), 0);
  token.blocked = 0;
  for (std::size_t n = 0; n < r.negatives.size(); ++n) {
    const PositionPlan& neg = plans_[rule].negatives[n];
    const AlphaMemory& mem = alphas_.memory(neg.alpha);
    const FactStore& store = wm.store();
    int count = 0;
    if (neg.index_handle >= 0) {
      if (const AlphaMemory::Group* g = mem.probe_group(
              neg.index_handle, neg_key_hash_env(rule, n, token.env))) {
        for (FactRow row : *g) {
          if (JoinEngine::fact_blocks(store.view_row(row), neg, token.env)) {
            ++count;
          }
        }
      }
    } else {
      for (FactRow row : mem.rows()) {
        if (JoinEngine::fact_blocks(store.view_row(row), neg, token.env)) {
          ++count;
        }
      }
    }
    token.neg_counts[n] = count;
    // (not ...): any match blocks. (exists ...): no match blocks.
    const bool blocks =
        r.negatives[n].exists ? (count == 0) : (count > 0);
    if (blocks) ++token.blocked;
  }

  const bool pass = token.blocked == 0;
  // Index the gate token under each negative's key before storing.
  token.neg_keys.resize(r.negatives.size());
  for (std::size_t n = 0; n < r.negatives.size(); ++n) {
    token.neg_keys[n] = neg_key_hash_env(rule, n, token.env);
  }
  if (net.gate_neg_index.empty()) {
    net.gate_neg_index.resize(r.negatives.size());
  }
  const TokenId id = net.gate.insert(std::move(token));
  for (std::size_t n = 0; n < r.negatives.size(); ++n) {
    net.gate_neg_index[n].emplace(net.gate.tokens[id].neg_keys[n], id);
  }
  ++stats_.tokens_created;
  if (pass) production_add(rule, net.gate.tokens[id]);
}

void ReteMatcher::gate_neg_assert(RuleId rule, std::size_t n,
                                  const FactView& fact) {
  RuleNet& net = nets_[rule];
  if (net.gate_neg_index.empty()) return;
  const PositionPlan& neg = plans_[rule].negatives[n];
  const bool exists = rules_[rule].negatives[n].exists;
  const std::size_t key = neg_key_hash_fact(rule, n, fact);
  auto [lo, hi] = net.gate_neg_index[n].equal_range(key);
  for (auto it = lo; it != hi; ++it) {
    Token& token = net.gate.tokens[it->second];
    if (!token.alive) continue;
    if (!JoinEngine::fact_blocks(fact, neg, token.env)) continue;
    if (token.neg_counts[n]++ == 0) {
      // Count transition 0 -> 1: (not ...) starts blocking, an
      // (exists ...) stops blocking.
      if (exists) {
        if (--token.blocked == 0) production_add(rule, token);
      } else {
        if (token.blocked++ == 0) production_remove(rule, token);
      }
    }
  }
}

void ReteMatcher::gate_neg_retract(RuleId rule, std::size_t n,
                                   const FactView& fact) {
  RuleNet& net = nets_[rule];
  if (net.gate_neg_index.empty()) return;
  const PositionPlan& neg = plans_[rule].negatives[n];
  const bool exists = rules_[rule].negatives[n].exists;
  const std::size_t key = neg_key_hash_fact(rule, n, fact);
  auto [lo, hi] = net.gate_neg_index[n].equal_range(key);
  for (auto it = lo; it != hi; ++it) {
    Token& token = net.gate.tokens[it->second];
    if (!token.alive) continue;
    if (!JoinEngine::fact_blocks(fact, neg, token.env)) continue;
    if (--token.neg_counts[n] == 0) {
      // Count transition 1 -> 0: a (not ...) stops blocking, an
      // (exists ...) starts blocking.
      if (exists) {
        if (token.blocked++ == 0) production_remove(rule, token);
      } else {
        if (--token.blocked == 0) production_add(rule, token);
      }
    }
  }
}

void ReteMatcher::emit_token(const WorkingMemory& wm, RuleId rule,
                             std::size_t p, Token token) {
  const CompiledRule& r = rules_[rule];
  RuleNet& net = nets_[rule];
  const std::size_t n_pos = r.positives.size();

  if (p + 1 < n_pos) {
    // Store keyed for the downstream join.
    const std::size_t key = left_key_hash(rule, p + 1, token.env);
    token.key_hash = key;
    const std::vector<Value> env = token.env;  // cascade reads a copy
    const std::vector<FactId> facts = token.facts;
    const TokenId id = net.memories[p].insert(std::move(token));
    net.memories[p].by_key.emplace(key, id);
    ++stats_.tokens_created;

    // Left activation of join p+1: probe the alpha memory.
    const CompiledPattern& next_pat = r.positives[p + 1];
    const PositionPlan& next_plan = plans_[rule].positives[p + 1];
    const AlphaMemory& mem = alphas_.memory(next_plan.alpha);
    const FactStore& store = wm.store();
    auto right_join = [&](FactRow row) {
      const FactView fact = store.view_row(row);
      for (const auto& eq : next_plan.join_eqs) {
        if (fact.slot(static_cast<std::size_t>(eq.slot)) !=
            env[static_cast<std::size_t>(eq.var)]) {
          return;
        }
      }
      Token child;
      child.facts = facts;
      child.facts.push_back(fact.id());
      child.env = env;
      for (const auto& def : next_pat.defines) {
        child.env[static_cast<std::size_t>(def.var)] =
            fact.slot(static_cast<std::size_t>(def.slot));
      }
      for (const auto& guard : r.guards[p + 1]) {
        if (!CompiledExpr::truthy(guard.eval(child.env))) return;
      }
      emit_token(wm, rule, p + 1, std::move(child));
    };
    if (next_plan.index_handle >= 0) {
      // Candidate rows are copied out first: the cascade recurses into
      // emit_token, so keep iteration independent of index storage.
      std::vector<FactRow> candidates;
      mem.probe_hash(next_plan.index_handle,
                     left_key_hash(rule, p + 1, env), candidates);
      for (FactRow row : candidates) right_join(row);
    } else {
      const std::vector<FactRow> candidates = mem.rows();
      for (FactRow row : candidates) right_join(row);
    }
    return;
  }

  // Full positive match: store in the last memory (for retraction
  // bookkeeping) and pass to the gate / production.
  const TokenId id = net.memories[p].insert(token);
  (void)id;
  ++stats_.tokens_created;
  arrive_at_gate(wm, rule, std::move(token));
}

void ReteMatcher::assert_one(const WorkingMemory& wm, const FactView& fact) {
  alphas_.matching_alphas(fact, scratch_alphas_);
  stats_.alpha_activations += scratch_alphas_.size();
  const std::vector<std::uint32_t> hit(scratch_alphas_);

  // Insert into alpha memories first so cascades below see the fact.
  for (std::uint32_t a : hit) alphas_.memory(a).insert(fact);

  // Update pre-existing gate tokens before any new tokens arrive (new
  // arrivals count this fact from the alpha memory directly).
  for (std::uint32_t a : hit) {
    for (const AlphaUse& use : negative_uses_[a]) {
      gate_neg_assert(use.rule, static_cast<std::size_t>(use.position), fact);
    }
  }

  // Right activations. Per rule, process higher positions first: the
  // p-th activation must not see tokens this same fact just created at
  // lower positions (those cascades already join against the alpha
  // memory, which contains the fact).
  std::vector<AlphaUse> uses;
  for (std::uint32_t a : hit) {
    uses.insert(uses.end(), positive_uses_[a].begin(),
                positive_uses_[a].end());
  }
  std::sort(uses.begin(), uses.end(), [](const AlphaUse& x, const AlphaUse& y) {
    if (x.rule != y.rule) return x.rule < y.rule;
    return x.position > y.position;
  });

  for (const AlphaUse& use : uses) {
    const RuleId rule = use.rule;
    const std::size_t p = static_cast<std::size_t>(use.position);
    const CompiledRule& r = rules_[rule];
    const CompiledPattern& pat = r.positives[p];
    const PositionPlan& plan = plans_[rule].positives[p];

    if (p == 0) {
      Token token;
      token.facts = {fact.id()};
      token.env.assign(static_cast<std::size_t>(r.num_vars), Value{});
      for (const auto& def : pat.defines) {
        token.env[static_cast<std::size_t>(def.var)] =
            fact.slot(static_cast<std::size_t>(def.slot));
      }
      bool ok = true;
      for (const auto& guard : r.guards[0]) {
        if (!CompiledExpr::truthy(guard.eval(token.env))) {
          ok = false;
          break;
        }
      }
      if (ok) emit_token(wm, rule, 0, std::move(token));
      continue;
    }

    // Probe the left memory by this fact's join key.
    BetaMemory& left = nets_[rule].memories[p - 1];
    const std::size_t key = right_key_hash(rule, p, fact);
    // Collect ids first: emit_token may grow the memory's containers.
    std::vector<TokenId> matches;
    auto [lo, hiit] = left.by_key.equal_range(key);
    for (auto it = lo; it != hiit; ++it) matches.push_back(it->second);

    for (TokenId tid : matches) {
      const Token& parent = left.tokens[tid];
      if (!parent.alive) continue;
      bool ok = true;
      for (const auto& eq : plan.join_eqs) {
        if (fact.slot(static_cast<std::size_t>(eq.slot)) !=
            parent.env[static_cast<std::size_t>(eq.var)]) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      Token child;
      child.facts = parent.facts;
      child.facts.push_back(fact.id());
      child.env = parent.env;
      for (const auto& def : pat.defines) {
        child.env[static_cast<std::size_t>(def.var)] =
            fact.slot(static_cast<std::size_t>(def.slot));
      }
      ok = true;
      for (const auto& guard : r.guards[p]) {
        if (!CompiledExpr::truthy(guard.eval(child.env))) {
          ok = false;
          break;
        }
      }
      if (ok) emit_token(wm, rule, p, std::move(child));
    }
  }
}

void ReteMatcher::retract_one(const WorkingMemory& /*wm*/,
                              const FactView& fact) {
  alphas_.matching_alphas(fact, scratch_alphas_);
  stats_.alpha_activations += scratch_alphas_.size();
  const std::vector<std::uint32_t> hit(scratch_alphas_);

  // Unblock gate tokens first (the fact leaves negated alphas).
  for (std::uint32_t a : hit) {
    for (const AlphaUse& use : negative_uses_[a]) {
      gate_neg_retract(use.rule, static_cast<std::size_t>(use.position),
                       fact);
    }
  }

  for (std::uint32_t a : hit) alphas_.memory(a).erase(fact);

  // Remove every token containing the fact, in every memory and gate.
  for (RuleId rule = 0; rule < nets_.size(); ++rule) {
    RuleNet& net = nets_[rule];
    auto purge = [&](BetaMemory& mem, bool is_gate) {
      std::vector<TokenId> doomed;
      auto [lo, hiit] = mem.by_fact.equal_range(fact.id());
      for (auto it = lo; it != hiit; ++it) doomed.push_back(it->second);
      for (TokenId id : doomed) {
        Token& token = mem.tokens[id];
        if (!token.alive) continue;
        if (is_gate) {
          for (std::size_t n = 0; n < token.neg_keys.size(); ++n) {
            auto [klo, khi] = net.gate_neg_index[n].equal_range(
                token.neg_keys[n]);
            for (auto kit = klo; kit != khi; ++kit) {
              if (kit->second == id) {
                net.gate_neg_index[n].erase(kit);
                break;
              }
            }
          }
        }
        mem.erase(id);
        ++stats_.tokens_deleted;
      }
    };
    for (auto& mem : net.memories) purge(mem, false);
    purge(net.gate, true);
  }

  // Conflict-set entries containing the fact die with it.
  std::vector<InstId> removed;
  cs_.remove_by_fact(fact.id(), &removed);
  stats_.insts_invalidated += removed.size();
}

void ReteMatcher::apply_delta(const WorkingMemory& wm, const Delta& delta) {
  ++stats_.deltas_processed;
  for (FactId fid : delta.removed) retract_one(wm, wm.view(fid));
  for (FactId fid : delta.added) assert_one(wm, wm.view(fid));
  stats_.state_entries = token_count();
}

}  // namespace parulel
