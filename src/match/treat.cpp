#include "match/treat.hpp"

#include <algorithm>
#include <chrono>

namespace parulel {

TreatMatcher::TreatMatcher(std::span<const CompiledRule> rules,
                           std::span<const AlphaSpec> alpha_specs,
                           std::size_t template_count)
    : rules_(rules),
      alphas_(alpha_specs, template_count),
      join_(rules, alphas_),
      quant_(rules, join_.plans()),
      positive_uses_(alpha_specs.size()),
      negative_uses_(alpha_specs.size()) {
  for (RuleId r = 0; r < rules_.size(); ++r) {
    const CompiledRule& rule = rules_[r];
    for (std::size_t p = 0; p < rule.positives.size(); ++p) {
      positive_uses_[rule.positives[p].alpha].push_back(
          {r, static_cast<int>(p)});
    }
    for (std::size_t n = 0; n < rule.negatives.size(); ++n) {
      negative_uses_[rule.negatives[n].alpha].push_back(
          {r, static_cast<int>(n)});
    }
  }
}

void TreatMatcher::apply_delta(const WorkingMemory& wm, const Delta& delta) {
  ++stats_.deltas_processed;

  // Work queued against quantified CEs:
  //   unblocks   — (not ...) blocker left / (exists ...) witness arrived:
  //                constrained re-derivation may ADD instantiations;
  //   disables   — (exists ...) witness left: instantiations may DIE.
  struct QuantEvent {
    RuleId rule;
    int neg;
    FactId fact;
  };
  std::vector<QuantEvent> unblocks;
  std::vector<QuantEvent> disables;

  // 1. Removals: update alphas, drop invalidated instantiations.
  for (FactId fid : delta.removed) {
    const FactView fact = wm.view(fid);
    alphas_.matching_alphas(fact, scratch_alphas_);
    stats_.alpha_activations += scratch_alphas_.size();
    for (std::uint32_t a : scratch_alphas_) {
      for (const AlphaUse& use : negative_uses_[a]) {
        const bool exists =
            rules_[use.rule].negatives[static_cast<std::size_t>(use.position)]
                .exists;
        if (exists) {
          disables.push_back({use.rule, use.position, fid});
        } else {
          unblocks.push_back({use.rule, use.position, fid});
        }
      }
      alphas_.memory(a).erase(fact);
    }
    std::vector<InstId> removed;
    cs_.remove_by_fact(fid, &removed);
    stats_.insts_invalidated += removed.size();
  }

  // 2. Additions into alpha memories first, so derivations see the
  // complete post-delta state for joins and quantifier checks. The
  // alpha tests run once per fact; the hit lists feed steps 3 and 4.
  const auto upkeep_start = std::chrono::steady_clock::now();
  added_alphas_.clear();
  added_offsets_.clear();
  for (FactId fid : delta.added) {
    const FactView fact = wm.view(fid);
    alphas_.matching_alphas(fact, scratch_alphas_);
    stats_.alpha_activations += scratch_alphas_.size();
    added_offsets_.push_back(added_alphas_.size());
    for (std::uint32_t a : scratch_alphas_) {
      alphas_.memory(a).insert(fact);
      added_alphas_.push_back(a);
    }
  }
  added_offsets_.push_back(added_alphas_.size());
  stats_.alpha_upkeep_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - upkeep_start)
          .count());

  // 3. New facts in quantified alphas: (not ...) invalidates existing
  // matches; (exists ...) may enable new ones.
  for (std::size_t i = 0; i < delta.added.size(); ++i) {
    const FactId fid = delta.added[i];
    for (std::size_t j = added_offsets_[i]; j < added_offsets_[i + 1]; ++j) {
      for (const AlphaUse& use : negative_uses_[added_alphas_[j]]) {
        const bool exists =
            rules_[use.rule].negatives[static_cast<std::size_t>(use.position)]
                .exists;
        if (exists) {
          unblocks.push_back({use.rule, use.position, fid});
        } else {
          remove_blocked(wm, use.rule, use.position, fid);
        }
      }
    }
  }

  // 4. Seminaive derivation from each added fact.
  for (std::size_t i = 0; i < delta.added.size(); ++i) {
    derive_for_added(wm, delta.added[i],
                     std::span<const std::uint32_t>(
                         added_alphas_.data() + added_offsets_[i],
                         added_offsets_[i + 1] - added_offsets_[i]));
  }

  // 5. Departed (exists ...) witnesses: drop instantiations whose CE is
  // no longer satisfied in the post-delta state.
  for (const auto& d : disables) {
    remove_disabled(wm, d.rule, d.neg, d.fact);
  }

  // 6. Constrained re-derivations last (they are dedup-protected).
  for (const auto& u : unblocks) {
    rematch_unblocked(wm, u.rule, static_cast<std::size_t>(u.neg), u.fact);
  }

  stats_.state_entries = cs_.size();
}

void TreatMatcher::derive_for_added(const WorkingMemory& wm, FactId fid,
                                    std::span<const std::uint32_t> hit) {
  for (std::uint32_t a : hit) {
    for (const AlphaUse& use : positive_uses_[a]) {
      join_.derive(wm, use.rule, use.position, fid, join_scratch_,
                   [&](const std::vector<FactId>& facts,
                       std::span<const Value> env) {
                     Instantiation inst;
                     inst.rule = use.rule;
                     inst.facts = facts;
                     const InstId id = cs_.add(std::move(inst));
                     if (id != kInvalidInst) {
                       ++stats_.insts_derived;
                       if (!rules_[use.rule].negatives.empty()) {
                         quant_.add(use.rule, id, env);
                       }
                     }
                   });
    }
  }
}

void TreatMatcher::remove_blocked(const WorkingMemory& wm, RuleId rule_id,
                                  int neg_index, FactId fid) {
  const FactView fact = wm.view(fid);
  const CompiledRule& rule = rules_[rule_id];
  const PositionPlan& neg =
      join_.plan(rule_id).negatives[static_cast<std::size_t>(neg_index)];
  std::vector<Value> env;
  quant_.for_candidates(
      cs_, rule_id, static_cast<std::size_t>(neg_index), fact,
      [&](InstId id) {
        const Instantiation& inst = cs_.get(id);
        rebuild_env(
            rule, inst.facts,
            [&](FactId f) { return wm.view(f); }, env);
        if (JoinEngine::fact_blocks(fact, neg, env)) {
          cs_.remove(id);
          ++stats_.insts_invalidated;
        }
      });
}

void TreatMatcher::remove_disabled(const WorkingMemory& wm, RuleId rule_id,
                                   int neg_index, FactId fid) {
  const FactView fact = wm.view(fid);
  const CompiledRule& rule = rules_[rule_id];
  const PositionPlan& neg =
      join_.plan(rule_id).negatives[static_cast<std::size_t>(neg_index)];
  std::vector<Value> env;
  quant_.for_candidates(
      cs_, rule_id, static_cast<std::size_t>(neg_index), fact,
      [&](InstId id) {
        const Instantiation& inst = cs_.get(id);
        rebuild_env(
            rule, inst.facts,
            [&](FactId f) { return wm.view(f); }, env);
        // Only instantiations the departed fact witnessed can be
        // affected; they die when no other witness remains.
        if (JoinEngine::fact_blocks(fact, neg, env) &&
            !join_.quantified_satisfied(wm, neg, env)) {
          cs_.remove(id);
          ++stats_.insts_invalidated;
        }
      });
}

void TreatMatcher::rematch_unblocked(const WorkingMemory& wm, RuleId rule,
                                     std::size_t neg_index, FactId pivot) {
  ++stats_.full_rematches;
  join_.enumerate_unblocked(wm, rule, neg_index, wm.view(pivot),
                            join_scratch_,
                            [&](const std::vector<FactId>& facts,
                                std::span<const Value> env) {
                              Instantiation inst;
                              inst.rule = rule;
                              inst.facts = facts;
                              const InstId id = cs_.add(std::move(inst));
                              if (id != kInvalidInst) {
                                ++stats_.insts_derived;
                                quant_.add(rule, id, env);
                              }
                            });
}

}  // namespace parulel
