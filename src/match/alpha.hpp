// Alpha memories: per-pattern fact extents with hash join indexes.
//
// One AlphaMemory per distinct (template, constant tests, intra-pattern
// equalities) pattern shape, shared across rules (classic alpha-network
// sharing). Each memory can carry any number of secondary hash indexes,
// one per distinct join-key slot set required by some rule position —
// this is what turns the TREAT/RETE join inner loops into hash probes.
//
// Memories store dense FactRow handles, not FactIds: rows are 4-byte,
// resolve to slot columns without the id -> row map hop, and preserve
// recency order (row order == id order). Key hashes compose from the
// store's cached per-slot hash column, so routing a fact into N
// memories never rehashes a value.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lang/program.hpp"
#include "support/flat_group_map.hpp"
#include "wm/working_memory.hpp"

namespace parulel {

/// Seed for join-key hashing. Anyone composing a key hash out of cached
/// per-value hashes (the compiled VM, the interpreter's probe path)
/// must start from this seed and use hash_combine, or their probes miss
/// the index.
inline constexpr std::size_t kJoinKeySeed = 0x2545f4914f6cdd1dULL;

/// Hash of a tuple of slot values (the join key).
inline std::size_t join_key_hash(std::span<const Value> values) {
  std::size_t h = kJoinKeySeed;
  for (const Value& v : values) h = hash_combine(h, v.hash());
  return h;
}

/// One alpha memory: alive facts passing an AlphaSpec, plus indexes.
///
/// Join indexes are flat open-addressing tables (key hash -> group of
/// fact rows in insertion order) rather than node-based multimaps: the
/// probe is the innermost operation of every join, and pointer-chasing
/// per candidate dominated match time. Groups persist after emptying,
/// so steady-state churn neither allocates nor rehashes.
class AlphaMemory {
 public:
  /// Ensure an index over `slots` exists; returns its handle.
  /// Call before any facts are inserted (matcher construction time).
  int ensure_index(std::vector<int> slots);

  void insert(const FactView& fact);
  void erase(const FactView& fact);

  bool contains(FactRow row) const {
    return row < pos_.size() && pos_[row] != kNotMember;
  }
  const std::vector<FactRow>& rows() const { return rows_; }
  std::size_t size() const { return rows_.size(); }

  /// Candidate rows whose indexed slots equal `key_values`
  /// (values ordered as the index's slot list). May contain hash-collision
  /// false positives — callers re-verify slot equality. Candidates come
  /// back in alpha-memory insertion order (deterministic).
  void probe(int index_handle, std::span<const Value> key_values,
             std::vector<FactRow>& out) const;

  /// One join-index group: fact rows in insertion order, small sizes
  /// stored inline.
  using Group = FlatGroupMap<FactRow>::Group;

  /// Candidates for a precomputed key hash, appended to `out`.
  void probe_hash(int index_handle, std::size_t hash,
                  std::vector<FactRow>& out) const {
    const Index& index = indexes_[static_cast<std::size_t>(index_handle)];
    if (const Group* g = index.map.find(hash)) {
      out.insert(out.end(), g->begin(), g->end());
    }
  }

  /// Direct view of one index group (no copy, iteration in insertion
  /// order) — the zero-copy probe path both matchers use: memories are
  /// never mutated while a join enumerates, so iterating the group in
  /// place is safe. Nullptr when the key was never inserted.
  const Group* probe_group(int index_handle, std::size_t hash) const {
    return indexes_[static_cast<std::size_t>(index_handle)].map.find(hash);
  }

  /// A probe hit with the group's canonical-key metadata. For a pure
  /// group (every member shares the key-slot values), `rep` is one of
  /// its members: comparing the rep's key slots against the probe key
  /// verifies the whole group at once. `rep` is kNoFactRow when the
  /// group is empty or a 64-bit key collision put distinct value tuples
  /// into one group — callers then re-verify per candidate.
  struct ProbeHit {
    const Group* group = nullptr;  ///< nullptr: key never seen
    FactRow rep = kNoFactRow;      ///< pure-group representative
    const int* rep_slots = nullptr;  ///< the index's key slot list
  };

  ProbeHit probe_group_canon(int index_handle, std::size_t hash) const {
    const Index& index = indexes_[static_cast<std::size_t>(index_handle)];
    const std::size_t gid = index.map.find_group_id(hash);
    if (gid == FlatGroupMap<FactRow>::npos) return {};
    const Group& g = index.map.group(gid);
    const bool pure = index.canon_pure[gid] != 0 && !g.empty();
    return {&g, pure ? *g.begin() : kNoFactRow, index.slots.data()};
  }

  /// The slot list of an index (for computing key values from an env).
  const std::vector<int>& index_slots(int index_handle) const {
    return indexes_[static_cast<std::size_t>(index_handle)].slots;
  }

 private:
  struct Index {
    std::vector<int> slots;
    FlatGroupMap<FactRow> map;  ///< key hash -> rows, insertion order
    /// Flat per-group purity pool: canon_pure[gid] means every member
    /// of group gid shares its key-slot values, so any member serves as
    /// the group's canonical key (probe_group_canon hands out the
    /// first — the values live in the fact store's slot columns, not in
    /// a side copy). Since groups are keyed by the full 64-bit key
    /// hash, impurity means a genuine hash collision between distinct
    /// key tuples — vanishingly rare, but handled: probes then
    /// re-verify per candidate. An emptied group re-canonicalizes on
    /// its next insert.
    std::vector<std::uint8_t> canon_pure;
  };

  static constexpr std::uint32_t kNotMember = 0xffffffffu;

  std::vector<FactRow> rows_;
  /// fact row -> index in rows_, or kNotMember. Direct-indexed by the
  /// dense row handle: rows arrive in increasing order, so the table
  /// grows by amortized appends and membership is one load — the hash
  /// probe this replaces was the top cost of routing a delta.
  std::vector<std::uint32_t> pos_;
  std::vector<Index> indexes_;
};

/// All alpha memories for one rule level (object or meta), with routing
/// from template id to the memories that may accept its facts.
class AlphaStore {
 public:
  AlphaStore(std::span<const AlphaSpec> specs, std::size_t template_count);

  AlphaMemory& memory(std::uint32_t alpha) { return memories_[alpha]; }
  const AlphaMemory& memory(std::uint32_t alpha) const {
    return memories_[alpha];
  }
  const AlphaSpec& spec(std::uint32_t alpha) const { return specs_[alpha]; }
  std::size_t count() const { return memories_.size(); }

  /// Alphas whose spec accepts this fact (template routed, tests applied).
  void matching_alphas(const FactView& fact,
                       std::vector<std::uint32_t>& out) const;

  /// Route a fact into / out of every accepting memory.
  void on_assert(const FactView& fact);
  void on_retract(const FactView& fact);

 private:
  std::vector<AlphaSpec> specs_;
  std::vector<AlphaMemory> memories_;
  std::vector<std::vector<std::uint32_t>> by_template_;
};

}  // namespace parulel
