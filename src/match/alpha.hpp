// Alpha memories: per-pattern fact extents with hash join indexes.
//
// One AlphaMemory per distinct (template, constant tests, intra-pattern
// equalities) pattern shape, shared across rules (classic alpha-network
// sharing). Each memory can carry any number of secondary hash indexes,
// one per distinct join-key slot set required by some rule position —
// this is what turns the TREAT/RETE join inner loops into hash probes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lang/program.hpp"
#include "support/flat_group_map.hpp"
#include "support/flat_id_map.hpp"
#include "wm/working_memory.hpp"

namespace parulel {

/// Seed for join-key hashing. Anyone composing a key hash out of cached
/// per-value hashes (the compiled VM) must start from this seed and use
/// hash_combine, or their probes miss the index.
inline constexpr std::size_t kJoinKeySeed = 0x2545f4914f6cdd1dULL;

/// Hash of a tuple of slot values (the join key).
inline std::size_t join_key_hash(const Fact& fact,
                                 std::span<const int> slots) {
  std::size_t h = kJoinKeySeed;
  for (int s : slots) {
    h = hash_combine(h, fact.slots[static_cast<std::size_t>(s)].hash());
  }
  return h;
}

inline std::size_t join_key_hash(std::span<const Value> values) {
  std::size_t h = kJoinKeySeed;
  for (const Value& v : values) h = hash_combine(h, v.hash());
  return h;
}

/// Per-slot value hashes of one fact, written into `out` — computed
/// once per fact and shared by every accepting memory's indexes (see
/// AlphaMemory::insert_hashed).
inline void fact_slot_hashes(const Fact& fact, std::vector<std::size_t>& out) {
  out.resize(fact.slots.size());
  for (std::size_t s = 0; s < fact.slots.size(); ++s) {
    out[s] = fact.slots[s].hash();
  }
}

/// One alpha memory: alive facts passing an AlphaSpec, plus indexes.
///
/// Join indexes are flat open-addressing tables (key hash -> group of
/// fact ids in insertion order) rather than node-based multimaps: the
/// probe is the innermost operation of every join, and pointer-chasing
/// per candidate dominated match time. Groups persist after emptying,
/// so steady-state churn neither allocates nor rehashes.
class AlphaMemory {
 public:
  /// Ensure an index over `slots` exists; returns its handle.
  /// Call before any facts are inserted (matcher construction time).
  int ensure_index(std::vector<int> slots);

  void insert(const Fact& fact);
  void erase(const Fact& fact);

  /// insert/erase with the fact's per-slot value hashes precomputed by
  /// the caller — one hash pass per fact instead of one per accepting
  /// memory (facts routinely land in several).
  void insert_hashed(const Fact& fact, std::span<const std::size_t> hashes);
  void erase_hashed(const Fact& fact, std::span<const std::size_t> hashes);

  bool contains(FactId id) const { return pos_.contains(id); }
  const std::vector<FactId>& facts() const { return facts_; }
  std::size_t size() const { return facts_.size(); }

  /// Candidate facts whose indexed slots equal `key_values`
  /// (values ordered as the index's slot list). May contain hash-collision
  /// false positives — callers re-verify slot equality. Candidates come
  /// back in alpha-memory insertion order (deterministic).
  void probe(int index_handle, std::span<const Value> key_values,
             std::vector<FactId>& out) const;

  /// One join-index group: fact ids in insertion order, small sizes
  /// stored inline.
  using Group = FlatGroupMap<FactId>::Group;

  /// Candidates for a precomputed key hash, appended to `out`; the
  /// zero-copy variant for callers that cache hashes (the compiled VM).
  void probe_hash(int index_handle, std::size_t hash,
                  std::vector<FactId>& out) const {
    const Index& index = indexes_[static_cast<std::size_t>(index_handle)];
    if (const Group* g = index.map.find(hash)) {
      out.insert(out.end(), g->begin(), g->end());
    }
  }

  /// Direct view of one index group (the compiled VM's probe path: no
  /// copy, iteration in insertion order). Nullptr when the key was
  /// never inserted.
  const Group* probe_group(int index_handle, std::size_t hash) const {
    return indexes_[static_cast<std::size_t>(index_handle)].map.find(hash);
  }

  /// A probe hit with the group's canonical-key metadata. `canon`
  /// points at the key-slot values (index slot order) shared by every
  /// group member, or is nullptr when a 64-bit key collision put
  /// distinct value tuples into one group and callers must re-verify
  /// per candidate.
  struct ProbeHit {
    const Group* group = nullptr;  ///< nullptr: key never seen
    const Value* canon = nullptr;
  };

  ProbeHit probe_group_canon(int index_handle, std::size_t hash) const {
    const Index& index = indexes_[static_cast<std::size_t>(index_handle)];
    const std::size_t gid = index.map.find_group_id(hash);
    if (gid == FlatGroupMap<FactId>::npos) return {};
    return {&index.map.group(gid),
            index.canon_pure[gid]
                ? index.canon_vals.data() + gid * index.slots.size()
                : nullptr};
  }

  /// The slot list of an index (for computing key values from an env).
  const std::vector<int>& index_slots(int index_handle) const {
    return indexes_[static_cast<std::size_t>(index_handle)].slots;
  }

 private:
  struct Index {
    std::vector<int> slots;
    FlatGroupMap<FactId> map;  ///< key hash -> facts, insertion order
    /// Canonical-key cache, one stride of `slots.size()` values per
    /// group id: the key-slot values every member of group gid shares,
    /// valid while canon_pure[gid]. Since groups are keyed by the full
    /// 64-bit key hash, impurity means a genuine hash collision between
    /// distinct key tuples — vanishingly rare, but handled: probes then
    /// re-verify per candidate. An emptied group re-canonicalizes on
    /// its next insert. Flat pools, not per-group vectors, so canon
    /// maintenance never allocates per group.
    std::vector<Value> canon_vals;
    std::vector<std::uint8_t> canon_pure;
  };

  std::vector<FactId> facts_;
  FlatIdMap<std::uint32_t> pos_;  ///< fact id -> index in facts_
  std::vector<Index> indexes_;
  std::vector<std::size_t> hash_scratch_;  ///< per-slot value hashes
};

/// All alpha memories for one rule level (object or meta), with routing
/// from template id to the memories that may accept its facts.
class AlphaStore {
 public:
  AlphaStore(std::span<const AlphaSpec> specs, std::size_t template_count);

  AlphaMemory& memory(std::uint32_t alpha) { return memories_[alpha]; }
  const AlphaMemory& memory(std::uint32_t alpha) const {
    return memories_[alpha];
  }
  const AlphaSpec& spec(std::uint32_t alpha) const { return specs_[alpha]; }
  std::size_t count() const { return memories_.size(); }

  /// Alphas whose spec accepts this fact (template routed, tests applied).
  void matching_alphas(const Fact& fact, std::vector<std::uint32_t>& out) const;

  /// Route a fact into / out of every accepting memory.
  void on_assert(const Fact& fact);
  void on_retract(const Fact& fact);

 private:
  std::vector<AlphaSpec> specs_;
  std::vector<AlphaMemory> memories_;
  std::vector<std::vector<std::uint32_t>> by_template_;
  std::vector<std::size_t> hash_scratch_;  ///< per-slot value hashes
};

}  // namespace parulel
