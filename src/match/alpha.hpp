// Alpha memories: per-pattern fact extents with hash join indexes.
//
// One AlphaMemory per distinct (template, constant tests, intra-pattern
// equalities) pattern shape, shared across rules (classic alpha-network
// sharing). Each memory can carry any number of secondary hash indexes,
// one per distinct join-key slot set required by some rule position —
// this is what turns the TREAT/RETE join inner loops into hash probes.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "lang/program.hpp"
#include "wm/working_memory.hpp"

namespace parulel {

/// Hash of a tuple of slot values (the join key).
inline std::size_t join_key_hash(const Fact& fact,
                                 std::span<const int> slots) {
  std::size_t h = 0x2545f4914f6cdd1dULL;
  for (int s : slots) {
    h = hash_combine(h, fact.slots[static_cast<std::size_t>(s)].hash());
  }
  return h;
}

inline std::size_t join_key_hash(std::span<const Value> values) {
  std::size_t h = 0x2545f4914f6cdd1dULL;
  for (const Value& v : values) h = hash_combine(h, v.hash());
  return h;
}

/// One alpha memory: alive facts passing an AlphaSpec, plus indexes.
class AlphaMemory {
 public:
  /// Ensure an index over `slots` exists; returns its handle.
  /// Call before any facts are inserted (matcher construction time).
  int ensure_index(std::vector<int> slots);

  void insert(const Fact& fact);
  void erase(const Fact& fact);

  bool contains(FactId id) const { return pos_.contains(id); }
  const std::vector<FactId>& facts() const { return facts_; }
  std::size_t size() const { return facts_.size(); }

  /// Candidate facts whose indexed slots equal `key_values`
  /// (values ordered as the index's slot list). May contain hash-collision
  /// false positives — callers re-verify slot equality.
  void probe(int index_handle, std::span<const Value> key_values,
             std::vector<FactId>& out) const;

  /// The slot list of an index (for computing key values from an env).
  const std::vector<int>& index_slots(int index_handle) const {
    return indexes_[static_cast<std::size_t>(index_handle)].slots;
  }

 private:
  struct Index {
    std::vector<int> slots;
    std::unordered_multimap<std::size_t, FactId> map;
  };

  std::vector<FactId> facts_;
  std::unordered_map<FactId, std::size_t> pos_;
  std::vector<Index> indexes_;
};

/// All alpha memories for one rule level (object or meta), with routing
/// from template id to the memories that may accept its facts.
class AlphaStore {
 public:
  AlphaStore(std::span<const AlphaSpec> specs, std::size_t template_count);

  AlphaMemory& memory(std::uint32_t alpha) { return memories_[alpha]; }
  const AlphaMemory& memory(std::uint32_t alpha) const {
    return memories_[alpha];
  }
  const AlphaSpec& spec(std::uint32_t alpha) const { return specs_[alpha]; }
  std::size_t count() const { return memories_.size(); }

  /// Alphas whose spec accepts this fact (template routed, tests applied).
  void matching_alphas(const Fact& fact, std::vector<std::uint32_t>& out) const;

  /// Route a fact into / out of every accepting memory.
  void on_assert(const Fact& fact);
  void on_retract(const Fact& fact);

 private:
  std::vector<AlphaSpec> specs_;
  std::vector<AlphaMemory> memories_;
  std::vector<std::vector<std::uint32_t>> by_template_;
};

}  // namespace parulel
