// TREAT matcher: no beta memories, conflict set maintained seminaively.
//
// Per delta:
//   1. update alpha memories (removals + additions);
//   2. remove conflict-set entries containing removed facts;
//   3. rules whose *negated* alpha lost a fact are fully re-enumerated
//      (removal of a blocker can enable matches; TREAT has no stored
//      join state to localize this, so we recompute that rule — dedup
//      and refraction in ConflictSet make this safe);
//   4. for each added fact and each (rule, position) whose alpha accepts
//      it, derive the new instantiations with that position fixed;
//   5. for each added fact matching a negated alpha, remove pre-existing
//      instantiations it now blocks.
#pragma once

#include <memory>
#include <span>

#include "match/join.hpp"
#include "match/matcher.hpp"
#include "match/quant_index.hpp"

namespace parulel {

class TreatMatcher : public Matcher {
 public:
  /// `rules` and `alpha_specs` must outlive the matcher (they live in the
  /// Program). Works for object rules and, with the meta schema's specs,
  /// for meta rules too — the meta engine instantiates one of these.
  TreatMatcher(std::span<const CompiledRule> rules,
               std::span<const AlphaSpec> alpha_specs,
               std::size_t template_count);

  void apply_delta(const WorkingMemory& wm, const Delta& delta) override;
  ConflictSet& conflict_set() override { return cs_; }
  const MatchStats& stats() const override { return stats_; }
  const char* name() const override { return "treat"; }

 protected:
  MatchStats& stats_mut() override { return stats_; }

 private:
  void derive_for_added(const WorkingMemory& wm, FactId fid,
                        std::span<const std::uint32_t> hit);
  /// A fact entered a (not ...) alpha: drop the instantiations it blocks.
  void remove_blocked(const WorkingMemory& wm, RuleId rule, int neg_index,
                      FactId fid);
  /// A fact left an (exists ...) alpha: drop instantiations whose CE is
  /// no longer satisfied.
  void remove_disabled(const WorkingMemory& wm, RuleId rule, int neg_index,
                       FactId fid);
  /// A (not ...) blocker left / an (exists ...) witness arrived:
  /// constrained re-derivation pinned to the fact's join key.
  void rematch_unblocked(const WorkingMemory& wm, RuleId rule,
                         std::size_t neg_index, FactId pivot);

  std::span<const CompiledRule> rules_;
  AlphaStore alphas_;
  JoinEngine join_;
  ConflictSet cs_;
  QuantIndex quant_;
  MatchStats stats_;

  // (rule, position) lists per alpha id, positive and negative.
  struct AlphaUse {
    RuleId rule;
    int position;
  };
  std::vector<std::vector<AlphaUse>> positive_uses_;
  std::vector<std::vector<AlphaUse>> negative_uses_;
  std::vector<std::uint32_t> scratch_alphas_;
  // Per-delta flat (fact -> accepting alphas) lists: the alpha tests run
  // once per added fact, then steps 3 and 4 replay the hit lists.
  std::vector<std::uint32_t> added_alphas_;
  std::vector<std::size_t> added_offsets_;
  JoinScratch join_scratch_;
};

}  // namespace parulel
