// RETE matcher: classic beta-memory network, sequential.
//
// Topology per rule: a linear chain of beta memories (memory p holds
// partial matches of positive positions 0..p), hash-joined against the
// shared alpha memories, followed by a *negation gate* that holds one
// blocker counter per negated CE for every full positive match. Alpha
// memories are shared across rules and with the TREAT matchers; beta
// state is per rule (no inter-rule beta sharing — alpha sharing is where
// most practical systems get their wins).
//
// The negation gate replaces the textbook chain of negative nodes: since
// this dialect's negated CEs bind no new variables and are checked after
// all positives, one gate with per-CE counters is equivalent and much
// simpler to keep incremental.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "match/alpha.hpp"
#include "match/join.hpp"
#include "match/matcher.hpp"

namespace parulel {

class ReteMatcher : public Matcher {
 public:
  ReteMatcher(std::span<const CompiledRule> rules,
              std::span<const AlphaSpec> alpha_specs,
              std::size_t template_count);

  void apply_delta(const WorkingMemory& wm, const Delta& delta) override;
  ConflictSet& conflict_set() override { return cs_; }
  const MatchStats& stats() const override { return stats_; }
  const char* name() const override { return "rete"; }

  /// Total beta tokens currently resident (for memory benches).
  std::size_t token_count() const;

 protected:
  MatchStats& stats_mut() override { return stats_; }

 private:
  using TokenId = std::uint32_t;

  static constexpr std::size_t kNoKey = static_cast<std::size_t>(-1);

  struct Token {
    std::vector<FactId> facts;
    std::vector<Value> env;
    // Hash this token is registered under in its memory's by_key
    // (kNoKey when not registered — last-position memories).
    std::size_t key_hash = kNoKey;
    // Negation gate extras (unused in plain beta memories).
    std::vector<std::size_t> neg_keys;
    std::vector<int> neg_counts;
    int blocked = 0;
    bool alive = false;
  };

  /// Beta memory p for some rule; also used as the negation gate store.
  struct BetaMemory {
    std::vector<Token> tokens;      // slot-stable; freed ids reused
    std::vector<TokenId> free_list;
    std::size_t alive_count = 0;
    // Key index for the *downstream* consumer (join p+1 or a negative
    // pattern); hash of selected env values -> token.
    std::unordered_multimap<std::size_t, TokenId> by_key;
    std::unordered_multimap<FactId, TokenId> by_fact;

    TokenId insert(Token token);
    void erase(TokenId id);
  };

  struct RuleNet {
    std::vector<BetaMemory> memories;  // one per positive position
    BetaMemory gate;                   // full matches w/ negation counters
    bool has_negatives = false;
    // Per-negative key index over gate tokens: hash of the token env's
    // join-key values -> gate token id.
    std::vector<std::unordered_multimap<std::size_t, TokenId>> gate_neg_index;
  };

  void assert_one(const WorkingMemory& wm, const FactView& fact);
  void retract_one(const WorkingMemory& wm, const FactView& fact);

  /// Token formed at position p; store and cascade to p+1 / gate.
  void emit_token(const WorkingMemory& wm, RuleId rule, std::size_t p,
                  Token token);

  /// Hash of env values for the join key of consumer position p
  /// (positives) — what by_key of memory p-1 is keyed on.
  std::size_t left_key_hash(RuleId rule, std::size_t consumer_pos,
                            std::span<const Value> env) const;
  /// Hash of a right-side fact for consumer position p.
  std::size_t right_key_hash(RuleId rule, std::size_t consumer_pos,
                             const FactView& fact) const;

  /// Gate-side: key hash for negative pattern n of rule.
  std::size_t neg_key_hash_env(RuleId rule, std::size_t n,
                               std::span<const Value> env) const;
  std::size_t neg_key_hash_fact(RuleId rule, std::size_t n,
                                const FactView& fact) const;

  void arrive_at_gate(const WorkingMemory& wm, RuleId rule, Token token);
  void gate_neg_assert(RuleId rule, std::size_t n, const FactView& fact);
  void gate_neg_retract(RuleId rule, std::size_t n, const FactView& fact);

  void production_add(RuleId rule, const Token& token);
  void production_remove(RuleId rule, const Token& token);

  std::span<const CompiledRule> rules_;
  AlphaStore alphas_;
  // Reuses the TREAT position plans for join keys/tests (alpha indexes
  // are registered by the same code path).
  std::vector<RulePlan> plans_;
  std::vector<RuleNet> nets_;
  ConflictSet cs_;
  MatchStats stats_;

  struct AlphaUse {
    RuleId rule;
    int position;
  };
  std::vector<std::vector<AlphaUse>> positive_uses_;
  std::vector<std::vector<AlphaUse>> negative_uses_;
  std::vector<std::uint32_t> scratch_alphas_;
};

}  // namespace parulel
