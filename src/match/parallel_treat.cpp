#include "match/parallel_treat.hpp"

#include <algorithm>

namespace parulel {

ParallelTreatMatcher::ParallelTreatMatcher(
    std::span<const CompiledRule> rules,
    std::span<const AlphaSpec> alpha_specs, std::size_t template_count,
    ThreadPool& pool)
    : rules_(rules),
      alphas_(alpha_specs, template_count),
      join_(rules, alphas_),
      quant_(rules, join_.plans()),
      pool_(pool),
      positive_uses_(alpha_specs.size()),
      negative_uses_(alpha_specs.size()) {
  for (RuleId r = 0; r < rules_.size(); ++r) {
    const CompiledRule& rule = rules_[r];
    for (std::size_t p = 0; p < rule.positives.size(); ++p) {
      positive_uses_[rule.positives[p].alpha].push_back(
          {r, static_cast<int>(p)});
    }
    for (std::size_t n = 0; n < rule.negatives.size(); ++n) {
      negative_uses_[rule.negatives[n].alpha].push_back(
          {r, static_cast<int>(n)});
    }
  }
}

void ParallelTreatMatcher::apply_delta(const WorkingMemory& wm,
                                       const Delta& delta) {
  ++stats_.deltas_processed;

  struct QuantEvent {
    RuleId rule;
    int neg;
    FactId fact;
  };
  std::vector<QuantEvent> unblocks;
  std::vector<QuantEvent> disables;

  // Sequential prologue: removals.
  for (FactId fid : delta.removed) {
    const FactView fact = wm.view(fid);
    alphas_.matching_alphas(fact, scratch_alphas_);
    stats_.alpha_activations += scratch_alphas_.size();
    for (std::uint32_t a : scratch_alphas_) {
      for (const AlphaUse& use : negative_uses_[a]) {
        const bool exists =
            rules_[use.rule].negatives[static_cast<std::size_t>(use.position)]
                .exists;
        if (exists) {
          disables.push_back({use.rule, use.position, fid});
        } else {
          unblocks.push_back({use.rule, use.position, fid});
        }
      }
      alphas_.memory(a).erase(fact);
    }
    std::vector<InstId> removed;
    cs_.remove_by_fact(fid, &removed);
    stats_.insts_invalidated += removed.size();
  }

  // Additions into alpha memories (must complete before the fan-out).
  // The alpha tests run once per fact here; the recorded hit lists are
  // shared read-only with the quantifier pass and the derivation jobs.
  added_alphas_.clear();
  added_offsets_.clear();
  for (FactId fid : delta.added) {
    const FactView fact = wm.view(fid);
    alphas_.matching_alphas(fact, scratch_alphas_);
    stats_.alpha_activations += scratch_alphas_.size();
    added_offsets_.push_back(added_alphas_.size());
    for (std::uint32_t a : scratch_alphas_) {
      alphas_.memory(a).insert(fact);
      added_alphas_.push_back(a);
    }
  }
  added_offsets_.push_back(added_alphas_.size());

  // Quantified-CE maintenance over pre-existing instantiations (new
  // ones are derived against post-delta alphas). Sequential: scans CS.
  {
    std::vector<Value> env;
    for (std::size_t i = 0; i < delta.added.size(); ++i) {
      const FactId fid = delta.added[i];
      const FactView fact = wm.view(fid);
      for (std::size_t j = added_offsets_[i]; j < added_offsets_[i + 1];
           ++j) {
        const std::uint32_t a = added_alphas_[j];
        for (const AlphaUse& use : negative_uses_[a]) {
          const CompiledRule& rule = rules_[use.rule];
          const std::size_t n = static_cast<std::size_t>(use.position);
          if (rule.negatives[n].exists) {
            // New witness: may enable instantiations.
            unblocks.push_back({use.rule, use.position, fid});
            continue;
          }
          const PositionPlan& neg = join_.plan(use.rule).negatives[n];
          quant_.for_candidates(
              cs_, use.rule, n, fact, [&](InstId id) {
                const Instantiation& inst = cs_.get(id);
                rebuild_env(
                    rule, inst.facts,
                    [&](FactId f) { return wm.view(f); }, env);
                if (JoinEngine::fact_blocks(fact, neg, env)) {
                  cs_.remove(id);
                  ++stats_.insts_invalidated;
                }
              });
        }
      }
    }
    // Departed (exists ...) witnesses.
    for (const auto& d : disables) {
      const FactView fact = wm.view(d.fact);
      const CompiledRule& rule = rules_[d.rule];
      const PositionPlan& neg =
          join_.plan(d.rule).negatives[static_cast<std::size_t>(d.neg)];
      quant_.for_candidates(
          cs_, d.rule, static_cast<std::size_t>(d.neg), fact,
          [&](InstId id) {
            const Instantiation& inst = cs_.get(id);
            rebuild_env(
                rule, inst.facts,
                [&](FactId f) { return wm.view(f); }, env);
            if (JoinEngine::fact_blocks(fact, neg, env) &&
                !join_.quantified_satisfied(wm, neg, env)) {
              cs_.remove(id);
              ++stats_.insts_invalidated;
            }
          });
    }
  }

  // Parallel fan-out: derivation tasks. Work unit = (added-fact chunk x
  // matching (rule, position)). We enumerate the task list
  // deterministically: chunk facts, then within a task walk facts in
  // order.
  const std::size_t n_added = delta.added.size();
  std::vector<std::vector<Instantiation>> task_out;
  if (n_added > 0) {
    const std::size_t target_tasks =
        std::max<std::size_t>(1, pool_.thread_count() * 4ull);
    const std::size_t chunk =
        std::max<std::size_t>(1, (n_added + target_tasks - 1) / target_tasks);
    const std::size_t n_chunks = (n_added + chunk - 1) / chunk;
    task_out.resize(n_chunks);

    std::vector<std::function<void(unsigned)>> jobs;
    jobs.reserve(n_chunks);
    for (std::size_t c = 0; c < n_chunks; ++c) {
      const std::size_t lo = c * chunk;
      const std::size_t hi = std::min(n_added, lo + chunk);
      jobs.push_back([this, &wm, &delta, &task_out, c, lo, hi](unsigned) {
        // The prologue recorded each fact's accepting alphas; jobs only
        // read them, so no alpha test re-runs in the parallel phase.
        JoinScratch scratch;
        auto& out = task_out[c];
        for (std::size_t i = lo; i < hi; ++i) {
          const FactId fid = delta.added[i];
          for (std::size_t j = added_offsets_[i]; j < added_offsets_[i + 1];
               ++j) {
            for (const AlphaUse& use : positive_uses_[added_alphas_[j]]) {
              join_.derive(wm, use.rule, use.position, fid, scratch,
                              [&](const std::vector<FactId>& facts,
                                  std::span<const Value>) {
                                Instantiation inst;
                                inst.rule = use.rule;
                                inst.facts = facts;
                                out.push_back(std::move(inst));
                              });
            }
          }
        }
      });
    }
    pool_.run_batch(jobs);
  }

  // Deterministic merge in task order (dedup + refraction in cs_.add).
  {
    std::vector<Value> env;
    for (auto& buffer : task_out) {
      for (auto& inst : buffer) {
        const RuleId rule = inst.rule;
        const std::vector<FactId> facts = inst.facts;
        const InstId id = cs_.add(std::move(inst));
        if (id != kInvalidInst) {
          ++stats_.insts_derived;
          if (!rules_[rule].negatives.empty()) {
            rebuild_env(
                rules_[rule], facts,
                [&](FactId f) { return wm.view(f); }, env);
            quant_.add(rule, id, env);
          }
        }
      }
    }
  }

  // Constrained re-derivations for retracted negated-CE blockers; these
  // parallelize per (rule, blocker), chunked like the derivations.
  if (!unblocks.empty()) {
    const std::size_t target_tasks =
        std::max<std::size_t>(1, pool_.thread_count() * 4ull);
    const std::size_t chunk = std::max<std::size_t>(
        1, (unblocks.size() + target_tasks - 1) / target_tasks);
    const std::size_t n_chunks = (unblocks.size() + chunk - 1) / chunk;
    std::vector<std::vector<Instantiation>> rematch_out(n_chunks);
    std::vector<std::function<void(unsigned)>> jobs;
    jobs.reserve(n_chunks);
    for (std::size_t c = 0; c < n_chunks; ++c) {
      const std::size_t lo = c * chunk;
      const std::size_t hi = std::min(unblocks.size(), lo + chunk);
      jobs.push_back([this, &wm, &unblocks, &rematch_out, c, lo,
                      hi](unsigned) {
        JoinScratch scratch;
        for (std::size_t i = lo; i < hi; ++i) {
          const auto& u = unblocks[i];
          join_.enumerate_unblocked(
              wm, u.rule, static_cast<std::size_t>(u.neg), wm.view(u.fact),
              scratch,
              [&](const std::vector<FactId>& facts, std::span<const Value>) {
                Instantiation inst;
                inst.rule = u.rule;
                inst.facts = facts;
                rematch_out[c].push_back(std::move(inst));
              });
        }
      });
    }
    pool_.run_batch(jobs);
    stats_.full_rematches += unblocks.size();
    std::vector<Value> env;
    for (auto& buffer : rematch_out) {
      for (auto& inst : buffer) {
        const RuleId rule = inst.rule;
        const std::vector<FactId> facts = inst.facts;
        const InstId id = cs_.add(std::move(inst));
        if (id != kInvalidInst) {
          ++stats_.insts_derived;
          rebuild_env(
              rules_[rule], facts,
              [&](FactId f) { return wm.view(f); }, env);
          quant_.add(rule, id, env);
        }
      }
    }
  }

  stats_.state_entries = cs_.size();
}

}  // namespace parulel
