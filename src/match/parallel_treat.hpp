// Rule- and data-parallel TREAT matcher.
//
// The sequential TREAT steps decompose cleanly:
//   - alpha updates and conflict-set invalidation are cheap and stay on
//     the driving thread;
//   - the expensive step — seminaive derivation of new instantiations —
//     fans out as (rule, delta-chunk) tasks over the thread pool. Each
//     task only *reads* (working memory tombstone storage and the frozen
//     alpha memories) and writes into its own buffer, so there is no
//     shared mutable state during the parallel phase (CP.3);
//   - buffers merge into the conflict set on the driving thread in task
//     order, which makes instantiation ids — and therefore everything
//     downstream — deterministic for a given delta sequence.
#pragma once

#include <memory>
#include <span>

#include "match/join.hpp"
#include "match/matcher.hpp"
#include "match/quant_index.hpp"
#include "runtime/thread_pool.hpp"

namespace parulel {

class ParallelTreatMatcher : public Matcher {
 public:
  ParallelTreatMatcher(std::span<const CompiledRule> rules,
                       std::span<const AlphaSpec> alpha_specs,
                       std::size_t template_count, ThreadPool& pool);

  void apply_delta(const WorkingMemory& wm, const Delta& delta) override;
  ConflictSet& conflict_set() override { return cs_; }
  const MatchStats& stats() const override { return stats_; }
  const char* name() const override { return "parallel-treat"; }

 protected:
  MatchStats& stats_mut() override { return stats_; }

 private:
  struct AlphaUse {
    RuleId rule;
    int position;
  };

  std::span<const CompiledRule> rules_;
  AlphaStore alphas_;
  JoinEngine join_;
  ConflictSet cs_;
  QuantIndex quant_;
  MatchStats stats_;
  ThreadPool& pool_;

  std::vector<std::vector<AlphaUse>> positive_uses_;
  std::vector<std::vector<AlphaUse>> negative_uses_;
  std::vector<std::uint32_t> scratch_alphas_;
  // Per-delta flat (fact -> accepting alphas) lists, built in the
  // sequential prologue and read-only during the parallel fan-out.
  std::vector<std::uint32_t> added_alphas_;
  std::vector<std::size_t> added_offsets_;
};

}  // namespace parulel
