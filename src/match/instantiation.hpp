// Instantiations: one satisfied rule match.
#pragma once

#include <cstdint>
#include <vector>

#include "lang/program.hpp"
#include "wm/fact.hpp"

namespace parulel {

/// Dense id of an instantiation within a ConflictSet. Monotone across a
/// run; ids are the deterministic firing / tie-break order.
using InstId = std::uint64_t;
constexpr InstId kInvalidInst = static_cast<InstId>(-1);

/// A rule paired with one fact per positive CE (in join order). The
/// binding environment is not stored — it is cheap to rebuild from the
/// facts via the patterns' `defines` lists, and omitting it keeps large
/// conflict sets compact.
struct Instantiation {
  RuleId rule = 0;
  std::vector<FactId> facts;
  InstId id = kInvalidInst;

  /// Structural key (rule + facts); the id does not participate, so a
  /// regenerated match of the same facts dedupes/refracts correctly.
  std::size_t key_hash() const {
    std::size_t h = std::hash<std::uint32_t>{}(rule);
    for (FactId f : facts) h = hash_combine(h, std::hash<std::uint64_t>{}(f));
    return h;
  }

  bool same_key(const Instantiation& other) const {
    return rule == other.rule && facts == other.facts;
  }
};

/// Rebuild the LHS binding environment of an instantiation from its
/// matched facts. `fact_of` maps FactId -> a fact view (usually
/// WorkingMemory::view, which serves tombstoned facts too). `env` is
/// resized to rule.num_vars (RHS bind slots default-initialized).
template <typename FactLookup>
void rebuild_env(const CompiledRule& rule, const std::vector<FactId>& facts,
                 const FactLookup& fact_of, std::vector<Value>& env) {
  env.assign(static_cast<std::size_t>(rule.num_vars), Value{});
  for (std::size_t p = 0; p < rule.positives.size(); ++p) {
    const auto fact = fact_of(facts[p]);
    for (const auto& def : rule.positives[p].defines) {
      env[static_cast<std::size_t>(def.var)] =
          fact.slot(static_cast<std::size_t>(def.slot));
    }
  }
}

}  // namespace parulel
