// The conflict set: all currently satisfied, not-yet-fired instantiations.
//
// Shared by every matcher. Also owns refraction memory: once an
// instantiation fires, its structural key is remembered and re-additions
// are rejected, so looping on unchanged matches is impossible (OPS5
// refraction, which PARULEL keeps).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "support/flat_group_map.hpp"
#include "match/instantiation.hpp"

namespace parulel {

class ConflictSet {
 public:
  /// Add an instantiation unless (a) an identical key is already present
  /// or (b) it has already fired (refraction). Assigns inst.id on
  /// success. Returns the id, or kInvalidInst when rejected.
  InstId add(Instantiation inst);

  /// Remove one instantiation by id. No-op on unknown/dead ids.
  void remove(InstId id);

  /// Remove the alive instantiation with this structural key, if any.
  /// Returns whether one was removed.
  bool remove_by_key(const Instantiation& probe);

  /// Remove every instantiation whose fact vector contains `fact`.
  /// Appends the removed ids to `removed_out` when non-null.
  void remove_by_fact(FactId fact, std::vector<InstId>* removed_out = nullptr);

  /// Mark an instantiation as fired: removes it and records refraction.
  void mark_fired(InstId id);

  /// Would this key be rejected by refraction?
  bool has_fired(const Instantiation& inst) const;

  bool alive(InstId id) const;
  const Instantiation& get(InstId id) const;

  std::size_t size() const { return alive_count_; }
  bool empty() const { return alive_count_ == 0; }

  /// Iterate alive instantiations in ascending id order (deterministic).
  void for_each(const std::function<void(const Instantiation&)>& fn) const;

  /// Alive instantiation ids of one rule, ascending.
  std::vector<InstId> of_rule(RuleId rule) const;

  /// Snapshot of alive ids in ascending order.
  std::vector<InstId> alive_ids() const;

  /// Total instantiations ever added (ids are [0, high_water)).
  InstId high_water() const { return static_cast<InstId>(insts_.size()); }

  /// Drop refraction memory (used between independent runs on one set).
  void clear_refraction() { fired_.clear(); }

 private:
  struct KeyRef {
    std::size_t hash;
    InstId id;
  };

  // Dense storage; dead entries keep their slot (ids stay stable).
  std::vector<Instantiation> insts_;
  std::vector<bool> alive_;
  std::size_t alive_count_ = 0;

  // Structural key -> alive inst (bucket by hash, verify by same_key).
  FlatGroupMap<InstId> by_key_;
  // Fired keys for refraction: hash -> representative instantiation copy.
  std::unordered_multimap<std::size_t, Instantiation> fired_;
  // fact -> alive inst ids containing it.
  FlatGroupMap<InstId> by_fact_;
  // rule -> alive inst ids (lazily compacted).
  std::vector<std::vector<InstId>> by_rule_;
  mutable std::vector<InstId> scratch_rule_;
};

}  // namespace parulel
