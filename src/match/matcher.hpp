// Matcher interface: incremental maintenance of the conflict set.
//
// Engines drive matchers with working-memory deltas; matchers keep the
// conflict set exactly equal to the set of currently satisfied, not-yet-
// fired instantiations. Three implementations:
//   TreatMatcher          — sequential TREAT (no beta memories)
//   ReteMatcher           — sequential RETE (beta memories, classic)
//   ParallelTreatMatcher  — TREAT with rule x delta-chunk parallelism
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>

#include "match/conflict_set.hpp"
#include "wm/working_memory.hpp"

namespace parulel {

class ThreadPool;
struct Program;
struct CompileStats;

/// Which match algorithm to construct. The single source of truth for
/// the string spelling is matcher_kind_name()/parse_matcher_kind();
/// construction goes through make_matcher() below — engines, the CLI,
/// the service layer, benches, and tests all share one switch.
enum class MatcherKind : std::uint8_t { Rete, Treat, ParallelTreat, Compiled };

/// Stable export/CLI name: "rete", "treat", "parallel-treat", "compiled".
const char* matcher_kind_name(MatcherKind kind);

/// Inverse of matcher_kind_name(); nullopt for unknown spellings.
std::optional<MatcherKind> parse_matcher_kind(std::string_view name);

/// Every constructible kind, in a stable order. Benches and CLI help
/// iterate this so a new matcher kind propagates everywhere for free.
std::span<const MatcherKind> all_matcher_kinds();

/// Matcher-side counters (for the match-algorithm comparison benches
/// and the obs layer's per-cycle trace events).
struct MatchStats {
  std::uint64_t deltas_processed = 0;
  std::uint64_t insts_derived = 0;
  std::uint64_t insts_invalidated = 0;
  std::uint64_t alpha_activations = 0;  ///< fact x alpha-memory routing events
  std::uint64_t full_rematches = 0;   ///< TREAT negative-retract fallbacks
  std::uint64_t tokens_created = 0;   ///< RETE only
  std::uint64_t tokens_deleted = 0;   ///< RETE only

  /// Approximate resident state in entries (beta tokens or conflict set).
  std::uint64_t state_entries = 0;

  /// Nanoseconds spent on shared alpha-memory upkeep for added facts
  /// (discrimination routing + memory insertion). This code path is
  /// identical across engines, so wall time minus upkeep isolates an
  /// engine's own match work — the number the T6 bench compares.
  /// Stays 0 for engines that don't report the split (RETE interleaves
  /// token building with insertion).
  std::uint64_t alpha_upkeep_ns = 0;

  /// Externally injected batches folded in via apply_external_delta
  /// (service layer). Stays 0 on pure batch runs; on a retained session
  /// it counts one per ingested batch while the network itself is never
  /// rebuilt.
  std::uint64_t external_deltas = 0;
};

class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Fold one WM delta into the conflict set. The engine guarantees the
  /// delta's removed facts are still readable via wm.view() (tombstones).
  virtual void apply_delta(const WorkingMemory& wm, const Delta& delta) = 0;

  /// Fold a delta injected from OUTSIDE the recognize-act loop — the
  /// service layer's incremental batch ingestion (src/service/). The
  /// match work is identical to apply_delta; the separate entry point
  /// counts external batches so tests can prove a retained network is
  /// being reused across batches instead of rebuilt.
  void apply_external_delta(const WorkingMemory& wm, const Delta& delta) {
    apply_delta(wm, delta);
    ++stats_mut().external_deltas;
  }

  virtual ConflictSet& conflict_set() = 0;
  const ConflictSet& conflict_set() const {
    return const_cast<Matcher*>(this)->conflict_set();
  }

  virtual const MatchStats& stats() const = 0;
  virtual const char* name() const = 0;

  /// Rule-compiler counters, non-null only for the compiled matcher
  /// (engines publish them under "compile." when present).
  virtual const CompileStats* compile_stats() const { return nullptr; }

 protected:
  /// Mutable counter access for the base-class external-delta hook.
  virtual MatchStats& stats_mut() = 0;
};

/// Construct a matcher over `program`'s object-level rules and alphas.
/// ParallelTreat requires `pool` (it fans derivation out as fork-join
/// batches); the other kinds ignore it. Throws RuntimeError when
/// ParallelTreat is requested without a pool. `program` (and `pool`,
/// when used) must outlive the matcher.
std::unique_ptr<Matcher> make_matcher(MatcherKind kind,
                                      const Program& program,
                                      ThreadPool* pool = nullptr);

}  // namespace parulel
