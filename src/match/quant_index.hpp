// Index from quantified-CE join keys to instantiations.
//
// When a fact enters a (not ...) alpha or leaves an (exists ...) alpha,
// the matcher must find the conflict-set instantiations it affects.
// Scanning the rule's whole instantiation list is O(|CS|) per delta fact
// — quadratic on saturation workloads. This index maps, per (rule,
// quantified CE), the hash of an instantiation's join-key values to the
// instantiation, so the affected set is a hash probe.
//
// Entries are append-only and lazily pruned: probes skip (and erase)
// instantiations the conflict set no longer holds alive, so the matcher
// never needs removal hooks.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "match/conflict_set.hpp"
#include "match/join.hpp"

namespace parulel {

class QuantIndex {
 public:
  QuantIndex(std::span<const CompiledRule> rules,
             const std::vector<RulePlan>& plans)
      : rules_(rules), plans_(plans) {
    maps_.resize(rules.size());
    for (std::size_t r = 0; r < rules.size(); ++r) {
      maps_[r].resize(rules[r].negatives.size());
    }
  }

  /// Register a freshly added instantiation under every quantified CE's
  /// key. `env` is the instantiation's LHS environment.
  void add(RuleId rule, InstId id, std::span<const Value> env) {
    const RulePlan& plan = plans_[rule];
    for (std::size_t n = 0; n < plan.negatives.size(); ++n) {
      maps_[rule][n].emplace(key_of_env(plan.negatives[n], env), id);
    }
  }

  /// Visit alive instantiations of `rule` whose quantified CE `n` keys
  /// match `fact` (hash candidates; the caller still verifies
  /// fact_blocks). Dead entries are pruned in passing.
  template <typename Fn>
  void for_candidates(const ConflictSet& cs, RuleId rule, std::size_t n,
                      const FactView& fact, Fn&& fn) {
    auto& map = maps_[rule][n];
    const std::size_t key = key_of_fact(plans_[rule].negatives[n], fact);
    auto [lo, hi] = map.equal_range(key);
    for (auto it = lo; it != hi;) {
      if (!cs.alive(it->second)) {
        it = map.erase(it);
        continue;
      }
      fn(it->second);
      ++it;
    }
  }

  std::size_t entries() const {
    std::size_t total = 0;
    for (const auto& per_rule : maps_) {
      for (const auto& map : per_rule) total += map.size();
    }
    return total;
  }

 private:
  static std::size_t key_of_env(const PositionPlan& neg,
                                std::span<const Value> env) {
    std::size_t h = 0x2545f4914f6cdd1dULL;
    for (VarId v : neg.key_vars) {
      h = hash_combine(h, env[static_cast<std::size_t>(v)].hash());
    }
    return h;
  }

  static std::size_t key_of_fact(const PositionPlan& neg,
                                 const FactView& fact) {
    std::size_t h = 0x2545f4914f6cdd1dULL;
    for (int s : neg.key_slots) {
      // Cached per-slot hash from the store (same value as .hash()).
      h = hash_combine(h, fact.slot_hash(static_cast<std::size_t>(s)));
    }
    return h;
  }

  std::span<const CompiledRule> rules_;
  const std::vector<RulePlan>& plans_;
  // maps_[rule][neg]: key hash -> inst id (possibly stale; pruned lazily).
  std::vector<std::vector<std::unordered_multimap<std::size_t, InstId>>>
      maps_;
};

}  // namespace parulel
