// Shared join machinery for the TREAT-family matchers.
//
// A JoinPlanner precomputes, per rule and per positive position, which
// alpha memory to draw candidates from and which hash index to probe
// (keyed by the already-bound join variables). Enumeration is a DFS over
// positive positions with guards applied as early as their variables are
// bound, and negated CEs checked once the full positive join is bound.
//
// Seminaive use: fixing (position, fact) enumerates exactly the
// instantiations that include a given new fact at a given position.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lang/expr.hpp"
#include "match/alpha.hpp"
#include "match/instantiation.hpp"
#include "wm/working_memory.hpp"

namespace parulel {

/// Join plan for one positive or negative pattern position.
struct PositionPlan {
  std::uint32_t alpha = 0;
  int index_handle = -1;           ///< -1 => full scan of the alpha memory
  std::vector<int> key_slots;      ///< index slot list (sorted)
  std::vector<VarId> key_vars;     ///< env var per key slot
  std::vector<CompiledPattern::JoinEq> join_eqs;  ///< full verify list
};

/// Precomputed fast path for re-deriving a rule after a negated CE's
/// blocker fact is retracted: probe positive position 0 by the slots
/// that define the pinned variables, instead of scanning its alpha.
struct NegRematchPlan {
  int index_handle = -1;        ///< on positives[0]'s alpha; -1 = scan
  std::vector<int> pos0_slots;  ///< index slot list (sorted)
  std::vector<VarId> pos0_vars; ///< pinned var per slot
  /// Pins to apply during the DFS: (rule var, value from blocker slot).
  struct Pin {
    VarId var;
    int blocker_slot;
  };
  std::vector<Pin> pins;
};

/// One step of a reordered derivation join (seminaive matching).
struct DeriveStep {
  int pattern = 0;           ///< positive CE index this step binds
  std::uint32_t alpha = 0;
  /// Slot must equal an already-bound variable (under THIS ordering).
  std::vector<CompiledPattern::JoinEq> eqs;
  /// Slot defines a variable (under THIS ordering).
  std::vector<CompiledPattern::Binding> defs;
  int index_handle = -1;     ///< on `alpha` over eq slots; -1 = scan
  std::vector<int> key_slots;
  std::vector<VarId> key_vars;
  /// Guards that become evaluable once this step binds its variables.
  std::vector<const CompiledExpr*> guards;
};

/// Reordered join for deriving instantiations that contain a new fact
/// at one fixed position: step 0 IS that position, later steps greedily
/// prefer patterns joinable (hash-probe-able) against bound variables.
struct DerivePlan {
  std::vector<DeriveStep> steps;
};

/// Per-rule join plan.
struct RulePlan {
  std::vector<PositionPlan> positives;
  std::vector<PositionPlan> negatives;
  /// Positive position that defines each LHS variable (index = VarId).
  std::vector<int> def_position;
  /// One rematch fast path per negated CE (aligned with negatives).
  std::vector<NegRematchPlan> neg_rematch;
  /// One reordered derivation plan per positive position.
  std::vector<DerivePlan> derive;
};

/// An equality pin on a rule variable, used to narrow re-derivation
/// after a negated CE's blocker is retracted: only bindings that agree
/// with the vanished blocker's join key can have become enabled.
struct VarConstraint {
  VarId var;
  Value value;
};

/// Builds plans and registers the needed indexes on an AlphaStore.
/// Must run before any fact enters the store.
std::vector<RulePlan> build_join_plans(std::span<const CompiledRule> rules,
                                       AlphaStore& alphas);

/// Join enumerator over one rule set + alpha store.
class JoinEngine {
 public:
  JoinEngine(std::span<const CompiledRule> rules, AlphaStore& alphas)
      : rules_(rules), alphas_(alphas), plans_(build_join_plans(rules, alphas)) {}

  AlphaStore& alphas() { return alphas_; }
  const RulePlan& plan(RuleId rule) const { return plans_[rule]; }
  const std::vector<RulePlan>& plans() const { return plans_; }

  /// Enumerate instantiations of `rule`. When fixed_pos >= 0, only
  /// instantiations with `fixed_fact` at that position are produced
  /// (seminaive derivation). `constraints` pins rule variables to given
  /// values; bindings that disagree are pruned as soon as the variable
  /// is defined. emit(facts, env) is called per match; the spans are
  /// only valid during the call.
  template <typename Emit>
  void enumerate(const WorkingMemory& wm, RuleId rule, int fixed_pos,
                 FactId fixed_fact, Emit&& emit,
                 std::span<const VarConstraint> constraints = {}) const {
    const CompiledRule& r = rules_[rule];
    const RulePlan& plan = plans_[rule];
    std::vector<Value> env(static_cast<std::size_t>(r.num_vars));
    std::vector<FactId> facts(r.positives.size(), kInvalidFact);
    std::vector<FactId> scratch;
    dfs(wm, r, plan, 0, fixed_pos, fixed_fact, constraints, nullptr, env,
        facts, scratch, emit);
  }

  /// Seminaive derivation: every instantiation of `rule` containing
  /// `fixed_fact` at positive position `fixed_pos`, enumerated via the
  /// reordered DerivePlan (starts at the new fact, hash-joins outward).
  template <typename Emit>
  void derive(const WorkingMemory& wm, RuleId rule, int fixed_pos,
              FactId fixed_fact, Emit&& emit) const {
    const CompiledRule& r = rules_[rule];
    const RulePlan& plan = plans_[rule];
    const DerivePlan& dp =
        plan.derive[static_cast<std::size_t>(fixed_pos)];
    std::vector<Value> env(static_cast<std::size_t>(r.num_vars));
    std::vector<FactId> facts(r.positives.size(), kInvalidFact);
    derive_dfs(wm, r, plan, dp, 0, fixed_fact, env, facts, emit);
  }

  /// Re-derive the instantiations of `rule` that the retraction of
  /// `blocker` (a fact that matched negated CE `neg_index`) may have
  /// enabled. Only bindings agreeing with the blocker's join key are
  /// enumerated, probing position 0 by index when possible.
  template <typename Emit>
  void enumerate_unblocked(const WorkingMemory& wm, RuleId rule,
                           std::size_t neg_index, const Fact& blocker,
                           Emit&& emit) const {
    const CompiledRule& r = rules_[rule];
    const RulePlan& plan = plans_[rule];
    const NegRematchPlan& rp = plan.neg_rematch[neg_index];

    std::vector<VarConstraint> pins;
    pins.reserve(rp.pins.size());
    for (const auto& pin : rp.pins) {
      pins.push_back(
          {pin.var,
           blocker.slots[static_cast<std::size_t>(pin.blocker_slot)]});
    }

    Pos0Probe probe;
    const Pos0Probe* probe_ptr = nullptr;
    if (rp.index_handle >= 0) {
      probe.index_handle = rp.index_handle;
      probe.key.reserve(rp.pos0_slots.size());
      for (std::size_t i = 0; i < rp.pos0_slots.size(); ++i) {
        // pos0_vars[i] is pinned; its value comes from the blocker.
        for (const auto& pin : pins) {
          if (pin.var == rp.pos0_vars[i]) {
            probe.key.push_back(pin.value);
            break;
          }
        }
      }
      probe_ptr = &probe;
    }

    std::vector<Value> env(static_cast<std::size_t>(r.num_vars));
    std::vector<FactId> facts(r.positives.size(), kInvalidFact);
    std::vector<FactId> scratch;
    dfs(wm, r, plan, 0, /*fixed_pos=*/-1, kInvalidFact, pins, probe_ptr,
        env, facts, scratch, emit);
  }

  /// True when every quantified CE of `rule` is satisfied under the
  /// bound environment ((not ...) empty, (exists ...) non-empty).
  bool negatives_ok(const WorkingMemory& wm, const CompiledRule& rule,
                    const RulePlan& plan, std::span<const Value> env) const;

  /// Does at least one alive fact match quantified CE `neg` under env?
  bool quantified_satisfied(const WorkingMemory& wm, const PositionPlan& neg,
                            std::span<const Value> env) const;

  /// True when `fact` (known to be in the negative pattern's alpha)
  /// blocks `env`, i.e. satisfies the pattern's join tests.
  static bool fact_blocks(const Fact& fact, const PositionPlan& neg,
                          std::span<const Value> env);

 private:
  struct Pos0Probe {
    int index_handle = -1;
    std::vector<Value> key;
  };

  template <typename Emit>
  void derive_dfs(const WorkingMemory& wm, const CompiledRule& r,
                  const RulePlan& plan, const DerivePlan& dp, std::size_t s,
                  FactId fixed_fact, std::vector<Value>& env,
                  std::vector<FactId>& facts, Emit&& emit) const {
    if (s == dp.steps.size()) {
      if (negatives_ok(wm, r, plan, env)) emit(facts, env);
      return;
    }
    const DeriveStep& step = dp.steps[s];

    auto try_fact = [&](FactId fid) {
      const Fact& fact = wm.fact(fid);
      for (const auto& eq : step.eqs) {
        if (fact.slots[static_cast<std::size_t>(eq.slot)] !=
            env[static_cast<std::size_t>(eq.var)]) {
          return;
        }
      }
      for (const auto& def : step.defs) {
        env[static_cast<std::size_t>(def.var)] =
            fact.slots[static_cast<std::size_t>(def.slot)];
      }
      for (const CompiledExpr* guard : step.guards) {
        if (!CompiledExpr::truthy(guard->eval(env))) return;
      }
      facts[static_cast<std::size_t>(step.pattern)] = fid;
      derive_dfs(wm, r, plan, dp, s + 1, fixed_fact, env, facts, emit);
    };

    if (s == 0) {
      // Step 0 is the fixed position: exactly the new fact.
      try_fact(fixed_fact);
      return;
    }
    const AlphaMemory& mem = alphas_.memory(step.alpha);
    if (step.index_handle >= 0) {
      std::vector<Value> key(step.key_vars.size());
      for (std::size_t i = 0; i < step.key_vars.size(); ++i) {
        key[i] = env[static_cast<std::size_t>(step.key_vars[i])];
      }
      std::vector<FactId> candidates;
      mem.probe(step.index_handle, key, candidates);
      for (FactId fid : candidates) try_fact(fid);
      return;
    }
    const std::vector<FactId> local(mem.facts());
    for (FactId fid : local) try_fact(fid);
  }

  template <typename Emit>
  void dfs(const WorkingMemory& wm, const CompiledRule& r,
           const RulePlan& plan, std::size_t p, int fixed_pos,
           FactId fixed_fact, std::span<const VarConstraint> constraints,
           const Pos0Probe* probe0, std::vector<Value>& env,
           std::vector<FactId>& facts, std::vector<FactId>& scratch,
           Emit&& emit) const {
    if (p == r.positives.size()) {
      if (negatives_ok(wm, r, plan, env)) emit(facts, env);
      return;
    }
    const CompiledPattern& pat = r.positives[p];
    const PositionPlan& pos = plan.positives[p];
    const AlphaMemory& mem = alphas_.memory(pos.alpha);

    auto try_fact = [&](FactId fid) {
      const Fact& fact = wm.fact(fid);
      for (const auto& eq : pos.join_eqs) {
        if (fact.slots[static_cast<std::size_t>(eq.slot)] !=
            env[static_cast<std::size_t>(eq.var)]) {
          return;
        }
      }
      for (const auto& def : pat.defines) {
        env[static_cast<std::size_t>(def.var)] =
            fact.slots[static_cast<std::size_t>(def.slot)];
      }
      // Constraint pins become checkable the moment their variable is
      // defined; pruning here keeps constrained re-derivation narrow.
      for (const auto& pin : constraints) {
        if (plan.def_position[static_cast<std::size_t>(pin.var)] ==
                static_cast<int>(p) &&
            env[static_cast<std::size_t>(pin.var)] != pin.value) {
          return;
        }
      }
      for (const auto& guard : r.guards[p]) {
        if (!CompiledExpr::truthy(guard.eval(env))) return;
      }
      facts[p] = fid;
      dfs(wm, r, plan, p + 1, fixed_pos, fixed_fact, constraints, probe0,
          env, facts, scratch, emit);
    };

    if (static_cast<int>(p) == fixed_pos) {
      // The fixed fact must already be in this alpha (caller routed it).
      try_fact(fixed_fact);
      return;
    }
    if (p == 0 && probe0 != nullptr) {
      // Constrained re-derivation: probe position 0 by the pinned slots.
      std::vector<FactId> candidates;
      mem.probe(probe0->index_handle, probe0->key, candidates);
      for (FactId fid : candidates) try_fact(fid);
      return;
    }
    if (pos.index_handle >= 0) {
      // Hash probe on the bound join key. Save candidate list locally:
      // deeper recursion reuses `scratch`.
      std::vector<Value> key(pos.key_vars.size());
      for (std::size_t i = 0; i < pos.key_vars.size(); ++i) {
        key[i] = env[static_cast<std::size_t>(pos.key_vars[i])];
      }
      std::vector<FactId> candidates;
      mem.probe(pos.index_handle, key, candidates);
      for (FactId fid : candidates) try_fact(fid);
      return;
    }
    // No join key: scan the whole memory. Copy first: try_fact recursion
    // never mutates alpha memories during matching, but keep it explicit.
    scratch = mem.facts();
    const std::vector<FactId> local(scratch);
    for (FactId fid : local) try_fact(fid);
  }

  std::span<const CompiledRule> rules_;
  AlphaStore& alphas_;
  std::vector<RulePlan> plans_;
};

}  // namespace parulel
