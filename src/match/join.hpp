// Shared join machinery for the TREAT-family matchers.
//
// A JoinPlanner precomputes, per rule and per positive position, which
// alpha memory to draw candidates from and which hash index to probe
// (keyed by the already-bound join variables). Enumeration is a DFS over
// positive positions with guards applied as early as their variables are
// bound, and negated CEs checked once the full positive join is bound.
//
// Seminaive use: fixing (position, fact) enumerates exactly the
// instantiations that include a given new fact at a given position.
//
// Hot-path structure: probe hashes are composed directly from the bound
// environment (no key-value vector is materialized), index groups are
// iterated in place (alpha memories are never mutated while a join
// runs), and when a group's canonical key matches the environment and
// the key covers every join equality, the per-candidate verify loop is
// skipped entirely (see AlphaMemory::ProbeHit).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lang/expr.hpp"
#include "match/alpha.hpp"
#include "match/instantiation.hpp"
#include "wm/working_memory.hpp"

namespace parulel {

/// Join plan for one positive or negative pattern position.
struct PositionPlan {
  std::uint32_t alpha = 0;
  int index_handle = -1;           ///< -1 => full scan of the alpha memory
  std::vector<int> key_slots;      ///< index slot list (sorted)
  std::vector<VarId> key_vars;     ///< env var per key slot
  std::vector<CompiledPattern::JoinEq> join_eqs;  ///< full verify list
  /// True when the index key covers every join equality (no slot joined
  /// against two variables): a canonical-key match then verifies all
  /// candidates of the group at once.
  bool key_covers = false;
};

/// Precomputed fast path for re-deriving a rule after a negated CE's
/// blocker fact is retracted: probe positive position 0 by the slots
/// that define the pinned variables, instead of scanning its alpha.
struct NegRematchPlan {
  int index_handle = -1;        ///< on positives[0]'s alpha; -1 = scan
  std::vector<int> pos0_slots;  ///< index slot list (sorted)
  std::vector<VarId> pos0_vars; ///< pinned var per slot
  /// Pins to apply during the DFS: (rule var, value from blocker slot).
  struct Pin {
    VarId var;
    int blocker_slot;
  };
  std::vector<Pin> pins;
};

/// One step of a reordered derivation join (seminaive matching).
struct DeriveStep {
  int pattern = 0;           ///< positive CE index this step binds
  std::uint32_t alpha = 0;
  /// Slot must equal an already-bound variable (under THIS ordering).
  std::vector<CompiledPattern::JoinEq> eqs;
  /// Slot defines a variable (under THIS ordering).
  std::vector<CompiledPattern::Binding> defs;
  int index_handle = -1;     ///< on `alpha` over eq slots; -1 = scan
  std::vector<int> key_slots;
  std::vector<VarId> key_vars;
  bool key_covers = false;   ///< see PositionPlan::key_covers
  /// Guards that become evaluable once this step binds its variables.
  std::vector<const CompiledExpr*> guards;
};

/// Reordered join for deriving instantiations that contain a new fact
/// at one fixed position: step 0 IS that position, later steps greedily
/// prefer patterns joinable (hash-probe-able) against bound variables.
struct DerivePlan {
  std::vector<DeriveStep> steps;
};

/// Per-rule join plan.
struct RulePlan {
  std::vector<PositionPlan> positives;
  std::vector<PositionPlan> negatives;
  /// Positive position that defines each LHS variable (index = VarId).
  std::vector<int> def_position;
  /// One rematch fast path per negated CE (aligned with negatives).
  std::vector<NegRematchPlan> neg_rematch;
  /// One reordered derivation plan per positive position.
  std::vector<DerivePlan> derive;
};

/// An equality pin on a rule variable, used to narrow re-derivation
/// after a negated CE's blocker is retracted: only bindings that agree
/// with the vanished blocker's join key can have become enabled.
struct VarConstraint {
  VarId var;
  Value value;
};

/// Builds plans and registers the needed indexes on an AlphaStore.
/// Must run before any fact enters the store.
std::vector<RulePlan> build_join_plans(std::span<const CompiledRule> rules,
                                       AlphaStore& alphas);

/// Reusable DFS buffers for JoinEngine::enumerate/derive. Callers that
/// enumerate in a loop keep one of these per thread so the per-call
/// env/facts vectors stop hitting the allocator.
struct JoinScratch {
  std::vector<Value> env;
  std::vector<FactId> facts;
};

/// Join enumerator over one rule set + alpha store.
class JoinEngine {
 public:
  JoinEngine(std::span<const CompiledRule> rules, AlphaStore& alphas)
      : rules_(rules), alphas_(alphas), plans_(build_join_plans(rules, alphas)) {}

  AlphaStore& alphas() { return alphas_; }
  const RulePlan& plan(RuleId rule) const { return plans_[rule]; }
  const std::vector<RulePlan>& plans() const { return plans_; }

  /// Enumerate instantiations of `rule`. When fixed_pos >= 0, only
  /// instantiations with `fixed_fact` at that position are produced
  /// (seminaive derivation). `constraints` pins rule variables to given
  /// values; bindings that disagree are pruned as soon as the variable
  /// is defined. emit(facts, env) is called per match; the spans are
  /// only valid during the call.
  template <typename Emit>
  void enumerate(const WorkingMemory& wm, RuleId rule, int fixed_pos,
                 FactId fixed_fact, Emit&& emit,
                 std::span<const VarConstraint> constraints = {}) const {
    JoinScratch scratch;
    enumerate(wm, rule, fixed_pos, fixed_fact, scratch,
              std::forward<Emit>(emit), constraints);
  }

  /// enumerate() with caller-owned DFS buffers (hot loops).
  template <typename Emit>
  void enumerate(const WorkingMemory& wm, RuleId rule, int fixed_pos,
                 FactId fixed_fact, JoinScratch& scratch, Emit&& emit,
                 std::span<const VarConstraint> constraints = {}) const {
    const CompiledRule& r = rules_[rule];
    const RulePlan& plan = plans_[rule];
    scratch.env.assign(static_cast<std::size_t>(r.num_vars), Value{});
    scratch.facts.assign(r.positives.size(), kInvalidFact);
    dfs(wm, r, plan, 0, fixed_pos, fixed_fact, constraints, nullptr,
        scratch.env, scratch.facts, emit);
  }

  /// Seminaive derivation: every instantiation of `rule` containing
  /// `fixed_fact` at positive position `fixed_pos`, enumerated via the
  /// reordered DerivePlan (starts at the new fact, hash-joins outward).
  template <typename Emit>
  void derive(const WorkingMemory& wm, RuleId rule, int fixed_pos,
              FactId fixed_fact, Emit&& emit) const {
    JoinScratch scratch;
    derive(wm, rule, fixed_pos, fixed_fact, scratch,
           std::forward<Emit>(emit));
  }

  /// derive() with caller-owned DFS buffers (hot loops).
  template <typename Emit>
  void derive(const WorkingMemory& wm, RuleId rule, int fixed_pos,
              FactId fixed_fact, JoinScratch& scratch, Emit&& emit) const {
    const CompiledRule& r = rules_[rule];
    const RulePlan& plan = plans_[rule];
    const DerivePlan& dp =
        plan.derive[static_cast<std::size_t>(fixed_pos)];
    scratch.env.assign(static_cast<std::size_t>(r.num_vars), Value{});
    scratch.facts.assign(r.positives.size(), kInvalidFact);
    derive_dfs(wm, r, plan, dp, 0, fixed_fact, scratch.env, scratch.facts,
               emit);
  }

  /// Re-derive the instantiations of `rule` that the retraction of
  /// `blocker` (a fact that matched negated CE `neg_index`) may have
  /// enabled. Only bindings agreeing with the blocker's join key are
  /// enumerated, probing position 0 by index when possible.
  template <typename Emit>
  void enumerate_unblocked(const WorkingMemory& wm, RuleId rule,
                           std::size_t neg_index, const FactView& blocker,
                           Emit&& emit) const {
    JoinScratch scratch;
    enumerate_unblocked(wm, rule, neg_index, blocker, scratch,
                        std::forward<Emit>(emit));
  }

  /// enumerate_unblocked() with caller-owned DFS buffers.
  template <typename Emit>
  void enumerate_unblocked(const WorkingMemory& wm, RuleId rule,
                           std::size_t neg_index, const FactView& blocker,
                           JoinScratch& scratch, Emit&& emit) const {
    const CompiledRule& r = rules_[rule];
    const RulePlan& plan = plans_[rule];
    const NegRematchPlan& rp = plan.neg_rematch[neg_index];

    std::vector<VarConstraint> pins;
    pins.reserve(rp.pins.size());
    for (const auto& pin : rp.pins) {
      pins.push_back(
          {pin.var, blocker.slot(static_cast<std::size_t>(pin.blocker_slot))});
    }

    Pos0Probe probe;
    const Pos0Probe* probe_ptr = nullptr;
    if (rp.index_handle >= 0) {
      probe.index_handle = rp.index_handle;
      probe.key.reserve(rp.pos0_slots.size());
      for (std::size_t i = 0; i < rp.pos0_slots.size(); ++i) {
        // pos0_vars[i] is pinned; its value comes from the blocker.
        for (const auto& pin : pins) {
          if (pin.var == rp.pos0_vars[i]) {
            probe.key.push_back(pin.value);
            break;
          }
        }
      }
      probe_ptr = &probe;
    }

    scratch.env.assign(static_cast<std::size_t>(r.num_vars), Value{});
    scratch.facts.assign(r.positives.size(), kInvalidFact);
    dfs(wm, r, plan, 0, /*fixed_pos=*/-1, kInvalidFact, pins, probe_ptr,
        scratch.env, scratch.facts, emit);
  }

  /// True when every quantified CE of `rule` is satisfied under the
  /// bound environment ((not ...) empty, (exists ...) non-empty).
  bool negatives_ok(const WorkingMemory& wm, const CompiledRule& rule,
                    const RulePlan& plan, std::span<const Value> env) const;

  /// Does at least one alive fact match quantified CE `neg` under env?
  bool quantified_satisfied(const WorkingMemory& wm, const PositionPlan& neg,
                            std::span<const Value> env) const;

  /// True when `fact` (known to be in the negative pattern's alpha)
  /// blocks `env`, i.e. satisfies the pattern's join tests.
  static bool fact_blocks(const FactView& fact, const PositionPlan& neg,
                          std::span<const Value> env);

 private:
  struct Pos0Probe {
    int index_handle = -1;
    std::vector<Value> key;
  };

  /// Join-key hash composed straight from the environment (must agree
  /// with AlphaMemory's insert-side key: kJoinKeySeed + hash_combine).
  static std::size_t env_key_hash(std::span<const VarId> key_vars,
                                  std::span<const Value> env) {
    std::size_t h = kJoinKeySeed;
    for (VarId v : key_vars) {
      h = hash_combine(h, env[static_cast<std::size_t>(v)].hash());
    }
    return h;
  }

  /// Does the pure group's canonical key (read off its representative
  /// member's slot columns) equal the bound key values? When true every
  /// group member shares those key slots — no per-candidate re-check of
  /// the key is needed.
  static bool canon_matches(const FactView& rep, const int* rep_slots,
                            std::span<const VarId> key_vars,
                            std::span<const Value> env) {
    for (std::size_t i = 0; i < key_vars.size(); ++i) {
      if (rep.slot(static_cast<std::size_t>(rep_slots[i])) !=
          env[static_cast<std::size_t>(key_vars[i])]) {
        return false;
      }
    }
    return true;
  }

  template <typename Emit>
  void derive_dfs(const WorkingMemory& wm, const CompiledRule& r,
                  const RulePlan& plan, const DerivePlan& dp, std::size_t s,
                  FactId fixed_fact, std::vector<Value>& env,
                  std::vector<FactId>& facts, Emit&& emit) const {
    if (s == dp.steps.size()) {
      if (negatives_ok(wm, r, plan, env)) emit(facts, env);
      return;
    }
    const DeriveStep& step = dp.steps[s];
    const FactStore& store = wm.store();

    // `verified` skips the eq loop when the group's canonical key
    // already proved every join equality for this candidate.
    auto try_fact = [&](FactRow row, bool verified) {
      const FactView fact = store.view_row(row);
      if (!verified) {
        for (const auto& eq : step.eqs) {
          if (fact.slot(static_cast<std::size_t>(eq.slot)) !=
              env[static_cast<std::size_t>(eq.var)]) {
            return;
          }
        }
      }
      for (const auto& def : step.defs) {
        env[static_cast<std::size_t>(def.var)] =
            fact.slot(static_cast<std::size_t>(def.slot));
      }
      for (const CompiledExpr* guard : step.guards) {
        if (!CompiledExpr::truthy(guard->eval(env))) return;
      }
      facts[static_cast<std::size_t>(step.pattern)] = fact.id();
      derive_dfs(wm, r, plan, dp, s + 1, fixed_fact, env, facts, emit);
    };

    if (s == 0) {
      // Step 0 is the fixed position: exactly the new fact.
      try_fact(store.row_of(fixed_fact), false);
      return;
    }
    const AlphaMemory& mem = alphas_.memory(step.alpha);
    if (step.index_handle >= 0) {
      const auto hit = mem.probe_group_canon(
          step.index_handle, env_key_hash(step.key_vars, env));
      if (!hit.group) return;
      if (hit.rep != kNoFactRow && step.key_covers) {
        if (!canon_matches(store.view_row(hit.rep), hit.rep_slots,
                           step.key_vars, env)) {
          return;
        }
        for (FactRow row : *hit.group) try_fact(row, true);
      } else {
        for (FactRow row : *hit.group) try_fact(row, false);
      }
      return;
    }
    // No join key: scan the whole memory in place (alpha memories are
    // never mutated while a join enumerates).
    for (FactRow row : mem.rows()) try_fact(row, false);
  }

  template <typename Emit>
  void dfs(const WorkingMemory& wm, const CompiledRule& r,
           const RulePlan& plan, std::size_t p, int fixed_pos,
           FactId fixed_fact, std::span<const VarConstraint> constraints,
           const Pos0Probe* probe0, std::vector<Value>& env,
           std::vector<FactId>& facts, Emit&& emit) const {
    if (p == r.positives.size()) {
      if (negatives_ok(wm, r, plan, env)) emit(facts, env);
      return;
    }
    const CompiledPattern& pat = r.positives[p];
    const PositionPlan& pos = plan.positives[p];
    const AlphaMemory& mem = alphas_.memory(pos.alpha);
    const FactStore& store = wm.store();

    auto try_fact = [&](FactRow row, bool verified) {
      const FactView fact = store.view_row(row);
      if (!verified) {
        for (const auto& eq : pos.join_eqs) {
          if (fact.slot(static_cast<std::size_t>(eq.slot)) !=
              env[static_cast<std::size_t>(eq.var)]) {
            return;
          }
        }
      }
      for (const auto& def : pat.defines) {
        env[static_cast<std::size_t>(def.var)] =
            fact.slot(static_cast<std::size_t>(def.slot));
      }
      // Constraint pins become checkable the moment their variable is
      // defined; pruning here keeps constrained re-derivation narrow.
      for (const auto& pin : constraints) {
        if (plan.def_position[static_cast<std::size_t>(pin.var)] ==
                static_cast<int>(p) &&
            env[static_cast<std::size_t>(pin.var)] != pin.value) {
          return;
        }
      }
      for (const auto& guard : r.guards[p]) {
        if (!CompiledExpr::truthy(guard.eval(env))) return;
      }
      facts[p] = fact.id();
      dfs(wm, r, plan, p + 1, fixed_pos, fixed_fact, constraints, probe0,
          env, facts, emit);
    };

    if (static_cast<int>(p) == fixed_pos) {
      // The fixed fact must already be in this alpha (caller routed it).
      try_fact(store.row_of(fixed_fact), false);
      return;
    }
    if (p == 0 && probe0 != nullptr) {
      // Constrained re-derivation: probe position 0 by the pinned slots.
      if (const AlphaMemory::Group* g = mem.probe_group(
              probe0->index_handle, join_key_hash(probe0->key))) {
        for (FactRow row : *g) try_fact(row, false);
      }
      return;
    }
    if (pos.index_handle >= 0) {
      // Hash probe on the bound join key, composed from the env.
      const auto hit = mem.probe_group_canon(
          pos.index_handle, env_key_hash(pos.key_vars, env));
      if (!hit.group) return;
      if (hit.rep != kNoFactRow && pos.key_covers) {
        if (!canon_matches(store.view_row(hit.rep), hit.rep_slots,
                           pos.key_vars, env)) {
          return;
        }
        for (FactRow row : *hit.group) try_fact(row, true);
      } else {
        for (FactRow row : *hit.group) try_fact(row, false);
      }
      return;
    }
    // No join key: scan the whole memory in place (alpha memories are
    // never mutated while a join enumerates).
    for (FactRow row : mem.rows()) try_fact(row, false);
  }

  std::span<const CompiledRule> rules_;
  AlphaStore& alphas_;
  std::vector<RulePlan> plans_;
};

}  // namespace parulel
