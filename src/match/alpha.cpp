#include "match/alpha.hpp"

#include <algorithm>
#include <cassert>

namespace parulel {

int AlphaMemory::ensure_index(std::vector<int> slots) {
  for (std::size_t i = 0; i < indexes_.size(); ++i) {
    if (indexes_[i].slots == slots) return static_cast<int>(i);
  }
  assert(rows_.empty() && "indexes must be registered before facts");
  indexes_.push_back(Index{});
  indexes_.back().slots = std::move(slots);
  return static_cast<int>(indexes_.size() - 1);
}

namespace {

/// Key hash over `slots` composed from the store's cached per-slot
/// hashes — never rehashes a value.
std::size_t key_from(const FactView& fact, std::span<const int> slots) {
  std::size_t h = kJoinKeySeed;
  for (int s : slots) {
    h = hash_combine(h, fact.slot_hash(static_cast<std::size_t>(s)));
  }
  return h;
}

}  // namespace

void AlphaMemory::insert(const FactView& fact) {
  const FactRow row = fact.row();
  if (row >= pos_.size()) pos_.resize(row + 1, kNotMember);
  if (pos_[row] != kNotMember) return;
  pos_[row] = static_cast<std::uint32_t>(rows_.size());
  rows_.push_back(row);
  for (auto& index : indexes_) {
    const std::size_t gid =
        index.map.group_id_for(key_from(fact, index.slots));
    auto& g = index.map.group(gid);
    if (gid >= index.canon_pure.size()) index.canon_pure.resize(gid + 1);
    if (g.empty()) {
      index.canon_pure[gid] = 1;
    } else if (index.canon_pure[gid]) {
      // Purity holds while every member shares the key-slot values;
      // compare against any current member (the probe-side
      // representative). Impurity is a full-64-bit-hash collision.
      const FactView rep = fact.store_->view_row(*g.begin());
      for (int s : index.slots) {
        if (rep.slot(static_cast<std::size_t>(s)) !=
            fact.slot(static_cast<std::size_t>(s))) {
          index.canon_pure[gid] = 0;
          break;
        }
      }
    }
    g.push_back(row);
  }
}

void AlphaMemory::erase(const FactView& fact) {
  const FactRow row = fact.row();
  if (row >= pos_.size() || pos_[row] == kNotMember) return;
  const std::uint32_t p = pos_[row];
  const FactRow moved = rows_.back();
  rows_[p] = moved;
  pos_[moved] = p;
  rows_.pop_back();
  pos_[row] = kNotMember;
  for (auto& index : indexes_) {
    // The ordered erase keeps probe order = insertion order.
    auto* g = index.map.find(key_from(fact, index.slots));
    g->erase(std::find(g->begin(), g->end(), row));
  }
}

void AlphaMemory::probe(int index_handle, std::span<const Value> key_values,
                        std::vector<FactRow>& out) const {
  probe_hash(index_handle, join_key_hash(key_values), out);
}

AlphaStore::AlphaStore(std::span<const AlphaSpec> specs,
                       std::size_t template_count)
    : specs_(specs.begin(), specs.end()),
      memories_(specs.size()),
      by_template_(template_count) {
  for (std::uint32_t a = 0; a < specs_.size(); ++a) {
    by_template_[specs_[a].tmpl].push_back(a);
  }
}

void AlphaStore::matching_alphas(const FactView& fact,
                                 std::vector<std::uint32_t>& out) const {
  out.clear();
  for (std::uint32_t a : by_template_[fact.tmpl()]) {
    if (specs_[a].accepts(fact)) out.push_back(a);
  }
}

void AlphaStore::on_assert(const FactView& fact) {
  for (std::uint32_t a : by_template_[fact.tmpl()]) {
    if (specs_[a].accepts(fact)) memories_[a].insert(fact);
  }
}

void AlphaStore::on_retract(const FactView& fact) {
  for (std::uint32_t a : by_template_[fact.tmpl()]) {
    if (specs_[a].accepts(fact)) memories_[a].erase(fact);
  }
}

}  // namespace parulel
