#include "match/alpha.hpp"

#include <algorithm>
#include <cassert>

namespace parulel {

int AlphaMemory::ensure_index(std::vector<int> slots) {
  for (std::size_t i = 0; i < indexes_.size(); ++i) {
    if (indexes_[i].slots == slots) return static_cast<int>(i);
  }
  assert(facts_.empty() && "indexes must be registered before facts");
  indexes_.push_back(Index{});
  indexes_.back().slots = std::move(slots);
  return static_cast<int>(indexes_.size() - 1);
}

namespace {

/// Key hash over `slots` composed from precomputed per-slot hashes.
std::size_t key_from(std::span<const std::size_t> hashes,
                     std::span<const int> slots) {
  std::size_t h = kJoinKeySeed;
  for (int s : slots) {
    h = hash_combine(h, hashes[static_cast<std::size_t>(s)]);
  }
  return h;
}

}  // namespace

void AlphaMemory::insert(const Fact& fact) {
  if (!indexes_.empty()) fact_slot_hashes(fact, hash_scratch_);
  insert_hashed(fact, hash_scratch_);
}

void AlphaMemory::erase(const Fact& fact) {
  if (!indexes_.empty()) fact_slot_hashes(fact, hash_scratch_);
  erase_hashed(fact, hash_scratch_);
}

void AlphaMemory::insert_hashed(const Fact& fact,
                                std::span<const std::size_t> hashes) {
  if (pos_.contains(fact.id)) return;
  pos_.insert(fact.id, static_cast<std::uint32_t>(facts_.size()));
  facts_.push_back(fact.id);
  for (auto& index : indexes_) {
    const std::size_t gid =
        index.map.group_id_for(key_from(hashes, index.slots));
    auto& g = index.map.group(gid);
    const std::size_t w = index.slots.size();
    if (gid >= index.canon_pure.size()) {
      index.canon_pure.resize(gid + 1);
      index.canon_vals.resize((gid + 1) * w);
    }
    Value* cv = index.canon_vals.data() + gid * w;
    if (g.empty()) {
      index.canon_pure[gid] = 1;
      for (std::size_t i = 0; i < w; ++i) {
        cv[i] = fact.slots[static_cast<std::size_t>(index.slots[i])];
      }
    } else if (index.canon_pure[gid]) {
      for (std::size_t i = 0; i < w; ++i) {
        if (cv[i] != fact.slots[static_cast<std::size_t>(index.slots[i])]) {
          index.canon_pure[gid] = 0;
          break;
        }
      }
    }
    g.push_back(fact.id);
  }
}

void AlphaMemory::erase_hashed(const Fact& fact,
                               std::span<const std::size_t> hashes) {
  const std::uint32_t* found = pos_.find(fact.id);
  if (!found) return;
  const std::uint32_t p = *found;
  const FactId moved = facts_.back();
  facts_[p] = moved;
  *pos_.find(moved) = p;
  facts_.pop_back();
  pos_.erase(fact.id);
  for (auto& index : indexes_) {
    // The ordered erase keeps probe order = insertion order.
    auto* g = index.map.find(key_from(hashes, index.slots));
    g->erase(std::find(g->begin(), g->end(), fact.id));
  }
}

void AlphaMemory::probe(int index_handle, std::span<const Value> key_values,
                        std::vector<FactId>& out) const {
  probe_hash(index_handle, join_key_hash(key_values), out);
}

AlphaStore::AlphaStore(std::span<const AlphaSpec> specs,
                       std::size_t template_count)
    : specs_(specs.begin(), specs.end()),
      memories_(specs.size()),
      by_template_(template_count) {
  for (std::uint32_t a = 0; a < specs_.size(); ++a) {
    by_template_[specs_[a].tmpl].push_back(a);
  }
}

void AlphaStore::matching_alphas(const Fact& fact,
                                 std::vector<std::uint32_t>& out) const {
  out.clear();
  for (std::uint32_t a : by_template_[fact.tmpl]) {
    if (specs_[a].accepts(fact.slots)) out.push_back(a);
  }
}

void AlphaStore::on_assert(const Fact& fact) {
  fact_slot_hashes(fact, hash_scratch_);
  for (std::uint32_t a : by_template_[fact.tmpl]) {
    if (specs_[a].accepts(fact.slots)) {
      memories_[a].insert_hashed(fact, hash_scratch_);
    }
  }
}

void AlphaStore::on_retract(const Fact& fact) {
  fact_slot_hashes(fact, hash_scratch_);
  for (std::uint32_t a : by_template_[fact.tmpl]) {
    if (specs_[a].accepts(fact.slots)) {
      memories_[a].erase_hashed(fact, hash_scratch_);
    }
  }
}

}  // namespace parulel
