#include "match/alpha.hpp"

#include <algorithm>
#include <cassert>

namespace parulel {

int AlphaMemory::ensure_index(std::vector<int> slots) {
  for (std::size_t i = 0; i < indexes_.size(); ++i) {
    if (indexes_[i].slots == slots) return static_cast<int>(i);
  }
  assert(facts_.empty() && "indexes must be registered before facts");
  indexes_.push_back(Index{std::move(slots), {}});
  return static_cast<int>(indexes_.size() - 1);
}

void AlphaMemory::insert(const Fact& fact) {
  if (pos_.contains(fact.id)) return;
  pos_.emplace(fact.id, facts_.size());
  facts_.push_back(fact.id);
  for (auto& index : indexes_) {
    index.map.emplace(join_key_hash(fact, index.slots), fact.id);
  }
}

void AlphaMemory::erase(const Fact& fact) {
  auto it = pos_.find(fact.id);
  if (it == pos_.end()) return;
  const std::size_t p = it->second;
  const FactId moved = facts_.back();
  facts_[p] = moved;
  pos_[moved] = p;
  facts_.pop_back();
  pos_.erase(it);
  for (auto& index : indexes_) {
    const std::size_t h = join_key_hash(fact, index.slots);
    auto [lo, hi] = index.map.equal_range(h);
    for (auto mit = lo; mit != hi; ++mit) {
      if (mit->second == fact.id) {
        index.map.erase(mit);
        break;
      }
    }
  }
}

void AlphaMemory::probe(int index_handle, std::span<const Value> key_values,
                        std::vector<FactId>& out) const {
  const Index& index = indexes_[static_cast<std::size_t>(index_handle)];
  const std::size_t h = join_key_hash(key_values);
  auto [lo, hi] = index.map.equal_range(h);
  for (auto it = lo; it != hi; ++it) out.push_back(it->second);
}

AlphaStore::AlphaStore(std::span<const AlphaSpec> specs,
                       std::size_t template_count)
    : specs_(specs.begin(), specs.end()),
      memories_(specs.size()),
      by_template_(template_count) {
  for (std::uint32_t a = 0; a < specs_.size(); ++a) {
    by_template_[specs_[a].tmpl].push_back(a);
  }
}

void AlphaStore::matching_alphas(const Fact& fact,
                                 std::vector<std::uint32_t>& out) const {
  out.clear();
  for (std::uint32_t a : by_template_[fact.tmpl]) {
    if (specs_[a].accepts(fact.slots)) out.push_back(a);
  }
}

void AlphaStore::on_assert(const Fact& fact) {
  for (std::uint32_t a : by_template_[fact.tmpl]) {
    if (specs_[a].accepts(fact.slots)) memories_[a].insert(fact);
  }
}

void AlphaStore::on_retract(const Fact& fact) {
  for (std::uint32_t a : by_template_[fact.tmpl]) {
    if (specs_[a].accepts(fact.slots)) memories_[a].erase(fact);
  }
}

}  // namespace parulel
