#include "match/matcher.hpp"

#include "compile/vm.hpp"
#include "lang/program.hpp"
#include "match/parallel_treat.hpp"
#include "match/rete.hpp"
#include "match/treat.hpp"
#include "support/error.hpp"

namespace parulel {

const char* matcher_kind_name(MatcherKind kind) {
  switch (kind) {
    case MatcherKind::Rete: return "rete";
    case MatcherKind::Treat: return "treat";
    case MatcherKind::ParallelTreat: return "parallel-treat";
    case MatcherKind::Compiled: return "compiled";
  }
  return "unknown";
}

std::optional<MatcherKind> parse_matcher_kind(std::string_view name) {
  if (name == "rete") return MatcherKind::Rete;
  if (name == "treat") return MatcherKind::Treat;
  if (name == "parallel-treat") return MatcherKind::ParallelTreat;
  if (name == "compiled") return MatcherKind::Compiled;
  return std::nullopt;
}

std::span<const MatcherKind> all_matcher_kinds() {
  static constexpr MatcherKind kKinds[] = {
      MatcherKind::Rete, MatcherKind::Treat, MatcherKind::ParallelTreat,
      MatcherKind::Compiled};
  return kKinds;
}

std::unique_ptr<Matcher> make_matcher(MatcherKind kind,
                                      const Program& program,
                                      ThreadPool* pool) {
  switch (kind) {
    case MatcherKind::Rete:
      return std::make_unique<ReteMatcher>(program.rules, program.alphas,
                                           program.schema.size());
    case MatcherKind::Treat:
      return std::make_unique<TreatMatcher>(program.rules, program.alphas,
                                            program.schema.size());
    case MatcherKind::ParallelTreat:
      if (!pool) {
        throw RuntimeError(
            "the parallel-treat matcher requires a thread pool");
      }
      return std::make_unique<ParallelTreatMatcher>(
          program.rules, program.alphas, program.schema.size(), *pool);
    case MatcherKind::Compiled:
      return std::make_unique<CompiledMatcher>(program.rules, program.alphas,
                                               program.schema.size());
  }
  throw RuntimeError("unknown matcher kind");
}

}  // namespace parulel
