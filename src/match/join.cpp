#include "match/join.hpp"

#include <algorithm>

namespace parulel {
namespace {

PositionPlan plan_position(const CompiledPattern& pat, AlphaStore& alphas) {
  PositionPlan plan;
  plan.alpha = pat.alpha;
  plan.join_eqs = pat.join_eqs;
  if (!pat.join_eqs.empty()) {
    // Sort key slots for a canonical index identity; remember the env
    // variable aligned with each slot.
    std::vector<CompiledPattern::JoinEq> eqs = pat.join_eqs;
    std::sort(eqs.begin(), eqs.end(),
              [](const auto& a, const auto& b) { return a.slot < b.slot; });
    // A slot can appear twice (joined against two variables); index on
    // unique slots, keep the first variable per slot for the key and the
    // rest in join_eqs for verification.
    for (const auto& eq : eqs) {
      if (!plan.key_slots.empty() && plan.key_slots.back() == eq.slot) {
        continue;
      }
      plan.key_slots.push_back(eq.slot);
      plan.key_vars.push_back(eq.var);
    }
    plan.index_handle =
        alphas.memory(pat.alpha).ensure_index(plan.key_slots);
    plan.key_covers = plan.key_slots.size() == plan.join_eqs.size();
  }
  return plan;
}

/// All (slot, var) references of a positive pattern, in a uniform shape
/// regardless of how the source-order analyzer classified them. After
/// the analyzer's intra-pattern dedup, each variable appears at most
/// once per pattern.
std::vector<std::pair<int, VarId>> var_refs(const CompiledPattern& pat) {
  std::vector<std::pair<int, VarId>> refs;
  for (const auto& def : pat.defines) refs.emplace_back(def.slot, def.var);
  for (const auto& eq : pat.join_eqs) refs.emplace_back(eq.slot, eq.var);
  return refs;
}

/// Build the reordered derivation plan that starts at positive position
/// `fixed`: greedy join ordering (most bound-variable equalities first),
/// with alpha indexes registered for every probe step and guards pushed
/// to the earliest step where their variables are bound.
DerivePlan build_derive_plan(const CompiledRule& rule, std::size_t fixed,
                             AlphaStore& alphas) {
  struct GuardInfo {
    const CompiledExpr* expr;
    std::vector<VarId> vars;
    bool placed = false;
  };
  std::vector<GuardInfo> guard_infos;
  for (const auto& guard_list : rule.guards) {
    for (const auto& guard : guard_list) {
      GuardInfo info;
      info.expr = &guard;
      guard.collect_vars(info.vars);
      guard_infos.push_back(std::move(info));
    }
  }

  const std::size_t n = rule.positives.size();
  std::vector<bool> bound(static_cast<std::size_t>(rule.num_vars), false);
  std::vector<bool> used(n, false);

  DerivePlan plan;
  std::size_t next = fixed;
  for (std::size_t placed = 0; placed < n; ++placed) {
    if (placed > 0) {
      // Greedy: most equalities against bound variables. Ties break on
      // downstream connectivity — how many references in the remaining
      // patterns this pattern's new bindings would turn into join
      // equalities. (Example where this matters: Life's 9-way join. From
      // a neighbor cell, both the neighbor-list fact and a sibling cell
      // offer one equality, but only the neighbor-list's bindings key
      // every remaining pattern; joining the sibling first degenerates
      // to a scan of all cells of the generation.) Final tie-break:
      // source order, for determinism.
      std::size_t best = n;
      int best_eqs = -1;
      int best_downstream = -1;
      for (std::size_t q = 0; q < n; ++q) {
        if (used[q]) continue;
        int eqs = 0;
        std::vector<VarId> would_define;
        for (const auto& [slot, var] : var_refs(rule.positives[q])) {
          (void)slot;
          if (bound[static_cast<std::size_t>(var)]) {
            ++eqs;
          } else {
            would_define.push_back(var);
          }
        }
        int downstream = 0;
        for (std::size_t r = 0; r < n; ++r) {
          if (used[r] || r == q) continue;
          for (const auto& [slot, var] : var_refs(rule.positives[r])) {
            (void)slot;
            for (VarId v : would_define) {
              if (v == var) ++downstream;
            }
          }
        }
        if (eqs > best_eqs ||
            (eqs == best_eqs && downstream > best_downstream)) {
          best_eqs = eqs;
          best_downstream = downstream;
          best = q;
        }
      }
      next = best;
    }
    used[next] = true;

    DeriveStep step;
    step.pattern = static_cast<int>(next);
    step.alpha = rule.positives[next].alpha;
    for (const auto& [slot, var] : var_refs(rule.positives[next])) {
      if (bound[static_cast<std::size_t>(var)]) {
        step.eqs.push_back({slot, var});
      } else {
        step.defs.push_back({slot, var});
        bound[static_cast<std::size_t>(var)] = true;
      }
    }
    if (placed > 0 && !step.eqs.empty()) {
      // Canonical slot order for the index key.
      std::vector<CompiledPattern::JoinEq> sorted = step.eqs;
      std::sort(sorted.begin(), sorted.end(),
                [](const auto& a, const auto& b) { return a.slot < b.slot; });
      for (const auto& eq : sorted) {
        if (!step.key_slots.empty() && step.key_slots.back() == eq.slot) {
          continue;
        }
        step.key_slots.push_back(eq.slot);
        step.key_vars.push_back(eq.var);
      }
      step.index_handle =
          alphas.memory(step.alpha).ensure_index(step.key_slots);
      step.key_covers = step.key_slots.size() == step.eqs.size();
    }
    for (auto& info : guard_infos) {
      if (info.placed) continue;
      bool ready = true;
      for (VarId v : info.vars) {
        if (!bound[static_cast<std::size_t>(v)]) {
          ready = false;
          break;
        }
      }
      if (ready) {
        step.guards.push_back(info.expr);
        info.placed = true;
      }
    }
    plan.steps.push_back(std::move(step));
  }
  return plan;
}

}  // namespace

std::vector<RulePlan> build_join_plans(std::span<const CompiledRule> rules,
                                       AlphaStore& alphas) {
  std::vector<RulePlan> plans;
  plans.reserve(rules.size());
  for (const auto& rule : rules) {
    RulePlan plan;
    for (const auto& pat : rule.positives) {
      plan.positives.push_back(plan_position(pat, alphas));
    }
    for (const auto& pat : rule.negatives) {
      plan.negatives.push_back(plan_position(pat, alphas));
    }

    plan.def_position.assign(static_cast<std::size_t>(rule.num_lhs_vars),
                             -1);
    for (std::size_t p = 0; p < rule.positives.size(); ++p) {
      for (const auto& def : rule.positives[p].defines) {
        plan.def_position[static_cast<std::size_t>(def.var)] =
            static_cast<int>(p);
      }
    }

    // Negative-retract fast paths: pin the negated CE's join variables
    // to the vanished blocker's values, and index position 0 on whatever
    // pinned variables it defines.
    for (std::size_t n = 0; n < rule.negatives.size(); ++n) {
      NegRematchPlan rp;
      for (const auto& eq : rule.negatives[n].join_eqs) {
        rp.pins.push_back({eq.var, eq.slot});
      }
      // Dedup pins per var (a var joined on two slots pins twice; one
      // suffices for the DFS, both values are equal by join semantics).
      std::sort(rp.pins.begin(), rp.pins.end(),
                [](const auto& a, const auto& b) { return a.var < b.var; });
      rp.pins.erase(std::unique(rp.pins.begin(), rp.pins.end(),
                                [](const auto& a, const auto& b) {
                                  return a.var == b.var;
                                }),
                    rp.pins.end());

      const CompiledPattern& pos0 = rule.positives[0];
      for (const auto& def : pos0.defines) {
        for (const auto& pin : rp.pins) {
          if (pin.var == def.var) {
            rp.pos0_slots.push_back(def.slot);
            rp.pos0_vars.push_back(def.var);
          }
        }
      }
      if (!rp.pos0_slots.empty()) {
        // Canonical slot order, vars aligned.
        std::vector<std::size_t> order(rp.pos0_slots.size());
        for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                    return rp.pos0_slots[a] < rp.pos0_slots[b];
                  });
        std::vector<int> slots;
        std::vector<VarId> vars;
        for (std::size_t i : order) {
          if (!slots.empty() && slots.back() == rp.pos0_slots[i]) continue;
          slots.push_back(rp.pos0_slots[i]);
          vars.push_back(rp.pos0_vars[i]);
        }
        rp.pos0_slots = std::move(slots);
        rp.pos0_vars = std::move(vars);
        rp.index_handle =
            alphas.memory(pos0.alpha).ensure_index(rp.pos0_slots);
      }
      plan.neg_rematch.push_back(std::move(rp));
    }

    for (std::size_t p = 0; p < rule.positives.size(); ++p) {
      plan.derive.push_back(build_derive_plan(rule, p, alphas));
    }

    plans.push_back(std::move(plan));
  }
  return plans;
}

bool JoinEngine::fact_blocks(const FactView& fact, const PositionPlan& neg,
                             std::span<const Value> env) {
  for (const auto& eq : neg.join_eqs) {
    if (fact.slot(static_cast<std::size_t>(eq.slot)) !=
        env[static_cast<std::size_t>(eq.var)]) {
      return false;
    }
  }
  return true;
}

bool JoinEngine::quantified_satisfied(const WorkingMemory& wm,
                                      const PositionPlan& neg,
                                      std::span<const Value> env) const {
  const AlphaMemory& mem = alphas_.memory(neg.alpha);
  if (neg.join_eqs.empty()) return mem.size() > 0;
  const FactStore& store = wm.store();
  if (neg.index_handle >= 0) {
    const auto hit = mem.probe_group_canon(
        neg.index_handle, env_key_hash(neg.key_vars, env));
    if (!hit.group) return false;
    if (hit.rep != kNoFactRow && neg.key_covers) {
      // Canonical key decides the whole (non-empty) group at once.
      return canon_matches(store.view_row(hit.rep), hit.rep_slots,
                           neg.key_vars, env);
    }
    for (FactRow row : *hit.group) {
      if (fact_blocks(store.view_row(row), neg, env)) return true;
    }
    return false;
  }
  for (FactRow row : mem.rows()) {
    if (fact_blocks(store.view_row(row), neg, env)) return true;
  }
  return false;
}

bool JoinEngine::negatives_ok(const WorkingMemory& wm,
                              const CompiledRule& rule, const RulePlan& plan,
                              std::span<const Value> env) const {
  for (std::size_t n = 0; n < rule.negatives.size(); ++n) {
    const bool found = quantified_satisfied(wm, plan.negatives[n], env);
    // (not ...) requires none; (exists ...) requires at least one.
    if (found != rule.negatives[n].exists) return false;
  }
  return true;
}

}  // namespace parulel
