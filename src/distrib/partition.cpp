#include "distrib/partition.hpp"

#include <optional>

#include "support/error.hpp"

namespace parulel {
namespace {

/// Variable bound to `slot` in this pattern, if any.
std::optional<VarId> var_at_slot(const CompiledPattern& pat, int slot) {
  for (const auto& def : pat.defines) {
    if (def.slot == slot) return def.var;
  }
  for (const auto& eq : pat.join_eqs) {
    if (eq.slot == slot) return eq.var;
  }
  return std::nullopt;
}

}  // namespace

PartitionScheme::PartitionScheme(
    const Program& program,
    const std::unordered_map<std::string, std::string>& slot_by_template)
    : slots_(program.schema.size(), -1) {
  for (const auto& [tmpl_name, slot_name] : slot_by_template) {
    const Symbol tmpl_sym = program.symbols->intern(tmpl_name);
    const auto tmpl = program.schema.find(tmpl_sym);
    if (!tmpl) {
      throw ParseError("partition scheme names unknown template '" +
                       tmpl_name + "'");
    }
    const Symbol slot_sym = program.symbols->intern(slot_name);
    const auto slot = program.schema.at(*tmpl).slot_index(slot_sym);
    if (!slot) {
      throw ParseError("partition scheme names unknown slot '" + slot_name +
                       "' of template '" + tmpl_name + "'");
    }
    slots_[*tmpl] = *slot;
  }
}

unsigned PartitionScheme::site_of(TemplateId tmpl,
                                  const std::vector<Value>& slots,
                                  unsigned site_count) const {
  const int p = slots_[tmpl];
  if (p < 0 || site_count <= 1) return 0;
  return static_cast<unsigned>(slots[static_cast<std::size_t>(p)].hash() %
                               site_count);
}

std::vector<std::string> PartitionScheme::validate(
    const Program& program) const {
  std::vector<std::string> offending;
  for (const auto& rule : program.rules) {
    std::optional<VarId> shared_var;
    bool ok = true;
    int partitioned_patterns = 0;

    auto check_pattern = [&](const CompiledPattern& pat) {
      const int pslot = slots_[pat.tmpl];
      if (pslot < 0) return;  // replicated: always local
      ++partitioned_patterns;
      const auto var = var_at_slot(pat, pslot);
      if (!var) {
        ok = false;  // constant or wildcard partition slot: not provably
                     // co-located with the rest of the rule's facts
        return;
      }
      if (!shared_var) {
        shared_var = var;
      } else if (*shared_var != *var) {
        ok = false;
      }
    };

    for (const auto& pat : rule.positives) check_pattern(pat);
    for (const auto& pat : rule.negatives) check_pattern(pat);

    if (partitioned_patterns <= 1) ok = true;  // single slice, no cross-join
    if (!ok) {
      offending.emplace_back(program.symbols->name(rule.name));
    }
  }
  return offending;
}

}  // namespace parulel
