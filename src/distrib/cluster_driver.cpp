#include "distrib/cluster_driver.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <ostream>
#include <unordered_set>

#include "distrib/wire.hpp"
#include "support/error.hpp"
#include "support/timer.hpp"
#include "wm/fact.hpp"

namespace parulel {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

}  // namespace

ClusterDriver::ClusterDriver(const Program& program, ClusterConfig config)
    : program_(program), cfg_(std::move(config)) {
  if (cfg_.sites == 0) cfg_.sites = 1;
  if (!cfg_.faults.crashes.empty() && cfg_.journal_dir.empty()) {
    throw RuntimeError(
        "cluster crash plans require --journal-dir: killing a site without "
        "a WAL would genuinely lose its partition");
  }
  for (const auto& crash : cfg_.faults.crashes) {
    if (crash.site >= cfg_.sites) {
      throw RuntimeError("fault plan crashes site " +
                         std::to_string(crash.site) + " but only " +
                         std::to_string(cfg_.sites) + " sites exist");
    }
  }
  if (cfg_.spawn && cfg_.site_bin.empty()) {
    throw RuntimeError("cluster spawn mode needs the parulel_site binary "
                       "(--cluster-bin or PARULEL_SITE_BIN)");
  }
  if (cfg_.spawn && cfg_.program_path.empty()) {
    throw RuntimeError("cluster spawn mode needs the program file path");
  }
  sites_.resize(cfg_.sites);
  crash_done_.assign(cfg_.faults.crashes.size(), false);
}

ClusterDriver::~ClusterDriver() {
  stop_sites();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void ClusterDriver::spawn_site(unsigned id) {
  std::vector<std::string> args;
  args.push_back(cfg_.site_bin);
  args.push_back("--program");
  args.push_back(cfg_.program_path);
  args.push_back("--site-id");
  args.push_back(std::to_string(id));
  args.push_back("--sites");
  args.push_back(std::to_string(cfg_.sites));
  args.push_back("--driver");
  args.push_back("127.0.0.1:" + std::to_string(listen_port_));
  if (!cfg_.journal_dir.empty()) {
    args.push_back("--journal");
    args.push_back(cfg_.journal_dir + "/site-" + std::to_string(id) + ".wal");
  }
  if (!cfg_.partition_spec.empty()) {
    args.push_back("--partition");
    args.push_back(cfg_.partition_spec);
  }
  if (!cfg_.fault_spec.empty()) {
    args.push_back("--fault-plan");
    args.push_back(cfg_.fault_spec);
  }
  args.push_back("--checkpoint-every");
  args.push_back(std::to_string(cfg_.checkpoint_every));
  if (!cfg_.fsync) args.push_back("--no-fsync");

  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const int pid = ::fork();
  if (pid < 0) {
    throw RuntimeError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    ::_exit(127);  // exec failed; the parent sees a join timeout
  }
  sites_[id].pid = pid;
  ++stats_.spawns;
  if (cfg_.log) {
    *cfg_.log << "cluster: spawned site " << id << " (pid " << pid << ")\n";
  }
}

bool ClusterDriver::try_accept_joins(int timeout_ms) {
  std::vector<pollfd> pfds;
  pfds.push_back({listen_fd_, POLLIN, 0});
  for (const auto& conn : handshaking_) {
    if (conn.valid()) pfds.push_back({conn.fd(), POLLIN, 0});
  }
  int rc;
  do {
    rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
  } while (rc < 0 && errno == EINTR);

  for (;;) {
    const int fd = net::accept_conn(listen_fd_);
    if (fd < 0) break;
    handshaking_.emplace_back(fd);
  }

  bool joined = false;
  for (auto& conn : handshaking_) {
    if (!conn.valid()) continue;
    std::vector<std::string> lines;
    const bool alive = conn.read_lines(lines);
    if (lines.empty()) {
      if (!alive) conn.close();
      continue;
    }
    const std::string& hello = lines.front();
    if (!starts_with(hello, "cluster-hello parulel/2")) {
      conn.write_line("err protocol expected cluster-hello");
      conn.close();
      continue;
    }
    const std::uint64_t id = wire_field_u64(hello, "site", cfg_.sites);
    const auto epoch =
        static_cast<std::uint32_t>(wire_field_u64(hello, "epoch"));
    const auto port =
        static_cast<std::uint16_t>(wire_field_u64(hello, "port"));
    if (id >= cfg_.sites) {
      // A site id this cluster has no slot for: whoever it is, it is
      // not one of ours.
      conn.write_line("err site-unreachable");
      conn.close();
      continue;
    }
    SiteProc& site = sites_[id];
    if (epoch < site.epoch) {
      // Zombie fence: an older incarnation (stalled, then resumed after
      // its replacement joined) must not re-enter the run.
      conn.write_line("err epoch-stale");
      conn.close();
      continue;
    }
    conn.write_line("ok cluster-hello sites=" + std::to_string(cfg_.sites) +
                    " cycle=" + std::to_string(cycle_));
    site.conn = std::move(conn);
    site.port = port;
    site.epoch = epoch;
    site.up = true;
    site.backlog.clear();
    // Force at least one full barrier round before this site's report
    // can contribute to a quiescence verdict — a recovered site owes
    // its refires first.
    site.fired = 1;
    joined = true;
    if (cfg_.log) {
      *cfg_.log << "cluster: site " << id << " joined (epoch " << epoch
                << ", port " << port << ")\n";
    }
  }
  std::erase_if(handshaking_,
                [](const net::LineConn& c) { return !c.valid(); });
  return joined;
}

void ClusterDriver::wait_for_join(unsigned id) {
  Timer deadline;
  const std::uint64_t limit_ns =
      static_cast<std::uint64_t>(cfg_.join_timeout_s) * 1'000'000'000ull;
  while (!sites_[id].up) {
    try_accept_joins(100);
    if (cfg_.spawn && deadline.elapsed_ns() > limit_ns) {
      throw RuntimeError("site " + std::to_string(id) +
                         " did not join within " +
                         std::to_string(cfg_.join_timeout_s) + "s");
    }
  }
}

void ClusterDriver::broadcast_peers() {
  std::string line = "cluster-peers";
  for (unsigned s = 0; s < cfg_.sites; ++s) {
    line += " " + std::to_string(s) + "=127.0.0.1:" +
            std::to_string(sites_[s].port);
  }
  for (SiteProc& site : sites_) {
    if (site.up) site.conn.write_line(line);
  }
}

void ClusterDriver::retire_counters(SiteProc& site) {
  stats_.sent += site.live.sent;
  stats_.applied += site.live.applied;
  stats_.dup_suppressed += site.live.dup_suppressed;
  stats_.retries += site.live.retries;
  stats_.dropped += site.live.dropped;
  stats_.delayed += site.live.delayed;
  stats_.redials += site.live.redials;
  stats_.batches += site.live.batches;
  stats_.snapshots += site.live.snapshots;
  stats_.firings += site.live.firings;
  site.live = ClusterStats{};
}

ClusterStats ClusterDriver::totals() const {
  ClusterStats t = stats_;
  for (const SiteProc& site : sites_) {
    t.sent += site.live.sent;
    t.applied += site.live.applied;
    t.dup_suppressed += site.live.dup_suppressed;
    t.retries += site.live.retries;
    t.dropped += site.live.dropped;
    t.delayed += site.live.delayed;
    t.redials += site.live.redials;
    t.batches += site.live.batches;
    t.snapshots += site.live.snapshots;
    t.firings += site.live.firings;
  }
  return t;
}

void ClusterDriver::kill_site(unsigned id, std::uint64_t down_cycles) {
  SiteProc& site = sites_[id];
  if (!site.up || site.pid < 0) return;
  ::kill(site.pid, SIGKILL);
  ::waitpid(site.pid, nullptr, 0);
  if (cfg_.log) {
    *cfg_.log << "cluster: kill -9 site " << id << " at cycle " << cycle_
              << " (down " << down_cycles << ")\n";
  }
  site.pid = -1;
  site.up = false;
  site.conn.close();
  site.down_until = cycle_ + std::max<std::uint64_t>(1, down_cycles);
  retire_counters(site);
  ++stats_.kills;
}

void ClusterDriver::reap_dead() {
  for (unsigned s = 0; s < cfg_.sites; ++s) {
    SiteProc& site = sites_[s];
    if (!site.up) continue;
    bool dead = !site.conn.valid();
    if (!dead && site.pid >= 0) {
      dead = ::waitpid(site.pid, nullptr, WNOHANG) > 0;
      if (dead) site.pid = -1;
    }
    if (!dead) continue;
    // An unscheduled death (external kill -9, OOM, crash bug): treat it
    // like a planned kill with an immediate respawn appointment.
    if (site.pid >= 0) {
      ::waitpid(site.pid, nullptr, 0);
      site.pid = -1;
    }
    site.up = false;
    site.conn.close();
    site.down_until = cycle_ + 1;
    retire_counters(site);
    ++stats_.deaths;
    if (cfg_.log) {
      *cfg_.log << "cluster: site " << s << " died unexpectedly at cycle "
                << cycle_ << "\n";
    }
  }
}

bool ClusterDriver::barrier_round(std::uint64_t cycle) {
  bool all_answered = true;
  for (unsigned s = 0; s < cfg_.sites; ++s) {
    SiteProc& site = sites_[s];
    if (!site.up) continue;
    if (!site.conn.write_line("barrier " + std::to_string(cycle))) {
      site.up = false;
      all_answered = false;
    }
  }
  for (unsigned s = 0; s < cfg_.sites; ++s) {
    SiteProc& site = sites_[s];
    if (!site.up) continue;
    std::string reply;
    // Generous per-site deadline: a barrier is one local cycle plus a
    // few loopback writes; anything past this is a dead process.
    Timer deadline;
    bool got = false;
    while (deadline.elapsed_ns() < 60'000'000'000ull) {
      if (!site.backlog.empty()) {
        reply = std::move(site.backlog.front());
        site.backlog.erase(site.backlog.begin());
        if (!starts_with(reply, "barrier-done")) continue;
        got = true;
        break;
      }
      std::vector<std::string> lines;
      const bool alive = site.conn.read_lines(lines);
      site.backlog.insert(site.backlog.end(),
                          std::make_move_iterator(lines.begin()),
                          std::make_move_iterator(lines.end()));
      if (!site.backlog.empty()) continue;
      if (!alive) break;
      pollfd pfd{site.conn.fd(), POLLIN, 0};
      ::poll(&pfd, 1, 100);
    }
    if (!got) {
      site.up = false;
      all_answered = false;
      continue;
    }
    site.fired = wire_field_u64(reply, "fired");
    site.applied = wire_field_u64(reply, "applied");
    site.pending = wire_field_u64(reply, "pending");
    site.inbox = wire_field_u64(reply, "inbox");
    site.halted = wire_field_u64(reply, "halted") != 0;
    site.live.sent = wire_field_u64(reply, "sent");
    site.live.applied = wire_field_u64(reply, "applied-total");
    site.live.dup_suppressed = wire_field_u64(reply, "dup");
    site.live.retries = wire_field_u64(reply, "retries");
    site.live.dropped = wire_field_u64(reply, "dropped");
    site.live.delayed = wire_field_u64(reply, "delayed");
    site.live.redials = wire_field_u64(reply, "redials");
    site.live.batches = wire_field_u64(reply, "batches");
    site.live.snapshots = wire_field_u64(reply, "snapshots");
    site.live.firings = wire_field_u64(reply, "firings");
    if (site.halted) halted_ = true;
  }
  ++stats_.barriers;
  return all_answered;
}

ClusterOutcome ClusterDriver::run() {
  std::string error;
  listen_fd_ = net::listen_tcp(cfg_.port, &listen_port_, &error);
  if (listen_fd_ < 0) throw RuntimeError("cluster driver: " + error);
  if (cfg_.log) {
    *cfg_.log << "cluster: driver listening on 127.0.0.1:" << listen_port_
              << " (" << cfg_.sites << " sites, "
              << (cfg_.spawn ? "spawning" : "manual") << ")\n";
  }

  if (cfg_.spawn) {
    for (unsigned s = 0; s < cfg_.sites; ++s) spawn_site(s);
  }
  for (unsigned s = 0; s < cfg_.sites; ++s) wait_for_join(s);
  broadcast_peers();

  ClusterOutcome outcome;
  for (cycle_ = 0; cycle_ < cfg_.max_cycles; ++cycle_) {
    // Scheduled kills land at the barrier boundary — a real SIGKILL
    // between two cycles, which is exactly "kill -9 at a batch
    // boundary".
    for (std::size_t i = 0; i < cfg_.faults.crashes.size(); ++i) {
      const FaultPlan::Crash& crash = cfg_.faults.crashes[i];
      if (crash_done_[i] || crash.at_cycle != cycle_) continue;
      crash_done_[i] = true;
      kill_site(crash.site, crash.down_cycles);
    }
    reap_dead();
    // Keep servicing the control listener in steady state: zombie
    // incarnations redialing mid-run must be fenced (`err epoch-stale`)
    // rather than left hanging until some site goes down.
    try_accept_joins(0);
    // Respawn appointments falling due (and, in manual mode, wait for
    // the operator's restarted site to dial back in).
    bool rejoined = false;
    for (unsigned s = 0; s < cfg_.sites; ++s) {
      SiteProc& site = sites_[s];
      if (site.up || cycle_ < site.down_until) continue;
      if (cfg_.spawn) spawn_site(s);
      wait_for_join(s);
      ++stats_.restores;
      rejoined = true;
    }
    if (rejoined) broadcast_peers();

    if (!barrier_round(cycle_)) {
      // Someone died mid-round; survivors carry on, the dead rejoin
      // next cycle via reap_dead + the respawn path above.
      continue;
    }
    if (halted_) break;

    bool quiescent = true;
    for (const SiteProc& site : sites_) {
      if (!site.up || site.fired || site.applied || site.pending ||
          site.inbox) {
        quiescent = false;
        break;
      }
    }
    if (quiescent) {
      outcome.quiescent = true;
      break;
    }
  }

  outcome.halted = halted_;
  outcome.cycles = stats_.barriers;
  outcome.fingerprint = collect_fingerprint(&outcome.facts);
  stop_sites();
  for (SiteProc& site : sites_) retire_counters(site);
  outcome.stats = totals();
  return outcome;
}

std::uint64_t ClusterDriver::collect_fingerprint(std::uint64_t* facts) {
  // Canonical wire bytes double as the dedup key: two sites holding the
  // same replicated fact dump byte-identical tokens. Decode each
  // distinct token and fold its content hash exactly the way
  // DistributedEngine::global_fingerprint() does.
  std::unordered_set<std::string> seen;
  for (unsigned s = 0; s < cfg_.sites; ++s) {
    SiteProc& site = sites_[s];
    if (!site.up) continue;
    if (!site.conn.write_line("cc-dump")) continue;
    std::string head;
    Timer deadline;
    std::uint64_t want = 0;
    bool got = false;
    std::vector<std::string> fact_lines;
    while (deadline.elapsed_ns() < 30'000'000'000ull) {
      std::vector<std::string> lines;
      const bool alive = site.conn.read_lines(lines);
      for (std::string& line : lines) {
        if (!got) {
          if (starts_with(line, "ok cc-dump")) {
            want = wire_field_u64(line, "n");
            got = true;
          }
        } else if (starts_with(line, "fact ")) {
          fact_lines.push_back(std::move(line));
        }
      }
      if (got && fact_lines.size() >= want) break;
      if (!alive) break;
      pollfd pfd{site.conn.fd(), POLLIN, 0};
      ::poll(&pfd, 1, 100);
    }
    for (const std::string& line : fact_lines) {
      seen.insert(line.substr(5));
    }
  }
  std::uint64_t fp = 0x5bd1e995u;
  for (const std::string& hex : seen) {
    auto [tmpl, slots] =
        decode_fact_wire(from_hex(hex), *program_.symbols, program_.schema);
    fp ^= fingerprint_mix(fact_content_hash(tmpl, slots));
  }
  if (facts) *facts = seen.size();
  return fp;
}

void ClusterDriver::stop_sites() {
  for (SiteProc& site : sites_) {
    if (site.up) {
      site.conn.write_line("cc-stop");
    }
  }
  for (SiteProc& site : sites_) {
    if (site.up) {
      // Give the site a moment to flush its `ok cc-stop` and exit.
      Timer deadline;
      while (deadline.elapsed_ns() < 2'000'000'000ull) {
        std::vector<std::string> lines;
        if (!site.conn.read_lines(lines)) break;
        bool done = false;
        for (const std::string& line : lines) {
          if (starts_with(line, "ok cc-stop")) done = true;
        }
        if (done) break;
        pollfd pfd{site.conn.fd(), POLLIN, 0};
        ::poll(&pfd, 1, 50);
      }
      site.conn.close();
      site.up = false;
    }
    if (site.pid >= 0) {
      // A stop-refusing child would wedge the driver; bounded patience.
      Timer deadline;
      bool reaped = false;
      while (deadline.elapsed_ns() < 2'000'000'000ull) {
        if (::waitpid(site.pid, nullptr, WNOHANG) > 0) {
          reaped = true;
          break;
        }
        ::usleep(20'000);
      }
      if (!reaped) {
        ::kill(site.pid, SIGKILL);
        ::waitpid(site.pid, nullptr, 0);
      }
      site.pid = -1;
    }
  }
}

}  // namespace parulel
