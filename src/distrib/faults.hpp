// Deterministic fault injection for the simulated distributed engine.
//
// The original PARULEL/PARADISER target — networks of workstations —
// treats site failure and message loss as the normal case. This module
// supplies the failure side of that story: a FaultPlan describes which
// faults to inject (message loss/duplication/delay rates, scheduled
// site crashes), and a FaultInjector turns the plan into per-attempt
// verdicts drawn from one seed-driven splitmix64 stream.
//
// Determinism contract: the injector is consumed ONLY from the engine's
// sequential routing phase, in routing order, so a (program, partition,
// plan) triple always produces the same fault schedule regardless of
// thread count. That is what lets the equivalence suite assert that any
// plan with eventual delivery converges to the fault-free fingerprint.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace parulel {

/// Declarative description of the faults to inject into one run.
struct FaultPlan {
  std::uint64_t seed = 1;     ///< injector stream seed
  double loss_rate = 0.0;     ///< P(attempt dropped in transit)
  double duplicate_rate = 0.0;  ///< P(attempt delivered twice)
  double delay_rate = 0.0;    ///< P(attempt delayed extra cycles)
  unsigned max_delay_cycles = 3;  ///< delay uniform in [1, max]

  /// Kill `site` at the start of global cycle `at_cycle`; it restarts
  /// (restoring its last checkpoint) `down_cycles` cycles later.
  struct Crash {
    unsigned site = 0;
    std::uint64_t at_cycle = 0;
    std::uint64_t down_cycles = 1;
  };
  std::vector<Crash> crashes;

  bool any_network_faults() const {
    return loss_rate > 0.0 || duplicate_rate > 0.0 || delay_rate > 0.0;
  }
  bool enabled() const { return any_network_faults() || !crashes.empty(); }

  /// Parse the CLI spec: comma-separated key=value pairs.
  ///   loss=0.2,dup=0.05,delay=0.1,maxdelay=3,seed=7,crash=1@5+4;0@9+2
  /// crash entries are SITE@CYCLE+DOWN, ';'-separated. Rates must be in
  /// [0, 1). Throws ParseError on malformed input.
  static FaultPlan parse(const std::string& spec);
};

/// The network's decision about one transmission attempt.
struct FaultVerdict {
  bool drop = false;
  bool duplicate = false;
  unsigned delay = 0;  ///< extra cycles in flight; 0 = deliver now
};

/// Draws verdicts from one deterministic stream. One roll per attempt,
/// so retries of a lost message get fresh (independent) verdicts —
/// which is what makes eventual delivery certain for loss_rate < 1.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan)
      : plan_(plan), rng_(plan.seed) {}

  FaultVerdict roll();

  std::uint64_t rolls() const { return rolls_; }

 private:
  FaultPlan plan_;
  Rng rng_;
  std::uint64_t rolls_ = 0;
};

}  // namespace parulel
