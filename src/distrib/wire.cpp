#include "distrib/wire.hpp"

#include <charconv>

#include "service/journal.hpp"
#include "support/error.hpp"

namespace parulel {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string to_hex(std::string_view bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kHexDigits[c >> 4]);
    out.push_back(kHexDigits[c & 0xF]);
  }
  return out;
}

std::string from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw RuntimeError("cluster wire hex token has odd length");
  }
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_nibble(hex[i]);
    const int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw RuntimeError("cluster wire hex token has a non-hex digit");
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

std::string encode_fact_wire(TemplateId tmpl, std::span<const Value> slots,
                             const SymbolTable& symbols,
                             const Schema& schema) {
  service::ByteWriter w;
  w.str(symbols.name(schema.at(tmpl).name));
  w.u32(static_cast<std::uint32_t>(slots.size()));
  for (const Value& v : slots) service::encode_value(w, v, symbols);
  return w.take();
}

std::pair<TemplateId, std::vector<Value>> decode_fact_wire(
    std::string_view bytes, SymbolTable& symbols, const Schema& schema) {
  try {
    service::ByteReader r(bytes);
    const std::string name = r.str();
    const auto tmpl = schema.find(symbols.intern(name));
    if (!tmpl) {
      throw RuntimeError("cluster wire fact names unknown template '" + name +
                         "' (peer runs a different program?)");
    }
    std::vector<Value> slots(r.u32());
    for (Value& v : slots) v = service::decode_value(r, symbols);
    r.finish();
    return {*tmpl, std::move(slots)};
  } catch (const service::JournalError& e) {
    throw RuntimeError(std::string("malformed cluster wire fact: ") +
                       e.what());
  }
}

std::string encode_op_wire(const ClusterOp& op, const SymbolTable& symbols,
                           const Schema& schema) {
  std::string bytes;
  bytes.push_back(static_cast<char>(op.kind));
  bytes += encode_fact_wire(op.tmpl, op.slots, symbols, schema);
  return bytes;
}

ClusterOp decode_op_wire(std::string_view bytes, SymbolTable& symbols,
                         const Schema& schema) {
  if (bytes.empty()) throw RuntimeError("empty cluster wire op");
  const auto kind = static_cast<std::uint8_t>(bytes[0]);
  if (kind > static_cast<std::uint8_t>(ClusterOp::Kind::Retract)) {
    throw RuntimeError("cluster wire op has unknown kind " +
                       std::to_string(kind));
  }
  ClusterOp op;
  op.kind = static_cast<ClusterOp::Kind>(kind);
  auto [tmpl, slots] = decode_fact_wire(bytes.substr(1), symbols, schema);
  op.tmpl = tmpl;
  op.slots = std::move(slots);
  return op;
}

std::string encode_op_hex(const ClusterOp& op, const SymbolTable& symbols,
                          const Schema& schema) {
  return to_hex(encode_op_wire(op, symbols, schema));
}

ClusterOp decode_op_hex(std::string_view hex, SymbolTable& symbols,
                        const Schema& schema) {
  return decode_op_wire(from_hex(hex), symbols, schema);
}

std::uint64_t wire_field_u64(std::string_view line, std::string_view key,
                             std::uint64_t missing) {
  const std::string want = " " + std::string(key) + "=";
  const std::size_t at = line.find(want);
  if (at == std::string_view::npos) return missing;
  const char* first = line.data() + at + want.size();
  const char* last = line.data() + line.size();
  std::uint64_t v = missing;
  std::from_chars(first, last, v);
  return v;
}

std::string wire_field_str(std::string_view line, std::string_view key) {
  const std::string want = " " + std::string(key) + "=";
  const std::size_t at = line.find(want);
  if (at == std::string_view::npos) return {};
  const std::size_t start = at + want.size();
  const std::size_t end = line.find(' ', start);
  return std::string(line.substr(
      start, end == std::string_view::npos ? line.size() - start
                                           : end - start));
}

}  // namespace parulel
