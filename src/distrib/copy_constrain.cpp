#include "distrib/copy_constrain.hpp"

#include <optional>

#include "support/error.hpp"

namespace parulel {
namespace {

/// Variable bound at `slot` in this pattern, if any.
std::optional<VarId> var_at(const CompiledPattern& pat, int slot) {
  for (const auto& def : pat.defines) {
    if (def.slot == slot) return def.var;
  }
  for (const auto& eq : pat.join_eqs) {
    if (eq.slot == slot) return eq.var;
  }
  return std::nullopt;
}

CompiledExpr own_site_guard(VarId var, unsigned site, unsigned nsites) {
  CompiledExpr guard;
  guard.op = ExprOp::OwnSite;
  guard.args.push_back(CompiledExpr::make_var(var));
  guard.args.push_back(CompiledExpr::make_const(
      Value::integer(static_cast<std::int64_t>(site))));
  guard.args.push_back(CompiledExpr::make_const(
      Value::integer(static_cast<std::int64_t>(nsites))));
  return guard;
}

}  // namespace

Program constrain_copy(const Program& base, const PartitionScheme& scheme,
                       unsigned site, unsigned nsites) {
  Program copy = base;  // deep copy of schema/rules/alphas; shared symbols

  for (auto& rule : copy.rules) {
    // First positive pattern of a partitioned template anchors the
    // rule's slice; validated schemes co-locate the rest on the same
    // partition variable.
    bool anchored = false;
    for (std::size_t p = 0; p < rule.positives.size() && !anchored; ++p) {
      const CompiledPattern& pat = rule.positives[p];
      const int pslot = scheme.partition_slot(pat.tmpl);
      if (pslot < 0) continue;
      const auto var = var_at(pat, pslot);
      if (!var) {
        throw RuntimeError(
            "copy-and-constrain: rule '" +
            std::string(copy.symbols->name(rule.name)) +
            "' binds no variable at the partition slot of its first "
            "partitioned pattern");
      }
      // Attach at this pattern's position: the variable is bound by (or
      // checked against) this very pattern, so the guard prunes as
      // early as possible.
      rule.guards[p].push_back(own_site_guard(*var, site, nsites));
      anchored = true;
    }
    if (anchored) continue;
    // No partitioned positive pattern: a quantified CE whose partition
    // slot joins a positive-bound variable still anchors the slice (the
    // rule's output ownership follows that variable — e.g. tc's `base`
    // rule, whose only partitioned pattern is the (not (path ...))
    // guard on what it asserts). Rules with no anchor at all run
    // unchanged on every site and dedupe under set semantics.
    for (const auto& pat : rule.negatives) {
      const int pslot = scheme.partition_slot(pat.tmpl);
      if (pslot < 0) continue;
      const auto var = var_at(pat, pslot);
      if (!var) continue;  // local existential: cannot slice
      rule.guards.back().push_back(own_site_guard(*var, site, nsites));
      break;
    }
  }
  return copy;
}

}  // namespace parulel
