// Copy-and-constrain partitioning.
//
// Stolfo's copy-and-constrain technique distributes a production system
// by replicating each rule with added range constraints so that every
// copy only matches a slice of working memory. Operationally that is
// equivalent to partitioning facts by a designated slot ("the partition
// attribute") and running the unmodified ruleset at each site against
// its local slice — which is how this module realizes it.
//
// A PartitionScheme assigns each template either
//   - a partition slot: facts are owned by site hash(slot value) % S, or
//   - replicated status: every site holds a copy (control facts, small
//     dictionaries).
//
// The documented correctness restriction (same as PARADISER's): a
// program distributes transparently when, for every rule, all positive
// CEs of partitioned templates join on the partition attribute, so any
// instantiation's facts co-locate. The DistributedEngine validates this
// structurally and refuses schemes that break it.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "lang/program.hpp"

namespace parulel {

class PartitionScheme {
 public:
  /// `slot_by_template` maps template name -> slot name for partitioned
  /// templates; templates absent from the map are replicated.
  /// Throws ParseError on unknown template/slot names.
  PartitionScheme(
      const Program& program,
      const std::unordered_map<std::string, std::string>& slot_by_template);

  /// -1 when the template is replicated.
  int partition_slot(TemplateId tmpl) const {
    return slots_[tmpl];
  }
  bool replicated(TemplateId tmpl) const { return slots_[tmpl] < 0; }

  /// Owning site of a fact's content.
  unsigned site_of(TemplateId tmpl, const std::vector<Value>& slots,
                   unsigned site_count) const;

  /// Structural validation: every rule's positive CEs of partitioned
  /// templates must join on the partition attribute through a shared
  /// variable. Returns the names of offending rules (empty = valid).
  std::vector<std::string> validate(const Program& program) const;

 private:
  std::vector<int> slots_;  ///< per TemplateId; -1 = replicated
};

}  // namespace parulel
