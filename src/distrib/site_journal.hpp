// Per-site write-ahead log for the multi-process cluster.
//
// Each parulel_site process journals what it APPLIED, not what it sent:
// one SiteBatch record per cycle that changed anything, carrying the
// peer messages applied that cycle (with their (from, epoch, seq) dedup
// identity) and the ops the site's own rule firings applied locally.
// The record is written — and fsynced — BEFORE the site acks the peer
// messages it covers; that ack-after-durable ordering is what lets
// senders prune acked entries immediately: anything acked IS on disk at
// the receiver. A kill -9 can only lose unacked messages, and those the
// sender retransmits to the recovered incarnation.
//
// Recovery replays the WAL into a fresh WorkingMemory (snapshot facts,
// then each batch's peer ops and local ops in applied order — content
// idempotence makes replay safe even across the torn tail), restores
// the receive-side dedup state so retransmits of already-durable
// messages are suppressed, and bumps the epoch: the recovered
// incarnation journals an empty epoch-marker batch before sending
// anything, so a rapid double-crash still yields strictly increasing
// epochs.
//
// Records ride the service journal's file machinery (service/
// journal.hpp): same CRC framing, torn-tail tolerance, atomic
// header+snapshot rewrite. Only the payload codecs are cluster-specific
// (RecordType::SiteBatch / SiteSnapshot).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "distrib/checkpoint.hpp"
#include "distrib/wire.hpp"

namespace parulel {

/// One peer message this site applied, with its stream identity — the
/// durable form of an inbox entry. Replay re-adds (from, epoch, seq) to
/// the dedup state so the sender's retransmit is suppressed, then
/// re-applies the op.
struct SiteAppliedMsg {
  std::uint32_t from = 0;
  std::uint32_t epoch = 1;
  std::uint64_t seq = 0;
  ClusterOp op;
};

/// Everything one cycle made durable. `seq` is 1-based and contiguous
/// per WAL (gap-checked on replay); `epoch` is the incarnation that
/// wrote the record — recovery's next_epoch is max(epoch seen) + 1. An
/// empty record (no applied, no local) is an epoch marker.
struct SiteBatchRecord {
  std::uint64_t seq = 0;
  std::uint32_t epoch = 1;
  std::uint64_t cycle = 0;
  std::vector<SiteAppliedMsg> applied;
  std::vector<ClusterOp> local;

  bool empty() const { return applied.empty() && local.empty(); }
};

/// The site checkpoint a truncation rewrite folds the log into: alive
/// fact contents plus per-sender applied-seq state (the same shape the
/// simulated engine checkpoints — checkpoint.hpp).
struct SiteSnapshotRecord {
  std::uint64_t seq = 0;    ///< seq of the last batch folded in
  std::uint32_t epoch = 1;  ///< incarnation that wrote the snapshot
  std::uint64_t cycle = 0;
  std::vector<std::pair<TemplateId, std::vector<Value>>> facts;
  std::vector<ChannelRecvState> recv;
};

// -- payload codecs (first byte = RecordType::SiteBatch/SiteSnapshot) --

std::string encode_site_batch(const SiteBatchRecord& rec,
                              const SymbolTable& symbols,
                              const Schema& schema);
SiteBatchRecord decode_site_batch(std::string_view payload,
                                  SymbolTable& symbols, const Schema& schema);

std::string encode_site_snapshot(const SiteSnapshotRecord& rec,
                                 const SymbolTable& symbols,
                                 const Schema& schema);
SiteSnapshotRecord decode_site_snapshot(std::string_view payload,
                                        SymbolTable& symbols,
                                        const Schema& schema);

/// Apply one op to a working memory with the cluster's content
/// semantics: asserts absorb into set semantics, retract-of-missing is
/// a no-op. Shared by the live site cycle and WAL replay — one
/// definition of "apply" keeps replay exact.
void apply_cluster_op(WorkingMemory& wm, const ClusterOp& op);

/// What recover_site_wal rebuilt from one site's WAL.
struct SiteRecovery {
  std::uint32_t next_epoch = 1;  ///< epoch the new incarnation must use
  std::uint64_t last_seq = 0;    ///< last batch record seq (0 = none)
  std::uint64_t cycle = 0;       ///< cycle of the last record replayed
  std::uint64_t batches = 0;     ///< batch records replayed (post-snapshot)
  std::unique_ptr<WorkingMemory> wm;   ///< replayed fact store
  std::vector<ChannelRecvState> recv;  ///< replayed dedup state
  std::uint64_t torn_bytes = 0;        ///< dropped torn-tail bytes
  std::string torn_kind;               ///< which record kind was torn
  std::uint64_t torn_offset = 0;       ///< byte offset of the torn frame
};

/// Scan + replay an existing site WAL. Throws service::JournalError on
/// corruption, version skew, or a header whose program text differs
/// from `program` (the WAL belongs to a different run — fail closed).
/// `site_count` sizes the recv vector for senders the log never heard
/// from.
SiteRecovery recover_site_wal(const std::string& path,
                              const Program& program,
                              const std::string& program_text,
                              unsigned site_count);

}  // namespace parulel
