// Cluster wire codec: canonical bytes for facts and ops on the
// inter-site channel.
//
// The multi-process cluster (site_runner.hpp / cluster_driver.hpp)
// ships working-memory deltas between OS processes, so the encoding
// must be canonical ACROSS processes: the same fact content always
// produces the same bytes no matter which process encoded it. That is
// achieved the same way the journal does it — templates and symbols
// travel as text and are re-interned on decode — reusing the journal's
// ByteWriter/ByteReader/value codec (service/journal.hpp) so there is
// exactly one byte layout for durable and shipped payloads.
//
// Payloads are carried inside parulel/2 protocol lines as lowercase hex
// tokens (`cc-batch ... fact=<hex>`), keeping the cluster family
// line-based like the rest of the protocol. Canonical bytes also give
// the driver its dedup key: two sites dumping the same replicated fact
// produce byte-identical tokens, so global_fingerprint() dedup needs no
// cross-process id agreement.
//
// Exactness caveat (shared with the journal fingerprint digests): hash
// equality across processes relies on symbol ids matching, which holds
// when every symbol a fact carries appears in the program text (both
// processes intern program symbols in parse order). All shipped
// workloads satisfy this.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lang/program.hpp"

namespace parulel {

/// One content-addressed cross-site operation, as shipped in a
/// `cc-batch` line. Retracts carry content, not ids — fact ids are
/// site-local (mirrors DistributedEngine::Message).
struct ClusterOp {
  enum class Kind : std::uint8_t { Assert = 0, Retract = 1 };
  Kind kind = Kind::Assert;
  TemplateId tmpl = kInvalidTemplate;
  std::vector<Value> slots;
};

/// Lowercase hex of arbitrary bytes, and back. from_hex throws
/// RuntimeError on odd length or a non-hex digit.
std::string to_hex(std::string_view bytes);
std::string from_hex(std::string_view hex);

/// Canonical fact bytes: [template name][slot count][values], symbols
/// as text. Encode with the sender's tables; decode re-interns against
/// the receiver's (both parsed the same program).
std::string encode_fact_wire(TemplateId tmpl, std::span<const Value> slots,
                             const SymbolTable& symbols, const Schema& schema);

/// Throws RuntimeError when the template name is not in `schema` (the
/// peer runs a different program — fail loudly, not quietly).
std::pair<TemplateId, std::vector<Value>> decode_fact_wire(
    std::string_view bytes, SymbolTable& symbols, const Schema& schema);

/// A ClusterOp as raw bytes: kind byte + fact bytes. The site WAL
/// stores these; the wire ships them hex-wrapped.
std::string encode_op_wire(const ClusterOp& op, const SymbolTable& symbols,
                           const Schema& schema);
ClusterOp decode_op_wire(std::string_view bytes, SymbolTable& symbols,
                         const Schema& schema);

/// A ClusterOp as one hex token: to_hex(encode_op_wire()).
std::string encode_op_hex(const ClusterOp& op, const SymbolTable& symbols,
                          const Schema& schema);
ClusterOp decode_op_hex(std::string_view hex, SymbolTable& symbols,
                        const Schema& schema);

// -- `key=value` field helpers for cluster protocol lines --

/// Integer field " key=N" in a protocol line; `missing` when absent.
std::uint64_t wire_field_u64(std::string_view line, std::string_view key,
                             std::uint64_t missing = 0);

/// String field " key=token" (token runs to the next space); empty when
/// absent.
std::string wire_field_str(std::string_view line, std::string_view key);

}  // namespace parulel
