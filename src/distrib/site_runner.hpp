// One cluster site as an OS process: the real-socket counterpart of a
// DistributedEngine site.
//
// A SiteRunner owns one partition slice of working memory, one matcher,
// and one meta engine. It dials the cluster driver (cluster_driver.hpp)
// with `cluster-hello`, then serves barriers: each `barrier N` line
// runs exactly one recognize-act cycle — drain peer batches (dedup by
// (from, epoch, seq)), match + meta-redact + fire, route buffered ops
// through the consistent-hash partition scheme (local ops apply in
// place, remote ops ship as `cc-batch` lines over per-peer TCP
// connections, replicated ops broadcast) — and replies `barrier-done`
// with the counters the driver's termination detector sums.
//
// Durability: with a WAL configured, every cycle that changed state
// appends one SiteBatch record (applied peer messages + local ops)
// BEFORE the site acks the covered messages — ack-after-durable, so a
// peer's pruned entry is always recoverable here. A kill -9'd site
// replays its WAL on restart (site_journal.hpp), bumps its epoch, and
// rejoins: the fresh matcher re-derives its conflict set from the
// replayed facts and refires, and content idempotence at every site
// absorbs whatever the refires resend. Unacked messages the crash
// destroyed are retransmitted by their senders to the new incarnation.
//
// Reliability mirrors the simulated engine's channel layer message for
// message: per-(destination, epoch) sequence numbers, cumulative acks
// (`cc-ack epoch=E floor=F sparse=...`), retransmission with the same
// 2..16-cycle doubling backoff, and seed-driven fault injection on the
// send side (drop / duplicate / delay verdicts per transmission
// attempt) so chaos schedules are reproducible across runs.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "distrib/faults.hpp"
#include "distrib/partition.hpp"
#include "distrib/site_journal.hpp"
#include "engine/actions.hpp"
#include "engine/engine.hpp"
#include "meta/meta_engine.hpp"
#include "net/cluster.hpp"
#include "obs/stats.hpp"
#include "service/journal.hpp"

namespace parulel {

struct SiteOptions {
  unsigned site_id = 0;
  unsigned sites = 1;
  std::string driver_host = "127.0.0.1";
  std::uint16_t driver_port = 0;
  std::uint16_t listen_port = 0;  ///< 0 = ephemeral
  std::string journal_path;       ///< empty = no WAL (volatile site)
  /// TEMPLATE=SLOT partition map (same form the CLI parses); empty =
  /// everything replicated.
  std::unordered_map<std::string, std::string> partition;
  /// Network fault plan. Crash entries are the DRIVER's job (real
  /// SIGKILL); sites ignore them. The per-site injector stream is
  /// derived from the plan seed and the site id, so every site draws
  /// independent but reproducible verdicts.
  FaultPlan faults;
  /// Site WAL batches between snapshot rewrites; 0 = never truncate.
  std::uint64_t checkpoint_every = 32;
  bool fsync = true;
};

/// Cumulative counters one site reports in every `barrier-done` line.
struct SiteCounters {
  std::uint64_t sent = 0;       ///< cc-batch transmissions (incl. dups)
  std::uint64_t applied = 0;    ///< peer ops applied (post-dedup)
  std::uint64_t dup = 0;        ///< duplicates suppressed
  std::uint64_t retries = 0;    ///< retransmissions
  std::uint64_t dropped = 0;    ///< injector-dropped attempts
  std::uint64_t delayed = 0;    ///< injector-delayed attempts
  std::uint64_t redials = 0;    ///< peer reconnect attempts
  std::uint64_t batches = 0;    ///< WAL batch records written
  std::uint64_t snapshots = 0;  ///< WAL snapshot rewrites
  std::uint64_t firings = 0;    ///< rule firings
};

class SiteRunner {
 public:
  /// `program_text` must be the exact text `program` was parsed from —
  /// it keys WAL compatibility and makes symbol ids line up across the
  /// cluster.
  SiteRunner(const Program& program, std::string program_text,
             SiteOptions options);
  ~SiteRunner();

  /// Recover/create the WAL, start listening, join the driver, and
  /// serve barriers until `cc-stop` or driver EOF. Returns the process
  /// exit code (0 = clean stop, 4 = runtime failure).
  int run();

  const SiteCounters& counters() const { return counters_; }

 private:
  struct OutEntry {
    ClusterOp op;
    std::uint64_t seq = 0;
    std::uint64_t next_retry = 0;
    std::uint64_t backoff = 2;
    bool attempted = false;  ///< any prior transmit = later ones are retries
  };

  struct Delayed {
    std::uint64_t due = 0;
    unsigned to = 0;
    std::string line;  ///< precomposed cc-batch line
  };

  /// Everything this site knows about one peer. The dialer of a conn is
  /// the data sender: `out` carries our cc-batch lines (acks come back
  /// on it); `in` is the conn the peer dialed us on (their batches in,
  /// our acks out).
  struct Peer {
    net::LineConn out;
    net::LineConn in;
    std::string host;
    std::uint16_t port = 0;
    std::uint32_t epoch_seen = 0;  ///< zombie fence for cc-hello
    std::uint64_t next_seq = 1;
    std::map<std::uint64_t, OutEntry> pending;  ///< unacked sends
    bool ack_needed = false;
    std::uint32_t ack_epoch = 0;  ///< stream the pending ack covers
  };

  /// One decoded inbound cc-batch, queued until the next barrier.
  struct InboxMsg {
    unsigned from = 0;
    std::uint32_t epoch = 1;
    std::uint64_t seq = 0;
    ClusterOp op;
  };

  bool setup();                 // WAL + listener + driver handshake
  void assert_initial_facts();  // fresh start only: local slice of deffacts
  bool pump(int timeout_ms);    // poll + dispatch all readable conns
  void handle_driver_line(const std::string& line);
  void handle_peer_line(unsigned from, const std::string& line);
  void handle_ack_line(unsigned to, const std::string& line);
  void accept_pending();        // new inbound conns -> handshaking_
  void process_handshakes();    // accept + answer inbound cc-hellos
  void run_cycle(std::uint64_t cycle);
  void route_op(const PendingOp& op, std::vector<ClusterOp>& local_ops);
  void enqueue_send(unsigned to, ClusterOp op);
  void transmit(unsigned to, OutEntry& entry);
  void send_due(std::uint64_t cycle);
  void ensure_peer_conn(unsigned to);
  void journal_cycle(std::uint64_t cycle,
                     std::vector<SiteAppliedMsg> applied,
                     std::vector<ClusterOp> local_ops);
  void send_acks();
  void dump(net::LineConn& to);
  std::string batch_line(const OutEntry& entry) const;

  const Program& program_;
  std::string program_text_;
  SiteOptions opt_;
  PartitionScheme scheme_;
  MetaEngine meta_;

  std::unique_ptr<WorkingMemory> wm_;
  std::unique_ptr<Matcher> matcher_;
  std::vector<ChannelRecvState> recv_;
  std::vector<Peer> peers_;
  std::vector<InboxMsg> inbox_;
  std::vector<Delayed> delayed_;
  std::vector<net::LineConn> handshaking_;  ///< accepted, pre-cc-hello

  net::LineConn driver_;
  int listen_fd_ = -1;
  std::uint16_t listen_port_ = 0;

  std::uint32_t epoch_ = 1;
  std::uint64_t cycle_ = 0;
  std::uint64_t fired_this_cycle_ = 0;
  std::uint64_t applied_this_cycle_ = 0;
  bool halted_ = false;
  bool stopping_ = false;

  std::unique_ptr<service::SessionJournal> journal_;
  std::uint64_t wal_seq_ = 0;
  std::uint64_t batches_since_snapshot_ = 0;

  std::unique_ptr<FaultInjector> injector_;
  SiteCounters counters_;
  JournalStats journal_stats_;  ///< SessionJournal's counter sink
};

}  // namespace parulel
