#include "distrib/dist_engine.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "distrib/checkpoint.hpp"
#include "obs/report.hpp"
#include "support/error.hpp"
#include "support/timer.hpp"

namespace parulel {

namespace {

// Retransmission backoff, in simulated cycles. A message sent at cycle
// c is drained (and acked) at c+1, so the first timeout fires at c+2;
// the backoff doubles per retry up to the cap, bounding the retry storm
// a long outage can cause while keeping recovery latency low.
constexpr std::uint64_t kInitialBackoff = 2;
constexpr std::uint64_t kMaxBackoff = 16;

}  // namespace

/// A content-addressed cross-site operation. Retracts carry content, not
/// ids — fact ids are site-local. The routing metadata (from/epoch/seq)
/// is stamped only on the reliable path; the fast path ignores it.
struct DistributedEngine::Message {
  enum class Kind : std::uint8_t { Assert, Retract };
  Kind kind = Kind::Assert;
  TemplateId tmpl = kInvalidTemplate;
  std::vector<Value> slots;

  unsigned from = 0;        ///< sender site
  std::uint32_t epoch = 0;  ///< sender incarnation when sent
  std::uint64_t seq = 0;    ///< per (from, to, epoch) sequence number
};

/// One sent-but-not-yet-stable message on a sender's channel. Retained
/// until the receiver checkpoints its effects (pruned then); `acked`
/// only stops retransmission — an acked entry must still be replayed if
/// the receiver crashes before its next checkpoint.
struct DistributedEngine::OutEntry {
  Message msg;
  bool acked = false;
  std::uint64_t next_retry = 0;
  std::uint64_t backoff = kInitialBackoff;
};

/// A delayed message in flight: delivered (or dropped, if the target is
/// down) once `due` arrives.
struct DistributedEngine::InFlight {
  std::uint64_t due = 0;
  unsigned to = 0;
  Message msg;
};

struct DistributedEngine::Site {
  /// Send side of one directed channel. Wiped by a crash of the sender —
  /// the replacement incarnation starts a fresh sequence stream under a
  /// new epoch, so stale seqs can never collide.
  struct ChannelOut {
    std::uint64_t next_seq = 1;
    std::map<std::uint64_t, OutEntry> pending;
  };

  explicit Site(const Program& program)
      : wm(std::make_unique<WorkingMemory>(program.schema)),
        matcher(make_matcher(MatcherKind::Treat, program)) {}

  std::unique_ptr<WorkingMemory> wm;
  std::unique_ptr<Matcher> matcher;
  std::vector<Message> inbox;
  std::vector<PendingOps> pending;  ///< this cycle's buffered firings
  std::uint64_t firings = 0;
  std::uint64_t busy_ns = 0;        ///< this cycle's compute time
  std::uint64_t redactions_this_cycle = 0;
  bool work_done_this_cycle = false;

  // --- reliability state (used only under reliable routing) ---
  std::uint32_t epoch = 1;          ///< incarnation; bumped per restart
  bool down = false;
  std::uint64_t down_until = 0;     ///< restart cycle while down
  std::vector<ChannelRecvState> recv;  ///< per sender: applied seqs
  std::vector<ChannelOut> out;         ///< per destination
  SiteCheckpoint checkpoint;           ///< last durable snapshot
};

DistributedEngine::DistributedEngine(const Program& program,
                                     PartitionScheme scheme,
                                     DistConfig config)
    : program_(program),
      scheme_(std::move(scheme)),
      config_(config),
      meta_(program) {
  if (config_.sites == 0) config_.sites = 1;
  if (config_.strict_partitioning) {
    const auto offending = scheme_.validate(program_);
    if (!offending.empty()) {
      std::ostringstream os;
      os << "partition scheme cannot co-locate rules:";
      for (const auto& name : offending) os << ' ' << name;
      throw RuntimeError(os.str());
    }
  }
  for (const auto& crash : config_.faults.crashes) {
    if (crash.site >= config_.sites) {
      throw RuntimeError("fault plan crashes site " +
                         std::to_string(crash.site) + " but only " +
                         std::to_string(config_.sites) + " sites exist");
    }
  }
  const unsigned threads =
      config_.threads == 0 ? config_.sites : config_.threads;
  pool_ = std::make_unique<ThreadPool>(threads);
  sites_.reserve(config_.sites);
  for (unsigned s = 0; s < config_.sites; ++s) {
    sites_.push_back(std::make_unique<Site>(program_));
  }

  reliable_ = config_.faults.enabled() || config_.checkpoint_every > 0;
  if (reliable_) {
    if (config_.faults.any_network_faults()) {
      injector_ = std::make_unique<FaultInjector>(config_.faults);
    }
    crash_done_.assign(config_.faults.crashes.size(), false);
    for (auto& site : sites_) {
      site->recv.resize(config_.sites);
      site->out.resize(config_.sites);
    }
  }
}

DistributedEngine::~DistributedEngine() = default;

const WorkingMemory& DistributedEngine::site_wm(unsigned site) const {
  return *sites_[site]->wm;
}

void DistributedEngine::assert_initial_facts() {
  for (const auto& fact : program_.initial_facts) {
    if (scheme_.replicated(fact.tmpl)) {
      for (auto& site : sites_) {
        site->wm->assert_fact(fact.tmpl, fact.slots);
      }
    } else {
      const unsigned owner =
          scheme_.site_of(fact.tmpl, fact.slots, config_.sites);
      sites_[owner]->wm->assert_fact(fact.tmpl, fact.slots);
    }
  }
}

// ------------------------------------------------ reliable routing layer

void DistributedEngine::transmit(OutEntry& entry, unsigned to,
                                 DistStats& stats) {
  auto& f = stats.faults;
  ++f.sent;
  Site& dest = *sites_[to];
  const FaultVerdict v = injector_ ? injector_->roll() : FaultVerdict{};
  if (dest.down || v.drop) {
    // Lost on the wire (or the target isn't listening). The sender only
    // learns by ack timeout; the entry stays pending for retransmission.
    ++f.dropped;
  } else if (v.delay > 0) {
    ++f.delayed;
    in_flight_.push_back({now_ + 1 + v.delay, to, entry.msg});
  } else {
    ++f.delivered;
    dest.inbox.push_back(entry.msg);
    if (v.duplicate) {
      ++f.sent;
      ++f.delivered;
      dest.inbox.push_back(entry.msg);
    }
  }
  entry.next_retry = now_ + entry.backoff;
}

void DistributedEngine::send_reliable(unsigned from, unsigned to,
                                      Message msg, DistStats& stats) {
  Site& sender = *sites_[from];
  Site::ChannelOut& ch = sender.out[to];
  msg.from = from;
  msg.epoch = sender.epoch;
  msg.seq = ch.next_seq++;
  OutEntry entry;
  entry.msg = std::move(msg);
  transmit(entry, to, stats);
  ch.pending.emplace(entry.msg.seq, std::move(entry));
}

void DistributedEngine::resolve_in_flight(DistStats& stats) {
  if (in_flight_.empty()) return;
  std::vector<InFlight> keep;
  keep.reserve(in_flight_.size());
  for (auto& flight : in_flight_) {
    if (flight.due > now_) {
      keep.push_back(std::move(flight));
      continue;
    }
    Site& dest = *sites_[flight.to];
    if (dest.down) {
      ++stats.faults.dropped;  // arrived at a dead site; retry covers it
    } else {
      ++stats.faults.delivered;
      dest.inbox.push_back(std::move(flight.msg));
    }
  }
  in_flight_.swap(keep);
}

void DistributedEngine::drain_inbox_reliable(unsigned site_idx,
                                             DistStats& stats) {
  Site& site = *sites_[site_idx];
  for (auto& msg : site.inbox) {
    AppliedSeqs& applied = site.recv[msg.from].by_epoch[msg.epoch];
    if (applied.contains(msg.seq)) {
      ++stats.faults.dup_suppressed;
    } else {
      applied.add(msg.seq);
      ++stats.faults.applied;
      if (msg.kind == Message::Kind::Assert) {
        site.wm->assert_fact(msg.tmpl, std::move(msg.slots));
      } else if (auto id = site.wm->find(msg.tmpl, msg.slots)) {
        site.wm->retract(*id);
      }
    }
    // Ack, piggybacked on the cycle barrier: stop the sender's
    // retransmission. Duplicates re-ack — the earlier ack may have
    // predated a retransmit. Ignored if the sender restarted since
    // (epoch mismatch): its replacement stream owns those seqs now.
    Site& sender = *sites_[msg.from];
    if (!sender.down && sender.epoch == msg.epoch) {
      auto it = sender.out[site_idx].pending.find(msg.seq);
      if (it != sender.out[site_idx].pending.end()) it->second.acked = true;
    }
  }
  site.inbox.clear();
}

void DistributedEngine::retransmit_due(DistStats& stats) {
  for (unsigned s = 0; s < sites_.size(); ++s) {
    Site& sender = *sites_[s];
    if (sender.down) continue;
    for (unsigned to = 0; to < sites_.size(); ++to) {
      for (auto& [seq, entry] : sender.out[to].pending) {
        if (entry.acked || now_ < entry.next_retry) continue;
        ++stats.faults.retries;
        entry.backoff = std::min(entry.backoff * 2, kMaxBackoff);
        transmit(entry, to, stats);
      }
    }
  }
}

void DistributedEngine::take_checkpoint(unsigned site_idx,
                                        DistStats& stats) {
  Site& site = *sites_[site_idx];
  site.checkpoint = capture_checkpoint(now_, *site.wm, site.recv);
  ++stats.faults.checkpoints;
  // Everything acked (hence applied) at this site is now durable:
  // senders can forget it. Unacked entries stay retained for replay.
  for (auto& sender : sites_) {
    std::erase_if(sender->out[site_idx].pending,
                  [](const auto& kv) { return kv.second.acked; });
  }
}

void DistributedEngine::crash_site(unsigned site_idx,
                                   std::uint64_t down_cycles,
                                   DistStats& stats) {
  Site& site = *sites_[site_idx];
  site.down = true;
  site.down_until = now_ + std::max<std::uint64_t>(1, down_cycles);
  // Volatile state dies with the process: working memory, matcher,
  // undrained inbox, unfired pending ops, and both channel directions.
  stats.faults.wiped += site.inbox.size();
  site.inbox.clear();
  site.pending.clear();
  site.wm = std::make_unique<WorkingMemory>(program_.schema);
  site.matcher = make_matcher(MatcherKind::Treat, program_);
  site.recv.assign(config_.sites, ChannelRecvState{});
  site.out.assign(config_.sites, Site::ChannelOut{});
  site.busy_ns = 0;
  site.redactions_this_cycle = 0;
  site.work_done_this_cycle = false;
  ++stats.faults.crashes;
}

void DistributedEngine::restore_site(unsigned site_idx, DistStats& stats) {
  Site& site = *sites_[site_idx];
  site.down = false;
  site.down_until = 0;
  // New incarnation: a fresh sequence stream that can't collide with
  // seqs the old incarnation handed out before dying.
  site.epoch += 1;
  site.wm = restore_working_memory(program_.schema, site.checkpoint);
  site.matcher = make_matcher(MatcherKind::Treat, program_);
  site.recv = site.checkpoint.recv;
  if (site.recv.size() != config_.sites) site.recv.resize(config_.sites);
  site.out.assign(config_.sites, Site::ChannelOut{});
  ++stats.faults.restores;
  // Inbox replay: every message a peer retained (not yet covered by our
  // checkpoint) is retransmitted from the recorded sequence state on.
  // Acked-but-unpruned entries were applied only to the state we just
  // lost, so they go back on the wire too; the restored dedup state
  // suppresses any the checkpoint did cover.
  for (unsigned s = 0; s < sites_.size(); ++s) {
    if (s == site_idx) continue;
    Site& peer = *sites_[s];
    if (peer.down) continue;
    for (auto& [seq, entry] : peer.out[site_idx].pending) {
      entry.acked = false;
      entry.backoff = kInitialBackoff;
      entry.next_retry = now_;  // retransmit this cycle
    }
  }
}

void DistributedEngine::process_fault_timeline(DistStats& stats) {
  for (unsigned s = 0; s < sites_.size(); ++s) {
    if (sites_[s]->down && now_ >= sites_[s]->down_until) {
      restore_site(s, stats);
    }
  }
  for (std::size_t i = 0; i < config_.faults.crashes.size(); ++i) {
    const FaultPlan::Crash& crash = config_.faults.crashes[i];
    if (crash_done_[i] || crash.at_cycle != now_) continue;
    crash_done_[i] = true;
    if (!sites_[crash.site]->down) {
      crash_site(crash.site, crash.down_cycles, stats);
    }
  }
}

bool DistributedEngine::reliable_work_pending() const {
  if (!in_flight_.empty()) return true;
  for (const auto& site : sites_) {
    if (site->down) return true;
    for (const auto& ch : site->out) {
      for (const auto& [seq, entry] : ch.pending) {
        if (!entry.acked) return true;
      }
    }
  }
  return false;
}

// ----------------------------------------------------------- routing

void DistributedEngine::route_op(unsigned from_site, const PendingOp& op,
                                 const WorkingMemory& from_wm,
                                 DistStats& stats) {
  auto deliver = [&](unsigned to, Message msg) {
    if (to == from_site) {
      // Local: apply immediately, preserving op order at this site.
      // Loopback never traverses the network, so no faults apply.
      auto& wm = *sites_[to]->wm;
      if (msg.kind == Message::Kind::Assert) {
        wm.assert_fact(msg.tmpl, std::move(msg.slots));
      } else if (auto id = wm.find(msg.tmpl, msg.slots)) {
        wm.retract(*id);
      }
    } else if (!reliable_) {
      sites_[to]->inbox.push_back(std::move(msg));
      ++stats.messages;
    } else {
      send_reliable(from_site, to, std::move(msg), stats);
      ++stats.messages;
    }
  };

  auto route_content = [&](Message msg) {
    if (scheme_.replicated(msg.tmpl)) {
      ++stats.broadcasts;
      for (unsigned s = 0; s < config_.sites; ++s) deliver(s, msg);
    } else {
      // Compute the owner before moving: argument evaluation order
      // would otherwise be allowed to gut msg.slots first.
      const unsigned owner =
          scheme_.site_of(msg.tmpl, msg.slots, config_.sites);
      deliver(owner, std::move(msg));
    }
  };

  switch (op.kind) {
    case PendingOp::Kind::Assert: {
      Message msg;
      msg.kind = Message::Kind::Assert;
      msg.tmpl = op.tmpl;
      msg.slots = op.slots;
      route_content(std::move(msg));
      break;
    }
    case PendingOp::Kind::Retract: {
      const FactView fact = from_wm.view(op.retract_id);
      Message msg;
      msg.kind = Message::Kind::Retract;
      msg.tmpl = fact.tmpl();
      msg.slots = fact.copy_slots();
      route_content(std::move(msg));
      break;
    }
    case PendingOp::Kind::Modify: {
      const FactView fact = from_wm.view(op.retract_id);
      Message retract;
      retract.kind = Message::Kind::Retract;
      retract.tmpl = fact.tmpl();
      retract.slots = fact.copy_slots();
      route_content(std::move(retract));
      Message assert_msg;
      assert_msg.kind = Message::Kind::Assert;
      assert_msg.tmpl = op.tmpl;
      assert_msg.slots = op.slots;
      route_content(std::move(assert_msg));
      break;
    }
  }
}

// ------------------------------------------------------------- cycle

bool DistributedEngine::cycle(DistStats& stats) {
  now_ = stats.run.cycles;
  if (reliable_) {
    // Phase 0: the fault timeline — restarts first (a site scheduled to
    // restart this cycle participates in it), then crashes; then any
    // delayed deliveries falling due.
    process_fault_timeline(stats);
    resolve_in_flight(stats);
  }

  // Phase 1 (sequential, ordered): drain inboxes.
  bool any_inbox = false;
  for (unsigned s = 0; s < sites_.size(); ++s) {
    Site& site = *sites_[s];
    if (site.inbox.empty()) continue;
    any_inbox = true;
    if (reliable_) {
      drain_inbox_reliable(s, stats);
      continue;
    }
    for (auto& msg : site.inbox) {
      if (msg.kind == Message::Kind::Assert) {
        site.wm->assert_fact(msg.tmpl, std::move(msg.slots));
      } else if (auto id = site.wm->find(msg.tmpl, msg.slots)) {
        site.wm->retract(*id);
      }
    }
    site.inbox.clear();
  }

  // Phase 2 (parallel): per-site match + redact + fire-buffered. Down
  // sites sit the cycle out; the survivors keep the run degrading
  // gracefully instead of stalling behind the failure.
  CycleStats cycle_stats;
  cycle_stats.cycle = now_;
  {
    ScopedAccumulator t(cycle_stats.match_ns);  // dominant phase
    std::vector<std::function<void(unsigned)>> jobs;
    jobs.reserve(sites_.size());
    for (auto& site_ptr : sites_) {
      Site* site = site_ptr.get();
      if (site->down) continue;
      jobs.push_back([this, site](unsigned) {
        Timer busy;
        site->pending.clear();
        site->work_done_this_cycle = false;
        site->redactions_this_cycle = 0;
        [&] {
          site->matcher->apply_delta(*site->wm, site->wm->drain_delta());
          ConflictSet& cs = site->matcher->conflict_set();
          const std::vector<InstId> eligible = cs.alive_ids();
          if (eligible.empty()) return;

          std::vector<InstId> to_fire;
          if (meta_.active()) {
            const MetaOutcome outcome =
                meta_.run(*site->wm, cs, eligible, nullptr);
            site->redactions_this_cycle = outcome.redacted.size();
            std::set_difference(eligible.begin(), eligible.end(),
                                outcome.redacted.begin(),
                                outcome.redacted.end(),
                                std::back_inserter(to_fire));
          } else {
            to_fire = eligible;
          }
          if (to_fire.empty()) return;

          site->work_done_this_cycle = true;
          site->pending.resize(to_fire.size());
          for (std::size_t i = 0; i < to_fire.size(); ++i) {
            fire_buffered(program_, cs.get(to_fire[i]), *site->wm,
                          site->pending[i]);
            cs.mark_fired(to_fire[i]);
            ++site->firings;
          }
        }();
        site->busy_ns = busy.elapsed_ns();
      });
    }
    pool_->run_batch(jobs);
  }

  // Simulated concurrent wall time: sites overlap, routing is serial.
  std::uint64_t slowest_site = 0;
  for (const auto& site : sites_) {
    if (site->down) continue;
    slowest_site = std::max(slowest_site, site->busy_ns);
  }
  stats.sim_wall_ns += slowest_site;

  // Phase 3 (sequential, ordered): routing and local application.
  std::uint64_t cycle_messages_before = stats.messages;
  bool any_fired = false;
  {
    ScopedAccumulator t(cycle_stats.merge_ns);
    for (unsigned s = 0; s < sites_.size(); ++s) {
      Site& site = *sites_[s];
      if (site.down) continue;
      for (const auto& pending : site.pending) {
        any_fired = true;
        for (const auto& op : pending.ops) {
          route_op(s, op, *site.wm, stats);
        }
        if (config_.output && !pending.printout.empty()) {
          *config_.output << pending.printout;
        }
        if (pending.halt) halted_ = true;
        cycle_stats.fired += 1;
      }
      site.pending.clear();
    }
    if (reliable_) retransmit_due(stats);
  }

  // Routing/merge is serial in both the simulation and real deployments
  // (it models the coordinator applying the cycle's committed updates).
  stats.sim_wall_ns += cycle_stats.merge_ns;

  if (reliable_ && config_.checkpoint_every > 0 &&
      (now_ + 1) % config_.checkpoint_every == 0) {
    for (unsigned s = 0; s < sites_.size(); ++s) {
      if (!sites_[s]->down) take_checkpoint(s, stats);
    }
  }

  for (const auto& site : sites_) {
    if (site->down) continue;
    cycle_stats.conflict_set_size += site->matcher->conflict_set().size();
    cycle_stats.redacted += site->redactions_this_cycle;
  }
  stats.run.absorb(cycle_stats);
  if (config_.trace_cycles) {
    stats.run.per_cycle.push_back(cycle_stats);
    stats.per_cycle_messages.push_back(stats.messages -
                                       cycle_messages_before);
  }
  PARULEL_OBS_ONLY({
    if (config_.trace) {
      obs::CycleActivity activity;
      activity.engine = "distributed";
      activity.threads = pool_->thread_count();
      const PoolStatsSnapshot pool_now = pool_->stats();
      obs::fill_pool_activity(activity, pool_now, trace_prev_pool_);
      trace_prev_pool_ = pool_now;
      config_.trace->cycle(cycle_stats, activity);
    }
  })

  if (halted_) {
    stats.run.halted = true;
    return false;
  }
  // Quiescence: no firings, no pending inter-site traffic, and the
  // inboxes we drained this cycle were empty too. Under reliable
  // routing, additionally: nothing delayed on the wire, nothing
  // unacked, and every site up (a down site still owes its recovery
  // re-derivation). Crashes scheduled after quiescence never occur.
  bool inbox_pending = false;
  for (const auto& site : sites_) {
    if (!site->inbox.empty()) inbox_pending = true;
  }
  if (!any_fired && !inbox_pending && !any_inbox &&
      (!reliable_ || !reliable_work_pending())) {
    stats.run.quiescent = true;
    return false;
  }
  return true;
}

DistStats DistributedEngine::run() {
  DistStats stats;
  Timer wall;
  if (reliable_) {
    // The initial snapshot: the state a site crashed before its first
    // periodic checkpoint recovers to.
    now_ = 0;
    for (unsigned s = 0; s < sites_.size(); ++s) take_checkpoint(s, stats);
  }
  while (stats.run.cycles < config_.max_cycles) {
    if (!cycle(stats)) break;
  }
  stats.run.wall_ns = wall.elapsed_ns();
  stats.run.termination = stats.run.halted ? TerminationReason::Halted
                          : stats.run.quiescent
                              ? TerminationReason::Quiescent
                              : TerminationReason::CycleLimit;
  stats.per_site_firings.clear();
  for (const auto& site : sites_) {
    stats.per_site_firings.push_back(site->firings);
  }
  PARULEL_OBS_ONLY({
    if (config_.trace) {
      config_.trace->run(stats.run, "distributed",
                         reliable_ ? &stats.faults : nullptr);
    }
    if (config_.metrics) {
      stats.run.publish(*config_.metrics);
      stats.faults.publish(*config_.metrics);
      obs::publish_pool_stats(*config_.metrics, pool_->stats());
      config_.metrics->set("dist.sites", config_.sites);
      config_.metrics->set("dist.messages", stats.messages);
      config_.metrics->set("dist.broadcasts", stats.broadcasts);
    }
  })
  return stats;
}

std::uint64_t DistributedEngine::global_fingerprint() const {
  // Distinct alive contents across all sites (replicated facts dedupe).
  // Dedup verifies full content equality, never hash alone. Content
  // hashes come cached from each site's store.
  std::unordered_multimap<std::uint64_t, FactView> seen;
  std::uint64_t fp = 0x5bd1e995u;
  for (const auto& site : sites_) {
    const WorkingMemory& wm = *site->wm;
    for (FactId id = 1; id <= wm.high_water(); ++id) {
      if (!wm.alive(id)) continue;
      const FactView fact = wm.view(id);
      const std::uint64_t raw = fact.content_hash();
      bool duplicate = false;
      auto [lo, hi] = seen.equal_range(raw);
      for (auto it = lo; it != hi; ++it) {
        if (it->second.same_content(fact)) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      seen.emplace(raw, fact);
      fp ^= fingerprint_mix(raw);
    }
  }
  return fp;
}

}  // namespace parulel
