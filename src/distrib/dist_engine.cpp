#include "distrib/dist_engine.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "match/treat.hpp"
#include "support/error.hpp"
#include "support/timer.hpp"

namespace parulel {

/// A content-addressed cross-site operation. Retracts carry content, not
/// ids — fact ids are site-local.
struct DistributedEngine::Message {
  enum class Kind : std::uint8_t { Assert, Retract };
  Kind kind = Kind::Assert;
  TemplateId tmpl = kInvalidTemplate;
  std::vector<Value> slots;
};

struct DistributedEngine::Site {
  explicit Site(const Program& program)
      : wm(program.schema),
        matcher(program.rules, program.alphas, program.schema.size()) {}

  WorkingMemory wm;
  TreatMatcher matcher;
  std::vector<Message> inbox;
  std::vector<PendingOps> pending;  ///< this cycle's buffered firings
  std::uint64_t firings = 0;
  std::uint64_t busy_ns = 0;        ///< this cycle's compute time
  std::uint64_t redactions_this_cycle = 0;
  bool work_done_this_cycle = false;
};

DistributedEngine::DistributedEngine(const Program& program,
                                     PartitionScheme scheme,
                                     DistConfig config)
    : program_(program),
      scheme_(std::move(scheme)),
      config_(config),
      meta_(program) {
  if (config_.sites == 0) config_.sites = 1;
  if (config_.strict_partitioning) {
    const auto offending = scheme_.validate(program_);
    if (!offending.empty()) {
      std::ostringstream os;
      os << "partition scheme cannot co-locate rules:";
      for (const auto& name : offending) os << ' ' << name;
      throw RuntimeError(os.str());
    }
  }
  const unsigned threads =
      config_.threads == 0 ? config_.sites : config_.threads;
  pool_ = std::make_unique<ThreadPool>(threads);
  sites_.reserve(config_.sites);
  for (unsigned s = 0; s < config_.sites; ++s) {
    sites_.push_back(std::make_unique<Site>(program_));
  }
}

DistributedEngine::~DistributedEngine() = default;

const WorkingMemory& DistributedEngine::site_wm(unsigned site) const {
  return sites_[site]->wm;
}

void DistributedEngine::assert_initial_facts() {
  for (const auto& fact : program_.initial_facts) {
    if (scheme_.replicated(fact.tmpl)) {
      for (auto& site : sites_) {
        site->wm.assert_fact(fact.tmpl, fact.slots);
      }
    } else {
      const unsigned owner =
          scheme_.site_of(fact.tmpl, fact.slots, config_.sites);
      sites_[owner]->wm.assert_fact(fact.tmpl, fact.slots);
    }
  }
}

void DistributedEngine::route_op(unsigned from_site, const PendingOp& op,
                                 const WorkingMemory& from_wm,
                                 DistStats& stats) {
  auto deliver = [&](unsigned to, Message msg) {
    if (to == from_site) {
      // Local: apply immediately, preserving op order at this site.
      auto& wm = sites_[to]->wm;
      if (msg.kind == Message::Kind::Assert) {
        wm.assert_fact(msg.tmpl, std::move(msg.slots));
      } else if (auto id = wm.find(msg.tmpl, msg.slots)) {
        wm.retract(*id);
      }
    } else {
      sites_[to]->inbox.push_back(std::move(msg));
      ++stats.messages;
    }
  };

  auto route_content = [&](Message msg) {
    if (scheme_.replicated(msg.tmpl)) {
      ++stats.broadcasts;
      for (unsigned s = 0; s < config_.sites; ++s) deliver(s, msg);
    } else {
      // Compute the owner before moving: argument evaluation order
      // would otherwise be allowed to gut msg.slots first.
      const unsigned owner =
          scheme_.site_of(msg.tmpl, msg.slots, config_.sites);
      deliver(owner, std::move(msg));
    }
  };

  switch (op.kind) {
    case PendingOp::Kind::Assert: {
      Message msg;
      msg.kind = Message::Kind::Assert;
      msg.tmpl = op.tmpl;
      msg.slots = op.slots;
      route_content(std::move(msg));
      break;
    }
    case PendingOp::Kind::Retract: {
      const Fact& fact = from_wm.fact(op.retract_id);
      Message msg;
      msg.kind = Message::Kind::Retract;
      msg.tmpl = fact.tmpl;
      msg.slots = fact.slots;
      route_content(std::move(msg));
      break;
    }
    case PendingOp::Kind::Modify: {
      const Fact& fact = from_wm.fact(op.retract_id);
      Message retract;
      retract.kind = Message::Kind::Retract;
      retract.tmpl = fact.tmpl;
      retract.slots = fact.slots;
      route_content(std::move(retract));
      Message assert_msg;
      assert_msg.kind = Message::Kind::Assert;
      assert_msg.tmpl = op.tmpl;
      assert_msg.slots = op.slots;
      route_content(std::move(assert_msg));
      break;
    }
  }
}

bool DistributedEngine::cycle(DistStats& stats) {
  // Phase 1 (sequential, ordered): drain inboxes.
  bool any_inbox = false;
  for (auto& site : sites_) {
    if (site->inbox.empty()) continue;
    any_inbox = true;
    for (auto& msg : site->inbox) {
      if (msg.kind == Message::Kind::Assert) {
        site->wm.assert_fact(msg.tmpl, std::move(msg.slots));
      } else if (auto id = site->wm.find(msg.tmpl, msg.slots)) {
        site->wm.retract(*id);
      }
    }
    site->inbox.clear();
  }

  // Phase 2 (parallel): per-site match + redact + fire-buffered.
  CycleStats cycle_stats;
  {
    ScopedAccumulator t(cycle_stats.match_ns);  // dominant phase
    std::vector<std::function<void(unsigned)>> jobs;
    jobs.reserve(sites_.size());
    for (auto& site_ptr : sites_) {
      Site* site = site_ptr.get();
      jobs.push_back([this, site](unsigned) {
        Timer busy;
        site->pending.clear();
        site->work_done_this_cycle = false;
        site->redactions_this_cycle = 0;
        [&] {
          site->matcher.apply_delta(site->wm, site->wm.drain_delta());
          ConflictSet& cs = site->matcher.conflict_set();
          const std::vector<InstId> eligible = cs.alive_ids();
          if (eligible.empty()) return;

          std::vector<InstId> to_fire;
          if (meta_.active()) {
            const MetaOutcome outcome =
                meta_.run(site->wm, cs, eligible, nullptr);
            site->redactions_this_cycle = outcome.redacted.size();
            std::set_difference(eligible.begin(), eligible.end(),
                                outcome.redacted.begin(),
                                outcome.redacted.end(),
                                std::back_inserter(to_fire));
          } else {
            to_fire = eligible;
          }
          if (to_fire.empty()) return;

          site->work_done_this_cycle = true;
          site->pending.resize(to_fire.size());
          for (std::size_t i = 0; i < to_fire.size(); ++i) {
            fire_buffered(program_, cs.get(to_fire[i]), site->wm,
                          site->pending[i]);
            cs.mark_fired(to_fire[i]);
            ++site->firings;
          }
        }();
        site->busy_ns = busy.elapsed_ns();
      });
    }
    pool_->run_batch(jobs);
  }

  // Simulated concurrent wall time: sites overlap, routing is serial.
  std::uint64_t slowest_site = 0;
  for (const auto& site : sites_) {
    slowest_site = std::max(slowest_site, site->busy_ns);
  }
  stats.sim_wall_ns += slowest_site;

  // Phase 3 (sequential, ordered): routing and local application.
  std::uint64_t cycle_messages_before = stats.messages;
  bool any_fired = false;
  {
    ScopedAccumulator t(cycle_stats.merge_ns);
    for (unsigned s = 0; s < sites_.size(); ++s) {
      Site& site = *sites_[s];
      for (const auto& pending : site.pending) {
        any_fired = true;
        for (const auto& op : pending.ops) {
          route_op(s, op, site.wm, stats);
        }
        if (config_.output && !pending.printout.empty()) {
          *config_.output << pending.printout;
        }
        if (pending.halt) halted_ = true;
        cycle_stats.fired += 1;
      }
      site.pending.clear();
    }
  }

  // Routing/merge is serial in both the simulation and real deployments
  // (it models the coordinator applying the cycle's committed updates).
  stats.sim_wall_ns += cycle_stats.merge_ns;

  for (const auto& site : sites_) {
    cycle_stats.conflict_set_size += site->matcher.conflict_set().size();
    cycle_stats.redacted += site->redactions_this_cycle;
  }
  stats.run.absorb(cycle_stats);
  if (config_.trace_cycles) {
    stats.run.per_cycle.push_back(cycle_stats);
    stats.per_cycle_messages.push_back(stats.messages -
                                       cycle_messages_before);
  }

  if (halted_) {
    stats.run.halted = true;
    return false;
  }
  // Quiescence: no firings, no pending inter-site traffic, and the
  // inboxes we drained this cycle were empty too.
  bool inbox_pending = false;
  for (const auto& site : sites_) {
    if (!site->inbox.empty()) inbox_pending = true;
  }
  if (!any_fired && !inbox_pending && !any_inbox) {
    stats.run.quiescent = true;
    return false;
  }
  return true;
}

DistStats DistributedEngine::run() {
  DistStats stats;
  Timer wall;
  while (stats.run.cycles < config_.max_cycles) {
    if (!cycle(stats)) break;
  }
  stats.run.wall_ns = wall.elapsed_ns();
  stats.per_site_firings.clear();
  for (const auto& site : sites_) {
    stats.per_site_firings.push_back(site->firings);
  }
  return stats;
}

std::uint64_t DistributedEngine::global_fingerprint() const {
  // Distinct alive contents across all sites (replicated facts dedupe).
  // Dedup verifies full content equality, never hash alone.
  std::unordered_multimap<std::uint64_t, const Fact*> seen;
  std::uint64_t fp = 0x5bd1e995u;
  for (const auto& site : sites_) {
    const WorkingMemory& wm = site->wm;
    for (FactId id = 1; id <= wm.high_water(); ++id) {
      if (!wm.alive(id)) continue;
      const Fact& fact = wm.fact(id);
      const std::uint64_t raw = fact.content_hash();
      bool duplicate = false;
      auto [lo, hi] = seen.equal_range(raw);
      for (auto it = lo; it != hi; ++it) {
        if (it->second->same_content(fact)) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      seen.emplace(raw, &fact);
      std::uint64_t h = raw;
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdULL;
      h ^= h >> 33;
      fp ^= h;
    }
  }
  return fp;
}

}  // namespace parulel
