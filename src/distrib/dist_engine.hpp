// Simulated distributed PARULEL (the PARADISER substitution).
//
// The original system ran on networks of workstations; here N "sites"
// live in one process, each with its own working memory, matcher, and
// meta engine, communicating only through content-addressed message
// queues. Site compute phases run in parallel on the thread pool (one
// task per site — the real system's unit of parallelism); all routing is
// sequential and ordered, so runs are deterministic for any thread
// count. Message counts are recorded per cycle, standing in for the
// network-cost measurements of the original evaluation (see DESIGN.md,
// substitution notes).
//
// Execution model per global cycle (barrier-synchronized, like the
// PARADISER incremental-update protocol's synchronous mode):
//   1. each site drains its inbox into its working memory;
//   2. each site matches, runs its local meta-rule redaction, and fires
//      its surviving instantiations against its local snapshot;
//   3. buffered writes are routed: ops on facts the site owns apply
//      locally, ops owned elsewhere become messages; replicated-template
//      ops broadcast.
// The run ends when every site is quiescent and every inbox is empty.
//
// Fault tolerance (optional; see distrib/faults.hpp, checkpoint.hpp):
// when a FaultPlan or checkpoint interval is configured, cross-site
// traffic goes through a reliable routing layer — per-channel sequence
// numbers, acks piggybacked on the cycle barrier, and retransmission
// with bounded exponential backoff — so injected loss, duplication,
// delay, and site crashes never change the final fixpoint: for any
// plan that eventually lets all messages through, global_fingerprint()
// equals the fault-free run's. Sites snapshot their state every
// `checkpoint_every` cycles; a crashed site restores its last
// checkpoint on restart and peers replay every message not covered by
// it, while the surviving sites keep cycling. With no plan configured,
// routing takes the original fast path untouched.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "distrib/faults.hpp"
#include "distrib/partition.hpp"
#include "engine/actions.hpp"
#include "engine/engine.hpp"
#include "meta/meta_engine.hpp"
#include "runtime/thread_pool.hpp"

namespace parulel {

struct DistConfig {
  unsigned sites = 4;
  unsigned threads = 0;  ///< 0 = one thread per site
  std::uint64_t max_cycles = 1'000'000;
  bool trace_cycles = false;
  std::ostream* output = nullptr;
  /// Refuse partition schemes that fail structural validation.
  bool strict_partitioning = true;

  /// Faults to inject (distrib/faults.hpp). An enabled plan switches
  /// routing onto the reliable layer.
  FaultPlan faults;
  /// Cycles between site snapshots; 0 = only the initial snapshot (and
  /// reliable routing stays off unless `faults` is enabled).
  std::uint64_t checkpoint_every = 0;

  /// Observability (see src/obs/): per-cycle "cycle" events plus a
  /// final "run" event carrying the fault counters; metrics receive
  /// run/fault/pool totals at the end of run().
  obs::TraceSink* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

struct DistStats {
  RunStats run;                       ///< aggregated over sites
  std::uint64_t messages = 0;         ///< cross-site ops routed
  std::uint64_t broadcasts = 0;       ///< replicated-template ops
  FaultStats faults;                  ///< reliable-routing accounting
  std::vector<std::uint64_t> per_site_firings;
  std::vector<std::uint64_t> per_cycle_messages;  ///< when tracing

  /// Simulated distributed wall time: per cycle, the slowest site's
  /// compute time (sites run concurrently on real hardware) plus the
  /// serial routing time. On a single-core host — where sites execute
  /// interleaved and measured wall time cannot show concurrency — this
  /// is the faithful stand-in for the original multi-machine numbers.
  std::uint64_t sim_wall_ns = 0;
};

class DistributedEngine {
 public:
  DistributedEngine(const Program& program, PartitionScheme scheme,
                    DistConfig config);
  ~DistributedEngine();

  /// Route the program's deffacts to their owning sites.
  void assert_initial_facts();

  DistStats run();

  unsigned site_count() const { return config_.sites; }
  const WorkingMemory& site_wm(unsigned site) const;

  /// Order-independent fingerprint of ALL sites' alive facts combined
  /// (replicated facts counted once per content).
  std::uint64_t global_fingerprint() const;

 private:
  struct Site;
  struct Message;
  struct OutEntry;
  struct InFlight;

  void route_op(unsigned from_site, const PendingOp& op,
                const WorkingMemory& from_wm, DistStats& stats);
  bool cycle(DistStats& stats);

  // --- reliable routing layer (active only when reliable_) ---
  void send_reliable(unsigned from, unsigned to, Message msg,
                     DistStats& stats);
  void transmit(OutEntry& entry, unsigned to, DistStats& stats);
  void resolve_in_flight(DistStats& stats);
  void retransmit_due(DistStats& stats);
  void drain_inbox_reliable(unsigned site, DistStats& stats);
  void take_checkpoint(unsigned site, DistStats& stats);
  void process_fault_timeline(DistStats& stats);
  void crash_site(unsigned site, std::uint64_t down_cycles,
                  DistStats& stats);
  void restore_site(unsigned site, DistStats& stats);
  bool reliable_work_pending() const;

  const Program& program_;
  PartitionScheme scheme_;
  DistConfig config_;
  std::unique_ptr<ThreadPool> pool_;
  MetaEngine meta_;
  std::vector<std::unique_ptr<Site>> sites_;
  bool halted_ = false;

  bool reliable_ = false;  ///< FaultPlan enabled or checkpointing on
  std::unique_ptr<FaultInjector> injector_;
  std::vector<InFlight> in_flight_;   ///< delayed messages on the wire
  std::vector<bool> crash_done_;      ///< per FaultPlan::crashes entry
  std::uint64_t now_ = 0;             ///< current global cycle index
  PoolStatsSnapshot trace_prev_pool_;  ///< per-cycle trace differencing
};

}  // namespace parulel
