// Simulated distributed PARULEL (the PARADISER substitution).
//
// The original system ran on networks of workstations; here N "sites"
// live in one process, each with its own working memory, matcher, and
// meta engine, communicating only through content-addressed message
// queues. Site compute phases run in parallel on the thread pool (one
// task per site — the real system's unit of parallelism); all routing is
// sequential and ordered, so runs are deterministic for any thread
// count. Message counts are recorded per cycle, standing in for the
// network-cost measurements of the original evaluation (see DESIGN.md,
// substitution notes).
//
// Execution model per global cycle (barrier-synchronized, like the
// PARADISER incremental-update protocol's synchronous mode):
//   1. each site drains its inbox into its working memory;
//   2. each site matches, runs its local meta-rule redaction, and fires
//      its surviving instantiations against its local snapshot;
//   3. buffered writes are routed: ops on facts the site owns apply
//      locally, ops owned elsewhere become messages; replicated-template
//      ops broadcast.
// The run ends when every site is quiescent and every inbox is empty.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "distrib/partition.hpp"
#include "engine/actions.hpp"
#include "engine/engine.hpp"
#include "meta/meta_engine.hpp"
#include "runtime/thread_pool.hpp"

namespace parulel {

struct DistConfig {
  unsigned sites = 4;
  unsigned threads = 0;  ///< 0 = one thread per site
  std::uint64_t max_cycles = 1'000'000;
  bool trace_cycles = false;
  std::ostream* output = nullptr;
  /// Refuse partition schemes that fail structural validation.
  bool strict_partitioning = true;
};

struct DistStats {
  RunStats run;                       ///< aggregated over sites
  std::uint64_t messages = 0;         ///< cross-site ops routed
  std::uint64_t broadcasts = 0;       ///< replicated-template ops
  std::vector<std::uint64_t> per_site_firings;
  std::vector<std::uint64_t> per_cycle_messages;  ///< when tracing

  /// Simulated distributed wall time: per cycle, the slowest site's
  /// compute time (sites run concurrently on real hardware) plus the
  /// serial routing time. On a single-core host — where sites execute
  /// interleaved and measured wall time cannot show concurrency — this
  /// is the faithful stand-in for the original multi-machine numbers.
  std::uint64_t sim_wall_ns = 0;
};

class DistributedEngine {
 public:
  DistributedEngine(const Program& program, PartitionScheme scheme,
                    DistConfig config);
  ~DistributedEngine();

  /// Route the program's deffacts to their owning sites.
  void assert_initial_facts();

  DistStats run();

  unsigned site_count() const { return config_.sites; }
  const WorkingMemory& site_wm(unsigned site) const;

  /// Order-independent fingerprint of ALL sites' alive facts combined
  /// (replicated facts counted once per content).
  std::uint64_t global_fingerprint() const;

 private:
  struct Site;
  struct Message;

  void route_op(unsigned from_site, const PendingOp& op,
                const WorkingMemory& from_wm, DistStats& stats);
  bool cycle(DistStats& stats);

  const Program& program_;
  PartitionScheme scheme_;
  DistConfig config_;
  std::unique_ptr<ThreadPool> pool_;
  MetaEngine meta_;
  std::vector<std::unique_ptr<Site>> sites_;
  bool halted_ = false;
};

}  // namespace parulel
