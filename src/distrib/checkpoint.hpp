// Site checkpoints: the durable state a crashed site restarts from.
//
// A checkpoint captures everything a site needs to rejoin the run
// consistently: its alive working-memory facts and, per incoming
// channel, exactly which (epoch, sequence-number) messages it had
// applied. On restore the engine rebuilds a fresh WorkingMemory from
// the snapshot (the full fact set lands in the pending delta, so the
// rebuilt matcher re-derives the site's conflict set on the next
// cycle), reinstates the receive-side dedup state, and asks peers to
// retransmit every retained message not yet covered by the snapshot —
// the "replay the inbox from the checkpointed sequence number" half of
// the recovery protocol (see dist_engine.cpp, reliable routing).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "wm/working_memory.hpp"

namespace parulel {

/// Compressed set of applied sequence numbers on one (sender, epoch)
/// stream: a contiguous prefix [1, floor] plus a sparse out-of-order
/// tail — delays and duplicates keep the tail tiny in practice.
struct AppliedSeqs {
  std::uint64_t floor = 0;         ///< every seq <= floor was applied
  std::set<std::uint64_t> sparse;  ///< applied seqs > floor, non-contiguous

  bool contains(std::uint64_t seq) const {
    return seq <= floor || sparse.count(seq) != 0;
  }

  void add(std::uint64_t seq) {
    if (contains(seq)) return;
    if (seq == floor + 1) {
      ++floor;
      auto it = sparse.begin();
      while (it != sparse.end() && *it == floor + 1) {
        ++floor;
        it = sparse.erase(it);
      }
    } else {
      sparse.insert(seq);
    }
  }
};

/// Receive-side dedup state for one incoming channel. Keyed by the
/// sender's incarnation number (epoch): a restarted sender begins a
/// fresh sequence stream, so seqs are only comparable within an epoch.
struct ChannelRecvState {
  std::map<std::uint32_t, AppliedSeqs> by_epoch;
};

/// One site's durable snapshot.
struct SiteCheckpoint {
  std::uint64_t cycle = 0;
  /// Alive fact contents (ids are site-local and not preserved).
  std::vector<std::pair<TemplateId, std::vector<Value>>> facts;
  /// Per-sender applied-message record, indexed by sender site.
  std::vector<ChannelRecvState> recv;
};

/// Snapshot `wm`'s alive facts and the receive-side channel state.
SiteCheckpoint capture_checkpoint(std::uint64_t cycle,
                                  const WorkingMemory& wm,
                                  const std::vector<ChannelRecvState>& recv);

/// Build a fresh working memory holding exactly the checkpointed facts.
/// All of them land in the pending delta, so a fresh matcher picks the
/// whole store up on the next apply_delta.
std::unique_ptr<WorkingMemory> restore_working_memory(
    const Schema& schema, const SiteCheckpoint& checkpoint);

}  // namespace parulel
