#include "distrib/checkpoint.hpp"

namespace parulel {

SiteCheckpoint capture_checkpoint(std::uint64_t cycle,
                                  const WorkingMemory& wm,
                                  const std::vector<ChannelRecvState>& recv) {
  SiteCheckpoint cp;
  cp.cycle = cycle;
  cp.facts.reserve(wm.alive_count());
  for (FactId id = 1; id <= wm.high_water(); ++id) {
    if (!wm.alive(id)) continue;
    const FactView fact = wm.view(id);
    cp.facts.emplace_back(fact.tmpl(), fact.copy_slots());
  }
  cp.recv = recv;
  return cp;
}

std::unique_ptr<WorkingMemory> restore_working_memory(
    const Schema& schema, const SiteCheckpoint& checkpoint) {
  auto wm = std::make_unique<WorkingMemory>(schema);
  for (const auto& [tmpl, slots] : checkpoint.facts) {
    wm->assert_fact(tmpl, slots);
  }
  return wm;
}

}  // namespace parulel
