// The literal copy-and-constrain transformation.
//
// Stolfo's technique, as published: replicate every rule once per site
// and ADD A CONSTRAINT to each copy so that it can only match the
// site's slice of working memory. The DistributedEngine realizes the
// same semantics by routing facts; this module produces the actual
// constrained rule copies — the artifact the original papers describe —
// so the equivalence can be demonstrated directly: running each site's
// constrained program over the FULL fact set and unioning the results
// must equal one unconstrained run.
//
// Mechanically: for each rule, the first positive pattern of a
// partitioned template contributes its partition-slot variable `?v`,
// and the copy for site k of S gains the guard
//
//     hash(?v) mod S == k        (internal ExprOp::OwnSite)
//
// Rules with no partitioned positive pattern run unchanged on every
// site (their results dedupe under set semantics).
#pragma once

#include "distrib/partition.hpp"
#include "lang/program.hpp"

namespace parulel {

/// Site `site`'s constrained copy of `base` (site in [0, nsites)).
/// The copy shares the symbol table; schema, rules, and alphas are
/// duplicated with guards injected. Throws RuntimeError when a rule has
/// a partitioned positive pattern whose partition slot is bound to no
/// variable (constant/wildcard), since its slice membership would be
/// unknowable at match time.
Program constrain_copy(const Program& base, const PartitionScheme& scheme,
                       unsigned site, unsigned nsites);

}  // namespace parulel
