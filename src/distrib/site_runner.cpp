#include "distrib/site_runner.hpp"

#include <poll.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "engine/actions.hpp"
#include "support/error.hpp"

namespace parulel {

namespace {

// Retransmission backoff in barrier cycles — the same 2..16 doubling
// the simulated engine uses (dist_engine.cpp): a batch sent at cycle c
// is normally acked by c+2, so the first timeout fires then.
constexpr std::uint64_t kInitialBackoff = 2;
constexpr std::uint64_t kMaxBackoff = 16;

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

/// Derive the per-site injector seed: every site draws an independent
/// stream, but (plan seed, site id) always yields the same one.
std::uint64_t site_seed(std::uint64_t plan_seed, unsigned site_id) {
  std::uint64_t z = plan_seed + 0x9E3779B97F4A7C15ull * (site_id + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

bool file_exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

/// Block until one line arrives on `conn` (handshakes only — steady
/// state is fully nonblocking). Extra lines that rode the same read
/// land in `spill` for the caller to dispatch.
bool wait_line(net::LineConn& conn, int timeout_ms, std::string& line,
               std::vector<std::string>& spill) {
  const int step = 50;
  for (int waited = 0; waited <= timeout_ms; waited += step) {
    std::vector<std::string> lines;
    const bool alive = conn.read_lines(lines);
    if (!lines.empty()) {
      line = std::move(lines.front());
      spill.insert(spill.end(), std::make_move_iterator(lines.begin() + 1),
                   std::make_move_iterator(lines.end()));
      return true;
    }
    if (!alive) return false;
    pollfd pfd{conn.fd(), POLLIN, 0};
    ::poll(&pfd, 1, step);
  }
  return false;
}

}  // namespace

SiteRunner::SiteRunner(const Program& program, std::string program_text,
                       SiteOptions options)
    : program_(program),
      program_text_(std::move(program_text)),
      opt_(std::move(options)),
      scheme_(program_, opt_.partition),
      meta_(program_) {
  if (opt_.sites == 0) opt_.sites = 1;
  if (opt_.site_id >= opt_.sites) {
    throw RuntimeError("site id " + std::to_string(opt_.site_id) +
                       " out of range for " + std::to_string(opt_.sites) +
                       " sites");
  }
  if (opt_.faults.any_network_faults()) {
    FaultPlan plan = opt_.faults;
    plan.crashes.clear();  // real kills are the driver's job
    plan.seed = site_seed(plan.seed, opt_.site_id);
    injector_ = std::make_unique<FaultInjector>(plan);
  }
}

SiteRunner::~SiteRunner() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void SiteRunner::assert_initial_facts() {
  std::vector<ClusterOp> local;
  for (const auto& fact : program_.initial_facts) {
    const bool mine =
        scheme_.replicated(fact.tmpl) ||
        scheme_.site_of(fact.tmpl, fact.slots, opt_.sites) == opt_.site_id;
    if (!mine) continue;
    wm_->assert_fact(fact.tmpl, fact.slots);
    local.push_back({ClusterOp::Kind::Assert, fact.tmpl, fact.slots});
  }
  // Journal the initial slice even when empty: the record's existence is
  // what makes a site that crashes before its first real batch recover
  // with epoch >= 2, keeping old and new sequence streams disjoint.
  if (journal_) {
    SiteBatchRecord rec;
    rec.seq = ++wal_seq_;
    rec.epoch = epoch_;
    rec.cycle = 0;
    rec.local = std::move(local);
    journal_->append(
        encode_site_batch(rec, *program_.symbols, program_.schema));
    ++counters_.batches;
  }
}

bool SiteRunner::setup() {
  wm_ = std::make_unique<WorkingMemory>(program_.schema);
  matcher_ = make_matcher(MatcherKind::Treat, program_);
  recv_.resize(opt_.sites);
  peers_.resize(opt_.sites);

  const std::string wal_name = "site-" + std::to_string(opt_.site_id);
  if (!opt_.journal_path.empty() && file_exists(opt_.journal_path)) {
    // Crashed (or restarted) incarnation: replay the WAL, bump the
    // epoch, and journal an epoch marker BEFORE talking to anyone.
    SiteRecovery rec = recover_site_wal(opt_.journal_path, program_,
                                        program_text_, opt_.sites);
    wm_ = std::move(rec.wm);
    recv_ = std::move(rec.recv);
    epoch_ = rec.next_epoch;
    wal_seq_ = rec.last_seq;
    journal_ = service::SessionJournal::open_append(
        opt_.journal_path, opt_.fsync, &journal_stats_);
    SiteBatchRecord marker;
    marker.seq = ++wal_seq_;
    marker.epoch = epoch_;
    marker.cycle = rec.cycle;
    journal_->append(
        encode_site_batch(marker, *program_.symbols, program_.schema));
    ++counters_.batches;
    std::string torn;
    if (rec.torn_bytes) {
      torn = " (torn " + rec.torn_kind + "@" +
             std::to_string(rec.torn_offset) + "+" +
             std::to_string(rec.torn_bytes) + ")";
    }
    std::fprintf(stderr,
                 "site %u: recovered %llu batches from %s, epoch %u%s\n",
                 opt_.site_id,
                 static_cast<unsigned long long>(rec.batches),
                 opt_.journal_path.c_str(), epoch_, torn.c_str());
  } else {
    if (!opt_.journal_path.empty()) {
      journal_ = service::SessionJournal::create(
          opt_.journal_path, wal_name, program_text_, opt_.fsync,
          &journal_stats_);
    }
    assert_initial_facts();
  }

  std::string error;
  listen_fd_ = net::listen_tcp(opt_.listen_port, &listen_port_, &error);
  if (listen_fd_ < 0) {
    std::fprintf(stderr, "site %u: %s\n", opt_.site_id, error.c_str());
    return false;
  }

  const int fd =
      net::dial_tcp(opt_.driver_host, opt_.driver_port, &error, 10000);
  if (fd < 0) {
    std::fprintf(stderr, "site %u: driver: %s\n", opt_.site_id,
                 error.c_str());
    return false;
  }
  driver_ = net::LineConn(fd);
  driver_.write_line("cluster-hello parulel/2 site=" +
                     std::to_string(opt_.site_id) +
                     " epoch=" + std::to_string(epoch_) +
                     " port=" + std::to_string(listen_port_));
  std::string reply;
  std::vector<std::string> spill;
  if (!wait_line(driver_, 15000, reply, spill)) {
    std::fprintf(stderr, "site %u: driver closed during hello\n",
                 opt_.site_id);
    return false;
  }
  if (!starts_with(reply, "ok cluster-hello")) {
    std::fprintf(stderr, "site %u: driver refused hello: %s\n", opt_.site_id,
                 reply.c_str());
    return false;
  }
  const std::uint64_t sites = wire_field_u64(reply, "sites");
  if (sites != opt_.sites) {
    std::fprintf(stderr, "site %u: driver runs %llu sites, we expect %u\n",
                 opt_.site_id, static_cast<unsigned long long>(sites),
                 opt_.sites);
    return false;
  }
  for (const std::string& line : spill) handle_driver_line(line);
  return true;
}

int SiteRunner::run() {
  try {
    if (!setup()) return 4;
    while (!stopping_) {
      if (!pump(1000)) break;
    }
    return 0;
  } catch (const service::JournalError& e) {
    std::fprintf(stderr, "site %u: journal: %s\n", opt_.site_id, e.what());
    return 4;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "site %u: %s\n", opt_.site_id, e.what());
    return 4;
  }
}

void SiteRunner::accept_pending() {
  for (;;) {
    const int fd = net::accept_conn(listen_fd_);
    if (fd < 0) break;
    handshaking_.emplace_back(fd);
  }
}

// Accept new inbound conns and answer any cc-hello waiting on them.
// Called from pump() AND from inside ensure_peer_conn's wait loop: when
// every site dials its peers at the same barrier, each must keep
// answering inbound hellos while waiting for its own outbound one, or
// the whole ring deadlocks until the handshake timeout.
void SiteRunner::process_handshakes() {
  accept_pending();
  // The epoch fence turns a zombie incarnation's redial away with
  // `err epoch-stale`; stray dialers get `err site-unreachable`.
  for (auto& conn : handshaking_) {
    if (!conn.valid()) continue;
    std::vector<std::string> lines;
    const bool alive = conn.read_lines(lines);
    if (lines.empty()) {
      if (!alive) conn.close();
      continue;
    }
    const std::string& hello = lines.front();
    const std::uint64_t from = wire_field_u64(hello, "from", opt_.sites);
    const auto epoch =
        static_cast<std::uint32_t>(wire_field_u64(hello, "epoch"));
    if (!starts_with(hello, "cc-hello") || from >= opt_.sites ||
        from == opt_.site_id) {
      conn.write_line("err site-unreachable");
      conn.close();
      continue;
    }
    Peer& peer = peers_[from];
    if (epoch < peer.epoch_seen) {
      conn.write_line("err epoch-stale");
      conn.close();
      continue;
    }
    peer.epoch_seen = epoch;
    conn.write_line("ok cc-hello");
    peer.in = std::move(conn);
    for (std::size_t i = 1; i < lines.size(); ++i) {
      handle_peer_line(static_cast<unsigned>(from), lines[i]);
    }
  }
  std::erase_if(handshaking_,
                [](const net::LineConn& c) { return !c.valid(); });
}

bool SiteRunner::pump(int timeout_ms) {
  std::vector<pollfd> pfds;
  pfds.push_back({driver_.fd(), POLLIN, 0});
  pfds.push_back({listen_fd_, POLLIN, 0});
  for (const auto& conn : handshaking_) {
    if (conn.valid()) pfds.push_back({conn.fd(), POLLIN, 0});
  }
  for (const Peer& p : peers_) {
    if (p.in.valid()) pfds.push_back({p.in.fd(), POLLIN, 0});
    if (p.out.valid()) pfds.push_back({p.out.fd(), POLLIN, 0});
  }
  int rc;
  do {
    rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
  } while (rc < 0 && errno == EINTR);

  process_handshakes();

  for (unsigned s = 0; s < peers_.size(); ++s) {
    Peer& p = peers_[s];
    if (p.in.valid()) {
      std::vector<std::string> lines;
      p.in.read_lines(lines);
      for (const std::string& line : lines) handle_peer_line(s, line);
    }
    if (p.out.valid()) {
      std::vector<std::string> lines;
      p.out.read_lines(lines);
      for (const std::string& line : lines) handle_ack_line(s, line);
    }
  }

  std::vector<std::string> lines;
  const bool driver_alive = driver_.read_lines(lines);
  for (const std::string& line : lines) {
    handle_driver_line(line);
    if (stopping_) break;
  }
  return driver_alive && !stopping_;
}

void SiteRunner::handle_driver_line(const std::string& line) {
  if (starts_with(line, "barrier ")) {
    const std::uint64_t cycle = std::strtoull(line.c_str() + 8, nullptr, 10);
    run_cycle(cycle);
    std::uint64_t pending = delayed_.size();
    for (const Peer& p : peers_) pending += p.pending.size();
    driver_.write_line(
        "barrier-done cycle=" + std::to_string(cycle) +
        " fired=" + std::to_string(fired_this_cycle_) +
        " applied=" + std::to_string(applied_this_cycle_) +
        " pending=" + std::to_string(pending) +
        " inbox=" + std::to_string(inbox_.size()) +
        " halted=" + std::to_string(halted_ ? 1 : 0) +
        " facts=" + std::to_string(wm_->alive_count()) +
        " sent=" + std::to_string(counters_.sent) +
        " applied-total=" + std::to_string(counters_.applied) +
        " dup=" + std::to_string(counters_.dup) +
        " retries=" + std::to_string(counters_.retries) +
        " dropped=" + std::to_string(counters_.dropped) +
        " delayed=" + std::to_string(counters_.delayed) +
        " redials=" + std::to_string(counters_.redials) +
        " batches=" + std::to_string(counters_.batches) +
        " snapshots=" + std::to_string(counters_.snapshots) +
        " firings=" + std::to_string(counters_.firings));
  } else if (starts_with(line, "cluster-peers")) {
    // `cluster-peers 0=host:port 1=host:port ...` — rebroadcast after
    // every (re)join, so ports track respawned incarnations.
    std::size_t at = line.find(' ');
    while (at != std::string::npos) {
      const std::size_t end = line.find(' ', at + 1);
      const std::string tok = line.substr(
          at + 1, end == std::string::npos ? std::string::npos : end - at - 1);
      at = end;
      const std::size_t eq = tok.find('=');
      const std::size_t colon = tok.rfind(':');
      if (eq == std::string::npos || colon == std::string::npos ||
          colon < eq) {
        continue;
      }
      const unsigned idx =
          static_cast<unsigned>(std::strtoul(tok.c_str(), nullptr, 10));
      if (idx >= opt_.sites || idx == opt_.site_id) continue;
      Peer& p = peers_[idx];
      const std::string host = tok.substr(eq + 1, colon - eq - 1);
      const auto port = static_cast<std::uint16_t>(
          std::strtoul(tok.c_str() + colon + 1, nullptr, 10));
      if (host != p.host || port != p.port) {
        p.host = host;
        p.port = port;
        p.out.close();  // old incarnation's conn, if any, is dead anyway
      }
    }
  } else if (starts_with(line, "cc-dump")) {
    dump(driver_);
  } else if (starts_with(line, "cc-stop")) {
    driver_.write_line("ok cc-stop");
    stopping_ = true;
  }
}

void SiteRunner::handle_peer_line(unsigned from, const std::string& line) {
  if (!starts_with(line, "cc-batch")) return;
  try {
    InboxMsg msg;
    msg.from = from;
    msg.epoch = static_cast<std::uint32_t>(wire_field_u64(line, "epoch", 1));
    msg.seq = wire_field_u64(line, "seq");
    const std::string kind = wire_field_str(line, "kind");
    const std::string fact = wire_field_str(line, "fact");
    auto [tmpl, slots] =
        decode_fact_wire(from_hex(fact), *program_.symbols, program_.schema);
    msg.op.kind = kind == "retract" ? ClusterOp::Kind::Retract
                                    : ClusterOp::Kind::Assert;
    msg.op.tmpl = tmpl;
    msg.op.slots = std::move(slots);
    if (msg.epoch > peers_[from].epoch_seen) {
      peers_[from].epoch_seen = msg.epoch;
    }
    inbox_.push_back(std::move(msg));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "site %u: bad cc-batch from %u: %s\n", opt_.site_id,
                 from, e.what());
  }
}

void SiteRunner::handle_ack_line(unsigned to, const std::string& line) {
  if (!starts_with(line, "cc-ack")) return;
  const auto epoch = static_cast<std::uint32_t>(wire_field_u64(line, "epoch"));
  if (epoch != epoch_) return;  // ack for an incarnation we are not
  AppliedSeqs acked;
  acked.floor = wire_field_u64(line, "floor");
  const std::string sparse = wire_field_str(line, "sparse");
  std::size_t at = 0;
  while (at < sparse.size()) {
    const std::size_t comma = sparse.find(',', at);
    acked.sparse.insert(std::strtoull(sparse.c_str() + at, nullptr, 10));
    if (comma == std::string::npos) break;
    at = comma + 1;
  }
  // Ack-after-durable: everything the receiver acked is in its WAL, so
  // pruning here is final — no replay obligation survives (contrast the
  // simulated engine, which retains acked entries until the receiver
  // checkpoints).
  std::erase_if(peers_[to].pending, [&](const auto& kv) {
    return acked.contains(kv.first);
  });
}

void SiteRunner::route_op(const PendingOp& op,
                          std::vector<ClusterOp>& local_ops) {
  auto deliver = [&](unsigned to, ClusterOp cop) {
    if (to == opt_.site_id) {
      // Local: apply immediately, preserving op order at this site, and
      // record for the WAL — replay must reproduce it.
      apply_cluster_op(*wm_, cop);
      local_ops.push_back(std::move(cop));
    } else {
      enqueue_send(to, std::move(cop));
    }
  };
  auto route_content = [&](ClusterOp cop) {
    if (scheme_.replicated(cop.tmpl)) {
      for (unsigned s = 0; s < opt_.sites; ++s) deliver(s, cop);
    } else {
      const unsigned owner = scheme_.site_of(cop.tmpl, cop.slots, opt_.sites);
      deliver(owner, std::move(cop));
    }
  };
  switch (op.kind) {
    case PendingOp::Kind::Assert:
      route_content({ClusterOp::Kind::Assert, op.tmpl, op.slots});
      break;
    case PendingOp::Kind::Retract: {
      const FactView fact = wm_->view(op.retract_id);
      route_content({ClusterOp::Kind::Retract, fact.tmpl(),
                     fact.copy_slots()});
      break;
    }
    case PendingOp::Kind::Modify: {
      const FactView fact = wm_->view(op.retract_id);
      route_content({ClusterOp::Kind::Retract, fact.tmpl(),
                     fact.copy_slots()});
      route_content({ClusterOp::Kind::Assert, op.tmpl, op.slots});
      break;
    }
  }
}

void SiteRunner::enqueue_send(unsigned to, ClusterOp op) {
  Peer& p = peers_[to];
  OutEntry entry;
  entry.op = std::move(op);
  entry.seq = p.next_seq++;
  entry.backoff = kInitialBackoff;
  entry.next_retry = cycle_;  // transmit this cycle
  const std::uint64_t seq = entry.seq;
  p.pending.emplace(seq, std::move(entry));
}

std::string SiteRunner::batch_line(const OutEntry& entry) const {
  return "cc-batch from=" + std::to_string(opt_.site_id) +
         " epoch=" + std::to_string(epoch_) +
         " seq=" + std::to_string(entry.seq) + " kind=" +
         (entry.op.kind == ClusterOp::Kind::Retract ? "retract" : "assert") +
         " fact=" +
         to_hex(encode_fact_wire(entry.op.tmpl, entry.op.slots,
                                 *program_.symbols, program_.schema));
}

void SiteRunner::ensure_peer_conn(unsigned to) {
  Peer& p = peers_[to];
  if (p.out.valid() || p.port == 0) return;
  std::string error;
  ++counters_.redials;
  const int fd = net::dial_tcp(p.host.empty() ? "127.0.0.1" : p.host, p.port,
                               &error, 2000);
  if (fd < 0) return;  // peer down; backoff retries cover it
  net::LineConn conn(fd);
  conn.write_line("cc-hello from=" + std::to_string(opt_.site_id) +
                  " epoch=" + std::to_string(epoch_));
  // Wait for the peer's verdict — but keep answering inbound hellos
  // meanwhile: at barrier 0 every site is inside this function dialing
  // someone, and only mutual service breaks the circular wait.
  std::string reply;
  std::vector<std::string> spill;
  bool got = false;
  for (int waited = 0; waited <= 2000; waited += 50) {
    process_handshakes();
    std::vector<std::string> lines;
    const bool alive = conn.read_lines(lines);
    if (!lines.empty()) {
      reply = std::move(lines.front());
      spill.insert(spill.end(), std::make_move_iterator(lines.begin() + 1),
                   std::make_move_iterator(lines.end()));
      got = true;
      break;
    }
    if (!alive) return;
    pollfd pfds[2] = {{conn.fd(), POLLIN, 0}, {listen_fd_, POLLIN, 0}};
    ::poll(pfds, 2, 50);
  }
  if (!got) return;
  if (starts_with(reply, "err epoch-stale")) {
    // The peer has heard from a NEWER incarnation of this site id: we
    // are a zombie (e.g. resumed after a long stall past our own
    // replacement). Participating would fork the sequence streams.
    std::fprintf(stderr, "site %u: fenced by peer %u (epoch-stale)\n",
                 opt_.site_id, to);
    stopping_ = true;
    return;
  }
  if (!starts_with(reply, "ok cc-hello")) return;
  p.out = std::move(conn);
  for (const std::string& line : spill) handle_ack_line(to, line);
}

void SiteRunner::transmit(unsigned to, OutEntry& entry) {
  Peer& p = peers_[to];
  if (entry.attempted) {
    ++counters_.retries;
    entry.backoff = std::min(entry.backoff * 2, kMaxBackoff);
  }
  entry.attempted = true;
  entry.next_retry = cycle_ + entry.backoff;
  ++counters_.sent;
  const FaultVerdict v = injector_ ? injector_->roll() : FaultVerdict{};
  if (v.drop) {
    ++counters_.dropped;
    return;
  }
  const std::string line = batch_line(entry);
  if (v.delay > 0) {
    ++counters_.delayed;
    delayed_.push_back({cycle_ + 1 + v.delay, to, line});
    return;
  }
  if (!p.out.valid() || !p.out.write_line(line)) {
    ++counters_.dropped;  // dead conn: lost on the wire, retried later
    return;
  }
  if (v.duplicate) {
    ++counters_.sent;
    p.out.write_line(line);
  }
}

void SiteRunner::send_due(std::uint64_t cycle) {
  std::vector<Delayed> keep;
  keep.reserve(delayed_.size());
  for (Delayed& d : delayed_) {
    if (d.due > cycle) {
      keep.push_back(std::move(d));
      continue;
    }
    ensure_peer_conn(d.to);
    Peer& p = peers_[d.to];
    if (p.out.valid()) p.out.write_line(d.line);
    // A dead conn drops the delayed copy; retransmission covers it.
  }
  delayed_.swap(keep);
}

void SiteRunner::journal_cycle(std::uint64_t cycle,
                               std::vector<SiteAppliedMsg> applied,
                               std::vector<ClusterOp> local_ops) {
  if (!journal_ || (applied.empty() && local_ops.empty())) return;
  SiteBatchRecord rec;
  rec.seq = ++wal_seq_;
  rec.epoch = epoch_;
  rec.cycle = cycle;
  rec.applied = std::move(applied);
  rec.local = std::move(local_ops);
  journal_->append(encode_site_batch(rec, *program_.symbols, program_.schema));
  ++counters_.batches;
  ++batches_since_snapshot_;
  if (opt_.checkpoint_every > 0 &&
      batches_since_snapshot_ >= opt_.checkpoint_every) {
    SiteSnapshotRecord snap;
    snap.seq = wal_seq_;
    snap.epoch = epoch_;
    snap.cycle = cycle;
    snap.facts.reserve(wm_->alive_count());
    for (FactId id = 1; id <= wm_->high_water(); ++id) {
      if (!wm_->alive(id)) continue;
      const FactView fact = wm_->view(id);
      snap.facts.emplace_back(fact.tmpl(), fact.copy_slots());
    }
    snap.recv = recv_;
    journal_->rewrite_with_snapshot(
        "site-" + std::to_string(opt_.site_id), program_text_,
        encode_site_snapshot(snap, *program_.symbols, program_.schema));
    batches_since_snapshot_ = 0;
    ++counters_.snapshots;
  }
}

void SiteRunner::send_acks() {
  for (unsigned s = 0; s < peers_.size(); ++s) {
    Peer& p = peers_[s];
    if (!p.ack_needed || !p.in.valid()) continue;
    const AppliedSeqs& a = recv_[s].by_epoch[p.ack_epoch];
    std::string line = "cc-ack epoch=" + std::to_string(p.ack_epoch) +
                       " floor=" + std::to_string(a.floor);
    if (!a.sparse.empty()) {
      line += " sparse=";
      bool first = true;
      for (const std::uint64_t seq : a.sparse) {
        if (!first) line += ',';
        line += std::to_string(seq);
        first = false;
      }
    }
    if (p.in.write_line(line)) p.ack_needed = false;
  }
}

void SiteRunner::run_cycle(std::uint64_t cycle) {
  cycle_ = cycle;
  fired_this_cycle_ = 0;
  applied_this_cycle_ = 0;

  // Phase 0: delayed transmissions falling due this cycle.
  send_due(cycle);

  // Phase 1: drain the inbox — dedup by (from, epoch, seq), apply fresh
  // messages, remember them for the WAL, and owe each sender an ack
  // (duplicates re-ack: the earlier ack may have predated a retransmit).
  std::vector<SiteAppliedMsg> applied;
  for (InboxMsg& msg : inbox_) {
    Peer& p = peers_[msg.from];
    p.ack_needed = true;
    p.ack_epoch = msg.epoch;
    AppliedSeqs& seqs = recv_[msg.from].by_epoch[msg.epoch];
    if (seqs.contains(msg.seq)) {
      ++counters_.dup;
      continue;
    }
    seqs.add(msg.seq);
    apply_cluster_op(*wm_, msg.op);
    applied.push_back({msg.from, msg.epoch, msg.seq, std::move(msg.op)});
  }
  inbox_.clear();
  applied_this_cycle_ = applied.size();
  counters_.applied += applied.size();

  // Phase 2: match + meta-redact + fire against the local snapshot —
  // the same recognize-act phase a simulated site runs (dist_engine.cpp
  // phase 2), minus the thread pool: this whole process IS one site.
  std::vector<PendingOps> pending;
  matcher_->apply_delta(*wm_, wm_->drain_delta());
  ConflictSet& cs = matcher_->conflict_set();
  const std::vector<InstId> eligible = cs.alive_ids();
  if (!eligible.empty()) {
    std::vector<InstId> to_fire;
    if (meta_.active()) {
      const MetaOutcome outcome = meta_.run(*wm_, cs, eligible, nullptr);
      std::set_difference(eligible.begin(), eligible.end(),
                          outcome.redacted.begin(), outcome.redacted.end(),
                          std::back_inserter(to_fire));
    } else {
      to_fire = eligible;
    }
    pending.resize(to_fire.size());
    for (std::size_t i = 0; i < to_fire.size(); ++i) {
      fire_buffered(program_, cs.get(to_fire[i]), *wm_, pending[i]);
      cs.mark_fired(to_fire[i]);
    }
    fired_this_cycle_ = to_fire.size();
    counters_.firings += to_fire.size();
  }

  // Phase 3: route buffered ops — local ops apply in place, remote ops
  // join their channel's pending map.
  std::vector<ClusterOp> local_ops;
  for (PendingOps& po : pending) {
    for (const PendingOp& op : po.ops) route_op(op, local_ops);
    if (!po.printout.empty()) {
      std::cout << po.printout;
      std::cout.flush();
    }
    if (po.halt) halted_ = true;
  }

  // Phase 4: make the cycle durable, THEN ack — ack-after-durable is
  // the invariant the whole pruning scheme rests on.
  journal_cycle(cycle, std::move(applied), std::move(local_ops));
  send_acks();

  // Phase 5: transmit everything due (new sends and backoff retries).
  for (unsigned to = 0; to < peers_.size(); ++to) {
    if (to == opt_.site_id) continue;
    Peer& p = peers_[to];
    if (p.pending.empty()) continue;
    ensure_peer_conn(to);
    for (auto& [seq, entry] : p.pending) {
      if (cycle < entry.next_retry) continue;
      transmit(to, entry);
    }
  }
}

void SiteRunner::dump(net::LineConn& to) {
  std::vector<std::string> lines;
  for (FactId id = 1; id <= wm_->high_water(); ++id) {
    if (!wm_->alive(id)) continue;
    const FactView fact = wm_->view(id);
    lines.push_back("fact " +
                    to_hex(encode_fact_wire(fact.tmpl(), fact.copy_slots(),
                                            *program_.symbols,
                                            program_.schema)));
  }
  char fp[32];
  std::snprintf(fp, sizeof fp, "%016llx",
                static_cast<unsigned long long>(wm_->content_fingerprint()));
  to.write_line("ok cc-dump n=" + std::to_string(lines.size()) +
                " fingerprint=" + fp);
  for (const std::string& line : lines) to.write_line(line);
}

}  // namespace parulel
