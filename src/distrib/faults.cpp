#include "distrib/faults.hpp"

#include <cstdlib>
#include <sstream>

#include "support/error.hpp"

namespace parulel {

namespace {

[[noreturn]] void bad_spec(const std::string& what) {
  throw ParseError("fault plan: " + what);
}

double parse_rate(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double rate = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || rate < 0.0 || rate >= 1.0) {
    bad_spec(key + " must be a rate in [0, 1), got '" + value + "'");
  }
  return rate;
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    bad_spec(key + " must be an integer, got '" + value + "'");
  }
  return n;
}

FaultPlan::Crash parse_crash(const std::string& entry) {
  // SITE@CYCLE+DOWN, e.g. 1@5+4 = site 1 dies at cycle 5 for 4 cycles.
  const std::size_t at = entry.find('@');
  const std::size_t plus = entry.find('+', at == std::string::npos ? 0 : at);
  if (at == std::string::npos || plus == std::string::npos || plus < at) {
    bad_spec("crash entry must be SITE@CYCLE+DOWN, got '" + entry + "'");
  }
  FaultPlan::Crash crash;
  crash.site = static_cast<unsigned>(
      parse_u64("crash site", entry.substr(0, at)));
  crash.at_cycle = parse_u64("crash cycle", entry.substr(at + 1, plus - at - 1));
  crash.down_cycles = parse_u64("crash downtime", entry.substr(plus + 1));
  if (crash.down_cycles == 0) bad_spec("crash downtime must be >= 1");
  return crash;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::istringstream stream(spec);
  std::string pair;
  while (std::getline(stream, pair, ',')) {
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      bad_spec("expected key=value, got '" + pair + "'");
    }
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    if (key == "loss") {
      plan.loss_rate = parse_rate(key, value);
    } else if (key == "dup") {
      plan.duplicate_rate = parse_rate(key, value);
    } else if (key == "delay") {
      plan.delay_rate = parse_rate(key, value);
    } else if (key == "maxdelay") {
      plan.max_delay_cycles = static_cast<unsigned>(parse_u64(key, value));
      if (plan.max_delay_cycles == 0) bad_spec("maxdelay must be >= 1");
    } else if (key == "seed") {
      plan.seed = parse_u64(key, value);
    } else if (key == "crash") {
      std::istringstream entries(value);
      std::string entry;
      while (std::getline(entries, entry, ';')) {
        if (!entry.empty()) plan.crashes.push_back(parse_crash(entry));
      }
    } else {
      bad_spec("unknown key '" + key + "'");
    }
  }
  return plan;
}

FaultVerdict FaultInjector::roll() {
  ++rolls_;
  FaultVerdict v;
  // Each fault class draws its own uniform so rates compose
  // independently and stay deterministic in consumption order.
  if (plan_.loss_rate > 0.0 && rng_.unit() < plan_.loss_rate) {
    v.drop = true;
    return v;  // a dropped attempt has no duplicate or delay to decide
  }
  if (plan_.duplicate_rate > 0.0 && rng_.unit() < plan_.duplicate_rate) {
    v.duplicate = true;
  }
  if (plan_.delay_rate > 0.0 && rng_.unit() < plan_.delay_rate) {
    v.delay = 1 + static_cast<unsigned>(rng_.below(plan_.max_delay_cycles));
  }
  return v;
}

}  // namespace parulel
