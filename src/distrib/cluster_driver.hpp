// Cluster driver: spawns, monitors, and barrier-drives a set of
// parulel_site processes (site_runner.hpp) — the orchestration half of
// the multi-process cluster.
//
// The driver listens on a control port; every site dials in with
// `cluster-hello parulel/2 site=K epoch=E port=P`, is fenced against
// zombies (`err epoch-stale` for an epoch below the highest that site
// id has presented) and strays (`err site-unreachable` for a site id
// outside the cluster), and learns the peer table via `cluster-peers`
// broadcasts, re-sent after every join so ports track respawned
// incarnations. Execution is then barrier-synchronized: `barrier N` to
// every live site, one recognize-act cycle each, `barrier-done` back
// with the counters termination detection sums.
//
// Termination: the cluster is quiescent when every site is up and one
// barrier round reports zero firings, zero applies, zero unacked or
// delayed sends, and empty inboxes everywhere — pending=0 means
// everything ever sent is applied AND durable at its receiver
// (ack-after-durable), so nothing in flight can reignite the run.
//
// Chaos: FaultPlan crash entries become real SIGKILLs delivered at the
// scheduled barrier boundary; the site is respawned `down_cycles`
// barriers later and recovers from its WAL. Sites that die without an
// appointment (externally kill -9'd, OOM) are detected by conn EOF or
// waitpid and respawned too. Crash schedules are refused without a
// journal dir — killing a WAL-less site would genuinely lose state.
//
// The headline invariant this whole arrangement is built to keep: for
// any eventually-delivering fault plan plus kill -9 of any site at any
// barrier boundary, fingerprint() of the converged cluster equals the
// fault-free single-process DistributedEngine::global_fingerprint(),
// bit for bit (tests/test_cluster.cpp sweeps seeds × plans × kill
// points over exactly this claim).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "distrib/faults.hpp"
#include "lang/program.hpp"
#include "net/cluster.hpp"
#include "obs/stats.hpp"

namespace parulel {

struct ClusterConfig {
  unsigned sites = 3;
  /// Program file handed to spawned sites (they re-parse it, which is
  /// what makes symbol ids line up across processes).
  std::string program_path;
  std::uint16_t port = 0;  ///< driver control port; 0 = ephemeral
  /// Spawn site processes (fork+exec of `site_bin`). Off = manual
  /// deployment: the driver waits for operator-started sites to dial in
  /// and never kills or respawns anything.
  bool spawn = true;
  std::string site_bin;  ///< parulel_site binary (spawn mode)
  /// Directory for per-site WALs (<dir>/site-K.wal). Empty = volatile
  /// sites; crash plans are then refused.
  std::string journal_dir;
  std::string partition_spec;  ///< raw TEMPLATE=SLOT,... forwarded to sites
  std::string fault_spec;      ///< raw plan forwarded to sites (network half)
  FaultPlan faults;            ///< parsed plan; crashes executed here
  std::uint64_t max_cycles = 100000;
  std::uint64_t checkpoint_every = 32;  ///< site WAL batches per snapshot
  bool fsync = true;
  /// Seconds to wait for a site's hello before giving up (spawn mode) —
  /// manual mode waits indefinitely.
  unsigned join_timeout_s = 30;
  std::ostream* log = nullptr;  ///< progress lines (nullable)
};

struct ClusterOutcome {
  std::uint64_t fingerprint = 0;  ///< == DistributedEngine::global_fingerprint
  std::uint64_t facts = 0;        ///< distinct fact contents cluster-wide
  std::uint64_t cycles = 0;       ///< barrier rounds driven
  bool halted = false;
  bool quiescent = false;
  ClusterStats stats;
};

class ClusterDriver {
 public:
  /// Throws RuntimeError on config contradictions (crash plan without a
  /// journal dir, spawn mode without a site binary).
  ClusterDriver(const Program& program, ClusterConfig config);
  ~ClusterDriver();

  /// Drive the cluster to quiescence (or halt / cycle limit), collect
  /// the global fingerprint, and stop every site. Throws RuntimeError
  /// when the cluster cannot be assembled or a site stops responding.
  ClusterOutcome run();

 private:
  struct SiteProc {
    int pid = -1;  ///< -1 in manual mode
    net::LineConn conn;
    std::uint16_t port = 0;
    std::uint32_t epoch = 0;  ///< highest epoch this id has presented
    bool up = false;
    std::uint64_t down_until = 0;  ///< respawn barrier while killed
    // Last barrier-done report.
    std::uint64_t fired = 0, applied = 0, pending = 0, inbox = 0;
    bool halted = false;
    // Cumulative counters from the last report (retired into stats_
    // when the incarnation dies, so totals survive kills).
    ClusterStats live;
    /// Lines read ahead of the reply currently being waited for.
    std::vector<std::string> backlog;
  };

  void spawn_site(unsigned id);
  void wait_for_join(unsigned id);        // accept hellos until id is up
  bool try_accept_joins(int timeout_ms);  // one accept/hello round
  void broadcast_peers();
  void kill_site(unsigned id, std::uint64_t down_cycles);
  void retire_counters(SiteProc& site);
  bool barrier_round(std::uint64_t cycle);  // false = a site died mid-round
  void reap_dead();                         // waitpid bookkeeping
  std::uint64_t collect_fingerprint(std::uint64_t* facts);
  void stop_sites();
  ClusterStats totals() const;

  const Program& program_;
  ClusterConfig cfg_;
  int listen_fd_ = -1;
  std::uint16_t listen_port_ = 0;
  std::vector<SiteProc> sites_;
  std::vector<net::LineConn> handshaking_;
  std::vector<bool> crash_done_;
  ClusterStats stats_;      ///< retired counters + driver-side events
  std::uint64_t cycle_ = 0;
  bool halted_ = false;
};

}  // namespace parulel
