#include "distrib/site_journal.hpp"

#include "service/journal.hpp"

namespace parulel {

namespace {

using service::ByteReader;
using service::ByteWriter;
using service::JournalError;
using service::RecordType;

void encode_op_body(ByteWriter& w, const ClusterOp& op,
                    const SymbolTable& symbols, const Schema& schema) {
  w.str(encode_op_wire(op, symbols, schema));
}

ClusterOp decode_op_body(ByteReader& r, SymbolTable& symbols,
                         const Schema& schema) {
  return decode_op_wire(r.str(), symbols, schema);
}

void expect_type(ByteReader& r, RecordType want, const char* what) {
  const auto got = r.u8();
  if (got != static_cast<std::uint8_t>(want)) {
    throw JournalError(std::string("site WAL payload is not a ") + what +
                       " record (type " + std::to_string(got) + ")");
  }
}

}  // namespace

std::string encode_site_batch(const SiteBatchRecord& rec,
                              const SymbolTable& symbols,
                              const Schema& schema) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RecordType::SiteBatch));
  w.u64(rec.seq);
  w.u32(rec.epoch);
  w.u64(rec.cycle);
  w.u32(static_cast<std::uint32_t>(rec.applied.size()));
  for (const SiteAppliedMsg& msg : rec.applied) {
    w.u32(msg.from);
    w.u32(msg.epoch);
    w.u64(msg.seq);
    encode_op_body(w, msg.op, symbols, schema);
  }
  w.u32(static_cast<std::uint32_t>(rec.local.size()));
  for (const ClusterOp& op : rec.local) {
    encode_op_body(w, op, symbols, schema);
  }
  return w.take();
}

SiteBatchRecord decode_site_batch(std::string_view payload,
                                  SymbolTable& symbols, const Schema& schema) {
  ByteReader r(payload);
  expect_type(r, RecordType::SiteBatch, "site-batch");
  SiteBatchRecord rec;
  rec.seq = r.u64();
  rec.epoch = r.u32();
  rec.cycle = r.u64();
  rec.applied.resize(r.u32());
  for (SiteAppliedMsg& msg : rec.applied) {
    msg.from = r.u32();
    msg.epoch = r.u32();
    msg.seq = r.u64();
    msg.op = decode_op_body(r, symbols, schema);
  }
  rec.local.resize(r.u32());
  for (ClusterOp& op : rec.local) {
    op = decode_op_body(r, symbols, schema);
  }
  r.finish();
  return rec;
}

std::string encode_site_snapshot(const SiteSnapshotRecord& rec,
                                 const SymbolTable& symbols,
                                 const Schema& schema) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RecordType::SiteSnapshot));
  w.u64(rec.seq);
  w.u32(rec.epoch);
  w.u64(rec.cycle);
  w.u32(static_cast<std::uint32_t>(rec.facts.size()));
  for (const auto& [tmpl, slots] : rec.facts) {
    w.str(encode_fact_wire(tmpl, slots, symbols, schema));
  }
  w.u32(static_cast<std::uint32_t>(rec.recv.size()));
  for (const ChannelRecvState& chan : rec.recv) {
    w.u32(static_cast<std::uint32_t>(chan.by_epoch.size()));
    for (const auto& [epoch, seqs] : chan.by_epoch) {
      w.u32(epoch);
      w.u64(seqs.floor);
      w.u32(static_cast<std::uint32_t>(seqs.sparse.size()));
      for (const std::uint64_t seq : seqs.sparse) w.u64(seq);
    }
  }
  return w.take();
}

SiteSnapshotRecord decode_site_snapshot(std::string_view payload,
                                        SymbolTable& symbols,
                                        const Schema& schema) {
  ByteReader r(payload);
  expect_type(r, RecordType::SiteSnapshot, "site-snapshot");
  SiteSnapshotRecord rec;
  rec.seq = r.u64();
  rec.epoch = r.u32();
  rec.cycle = r.u64();
  rec.facts.resize(r.u32());
  for (auto& fact : rec.facts) {
    fact = decode_fact_wire(r.str(), symbols, schema);
  }
  rec.recv.resize(r.u32());
  for (ChannelRecvState& chan : rec.recv) {
    const std::uint32_t epochs = r.u32();
    for (std::uint32_t i = 0; i < epochs; ++i) {
      const std::uint32_t epoch = r.u32();
      AppliedSeqs& seqs = chan.by_epoch[epoch];
      seqs.floor = r.u64();
      const std::uint32_t sparse = r.u32();
      for (std::uint32_t k = 0; k < sparse; ++k) seqs.sparse.insert(r.u64());
    }
  }
  r.finish();
  return rec;
}

void apply_cluster_op(WorkingMemory& wm, const ClusterOp& op) {
  if (op.kind == ClusterOp::Kind::Assert) {
    wm.assert_fact(op.tmpl, op.slots);
  } else if (auto id = wm.find(op.tmpl, op.slots)) {
    wm.retract(*id);
  }
}

SiteRecovery recover_site_wal(const std::string& path, const Program& program,
                              const std::string& program_text,
                              unsigned site_count) {
  const service::JournalScan scan = service::scan_journal(path);
  if (scan.header.program_text != program_text) {
    throw JournalError("site WAL '" + path +
                       "' was written by a different program text; refusing "
                       "to replay it into this run");
  }

  SiteRecovery rec;
  rec.torn_bytes = scan.torn_bytes;
  rec.torn_kind = scan.torn_kind;
  rec.torn_offset = scan.torn_offset;
  rec.wm = std::make_unique<WorkingMemory>(program.schema);
  rec.recv.resize(site_count);

  std::uint32_t max_epoch = 0;
  for (const std::string& payload : scan.payloads) {
    switch (service::record_type(payload)) {
      case RecordType::SiteSnapshot: {
        SiteSnapshotRecord snap =
            decode_site_snapshot(payload, *program.symbols, program.schema);
        // A snapshot replaces everything replayed so far (it is the
        // fold of all earlier records); batches after it replay on top.
        rec.wm = std::make_unique<WorkingMemory>(program.schema);
        for (const auto& [tmpl, slots] : snap.facts) {
          rec.wm->assert_fact(tmpl, slots);
        }
        rec.recv.assign(site_count, {});
        for (std::size_t i = 0; i < snap.recv.size() && i < site_count; ++i) {
          rec.recv[i] = std::move(snap.recv[i]);
        }
        rec.last_seq = snap.seq;
        rec.cycle = snap.cycle;
        rec.batches = 0;
        if (snap.epoch > max_epoch) max_epoch = snap.epoch;
        break;
      }
      case RecordType::SiteBatch: {
        SiteBatchRecord batch =
            decode_site_batch(payload, *program.symbols, program.schema);
        if (batch.seq != rec.last_seq + 1) {
          throw JournalError("site WAL '" + path + "' has a sequence gap: " +
                             std::to_string(rec.last_seq) + " -> " +
                             std::to_string(batch.seq));
        }
        for (const SiteAppliedMsg& msg : batch.applied) {
          if (msg.from < site_count) {
            rec.recv[msg.from].by_epoch[msg.epoch].add(msg.seq);
          }
          apply_cluster_op(*rec.wm, msg.op);
        }
        for (const ClusterOp& op : batch.local) {
          apply_cluster_op(*rec.wm, op);
        }
        rec.last_seq = batch.seq;
        rec.cycle = batch.cycle;
        ++rec.batches;
        if (batch.epoch > max_epoch) max_epoch = batch.epoch;
        break;
      }
      default:
        throw JournalError("site WAL '" + path +
                           "' holds a service record (type " +
                           std::to_string(static_cast<std::uint8_t>(
                               service::record_type(payload))) +
                           "); it is not a site WAL");
    }
  }
  rec.next_epoch = max_epoch + 1;
  return rec;
}

}  // namespace parulel
