// A long-lived rule session: the unit of state the rule service serves.
//
// Every engine elsewhere in the tree is batch-only — assert the initial
// facts, run to quiescence, done. A Session turns that into a server
// shape: it owns a working memory, a PARULEL engine, and — the point —
// *retained* matcher state. External callers assert/retract/modify facts
// between runs; each run_to_quiescence() feeds only the delta since the
// last fixpoint into the retained TREAT network (via the matcher-level
// apply_external_delta hook) instead of rebuilding match state from
// scratch. For confluent programs, any interleaving of external batches
// reaches the same final working memory as one batch run containing all
// facts at cycle 0 — tests/test_service.cpp sweeps exactly that.
//
// Delta-reuse invariant: the engine and matcher are constructed once and
// survive across batches; `counters().rebuilds` counts the only two
// events that replace them (restore from a checkpoint; nothing else) and
// stays 0 on the pure incremental path, while the matcher's
// external_deltas counter grows by one per ingested batch.
//
// Sessions are NOT thread-safe; RuleService (service.hpp) serializes all
// access to one session behind a per-session lock.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "distrib/checkpoint.hpp"
#include "engine/par_engine.hpp"
#include "lang/program.hpp"

namespace parulel::service {

struct SessionConfig {
  /// Treat or ParallelTreat (the PARULEL engine's matcher family).
  MatcherKind matcher = MatcherKind::ParallelTreat;

  /// Worker threads when `pool` is null (a private pool is built).
  unsigned threads = 1;

  /// Shared fork-join pool (RuleService points every session at one
  /// machine-sized pool). Must outlive the session; the caller
  /// guarantees at most one session runs on it at a time.
  ThreadPool* pool = nullptr;

  /// Per-run cycle quota: one run_to_quiescence() stops after this many
  /// recognize-act cycles (termination = CycleLimit) so a runaway
  /// program cannot monopolize the service.
  std::uint64_t cycle_quota = 1'000'000;

  /// Alive-fact ceiling; asserts beyond it are rejected. 0 = unlimited.
  std::uint64_t fact_quota = 0;

  /// Assert the program's deffacts on construction (into the pending
  /// delta — nothing runs until the first run_to_quiescence()).
  bool assert_initial_facts = true;

  /// Sink for (printout ...) actions; null discards.
  std::ostream* output = nullptr;

  /// Per-cycle trace events for this session's runs (see src/obs/).
  obs::TraceSink* trace = nullptr;
};

/// Cumulative per-session accounting across all batches.
struct SessionCounters {
  std::uint64_t asserts = 0;         ///< facts asserted (incl. absorbed)
  std::uint64_t retracts = 0;
  std::uint64_t modifies = 0;
  std::uint64_t queries = 0;
  std::uint64_t quota_rejected = 0;  ///< asserts refused by fact_quota
  std::uint64_t batches = 0;         ///< run_to_quiescence() calls
  std::uint64_t cycles = 0;          ///< recognize-act cycles, all batches
  std::uint64_t firings = 0;
  std::uint64_t rebuilds = 0;        ///< engine+matcher reconstructions
};

/// Exact-state checkpoint for journal recovery (service/journal.hpp).
/// SiteCheckpoint (snapshot()/restore() below) is content-only and
/// renumbers FactIds on restore — fine for the distributed engine,
/// fatal for durable sessions, where clients hold FactIds across server
/// restarts and journal-replay determinism keys off the id (time-tag)
/// order. ExactSnapshot therefore captures the alive facts WITH their
/// ids, the id high-water mark, the halted flag, and the cumulative
/// counters, so restore_exact() reproduces the session state exactly.
struct ExactSnapshot {
  FactId high_water = 0;  ///< largest id ever handed out
  bool halted = false;
  SessionCounters counters;
  std::vector<Fact> facts;  ///< alive facts, ascending id
};

class Session {
 public:
  enum class AssertOutcome : std::uint8_t {
    New,           ///< a fresh fact entered working memory
    Absorbed,      ///< identical alive fact existed (set semantics)
    QuotaRejected  ///< fact_quota reached; nothing asserted
  };

  /// `program` must outlive the session.
  Session(const Program& program, SessionConfig config);

  // -- external operations (buffered into the WM pending delta; the
  //    retained matcher sees them as one batch on the next run) --

  AssertOutcome assert_fact(TemplateId tmpl, std::vector<Value> slots,
                            FactId* id_out = nullptr);
  bool retract(FactId id);
  /// OPS5 modify; returns the new FactId or kInvalidFact.
  FactId modify(FactId id, const std::vector<std::pair<int, Value>>& updates);

  /// Fold the pending external delta into the retained matcher, then
  /// run recognize-act cycles to quiescence, halt, or the cycle quota.
  /// Returns this batch's stats; counters() accumulates across batches.
  RunStats run_to_quiescence();

  // -- queries over current working memory --

  struct SlotFilter {
    int slot;
    Value value;
  };
  /// Alive facts of `tmpl` whose filtered slots equal the given values,
  /// in ascending FactId order (deterministic).
  std::vector<FactId> query(TemplateId tmpl,
                            const std::vector<SlotFilter>& filters);

  /// Name-based lookups through the program's symbol table.
  std::optional<TemplateId> find_template(std::string_view name) const;
  std::optional<int> find_slot(TemplateId tmpl, std::string_view name) const;

  // -- checkpointing (reuses the distributed engine's snapshot type) --

  /// Capture the alive fact set (cycle = cumulative cycle count).
  SiteCheckpoint snapshot() const;

  /// Replace working memory and matcher with the checkpointed state.
  /// This is the ONE operation that rebuilds match state (counted in
  /// counters().rebuilds): the fresh matcher re-derives the conflict
  /// set from the restored facts on the next run, refraction reset
  /// included — the same recovery contract as a distributed-site
  /// restore (src/distrib/checkpoint.hpp).
  void restore(const SiteCheckpoint& checkpoint);

  /// Capture exact state (ids included) for the write-ahead journal.
  ExactSnapshot snapshot_exact() const;

  /// Rebuild to the exact captured state: facts keep their pre-crash
  /// ids, skipped ids stay tombstoned, the id counter resumes at the
  /// captured high-water mark, and counters/halted are reinstated.
  /// Ends with a settle run that re-derives match state at the restored
  /// fixpoint; snapshots are only taken at quiescence, so that run must
  /// leave the state bit-identical — the recovery caller verifies the
  /// fingerprint and high-water mark afterwards and fails closed on
  /// programs that violate it (see ARCHITECTURE.md, durability).
  void restore_exact(const ExactSnapshot& snapshot);

  // -- introspection --

  const WorkingMemory& wm() const { return engine_->wm(); }
  const Program& program() const { return program_; }
  const SessionCounters& counters() const { return counters_; }
  const MatchStats& match_stats() const { return engine_->matcher().stats(); }
  const RunStats& last_run() const { return last_run_; }
  bool halted() const { return engine_->halted(); }
  std::uint64_t fingerprint() const {
    return engine_->wm().content_fingerprint();
  }

 private:
  std::unique_ptr<ParallelEngine> make_engine() const;

  const Program& program_;
  SessionConfig config_;
  std::unique_ptr<ParallelEngine> engine_;
  SessionCounters counters_;
  RunStats last_run_;
};

}  // namespace parulel::service
