#include "service/serve.hpp"

#include <istream>
#include <ostream>
#include <string>

#include "service/protocol.hpp"

namespace parulel::service {

int serve(std::istream& in, std::ostream& out, ServeOptions options) {
  options.service.workers = 0;  // synchronous: the protocol is a pure
                                // function of the command stream
  RuleService service(options.service);
  ServeProtocol::Options popts;
  popts.echo = options.echo;
  ServeProtocol protocol(service, popts);

  std::string line;
  std::string response;
  while (std::getline(in, line)) {
    response.clear();
    const ServeProtocol::Status status = protocol.handle_line(line, response);
    out << response;
    if (status == ServeProtocol::Status::Quit) break;
  }
  return protocol.errors();
}

}  // namespace parulel::service
