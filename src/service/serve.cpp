#include "service/serve.hpp"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "lang/printer.hpp"
#include "support/error.hpp"

namespace parulel::service {

namespace {

/// One named client session: the service holds the Session, we hold the
/// Program it runs (sessions reference their program by address).
struct Client {
  std::unique_ptr<Program> program;
  SessionId id = 0;
  std::optional<SiteCheckpoint> snapshot;
};

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) {
    if (tok.front() == '#') break;  // comment to end of line
    tokens.push_back(std::move(tok));
  }
  return tokens;
}

/// int64 → double → interned symbol, in that order. Full-token parses
/// only: "12x" is a symbol, not the integer 12.
Value parse_value(const std::string& tok, SymbolTable& symbols) {
  std::int64_t i = 0;
  auto [ip, iec] = std::from_chars(tok.data(), tok.data() + tok.size(), i);
  if (iec == std::errc() && ip == tok.data() + tok.size()) {
    return Value::integer(i);
  }
  double d = 0.0;
  auto [dp, dec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
  if (dec == std::errc() && dp == tok.data() + tok.size()) {
    return Value::real(d);
  }
  return Value::symbol(symbols.intern(tok));
}

std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

const char* submit_error(SubmitResult r) {
  return r == SubmitResult::QueueFull ? "queue-full" : "no-such-session";
}

}  // namespace

int serve(std::istream& in, std::ostream& out, ServeOptions options) {
  options.service.workers = 0;  // synchronous: the protocol is a pure
                                // function of the command stream
  RuleService service(options.service);
  std::unordered_map<std::string, Client> clients;
  int errors = 0;

  auto err = [&](const std::string& msg) {
    out << "err " << msg << '\n';
    ++errors;
  };
  auto find_client = [&](const std::string& name) -> Client* {
    auto it = clients.find(name);
    return it == clients.end() ? nullptr : &it->second;
  };

  std::string line;
  while (std::getline(in, line)) {
    const std::vector<std::string> tok = tokenize(line);
    if (tok.empty()) continue;
    if (options.echo) out << "> " << line << '\n';
    const std::string& cmd = tok[0];

    if (cmd == "quit") {
      out << "ok quit\n";
      break;
    }

    if (cmd == "stats" && tok.size() == 1) {
      const ServiceStats s = service.stats_snapshot();
      out << "ok service";
      for (const auto& f : obs::service_fields()) {
        out << ' ' << f.name << '=' << s.*f.member;
      }
      out << '\n';
      continue;
    }

    if (cmd == "open") {
      if (tok.size() != 3) {
        err("usage: open NAME FILE");
        continue;
      }
      if (clients.count(tok[1])) {
        err("session exists: " + tok[1]);
        continue;
      }
      std::ifstream file(tok[2]);
      if (!file) {
        err("cannot read: " + tok[2]);
        continue;
      }
      std::ostringstream text;
      text << file.rdbuf();
      Client client;
      try {
        client.program = std::make_unique<Program>(parse_program(text.str()));
      } catch (const ParseError& e) {
        err(std::string("parse: ") + e.what());
        continue;
      }
      client.id = service.open_session(*client.program);
      if (client.id == 0) {
        err("service full");
        continue;
      }
      out << "ok open " << tok[1] << " id=" << client.id << '\n';
      clients.emplace(tok[1], std::move(client));
      continue;
    }

    // Everything below addresses an existing session.
    if (cmd != "assert" && cmd != "retract" && cmd != "run" &&
        cmd != "query" && cmd != "snapshot" && cmd != "restore" &&
        cmd != "stats" && cmd != "close") {
      err("unknown command: " + cmd);
      continue;
    }
    if (tok.size() < 2) {
      err("usage: " + cmd + " NAME ...");
      continue;
    }
    Client* client = find_client(tok[1]);
    if (!client) {
      err("no session: " + tok[1]);
      continue;
    }

    if (cmd == "assert") {
      if (tok.size() < 3) {
        err("usage: assert NAME TMPL V...");
        continue;
      }
      SymbolTable& symbols = *client->program->symbols;
      const auto tmpl = client->program->schema.find(symbols.intern(tok[2]));
      if (!tmpl) {
        err("no template: " + tok[2]);
        continue;
      }
      const auto& def = client->program->schema.at(*tmpl);
      if (tok.size() - 3 != static_cast<std::size_t>(def.arity())) {
        err("arity: " + tok[2] + " takes " + std::to_string(def.arity()) +
            " values");
        continue;
      }
      std::vector<Value> slots;
      slots.reserve(tok.size() - 3);
      for (std::size_t i = 3; i < tok.size(); ++i) {
        slots.push_back(parse_value(tok[i], symbols));
      }
      const SubmitResult r = service.submit(
          client->id, Request::make_assert(*tmpl, std::move(slots)));
      if (r != SubmitResult::Accepted) {
        err(submit_error(r));
        continue;
      }
      out << "ok assert depth=" << service.queue_depth(client->id) << '\n';
    } else if (cmd == "retract") {
      if (tok.size() != 3) {
        err("usage: retract NAME FACTID");
        continue;
      }
      std::uint64_t id = 0;
      auto [p, ec] =
          std::from_chars(tok[2].data(), tok[2].data() + tok[2].size(), id);
      if (ec != std::errc() || p != tok[2].data() + tok[2].size()) {
        err("bad fact id: " + tok[2]);
        continue;
      }
      const SubmitResult r =
          service.submit(client->id, Request::make_retract(FactId{id}));
      if (r != SubmitResult::Accepted) {
        err(submit_error(r));
        continue;
      }
      out << "ok retract depth=" << service.queue_depth(client->id) << '\n';
    } else if (cmd == "run") {
      service.submit(client->id, Request::make_run());
      service.flush(client->id);
      service.with_session(client->id, [&](Session& s) {
        const RunStats& run = s.last_run();
        out << "ok run cycles=" << run.cycles
            << " firings=" << run.total_firings
            << " facts=" << s.wm().alive_count()
            << " termination=" << termination_name(run.termination)
            << " fingerprint=" << hex64(s.fingerprint()) << '\n';
      });
    } else if (cmd == "query") {
      if (tok.size() < 3) {
        err("usage: query NAME TMPL [SLOT=V]...");
        continue;
      }
      bool bad = false;
      service.with_session(client->id, [&](Session& s) {
        const auto tmpl = s.find_template(tok[2]);
        if (!tmpl) {
          err("no template: " + tok[2]);
          bad = true;
          return;
        }
        SymbolTable& symbols = *client->program->symbols;
        std::vector<Session::SlotFilter> filters;
        for (std::size_t i = 3; i < tok.size(); ++i) {
          const auto eq = tok[i].find('=');
          if (eq == std::string::npos) {
            err("bad filter (want SLOT=V): " + tok[i]);
            bad = true;
            return;
          }
          const auto slot = s.find_slot(*tmpl, tok[i].substr(0, eq));
          if (!slot) {
            err("no slot: " + tok[i].substr(0, eq));
            bad = true;
            return;
          }
          filters.push_back(
              {*slot, parse_value(tok[i].substr(eq + 1), symbols)});
        }
        const std::vector<FactId> hits = s.query(*tmpl, filters);
        out << "ok query n=" << hits.size() << '\n';
        for (FactId id : hits) {
          out << "fact " << id << ' '
              << print_fact(s.wm().fact(id), s.program().schema, symbols)
              << '\n';
        }
      });
    } else if (cmd == "snapshot") {
      service.with_session(client->id, [&](Session& s) {
        client->snapshot = s.snapshot();
        out << "ok snapshot facts=" << client->snapshot->facts.size() << '\n';
      });
    } else if (cmd == "restore") {
      if (!client->snapshot) {
        err("no snapshot for: " + tok[1]);
        continue;
      }
      service.with_session(client->id, [&](Session& s) {
        s.restore(*client->snapshot);
        out << "ok restore facts=" << client->snapshot->facts.size()
            << " rebuilds=" << s.counters().rebuilds << '\n';
      });
    } else if (cmd == "stats") {
      service.with_session(client->id, [&](Session& s) {
        const SessionCounters& c = s.counters();
        out << "ok session asserts=" << c.asserts
            << " retracts=" << c.retracts << " queries=" << c.queries
            << " quota_rejected=" << c.quota_rejected
            << " batches=" << c.batches << " cycles=" << c.cycles
            << " firings=" << c.firings << " rebuilds=" << c.rebuilds
            << " external_deltas=" << s.match_stats().external_deltas << '\n';
      });
    } else {  // close
      service.close_session(client->id);
      clients.erase(tok[1]);
      out << "ok close " << tok[1] << '\n';
    }
  }
  return errors;
}

}  // namespace parulel::service
