#include "service/serve.hpp"

#include <istream>
#include <ostream>
#include <string>

#include "service/protocol.hpp"

namespace parulel::service {

int serve(std::istream& in, std::ostream& out, ServeOptions options) {
  options.service.workers = 0;  // synchronous: the protocol is a pure
                                // function of the command stream
  RuleService service(options.service);
  if (options.service.journal.enabled()) {
    // Rebuild durable sessions before the first command: a script may
    // lead with `resume NAME`. Reports go to the response stream so a
    // recovering operator sees what came back (and what quarantined).
    for (const RecoveryReport& r : service.recover_journals()) {
      if (r.ok) {
        out << "recovered " << r.name << " batches=" << r.batches
            << " ops=" << r.ops << " facts=" << r.facts << '\n';
      } else {
        out << "quarantined " << r.name << ": " << r.error << '\n';
      }
    }
  }
  ServeProtocol::Options popts;
  popts.echo = options.echo;
  ServeProtocol protocol(service, popts);

  std::string line;
  std::string response;
  while (std::getline(in, line)) {
    response.clear();
    const ServeProtocol::Status status = protocol.handle_line(line, response);
    out << response;
    if (status == ServeProtocol::Status::Quit) break;
  }
  return protocol.errors();
}

}  // namespace parulel::service
