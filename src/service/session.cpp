#include "service/session.hpp"

#include <algorithm>
#include <limits>

#include "support/timer.hpp"

namespace parulel::service {

std::unique_ptr<ParallelEngine> Session::make_engine() const {
  EngineConfig cfg;
  cfg.matcher = config_.matcher;
  cfg.threads = config_.threads;
  cfg.pool = config_.pool;
  // The session enforces its own per-run cycle quota; the engine-level
  // valve stays wide open so it never truncates a run behind our back.
  cfg.max_cycles = std::numeric_limits<std::uint64_t>::max();
  cfg.output = config_.output;
  cfg.trace = config_.trace;
  return std::make_unique<ParallelEngine>(program_, cfg);
}

Session::Session(const Program& program, SessionConfig config)
    : program_(program), config_(config), engine_(nullptr) {
  engine_ = make_engine();
  if (config_.assert_initial_facts) {
    engine_->assert_initial_facts();
    counters_.asserts += program_.initial_facts.size();
  }
}

Session::AssertOutcome Session::assert_fact(TemplateId tmpl,
                                            std::vector<Value> slots,
                                            FactId* id_out) {
  if (id_out) *id_out = kInvalidFact;
  if (config_.fact_quota != 0 &&
      engine_->wm().alive_count() >= config_.fact_quota) {
    ++counters_.quota_rejected;
    return AssertOutcome::QuotaRejected;
  }
  ++counters_.asserts;
  const FactId id = engine_->wm().assert_fact(tmpl, std::move(slots));
  if (id == kInvalidFact) return AssertOutcome::Absorbed;
  if (id_out) *id_out = id;
  return AssertOutcome::New;
}

bool Session::retract(FactId id) {
  ++counters_.retracts;
  return engine_->wm().retract(id);
}

FactId Session::modify(FactId id,
                       const std::vector<std::pair<int, Value>>& updates) {
  ++counters_.modifies;
  return engine_->wm().modify(id, updates);
}

RunStats Session::run_to_quiescence() {
  Timer wall;
  engine_->absorb_external_delta();
  RunStats stats;
  while (stats.cycles < config_.cycle_quota) {
    if (!engine_->step(stats)) break;
  }
  stats.wall_ns = wall.elapsed_ns();
  stats.termination = stats.halted      ? TerminationReason::Halted
                      : stats.quiescent ? TerminationReason::Quiescent
                                        : TerminationReason::CycleLimit;
  ++counters_.batches;
  counters_.cycles += stats.cycles;
  counters_.firings += stats.total_firings;
  last_run_ = stats;
  return stats;
}

std::vector<FactId> Session::query(TemplateId tmpl,
                                   const std::vector<SlotFilter>& filters) {
  ++counters_.queries;
  const WorkingMemory& wm = engine_->wm();
  std::vector<FactId> out;
  for (FactId id : wm.extent(tmpl)) {
    const FactView fact = wm.view(id);
    bool ok = true;
    for (const SlotFilter& f : filters) {
      if (fact.slot(static_cast<std::size_t>(f.slot)) != f.value) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(id);
  }
  // Extents are swap-remove ordered; sort for a deterministic answer.
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<TemplateId> Session::find_template(std::string_view name) const {
  return program_.schema.find(program_.symbols->intern(name));
}

std::optional<int> Session::find_slot(TemplateId tmpl,
                                      std::string_view name) const {
  return program_.schema.at(tmpl).slot_index(program_.symbols->intern(name));
}

SiteCheckpoint Session::snapshot() const {
  return capture_checkpoint(counters_.cycles, engine_->wm(), {});
}

void Session::restore(const SiteCheckpoint& checkpoint) {
  engine_ = make_engine();
  for (const auto& [tmpl, slots] : checkpoint.facts) {
    engine_->wm().assert_fact(tmpl, slots);
  }
  ++counters_.rebuilds;
}

ExactSnapshot Session::snapshot_exact() const {
  const WorkingMemory& wm = engine_->wm();
  ExactSnapshot snap;
  snap.high_water = wm.high_water();
  snap.halted = engine_->halted();
  snap.counters = counters_;
  for (FactId id = 1; id <= snap.high_water; ++id) {
    if (!wm.alive(id)) continue;
    const FactView fact = wm.view(id);
    snap.facts.push_back(Fact{id, fact.tmpl(), fact.copy_slots()});
  }
  return snap;
}

void Session::restore_exact(const ExactSnapshot& snapshot) {
  engine_ = make_engine();
  WorkingMemory& wm = engine_->wm();
  for (const Fact& f : snapshot.facts) {
    wm.assert_fact_at(f.id, f.tmpl, f.slots);
  }
  wm.reserve_ids(snapshot.high_water);
  engine_->set_halted(snapshot.halted);
  // Settle run: re-derive the retained matcher's state at the restored
  // fixpoint. Snapshots are taken only at quiescence, where every
  // derivable instantiation already fired pre-crash, so for
  // snapshot-compatible programs this leaves working memory untouched
  // (re-asserted content is absorbed by set semantics). The counters
  // are reinstated afterwards so the settle run is invisible in stats.
  run_to_quiescence();
  counters_ = snapshot.counters;
  ++counters_.rebuilds;
}

}  // namespace parulel::service
