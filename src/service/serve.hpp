// --serve: the rule-service line protocol on stdin/stdout.
//
// One command per line on stdin, one `ok ...` or `err ...` response (plus
// optional `fact ...` detail lines) on stdout. The service runs in
// synchronous mode (workers == 0) so responses are a pure function of the
// command stream — scriptable from CI and replayable byte-for-byte.
//
// This is a thin transport wrapper: the command handling lives in
// ServeProtocol (service/protocol.hpp), shared byte-for-byte with the
// TCP front-end (net/net_server.hpp). PROTOCOL.md documents the wire
// format; the command set in one line each (NAME is a client-chosen
// session name; `#` starts a comment):
//
//   hello [VERSION]           optional handshake (parulel/2; /1 accepted)
//   open NAME FILE            load program text from FILE, open a session
//                             (durable — journaled — when --journal-dir)
//   resume NAME               reattach a durable session after a restart
//   assert NAME TMPL V...     queue an assert (values: int, float, symbol)
//   retract NAME FACTID       queue a retract
//   run NAME                  commit the queued batch, run to quiescence
//                             (durable: journaled+fsynced before the ok)
//
// parulel/2: assert/retract/run may carry an `@N` request-id prefix on
// durable sessions; a replayed id answers from the dedup window with
// the original response instead of re-executing (exactly-once retry).
//   query NAME TMPL [S=V]...  list alive facts, optionally slot-filtered
//   snapshot NAME             save the session's fact set (in memory)
//   restore NAME              restore the last snapshot (rebuilds matcher)
//   stats NAME                per-session counters
//   stats                     service-wide counters (service_fields table)
//   close NAME                close the session
//   quit                      stop serving
#pragma once

#include <iosfwd>

#include "service/service.hpp"

namespace parulel::service {

struct ServeOptions {
  /// Service tuning; `workers` is forced to 0 — serving is synchronous
  /// by construction so the protocol stays deterministic.
  ServiceConfig service;

  /// Echo each command line (prefixed "> ") before its response.
  bool echo = false;
};

/// Serve the protocol from `in` to `out` until EOF or `quit`.
/// Returns the number of `err` responses emitted.
int serve(std::istream& in, std::ostream& out, ServeOptions options = {});

}  // namespace parulel::service
