#include "service/service.hpp"

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "lang/parser.hpp"

namespace parulel::service {

namespace {
/// Bounded latency reservoir: percentile math stays O(64k) no matter
/// how many requests the service has served.
constexpr std::size_t kLatencyReservoir = 1 << 16;

/// Durable session names become journal filenames; restrict them so a
/// name can never traverse out of the journal directory.
bool valid_durable_name(const std::string& name) {
  if (name.empty() || name.size() > 128 || name.front() == '.') return false;
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '-' && c != '.') {
      return false;
    }
  }
  return true;
}

}  // namespace

std::uint64_t durable_name_hash(std::string_view name) {
  // FNV-1a 64-bit: tiny, dependency-free, and stable across platforms —
  // the pinning must agree between a server and its own restart.
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

unsigned shard_for_name(std::string_view name, unsigned shards) {
  if (shards <= 1) return 0;
  return static_cast<unsigned>(durable_name_hash(name) % shards);
}

std::uint64_t RuleService::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

RuleService::RuleService(ServiceConfig config)
    : config_(config), pool_(std::max(1u, config.pool_threads)) {
  if (config_.journal.enabled()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.journal.dir, ec);
  }
  workers_.reserve(config_.workers);
  for (unsigned w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SessionConfig RuleService::session_config() {
  SessionConfig scfg;
  scfg.matcher = config_.matcher;
  scfg.pool = &pool_;
  scfg.cycle_quota = config_.cycle_quota;
  scfg.fact_quota = config_.fact_quota;
  scfg.output = config_.output;
  return scfg;
}

std::string RuleService::journal_path(const std::string& name) const {
  return (std::filesystem::path(config_.journal.dir) / (name + ".wal"))
      .string();
}

RuleService::~RuleService() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  // workers_ (declared last) joins first, then sessions_ destruct.
}

SessionId RuleService::alloc_id() {
  if (config_.session_ids != nullptr) {
    return config_.session_ids->fetch_add(1, std::memory_order_relaxed);
  }
  return next_id_++;
}

SessionId RuleService::open_session(const Program& program) {
  std::unique_lock lock(mutex_);
  if (sessions_.size() >= config_.max_sessions) {
    evict_idle_locked(lock, /*force_one=*/true);
    if (sessions_.size() >= config_.max_sessions) return 0;
  }
  auto entry = std::make_unique<Entry>();
  entry->id = alloc_id();
  entry->session = std::make_unique<Session>(program, session_config());
  entry->last_active_tick = tick_;
  ++stats_.sessions_opened;
  const SessionId id = entry->id;
  sessions_.emplace(id, std::move(entry));
  return id;
}

bool RuleService::close_session(SessionId id) {
  std::unique_lock lock(mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end() || it->second->closing) return false;
  close_locked(lock, *it->second, /*evicting=*/false);
  return true;
}

void RuleService::close_locked(std::unique_lock<std::mutex>& lock,
                               Entry& entry, bool evicting) {
  entry.closing = true;  // rejects new submits; only one closer can win
  idle_cv_.wait(lock, [&entry] { return entry.busy == 0; });
  ++stats_.sessions_closed;
  if (evicting) ++stats_.evicted;
  if (entry.durable) {
    // Explicit close ends the durable state: keep the write/recovery
    // totals, drop the registry entry, delete the journal file.
    for (const auto& f : obs::journal_fields()) {
      jstats_.*f.member += entry.durable->jstats.*f.member;
    }
    durable_by_name_.erase(entry.durable->name);
    if (entry.durable->journal) {
      const std::string path = entry.durable->journal->path();
      entry.durable->journal.reset();
      // A quarantined journal is evidence and surviving state — never
      // unlink it on teardown, only on a clean explicit close.
      if (!entry.durable->quarantined) {
        ::unlink(path.c_str());
        if (config_.on_journal_removed) {
          config_.on_journal_removed(entry.durable->name);
        }
      }
    }
  }
  const SessionId id = entry.id;
  sessions_.erase(id);  // entry dangles from here on
  idle_cv_.notify_all();
}

SubmitResult RuleService::submit(SessionId id, Request request) {
  std::unique_lock lock(mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end() || it->second->closing) {
    return SubmitResult::NoSuchSession;
  }
  Entry& entry = *it->second;
  if (entry.queue.size() >= config_.queue_capacity) {
    ++stats_.rejected;
    return SubmitResult::QueueFull;
  }
  request.enqueued_ns = now_ns();
  ++stats_.requests;
  switch (request.kind) {
    case Request::Kind::Assert: ++stats_.asserts; break;
    case Request::Kind::Retract: ++stats_.retracts; break;
    case Request::Kind::Run: ++stats_.runs; break;
  }
  entry.queue.push_back(std::move(request));
  stats_.peak_queue_depth =
      std::max<std::uint64_t>(stats_.peak_queue_depth, entry.queue.size());
  if (config_.workers > 0 && !entry.scheduled) {
    entry.scheduled = true;
    ready_.push_back(id);
    work_cv_.notify_one();
  }
  return SubmitResult::Accepted;
}

void RuleService::worker_loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stopping_ || !ready_.empty(); });
    if (stopping_) return;
    const SessionId id = ready_.front();
    ready_.pop_front();
    auto it = sessions_.find(id);
    if (it == sessions_.end()) continue;
    Entry& entry = *it->second;
    entry.scheduled = false;
    if (entry.closing || entry.queue.empty()) continue;
    commit_batch(lock, entry);
    idle_cv_.notify_all();
  }
}

void RuleService::commit_batch(std::unique_lock<std::mutex>& lock,
                               Entry& entry) {
  // Claim one batch off the queue; reschedule if requests remain.
  const std::size_t n = std::min(entry.queue.size(), config_.batch_max);
  std::vector<Request> batch;
  batch.reserve(n);
  std::move(entry.queue.begin(),
            entry.queue.begin() + static_cast<std::ptrdiff_t>(n),
            std::back_inserter(batch));
  entry.queue.erase(entry.queue.begin(),
                    entry.queue.begin() + static_cast<std::ptrdiff_t>(n));
  if (config_.workers > 0 && !entry.queue.empty() && !entry.scheduled &&
      !entry.closing) {
    entry.scheduled = true;
    ready_.push_back(entry.id);
    work_cv_.notify_one();
  }
  ++entry.busy;  // pins the entry: close_locked waits for busy == 0
  Session& session = *entry.session;
  std::mutex& session_mutex = entry.session_mutex;
  lock.unlock();

  std::uint64_t quota_rejected = 0;
  std::uint64_t commit_end_ns = 0;
  {
    std::scoped_lock session_lock(session_mutex);
    // Durable sessions journal every op AS SUBMITTED (absorbed and
    // quota-rejected asserts included): replay re-decides each through
    // the same Session entry points, reproducing state and counters.
    BatchSegment seg;
    const bool durable = entry.durable != nullptr;
    for (Request& request : batch) {
      switch (request.kind) {
        case Request::Kind::Assert:
          if (durable) {
            JournalOp op;
            op.kind = JournalOp::Kind::Assert;
            op.tmpl = request.tmpl;
            op.slots = request.slots;  // copy: assert_fact consumes them
            seg.ops.push_back(std::move(op));
          }
          if (session.assert_fact(request.tmpl, std::move(request.slots)) ==
              Session::AssertOutcome::QuotaRejected) {
            ++quota_rejected;
          }
          break;
        case Request::Kind::Retract:
          if (durable) {
            JournalOp op;
            op.kind = JournalOp::Kind::Retract;
            op.fact = request.fact;
            seg.ops.push_back(std::move(op));
          }
          session.retract(request.fact);
          break;
        case Request::Kind::Run:
          break;  // a pure commit barrier
      }
    }
    {
      // The shared pool's fork-join batches do not nest: one
      // recognize-act commit on it at a time, service-wide.
      std::scoped_lock pool_lock(pool_mutex_);
      session.run_to_quiescence();
    }
    if (durable) {
      // One segment per commit: replay must reproduce the exact
      // run_to_quiescence boundaries (and with them FactId assignment),
      // so a protocol batch split across commits journals as several
      // segments inside the next batch record.
      seg.fingerprint = session.fingerprint();
      seg.high_water = session.wm().high_water();
      entry.durable->pending_segments.push_back(std::move(seg));
    }
    commit_end_ns = now_ns();
  }

  lock.lock();
  --entry.busy;
  ++tick_;
  entry.last_active_tick = tick_;
  ++stats_.batches;
  stats_.batched_ops += batch.size();
  stats_.quota_rejected += quota_rejected;
  for (const Request& request : batch) {
    record_latency(commit_end_ns - request.enqueued_ns);
  }
}

bool RuleService::flush(SessionId id) {
  std::unique_lock lock(mutex_);
  if (sessions_.find(id) == sessions_.end()) return false;
  for (;;) {
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return true;  // closed while flushing
    Entry& entry = *it->second;
    if (!entry.queue.empty()) {
      if (config_.workers == 0) {
        commit_batch(lock, entry);
        idle_cv_.notify_all();
        continue;
      }
      if (!entry.scheduled) {
        entry.scheduled = true;
        ready_.push_back(id);
        work_cv_.notify_one();
      }
    } else if (entry.busy == 0 && !entry.scheduled) {
      return true;
    }
    idle_cv_.wait(lock);
  }
}

void RuleService::flush_all() {
  std::vector<SessionId> ids;
  {
    std::scoped_lock lock(mutex_);
    ids.reserve(sessions_.size());
    for (const auto& [id, entry] : sessions_) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (SessionId id : ids) flush(id);
}

bool RuleService::with_session(SessionId id,
                               const std::function<void(Session&)>& fn) {
  std::unique_lock lock(mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end() || it->second->closing) return false;
  Entry& entry = *it->second;
  ++entry.busy;
  Session& session = *entry.session;
  std::mutex& session_mutex = entry.session_mutex;
  lock.unlock();
  {
    std::scoped_lock session_lock(session_mutex);
    fn(session);
  }
  lock.lock();
  --entry.busy;
  entry.last_active_tick = tick_;
  ++stats_.queries;
  idle_cv_.notify_all();
  return true;
}

std::size_t RuleService::evict_idle() {
  std::unique_lock lock(mutex_);
  return evict_idle_locked(lock, /*force_one=*/false);
}

std::size_t RuleService::evict_idle_locked(std::unique_lock<std::mutex>& lock,
                                           bool force_one) {
  auto idle = [this](const Entry& e) {
    // Durable sessions are never eviction fodder: evicting one would
    // delete its journal, destroying durable state on a timeout.
    return !e.closing && !e.durable && e.busy == 0 && !e.scheduled &&
           e.queue.empty();
  };
  std::vector<SessionId> victims;
  if (config_.idle_eviction_age > 0) {
    for (const auto& [id, entry] : sessions_) {
      if (idle(*entry) &&
          tick_ - entry->last_active_tick >= config_.idle_eviction_age) {
        victims.push_back(id);
      }
    }
  }
  if (victims.empty() && force_one) {
    // Capacity pressure: sacrifice the least-recently-active idle
    // session even if it has not aged out.
    const Entry* oldest = nullptr;
    for (const auto& [id, entry] : sessions_) {
      if (idle(*entry) &&
          (!oldest || entry->last_active_tick < oldest->last_active_tick)) {
        oldest = entry.get();
      }
    }
    if (oldest) victims.push_back(oldest->id);
  }
  std::sort(victims.begin(), victims.end());
  std::size_t closed = 0;
  for (SessionId id : victims) {
    auto it = sessions_.find(id);
    if (it == sessions_.end() || it->second->closing) continue;
    close_locked(lock, *it->second, /*evicting=*/true);
    ++closed;
  }
  return closed;
}

std::size_t RuleService::queue_depth(SessionId id) const {
  std::scoped_lock lock(mutex_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? 0 : it->second->queue.size();
}

std::size_t RuleService::session_count() const {
  std::scoped_lock lock(mutex_);
  return sessions_.size();
}

void RuleService::record_latency(std::uint64_t ns) {
  stats_.latency_max_ns = std::max(stats_.latency_max_ns, ns);
  if (latency_ring_.size() < kLatencyReservoir) {
    latency_ring_.push_back(ns);
  } else {
    latency_ring_[latency_next_] = ns;
    latency_next_ = (latency_next_ + 1) % kLatencyReservoir;
  }
}

SessionId RuleService::open_durable(const std::string& name,
                                    std::unique_ptr<Program> program,
                                    std::string text, std::string* err) {
  auto fail = [&](std::string why) {
    if (err) *err = std::move(why);
    return SessionId{0};
  };
  if (!config_.journal.enabled()) {
    return fail("journaling is disabled (start with --journal-dir)");
  }
  if (!valid_durable_name(name)) {
    return fail("invalid durable session name: " + name);
  }
  if (config_.promotion_guard) {
    // A standby shadowing a live primary must not create durable names
    // of its own — the primary may own (or later ship) the same name.
    if (std::string why = config_.promotion_guard(); !why.empty()) {
      return fail("not-primary: " + why);
    }
  }
  std::unique_lock lock(mutex_);
  if (auto q = quarantined_.find(name); q != quarantined_.end()) {
    return fail("journal-corrupt: " + q->second);
  }
  if (durable_by_name_.count(name)) {
    return fail("durable session exists: " + name);
  }
  if (sessions_.size() >= config_.max_sessions) {
    evict_idle_locked(lock, /*force_one=*/true);
    if (sessions_.size() >= config_.max_sessions) return fail("service full");
  }
  auto durable = std::make_unique<DurableState>();
  durable->name = name;
  durable->program = std::move(program);
  durable->program_text = std::move(text);
  try {
    durable->journal =
        SessionJournal::create(journal_path(name), name,
                               durable->program_text, config_.journal.fsync,
                               &durable->jstats, config_.journal.fail_writes);
  } catch (const JournalError& e) {
    return fail(e.what());
  }
  auto entry = std::make_unique<Entry>();
  entry->id = alloc_id();
  entry->session =
      std::make_unique<Session>(*durable->program, session_config());
  entry->durable = std::move(durable);
  entry->last_active_tick = tick_;
  ++stats_.sessions_opened;
  const SessionId id = entry->id;
  durable_by_name_[name] = id;
  sessions_.emplace(id, std::move(entry));
  if (config_.on_journal_rewritten) {
    // The freshly created header-only file — ship it so the replica has
    // the name on disk even before its first batch.
    config_.on_journal_rewritten(name, journal_path(name));
  }
  return id;
}

SessionId RuleService::resume_durable(const std::string& name,
                                      std::string* err) {
  auto fail = [&](std::string why) {
    if (err) *err = std::move(why);
    return SessionId{0};
  };
  std::unique_lock lock(mutex_);
  if (auto q = quarantined_.find(name); q != quarantined_.end()) {
    return fail("journal-corrupt: " + q->second);
  }
  auto it = durable_by_name_.find(name);
  if (it == durable_by_name_.end()) {
    // Failover path: no live session, but a journal file on disk — a
    // replica's shipped copy (or a startup scan that skipped this
    // shard). Recover it on the spot and resume the result.
    if (!config_.journal.enabled() || !valid_durable_name(name)) {
      return fail("no durable session: " + name);
    }
    const std::string path = journal_path(name);
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) {
      return fail("no durable session: " + name);
    }
    if (config_.promotion_guard) {
      // The file is a standby's shadow copy and the primary is (or very
      // recently was) alive: refuse to promote. A client that lands
      // here prematurely must go back and find the primary.
      if (std::string why = config_.promotion_guard(); !why.empty()) {
        return fail("not-primary: " + why);
      }
    }
    lock.unlock();
    RecoveryReport rep = recover_one(path);
    lock.lock();
    if (!rep.ok) return fail("journal-corrupt: " + rep.error);
    it = durable_by_name_.find(name);
    if (it == durable_by_name_.end()) {
      return fail("no durable session: " + name);
    }
  }
  Entry& entry = *sessions_.at(it->second);
  if (entry.closing) return fail("no durable session: " + name);
  if (entry.durable->attached) {
    return fail("session attached to another conversation: " + name);
  }
  entry.durable->attached = true;
  entry.last_active_tick = tick_;
  return entry.id;
}

void RuleService::release_session(SessionId id) {
  {
    std::scoped_lock lock(mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    if (it->second->durable && !it->second->closing) {
      it->second->durable->attached = false;
      it->second->last_active_tick = tick_;
      return;
    }
  }
  close_session(id);
}

bool RuleService::is_durable(SessionId id) const {
  std::scoped_lock lock(mutex_);
  auto it = sessions_.find(id);
  return it != sessions_.end() && it->second->durable != nullptr;
}

const Program* RuleService::durable_program(SessionId id) const {
  std::scoped_lock lock(mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end() || !it->second->durable) return nullptr;
  return it->second->durable->program.get();
}

bool RuleService::durable_status(SessionId id, DurableStatus* out) const {
  std::scoped_lock lock(mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end() || !it->second->durable) return false;
  const DurableState& d = *it->second->durable;
  if (out) {
    out->name = d.name;
    out->last_req = d.last_req;
    out->last_committed = d.last_committed;
  }
  return true;
}

void RuleService::window_insert(DurableState& d, std::uint64_t req,
                                std::string response) {
  if (!d.dedup.emplace(req, std::move(response)).second) return;
  d.dedup_order.push_back(req);
  while (d.dedup_order.size() > config_.journal.dedup_window) {
    d.dedup.erase(d.dedup_order.front());
    d.dedup_order.pop_front();
  }
}

DedupOutcome RuleService::dedup_check(SessionId id, std::uint64_t req,
                                      std::string* cached) {
  std::scoped_lock lock(mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end() || !it->second->durable) {
    return DedupOutcome::NotDurable;
  }
  DurableState& d = *it->second->durable;
  if (auto hit = d.dedup.find(req); hit != d.dedup.end()) {
    if (cached) *cached = hit->second;
    return DedupOutcome::Replay;
  }
  if (req <= d.last_req) return DedupOutcome::Stale;
  return DedupOutcome::Fresh;
}

bool RuleService::dedup_record(SessionId id, std::uint64_t req,
                               std::string_view response) {
  std::scoped_lock lock(mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end() || !it->second->durable) return false;
  DurableState& d = *it->second->durable;
  window_insert(d, req, std::string(response));
  d.pending_acks.push_back(JournalAck{req, std::string(response)});
  if (req > d.last_req) d.last_req = req;
  return true;
}

bool RuleService::durable_commit(SessionId id, std::uint64_t run_req,
                                 std::string_view run_response,
                                 std::string* err) {
  std::unique_lock lock(mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end() || !it->second->durable) {
    if (err) *err = "not a durable session";
    return false;
  }
  Entry& entry = *it->second;
  DurableState& d = *entry.durable;
  ++entry.busy;  // pins the entry across the unlocked journal write
  lock.unlock();

  bool wrote = false;
  std::string io_reason;
  {
    std::scoped_lock session_lock(entry.session_mutex);
    BatchRecord rec;
    rec.seq = d.batch_seq + 1;
    rec.segments = std::move(d.pending_segments);
    d.pending_segments.clear();
    rec.acks = std::move(d.pending_acks);
    d.pending_acks.clear();
    if (run_req != 0) {
      rec.acks.push_back(JournalAck{run_req, std::string(run_response)});
    }
    const std::string payload = encode_batch(rec, *d.program->symbols);
    try {
      d.journal->append(payload);
      wrote = true;
      d.batch_seq = rec.seq;
      ++d.jstats.batches_logged;
      for (const BatchSegment& seg : rec.segments) {
        d.jstats.ops_logged += seg.ops.size();
      }
      if (config_.on_batch_durable) {
        // Semi-sync replication: still under the session lock, so the
        // hook (and any replica-ack wait inside it) completes before
        // the `ok` can leave the process.
        config_.on_batch_durable(d.name, rec.seq, payload);
      }
    } catch (const JournalError& e) {
      if (e.is_io()) {
        // The journal can no longer keep its ordering promise: fail
        // closed. The caller reports `err journal-io` and the session
        // is quarantined below.
        io_reason = e.what();
        if (err) *err = "journal-io: " + io_reason;
      } else if (err) {
        *err = e.what();
      }
      // Put everything back so a retried `run` re-attempts the
      // identical record — the state is applied in memory but NOT
      // durable, so it must not be acknowledged.
      if (run_req != 0) rec.acks.pop_back();
      d.pending_segments = std::move(rec.segments);
      d.pending_acks = std::move(rec.acks);
    }
  }

  lock.lock();
  --entry.busy;
  entry.last_active_tick = tick_;
  if (!io_reason.empty()) {
    d.quarantined = true;
    quarantined_[d.name] = io_reason;
    durable_by_name_.erase(d.name);
  }
  bool snapshot_due = false;
  SnapshotRecord snap;
  if (wrote) {
    if (run_req != 0) {
      window_insert(d, run_req, std::string(run_response));
      if (run_req > d.last_req) d.last_req = run_req;
    }
    d.last_committed = d.last_req;
    ++d.batches_since_snapshot;
    if (config_.journal.snapshot_every > 0 &&
        d.batches_since_snapshot >= config_.journal.snapshot_every) {
      snapshot_due = true;
      snap.seq = d.batch_seq;
      snap.last_req = d.last_req;
      snap.dedup.reserve(d.dedup_order.size());
      for (std::uint64_t r : d.dedup_order) {
        snap.dedup.push_back(JournalAck{r, d.dedup.at(r)});
      }
      ++entry.busy;
    }
  }
  idle_cv_.notify_all();
  if (!snapshot_due) return wrote;
  lock.unlock();

  bool truncated = false;
  {
    std::scoped_lock session_lock(entry.session_mutex);
    snap.state = entry.session->snapshot_exact();
    snap.fingerprint = entry.session->fingerprint();
    try {
      d.journal->rewrite_with_snapshot(
          d.name, d.program_text, encode_snapshot(snap, *d.program->symbols));
      truncated = true;
      if (config_.on_journal_rewritten) {
        config_.on_journal_rewritten(d.name, d.journal->path());
      }
    } catch (const JournalError&) {
      // Non-fatal: truncation failed, the journal keeps growing and
      // recovery replays the longer record stream instead.
    }
  }

  lock.lock();
  --entry.busy;
  if (truncated) d.batches_since_snapshot = 0;
  idle_cv_.notify_all();
  return wrote;
}

std::vector<RecoveryReport> RuleService::recover_journals(
    const std::function<bool(const std::string&)>& filter) {
  std::vector<RecoveryReport> reports;
  if (!config_.journal.enabled()) return reports;
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& de :
       std::filesystem::directory_iterator(config_.journal.dir, ec)) {
    if (de.path().extension() != ".wal") continue;
    if (filter && !filter(de.path().stem().string())) continue;
    files.push_back(de.path().string());
  }
  std::sort(files.begin(), files.end());
  const std::uint64_t t0 = now_ns();
  reports.reserve(files.size());
  for (const std::string& path : files) reports.push_back(recover_one(path));
  std::scoped_lock lock(mutex_);
  jstats_.recovery_wall_ns += now_ns() - t0;
  return reports;
}

RecoveryReport RuleService::recover_one(const std::string& path) {
  RecoveryReport rep;
  rep.name = std::filesystem::path(path).stem().string();
  try {
    JournalScan scan = scan_journal(path);
    if (scan.header.name != rep.name) {
      throw JournalError("journal header names '" + scan.header.name +
                         "' but the file is '" + rep.name + ".wal'");
    }
    auto durable = std::make_unique<DurableState>();
    durable->name = scan.header.name;
    durable->program =
        std::make_unique<Program>(parse_program(scan.header.program_text));
    durable->program_text = scan.header.program_text;
    SymbolTable& symbols = *durable->program->symbols;

    // A snapshot carries the deffacts' effects inside its exact state;
    // replay-from-zero must re-assert them like the original open did.
    rep.from_snapshot = !scan.payloads.empty() &&
                        record_type(scan.payloads.front()) ==
                            RecordType::Snapshot;
    SessionConfig scfg = session_config();
    scfg.assert_initial_facts = !rep.from_snapshot;
    auto session = std::make_unique<Session>(*durable->program, scfg);

    std::uint64_t prev_seq = 0;
    bool at_head = true;
    for (const std::string& payload : scan.payloads) {
      switch (record_type(payload)) {
        case RecordType::Header:
          throw JournalError("duplicate header record");
        case RecordType::Snapshot: {
          if (!at_head) {
            throw JournalError("snapshot record not at journal head");
          }
          SnapshotRecord snap = decode_snapshot(payload, symbols);
          {
            std::scoped_lock pool_lock(pool_mutex_);
            session->restore_exact(snap.state);
          }
          if (session->fingerprint() != snap.fingerprint ||
              session->wm().high_water() != snap.state.high_water) {
            throw JournalError(
                "snapshot settle run diverged — program is not "
                "snapshot-compatible; rerun with --snapshot-every 0");
          }
          for (JournalAck& a : snap.dedup) {
            window_insert(*durable, a.req, std::move(a.response));
          }
          durable->last_req = snap.last_req;
          durable->last_committed = snap.last_req;
          durable->batch_seq = snap.seq;
          prev_seq = snap.seq;
          break;
        }
        case RecordType::Batch: {
          BatchRecord rec = decode_batch(payload, symbols);
          if (rec.seq != prev_seq + 1) {
            throw JournalError("batch sequence gap: expected " +
                               std::to_string(prev_seq + 1) + ", found " +
                               std::to_string(rec.seq));
          }
          for (const BatchSegment& seg : rec.segments) {
            for (const JournalOp& op : seg.ops) {
              if (op.kind == JournalOp::Kind::Assert) {
                session->assert_fact(op.tmpl, op.slots);
              } else {
                session->retract(op.fact);
              }
              ++rep.ops;
            }
            {
              std::scoped_lock pool_lock(pool_mutex_);
              session->run_to_quiescence();
            }
            if (session->fingerprint() != seg.fingerprint ||
                session->wm().high_water() != seg.high_water) {
              throw JournalError(
                  "replay diverged from the journaled state digest at "
                  "batch seq " +
                  std::to_string(rec.seq));
            }
          }
          for (JournalAck& a : rec.acks) {
            if (a.req > durable->last_req) durable->last_req = a.req;
            window_insert(*durable, a.req, std::move(a.response));
          }
          durable->last_committed = durable->last_req;
          durable->batch_seq = rec.seq;
          prev_seq = rec.seq;
          ++rep.batches;
          break;
        }
      }
      at_head = false;
    }

    rep.facts = session->wm().alive_count();
    rep.fingerprint = session->fingerprint();
    rep.torn_bytes = scan.torn_bytes;
    rep.torn_kind = scan.torn_kind;
    rep.torn_offset = scan.torn_offset;
    durable->journal = SessionJournal::open_append(
        path, config_.journal.fsync, &durable->jstats,
        config_.journal.fail_writes);
    durable->attached = false;  // waits for a `resume`

    std::scoped_lock lock(mutex_);
    auto entry = std::make_unique<Entry>();
    entry->id = alloc_id();
    entry->session = std::move(session);
    entry->durable = std::move(durable);
    entry->last_active_tick = tick_;
    ++stats_.sessions_opened;
    durable_by_name_[rep.name] = entry->id;
    rep.session = entry->id;
    sessions_.emplace(entry->id, std::move(entry));
    ++jstats_.recovered_sessions;
    jstats_.recovered_batches += rep.batches;
    jstats_.recovered_ops += rep.ops;
    if (rep.torn_bytes > 0) ++jstats_.torn_tails;
    rep.ok = true;
  } catch (const std::exception& e) {
    // Fail closed: the journal file is left exactly as found, and the
    // name answers `err journal-corrupt` until an operator intervenes.
    rep.ok = false;
    rep.error = e.what();
    std::scoped_lock lock(mutex_);
    quarantined_[rep.name] = rep.error;
    ++jstats_.recovery_failures;
  }
  return rep;
}

std::vector<std::string> RuleService::durable_names() const {
  std::scoped_lock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(durable_by_name_.size());
  for (const auto& [name, id] : durable_by_name_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

bool RuleService::has_durable(const std::string& name) const {
  std::scoped_lock lock(mutex_);
  return durable_by_name_.count(name) > 0 || quarantined_.count(name) > 0;
}

bool RuleService::read_journal_file(const std::string& name,
                                    std::string* bytes) {
  std::unique_lock lock(mutex_);
  auto it = durable_by_name_.find(name);
  if (it == durable_by_name_.end()) return false;
  auto sit = sessions_.find(it->second);
  if (sit == sessions_.end() || sit->second->closing) return false;
  Entry& entry = *sit->second;
  ++entry.busy;  // pins the entry while we read outside mutex_
  lock.unlock();
  bool ok = false;
  {
    std::scoped_lock session_lock(entry.session_mutex);
    std::ifstream in(journal_path(name), std::ios::binary);
    if (in) {
      bytes->assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
      ok = true;
    }
  }
  lock.lock();
  --entry.busy;
  idle_cv_.notify_all();
  return ok;
}

JournalStats RuleService::journal_stats_snapshot() const {
  std::scoped_lock lock(mutex_);
  JournalStats out = jstats_;
  for (const auto& [id, entry] : sessions_) {
    if (!entry->durable) continue;
    std::scoped_lock session_lock(entry->session_mutex);
    for (const auto& f : obs::journal_fields()) {
      out.*f.member += entry->durable->jstats.*f.member;
    }
  }
  return out;
}

ServiceStats RuleService::stats_snapshot() const {
  std::scoped_lock lock(mutex_);
  ServiceStats out = stats_;
  out.queue_depth = 0;
  for (const auto& [id, entry] : sessions_) {
    out.queue_depth += entry->queue.size();
  }
  if (!latency_ring_.empty()) {
    std::vector<std::uint64_t> sorted = latency_ring_;
    std::sort(sorted.begin(), sorted.end());
    auto pct = [&sorted](std::size_t p) {
      std::size_t idx = sorted.size() * p / 100;
      if (idx >= sorted.size()) idx = sorted.size() - 1;
      return sorted[idx];
    };
    out.latency_p50_ns = pct(50);
    out.latency_p99_ns = pct(99);
  }
  return out;
}

}  // namespace parulel::service
