#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <iterator>

namespace parulel::service {

namespace {
/// Bounded latency reservoir: percentile math stays O(64k) no matter
/// how many requests the service has served.
constexpr std::size_t kLatencyReservoir = 1 << 16;
}  // namespace

std::uint64_t RuleService::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

RuleService::RuleService(ServiceConfig config)
    : config_(config), pool_(std::max(1u, config.pool_threads)) {
  workers_.reserve(config_.workers);
  for (unsigned w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

RuleService::~RuleService() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  // workers_ (declared last) joins first, then sessions_ destruct.
}

SessionId RuleService::open_session(const Program& program) {
  std::unique_lock lock(mutex_);
  if (sessions_.size() >= config_.max_sessions) {
    evict_idle_locked(lock, /*force_one=*/true);
    if (sessions_.size() >= config_.max_sessions) return 0;
  }
  auto entry = std::make_unique<Entry>();
  entry->id = next_id_++;
  SessionConfig scfg;
  scfg.matcher = config_.matcher;
  scfg.pool = &pool_;
  scfg.cycle_quota = config_.cycle_quota;
  scfg.fact_quota = config_.fact_quota;
  scfg.output = config_.output;
  entry->session = std::make_unique<Session>(program, scfg);
  entry->last_active_tick = tick_;
  ++stats_.sessions_opened;
  const SessionId id = entry->id;
  sessions_.emplace(id, std::move(entry));
  return id;
}

bool RuleService::close_session(SessionId id) {
  std::unique_lock lock(mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end() || it->second->closing) return false;
  close_locked(lock, *it->second, /*evicting=*/false);
  return true;
}

void RuleService::close_locked(std::unique_lock<std::mutex>& lock,
                               Entry& entry, bool evicting) {
  entry.closing = true;  // rejects new submits; only one closer can win
  idle_cv_.wait(lock, [&entry] { return entry.busy == 0; });
  ++stats_.sessions_closed;
  if (evicting) ++stats_.evicted;
  const SessionId id = entry.id;
  sessions_.erase(id);  // entry dangles from here on
  idle_cv_.notify_all();
}

SubmitResult RuleService::submit(SessionId id, Request request) {
  std::unique_lock lock(mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end() || it->second->closing) {
    return SubmitResult::NoSuchSession;
  }
  Entry& entry = *it->second;
  if (entry.queue.size() >= config_.queue_capacity) {
    ++stats_.rejected;
    return SubmitResult::QueueFull;
  }
  request.enqueued_ns = now_ns();
  ++stats_.requests;
  switch (request.kind) {
    case Request::Kind::Assert: ++stats_.asserts; break;
    case Request::Kind::Retract: ++stats_.retracts; break;
    case Request::Kind::Run: ++stats_.runs; break;
  }
  entry.queue.push_back(std::move(request));
  stats_.peak_queue_depth =
      std::max<std::uint64_t>(stats_.peak_queue_depth, entry.queue.size());
  if (config_.workers > 0 && !entry.scheduled) {
    entry.scheduled = true;
    ready_.push_back(id);
    work_cv_.notify_one();
  }
  return SubmitResult::Accepted;
}

void RuleService::worker_loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stopping_ || !ready_.empty(); });
    if (stopping_) return;
    const SessionId id = ready_.front();
    ready_.pop_front();
    auto it = sessions_.find(id);
    if (it == sessions_.end()) continue;
    Entry& entry = *it->second;
    entry.scheduled = false;
    if (entry.closing || entry.queue.empty()) continue;
    commit_batch(lock, entry);
    idle_cv_.notify_all();
  }
}

void RuleService::commit_batch(std::unique_lock<std::mutex>& lock,
                               Entry& entry) {
  // Claim one batch off the queue; reschedule if requests remain.
  const std::size_t n = std::min(entry.queue.size(), config_.batch_max);
  std::vector<Request> batch;
  batch.reserve(n);
  std::move(entry.queue.begin(),
            entry.queue.begin() + static_cast<std::ptrdiff_t>(n),
            std::back_inserter(batch));
  entry.queue.erase(entry.queue.begin(),
                    entry.queue.begin() + static_cast<std::ptrdiff_t>(n));
  if (config_.workers > 0 && !entry.queue.empty() && !entry.scheduled &&
      !entry.closing) {
    entry.scheduled = true;
    ready_.push_back(entry.id);
    work_cv_.notify_one();
  }
  ++entry.busy;  // pins the entry: close_locked waits for busy == 0
  Session& session = *entry.session;
  std::mutex& session_mutex = entry.session_mutex;
  lock.unlock();

  std::uint64_t quota_rejected = 0;
  std::uint64_t commit_end_ns = 0;
  {
    std::scoped_lock session_lock(session_mutex);
    for (Request& request : batch) {
      switch (request.kind) {
        case Request::Kind::Assert:
          if (session.assert_fact(request.tmpl, std::move(request.slots)) ==
              Session::AssertOutcome::QuotaRejected) {
            ++quota_rejected;
          }
          break;
        case Request::Kind::Retract:
          session.retract(request.fact);
          break;
        case Request::Kind::Run:
          break;  // a pure commit barrier
      }
    }
    {
      // The shared pool's fork-join batches do not nest: one
      // recognize-act commit on it at a time, service-wide.
      std::scoped_lock pool_lock(pool_mutex_);
      session.run_to_quiescence();
    }
    commit_end_ns = now_ns();
  }

  lock.lock();
  --entry.busy;
  ++tick_;
  entry.last_active_tick = tick_;
  ++stats_.batches;
  stats_.batched_ops += batch.size();
  stats_.quota_rejected += quota_rejected;
  for (const Request& request : batch) {
    record_latency(commit_end_ns - request.enqueued_ns);
  }
}

bool RuleService::flush(SessionId id) {
  std::unique_lock lock(mutex_);
  if (sessions_.find(id) == sessions_.end()) return false;
  for (;;) {
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return true;  // closed while flushing
    Entry& entry = *it->second;
    if (!entry.queue.empty()) {
      if (config_.workers == 0) {
        commit_batch(lock, entry);
        idle_cv_.notify_all();
        continue;
      }
      if (!entry.scheduled) {
        entry.scheduled = true;
        ready_.push_back(id);
        work_cv_.notify_one();
      }
    } else if (entry.busy == 0 && !entry.scheduled) {
      return true;
    }
    idle_cv_.wait(lock);
  }
}

void RuleService::flush_all() {
  std::vector<SessionId> ids;
  {
    std::scoped_lock lock(mutex_);
    ids.reserve(sessions_.size());
    for (const auto& [id, entry] : sessions_) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (SessionId id : ids) flush(id);
}

bool RuleService::with_session(SessionId id,
                               const std::function<void(Session&)>& fn) {
  std::unique_lock lock(mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end() || it->second->closing) return false;
  Entry& entry = *it->second;
  ++entry.busy;
  Session& session = *entry.session;
  std::mutex& session_mutex = entry.session_mutex;
  lock.unlock();
  {
    std::scoped_lock session_lock(session_mutex);
    fn(session);
  }
  lock.lock();
  --entry.busy;
  entry.last_active_tick = tick_;
  ++stats_.queries;
  idle_cv_.notify_all();
  return true;
}

std::size_t RuleService::evict_idle() {
  std::unique_lock lock(mutex_);
  return evict_idle_locked(lock, /*force_one=*/false);
}

std::size_t RuleService::evict_idle_locked(std::unique_lock<std::mutex>& lock,
                                           bool force_one) {
  auto idle = [this](const Entry& e) {
    return !e.closing && e.busy == 0 && !e.scheduled && e.queue.empty();
  };
  std::vector<SessionId> victims;
  if (config_.idle_eviction_age > 0) {
    for (const auto& [id, entry] : sessions_) {
      if (idle(*entry) &&
          tick_ - entry->last_active_tick >= config_.idle_eviction_age) {
        victims.push_back(id);
      }
    }
  }
  if (victims.empty() && force_one) {
    // Capacity pressure: sacrifice the least-recently-active idle
    // session even if it has not aged out.
    const Entry* oldest = nullptr;
    for (const auto& [id, entry] : sessions_) {
      if (idle(*entry) &&
          (!oldest || entry->last_active_tick < oldest->last_active_tick)) {
        oldest = entry.get();
      }
    }
    if (oldest) victims.push_back(oldest->id);
  }
  std::sort(victims.begin(), victims.end());
  std::size_t closed = 0;
  for (SessionId id : victims) {
    auto it = sessions_.find(id);
    if (it == sessions_.end() || it->second->closing) continue;
    close_locked(lock, *it->second, /*evicting=*/true);
    ++closed;
  }
  return closed;
}

std::size_t RuleService::queue_depth(SessionId id) const {
  std::scoped_lock lock(mutex_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? 0 : it->second->queue.size();
}

std::size_t RuleService::session_count() const {
  std::scoped_lock lock(mutex_);
  return sessions_.size();
}

void RuleService::record_latency(std::uint64_t ns) {
  stats_.latency_max_ns = std::max(stats_.latency_max_ns, ns);
  if (latency_ring_.size() < kLatencyReservoir) {
    latency_ring_.push_back(ns);
  } else {
    latency_ring_[latency_next_] = ns;
    latency_next_ = (latency_next_ + 1) % kLatencyReservoir;
  }
}

ServiceStats RuleService::stats_snapshot() const {
  std::scoped_lock lock(mutex_);
  ServiceStats out = stats_;
  out.queue_depth = 0;
  for (const auto& [id, entry] : sessions_) {
    out.queue_depth += entry->queue.size();
  }
  if (!latency_ring_.empty()) {
    std::vector<std::uint64_t> sorted = latency_ring_;
    std::sort(sorted.begin(), sorted.end());
    auto pct = [&sorted](std::size_t p) {
      std::size_t idx = sorted.size() * p / 100;
      if (idx >= sorted.size()) idx = sorted.size() - 1;
      return sorted[idx];
    };
    out.latency_p50_ns = pct(50);
    out.latency_p99_ns = pct(99);
  }
  return out;
}

}  // namespace parulel::service
