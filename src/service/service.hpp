// RuleService: many long-lived sessions behind bounded request queues.
//
// The concurrency model, chosen around two hard constraints:
//
//  1. Sessions are single-threaded objects (session.hpp) — a per-session
//     lock serializes all access to one session.
//  2. runtime::ThreadPool fork-join batches do not nest: at most one
//     engine may be running match/fire phases on a given pool at once.
//
// So the service separates INGESTION from COMPUTE. Any number of client
// threads submit assert/retract/run requests concurrently; each lands in
// that session's bounded queue (backpressure: a full queue rejects the
// request, it never blocks the client). Worker threads drain queues a
// batch at a time and commit each batch as ONE recognize-act run on the
// retained session — that is PARULEL's set-oriented cycle acting as a
// batch commit. All commits share one machine-sized ThreadPool for their
// data-parallel phases and are serialized on it by a pool lock:
// cross-SESSION parallelism comes from ingestion and batching,
// cross-DATA parallelism from the pool inside a commit.
//
// With `workers == 0` the service is synchronous: commits happen on the
// caller's thread inside flush(), which makes request/response sequences
// fully deterministic — the mode the --serve line protocol and the
// equivalence tests use.
//
// Quotas and eviction: per-session cycle/fact quotas bound one tenant's
// damage; idle sessions (no activity for `idle_eviction_age` commit
// ticks) are evicted on demand and under capacity pressure.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/stats.hpp"
#include "runtime/thread_pool.hpp"
#include "service/journal.hpp"
#include "service/session.hpp"

namespace parulel::service {

/// Opaque session handle; 0 is never a valid id.
using SessionId = std::uint64_t;

/// FNV-1a 64-bit over the session name bytes. This is the durable
/// session-pinning hash: a name's home shard is a pure function of the
/// name, so every server (and every restart) routes a name to the same
/// shard — which therefore exclusively owns that session's engine
/// state, dedup window, and journal file.
std::uint64_t durable_name_hash(std::string_view name);

/// The home shard of a durable session name under `shards` event-loop
/// shards. Stable across runs (see durable_name_hash); 0 when shards
/// is 0 or 1.
unsigned shard_for_name(std::string_view name, unsigned shards);

struct ServiceConfig {
  /// Background commit workers. 0 = synchronous mode: commits run on
  /// the calling thread inside flush()/flush_all() (deterministic).
  unsigned workers = 0;

  /// Threads in the shared match/fire pool (one pool for all sessions).
  unsigned pool_threads = 1;

  /// Per-session pending-request cap; submits beyond it are rejected.
  std::size_t queue_capacity = 256;

  /// Max requests folded into one recognize-act commit.
  std::size_t batch_max = 128;

  /// Per-commit cycle quota (Session::SessionConfig::cycle_quota).
  std::uint64_t cycle_quota = 1'000'000;

  /// Per-session alive-fact ceiling; 0 = unlimited.
  std::uint64_t fact_quota = 0;

  /// Open sessions cap; open_session evicts an idle session or fails.
  std::size_t max_sessions = 64;

  /// A session untouched for this many global commit ticks is eligible
  /// for evict_idle(). 0 disables age-based eviction (capacity-pressure
  /// eviction of the least-recently-active idle session still applies).
  std::uint64_t idle_eviction_age = 0;

  /// Matcher for new sessions (Treat or ParallelTreat).
  MatcherKind matcher = MatcherKind::ParallelTreat;

  /// Sink for (printout ...) actions across all sessions; null discards.
  std::ostream* output = nullptr;

  /// Write-ahead-journal policy; journal.dir empty = durability off and
  /// the whole durable path compiled out of the hot loop (one null
  /// pointer check per commit).
  JournalConfig journal;

  /// Optional shared SessionId source (must outlive the service). The
  /// sharded NetServer points every shard's service at one counter so
  /// ids stay server-unique and `open NAME id=N` responses match the
  /// single-service numbering. Null = service-local ids from 1.
  std::atomic<std::uint64_t>* session_ids = nullptr;

  // -- replication hooks (wired by the NetServer's ReplicationHub) --
  //
  // Each hook runs under the session's own lock, AFTER the local append
  // (and fsync) succeeded and BEFORE the `ok` can leave the process —
  // blocking inside the hook is what makes semi-sync replication hold
  // the ack until the replica confirmed. Per-session ordering only: two
  // sessions' hooks may interleave.

  /// A batch record was durably appended: (name, record seq, the exact
  /// encoded record payload the journal framed).
  std::function<void(const std::string&, std::uint64_t, const std::string&)>
      on_batch_durable;

  /// The journal file was atomically rewritten (snapshot truncation) or
  /// freshly created: (name, file path). The file on disk is complete
  /// and quiescent for the duration of the call.
  std::function<void(const std::string&, const std::string&)>
      on_journal_rewritten;

  /// The journal file was deliberately unlinked (`close NAME`).
  std::function<void(const std::string&)> on_journal_removed;

  /// Promotion fence (hot standbys). Consulted before a durable name
  /// would come to life from a file on disk (lazy failover promotion in
  /// resume_durable) and before a fresh durable open. A non-empty
  /// return is the refusal reason: the caller answers
  /// `err not-primary: <why>` instead of promoting — a standby whose
  /// replication link is still healthy must not start serving names the
  /// primary owns (split-brain). Unset = never fenced.
  std::function<std::string()> promotion_guard;
};

/// One queued external operation.
struct Request {
  enum class Kind : std::uint8_t { Assert, Retract, Run };
  Kind kind = Kind::Run;
  TemplateId tmpl = kInvalidTemplate;  // Assert
  std::vector<Value> slots;            // Assert
  FactId fact = kInvalidFact;          // Retract
  std::uint64_t enqueued_ns = 0;       // stamped by submit()

  static Request make_assert(TemplateId tmpl, std::vector<Value> slots) {
    Request r;
    r.kind = Kind::Assert;
    r.tmpl = tmpl;
    r.slots = std::move(slots);
    return r;
  }
  static Request make_retract(FactId fact) {
    Request r;
    r.kind = Kind::Retract;
    r.fact = fact;
    return r;
  }
  static Request make_run() { return Request{}; }
};

enum class SubmitResult : std::uint8_t {
  Accepted,
  QueueFull,      ///< backpressure: per-session queue at capacity
  NoSuchSession,  ///< unknown or closing session id
};

/// Verdict on a parulel/2 request id (see dedup_check).
enum class DedupOutcome : std::uint8_t {
  Fresh,       ///< never seen: execute it
  Replay,      ///< committed earlier: answer from the cached response
  Stale,       ///< older than the dedup window: fail closed
  NotDurable,  ///< session has no journal; request ids are meaningless
};

/// What recover_journals() did with one journal file.
struct RecoveryReport {
  std::string name;
  bool ok = false;
  std::string error;        ///< quarantine reason when !ok
  SessionId session = 0;    ///< registered (detached) session when ok
  bool from_snapshot = false;
  std::uint64_t batches = 0;  ///< batch records replayed
  std::uint64_t ops = 0;      ///< assert/retract ops re-applied
  std::uint64_t facts = 0;    ///< alive facts after recovery
  std::uint64_t fingerprint = 0;
  std::uint64_t torn_bytes = 0;  ///< torn-tail bytes dropped, if any
  /// When torn_bytes > 0: which record kind the crash tore ("batch",
  /// "site-batch", or "frame" for a headless stub) and the byte offset
  /// of the torn frame — what an operator greps when debugging a
  /// cluster chaos run, instead of a bare drop count.
  std::string torn_kind;
  std::uint64_t torn_offset = 0;
};

/// Introspection for the protocol's `resume`/`run committed=` fields.
struct DurableStatus {
  std::string name;
  std::uint64_t last_req = 0;        ///< highest acknowledged request id
  std::uint64_t last_committed = 0;  ///< highest JOURNALED request id
};

class RuleService {
 public:
  explicit RuleService(ServiceConfig config);
  ~RuleService();

  RuleService(const RuleService&) = delete;
  RuleService& operator=(const RuleService&) = delete;

  /// Open a session over `program` (which must outlive it). Returns 0
  /// when the service is at max_sessions and nothing could be evicted.
  SessionId open_session(const Program& program);

  /// Close and destroy a session; blocks until in-flight work on it
  /// finishes. Pending queued requests are dropped. Closing a durable
  /// session also UNLINKS its journal — close is the deliberate end of
  /// the durable state, detach (release_session) the way to keep it.
  bool close_session(SessionId id);

  // -- durable sessions (write-ahead journal; see journal.hpp) --
  //
  // A durable session is a journaled session addressed by a server-wide
  // NAME; it requires journaling enabled. The journal-before-ack commit
  // ordering is PER SESSION, not service-global: every op is journaled
  // under that session's lock in commit order, and durable_commit()
  // writes the batch record under the same lock — so durable sessions
  // work in any worker mode, and independent sessions fsync and ack
  // concurrently. (The line-protocol front-ends still run workers == 0
  // so responses stay a pure function of each conversation's stream.)
  // Durable sessions are exempt from idle eviction, and a conversation
  // ending detaches rather than closes them — `resume` reattaches,
  // across reconnects and across server restarts.

  /// Create a durable session. The service takes ownership of the
  /// parsed program (recovery must outlive any conversation); `text` is
  /// its source, journaled so recovery can re-parse it. On failure
  /// returns 0 with a structured message in *err.
  SessionId open_durable(const std::string& name,
                         std::unique_ptr<Program> program, std::string text,
                         std::string* err);

  /// Reattach a detached durable session by name. Fails (returns 0,
  /// message in *err) for unknown names, sessions attached to another
  /// conversation, and quarantined journals. A name with no in-memory
  /// session but a journal file on disk is recovered on the spot — the
  /// failover path: a replica's shipped journals become live sessions
  /// the moment a failed-over client resumes them.
  SessionId resume_durable(const std::string& name, std::string* err);

  /// Conversation teardown: detach a durable session (keeping it
  /// resumable), close anything else.
  void release_session(SessionId id);

  bool is_durable(SessionId id) const;

  /// The program a durable session runs (service-owned; stable until
  /// the session closes). Null for unknown/non-durable sessions.
  const Program* durable_program(SessionId id) const;

  bool durable_status(SessionId id, DurableStatus* out) const;

  /// Classify a parulel/2 request id against the session's dedup
  /// window. Replay fills *cached with the exact response bytes the
  /// original execution acknowledged.
  DedupOutcome dedup_check(SessionId id, std::uint64_t req,
                           std::string* cached);

  /// Record an acknowledged (ok) response for `req`: enters the dedup
  /// window now and rides the next batch record to disk. Returns false
  /// for non-durable sessions.
  bool dedup_record(SessionId id, std::uint64_t req,
                    std::string_view response);

  /// Make everything since the last commit durable: write ONE batch
  /// record holding the pending commit segments and pending acks (plus
  /// `run_req`/`run_response`, the `run` that triggered this), fsync
  /// per policy, then fold the run into the dedup window. On journal
  /// failure the pending state is retained so a retried `run` attempts
  /// the identical record again, and *err carries the reason — the
  /// caller must discard the response and answer `err` instead (the
  /// exactly-once ordering: nothing un-journaled is ever acked).
  /// Triggers the snapshot-every truncation rewrite when due.
  bool durable_commit(SessionId id, std::uint64_t run_req,
                      std::string_view run_response, std::string* err);

  /// Startup recovery: scan journal.dir for *.wal files and rebuild
  /// each as a detached durable session, verifying every replayed
  /// commit against its journaled fingerprint/high-water digest.
  /// Journals that fail ANY check are quarantined: the file is left
  /// untouched and the name answers `err journal-corrupt` until an
  /// operator intervenes. Call once, before serving traffic. A sharded
  /// front-end passes `filter` so each shard's service recovers (and
  /// quarantines) exactly the names it owns — files whose stem fails
  /// the filter are skipped entirely.
  std::vector<RecoveryReport> recover_journals(
      const std::function<bool(const std::string&)>& filter = nullptr);

  /// Journal + recovery counters aggregated across durable sessions.
  JournalStats journal_stats_snapshot() const;

  /// Names of all live durable sessions, sorted (replication catch-up
  /// enumerates these to full-sync a fresh replica).
  std::vector<std::string> durable_names() const;

  /// Whether `name` is a live durable session or a quarantined one —
  /// the replica applier's promotion guard: once a name is served
  /// locally, shipped frames for it must no longer touch its file.
  bool has_durable(const std::string& name) const;

  /// Read the raw bytes of a durable session's journal file under its
  /// session lock (no append can be concurrent), for full-file
  /// replication sync. False for unknown names.
  bool read_journal_file(const std::string& name, std::string* bytes);

  /// Enqueue one request. Never blocks: a full queue rejects.
  SubmitResult submit(SessionId id, Request request);

  /// Block until `id`'s queue is drained and no commit is in flight.
  /// In synchronous mode this performs the commits on this thread.
  /// Returns false for an unknown session.
  bool flush(SessionId id);

  /// flush() every open session.
  void flush_all();

  /// Run `fn` with exclusive access to the session (no queued commit is
  /// concurrent with it). For synchronous operations: query, snapshot,
  /// restore, counters. Returns false for an unknown session.
  bool with_session(SessionId id, const std::function<void(Session&)>& fn);

  /// Evict sessions idle for >= idle_eviction_age commit ticks (no
  /// pending requests, no in-flight commit). Returns how many closed.
  std::size_t evict_idle();

  /// Pending requests in `id`'s queue (0 for unknown sessions).
  std::size_t queue_depth(SessionId id) const;

  std::size_t session_count() const;

  /// Aggregate counters + latency percentiles from the reservoir.
  ServiceStats stats_snapshot() const;

  ThreadPool& pool() { return pool_; }
  const ServiceConfig& config() const { return config_; }

 private:
  /// Journal-side state of a durable session. The registry fields (name
  /// lookups, attach flag) are guarded by mutex_; the journal handle and
  /// pending segments/acks are only touched under the owning Entry's
  /// session_mutex (commit_batch and durable_commit both hold it), which
  /// is what makes the journal-before-ack ordering per-session: two
  /// sessions' journal writes and fsyncs never serialize on each other.
  struct DurableState {
    std::string name;
    std::unique_ptr<Program> program;  ///< service-owned for recovery
    std::string program_text;
    std::unique_ptr<SessionJournal> journal;
    bool attached = true;  ///< bound to a live conversation

    // Exactly-once bookkeeping.
    std::deque<std::uint64_t> dedup_order;  ///< window eviction order
    std::unordered_map<std::uint64_t, std::string> dedup;  ///< req -> resp
    std::uint64_t last_req = 0;        ///< highest acked request id
    std::uint64_t last_committed = 0;  ///< highest journaled request id

    // Accumulates between durable_commit()s.
    std::vector<BatchSegment> pending_segments;
    std::vector<JournalAck> pending_acks;
    std::uint64_t batch_seq = 0;
    std::uint64_t batches_since_snapshot = 0;

    /// Journal I/O failure froze this session: the name answers err
    /// until an operator intervenes, and teardown must NOT unlink the
    /// file (it is the operator's evidence and the surviving state).
    bool quarantined = false;

    JournalStats jstats;
  };

  struct Entry {
    SessionId id = 0;
    std::unique_ptr<Session> session;
    std::mutex session_mutex;      ///< serializes Session access
    std::deque<Request> queue;     ///< guarded by service mutex_
    bool scheduled = false;        ///< in ready_ (guarded by mutex_)
    unsigned busy = 0;             ///< commits/with_session in flight
    bool closing = false;
    std::uint64_t last_active_tick = 0;
    std::unique_ptr<DurableState> durable;  ///< null = plain session
  };

  void worker_loop();
  SessionConfig session_config();
  std::string journal_path(const std::string& name) const;
  /// Insert into the bounded dedup window, evicting the oldest ids.
  void window_insert(DurableState& d, std::uint64_t req,
                     std::string response);
  /// Recover one journal file; quarantines on any failure.
  RecoveryReport recover_one(const std::string& path);
  /// Drain one batch from `entry` and commit it. Called with mutex_
  /// held; releases and re-acquires it around the session work.
  void commit_batch(std::unique_lock<std::mutex>& lock, Entry& entry);
  /// Close `entry` under mutex_ (waits for busy == 0). `lock` held.
  void close_locked(std::unique_lock<std::mutex>& lock, Entry& entry,
                    bool evicting);
  /// Age-based eviction; with `force_one`, also sacrifice the
  /// least-recently-active idle session under capacity pressure.
  std::size_t evict_idle_locked(std::unique_lock<std::mutex>& lock,
                                bool force_one);
  void record_latency(std::uint64_t ns);
  static std::uint64_t now_ns();
  /// Next SessionId: the shared config.session_ids counter when set,
  /// the service-local one otherwise. Called with mutex_ held.
  SessionId alloc_id();

  ServiceConfig config_;
  ThreadPool pool_;
  std::mutex pool_mutex_;  ///< one commit on the shared pool at a time

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< workers: ready_ non-empty
  std::condition_variable idle_cv_;   ///< flush/close: work drained
  std::unordered_map<SessionId, std::unique_ptr<Entry>> sessions_;
  std::deque<SessionId> ready_;       ///< sessions with pending requests
  SessionId next_id_ = 1;
  std::uint64_t tick_ = 0;            ///< global commit counter
  bool stopping_ = false;

  // Aggregate counters (guarded by mutex_). Latencies live in a bounded
  // ring so percentile math is O(reservoir), not O(request history).
  ServiceStats stats_;
  std::vector<std::uint64_t> latency_ring_;
  std::size_t latency_next_ = 0;

  // Durable registry (guarded by mutex_).
  std::unordered_map<std::string, SessionId> durable_by_name_;
  std::unordered_map<std::string, std::string> quarantined_;  ///< name -> why
  JournalStats jstats_;  ///< recovery totals + folded closed sessions

  std::vector<std::jthread> workers_;
};

}  // namespace parulel::service
