// RuleService: many long-lived sessions behind bounded request queues.
//
// The concurrency model, chosen around two hard constraints:
//
//  1. Sessions are single-threaded objects (session.hpp) — a per-session
//     lock serializes all access to one session.
//  2. runtime::ThreadPool fork-join batches do not nest: at most one
//     engine may be running match/fire phases on a given pool at once.
//
// So the service separates INGESTION from COMPUTE. Any number of client
// threads submit assert/retract/run requests concurrently; each lands in
// that session's bounded queue (backpressure: a full queue rejects the
// request, it never blocks the client). Worker threads drain queues a
// batch at a time and commit each batch as ONE recognize-act run on the
// retained session — that is PARULEL's set-oriented cycle acting as a
// batch commit. All commits share one machine-sized ThreadPool for their
// data-parallel phases and are serialized on it by a pool lock:
// cross-SESSION parallelism comes from ingestion and batching,
// cross-DATA parallelism from the pool inside a commit.
//
// With `workers == 0` the service is synchronous: commits happen on the
// caller's thread inside flush(), which makes request/response sequences
// fully deterministic — the mode the --serve line protocol and the
// equivalence tests use.
//
// Quotas and eviction: per-session cycle/fact quotas bound one tenant's
// damage; idle sessions (no activity for `idle_eviction_age` commit
// ticks) are evicted on demand and under capacity pressure.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/stats.hpp"
#include "runtime/thread_pool.hpp"
#include "service/session.hpp"

namespace parulel::service {

/// Opaque session handle; 0 is never a valid id.
using SessionId = std::uint64_t;

struct ServiceConfig {
  /// Background commit workers. 0 = synchronous mode: commits run on
  /// the calling thread inside flush()/flush_all() (deterministic).
  unsigned workers = 0;

  /// Threads in the shared match/fire pool (one pool for all sessions).
  unsigned pool_threads = 1;

  /// Per-session pending-request cap; submits beyond it are rejected.
  std::size_t queue_capacity = 256;

  /// Max requests folded into one recognize-act commit.
  std::size_t batch_max = 128;

  /// Per-commit cycle quota (Session::SessionConfig::cycle_quota).
  std::uint64_t cycle_quota = 1'000'000;

  /// Per-session alive-fact ceiling; 0 = unlimited.
  std::uint64_t fact_quota = 0;

  /// Open sessions cap; open_session evicts an idle session or fails.
  std::size_t max_sessions = 64;

  /// A session untouched for this many global commit ticks is eligible
  /// for evict_idle(). 0 disables age-based eviction (capacity-pressure
  /// eviction of the least-recently-active idle session still applies).
  std::uint64_t idle_eviction_age = 0;

  /// Matcher for new sessions (Treat or ParallelTreat).
  MatcherKind matcher = MatcherKind::ParallelTreat;

  /// Sink for (printout ...) actions across all sessions; null discards.
  std::ostream* output = nullptr;
};

/// One queued external operation.
struct Request {
  enum class Kind : std::uint8_t { Assert, Retract, Run };
  Kind kind = Kind::Run;
  TemplateId tmpl = kInvalidTemplate;  // Assert
  std::vector<Value> slots;            // Assert
  FactId fact = kInvalidFact;          // Retract
  std::uint64_t enqueued_ns = 0;       // stamped by submit()

  static Request make_assert(TemplateId tmpl, std::vector<Value> slots) {
    Request r;
    r.kind = Kind::Assert;
    r.tmpl = tmpl;
    r.slots = std::move(slots);
    return r;
  }
  static Request make_retract(FactId fact) {
    Request r;
    r.kind = Kind::Retract;
    r.fact = fact;
    return r;
  }
  static Request make_run() { return Request{}; }
};

enum class SubmitResult : std::uint8_t {
  Accepted,
  QueueFull,      ///< backpressure: per-session queue at capacity
  NoSuchSession,  ///< unknown or closing session id
};

class RuleService {
 public:
  explicit RuleService(ServiceConfig config);
  ~RuleService();

  RuleService(const RuleService&) = delete;
  RuleService& operator=(const RuleService&) = delete;

  /// Open a session over `program` (which must outlive it). Returns 0
  /// when the service is at max_sessions and nothing could be evicted.
  SessionId open_session(const Program& program);

  /// Close and destroy a session; blocks until in-flight work on it
  /// finishes. Pending queued requests are dropped.
  bool close_session(SessionId id);

  /// Enqueue one request. Never blocks: a full queue rejects.
  SubmitResult submit(SessionId id, Request request);

  /// Block until `id`'s queue is drained and no commit is in flight.
  /// In synchronous mode this performs the commits on this thread.
  /// Returns false for an unknown session.
  bool flush(SessionId id);

  /// flush() every open session.
  void flush_all();

  /// Run `fn` with exclusive access to the session (no queued commit is
  /// concurrent with it). For synchronous operations: query, snapshot,
  /// restore, counters. Returns false for an unknown session.
  bool with_session(SessionId id, const std::function<void(Session&)>& fn);

  /// Evict sessions idle for >= idle_eviction_age commit ticks (no
  /// pending requests, no in-flight commit). Returns how many closed.
  std::size_t evict_idle();

  /// Pending requests in `id`'s queue (0 for unknown sessions).
  std::size_t queue_depth(SessionId id) const;

  std::size_t session_count() const;

  /// Aggregate counters + latency percentiles from the reservoir.
  ServiceStats stats_snapshot() const;

  ThreadPool& pool() { return pool_; }
  const ServiceConfig& config() const { return config_; }

 private:
  struct Entry {
    SessionId id = 0;
    std::unique_ptr<Session> session;
    std::mutex session_mutex;      ///< serializes Session access
    std::deque<Request> queue;     ///< guarded by service mutex_
    bool scheduled = false;        ///< in ready_ (guarded by mutex_)
    unsigned busy = 0;             ///< commits/with_session in flight
    bool closing = false;
    std::uint64_t last_active_tick = 0;
  };

  void worker_loop();
  /// Drain one batch from `entry` and commit it. Called with mutex_
  /// held; releases and re-acquires it around the session work.
  void commit_batch(std::unique_lock<std::mutex>& lock, Entry& entry);
  /// Close `entry` under mutex_ (waits for busy == 0). `lock` held.
  void close_locked(std::unique_lock<std::mutex>& lock, Entry& entry,
                    bool evicting);
  /// Age-based eviction; with `force_one`, also sacrifice the
  /// least-recently-active idle session under capacity pressure.
  std::size_t evict_idle_locked(std::unique_lock<std::mutex>& lock,
                                bool force_one);
  void record_latency(std::uint64_t ns);
  static std::uint64_t now_ns();

  ServiceConfig config_;
  ThreadPool pool_;
  std::mutex pool_mutex_;  ///< one commit on the shared pool at a time

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< workers: ready_ non-empty
  std::condition_variable idle_cv_;   ///< flush/close: work drained
  std::unordered_map<SessionId, std::unique_ptr<Entry>> sessions_;
  std::deque<SessionId> ready_;       ///< sessions with pending requests
  SessionId next_id_ = 1;
  std::uint64_t tick_ = 0;            ///< global commit counter
  bool stopping_ = false;

  // Aggregate counters (guarded by mutex_). Latencies live in a bounded
  // ring so percentile math is O(reservoir), not O(request history).
  ServiceStats stats_;
  std::vector<std::uint64_t> latency_ring_;
  std::size_t latency_next_ = 0;

  std::vector<std::jthread> workers_;
};

}  // namespace parulel::service
