#include "service/protocol.hpp"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "lang/printer.hpp"
#include "support/error.hpp"

namespace parulel::service {

namespace {

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::istringstream in{std::string(line)};
  std::string tok;
  while (in >> tok) {
    if (tok.front() == '#') break;  // comment to end of line
    tokens.push_back(std::move(tok));
  }
  return tokens;
}

/// int64 → double → interned symbol, in that order. Full-token parses
/// only: "12x" is a symbol, not the integer 12.
Value parse_value(const std::string& tok, SymbolTable& symbols) {
  std::int64_t i = 0;
  auto [ip, iec] = std::from_chars(tok.data(), tok.data() + tok.size(), i);
  if (iec == std::errc() && ip == tok.data() + tok.size()) {
    return Value::integer(i);
  }
  double d = 0.0;
  auto [dp, dec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
  if (dec == std::errc() && dp == tok.data() + tok.size()) {
    return Value::real(d);
  }
  return Value::symbol(symbols.intern(tok));
}

std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

const char* submit_error(SubmitResult r) {
  return r == SubmitResult::QueueFull ? "queue-full" : "no-such-session";
}

}  // namespace

ServeProtocol::ServeProtocol(RuleService& service)
    : ServeProtocol(service, Options{}) {}

ServeProtocol::ServeProtocol(RuleService& service, Options options)
    : service_(service), options_(options) {}

ServeProtocol::~ServeProtocol() {
  for (auto& [name, client] : clients_) {
    service_.release_session(client.id);
  }
}

ServeProtocol::Client* ServeProtocol::find_client(const std::string& name) {
  auto it = clients_.find(name);
  return it == clients_.end() ? nullptr : &it->second;
}

void ServeProtocol::emit_error(std::string& out, const std::string& msg) {
  out += "err ";
  out += msg;
  out += '\n';
  ++errors_;
}

ServeProtocol::Status ServeProtocol::handle_line(std::string_view line,
                                                 std::string& out) {
  std::vector<std::string> tok = tokenize(line);
  if (tok.empty()) return Status::Ok;
  if (options_.echo) {
    out += "> ";
    out += line;
    out += '\n';
  }
  // Track errors emitted by this line so the return Status is accurate.
  const int errors_before = errors_;
  auto err = [&](const std::string& msg) { emit_error(out, msg); };

  // parulel/2 request-id prefix: `@N CMD ...`. Parsed up front so the
  // dedup window can answer a replay before anything executes.
  std::uint64_t req_id = 0;
  if (tok[0].front() == '@') {
    const std::string& t = tok[0];
    auto [p, ec] = std::from_chars(t.data() + 1, t.data() + t.size(), req_id);
    if (ec != std::errc() || p != t.data() + t.size() || req_id == 0) {
      err("bad request id: " + t);
      return Status::Error;
    }
    tok.erase(tok.begin());
    if (tok.empty()) {
      err("usage: @N CMD NAME ...");
      return Status::Error;
    }
  }
  const std::string& cmd = tok[0];
  std::ostringstream os;
  auto flush_ok = [&] { out += os.str(); };

  if (req_id != 0 && cmd != "assert" && cmd != "retract" && cmd != "run") {
    err("request id not allowed on: " + cmd);
    return Status::Error;
  }

  if (cmd == "quit") {
    out += "ok quit\n";
    return Status::Quit;
  }

  if (cmd == "hello") {
    // Versioned handshake. Bare `hello` answers with the current
    // revision; an exact match of a spoken revision is echoed BACK AS
    // REQUESTED (a parulel/1 script keeps its byte-identical responses);
    // anything else is a structured refusal naming what the server does
    // speak, so a future client can downgrade cleanly.
    if (tok.size() == 1) {
      out += "ok hello ";
      out += kProtocolVersion;
      out += '\n';
    } else if (tok.size() == 2 && (tok[1] == kProtocolVersion ||
                                   tok[1] == kProtocolVersionLegacy)) {
      out += "ok hello ";
      out += tok[1];
      out += '\n';
    } else if (tok.size() == 2) {
      err("unsupported protocol version: " + tok[1] + " (server speaks " +
          std::string(kProtocolVersion) + ", " +
          std::string(kProtocolVersionLegacy) + ")");
    } else {
      err("usage: hello [VERSION]");
    }
    return errors_ == errors_before ? Status::Ok : Status::Error;
  }

  if (cmd == "stats" && tok.size() == 1) {
    const ServiceStats s = service_.stats_snapshot();
    os << "ok service";
    for (const auto& f : obs::service_fields()) {
      os << ' ' << f.name << '=' << s.*f.member;
    }
    os << '\n';
    flush_ok();
    return Status::Ok;
  }

  if (cmd == "open") {
    if (tok.size() != 3) {
      err("usage: open NAME FILE");
      return Status::Error;
    }
    if (clients_.count(tok[1])) {
      err("session exists: " + tok[1]);
      return Status::Error;
    }
    std::ifstream file(tok[2]);
    if (!file) {
      err("cannot read: " + tok[2]);
      return Status::Error;
    }
    std::ostringstream text;
    text << file.rdbuf();
    Client client;
    std::unique_ptr<Program> program;
    try {
      program = std::make_unique<Program>(parse_program(text.str()));
    } catch (const ParseError& e) {
      err(std::string("parse: ") + e.what());
      return Status::Error;
    }
    if (service_.config().journal.enabled()) {
      // A journal-enabled server makes every opened session durable:
      // the service takes the program (recovery outlives us) and starts
      // the session's write-ahead journal.
      std::string why;
      client.id = service_.open_durable(tok[1], std::move(program),
                                        text.str(), &why);
      if (client.id == 0) {
        err(why);
        return Status::Error;
      }
      client.prog = service_.durable_program(client.id);
      client.durable = true;
    } else {
      client.program = std::move(program);
      client.prog = client.program.get();
      client.id = service_.open_session(*client.program);
      if (client.id == 0) {
        err("service full");
        return Status::Error;
      }
    }
    os << "ok open " << tok[1] << " id=" << client.id << '\n';
    clients_.emplace(tok[1], std::move(client));
    flush_ok();
    return Status::Ok;
  }

  if (cmd == "resume") {
    if (tok.size() != 2) {
      err("usage: resume NAME");
      return Status::Error;
    }
    if (clients_.count(tok[1])) {
      err("session exists: " + tok[1]);
      return Status::Error;
    }
    std::string why;
    Client client;
    client.id = service_.resume_durable(tok[1], &why);
    if (client.id == 0) {
      err(why);
      return Status::Error;
    }
    client.prog = service_.durable_program(client.id);
    client.durable = true;
    DurableStatus st;
    service_.durable_status(client.id, &st);
    // `acked` is the highest request id this session ever acknowledged:
    // a resuming client MUST restart its id sequence above it, or fresh
    // commands would collide with the dedup window and replay stale
    // cached responses instead of executing.
    service_.with_session(client.id, [&](Session& s) {
      os << "ok resume " << tok[1] << " id=" << client.id
         << " facts=" << s.wm().alive_count()
         << " committed=" << st.last_committed
         << " acked=" << st.last_req
         << " fingerprint=" << hex64(s.fingerprint()) << '\n';
    });
    clients_.emplace(tok[1], std::move(client));
    flush_ok();
    return Status::Ok;
  }

  // Everything below addresses an existing session.
  if (cmd != "assert" && cmd != "retract" && cmd != "run" &&
      cmd != "query" && cmd != "snapshot" && cmd != "restore" &&
      cmd != "stats" && cmd != "close") {
    err("unknown command: " + cmd);
    return Status::Error;
  }
  if (tok.size() < 2) {
    err("usage: " + cmd + " NAME ...");
    return Status::Error;
  }
  Client* client = find_client(tok[1]);
  if (!client) {
    err("no session: " + tok[1]);
    return Status::Error;
  }

  if (req_id != 0) {
    // Exactly-once gate: a replayed id answers from the dedup window
    // with the ORIGINAL response bytes, before anything executes.
    std::string cached;
    switch (service_.dedup_check(client->id, req_id, &cached)) {
      case DedupOutcome::NotDurable:
        err("request ids require a durable session: " + tok[1]);
        return Status::Error;
      case DedupOutcome::Replay:
        out += cached;
        return Status::Ok;
      case DedupOutcome::Stale:
        err("stale request id: @" + std::to_string(req_id));
        return Status::Error;
      case DedupOutcome::Fresh:
        break;
    }
  }

  if (cmd == "assert") {
    if (tok.size() < 3) {
      err("usage: assert NAME TMPL V...");
      return Status::Error;
    }
    SymbolTable& symbols = *client->prog->symbols;
    const auto tmpl = client->prog->schema.find(symbols.intern(tok[2]));
    if (!tmpl) {
      err("no template: " + tok[2]);
      return Status::Error;
    }
    const auto& def = client->prog->schema.at(*tmpl);
    if (tok.size() - 3 != static_cast<std::size_t>(def.arity())) {
      err("arity: " + tok[2] + " takes " + std::to_string(def.arity()) +
          " values");
      return Status::Error;
    }
    std::vector<Value> slots;
    slots.reserve(tok.size() - 3);
    for (std::size_t i = 3; i < tok.size(); ++i) {
      slots.push_back(parse_value(tok[i], symbols));
    }
    const SubmitResult r = service_.submit(
        client->id, Request::make_assert(*tmpl, std::move(slots)));
    if (r != SubmitResult::Accepted) {
      err(submit_error(r));
      return Status::Error;
    }
    os << "ok assert depth=" << service_.queue_depth(client->id) << '\n';
    if (req_id != 0) service_.dedup_record(client->id, req_id, os.str());
  } else if (cmd == "retract") {
    if (tok.size() != 3) {
      err("usage: retract NAME FACTID");
      return Status::Error;
    }
    std::uint64_t id = 0;
    auto [p, ec] =
        std::from_chars(tok[2].data(), tok[2].data() + tok[2].size(), id);
    if (ec != std::errc() || p != tok[2].data() + tok[2].size()) {
      err("bad fact id: " + tok[2]);
      return Status::Error;
    }
    const SubmitResult r =
        service_.submit(client->id, Request::make_retract(FactId{id}));
    if (r != SubmitResult::Accepted) {
      err(submit_error(r));
      return Status::Error;
    }
    os << "ok retract depth=" << service_.queue_depth(client->id) << '\n';
    if (req_id != 0) service_.dedup_record(client->id, req_id, os.str());
  } else if (cmd == "run") {
    service_.submit(client->id, Request::make_run());
    service_.flush(client->id);
    std::uint64_t committed = 0;
    if (client->durable) {
      // The response is built BEFORE the journal write because its
      // exact bytes ride the batch record as the run's cached ack.
      DurableStatus st;
      service_.durable_status(client->id, &st);
      committed = std::max(st.last_req, req_id);
    }
    service_.with_session(client->id, [&](Session& s) {
      const RunStats& run = s.last_run();
      os << "ok run cycles=" << run.cycles
         << " firings=" << run.total_firings
         << " facts=" << s.wm().alive_count()
         << " termination=" << termination_name(run.termination)
         << " fingerprint=" << hex64(s.fingerprint());
      if (client->durable) os << " committed=" << committed;
      os << '\n';
    });
    if (client->durable) {
      // Exactly-once ordering: the batch record must be durable before
      // the `ok` leaves the process. On journal failure the response is
      // DISCARDED — the state applied in memory but is not durable, so
      // the client must see a retryable error, never an ack.
      std::string why;
      if (!service_.durable_commit(client->id, req_id, os.str(), &why)) {
        if (why.rfind("journal-io: ", 0) == 0) {
          // I/O failure (ENOSPC, dying disk): NOT retryable — the
          // service quarantined the session; the name answers err
          // until an operator intervenes.
          err(why);
        } else {
          err("journal: " + why);
        }
        return Status::Error;
      }
    }
  } else if (cmd == "query") {
    if (tok.size() < 3) {
      err("usage: query NAME TMPL [SLOT=V]...");
      return Status::Error;
    }
    bool bad = false;
    service_.with_session(client->id, [&](Session& s) {
      const auto tmpl = s.find_template(tok[2]);
      if (!tmpl) {
        err("no template: " + tok[2]);
        bad = true;
        return;
      }
      SymbolTable& symbols = *client->prog->symbols;
      std::vector<Session::SlotFilter> filters;
      for (std::size_t i = 3; i < tok.size(); ++i) {
        const auto eq = tok[i].find('=');
        if (eq == std::string::npos) {
          err("bad filter (want SLOT=V): " + tok[i]);
          bad = true;
          return;
        }
        const auto slot = s.find_slot(*tmpl, tok[i].substr(0, eq));
        if (!slot) {
          err("no slot: " + tok[i].substr(0, eq));
          bad = true;
          return;
        }
        filters.push_back(
            {*slot, parse_value(tok[i].substr(eq + 1), symbols)});
      }
      const std::vector<FactId> hits = s.query(*tmpl, filters);
      os << "ok query n=" << hits.size() << '\n';
      for (FactId id : hits) {
        os << "fact " << id << ' '
           << print_fact(s.wm().view(id), s.program().schema, symbols)
           << '\n';
      }
    });
    if (bad) return Status::Error;
  } else if (cmd == "snapshot") {
    service_.with_session(client->id, [&](Session& s) {
      client->snapshot = s.snapshot();
      os << "ok snapshot facts=" << client->snapshot->facts.size() << '\n';
    });
  } else if (cmd == "restore") {
    if (client->durable) {
      // SiteCheckpoint restore renumbers FactIds — it would diverge the
      // live state from what journal replay reproduces after a crash.
      err("restore is not supported on durable sessions: " + tok[1]);
      return Status::Error;
    }
    if (!client->snapshot) {
      err("no snapshot for: " + tok[1]);
      return Status::Error;
    }
    service_.with_session(client->id, [&](Session& s) {
      s.restore(*client->snapshot);
      os << "ok restore facts=" << client->snapshot->facts.size()
         << " rebuilds=" << s.counters().rebuilds << '\n';
    });
  } else if (cmd == "stats") {
    service_.with_session(client->id, [&](Session& s) {
      const SessionCounters& c = s.counters();
      os << "ok session asserts=" << c.asserts
         << " retracts=" << c.retracts << " queries=" << c.queries
         << " quota_rejected=" << c.quota_rejected
         << " batches=" << c.batches << " cycles=" << c.cycles
         << " firings=" << c.firings << " rebuilds=" << c.rebuilds
         << " external_deltas=" << s.match_stats().external_deltas << '\n';
    });
  } else {  // close
    service_.close_session(client->id);
    clients_.erase(tok[1]);
    os << "ok close " << tok[1] << '\n';
  }
  flush_ok();
  return errors_ == errors_before ? Status::Ok : Status::Error;
}

}  // namespace parulel::service
