// ServeProtocol: the rule-service line protocol, transport-agnostic.
//
// One instance is one protocol conversation: feed request lines in with
// handle_line(), get response text appended to a caller-owned buffer.
// The stdin `--serve` loop (serve.hpp) and every TCP connection of the
// network server (net/net_server.hpp) wrap the same implementation, so
// for identical request streams they produce byte-identical responses —
// tests/test_net.cpp sweeps exactly that equivalence.
//
// The conversation state a ServeProtocol owns is its *session
// namespace*: the NAME → session bindings created by `open`. The
// RuleService behind it is shared — the stdin server fronts a private
// one, the TCP server fronts one service across all connections — and
// destroying a protocol closes the sessions it opened, so a dropped
// connection can never leak sessions or corrupt another conversation.
//
// Versioning: the optional `hello` handshake names the protocol
// revision (kProtocolVersion, currently "parulel/2"; the server still
// speaks kProtocolVersionLegacy and echoes whichever the client asked
// for). Clients that skip it — every pre-handshake script — get the
// same responses as before, byte for byte; clients that send it learn
// the server's revision and get a structured error instead of garbage
// when they ask for one the server does not speak.
//
// parulel/2 adds exactly-once semantics over durable sessions: when the
// backing service runs with a journal directory, `open` creates a
// journaled session, `resume NAME` reattaches one (across reconnects
// and server restarts), and a mutating command may carry an `@N`
// request-id prefix — a replayed id is answered from the dedup window
// with the original response bytes instead of re-executing (see
// PROTOCOL.md for the full wire specification).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "service/service.hpp"

namespace parulel::service {

class ServeProtocol {
 public:
  /// Wire-protocol revision implemented by this server.
  static constexpr std::string_view kProtocolVersion = "parulel/2";

  /// Older revision still accepted by the `hello` handshake.
  static constexpr std::string_view kProtocolVersionLegacy = "parulel/1";

  struct Options {
    /// Echo each command line (prefixed "> ") before its response.
    bool echo = false;
  };

  enum class Status : std::uint8_t {
    Ok,     ///< command handled (including no-op blank/comment lines)
    Error,  ///< an `err` response was emitted
    Quit,   ///< the client asked to stop; `ok quit` has been emitted
  };

  /// `service` must outlive the protocol and, for deterministic
  /// responses, should run in synchronous mode (workers == 0).
  explicit ServeProtocol(RuleService& service);
  ServeProtocol(RuleService& service, Options options);

  /// Releases every session this conversation opened: plain sessions
  /// close, durable sessions detach and stay resumable.
  ~ServeProtocol();

  ServeProtocol(const ServeProtocol&) = delete;
  ServeProtocol& operator=(const ServeProtocol&) = delete;

  /// Handle one request line, appending response lines (each
  /// newline-terminated) to `out`. Blank and comment-only lines produce
  /// no response. Never throws on malformed input — every protocol
  /// violation is an `err ...` response.
  Status handle_line(std::string_view line, std::string& out);

  /// Number of `err` responses emitted so far.
  int errors() const { return errors_; }

  /// Open sessions in this conversation's namespace.
  std::size_t session_count() const { return clients_.size(); }

 private:
  /// One named client session: the service holds the Session. For a
  /// plain session we own the Program it runs (sessions reference their
  /// program by address); for a durable session the SERVICE owns it —
  /// recovery must outlive any one conversation — and `prog` is a view
  /// either way.
  struct Client {
    std::unique_ptr<Program> program;  ///< null for durable sessions
    const Program* prog = nullptr;     ///< always valid
    SessionId id = 0;
    bool durable = false;
    std::optional<SiteCheckpoint> snapshot;
  };

  Client* find_client(const std::string& name);
  void emit_error(std::string& out, const std::string& msg);

  RuleService& service_;
  Options options_;
  std::unordered_map<std::string, Client> clients_;
  int errors_ = 0;
};

}  // namespace parulel::service
