#include "service/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace parulel::service {

namespace {

constexpr char kMagic[4] = {'P', 'J', 'N', 'L'};

std::string errno_text() { return std::strerror(errno); }

// ByteWriter/ByteReader and the value codec moved to journal.hpp so the
// cluster site WAL and wire codecs (src/distrib/) share one byte layout.

void encode_op(ByteWriter& w, const JournalOp& op, const SymbolTable& symbols) {
  w.u8(static_cast<std::uint8_t>(op.kind));
  if (op.kind == JournalOp::Kind::Assert) {
    w.u32(op.tmpl);
    w.u32(static_cast<std::uint32_t>(op.slots.size()));
    for (const Value& v : op.slots) encode_value(w, v, symbols);
  } else {
    w.u64(op.fact);
  }
}

JournalOp decode_op(ByteReader& r, SymbolTable& symbols) {
  JournalOp op;
  const std::uint8_t kind = r.u8();
  if (kind == static_cast<std::uint8_t>(JournalOp::Kind::Assert)) {
    op.kind = JournalOp::Kind::Assert;
    op.tmpl = r.u32();
    const std::uint32_t n = r.u32();
    op.slots.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      op.slots.push_back(decode_value(r, symbols));
    }
  } else if (kind == static_cast<std::uint8_t>(JournalOp::Kind::Retract)) {
    op.kind = JournalOp::Kind::Retract;
    op.fact = r.u64();
  } else {
    throw JournalError("journal record has unknown op kind");
  }
  return op;
}

void encode_acks(ByteWriter& w, const std::vector<JournalAck>& acks) {
  w.u32(static_cast<std::uint32_t>(acks.size()));
  for (const JournalAck& a : acks) {
    w.u64(a.req);
    w.str(a.response);
  }
}

std::vector<JournalAck> decode_acks(ByteReader& r) {
  std::vector<JournalAck> acks(r.u32());
  for (JournalAck& a : acks) {
    a.req = r.u64();
    a.response = r.str();
  }
  return acks;
}

int open_or_throw(const std::string& path, int flags, const char* action) {
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    throw JournalError(std::string("cannot ") + action + " journal '" + path +
                       "': " + errno_text());
  }
  return fd;
}

/// Make a freshly created/renamed directory entry itself durable.
void sync_parent_dir(const std::string& path) {
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  const int fd = ::open(dir.empty() ? "." : dir.c_str(),
                        O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;  // best effort: not all filesystems allow this
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

void encode_value(ByteWriter& w, const Value& v, const SymbolTable& symbols) {
  if (v.is_int()) {
    w.u8(0);
    w.i64(v.as_int());
  } else if (v.is_float()) {
    w.u8(1);
    w.f64(v.as_float());
  } else {
    // Symbols travel as text: symbol ids depend on interning order,
    // which a recovering (or remote) process does not share.
    w.u8(2);
    w.str(symbols.name(v.as_sym()));
  }
}

Value decode_value(ByteReader& r, SymbolTable& symbols) {
  switch (r.u8()) {
    case 0: return Value::integer(r.i64());
    case 1: return Value::real(r.f64());
    case 2: return Value::symbol(symbols.intern(r.str()));
    default: throw JournalError("journal record has unknown value kind");
  }
}

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::string encode_header(const std::string& name,
                          const std::string& program_text,
                          std::uint32_t version) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RecordType::Header));
  for (char c : kMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u32(version);
  w.str(name);
  w.str(program_text);
  return w.take();
}

std::string encode_batch(const BatchRecord& record,
                         const SymbolTable& symbols) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RecordType::Batch));
  w.u64(record.seq);
  w.u32(static_cast<std::uint32_t>(record.segments.size()));
  for (const BatchSegment& seg : record.segments) {
    w.u32(static_cast<std::uint32_t>(seg.ops.size()));
    for (const JournalOp& op : seg.ops) encode_op(w, op, symbols);
    w.u64(seg.fingerprint);
    w.u64(seg.high_water);
  }
  encode_acks(w, record.acks);
  return w.take();
}

std::string encode_snapshot(const SnapshotRecord& record,
                            const SymbolTable& symbols) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RecordType::Snapshot));
  w.u64(record.seq);
  w.u64(record.last_req);
  encode_acks(w, record.dedup);
  w.u64(record.fingerprint);
  w.u64(record.state.high_water);
  w.u8(record.state.halted ? 1 : 0);
  const SessionCounters& c = record.state.counters;
  w.u64(c.asserts);
  w.u64(c.retracts);
  w.u64(c.modifies);
  w.u64(c.queries);
  w.u64(c.quota_rejected);
  w.u64(c.batches);
  w.u64(c.cycles);
  w.u64(c.firings);
  w.u64(c.rebuilds);
  w.u32(static_cast<std::uint32_t>(record.state.facts.size()));
  for (const Fact& f : record.state.facts) {
    w.u64(f.id);
    w.u32(f.tmpl);
    w.u32(static_cast<std::uint32_t>(f.slots.size()));
    for (const Value& v : f.slots) encode_value(w, v, symbols);
  }
  return w.take();
}

RecordType record_type(std::string_view payload) {
  if (payload.empty()) throw JournalError("empty journal record");
  const auto t = static_cast<std::uint8_t>(payload[0]);
  switch (t) {
    case static_cast<std::uint8_t>(RecordType::Header):
    case static_cast<std::uint8_t>(RecordType::Snapshot):
    case static_cast<std::uint8_t>(RecordType::Batch):
    case static_cast<std::uint8_t>(RecordType::SiteBatch):
    case static_cast<std::uint8_t>(RecordType::SiteSnapshot):
      return static_cast<RecordType>(t);
    default:
      throw JournalError("unknown journal record type " + std::to_string(t));
  }
}

const char* record_kind_name(std::uint8_t type) {
  switch (type) {
    case static_cast<std::uint8_t>(RecordType::Header): return "header";
    case static_cast<std::uint8_t>(RecordType::Snapshot): return "snapshot";
    case static_cast<std::uint8_t>(RecordType::Batch): return "batch";
    case static_cast<std::uint8_t>(RecordType::SiteBatch): return "site-batch";
    case static_cast<std::uint8_t>(RecordType::SiteSnapshot):
      return "site-snapshot";
    default: return "unknown";
  }
}

std::string frame_record(std::string_view payload) {
  std::string frame;
  frame.reserve(8 + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  frame.append(reinterpret_cast<const char*>(&len), 4);
  frame.append(reinterpret_cast<const char*>(&crc), 4);
  frame.append(payload);
  return frame;
}

JournalHeader decode_header(std::string_view payload) {
  ByteReader r(payload);
  if (r.u8() != static_cast<std::uint8_t>(RecordType::Header)) {
    throw JournalError("journal does not start with a header record");
  }
  for (char c : kMagic) {
    if (r.u8() != static_cast<std::uint8_t>(c)) {
      throw JournalError("bad journal magic (not a parulel journal)");
    }
  }
  JournalHeader h;
  h.version = r.u32();
  if (h.version > kJournalFormatVersion) {
    // Fail closed before touching the rest of the layout: a newer
    // format may have changed it.
    throw JournalError("journal format version " + std::to_string(h.version) +
                       " is newer than supported version " +
                       std::to_string(kJournalFormatVersion));
  }
  h.name = r.str();
  h.program_text = r.str();
  r.finish();
  return h;
}

BatchRecord decode_batch(std::string_view payload, SymbolTable& symbols) {
  ByteReader r(payload);
  if (r.u8() != static_cast<std::uint8_t>(RecordType::Batch)) {
    throw JournalError("not a batch record");
  }
  BatchRecord rec;
  rec.seq = r.u64();
  rec.segments.resize(r.u32());
  for (BatchSegment& seg : rec.segments) {
    seg.ops.resize(r.u32());
    for (JournalOp& op : seg.ops) op = decode_op(r, symbols);
    seg.fingerprint = r.u64();
    seg.high_water = r.u64();
  }
  rec.acks = decode_acks(r);
  r.finish();
  return rec;
}

SnapshotRecord decode_snapshot(std::string_view payload, SymbolTable& symbols) {
  ByteReader r(payload);
  if (r.u8() != static_cast<std::uint8_t>(RecordType::Snapshot)) {
    throw JournalError("not a snapshot record");
  }
  SnapshotRecord rec;
  rec.seq = r.u64();
  rec.last_req = r.u64();
  rec.dedup = decode_acks(r);
  rec.fingerprint = r.u64();
  rec.state.high_water = r.u64();
  rec.state.halted = r.u8() != 0;
  SessionCounters& c = rec.state.counters;
  c.asserts = r.u64();
  c.retracts = r.u64();
  c.modifies = r.u64();
  c.queries = r.u64();
  c.quota_rejected = r.u64();
  c.batches = r.u64();
  c.cycles = r.u64();
  c.firings = r.u64();
  c.rebuilds = r.u64();
  rec.state.facts.resize(r.u32());
  for (Fact& f : rec.state.facts) {
    f.id = r.u64();
    f.tmpl = r.u32();
    f.slots.resize(r.u32());
    for (Value& v : f.slots) v = decode_value(r, symbols);
  }
  r.finish();
  return rec;
}

JournalScan scan_journal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw JournalError("cannot open journal '" + path + "'");
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());

  std::vector<std::string> payloads;
  std::size_t off = 0;
  std::uint64_t torn = 0;
  std::string torn_kind;
  std::uint64_t torn_offset = 0;
  // The torn frame's record kind ("frame" when the tail is too short to
  // carry its type byte) — recovery reports name WHAT was dropped.
  const auto kind_at = [&](std::size_t frame_off) -> std::string {
    if (data.size() - frame_off < 9) return "frame";
    return record_kind_name(static_cast<std::uint8_t>(data[frame_off + 8]));
  };
  while (off + 8 <= data.size()) {
    std::uint32_t len;
    std::uint32_t want;
    std::memcpy(&len, data.data() + off, 4);
    std::memcpy(&want, data.data() + off + 4, 4);
    // A damaged record reaching EOF is normally a torn tail — a write
    // the crash interrupted — but only Batch/SiteBatch records are ever
    // appended to a live journal. Header and (Site)Snapshot records are
    // written solely through the atomic tmp+rename rewrite, so a torn
    // one cannot be a crash-interrupted append: it is corruption, and
    // tolerating it would silently drop the session's base state.
    const auto torn_is_atomic_record = [&](std::size_t frame_off) {
      if (data.size() - frame_off < 9) return false;  // type byte missing
      const auto t = static_cast<std::uint8_t>(data[frame_off + 8]);
      return t == static_cast<std::uint8_t>(RecordType::Header) ||
             t == static_cast<std::uint8_t>(RecordType::Snapshot) ||
             t == static_cast<std::uint8_t>(RecordType::SiteSnapshot);
    };
    if (data.size() - off - 8 < len) {
      // Frame runs past EOF: the crash interrupted this write.
      if (torn_is_atomic_record(off)) {
        throw JournalError("torn " + kind_at(off) + " record at offset " +
                           std::to_string(off) + " in '" + path +
                           "' (these records are written atomically; "
                           "this is corruption)");
      }
      torn = data.size() - off;
      torn_kind = kind_at(off);
      torn_offset = off;
      break;
    }
    const std::string_view payload(data.data() + off + 8, len);
    if (crc32(payload.data(), payload.size()) != want) {
      if (off + 8 + len == data.size() && !torn_is_atomic_record(off)) {
        // Bad CRC on the final record: torn tail, not corruption.
        torn = data.size() - off;
        torn_kind = kind_at(off);
        torn_offset = off;
        break;
      }
      throw JournalError("journal CRC mismatch mid-file at offset " +
                         std::to_string(off) + " in '" + path + "'");
    }
    payloads.emplace_back(payload);
    off += 8 + len;
  }
  if (torn == 0 && off < data.size()) {
    torn = data.size() - off;
    torn_kind = "frame";
    torn_offset = off;
  }

  if (payloads.empty()) {
    throw JournalError("journal '" + path + "' has no intact header record");
  }
  JournalScan scan;
  scan.header = decode_header(payloads.front());
  scan.payloads.assign(std::make_move_iterator(payloads.begin() + 1),
                       std::make_move_iterator(payloads.end()));
  scan.torn_bytes = torn;
  scan.torn_kind = std::move(torn_kind);
  scan.torn_offset = torn_offset;
  return scan;
}

SessionJournal::SessionJournal(int fd, std::string path, bool fsync_writes,
                               JournalStats* stats)
    : fd_(fd), path_(std::move(path)), fsync_(fsync_writes), stats_(stats) {
  // Callers that don't care about counters may pass nullptr; the write
  // path must never have to branch on it.
  static JournalStats discard;
  if (!stats_) stats_ = &discard;
}

SessionJournal::~SessionJournal() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<SessionJournal> SessionJournal::create(
    std::string path, const std::string& name, const std::string& program_text,
    bool fsync_writes, JournalStats* stats, std::function<int()> fail_writes) {
  const int fd = ::open(path.c_str(),
                        O_CREAT | O_EXCL | O_WRONLY | O_APPEND | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    if (errno == EEXIST) {
      throw JournalError("journal '" + path +
                         "' already exists but was not recovered; refusing "
                         "to overwrite durable state");
    }
    throw JournalError(JournalError::Kind::Io, "cannot create journal '" +
                                                   path + "': " + errno_text());
  }
  std::unique_ptr<SessionJournal> j(
      new SessionJournal(fd, std::move(path), fsync_writes, stats));
  j->fail_writes_ = std::move(fail_writes);
  j->write_record(j->fd_, encode_header(name, program_text));
  j->sync(j->fd_);
  sync_parent_dir(j->path_);
  return j;
}

std::unique_ptr<SessionJournal> SessionJournal::open_append(
    std::string path, bool fsync_writes, JournalStats* stats,
    std::function<int()> fail_writes) {
  const int fd =
      open_or_throw(path, O_WRONLY | O_APPEND | O_CLOEXEC, "reopen");
  std::unique_ptr<SessionJournal> j(
      new SessionJournal(fd, std::move(path), fsync_writes, stats));
  j->fail_writes_ = std::move(fail_writes);
  return j;
}

void SessionJournal::append(std::string_view payload) {
  write_record(fd_, payload);
  if (fsync_) sync(fd_);
}

void SessionJournal::rewrite_with_snapshot(const std::string& name,
                                           const std::string& program_text,
                                           std::string_view snapshot_payload) {
  const std::string tmp = path_ + ".tmp";
  const int fd = ::open(tmp.c_str(),
                        O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw JournalError("cannot create '" + tmp + "': " + errno_text());
  }
  try {
    write_record(fd, encode_header(name, program_text));
    write_record(fd, snapshot_payload);
    // Always fsync before the rename, whatever the append policy: a
    // rename that lands before its data would replace a good journal
    // with garbage on an OS crash.
    sync(fd);
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    const std::string reason = errno_text();
    ::unlink(tmp.c_str());
    throw JournalError("cannot rename '" + tmp + "' over journal: " + reason);
  }
  sync_parent_dir(path_);
  ::close(fd_);
  fd_ = open_or_throw(path_, O_WRONLY | O_APPEND | O_CLOEXEC, "reopen");
  ++stats_->snapshots;
}

void SessionJournal::write_record(int fd, std::string_view payload) {
  if (fail_writes_) {
    if (const int e = fail_writes_()) {
      errno = e;
      throw JournalError(JournalError::Kind::Io,
                         "journal write failed: " + errno_text());
    }
  }
  const std::string frame = frame_record(payload);
  const char* p = frame.data();
  std::size_t left = frame.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw JournalError(JournalError::Kind::Io,
                         "journal write failed: " + errno_text());
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  ++stats_->records_written;
  stats_->bytes_written += frame.size();
}

void SessionJournal::sync(int fd) {
  if (::fsync(fd) != 0) {
    throw JournalError(JournalError::Kind::Io,
                       "journal fsync failed: " + errno_text());
  }
  ++stats_->fsyncs;
}

}  // namespace parulel::service
