// Per-session write-ahead journal: the durability substrate for the
// rule service (service.hpp) and the parulel/2 exactly-once protocol.
//
// File format — an append-only stream of CRC-framed records:
//
//   record  := [u32 payload_len][u32 crc32(payload)][payload]
//   payload := [u8 type][body]            (little-endian throughout)
//
// The first record is always a Header (magic "PJNL", format version,
// session name, program source text). A Snapshot record, when present,
// immediately follows the header — journal truncation rewrites the file
// as header+snapshot via write-tmp/fsync/rename, so a journal is either
// the old complete file or the new complete file, never a mix. Every
// other record is a Batch: the assert/retract ops of one committed
// protocol batch, split into segments (one per recognize-act commit, so
// replay reproduces the exact run_to_quiescence boundaries and with
// them the exact FactId assignment), plus the acknowledgements of the
// parulel/2 request ids the batch made durable. The batch record is
// written — and fsynced, under the default policy — BEFORE its `ok`
// leaves the process; that ordering is the exactly-once invariant (see
// ARCHITECTURE.md, durability).
//
// Replay tolerance: a record that fails its CRC (or runs past EOF) and
// extends to the end of the file is a *torn tail* — the rest of a write
// the crash interrupted — and is dropped; by the invariant above its
// batch was never acknowledged, so dropping it is correct. A CRC
// failure with valid data after it is real corruption, and so is an
// unknown record type, a bad magic, or a format version newer than this
// build: all of those throw JournalError and the service quarantines
// the journal (fail closed) rather than guess at half a state.
//
// Symbols are encoded as text and re-interned on decode: symbol ids are
// interning-order-dependent and a recovering process interns in a
// different order than the crashed one did.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "obs/stats.hpp"
#include "service/session.hpp"

namespace parulel::service {

/// Structured journal failure. The kind decides the service's reaction:
/// Corrupt (CRC mismatch, bad magic, version skew — the file lies) is
/// quarantined at recovery and retryable on the write path, while Io
/// (write/fsync failure: ENOSPC, a dying disk) means the journal can no
/// longer keep its ordering promise at all, so the session is
/// quarantined immediately and answers `err journal-io` until an
/// operator intervenes.
class JournalError : public std::runtime_error {
 public:
  enum class Kind { Corrupt, Io };

  explicit JournalError(const std::string& what)
      : std::runtime_error(what), kind_(Kind::Corrupt) {}
  JournalError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  Kind kind() const { return kind_; }
  bool is_io() const { return kind_ == Kind::Io; }

 private:
  Kind kind_;
};

/// Durability knobs, carried inside ServiceConfig. Journaling is off
/// (and the service's fast path untouched) until `dir` is set.
struct JournalConfig {
  /// Directory for per-session journals (<name>.wal). Empty = disabled.
  std::string dir;

  /// Rewrite the journal as one snapshot after this many batch records
  /// (bounds both file growth and recovery time). 0 = never truncate;
  /// recovery then replays from batch 0, which is exact for every
  /// program (see Session::restore_exact on snapshot compatibility).
  std::uint64_t snapshot_every = 32;

  /// fsync(2) after every record (and snapshot rewrite). Turning this
  /// off trades the power-loss guarantee for throughput — a kill -9
  /// still loses nothing, an OS crash may; bench_s3_durability measures
  /// the gap.
  bool fsync = true;

  /// Per-session dedup window: the most recent N acknowledged request
  /// ids whose cached responses a replayed request can still be
  /// answered from. Older ids answer `err stale request id`.
  std::size_t dedup_window = 256;

  /// Test hook: called before every record write; a nonzero return is
  /// treated as that errno failing the write (ENOSPC drills without a
  /// full disk). Never set in production.
  std::function<int()> fail_writes;

  bool enabled() const { return !dir.empty(); }
};

/// Newest journal format this build reads and writes. Files carrying a
/// larger version fail closed.
inline constexpr std::uint32_t kJournalFormatVersion = 1;

enum class RecordType : std::uint8_t {
  Header = 1,
  Snapshot = 2,
  Batch = 3,
  /// Cluster site WAL records (src/distrib/site_journal.hpp): one
  /// distributed site's applied peer messages + local ops per cycle,
  /// and its checkpoint. They share this framing, CRC, torn-tail and
  /// truncation machinery; their payload codecs live with the cluster
  /// runtime. SiteSnapshot, like Snapshot, is written only through the
  /// atomic rewrite, so a torn one is corruption, not a tail.
  SiteBatch = 4,
  SiteSnapshot = 5,
};

/// Stable human-readable name of a record type byte ("header",
/// "snapshot", "batch", "site-batch", "site-snapshot"); "unknown" for
/// anything else. Used by recovery reports to say WHICH record a crash
/// tore, not just how many bytes were dropped.
const char* record_kind_name(std::uint8_t type);

/// One externally-injected working-memory op, as the client sent it.
/// Replay re-applies it through the same Session entry points, so
/// set-semantics absorption and fact-quota rejection re-decide
/// identically.
struct JournalOp {
  enum class Kind : std::uint8_t { Assert = 0, Retract = 1 };
  Kind kind = Kind::Assert;
  TemplateId tmpl = 0;        ///< Assert only
  std::vector<Value> slots;   ///< Assert only
  FactId fact = kInvalidFact;  ///< Retract only
};

/// The ops of ONE RuleService commit (one run_to_quiescence), plus the
/// post-commit state digest replay is verified against. A protocol
/// batch larger than the service's batch_max splits into several
/// commits; preserving that split is what keeps replayed FactId
/// assignment identical.
struct BatchSegment {
  std::vector<JournalOp> ops;
  std::uint64_t fingerprint = 0;  ///< wm content_fingerprint() after commit
  FactId high_water = 0;          ///< wm high_water() after commit
};

/// A request id the batch made durable, with the exact response bytes
/// the client was (about to be) sent — replayed ids answer from here.
struct JournalAck {
  std::uint64_t req = 0;
  std::string response;
};

/// One committed protocol batch: everything between two `run`s that
/// reached the journal, atomically.
struct BatchRecord {
  std::uint64_t seq = 0;  ///< strictly increasing, 1-based, gap-checked
  std::vector<BatchSegment> segments;
  std::vector<JournalAck> acks;
};

/// The state a truncation rewrite preserves: the exact session snapshot
/// plus the dedup window, so resumed clients replay correctly against a
/// truncated journal too.
struct SnapshotRecord {
  std::uint64_t seq = 0;       ///< seq of the last batch folded in
  std::uint64_t last_req = 0;  ///< highest acknowledged request id
  std::vector<JournalAck> dedup;  ///< surviving dedup window, oldest first
  std::uint64_t fingerprint = 0;  ///< verified after restore_exact
  ExactSnapshot state;
};

/// Decoded Header record.
struct JournalHeader {
  std::uint32_t version = kJournalFormatVersion;
  std::string name;
  std::string program_text;
};

// -- encode/decode (exposed for tests and the recovery path) --

/// CRC-32 (reflected, poly 0xEDB88320 — the zlib polynomial).
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

// -- little-endian primitive codec --
//
// Shared by the journal record codecs here and the cluster site WAL /
// wire codecs (src/distrib/): one byte layout for every durable or
// shipped payload. Little-endian is assumed (as elsewhere in the tree).

class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.append(s);
  }
  std::string take() { return std::move(out_); }

 private:
  void raw(const void* p, std::size_t n) {
    out_.append(static_cast<const char*>(p), n);
  }
  std::string out_;
};

/// Throws JournalError on truncated or trailing bytes.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t u32() {
    std::uint32_t v;
    raw(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    raw(&v, sizeof v);
    return v;
  }
  std::int64_t i64() {
    std::int64_t v;
    raw(&v, sizeof v);
    return v;
  }
  double f64() {
    double v;
    raw(&v, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  void finish() const {
    if (pos_ != data_.size()) {
      throw JournalError("journal record has trailing bytes");
    }
  }

 private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n) {
      throw JournalError("journal record body truncated");
    }
  }
  void raw(void* p, std::size_t n) {
    need(n);
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
  }
  std::string_view data_;
  std::size_t pos_ = 0;
};

/// Value codec: symbols travel as TEXT and are re-interned on decode
/// (symbol ids are interning-order-dependent; a recovering or remote
/// process interns in a different order than the writer did). This is
/// what makes the encoding canonical across processes: the same fact
/// content always produces the same bytes.
void encode_value(ByteWriter& w, const Value& v, const SymbolTable& symbols);
Value decode_value(ByteReader& r, SymbolTable& symbols);

/// `version` is overridable so tests can forge future-format files.
std::string encode_header(const std::string& name,
                          const std::string& program_text,
                          std::uint32_t version = kJournalFormatVersion);
std::string encode_batch(const BatchRecord& record, const SymbolTable& symbols);
std::string encode_snapshot(const SnapshotRecord& record,
                            const SymbolTable& symbols);

/// First payload byte, validated. Throws JournalError on empty or
/// unknown-type payloads.
RecordType record_type(std::string_view payload);

/// The on-disk framing of one record: [u32 len][u32 crc32][payload].
/// Exposed so a replication sink can append shipped record payloads to
/// its copy of a journal byte-identically to the primary's writes.
std::string frame_record(std::string_view payload);

JournalHeader decode_header(std::string_view payload);
BatchRecord decode_batch(std::string_view payload, SymbolTable& symbols);
SnapshotRecord decode_snapshot(std::string_view payload, SymbolTable& symbols);

/// Everything read_journal salvages from a file: the decoded header and
/// the raw payloads of every CRC-valid record after it. Payloads stay
/// raw because decoding needs the SymbolTable of the program the header
/// carries, which the caller parses first.
struct JournalScan {
  JournalHeader header;
  std::vector<std::string> payloads;
  std::uint64_t torn_bytes = 0;  ///< dropped torn-tail bytes, if any
  /// Which record the crash tore, when torn_bytes > 0: a
  /// record_kind_name() string, or "frame" when the tail is too short
  /// to even carry its type byte. Debugging a cluster chaos run needs
  /// to know WHAT was dropped, not just how much.
  std::string torn_kind;
  std::uint64_t torn_offset = 0;  ///< byte offset of the torn frame
};

/// Read and CRC-check a journal. Tolerates (and counts) a torn tail;
/// throws JournalError on mid-file corruption, bad magic/header, or a
/// newer format version.
JournalScan scan_journal(const std::string& path);

/// The append handle the service holds per durable session.
class SessionJournal {
 public:
  /// Create a NEW journal (O_EXCL — an existing file is an error: it
  /// holds state that was neither recovered nor quarantined, and
  /// truncating it would silently destroy a durable session) and write
  /// its header record.
  static std::unique_ptr<SessionJournal> create(
      std::string path, const std::string& name,
      const std::string& program_text, bool fsync_writes, JournalStats* stats,
      std::function<int()> fail_writes = {});

  /// Reopen a recovered journal for appending.
  static std::unique_ptr<SessionJournal> open_append(
      std::string path, bool fsync_writes, JournalStats* stats,
      std::function<int()> fail_writes = {});

  ~SessionJournal();
  SessionJournal(const SessionJournal&) = delete;
  SessionJournal& operator=(const SessionJournal&) = delete;

  /// Frame, append, and (per policy) fsync one record payload. Throws
  /// JournalError on I/O failure; the caller keeps its pending state
  /// and may retry.
  void append(std::string_view payload);

  /// Truncation: atomically replace the whole journal with
  /// header+snapshot (write <path>.tmp, fsync, rename over, fsync the
  /// directory), then continue appending to the new file.
  void rewrite_with_snapshot(const std::string& name,
                             const std::string& program_text,
                             std::string_view snapshot_payload);

  const std::string& path() const { return path_; }

 private:
  SessionJournal(int fd, std::string path, bool fsync_writes,
                 JournalStats* stats);

  /// Frame `payload` and write it to `fd` (not necessarily fd_).
  void write_record(int fd, std::string_view payload);
  void sync(int fd);

  int fd_ = -1;
  std::string path_;
  bool fsync_ = true;
  /// Counter sink; a shared discard instance when the caller passed
  /// nullptr, so the write path never branches on it.
  JournalStats* stats_ = nullptr;
  std::function<int()> fail_writes_;  ///< test hook (JournalConfig)
};

}  // namespace parulel::service
