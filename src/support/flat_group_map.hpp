// FlatGroupMap: an open-addressing multimap from a size_t key to a
// small group of values, tuned for the hot loops of the match layer
// and working memory.
//
// The node-based unordered_multimaps previously backing the alpha join
// indexes and the conflict set dominated match time (one allocation and
// one pointer chase per entry, per probe). Here the table is two flat
// arrays (key, group handle) probed linearly, and each distinct key
// owns a contiguous vector of values in insertion order. Groups keep
// their table slot when emptied, so the table needs no tombstones and
// steady-state churn (erase + re-insert of the same keys) allocates
// nothing.
//
// Determinism: iteration within a group is insertion order, so every
// consumer enumerates candidates in the same order on every run and in
// every matcher — the property the engines' bit-determinism rests on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/small_group.hpp"

namespace parulel {

template <typename V>
class FlatGroupMap {
 public:
  /// Groups store their first elements inline — no allocation for the
  /// singleton/pair groups that dominate content and join indexes.
  using Group = SmallGroup<V>;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// The group for `key`, created empty if absent. Amortized O(1).
  Group& group_for(std::size_t key) {
    return groups_[group_id_for(key)];
  }

  /// Group id for `key`, created if absent. Ids are dense, assigned in
  /// creation order, and stable for the map's lifetime (groups are
  /// never deleted), so callers can keep per-group metadata in a
  /// parallel array — see AlphaMemory's canonical-key cache.
  std::size_t group_id_for(std::size_t key) {
    if (ctrl_.empty()) {
      ctrl_.assign(kInitialTable, 0);
      keys_.assign(kInitialTable, 0);
    } else if ((distinct_ + 1) * 4 > ctrl_.size() * 3) {
      grow();
    }
    const std::size_t mask = ctrl_.size() - 1;
    std::size_t i = mix(key) & mask;
    while (ctrl_[i] != 0) {
      if (keys_[i] == key) return ctrl_[i] - 1;
      i = (i + 1) & mask;
    }
    groups_.emplace_back();
    ++distinct_;
    ctrl_[i] = static_cast<std::uint32_t>(groups_.size());
    keys_[i] = key;
    return groups_.size() - 1;
  }

  /// Group id for `key`, or npos when none was ever created.
  std::size_t find_group_id(std::size_t key) const {
    if (ctrl_.empty()) return npos;
    const std::size_t mask = ctrl_.size() - 1;
    std::size_t i = mix(key) & mask;
    while (ctrl_[i] != 0) {
      if (keys_[i] == key) return ctrl_[i] - 1;
      i = (i + 1) & mask;
    }
    return npos;
  }

  Group& group(std::size_t id) { return groups_[id]; }
  const Group& group(std::size_t id) const { return groups_[id]; }

  /// The group for `key`, or nullptr when none was ever created.
  const Group* find(std::size_t key) const {
    const std::size_t id = find_group_id(key);
    return id == npos ? nullptr : &groups_[id];
  }

  Group* find(std::size_t key) {
    return const_cast<Group*>(
        static_cast<const FlatGroupMap*>(this)->find(key));
  }

 private:
  static constexpr std::size_t kInitialTable = 16;

  /// Spread sequential keys (fact ids) across the table; already-mixed
  /// hash keys pass through this unharmed.
  static std::size_t mix(std::size_t key) {
    return key * 0x9e3779b97f4a7c15ull;
  }

  void grow() {
    const std::size_t cap = ctrl_.size() * 2;
    std::vector<std::size_t> old_keys = std::move(keys_);
    std::vector<std::uint32_t> old_ctrl = std::move(ctrl_);
    ctrl_.assign(cap, 0);
    keys_.assign(cap, 0);
    const std::size_t mask = cap - 1;
    for (std::size_t i = 0; i < old_ctrl.size(); ++i) {
      if (old_ctrl[i] == 0) continue;
      std::size_t j = mix(old_keys[i]) & mask;
      while (ctrl_[j] != 0) j = (j + 1) & mask;
      ctrl_[j] = old_ctrl[i];
      keys_[j] = old_keys[i];
    }
  }

  std::vector<std::size_t> keys_;
  std::vector<std::uint32_t> ctrl_;  ///< group id + 1; 0 = empty slot
  std::vector<Group> groups_;
  std::size_t distinct_ = 0;
};

}  // namespace parulel
