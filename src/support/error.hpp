// Error types shared across the library.
#pragma once

#include <stdexcept>
#include <string>

namespace parulel {

/// Raised by the lexer/parser/analyzer on malformed programs.
/// Carries a 1-based line number when one is known (0 otherwise).
class ParseError : public std::runtime_error {
 public:
  ParseError(std::string message, int line = 0)
      : std::runtime_error(line > 0 ? "line " + std::to_string(line) + ": " +
                                          message
                                    : message),
        line_(line) {}

  int line() const { return line_; }

 private:
  int line_;
};

/// Raised when a rule's RHS evaluates an ill-typed expression or an action
/// references a retracted fact — a program bug, not an engine bug.
class RuntimeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace parulel
