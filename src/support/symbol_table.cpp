#include "support/symbol_table.hpp"

#include <cassert>
#include <memory>

namespace parulel {

SymbolTable::SymbolTable() {
  intern("");  // Symbol 0 == empty string.
}

Symbol SymbolTable::intern(std::string_view text) {
  std::scoped_lock lock(mutex_);
  if (auto it = index_.find(text); it != index_.end()) return it->second;
  auto owned = std::make_unique<std::string>(text);
  std::string_view stable{*owned};
  strings_.push_back(std::move(owned));
  const auto sym = static_cast<Symbol>(strings_.size() - 1);
  index_.emplace(stable, sym);
  return sym;
}

std::string_view SymbolTable::name(Symbol sym) const {
  std::scoped_lock lock(mutex_);
  assert(sym < strings_.size());
  return *strings_[sym];
}

std::size_t SymbolTable::size() const {
  std::scoped_lock lock(mutex_);
  return strings_.size();
}

}  // namespace parulel
