// Interned symbol table.
//
// All identifiers in a PARULEL program (template names, slot names, rule
// names, symbolic constants, variable names) are interned once and referred
// to by a dense 32-bit Symbol afterwards, so that matching and joining
// compare integers, never strings.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace parulel {

/// Dense handle for an interned string. Symbol 0 is always the empty string.
using Symbol = std::uint32_t;

/// Thread-safe append-only string interner.
///
/// Interning takes a lock; lookups of already-interned names (`name()`)
/// are lock-free reads of immutable storage, which is what the match
/// inner loops need.
class SymbolTable {
 public:
  SymbolTable();

  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Intern `text`, returning its stable Symbol. Idempotent.
  Symbol intern(std::string_view text);

  /// The text of a previously interned symbol.
  /// The returned view is stable for the lifetime of the table.
  std::string_view name(Symbol sym) const;

  /// Number of interned symbols (including the empty string).
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  // Deque-like storage: strings are heap-allocated once and never move.
  std::vector<std::unique_ptr<std::string>> strings_;
  std::unordered_map<std::string_view, Symbol> index_;
};

}  // namespace parulel
