// Per-cycle and per-run execution statistics.
//
// Every engine (sequential baseline, PARULEL parallel, distributed) fills
// the same structures so the bench harness can print uniform tables.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace parulel {

/// One recognize-act cycle's accounting.
struct CycleStats {
  std::uint64_t cycle = 0;

  // Conflict-set dynamics.
  std::uint64_t conflict_set_size = 0;  ///< insts eligible after refraction
  std::uint64_t redacted = 0;           ///< removed by meta-rules
  std::uint64_t fired = 0;              ///< instantiations actually fired

  // Working-memory dynamics.
  std::uint64_t asserts = 0;
  std::uint64_t retracts = 0;
  std::uint64_t duplicate_asserts = 0;  ///< asserts absorbed by set semantics
  std::uint64_t write_conflicts = 0;    ///< clashing parallel writes detected

  // Phase times, nanoseconds.
  std::uint64_t match_ns = 0;
  std::uint64_t redact_ns = 0;
  std::uint64_t fire_ns = 0;
  std::uint64_t merge_ns = 0;

  std::uint64_t total_ns() const {
    return match_ns + redact_ns + fire_ns + merge_ns;
  }
};

/// Whole-run accounting, the sum of all cycles plus run-level outcomes.
struct RunStats {
  std::uint64_t cycles = 0;
  std::uint64_t total_firings = 0;
  std::uint64_t total_redactions = 0;
  std::uint64_t total_asserts = 0;
  std::uint64_t total_retracts = 0;
  std::uint64_t total_write_conflicts = 0;
  std::uint64_t peak_conflict_set = 0;
  bool halted = false;      ///< a rule executed (halt)
  bool quiescent = false;   ///< conflict set drained
  std::uint64_t wall_ns = 0;

  std::uint64_t match_ns = 0;
  std::uint64_t redact_ns = 0;
  std::uint64_t fire_ns = 0;
  std::uint64_t merge_ns = 0;

  std::vector<CycleStats> per_cycle;  ///< populated when tracing is enabled

  void absorb(const CycleStats& c);

  /// Human-readable multi-line summary.
  std::string summary() const;
};

}  // namespace parulel
