// Moved: CycleStats/RunStats now live in the observability layer, which
// owns the stat schema and its exporters. This forwarding header keeps
// existing includes working.
#pragma once

#include "obs/stats.hpp"
