// Wall-clock timing helpers for the engines' per-phase accounting.
#pragma once

#include <chrono>
#include <cstdint>

namespace parulel {

/// Monotonic stopwatch reporting elapsed nanoseconds.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  std::uint64_t elapsed_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  double elapsed_ms() const {
    return static_cast<double>(elapsed_ns()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time of a phase into a counter on destruction.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(std::uint64_t& sink) : sink_(sink) {}
  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;
  ~ScopedAccumulator() { sink_ += timer_.elapsed_ns(); }

 private:
  std::uint64_t& sink_;
  Timer timer_;
};

}  // namespace parulel
