// SmallGroup: a vector-like sequence with inline storage for its first
// few elements, used as the group type of FlatGroupMap.
//
// Most groups in this codebase are tiny: the working memory's content
// index keys by full content hash (groups are almost always
// singletons), and alpha join-index groups for selective keys hold a
// handful of facts. A std::vector per group means one heap allocation
// on every first push — for a fresh workload that is one malloc per
// fact per index, a measurable slice of delta application. SmallGroup
// keeps up to kInline elements in place and only spills to a heap
// vector beyond that; once spilled it stays spilled, so churned groups
// never re-allocate (the same steady-state guarantee FlatGroupMap's
// table makes).
//
// Elements stay in insertion order through push_back and ordered
// erase — the determinism property every consumer relies on.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace parulel {

template <typename V>
class SmallGroup {
 public:
  using value_type = V;
  using iterator = V*;
  using const_iterator = const V*;

  V* data() { return spilled() ? spill_.data() : inline_; }
  const V* data() const { return spilled() ? spill_.data() : inline_; }
  std::size_t size() const { return spilled() ? spill_.size() : size_; }
  bool empty() const { return size() == 0; }

  iterator begin() { return data(); }
  iterator end() { return data() + size(); }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size(); }

  void push_back(V v) {
    if (spilled()) {
      spill_.push_back(v);
    } else if (size_ < kInline) {
      inline_[size_++] = v;
    } else {
      spill_.reserve(kInline * 4);
      spill_.assign(inline_, inline_ + kInline);
      spill_.push_back(v);
    }
  }

  /// Ordered erase (later elements shift down), preserving insertion
  /// order among the survivors.
  void erase(iterator it) {
    if (spilled()) {
      spill_.erase(spill_.begin() + (it - spill_.data()));
    } else {
      std::move(it + 1, inline_ + size_, it);
      --size_;
    }
  }

 private:
  static constexpr std::uint32_t kInline = 2;

  /// Spill capacity is never released, so a non-empty capacity is the
  /// storage discriminant even for groups churned back to empty.
  bool spilled() const { return spill_.capacity() != 0; }

  V inline_[kInline];
  std::uint32_t size_ = 0;
  std::vector<V> spill_;
};

}  // namespace parulel
