#include "support/value.hpp"

#include <bit>
#include <cstdint>
#include <sstream>

namespace parulel {

namespace {

/// splitmix64 finalizer: full-avalanche mixing. libstdc++'s
/// std::hash<int> is the identity, which produces structured collisions
/// in join keys and content fingerprints — mix properly instead.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

std::size_t Value::hash() const {
  const std::uint64_t kind_salt =
      static_cast<std::uint64_t>(kind_) * 0x9e3779b97f4a7c15ULL;
  switch (kind_) {
    case ValueKind::Int:
      return mix64(static_cast<std::uint64_t>(i_) ^ kind_salt);
    case ValueKind::Float:
      return mix64(std::bit_cast<std::uint64_t>(f_) ^ kind_salt);
    case ValueKind::Sym:
      return mix64(static_cast<std::uint64_t>(s_) ^ kind_salt);
  }
  return kind_salt;
}

std::string Value::to_string(const SymbolTable& symbols) const {
  switch (kind_) {
    case ValueKind::Int: return std::to_string(i_);
    case ValueKind::Float: {
      std::ostringstream os;
      os << f_;
      return os.str();
    }
    case ValueKind::Sym: return std::string(symbols.name(s_));
  }
  return {};
}

}  // namespace parulel
