#include "support/value.hpp"

#include <sstream>

namespace parulel {

std::string Value::to_string(const SymbolTable& symbols) const {
  switch (kind_) {
    case ValueKind::Int: return std::to_string(i_);
    case ValueKind::Float: {
      std::ostringstream os;
      os << f_;
      return os.str();
    }
    case ValueKind::Sym: return std::string(symbols.name(s_));
  }
  return {};
}

}  // namespace parulel
