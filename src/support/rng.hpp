// Deterministic pseudo-random number generation for workload generators.
//
// A small splitmix64/xoshiro-style generator so workloads are reproducible
// across platforms independent of libstdc++'s distribution implementations.
#pragma once

#include <cstdint>

namespace parulel {

/// splitmix64: tiny, fast, solid for workload synthesis (not crypto).
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be > 0.
  constexpr std::uint64_t below(std::uint64_t bound) {
    return next() % bound;
  }

  /// Uniform in [lo, hi] inclusive.
  constexpr std::int64_t between(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(
                    static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  constexpr double unit() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace parulel
