// Runtime value type for fact slots and expression evaluation.
//
// PARULEL values are 64-bit integers, doubles, or interned symbols. The
// representation is a tagged 16-byte POD so facts can be hashed and
// compared without indirection.
#pragma once

#include <bit>
#include <cstdint>
#include <functional>
#include <string>

#include "support/symbol_table.hpp"

namespace parulel {

namespace detail {

/// splitmix64 finalizer: full-avalanche mixing. libstdc++'s
/// std::hash<int> is the identity, which produces structured collisions
/// in join keys and content fingerprints — mix properly instead.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace detail

enum class ValueKind : std::uint8_t { Int, Float, Sym };

/// A slot value: tagged union of int64, double, or Symbol.
///
/// Equality is exact (kind + payload); Int and Float never compare equal
/// even when numerically identical — production-system matching is
/// structural. Numeric *expressions* coerce explicitly (see expr.cpp).
class Value {
 public:
  constexpr Value() : kind_(ValueKind::Int), i_(0) {}

  static constexpr Value integer(std::int64_t v) {
    Value x;
    x.kind_ = ValueKind::Int;
    x.i_ = v;
    return x;
  }
  static constexpr Value real(double v) {
    Value x;
    x.kind_ = ValueKind::Float;
    x.f_ = v;
    return x;
  }
  static constexpr Value symbol(Symbol s) {
    Value x;
    x.kind_ = ValueKind::Sym;
    x.s_ = s;
    return x;
  }

  constexpr ValueKind kind() const { return kind_; }
  constexpr bool is_int() const { return kind_ == ValueKind::Int; }
  constexpr bool is_float() const { return kind_ == ValueKind::Float; }
  constexpr bool is_sym() const { return kind_ == ValueKind::Sym; }

  constexpr std::int64_t as_int() const { return i_; }
  constexpr double as_float() const { return f_; }
  constexpr Symbol as_sym() const { return s_; }

  /// Numeric view: Int and Float promote to double; symbols are an error
  /// the caller must have excluded.
  constexpr double numeric() const {
    return kind_ == ValueKind::Float ? f_ : static_cast<double>(i_);
  }

  /// Canonical 64-bit payload image for columnar storage (Int: the
  /// two's-complement bits; Float: the IEEE-754 bits; Sym: the
  /// zero-extended symbol id). hash() == mix64(raw_payload() ^ salt),
  /// so a store keeping (kind, payload) columns can cache value hashes
  /// without re-deriving them.
  constexpr std::uint64_t raw_payload() const {
    switch (kind_) {
      case ValueKind::Int: return static_cast<std::uint64_t>(i_);
      case ValueKind::Float: return std::bit_cast<std::uint64_t>(f_);
      case ValueKind::Sym: return static_cast<std::uint64_t>(s_);
    }
    return 0;
  }

  /// Rebuild a value from its (kind, payload) column image. Exact
  /// round-trip of raw_payload() for every kind.
  static constexpr Value from_raw(ValueKind kind, std::uint64_t payload) {
    switch (kind) {
      case ValueKind::Int: return integer(static_cast<std::int64_t>(payload));
      case ValueKind::Float: return real(std::bit_cast<double>(payload));
      case ValueKind::Sym: return symbol(static_cast<Symbol>(payload));
    }
    return Value{};
  }

  friend constexpr bool operator==(const Value& a, const Value& b) {
    if (a.kind_ != b.kind_) return false;
    switch (a.kind_) {
      case ValueKind::Int: return a.i_ == b.i_;
      case ValueKind::Float: return a.f_ == b.f_;
      case ValueKind::Sym: return a.s_ == b.s_;
    }
    return false;
  }
  friend constexpr bool operator!=(const Value& a, const Value& b) {
    return !(a == b);
  }

  /// Total order used by deterministic tie-breaking (kind first, payload
  /// second). Not a numeric order across kinds.
  friend constexpr bool operator<(const Value& a, const Value& b) {
    if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
    switch (a.kind_) {
      case ValueKind::Int: return a.i_ < b.i_;
      case ValueKind::Float: return a.f_ < b.f_;
      case ValueKind::Sym: return a.s_ < b.s_;
    }
    return false;
  }

  /// Inline: this is the single hottest leaf of the match layer (every
  /// join-key and content hash bottoms out here).
  std::size_t hash() const {
    const std::uint64_t kind_salt =
        static_cast<std::uint64_t>(kind_) * 0x9e3779b97f4a7c15ULL;
    switch (kind_) {
      case ValueKind::Int:
        return detail::mix64(static_cast<std::uint64_t>(i_) ^ kind_salt);
      case ValueKind::Float:
        return detail::mix64(std::bit_cast<std::uint64_t>(f_) ^ kind_salt);
      case ValueKind::Sym:
        return detail::mix64(static_cast<std::uint64_t>(s_) ^ kind_salt);
    }
    return kind_salt;
  }

  /// Render for diagnostics and printout actions.
  std::string to_string(const SymbolTable& symbols) const;

 private:
  ValueKind kind_;
  union {
    std::int64_t i_;
    double f_;
    Symbol s_;
  };
};

/// FNV-style combine for hashing tuples of values.
inline std::size_t hash_combine(std::size_t seed, std::size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace parulel

template <>
struct std::hash<parulel::Value> {
  std::size_t operator()(const parulel::Value& v) const { return v.hash(); }
};
