#include "support/stats.hpp"

#include <algorithm>
#include <sstream>

namespace parulel {

void RunStats::absorb(const CycleStats& c) {
  cycles += 1;
  total_firings += c.fired;
  total_redactions += c.redacted;
  total_asserts += c.asserts;
  total_retracts += c.retracts;
  total_write_conflicts += c.write_conflicts;
  peak_conflict_set = std::max(peak_conflict_set, c.conflict_set_size);
  match_ns += c.match_ns;
  redact_ns += c.redact_ns;
  fire_ns += c.fire_ns;
  merge_ns += c.merge_ns;
}

std::string RunStats::summary() const {
  std::ostringstream os;
  os << "cycles=" << cycles << " firings=" << total_firings
     << " redactions=" << total_redactions << " asserts=" << total_asserts
     << " retracts=" << total_retracts
     << " peak_cs=" << peak_conflict_set
     << " wall_ms=" << static_cast<double>(wall_ns) / 1e6
     << (halted ? " [halt]" : "") << (quiescent ? " [quiescent]" : "");
  return os.str();
}

}  // namespace parulel
