// FlatIdMap: an open-addressing map from a dense integer id to a small
// value, tuned for the alpha memories' fact-position tables.
//
// The node-based unordered_map previously tracking each fact's position
// inside an alpha memory cost one heap allocation per insert per
// accepting memory — the single largest slice of delta application
// after the join itself. Here the table is two flat arrays probed
// linearly; erasure uses backward-shift deletion, so there are no
// tombstones and lookups never degrade under churn.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace parulel {

template <typename V>
class FlatIdMap {
 public:
  /// Insert `key` -> `value`; `key` must not be present. Amortized O(1).
  void insert(std::size_t key, V value) {
    if (ctrl_.empty()) {
      ctrl_.assign(kInitialTable, 0);
      slots_.resize(kInitialTable);
    } else if ((size_ + 1) * 4 > ctrl_.size() * 3) {
      grow();
    }
    const std::size_t mask = ctrl_.size() - 1;
    std::size_t i = mix(key) & mask;
    while (ctrl_[i]) i = (i + 1) & mask;
    ctrl_[i] = 1;
    slots_[i] = {key, value};
    ++size_;
  }

  /// Pointer to the value for `key`, or nullptr.
  V* find(std::size_t key) {
    if (ctrl_.empty()) return nullptr;
    const std::size_t mask = ctrl_.size() - 1;
    std::size_t i = mix(key) & mask;
    while (ctrl_[i]) {
      if (slots_[i].key == key) return &slots_[i].value;
      i = (i + 1) & mask;
    }
    return nullptr;
  }

  const V* find(std::size_t key) const {
    return const_cast<FlatIdMap*>(this)->find(key);
  }

  bool contains(std::size_t key) const { return find(key) != nullptr; }

  /// Remove `key` if present. Backward-shift deletion: later entries of
  /// the probe cluster slide up so no tombstone is needed.
  void erase(std::size_t key) {
    if (ctrl_.empty()) return;
    const std::size_t mask = ctrl_.size() - 1;
    std::size_t i = mix(key) & mask;
    while (ctrl_[i]) {
      if (slots_[i].key == key) break;
      i = (i + 1) & mask;
    }
    if (!ctrl_[i]) return;
    --size_;
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask;
      if (!ctrl_[j]) break;
      // Move j up only if its home slot does not lie in (i, j] — i.e.
      // the probe that found j would also have found i.
      const std::size_t home = mix(slots_[j].key) & mask;
      if (((j - home) & mask) >= ((j - i) & mask)) {
        slots_[i] = slots_[j];
        i = j;
      }
    }
    ctrl_[i] = 0;
  }

  std::size_t size() const { return size_; }

 private:
  static constexpr std::size_t kInitialTable = 16;

  struct Slot {
    std::size_t key;
    V value;
  };

  /// Spread sequential ids across the table.
  static std::size_t mix(std::size_t key) {
    return key * 0x9e3779b97f4a7c15ull;
  }

  void grow() {
    const std::size_t cap = ctrl_.size() * 2;
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_ctrl = std::move(ctrl_);
    ctrl_.assign(cap, 0);
    slots_.resize(cap);
    const std::size_t mask = cap - 1;
    for (std::size_t i = 0; i < old_ctrl.size(); ++i) {
      if (!old_ctrl[i]) continue;
      std::size_t j = mix(old_slots[i].key) & mask;
      while (ctrl_[j]) j = (j + 1) & mask;
      ctrl_[j] = 1;
      slots_[j] = old_slots[i];
    }
  }

  std::vector<std::uint8_t> ctrl_;  ///< 1 = occupied
  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace parulel
