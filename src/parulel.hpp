// PARULEL — parallel production-rule language. Umbrella header.
//
// Quick tour:
//   auto program = parulel::parse_program(source_text);
//   parulel::EngineConfig cfg;
//   cfg.threads = 8;
//   cfg.matcher = parulel::MatcherKind::ParallelTreat;
//   parulel::ParallelEngine engine(program, cfg);
//   engine.assert_initial_facts();
//   parulel::RunStats stats = engine.run();
//
// See README.md for the language reference and examples/ for runnable
// programs.
#pragma once

#include "compile/compiler.hpp"
#include "compile/vm.hpp"
#include "distrib/copy_constrain.hpp"
#include "distrib/dist_engine.hpp"
#include "distrib/partition.hpp"
#include "engine/engine.hpp"
#include "engine/par_engine.hpp"
#include "engine/seq_engine.hpp"
#include "lang/printer.hpp"
#include "lang/program.hpp"
#include "match/rete.hpp"
#include "match/treat.hpp"
#include "match/parallel_treat.hpp"
#include "meta/meta_engine.hpp"
#include "net/client.hpp"
#include "net/net_server.hpp"
#include "net/retry_client.hpp"
#include "obs/metrics.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "service/journal.hpp"
#include "service/protocol.hpp"
#include "service/serve.hpp"
#include "service/service.hpp"
#include "service/session.hpp"
#include "support/error.hpp"
#include "wm/working_memory.hpp"
#include "workloads/workloads.hpp"
