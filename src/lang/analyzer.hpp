// Semantic analysis: AST -> compiled Program.
//
// Responsibilities:
//  - resolve template / slot / variable names
//  - classify slot constraints into alpha tests (constants, intra-pattern
//    equalities) and beta join tests (cross-pattern variable equalities)
//  - dedupe alpha memories across patterns and rules
//  - attach test CEs to the earliest join position where their variables
//    are bound
//  - synthesize the meta schema: one `inst-<rule>` template per object
//    rule with slots (id, <lhs variables...>), then compile defmetarule
//    forms against it
//  - check the documented restrictions (negated CEs bind no new rule
//    variables, redact only in meta rules, deffacts are ground, ...)
#pragma once

#include <memory>

#include "lang/ast.hpp"
#include "lang/program.hpp"

namespace parulel {

/// Lower `ast` into an executable Program. Throws ParseError with source
/// line info on semantic errors.
Program analyze(const ProgramAst& ast, std::shared_ptr<SymbolTable> symbols);

}  // namespace parulel
