// The compiled program: what engines and matchers execute.
//
// Lowered from the AST by the analyzer. Every name is resolved: templates
// to TemplateIds, slots to positions, variables to dense per-rule VarIds.
// The meta level is a second compiled ruleset over an auto-generated meta
// schema (`inst-<rule>` templates), see meta/reify.hpp.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lang/expr.hpp"
#include "support/symbol_table.hpp"
#include "wm/fact.hpp"
#include "wm/schema.hpp"

namespace parulel {

using RuleId = std::uint32_t;

/// A compiled pattern condition element.
struct CompiledPattern {
  TemplateId tmpl = kInvalidTemplate;
  bool negated = false;
  /// Only for quantified CEs (stored in CompiledRule::negatives): when
  /// true the CE requires AT LEAST ONE matching fact ((exists ...)),
  /// when false it requires none ((not ...)).
  bool exists = false;

  /// Slot must equal a constant (alpha test).
  struct ConstTest {
    int slot;
    Value value;
  };
  std::vector<ConstTest> const_tests;

  /// Two slots of *this* fact must be equal (same variable twice within
  /// one pattern; alpha test).
  struct IntraEq {
    int slot_a;
    int slot_b;
  };
  std::vector<IntraEq> intra_eqs;

  /// Slots that *define* a variable (first occurrence across the rule).
  struct Binding {
    int slot;
    VarId var;
  };
  std::vector<Binding> defines;

  /// Slots that must equal an already-bound variable (beta join test).
  struct JoinEq {
    int slot;
    VarId var;
  };
  std::vector<JoinEq> join_eqs;

  /// Key identifying the alpha memory this pattern selects from
  /// (assigned by the analyzer; patterns with equal (tmpl, const_tests,
  /// intra_eqs) share an alpha memory).
  std::uint32_t alpha = 0;
};

/// A compiled RHS action.
struct CompiledAction {
  enum class Kind : std::uint8_t {
    Assert, Retract, Modify, Bind, Halt, Printout, Redact
  };
  Kind kind = Kind::Halt;

  TemplateId tmpl = kInvalidTemplate;        // Assert
  std::vector<CompiledExpr> slot_values;     // Assert: one per slot, in order
  std::vector<std::pair<int, CompiledExpr>> slot_updates;  // Modify
  int ce_index = -1;    // Retract/Modify: index into positive-CE fact list
  VarId bind_var = kInvalidVar;              // Bind
  std::vector<CompiledExpr> args;            // Bind body / Printout / Redact
};

/// A compiled rule (object- or meta-level).
struct CompiledRule {
  RuleId id = 0;
  Symbol name = 0;
  int salience = 0;
  bool is_meta = false;

  /// Positive patterns in join order (source order of positive CEs).
  std::vector<CompiledPattern> positives;
  /// Quantified patterns ((not ...) and (exists ...)), each checked
  /// after the full positive join.
  std::vector<CompiledPattern> negatives;

  /// guards[k] = tests evaluable once positives[0..k] are bound;
  /// guards has positives.size() entries (empty rules are rejected).
  std::vector<std::vector<CompiledExpr>> guards;

  std::vector<CompiledAction> actions;

  int num_lhs_vars = 0;  ///< VarIds [0, num_lhs_vars) bound by the LHS
  int num_vars = 0;      ///< including RHS bind locals
  /// Source names of LHS variables (index = VarId); used for reification.
  std::vector<Symbol> var_names;

  /// Original source CE position of each positive pattern (for MEA and
  /// diagnostics).
  std::vector<int> source_positions;
};

/// One alpha memory specification (shared across patterns and rules).
struct AlphaSpec {
  TemplateId tmpl = kInvalidTemplate;
  std::vector<CompiledPattern::ConstTest> const_tests;
  std::vector<CompiledPattern::IntraEq> intra_eqs;

  /// Does a fact (of matching template) pass the alpha tests?
  /// `fact` is anything with slot(i) -> Value — a FactView, or the
  /// adapter tests wrap around a plain slot vector.
  template <typename FactLike>
  bool accepts(const FactLike& fact) const {
    for (const auto& t : const_tests) {
      if (fact.slot(static_cast<std::size_t>(t.slot)) != t.value) return false;
    }
    for (const auto& e : intra_eqs) {
      if (fact.slot(static_cast<std::size_t>(e.slot_a)) !=
          fact.slot(static_cast<std::size_t>(e.slot_b))) {
        return false;
      }
    }
    return true;
  }
};

/// Ground fact ready to assert.
struct GroundFact {
  TemplateId tmpl = kInvalidTemplate;
  std::vector<Value> slots;
};

/// A fully compiled program. Immutable once built; shared by engines.
struct Program {
  std::shared_ptr<SymbolTable> symbols;

  Schema schema;                 ///< object-level templates
  std::vector<CompiledRule> rules;
  std::vector<AlphaSpec> alphas;

  Schema meta_schema;            ///< inst-<rule> templates
  std::vector<CompiledRule> meta_rules;
  std::vector<AlphaSpec> meta_alphas;
  /// meta template id for each object rule (index = RuleId).
  std::vector<TemplateId> inst_templates;

  std::vector<GroundFact> initial_facts;

  /// Rule lookup by name (object level), or nullptr.
  const CompiledRule* find_rule(std::string_view name) const;
};

/// Parse + analyze a full program text.
/// Throws ParseError on syntax or semantic errors.
Program parse_program(std::string_view source,
                      std::shared_ptr<SymbolTable> symbols = nullptr);

}  // namespace parulel
