#include "lang/expr.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "support/error.hpp"

namespace parulel {
namespace {

[[noreturn]] void type_error(const char* what) {
  throw RuntimeError(std::string("type error: ") + what);
}

double num(const Value& v, const char* ctx) {
  if (v.is_sym()) type_error(ctx);
  return v.numeric();
}

bool both_int(const Value& a, const Value& b) {
  return a.is_int() && b.is_int();
}

Value arith(ExprOp op, const Value& a, const Value& b) {
  if (both_int(a, b)) {
    const std::int64_t x = a.as_int(), y = b.as_int();
    switch (op) {
      case ExprOp::Add: return Value::integer(x + y);
      case ExprOp::Sub: return Value::integer(x - y);
      case ExprOp::Mul: return Value::integer(x * y);
      case ExprOp::Div:
        if (y == 0) throw RuntimeError("integer division by zero");
        return Value::integer(x / y);
      case ExprOp::Mod:
        if (y == 0) throw RuntimeError("integer modulo by zero");
        return Value::integer(x % y);
      case ExprOp::Min: return Value::integer(std::min(x, y));
      case ExprOp::Max: return Value::integer(std::max(x, y));
      default: break;
    }
  }
  const double x = num(a, "arithmetic on symbol");
  const double y = num(b, "arithmetic on symbol");
  switch (op) {
    case ExprOp::Add: return Value::real(x + y);
    case ExprOp::Sub: return Value::real(x - y);
    case ExprOp::Mul: return Value::real(x * y);
    case ExprOp::Div: return Value::real(x / y);
    case ExprOp::Mod: return Value::real(std::fmod(x, y));
    case ExprOp::Min: return Value::real(std::min(x, y));
    case ExprOp::Max: return Value::real(std::max(x, y));
    default: type_error("bad arithmetic op");
  }
}

}  // namespace

bool CompiledExpr::truthy(const Value& v) {
  switch (v.kind()) {
    case ValueKind::Int: return v.as_int() != 0;
    case ValueKind::Float: return v.as_float() != 0.0;
    case ValueKind::Sym: type_error("symbol used as boolean");
  }
  return false;
}

Value CompiledExpr::eval(std::span<const Value> env) const {
  switch (op) {
    case ExprOp::Const:
      return constant;
    case ExprOp::Var:
      return env[static_cast<std::size_t>(var)];

    case ExprOp::Add: case ExprOp::Sub: case ExprOp::Mul:
    case ExprOp::Div: case ExprOp::Mod: case ExprOp::Min:
    case ExprOp::Max: {
      if (args.size() < 2) type_error("arithmetic needs 2+ operands");
      Value acc = args[0].eval(env);
      for (std::size_t i = 1; i < args.size(); ++i) {
        acc = arith(op, acc, args[i].eval(env));
      }
      return acc;
    }

    case ExprOp::Neg: {
      const Value v = args.at(0).eval(env);
      if (v.is_int()) return Value::integer(-v.as_int());
      if (v.is_float()) return Value::real(-v.as_float());
      type_error("negation of symbol");
    }
    case ExprOp::Abs: {
      const Value v = args.at(0).eval(env);
      if (v.is_int()) return Value::integer(std::llabs(v.as_int()));
      if (v.is_float()) return Value::real(std::fabs(v.as_float()));
      type_error("abs of symbol");
    }

    case ExprOp::Lt: case ExprOp::Le: case ExprOp::Gt: case ExprOp::Ge: {
      const double a = num(args.at(0).eval(env), "ordering on symbol");
      const double b = num(args.at(1).eval(env), "ordering on symbol");
      bool r = false;
      switch (op) {
        case ExprOp::Lt: r = a < b; break;
        case ExprOp::Le: r = a <= b; break;
        case ExprOp::Gt: r = a > b; break;
        case ExprOp::Ge: r = a >= b; break;
        default: break;
      }
      return Value::integer(r ? 1 : 0);
    }

    case ExprOp::Eq: {
      const Value a = args.at(0).eval(env);
      const Value b = args.at(1).eval(env);
      // Numbers compare numerically across Int/Float; symbols structurally.
      if (!a.is_sym() && !b.is_sym()) {
        return Value::integer(a.numeric() == b.numeric() ? 1 : 0);
      }
      return Value::integer(a == b ? 1 : 0);
    }
    case ExprOp::Ne: {
      const Value a = args.at(0).eval(env);
      const Value b = args.at(1).eval(env);
      if (!a.is_sym() && !b.is_sym()) {
        return Value::integer(a.numeric() != b.numeric() ? 1 : 0);
      }
      return Value::integer(a == b ? 0 : 1);
    }

    case ExprOp::And: {
      for (const auto& arg : args) {
        if (!truthy(arg.eval(env))) return Value::integer(0);
      }
      return Value::integer(1);
    }
    case ExprOp::Or: {
      for (const auto& arg : args) {
        if (truthy(arg.eval(env))) return Value::integer(1);
      }
      return Value::integer(0);
    }
    case ExprOp::Not:
      return Value::integer(truthy(args.at(0).eval(env)) ? 0 : 1);

    case ExprOp::OwnSite: {
      const Value v = args.at(0).eval(env);
      const auto site =
          static_cast<std::uint64_t>(args.at(1).constant.as_int());
      const auto nsites =
          static_cast<std::uint64_t>(args.at(2).constant.as_int());
      return Value::integer(v.hash() % nsites == site ? 1 : 0);
    }
  }
  type_error("unhandled expression op");
}

void CompiledExpr::collect_vars(std::vector<VarId>& out) const {
  if (op == ExprOp::Var) out.push_back(var);
  for (const auto& arg : args) arg.collect_vars(out);
}

}  // namespace parulel
