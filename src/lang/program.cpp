#include "lang/program.hpp"

#include "lang/analyzer.hpp"
#include "lang/parser.hpp"

namespace parulel {

const CompiledRule* Program::find_rule(std::string_view name) const {
  for (const auto& rule : rules) {
    if (symbols->name(rule.name) == name) return &rule;
  }
  return nullptr;
}

Program parse_program(std::string_view source,
                      std::shared_ptr<SymbolTable> symbols) {
  if (!symbols) symbols = std::make_shared<SymbolTable>();
  ProgramAst ast = parse_ast(source, *symbols);
  return analyze(ast, std::move(symbols));
}

}  // namespace parulel
