#include "lang/printer.hpp"
#include <cctype>

#include <sstream>

namespace parulel {

std::string print_fact(const Fact& fact, const Schema& schema,
                       const SymbolTable& symbols) {
  const TemplateDef& def = schema.at(fact.tmpl);
  std::ostringstream os;
  os << "(" << symbols.name(def.name);
  for (std::size_t i = 0; i < fact.slots.size(); ++i) {
    os << " (" << symbols.name(def.slot_names[i]) << " ";
    const Value& v = fact.slots[i];
    if (v.is_sym()) {
      // Symbols that would not re-lex as a bare name round-trip as
      // strings.
      const std::string_view name = symbols.name(v.as_sym());
      bool bare = !name.empty();
      for (char c : name) {
        if (std::isspace(static_cast<unsigned char>(c)) || c == '(' ||
            c == ')' || c == '"' || c == ';' || c == '?') {
          bare = false;
          break;
        }
      }
      if (bare) {
        os << name;
      } else {
        os << '"';
        for (char c : name) {
          if (c == '"' || c == '\\') os << '\\';
          os << c;
        }
        os << '"';
      }
    } else {
      os << v.to_string(symbols);
    }
    os << ")";
  }
  os << ")";
  return os.str();
}

std::string dump_state(const WorkingMemory& wm, const SymbolTable& symbols,
                       std::string_view deffacts_name) {
  const Schema& schema = wm.schema();
  std::ostringstream os;
  for (TemplateId t = 0; t < schema.size(); ++t) {
    const TemplateDef& def = schema.at(t);
    os << "(deftemplate " << symbols.name(def.name);
    for (Symbol slot : def.slot_names) {
      os << " (slot " << symbols.name(slot) << ")";
    }
    os << ")\n";
  }
  os << "(deffacts " << deffacts_name << "\n";
  for (FactId id = 1; id <= wm.high_water(); ++id) {
    if (!wm.alive(id)) continue;
    os << "  " << print_fact(wm.fact(id), schema, symbols) << "\n";
  }
  os << ")\n";
  return os.str();
}

}  // namespace parulel
