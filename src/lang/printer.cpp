#include "lang/printer.hpp"
#include <cctype>
#include <cstdio>

#include <sstream>

namespace parulel {

namespace {

/// Print a symbol so it re-lexes to the same Symbol: bare when safe,
/// quoted-string otherwise (mirrors print_fact's escaping).
void print_symbol(std::ostream& os, std::string_view name) {
  bool bare = !name.empty();
  for (char c : name) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '(' ||
        c == ')' || c == '"' || c == ';' || c == '?') {
      bare = false;
      break;
    }
  }
  if (bare) {
    os << name;
    return;
  }
  os << '"';
  for (char c : name) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

/// Print a constant so it re-lexes to the same Value. Floats get
/// max_digits10 precision and a guaranteed '.'/exponent so the lexer
/// sees a Float token again, not an Integer.
void print_value(std::ostream& os, const Value& v, const SymbolTable& sym) {
  switch (v.kind()) {
    case ValueKind::Int:
      os << v.as_int();
      return;
    case ValueKind::Float: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", v.as_float());
      std::string text = buf;
      if (text.find_first_of(".eE") == std::string::npos) text += ".0";
      os << text;
      return;
    }
    case ValueKind::Sym:
      print_symbol(os, sym.name(v.as_sym()));
      return;
  }
}

void print_expr(std::ostream& os, const ExprAst& e, const SymbolTable& sym) {
  switch (e.kind) {
    case ExprAst::Kind::Const:
      print_value(os, e.constant, sym);
      return;
    case ExprAst::Kind::Var:
      os << '?' << sym.name(e.var);
      return;
    case ExprAst::Kind::Call:
      os << '(' << sym.name(e.op);
      for (const ExprAst& a : e.args) {
        os << ' ';
        print_expr(os, a, sym);
      }
      os << ')';
      return;
  }
}

/// The bare `(tmpl (slot ...) ...)` form, without not/exists wrappers.
void print_pattern_body(std::ostream& os, const PatternCEAst& pat,
                        const SymbolTable& sym) {
  os << '(' << sym.name(pat.tmpl);
  for (const SlotPatternAst& s : pat.slots) {
    os << " (" << sym.name(s.slot) << ' ';
    switch (s.kind) {
      case SlotPatternAst::Kind::Const:
        print_value(os, s.constant, sym);
        break;
      case SlotPatternAst::Kind::Var:
        os << '?' << sym.name(s.var);
        break;
      case SlotPatternAst::Kind::Wildcard:
        os << '?';
        break;
    }
    os << ')';
  }
  os << ')';
}

void print_ce(std::ostream& os, const CEAst& ce, const SymbolTable& sym) {
  if (const auto* test = std::get_if<TestCEAst>(&ce)) {
    os << "  (test ";
    print_expr(os, test->expr, sym);
    os << ")\n";
    return;
  }
  const auto& pat = std::get<PatternCEAst>(ce);
  os << "  ";
  if (pat.fact_var != 0) os << '?' << sym.name(pat.fact_var) << " <- ";
  if (pat.negated) os << (pat.exists ? "(exists " : "(not ");
  print_pattern_body(os, pat, sym);
  if (pat.negated) os << ')';
  os << '\n';
}

void print_action(std::ostream& os, const ActionAst& act,
                  const SymbolTable& sym) {
  os << "  ";
  switch (act.kind) {
    case ActionAst::Kind::Assert:
      os << "(assert (" << sym.name(act.tmpl);
      for (const auto& [slot, expr] : act.slot_exprs) {
        os << " (" << sym.name(slot) << ' ';
        print_expr(os, expr, sym);
        os << ')';
      }
      os << "))";
      break;
    case ActionAst::Kind::Retract:
      os << "(retract ?" << sym.name(act.fact_var) << ')';
      break;
    case ActionAst::Kind::Modify:
      os << "(modify ?" << sym.name(act.fact_var);
      for (const auto& [slot, expr] : act.slot_exprs) {
        os << " (" << sym.name(slot) << ' ';
        print_expr(os, expr, sym);
        os << ')';
      }
      os << ')';
      break;
    case ActionAst::Kind::Bind:
      os << "(bind ?" << sym.name(act.bind_var) << ' ';
      print_expr(os, act.args[0], sym);
      os << ')';
      break;
    case ActionAst::Kind::Halt:
      os << "(halt)";
      break;
    case ActionAst::Kind::Printout:
      os << "(printout";
      for (const ExprAst& a : act.args) {
        os << ' ';
        print_expr(os, a, sym);
      }
      os << ')';
      break;
    case ActionAst::Kind::Redact:
      os << "(redact ";
      print_expr(os, act.args[0], sym);
      os << ')';
      break;
  }
  os << '\n';
}

}  // namespace

std::string print_ast(const ProgramAst& ast, const SymbolTable& symbols) {
  std::ostringstream os;
  for (const TemplateAst& t : ast.templates) {
    os << "(deftemplate " << symbols.name(t.name);
    for (Symbol slot : t.slots) os << " (slot " << symbols.name(slot) << ')';
    os << ")\n";
  }
  for (const RuleAst& r : ast.rules) {
    os << (r.is_meta ? "(defmetarule " : "(defrule ") << symbols.name(r.name)
       << '\n';
    if (r.salience != 0) {
      os << "  (declare (salience " << r.salience << "))\n";
    }
    for (const CEAst& ce : r.lhs) print_ce(os, ce, symbols);
    os << "  =>\n";
    for (const ActionAst& act : r.rhs) print_action(os, act, symbols);
    os << ")\n";
  }
  for (const DeffactsAst& df : ast.facts) {
    os << "(deffacts " << symbols.name(df.name) << '\n';
    for (const PatternCEAst& f : df.facts) {
      os << "  ";
      print_pattern_body(os, f, symbols);
      os << '\n';
    }
    os << ")\n";
  }
  return os.str();
}

std::string print_fact(TemplateId tmpl, std::span<const Value> slots,
                       const Schema& schema, const SymbolTable& symbols) {
  const TemplateDef& def = schema.at(tmpl);
  std::ostringstream os;
  os << "(" << symbols.name(def.name);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    os << " (" << symbols.name(def.slot_names[i]) << " ";
    const Value& v = slots[i];
    if (v.is_sym()) {
      // Symbols that would not re-lex as a bare name round-trip as
      // strings.
      const std::string_view name = symbols.name(v.as_sym());
      bool bare = !name.empty();
      for (char c : name) {
        if (std::isspace(static_cast<unsigned char>(c)) || c == '(' ||
            c == ')' || c == '"' || c == ';' || c == '?') {
          bare = false;
          break;
        }
      }
      if (bare) {
        os << name;
      } else {
        os << '"';
        for (char c : name) {
          if (c == '"' || c == '\\') os << '\\';
          os << c;
        }
        os << '"';
      }
    } else {
      os << v.to_string(symbols);
    }
    os << ")";
  }
  os << ")";
  return os.str();
}

std::string dump_state(const WorkingMemory& wm, const SymbolTable& symbols,
                       std::string_view deffacts_name) {
  const Schema& schema = wm.schema();
  std::ostringstream os;
  for (TemplateId t = 0; t < schema.size(); ++t) {
    const TemplateDef& def = schema.at(t);
    os << "(deftemplate " << symbols.name(def.name);
    for (Symbol slot : def.slot_names) {
      os << " (slot " << symbols.name(slot) << ")";
    }
    os << ")\n";
  }
  os << "(deffacts " << deffacts_name << "\n";
  for (FactId id = 1; id <= wm.high_water(); ++id) {
    if (!wm.alive(id)) continue;
    os << "  " << print_fact(wm.view(id), schema, symbols) << "\n";
  }
  os << ")\n";
  return os.str();
}

}  // namespace parulel
