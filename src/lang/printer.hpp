// State printing: serialize live working memory back to program text.
//
// `dump_state` emits the schema's deftemplate forms plus one deffacts
// block holding every alive fact, producing a standalone program text
// that `parse_program` accepts — the save/restore path for checkpoints
// and for shipping a reproduction of a working memory into a bug report.
#pragma once

#include <string>
#include <string_view>

#include "lang/program.hpp"
#include "wm/working_memory.hpp"

namespace parulel {

/// Render one fact as "(tmpl (slot value) ...)".
std::string print_fact(const Fact& fact, const Schema& schema,
                       const SymbolTable& symbols);

/// Deftemplates + a deffacts block of all alive facts.
std::string dump_state(const WorkingMemory& wm, const SymbolTable& symbols,
                       std::string_view deffacts_name = "checkpoint");

}  // namespace parulel
