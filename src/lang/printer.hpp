// State printing: serialize live working memory back to program text.
//
// `dump_state` emits the schema's deftemplate forms plus one deffacts
// block holding every alive fact, producing a standalone program text
// that `parse_program` accepts — the save/restore path for checkpoints
// and for shipping a reproduction of a working memory into a bug report.
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "lang/ast.hpp"
#include "lang/program.hpp"
#include "wm/working_memory.hpp"

namespace parulel {

/// Render one fact as "(tmpl (slot value) ...)".
std::string print_fact(TemplateId tmpl, std::span<const Value> slots,
                       const Schema& schema, const SymbolTable& symbols);

inline std::string print_fact(const Fact& fact, const Schema& schema,
                              const SymbolTable& symbols) {
  return print_fact(fact.tmpl, fact.slots, schema, symbols);
}

/// FactView overload (cold path: copies the slots out of the store).
inline std::string print_fact(const FactView& fact, const Schema& schema,
                              const SymbolTable& symbols) {
  return print_fact(fact.tmpl(), fact.copy_slots(), schema, symbols);
}

/// Render a parsed (pre-analysis) program back to source text that
/// `parse_ast` accepts. Floats print with max_digits10 (and a forced
/// decimal point) so numeric constants survive bit-exactly; symbols
/// print bare when they re-lex as names and as quoted strings
/// otherwise. Round-trip contract, held by the property test in
/// tests/test_random_programs.cpp: parse_ast(print_ast(ast)) is
/// structurally identical to `ast` (line numbers aside).
std::string print_ast(const ProgramAst& ast, const SymbolTable& symbols);

/// Deftemplates + a deffacts block of all alive facts.
std::string dump_state(const WorkingMemory& wm, const SymbolTable& symbols,
                       std::string_view deffacts_name = "checkpoint");

}  // namespace parulel
