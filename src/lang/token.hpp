// Token stream for the PARULEL surface syntax.
#pragma once

#include <cstdint>
#include <string>

namespace parulel {

enum class TokenKind : std::uint8_t {
  LParen,
  RParen,
  Arrow,     // =>
  Name,      // bare symbol: templates, slots, operators, keywords
  Variable,  // ?name
  Integer,
  Float,
  String,    // "..."; becomes a symbol constant
  End,
};

struct Token {
  TokenKind kind = TokenKind::End;
  std::string text;       // Name/Variable (without '?')/String contents
  std::int64_t int_value = 0;
  double float_value = 0.0;
  int line = 0;
};

}  // namespace parulel
