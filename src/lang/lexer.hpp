// Lexer for the s-expression surface syntax.
//
// The grammar is CLIPS-flavored:
//   - `;` starts a comment to end of line
//   - `?name` is a variable, bare `?` a wildcard variable
//   - `=>` separates LHS from RHS inside defrule/defmetarule
//   - names may contain letters, digits, and -+*/<>=!_.&~ (so operators
//     like `<=` and hyphenated identifiers lex as one Name token)
#pragma once

#include <string_view>
#include <vector>

#include "lang/token.hpp"

namespace parulel {

/// Tokenize `source`; throws ParseError on malformed input
/// (unterminated string, stray character).
std::vector<Token> tokenize(std::string_view source);

}  // namespace parulel
