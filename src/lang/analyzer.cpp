#include "lang/analyzer.hpp"

#include <map>
#include <string>
#include <unordered_map>

#include "support/error.hpp"

namespace parulel {
namespace {

/// Canonical encoding of an alpha spec for dedup.
std::vector<std::int64_t> alpha_key(const AlphaSpec& spec) {
  std::vector<std::int64_t> key;
  key.push_back(spec.tmpl);
  key.push_back(static_cast<std::int64_t>(spec.const_tests.size()));
  for (const auto& t : spec.const_tests) {
    key.push_back(t.slot);
    key.push_back(static_cast<std::int64_t>(t.value.kind()));
    switch (t.value.kind()) {
      case ValueKind::Int: key.push_back(t.value.as_int()); break;
      case ValueKind::Float: {
        double d = t.value.as_float();
        std::int64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        __builtin_memcpy(&bits, &d, sizeof(bits));
        key.push_back(bits);
        break;
      }
      case ValueKind::Sym: key.push_back(t.value.as_sym()); break;
    }
  }
  for (const auto& e : spec.intra_eqs) {
    key.push_back(e.slot_a);
    key.push_back(e.slot_b);
  }
  return key;
}

/// Shared compilation state for one rule set (object or meta level).
class RuleCompiler {
 public:
  RuleCompiler(SymbolTable& symbols, const Schema& schema,
               std::vector<AlphaSpec>& alphas)
      : symbols_(symbols), schema_(schema), alphas_(alphas) {}

  CompiledRule compile(const RuleAst& ast, RuleId id) {
    CompiledRule rule;
    rule.id = id;
    rule.name = ast.name;
    rule.salience = ast.salience;
    rule.is_meta = ast.is_meta;

    var_ids_.clear();
    fact_vars_.clear();

    int source_pos = 0;
    for (const auto& ce : ast.lhs) {
      if (const auto* pat = std::get_if<PatternCEAst>(&ce)) {
        compile_pattern(*pat, rule, source_pos);
      } else {
        compile_test(std::get<TestCEAst>(ce), rule);
      }
      ++source_pos;
    }
    if (rule.positives.empty()) {
      throw ParseError("rule '" + rule_name(ast) +
                           "' has no positive condition elements",
                       ast.line);
    }

    rule.num_lhs_vars = static_cast<int>(var_ids_.size());
    rule.var_names.resize(var_ids_.size());
    for (const auto& [sym, vid] : var_ids_) {
      rule.var_names[static_cast<std::size_t>(vid)] = sym;
    }

    for (const auto& act : ast.rhs) {
      rule.actions.push_back(compile_action(act, ast, rule));
    }
    rule.num_vars = static_cast<int>(var_ids_.size());
    return rule;
  }

 private:
  std::string rule_name(const RuleAst& ast) const {
    return std::string(symbols_.name(ast.name));
  }

  TemplateId resolve_template(Symbol name, int line) const {
    if (auto id = schema_.find(name)) return *id;
    throw ParseError("unknown template '" +
                         std::string(symbols_.name(name)) + "'",
                     line);
  }

  int resolve_slot(TemplateId tmpl, Symbol slot, int line) const {
    if (auto idx = schema_.at(tmpl).slot_index(slot)) return *idx;
    throw ParseError("template '" +
                         std::string(symbols_.name(schema_.at(tmpl).name)) +
                         "' has no slot '" +
                         std::string(symbols_.name(slot)) + "'",
                     line);
  }

  std::uint32_t intern_alpha(AlphaSpec spec) {
    auto key = alpha_key(spec);
    if (auto it = alpha_index_.find(key); it != alpha_index_.end()) {
      return it->second;
    }
    const auto id = static_cast<std::uint32_t>(alphas_.size());
    alphas_.push_back(std::move(spec));
    alpha_index_.emplace(std::move(key), id);
    return id;
  }

  void compile_pattern(const PatternCEAst& ast, CompiledRule& rule,
                       int source_pos) {
    CompiledPattern pat;
    pat.tmpl = resolve_template(ast.tmpl, ast.line);
    pat.negated = ast.negated;
    pat.exists = ast.exists;

    // Local map: variable -> first slot within this pattern (for
    // intra-pattern equality and for negated-CE local variables).
    std::unordered_map<Symbol, int> local_first;

    for (const auto& slot_ast : ast.slots) {
      const int slot = resolve_slot(pat.tmpl, slot_ast.slot, ast.line);
      switch (slot_ast.kind) {
        case SlotPatternAst::Kind::Const:
          pat.const_tests.push_back({slot, slot_ast.constant});
          break;
        case SlotPatternAst::Kind::Wildcard:
          break;
        case SlotPatternAst::Kind::Var: {
          const Symbol v = slot_ast.var;
          // A repeat within THIS pattern is an intra-pattern equality
          // (alpha test) even when the variable is also rule-bound: the
          // join machinery applies join_eqs before this fact's defines,
          // so the second occurrence must not be a join test.
          if (auto lit = local_first.find(v); lit != local_first.end()) {
            pat.intra_eqs.push_back({lit->second, slot});
          } else if (auto it = var_ids_.find(v); it != var_ids_.end()) {
            // Bound by an earlier pattern: beta join test.
            pat.join_eqs.push_back({slot, it->second});
            local_first.emplace(v, slot);
          } else if (ast.negated) {
            // Negated CEs bind no rule variables; first occurrence is an
            // existential local.
            local_first.emplace(v, slot);
          } else {
            const auto vid = static_cast<VarId>(var_ids_.size());
            var_ids_.emplace(v, vid);
            local_first.emplace(v, slot);
            pat.defines.push_back({slot, vid});
          }
          break;
        }
      }
    }

    AlphaSpec spec{pat.tmpl, pat.const_tests, pat.intra_eqs};
    pat.alpha = intern_alpha(std::move(spec));

    if (ast.negated) {
      if (ast.fact_var != 0) {
        throw ParseError("negated pattern cannot bind a fact variable",
                         ast.line);
      }
      rule.negatives.push_back(std::move(pat));
      return;
    }

    if (ast.fact_var != 0) {
      if (var_ids_.contains(ast.fact_var) ||
          fact_vars_.contains(ast.fact_var)) {
        throw ParseError("fact variable name already in use", ast.line);
      }
      fact_vars_.emplace(ast.fact_var,
                         static_cast<int>(rule.positives.size()));
    }
    rule.positives.push_back(std::move(pat));
    rule.source_positions.push_back(source_pos);
    rule.guards.emplace_back();
  }

  void compile_test(const TestCEAst& ast, CompiledRule& rule) {
    if (rule.positives.empty()) {
      throw ParseError("(test ...) before any positive pattern", ast.line);
    }
    CompiledExpr expr = compile_expr(ast.expr);
    std::vector<VarId> used;
    expr.collect_vars(used);
    // Verify every variable is bound by the positives seen so far.
    for (VarId v : used) {
      if (v < 0 || v >= static_cast<VarId>(var_ids_.size())) {
        throw ParseError("test references unbound variable", ast.line);
      }
    }
    rule.guards.back().push_back(std::move(expr));
  }

  CompiledExpr compile_expr(const ExprAst& ast) {
    switch (ast.kind) {
      case ExprAst::Kind::Const:
        return CompiledExpr::make_const(ast.constant);
      case ExprAst::Kind::Var: {
        if (auto it = var_ids_.find(ast.var); it != var_ids_.end()) {
          return CompiledExpr::make_var(it->second);
        }
        throw ParseError("unbound variable '?" +
                             std::string(symbols_.name(ast.var)) + "'",
                         ast.line);
      }
      case ExprAst::Kind::Call: {
        CompiledExpr e;
        e.op = resolve_op(ast);
        for (const auto& arg : ast.args) e.args.push_back(compile_expr(arg));
        check_arity(e, ast);
        return e;
      }
    }
    throw ParseError("bad expression", ast.line);
  }

  ExprOp resolve_op(const ExprAst& ast) const {
    const std::string_view op = symbols_.name(ast.op);
    if (op == "+") return ExprOp::Add;
    if (op == "-") return ast.args.size() == 1 ? ExprOp::Neg : ExprOp::Sub;
    if (op == "*") return ExprOp::Mul;
    if (op == "/" || op == "div") return ExprOp::Div;
    if (op == "mod") return ExprOp::Mod;
    if (op == "min") return ExprOp::Min;
    if (op == "max") return ExprOp::Max;
    if (op == "abs") return ExprOp::Abs;
    if (op == "<") return ExprOp::Lt;
    if (op == "<=") return ExprOp::Le;
    if (op == ">") return ExprOp::Gt;
    if (op == ">=") return ExprOp::Ge;
    if (op == "=" || op == "==" || op == "eq") return ExprOp::Eq;
    if (op == "!=" || op == "<>" || op == "neq") return ExprOp::Ne;
    if (op == "and") return ExprOp::And;
    if (op == "or") return ExprOp::Or;
    if (op == "not") return ExprOp::Not;
    throw ParseError("unknown operator '" + std::string(op) + "'", ast.line);
  }

  void check_arity(const CompiledExpr& e, const ExprAst& ast) const {
    const std::size_t n = e.args.size();
    bool ok = true;
    switch (e.op) {
      case ExprOp::Neg: case ExprOp::Abs: case ExprOp::Not:
        ok = (n == 1);
        break;
      case ExprOp::Lt: case ExprOp::Le: case ExprOp::Gt: case ExprOp::Ge:
      case ExprOp::Eq: case ExprOp::Ne:
        ok = (n == 2);
        break;
      case ExprOp::Add: case ExprOp::Sub: case ExprOp::Mul: case ExprOp::Div:
      case ExprOp::Mod: case ExprOp::Min: case ExprOp::Max:
      case ExprOp::And: case ExprOp::Or:
        ok = (n >= 2);
        break;
      default:
        break;
    }
    if (!ok) {
      throw ParseError("wrong operand count for operator", ast.line);
    }
  }

  CompiledAction compile_action(const ActionAst& ast, const RuleAst& rule_ast,
                                CompiledRule& rule) {
    CompiledAction act;
    switch (ast.kind) {
      case ActionAst::Kind::Assert: {
        act.kind = CompiledAction::Kind::Assert;
        act.tmpl = resolve_template(ast.tmpl, ast.line);
        const TemplateDef& def = schema_.at(act.tmpl);
        act.slot_values.assign(static_cast<std::size_t>(def.arity()),
                               CompiledExpr{});
        std::vector<bool> seen(static_cast<std::size_t>(def.arity()), false);
        for (const auto& [slot_sym, expr] : ast.slot_exprs) {
          const int slot = resolve_slot(act.tmpl, slot_sym, ast.line);
          if (seen[static_cast<std::size_t>(slot)]) {
            throw ParseError("slot assigned twice in assert", ast.line);
          }
          seen[static_cast<std::size_t>(slot)] = true;
          act.slot_values[static_cast<std::size_t>(slot)] =
              compile_expr(expr);
        }
        for (std::size_t i = 0; i < seen.size(); ++i) {
          if (!seen[i]) {
            throw ParseError(
                "assert must give every slot a value (missing '" +
                    std::string(symbols_.name(def.slot_names[i])) + "')",
                ast.line);
          }
        }
        break;
      }
      case ActionAst::Kind::Retract:
      case ActionAst::Kind::Modify: {
        act.kind = ast.kind == ActionAst::Kind::Retract
                       ? CompiledAction::Kind::Retract
                       : CompiledAction::Kind::Modify;
        auto it = fact_vars_.find(ast.fact_var);
        if (it == fact_vars_.end()) {
          throw ParseError("unknown fact variable '?" +
                               std::string(symbols_.name(ast.fact_var)) + "'",
                           ast.line);
        }
        act.ce_index = it->second;
        if (act.kind == CompiledAction::Kind::Modify) {
          const TemplateId tmpl =
              rule.positives[static_cast<std::size_t>(act.ce_index)].tmpl;
          for (const auto& [slot_sym, expr] : ast.slot_exprs) {
            const int slot = resolve_slot(tmpl, slot_sym, ast.line);
            act.slot_updates.emplace_back(slot, compile_expr(expr));
          }
          if (act.slot_updates.empty()) {
            throw ParseError("modify with no slot updates", ast.line);
          }
        }
        break;
      }
      case ActionAst::Kind::Bind: {
        act.kind = CompiledAction::Kind::Bind;
        if (var_ids_.contains(ast.bind_var)) {
          throw ParseError("bind cannot rebind an existing variable",
                           ast.line);
        }
        const auto vid = static_cast<VarId>(var_ids_.size());
        var_ids_.emplace(ast.bind_var, vid);
        act.bind_var = vid;
        act.args.push_back(compile_expr(ast.args.at(0)));
        break;
      }
      case ActionAst::Kind::Halt:
        if (rule_ast.is_meta) {
          throw ParseError("halt is not valid in a meta-rule", ast.line);
        }
        act.kind = CompiledAction::Kind::Halt;
        break;
      case ActionAst::Kind::Printout: {
        act.kind = CompiledAction::Kind::Printout;
        for (const auto& arg : ast.args) {
          act.args.push_back(compile_expr(arg));
        }
        break;
      }
      case ActionAst::Kind::Redact: {
        if (!rule_ast.is_meta) {
          throw ParseError("redact is only valid in defmetarule", ast.line);
        }
        act.kind = CompiledAction::Kind::Redact;
        act.args.push_back(compile_expr(ast.args.at(0)));
        break;
      }
    }
    return act;
  }

  SymbolTable& symbols_;
  const Schema& schema_;
  std::vector<AlphaSpec>& alphas_;
  std::map<std::vector<std::int64_t>, std::uint32_t> alpha_index_;

  std::unordered_map<Symbol, VarId> var_ids_;
  std::unordered_map<Symbol, int> fact_vars_;
};

GroundFact lower_ground_fact(const PatternCEAst& pat, const Schema& schema,
                             SymbolTable& symbols) {
  auto tmpl = schema.find(pat.tmpl);
  if (!tmpl) {
    throw ParseError("deffacts references unknown template '" +
                         std::string(symbols.name(pat.tmpl)) + "'",
                     pat.line);
  }
  const TemplateDef& def = schema.at(*tmpl);
  GroundFact fact;
  fact.tmpl = *tmpl;
  fact.slots.assign(static_cast<std::size_t>(def.arity()), Value{});
  std::vector<bool> seen(static_cast<std::size_t>(def.arity()), false);
  for (const auto& slot_ast : pat.slots) {
    if (slot_ast.kind != SlotPatternAst::Kind::Const) {
      throw ParseError("deffacts facts must be ground (no variables)",
                       pat.line);
    }
    auto idx = def.slot_index(slot_ast.slot);
    if (!idx) throw ParseError("unknown slot in deffacts", pat.line);
    fact.slots[static_cast<std::size_t>(*idx)] = slot_ast.constant;
    seen[static_cast<std::size_t>(*idx)] = true;
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    if (!seen[i]) {
      throw ParseError("deffacts fact missing slot '" +
                           std::string(symbols.name(def.slot_names[i])) + "'",
                       pat.line);
    }
  }
  return fact;
}

}  // namespace

Program analyze(const ProgramAst& ast, std::shared_ptr<SymbolTable> symbols) {
  Program prog;
  prog.symbols = std::move(symbols);
  SymbolTable& syms = *prog.symbols;

  // 1. Templates.
  for (const auto& tmpl : ast.templates) {
    try {
      prog.schema.define(tmpl.name, tmpl.slots);
    } catch (const ParseError& e) {
      throw ParseError(e.what(), tmpl.line);
    }
  }

  // 2. Object rules.
  RuleCompiler object_compiler(syms, prog.schema, prog.alphas);
  for (const auto& rule_ast : ast.rules) {
    if (rule_ast.is_meta) continue;
    prog.rules.push_back(object_compiler.compile(
        rule_ast, static_cast<RuleId>(prog.rules.size())));
  }

  // 3. Meta schema: (inst-<rule> (slot id) (slot <var>)...) per rule.
  const Symbol id_sym = syms.intern("id");
  prog.inst_templates.reserve(prog.rules.size());
  for (const auto& rule : prog.rules) {
    std::vector<Symbol> slots;
    slots.push_back(id_sym);
    for (int v = 0; v < rule.num_lhs_vars; ++v) {
      const Symbol name = rule.var_names[static_cast<std::size_t>(v)];
      if (name == id_sym) {
        throw ParseError("variable name 'id' is reserved (rule '" +
                         std::string(syms.name(rule.name)) + "')");
      }
      slots.push_back(name);
    }
    const Symbol inst_name =
        syms.intern("inst-" + std::string(syms.name(rule.name)));
    prog.inst_templates.push_back(
        prog.meta_schema.define(inst_name, std::move(slots)));
  }

  // 4. Meta rules against the meta schema.
  RuleCompiler meta_compiler(syms, prog.meta_schema, prog.meta_alphas);
  for (const auto& rule_ast : ast.rules) {
    if (!rule_ast.is_meta) continue;
    prog.meta_rules.push_back(meta_compiler.compile(
        rule_ast, static_cast<RuleId>(prog.meta_rules.size())));
  }

  // 5. Initial facts.
  for (const auto& df : ast.facts) {
    for (const auto& pat : df.facts) {
      prog.initial_facts.push_back(lower_ground_fact(pat, prog.schema, syms));
    }
  }

  return prog;
}

}  // namespace parulel
