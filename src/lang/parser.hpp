// Recursive-descent parser: token stream -> ProgramAst.
#pragma once

#include <string_view>

#include "lang/ast.hpp"
#include "support/symbol_table.hpp"

namespace parulel {

/// Parse a whole source file into an AST, interning names into `symbols`.
/// Throws ParseError with line information on malformed input.
ProgramAst parse_ast(std::string_view source, SymbolTable& symbols);

}  // namespace parulel
