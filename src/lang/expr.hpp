// Compiled, evaluable expressions.
//
// Expressions appear in test CEs (guards), RHS slot values, bind bodies,
// printout items, and meta-rule redact targets. Variables are resolved to
// dense per-rule VarIds at analysis time, so evaluation is an array walk
// over the instantiation's binding environment.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/value.hpp"

namespace parulel {

/// Per-rule dense variable index. LHS pattern variables come first,
/// RHS (bind) locals after.
using VarId = std::int32_t;
constexpr VarId kInvalidVar = -1;

enum class ExprOp : std::uint8_t {
  Const, Var,
  // Arithmetic (numeric; Int op Int stays Int, otherwise Float).
  Add, Sub, Mul, Div, Mod, Neg, Abs, Min, Max,
  // Comparisons (numeric; result Int 0/1).
  Lt, Le, Gt, Ge,
  // Structural equality on any kinds (result Int 0/1).
  Eq, Ne,
  // Boolean connectives (operands truthy = nonzero Int / nonzero Float).
  And, Or, Not,
  // Internal (not parseable): args = {value-expr, Const site, Const
  // nsites}; true when hash(value) % nsites == site. Injected by the
  // copy-and-constrain transformation (distrib/copy_constrain.hpp) so a
  // rule copy only matches its site's slice of working memory.
  OwnSite,
};

/// An expression tree node. Small tree, owned inline.
struct CompiledExpr {
  ExprOp op = ExprOp::Const;
  Value constant;        // Const
  VarId var = kInvalidVar;  // Var
  std::vector<CompiledExpr> args;

  /// Evaluate under `env` (indexed by VarId). Throws RuntimeError on
  /// ill-typed operations (e.g. arithmetic on symbols).
  Value eval(std::span<const Value> env) const;

  /// Truthiness of an evaluated result: any nonzero number; symbols are
  /// truthy except the symbol interned for "nil"/"false"? No — symbols
  /// are an error in boolean position; guards must produce numbers.
  static bool truthy(const Value& v);

  /// All VarIds referenced by this expression, appended to `out`.
  void collect_vars(std::vector<VarId>& out) const;

  static CompiledExpr make_const(Value v) {
    CompiledExpr e;
    e.op = ExprOp::Const;
    e.constant = v;
    return e;
  }
  static CompiledExpr make_var(VarId id) {
    CompiledExpr e;
    e.op = ExprOp::Var;
    e.var = id;
    return e;
  }
};

}  // namespace parulel
