// Abstract syntax for parsed-but-unanalyzed programs.
//
// The parser produces this tree; the analyzer lowers it to the compiled
// Program (see program.hpp) with resolved template/slot/variable indices.
#pragma once

#include <variant>
#include <vector>

#include "support/symbol_table.hpp"
#include "support/value.hpp"

namespace parulel {

/// Expression tree (test CEs, RHS slot values, bind bodies).
struct ExprAst {
  enum class Kind { Const, Var, Call };
  Kind kind = Kind::Const;
  Value constant;               // Const
  Symbol var = 0;               // Var: variable name (no '?')
  Symbol op = 0;                // Call: operator name
  std::vector<ExprAst> args;    // Call
  int line = 0;
};

/// One slot constraint inside a pattern CE.
struct SlotPatternAst {
  enum class Kind { Const, Var, Wildcard };
  Symbol slot = 0;
  Kind kind = Kind::Wildcard;
  Value constant;
  Symbol var = 0;
};

/// Positive, negated, or existential pattern condition element.
struct PatternCEAst {
  Symbol tmpl = 0;
  std::vector<SlotPatternAst> slots;
  bool negated = false;
  bool exists = false;  ///< (exists (pat)): quantified, like `not` inverted
  Symbol fact_var = 0;  ///< `?f <- (pat ...)` binding; 0 when absent
  int line = 0;
};

/// `(test <expr>)` condition element.
struct TestCEAst {
  ExprAst expr;
  int line = 0;
};

using CEAst = std::variant<PatternCEAst, TestCEAst>;

/// RHS action.
struct ActionAst {
  enum class Kind { Assert, Retract, Modify, Bind, Halt, Printout, Redact };
  Kind kind = Kind::Halt;
  Symbol tmpl = 0;  // Assert
  std::vector<std::pair<Symbol, ExprAst>> slot_exprs;  // Assert / Modify
  Symbol fact_var = 0;   // Retract / Modify target
  Symbol bind_var = 0;   // Bind
  std::vector<ExprAst> args;  // Printout items; Redact id expr in args[0]
  int line = 0;
};

struct TemplateAst {
  Symbol name = 0;
  std::vector<Symbol> slots;
  int line = 0;
};

struct RuleAst {
  Symbol name = 0;
  int salience = 0;
  bool is_meta = false;
  std::vector<CEAst> lhs;
  std::vector<ActionAst> rhs;
  int line = 0;
};

/// `(deffacts name (tmpl (slot const)...) ...)` — ground facts only.
struct DeffactsAst {
  Symbol name = 0;
  std::vector<PatternCEAst> facts;
  int line = 0;
};

struct ProgramAst {
  std::vector<TemplateAst> templates;
  std::vector<RuleAst> rules;       // object-level and meta, in order
  std::vector<DeffactsAst> facts;
};

}  // namespace parulel
