#include "lang/parser.hpp"

#include <string>

#include "lang/lexer.hpp"
#include "support/error.hpp"

namespace parulel {
namespace {

/// Cursor over the token vector with helpers for the s-expression shape.
class Parser {
 public:
  Parser(std::vector<Token> tokens, SymbolTable& symbols)
      : tokens_(std::move(tokens)), symbols_(symbols) {}

  ProgramAst parse_program() {
    ProgramAst out;
    while (!at(TokenKind::End)) {
      expect(TokenKind::LParen, "top-level form");
      const Token& head = expect(TokenKind::Name, "form keyword");
      if (head.text == "deftemplate") {
        out.templates.push_back(parse_template());
      } else if (head.text == "defrule") {
        out.rules.push_back(parse_rule(/*is_meta=*/false));
      } else if (head.text == "defmetarule") {
        out.rules.push_back(parse_rule(/*is_meta=*/true));
      } else if (head.text == "deffacts") {
        out.facts.push_back(parse_deffacts());
      } else {
        throw ParseError("unknown top-level form '" + head.text + "'",
                         head.line);
      }
    }
    return out;
  }

 private:
  const Token& peek() const { return tokens_[pos_]; }
  const Token& advance() { return tokens_[pos_++]; }
  bool at(TokenKind k) const { return peek().kind == k; }

  const Token& expect(TokenKind k, const char* what) {
    if (!at(k)) {
      throw ParseError(std::string("expected ") + what + ", found '" +
                           peek().text + "'",
                       peek().line);
    }
    return advance();
  }

  Symbol intern(const std::string& text) { return symbols_.intern(text); }

  TemplateAst parse_template() {
    TemplateAst tmpl;
    tmpl.line = peek().line;
    tmpl.name = intern(expect(TokenKind::Name, "template name").text);
    while (at(TokenKind::LParen)) {
      advance();
      const Token& kw = expect(TokenKind::Name, "'slot'");
      if (kw.text != "slot") {
        throw ParseError("expected (slot name) in deftemplate", kw.line);
      }
      tmpl.slots.push_back(intern(expect(TokenKind::Name, "slot name").text));
      expect(TokenKind::RParen, "')'");
    }
    expect(TokenKind::RParen, "')' closing deftemplate");
    return tmpl;
  }

  DeffactsAst parse_deffacts() {
    DeffactsAst df;
    df.line = peek().line;
    df.name = intern(expect(TokenKind::Name, "deffacts name").text);
    while (at(TokenKind::LParen)) {
      df.facts.push_back(parse_pattern(/*negated=*/false));
    }
    expect(TokenKind::RParen, "')' closing deffacts");
    return df;
  }

  RuleAst parse_rule(bool is_meta) {
    RuleAst rule;
    rule.is_meta = is_meta;
    rule.line = peek().line;
    rule.name = intern(expect(TokenKind::Name, "rule name").text);

    // Optional (declare (salience N)).
    if (at(TokenKind::LParen) && tokens_[pos_ + 1].kind == TokenKind::Name &&
        tokens_[pos_ + 1].text == "declare") {
      advance();  // (
      advance();  // declare
      expect(TokenKind::LParen, "'(salience N)'");
      const Token& kw = expect(TokenKind::Name, "'salience'");
      if (kw.text != "salience") {
        throw ParseError("only (salience N) is supported in declare", kw.line);
      }
      const Token& num = expect(TokenKind::Integer, "salience value");
      rule.salience = static_cast<int>(num.int_value);
      expect(TokenKind::RParen, "')'");
      expect(TokenKind::RParen, "')' closing declare");
    }

    // LHS condition elements until `=>`.
    while (!at(TokenKind::Arrow)) {
      rule.lhs.push_back(parse_ce());
    }
    advance();  // =>

    // RHS actions until the closing paren of the rule.
    while (at(TokenKind::LParen)) {
      rule.rhs.push_back(parse_action());
    }
    expect(TokenKind::RParen, "')' closing rule");
    return rule;
  }

  CEAst parse_ce() {
    // Either `?f <- (pattern)` or `(pattern)` / `(not (pattern))` /
    // `(test expr)`.
    if (at(TokenKind::Variable)) {
      const Token& var = advance();
      const Token& arrow = expect(TokenKind::Name, "'<-'");
      if (arrow.text != "<-") {
        throw ParseError("expected '<-' after fact variable", arrow.line);
      }
      PatternCEAst pat = parse_pattern(/*negated=*/false);
      if (var.text.empty()) {
        throw ParseError("fact variable must be named", var.line);
      }
      pat.fact_var = intern(var.text);
      return pat;
    }

    expect(TokenKind::LParen, "condition element");
    const Token& head = expect(TokenKind::Name, "pattern head");
    if (head.text == "not") {
      PatternCEAst pat = parse_pattern(/*negated=*/true);
      expect(TokenKind::RParen, "')' closing not");
      return pat;
    }
    if (head.text == "exists") {
      PatternCEAst pat = parse_pattern(/*negated=*/true);
      pat.exists = true;
      expect(TokenKind::RParen, "')' closing exists");
      return pat;
    }
    if (head.text == "test") {
      TestCEAst test;
      test.line = head.line;
      test.expr = parse_expr();
      expect(TokenKind::RParen, "')' closing test");
      return test;
    }
    // Plain pattern: head was the template name; rewind conceptually by
    // parsing the body here.
    return parse_pattern_body(intern(head.text), head.line,
                              /*negated=*/false);
  }

  /// Parses `(tmpl (slot val)...)` including the opening paren.
  PatternCEAst parse_pattern(bool negated) {
    expect(TokenKind::LParen, "pattern");
    const Token& head = expect(TokenKind::Name, "template name");
    return parse_pattern_body(intern(head.text), head.line, negated);
  }

  /// Parses slot constraints and the closing paren; head already consumed.
  PatternCEAst parse_pattern_body(Symbol tmpl, int line, bool negated) {
    PatternCEAst pat;
    pat.tmpl = tmpl;
    pat.negated = negated;
    pat.line = line;
    while (at(TokenKind::LParen)) {
      advance();
      SlotPatternAst slot;
      slot.slot = intern(expect(TokenKind::Name, "slot name").text);
      const Token& v = advance();
      switch (v.kind) {
        case TokenKind::Variable:
          if (v.text.empty()) {
            slot.kind = SlotPatternAst::Kind::Wildcard;
          } else {
            slot.kind = SlotPatternAst::Kind::Var;
            slot.var = intern(v.text);
          }
          break;
        case TokenKind::Integer:
          slot.kind = SlotPatternAst::Kind::Const;
          slot.constant = Value::integer(v.int_value);
          break;
        case TokenKind::Float:
          slot.kind = SlotPatternAst::Kind::Const;
          slot.constant = Value::real(v.float_value);
          break;
        case TokenKind::Name:
        case TokenKind::String:
          slot.kind = SlotPatternAst::Kind::Const;
          slot.constant = Value::symbol(intern(v.text));
          break;
        default:
          throw ParseError("bad slot constraint", v.line);
      }
      expect(TokenKind::RParen, "')' closing slot");
      pat.slots.push_back(std::move(slot));
    }
    expect(TokenKind::RParen, "')' closing pattern");
    return pat;
  }

  ActionAst parse_action() {
    expect(TokenKind::LParen, "action");
    const Token& head = expect(TokenKind::Name, "action keyword");
    ActionAst act;
    act.line = head.line;

    if (head.text == "assert") {
      act.kind = ActionAst::Kind::Assert;
      expect(TokenKind::LParen, "fact to assert");
      act.tmpl = intern(expect(TokenKind::Name, "template name").text);
      while (at(TokenKind::LParen)) {
        advance();
        Symbol slot = intern(expect(TokenKind::Name, "slot name").text);
        ExprAst value = parse_expr();
        expect(TokenKind::RParen, "')' closing slot value");
        act.slot_exprs.emplace_back(slot, std::move(value));
      }
      expect(TokenKind::RParen, "')' closing fact");
    } else if (head.text == "retract") {
      act.kind = ActionAst::Kind::Retract;
      const Token& v = expect(TokenKind::Variable, "fact variable");
      if (v.text.empty()) throw ParseError("retract needs a named fact variable", v.line);
      act.fact_var = intern(v.text);
    } else if (head.text == "modify") {
      act.kind = ActionAst::Kind::Modify;
      const Token& v = expect(TokenKind::Variable, "fact variable");
      if (v.text.empty()) throw ParseError("modify needs a named fact variable", v.line);
      act.fact_var = intern(v.text);
      while (at(TokenKind::LParen)) {
        advance();
        Symbol slot = intern(expect(TokenKind::Name, "slot name").text);
        ExprAst value = parse_expr();
        expect(TokenKind::RParen, "')' closing slot value");
        act.slot_exprs.emplace_back(slot, std::move(value));
      }
    } else if (head.text == "bind") {
      act.kind = ActionAst::Kind::Bind;
      const Token& v = expect(TokenKind::Variable, "variable");
      if (v.text.empty()) throw ParseError("bind needs a named variable", v.line);
      act.bind_var = intern(v.text);
      act.args.push_back(parse_expr());
    } else if (head.text == "halt") {
      act.kind = ActionAst::Kind::Halt;
    } else if (head.text == "printout") {
      act.kind = ActionAst::Kind::Printout;
      while (!at(TokenKind::RParen)) act.args.push_back(parse_expr());
    } else if (head.text == "redact") {
      act.kind = ActionAst::Kind::Redact;
      act.args.push_back(parse_expr());
    } else {
      throw ParseError("unknown action '" + head.text + "'", head.line);
    }

    expect(TokenKind::RParen, "')' closing action");
    return act;
  }

  ExprAst parse_expr() {
    const Token& t = advance();
    ExprAst e;
    e.line = t.line;
    switch (t.kind) {
      case TokenKind::Integer:
        e.kind = ExprAst::Kind::Const;
        e.constant = Value::integer(t.int_value);
        return e;
      case TokenKind::Float:
        e.kind = ExprAst::Kind::Const;
        e.constant = Value::real(t.float_value);
        return e;
      case TokenKind::String:
        e.kind = ExprAst::Kind::Const;
        e.constant = Value::symbol(intern(t.text));
        return e;
      case TokenKind::Name:
        // A bare name in expression position is a symbolic constant.
        e.kind = ExprAst::Kind::Const;
        e.constant = Value::symbol(intern(t.text));
        return e;
      case TokenKind::Variable:
        if (t.text.empty()) {
          throw ParseError("wildcard '?' is not valid in expressions",
                           t.line);
        }
        e.kind = ExprAst::Kind::Var;
        e.var = intern(t.text);
        return e;
      case TokenKind::LParen: {
        const Token& op = expect(TokenKind::Name, "operator");
        e.kind = ExprAst::Kind::Call;
        e.op = intern(op.text);
        while (!at(TokenKind::RParen)) e.args.push_back(parse_expr());
        advance();  // )
        return e;
      }
      default:
        throw ParseError("bad expression", t.line);
    }
  }

  std::vector<Token> tokens_;
  SymbolTable& symbols_;
  std::size_t pos_ = 0;
};

}  // namespace

ProgramAst parse_ast(std::string_view source, SymbolTable& symbols) {
  return Parser(tokenize(source), symbols).parse_program();
}

}  // namespace parulel
