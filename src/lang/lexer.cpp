#include "lang/lexer.hpp"

#include <cctype>
#include <charconv>
#include <string>

#include "support/error.hpp"

namespace parulel {
namespace {

bool is_name_char(char c) {
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  switch (c) {
    case '-': case '+': case '*': case '/': case '<': case '>':
    case '=': case '!': case '_': case '.': case '&': case '~':
    case '%': case '$': case ':':
      return true;
    default:
      return false;
  }
}

/// True when `text` parses fully as a number; fills the token fields.
bool try_number(const std::string& text, Token& tok) {
  if (text.empty()) return false;
  // Reject pure operator tokens like "-" or "+" or "<=".
  bool has_digit = false;
  for (char c : text) {
    if (std::isdigit(static_cast<unsigned char>(c))) has_digit = true;
  }
  if (!has_digit) return false;

  std::int64_t iv = 0;
  auto ir = std::from_chars(text.data(), text.data() + text.size(), iv);
  if (ir.ec == std::errc{} && ir.ptr == text.data() + text.size()) {
    tok.kind = TokenKind::Integer;
    tok.int_value = iv;
    return true;
  }
  double fv = 0.0;
  auto fr = std::from_chars(text.data(), text.data() + text.size(), fv);
  if (fr.ec == std::errc{} && fr.ptr == text.data() + text.size()) {
    tok.kind = TokenKind::Float;
    tok.float_value = fv;
    return true;
  }
  return false;
}

}  // namespace

std::vector<Token> tokenize(std::string_view source) {
  std::vector<Token> out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = source.size();

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == ';') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (c == '(') {
      out.push_back(Token{TokenKind::LParen, "(", 0, 0.0, line});
      ++i;
      continue;
    }
    if (c == ')') {
      out.push_back(Token{TokenKind::RParen, ")", 0, 0.0, line});
      ++i;
      continue;
    }
    if (c == '"') {
      std::string text;
      ++i;
      while (i < n && source[i] != '"') {
        if (source[i] == '\n') ++line;
        if (source[i] == '\\' && i + 1 < n) ++i;  // simple escapes
        text.push_back(source[i]);
        ++i;
      }
      if (i >= n) throw ParseError("unterminated string literal", line);
      ++i;  // closing quote
      out.push_back(Token{TokenKind::String, std::move(text), 0, 0.0, line});
      continue;
    }
    if (c == '?') {
      std::string text;
      ++i;
      while (i < n && is_name_char(source[i])) {
        text.push_back(source[i]);
        ++i;
      }
      // Bare `?` is an anonymous wildcard; represented as empty text.
      out.push_back(Token{TokenKind::Variable, std::move(text), 0, 0.0, line});
      continue;
    }
    if (is_name_char(c)) {
      std::string text;
      while (i < n && is_name_char(source[i])) {
        text.push_back(source[i]);
        ++i;
      }
      Token tok;
      tok.line = line;
      if (text == "=>") {
        tok.kind = TokenKind::Arrow;
        tok.text = text;
      } else if (!try_number(text, tok)) {
        tok.kind = TokenKind::Name;
        tok.text = text;
      } else {
        tok.text = text;
      }
      out.push_back(std::move(tok));
      continue;
    }
    throw ParseError(std::string("unexpected character '") + c + "'", line);
  }

  out.push_back(Token{TokenKind::End, "", 0, 0.0, line});
  return out;
}

}  // namespace parulel
