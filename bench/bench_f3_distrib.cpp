// R-F3 — Copy-and-constrain distributed scaling.
//
// Sites 1..8 on the partitionable workloads: wall time, speedup vs one
// site, messages per cycle, and broadcast count. Stands in for the
// PARADISER network-of-workstations measurements (see DESIGN.md
// substitution notes: sites are simulated in-process with explicit
// message accounting).
#include <algorithm>
#include <vector>

#include "bench_util.hpp"

using namespace parulel;
using namespace parulel::bench;

namespace {

DistStats run_dist(const Program& p, const workloads::Workload& w,
                   unsigned sites) {
  PartitionScheme scheme(p, w.partition);
  DistConfig cfg;
  cfg.sites = sites;
  DistributedEngine engine(p, std::move(scheme), cfg);
  engine.assert_initial_facts();
  return engine.run();
}

double median_wall_ms(const Program& p, const workloads::Workload& w,
                      unsigned sites, int reps) {
  std::vector<double> walls;
  for (int r = 0; r < reps; ++r) {
    walls.push_back(ms(run_dist(p, w, sites).run.wall_ns));
  }
  std::sort(walls.begin(), walls.end());
  return walls[walls.size() / 2];
}

}  // namespace

int main() {
  header("R-F3", "distributed scaling (simulated sites, message-counted)");

  const workloads::Workload all[] = {
      workloads::make_tc(192, 520, 7),
      workloads::make_waltz(128),
  };
  constexpr int kReps = 3;

  JsonReport json("R-F3");
  for (const auto& w : all) {
    const Program p = parse_program(w.source);
    std::printf("\n%s — %s\n", w.name.c_str(), w.description.c_str());
    std::printf("%6s %10s %10s %10s %10s %10s %8s\n", "sites", "wall-ms",
                "sim-ms", "sim-spdup", "messages", "bcasts", "cycles");
    double sim_base = 0;
    for (unsigned sites : {1u, 2u, 4u, 8u}) {
      const double wall = median_wall_ms(p, w, sites, kReps);
      const DistStats s = run_dist(p, w, sites);  // counters run
      const double sim = ms(s.sim_wall_ns);
      if (sites == 1) sim_base = sim;
      std::printf("%6u %10.1f %10.1f %10.2f %10llu %10llu %8llu\n", sites,
                  wall, sim, sim_base / sim,
                  static_cast<unsigned long long>(s.messages),
                  static_cast<unsigned long long>(s.broadcasts),
                  static_cast<unsigned long long>(s.run.cycles));
      json.add_run(w.name + "/sites" + std::to_string(sites), s.run,
                   {{"sites", static_cast<double>(sites)},
                    {"wall_ms", wall},
                    {"sim_ms", sim},
                    {"sim_speedup", sim_base / sim},
                    {"messages", static_cast<double>(s.messages)},
                    {"broadcasts", static_cast<double>(s.broadcasts)}});
    }
  }
  std::printf("\nsim-ms: per cycle, slowest site's compute time plus the\n"
              "serial routing — what concurrent sites would take (on a\n"
              "single-core host wall-ms cannot show overlap; DESIGN.md).\n"
              "Expected shape: simulated speedup grows with sites while\n"
              "the partition keeps firings local (waltz: zero messages);\n"
              "message volume, where present, grows with sites.\n");
  return 0;
}
