// R-T4 — Match algorithm comparison: RETE vs TREAT vs parallel TREAT.
//
// Google-benchmark microbenches over the synthetic join chain and the
// real workloads: time to fold the initial fact set into the conflict
// set, plus resident match state (beta tokens vs conflict-set entries).
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.hpp"
#include "parulel.hpp"
#include "support/timer.hpp"

namespace {

using namespace parulel;

struct Loaded {
  Program program;
  std::unique_ptr<ThreadPool> pool;
};

Loaded load(int which) {
  Loaded l;
  switch (which) {
    case 0:
      l.program = parse_program(
          workloads::make_synth(3, 220, 40, 17).source);
      break;
    case 1:
      l.program = parse_program(
          workloads::make_synth(5, 80, 16, 19).source);
      break;
    case 2:
      l.program = parse_program(workloads::make_waltz(8).source);
      break;
    default:
      l.program =
          parse_program(workloads::make_tc(72, 180, 7).source);
      break;
  }
  l.pool = std::make_unique<ThreadPool>(ThreadPool::default_threads());
  return l;
}

const char* kNames[] = {"synth3", "synth5", "waltz8", "tc72"};

constexpr MatcherKind kKinds[] = {MatcherKind::Rete, MatcherKind::Treat,
                                  MatcherKind::ParallelTreat};

std::unique_ptr<Matcher> build_matcher(const Loaded& l, int kind) {
  // One shared switch for the whole tree: the match-layer factory.
  return make_matcher(kKinds[kind], l.program, l.pool.get());
}

void BM_InitialMatch(benchmark::State& state) {
  const Loaded l = load(static_cast<int>(state.range(0)));
  const int kind = static_cast<int>(state.range(1));
  std::size_t cs = 0, resident = 0;
  for (auto _ : state) {
    state.PauseTiming();
    WorkingMemory wm(l.program.schema);
    for (const auto& f : l.program.initial_facts) {
      wm.assert_fact(f.tmpl, f.slots);
    }
    auto matcher = build_matcher(l, kind);
    state.ResumeTiming();

    matcher->apply_delta(wm, wm.drain_delta());
    benchmark::DoNotOptimize(matcher->conflict_set().size());

    cs = matcher->conflict_set().size();
    resident = matcher->stats().state_entries;
  }
  state.counters["conflict_set"] = static_cast<double>(cs);
  state.counters["state_entries"] = static_cast<double>(resident);
  state.SetLabel(kNames[state.range(0)]);
}

void BM_IncrementalRetractAssert(benchmark::State& state) {
  // Steady-state churn: retract and re-assert a slice of facts, measure
  // the delta fold. This is where RETE's stored joins pay off.
  const Loaded l = load(static_cast<int>(state.range(0)));
  const int kind = static_cast<int>(state.range(1));

  WorkingMemory wm(l.program.schema);
  for (const auto& f : l.program.initial_facts) {
    wm.assert_fact(f.tmpl, f.slots);
  }
  auto matcher = build_matcher(l, kind);
  matcher->apply_delta(wm, wm.drain_delta());

  // Pick a rotating victim set of facts to churn.
  std::vector<GroundFact> victims;
  for (std::size_t i = 0; i < l.program.initial_facts.size(); i += 10) {
    victims.push_back(l.program.initial_facts[i]);
  }

  for (auto _ : state) {
    for (const auto& v : victims) {
      if (auto id = wm.find(v.tmpl, v.slots)) wm.retract(*id);
    }
    matcher->apply_delta(wm, wm.drain_delta());
    for (const auto& v : victims) {
      wm.assert_fact(v.tmpl, v.slots);
    }
    matcher->apply_delta(wm, wm.drain_delta());
    benchmark::DoNotOptimize(matcher->conflict_set().size());
  }
  state.SetLabel(kNames[state.range(0)]);
}

}  // namespace

BENCHMARK(BM_InitialMatch)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1, 2}})
    ->ArgNames({"workload", "matcher(0=rete,1=treat,2=par)"})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_IncrementalRetractAssert)
    ->ArgsProduct({{0, 3}, {0, 1, 2}})
    ->ArgNames({"workload", "matcher(0=rete,1=treat,2=par)"})
    // Fixed iteration count: the churn grows matcher-internal state
    // (dedup/refraction memory) monotonically, so open-ended timing
    // would measure an ever-larger structure.
    ->Iterations(50)
    ->Unit(benchmark::kMillisecond);

namespace {

/// One-shot initial-match timings for the BENCH_R-T4.json trajectory
/// (google-benchmark's own output stays on the console; this is the
/// stable machine-readable record the other benches emit too).
void write_json_report() {
  parulel::bench::JsonReport json("R-T4");

  for (int which = 0; which < 4; ++which) {
    for (int kind = 0; kind < 3; ++kind) {
      const Loaded l = load(which);
      WorkingMemory wm(l.program.schema);
      for (const auto& f : l.program.initial_facts) {
        wm.assert_fact(f.tmpl, f.slots);
      }
      auto matcher = build_matcher(l, kind);
      const Timer t;
      matcher->apply_delta(wm, wm.drain_delta());
      const double match_ms = t.elapsed_ms();
      json.add_row(
          std::string(kNames[which]) + "/" + matcher_kind_name(kKinds[kind]),
          {{"initial_match_ms", match_ms},
           {"conflict_set",
            static_cast<double>(matcher->conflict_set().size())},
           {"state_entries",
            static_cast<double>(matcher->stats().state_entries)},
           {"alpha_activations",
            static_cast<double>(matcher->stats().alpha_activations)}});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_json_report();
  return 0;
}
