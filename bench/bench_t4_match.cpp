// R-T4 — Match algorithm comparison: RETE vs TREAT vs parallel TREAT
// vs the compiled bytecode VM.
//
// Google-benchmark microbenches over the synthetic join chain and the
// real workloads: time to fold the initial fact set into the conflict
// set, plus resident match state (beta tokens vs conflict-set entries).
//
// The BENCH_R-T4.json this emits doubles as a CI regression gate
// (scripts/check_bench_regression.py): every row carries a
// join-throughput figure, and a calibration row measures the host with
// a fixed deterministic spin so the gate can normalize away machine
// speed before comparing against the checked-in baseline.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "parulel.hpp"
#include "support/timer.hpp"

namespace {

using namespace parulel;

struct Loaded {
  Program program;
  std::unique_ptr<ThreadPool> pool;
};

Loaded load(int which) {
  Loaded l;
  switch (which) {
    case 0:
      l.program = parse_program(
          workloads::make_synth(3, 220, 40, 17).source);
      break;
    case 1:
      l.program = parse_program(
          workloads::make_synth(5, 80, 16, 19).source);
      break;
    case 2:
      l.program = parse_program(workloads::make_waltz(8).source);
      break;
    default:
      l.program =
          parse_program(workloads::make_tc(72, 180, 7).source);
      break;
  }
  l.pool = std::make_unique<ThreadPool>(ThreadPool::default_threads());
  return l;
}

const char* kNames[] = {"synth3", "synth5", "waltz8", "tc72"};

std::unique_ptr<Matcher> build_matcher(const Loaded& l, int kind) {
  // One shared switch for the whole tree: the match-layer factory.
  return make_matcher(all_matcher_kinds()[static_cast<std::size_t>(kind)],
                      l.program, l.pool.get());
}

std::vector<std::int64_t> matcher_indexes() {
  std::vector<std::int64_t> idx;
  for (std::size_t i = 0; i < all_matcher_kinds().size(); ++i) {
    idx.push_back(static_cast<std::int64_t>(i));
  }
  return idx;
}

void BM_InitialMatch(benchmark::State& state) {
  const Loaded l = load(static_cast<int>(state.range(0)));
  const int kind = static_cast<int>(state.range(1));
  std::size_t cs = 0, resident = 0;
  for (auto _ : state) {
    state.PauseTiming();
    WorkingMemory wm(l.program.schema);
    for (const auto& f : l.program.initial_facts) {
      wm.assert_fact(f.tmpl, f.slots);
    }
    auto matcher = build_matcher(l, kind);
    state.ResumeTiming();

    matcher->apply_delta(wm, wm.drain_delta());
    benchmark::DoNotOptimize(matcher->conflict_set().size());

    cs = matcher->conflict_set().size();
    resident = matcher->stats().state_entries;
  }
  state.counters["conflict_set"] = static_cast<double>(cs);
  state.counters["state_entries"] = static_cast<double>(resident);
  state.SetLabel(std::string(kNames[state.range(0)]) + "/" +
                 matcher_kind_name(
                     all_matcher_kinds()[static_cast<std::size_t>(kind)]));
}

void BM_IncrementalRetractAssert(benchmark::State& state) {
  // Steady-state churn: retract and re-assert a slice of facts, measure
  // the delta fold. This is where RETE's stored joins pay off.
  const Loaded l = load(static_cast<int>(state.range(0)));
  const int kind = static_cast<int>(state.range(1));

  WorkingMemory wm(l.program.schema);
  for (const auto& f : l.program.initial_facts) {
    wm.assert_fact(f.tmpl, f.slots);
  }
  auto matcher = build_matcher(l, kind);
  matcher->apply_delta(wm, wm.drain_delta());

  // Pick a rotating victim set of facts to churn.
  std::vector<GroundFact> victims;
  for (std::size_t i = 0; i < l.program.initial_facts.size(); i += 10) {
    victims.push_back(l.program.initial_facts[i]);
  }

  for (auto _ : state) {
    for (const auto& v : victims) {
      if (auto id = wm.find(v.tmpl, v.slots)) wm.retract(*id);
    }
    matcher->apply_delta(wm, wm.drain_delta());
    for (const auto& v : victims) {
      wm.assert_fact(v.tmpl, v.slots);
    }
    matcher->apply_delta(wm, wm.drain_delta());
    benchmark::DoNotOptimize(matcher->conflict_set().size());
  }
  state.SetLabel(std::string(kNames[state.range(0)]) + "/" +
                 matcher_kind_name(
                     all_matcher_kinds()[static_cast<std::size_t>(kind)]));
}

}  // namespace

BENCHMARK(BM_InitialMatch)
    ->ArgsProduct({{0, 1, 2, 3}, matcher_indexes()})
    ->ArgNames({"workload", "matcher"})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_IncrementalRetractAssert)
    ->ArgsProduct({{0, 3}, matcher_indexes()})
    ->ArgNames({"workload", "matcher"})
    // Fixed iteration count: the churn grows matcher-internal state
    // (dedup/refraction memory) monotonically, so open-ended timing
    // would measure an ever-larger structure.
    ->Iterations(50)
    ->Unit(benchmark::kMillisecond);

namespace {

/// A fixed, deterministic amount of scalar work timed on this host. The
/// regression gate divides throughputs by the spin ratio between the
/// current run and the baseline run, so a slower CI machine does not
/// read as a code regression (and a faster one does not mask it).
double calibration_spin_ms() {
  std::uint64_t x = 0x9e3779b97f4a7c15ull, acc = 0;
  const Timer t;
  for (int i = 0; i < 20'000'000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    acc += x;
  }
  benchmark::DoNotOptimize(acc);
  return t.elapsed_ms();
}

/// One-shot initial-match timings for the BENCH_R-T4.json trajectory
/// (google-benchmark's own output stays on the console; this is the
/// stable machine-readable record the other benches emit too). Each
/// configuration takes the best of several repetitions: the gate wants
/// the code's speed, not the scheduler's mood.
void write_json_report() {
  parulel::bench::JsonReport json("R-T4");
  json.add_row("calibration", {{"spin_ms", calibration_spin_ms()}});

  constexpr int kReps = 5;
  for (int which = 0; which < 4; ++which) {
    for (std::size_t kind = 0; kind < all_matcher_kinds().size(); ++kind) {
      const Loaded l = load(which);
      double best_ms = 0.0;
      std::size_t cs = 0, resident = 0;
      std::uint64_t insts = 0, activations = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        WorkingMemory wm(l.program.schema);
        for (const auto& f : l.program.initial_facts) {
          wm.assert_fact(f.tmpl, f.slots);
        }
        auto matcher = build_matcher(l, static_cast<int>(kind));
        const Timer t;
        matcher->apply_delta(wm, wm.drain_delta());
        const double match_ms = t.elapsed_ms();
        if (rep == 0 || match_ms < best_ms) best_ms = match_ms;
        cs = matcher->conflict_set().size();
        resident = matcher->stats().state_entries;
        insts = matcher->stats().insts_derived;
        activations = matcher->stats().alpha_activations;
      }
      json.add_row(
          std::string(kNames[which]) + "/" +
              matcher_kind_name(all_matcher_kinds()[kind]),
          {{"initial_match_ms", best_ms},
           {"throughput_inst_per_ms",
            static_cast<double>(insts) / best_ms},
           {"conflict_set", static_cast<double>(cs)},
           {"state_entries", static_cast<double>(resident)},
           {"alpha_activations", static_cast<double>(activations)}});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_json_report();
  return 0;
}
