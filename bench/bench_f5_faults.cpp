// R-F5 — Fault tolerance: message amplification and recovery overhead.
//
// The PARULEL/PARADISER target environment — networks of workstations —
// makes loss and site failure routine; this bench measures what the
// reliable routing layer pays for surviving them, and verifies along
// the way that every faulted run still reaches the fault-free fixpoint.
//
// Part A: message amplification vs injected loss rate. Amplification is
// transmission attempts over unique routed ops (sent / messages) — the
// retransmission tax. Expected shape: ~1.0 at zero loss, growing
// roughly like 1/(1-loss) plus ack-timeout overshoot as loss climbs.
//
// Part B: recovery overhead vs checkpoint interval, under a fixed
// mid-run crash. Sparser checkpoints mean more re-derivation after
// restore (more extra cycles vs the fault-free run) but fewer snapshot
// captures; the sweep exposes that trade.
#include <vector>

#include "bench_util.hpp"

using namespace parulel;
using namespace parulel::bench;

namespace {

struct DistOutcome {
  DistStats stats;
  std::uint64_t fingerprint = 0;
};

DistOutcome run_faulty(const Program& p, const workloads::Workload& w,
                       unsigned sites, const FaultPlan& plan,
                       std::uint64_t checkpoint_every) {
  PartitionScheme scheme(p, w.partition);
  DistConfig cfg;
  cfg.sites = sites;
  cfg.max_cycles = 100'000;
  cfg.faults = plan;
  cfg.checkpoint_every = checkpoint_every;
  DistributedEngine engine(p, std::move(scheme), cfg);
  engine.assert_initial_facts();
  DistOutcome out;
  out.stats = engine.run();
  out.fingerprint = engine.global_fingerprint();
  return out;
}

}  // namespace

int main() {
  header("R-F5", "fault injection: message amplification, recovery cost");

  const auto w = workloads::make_tc(96, 260, 7);
  const Program p = parse_program(w.source);
  constexpr unsigned kSites = 4;

  JsonReport json("R-F5");

  // Fault-free reference for both parts.
  const DistOutcome base = run_faulty(p, w, kSites, FaultPlan{}, 0);
  if (!base.stats.run.quiescent) {
    std::fprintf(stderr, "error: fault-free baseline did not quiesce\n");
    return 1;
  }

  std::printf("\n%s — %s\n", w.name.c_str(), w.description.c_str());
  std::printf("\nPart A: message amplification vs loss rate (sites=%u,\n"
              "checkpoint_every=4, seed=7)\n",
              kSites);
  std::printf("%8s %8s %10s %10s %10s %8s %6s\n", "loss", "cycles", "msgs",
              "sent", "amplif", "retries", "fp=");
  for (const double loss : {0.0, 0.05, 0.1, 0.2, 0.3}) {
    FaultPlan plan;
    plan.seed = 7;
    plan.loss_rate = loss;
    const DistOutcome out = run_faulty(p, w, kSites, plan, 4);
    const auto& f = out.stats.faults;
    const double amplification =
        out.stats.messages
            ? static_cast<double>(f.sent) /
                  static_cast<double>(out.stats.messages)
            : 1.0;
    const bool fp_ok = out.fingerprint == base.fingerprint;
    std::printf("%8.2f %8llu %10llu %10llu %10.2f %8llu %6s\n", loss,
                static_cast<unsigned long long>(out.stats.run.cycles),
                static_cast<unsigned long long>(out.stats.messages),
                static_cast<unsigned long long>(f.sent), amplification,
                static_cast<unsigned long long>(f.retries),
                fp_ok ? "yes" : "NO");
    if (!fp_ok) {
      std::fprintf(stderr, "error: loss=%.2f diverged from baseline\n",
                   loss);
      return 1;
    }
    json.add_dist("amplification/loss" + std::to_string(loss), out.stats,
                  {{"loss_rate", loss}, {"amplification", amplification}});
  }

  std::printf("\nPart B: recovery overhead vs checkpoint interval\n"
              "(crash: site 1 at cycle 3 for 3 cycles; loss=0.05)\n");
  std::printf("%10s %8s %8s %10s %10s %10s\n", "ckpt-int", "cycles",
              "extra", "ckpts", "restores", "retries");
  for (const std::uint64_t interval : {1u, 2u, 4u, 8u}) {
    FaultPlan plan;
    plan.seed = 7;
    plan.loss_rate = 0.05;
    plan.crashes.push_back({.site = 1, .at_cycle = 3, .down_cycles = 3});
    const DistOutcome out = run_faulty(p, w, kSites, plan, interval);
    const auto& f = out.stats.faults;
    const std::uint64_t extra =
        out.stats.run.cycles > base.stats.run.cycles
            ? out.stats.run.cycles - base.stats.run.cycles
            : 0;
    const bool fp_ok = out.fingerprint == base.fingerprint;
    std::printf("%10llu %8llu %8llu %10llu %10llu %10llu\n",
                static_cast<unsigned long long>(interval),
                static_cast<unsigned long long>(out.stats.run.cycles),
                static_cast<unsigned long long>(extra),
                static_cast<unsigned long long>(f.checkpoints),
                static_cast<unsigned long long>(f.restores),
                static_cast<unsigned long long>(f.retries));
    if (!fp_ok) {
      std::fprintf(stderr, "error: interval=%llu diverged from baseline\n",
                   static_cast<unsigned long long>(interval));
      return 1;
    }
    json.add_dist("recovery/ckpt" + std::to_string(interval), out.stats,
                  {{"checkpoint_every", static_cast<double>(interval)},
                   {"extra_cycles", static_cast<double>(extra)}});
  }

  std::printf("\nEvery row above converged to the fault-free fingerprint —\n"
              "the reliability invariant the test suite sweeps in detail\n"
              "(tests/test_faults.cpp). Amplification near 1/(1-loss) means\n"
              "retransmission, not duplication, dominates the overhead.\n");
  return 0;
}
