// R-F4 — Conflict-set dynamics over cycles.
//
// The per-cycle series behind the cycle-reduction table: eligible
// instantiations, redactions, firings, and WM churn for each workload
// under the PARULEL engine. The figure-shaped view of how parallelism
// rises and drains as saturation progresses.
#include <algorithm>

#include "bench_util.hpp"

using namespace parulel;
using namespace parulel::bench;

namespace {

void series(JsonReport& json, const workloads::Workload& w,
            std::size_t max_rows) {
  const Program p = parse_program(w.source);
  EngineConfig cfg;
  cfg.threads = 4;
  cfg.matcher = MatcherKind::ParallelTreat;
  cfg.trace_cycles = true;
  ParallelEngine engine(p, cfg);
  engine.assert_initial_facts();
  const RunStats s = engine.run();

  std::printf("\n%s — %s (%llu cycles)\n", w.name.c_str(),
              w.description.c_str(),
              static_cast<unsigned long long>(s.cycles));
  std::printf("%7s %12s %10s %8s %9s %9s\n", "cycle", "eligible",
              "redacted", "fired", "asserts", "retracts");
  for (std::size_t i = 0; i < s.per_cycle.size(); ++i) {
    if (i >= max_rows && i + 1 < s.per_cycle.size()) {
      if (i == max_rows) std::printf("    ...\n");
      continue;
    }
    const auto& c = s.per_cycle[i];
    std::printf("%7llu %12llu %10llu %8llu %9llu %9llu\n",
                static_cast<unsigned long long>(c.cycle),
                static_cast<unsigned long long>(c.conflict_set_size),
                static_cast<unsigned long long>(c.redacted),
                static_cast<unsigned long long>(c.fired),
                static_cast<unsigned long long>(c.asserts),
                static_cast<unsigned long long>(c.retracts));
  }
  std::uint64_t peak_fired = 0;
  for (const auto& c : s.per_cycle) peak_fired = std::max(peak_fired, c.fired);
  json.add_run(w.name, s,
               {{"peak_fired_per_cycle", static_cast<double>(peak_fired)}});
}

}  // namespace

int main() {
  header("R-F4", "conflict-set dynamics per cycle (PARULEL engine)");

  JsonReport json("R-F4");
  series(json, workloads::make_tc(64, 160, 7), 20);
  series(json, workloads::make_waltz(16), 20);
  series(json, workloads::make_life(10, 6, 5), 20);
  series(json, workloads::make_routing(48, 140, 11, true), 20);
  series(json, workloads::make_manners(16, 4, 11), 20);

  std::printf(
      "\nExpected shape: tc's eligible set swells then drains as the\n"
      "closure saturates; waltz spikes at the propagation fronts; life\n"
      "is a flat plateau (n*n per generation); routing decays as paths\n"
      "settle; manners holds a large eligible set but fires exactly one\n"
      "per cycle (all parallelism redacted away by its meta-rules).\n");
  return 0;
}
