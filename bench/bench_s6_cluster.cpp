// R-S6 — Multi-process cluster: what real sockets and real crashes
// cost relative to the in-process simulator.
//
// Part A: barrier throughput vs site count. The same transitive-closure
// workload is driven to quiescence by a ClusterDriver over 1..4
// parulel_site processes (fault-free, volatile sites), next to the
// single-process DistributedEngine running the identical partition.
// Every cluster leg must reproduce the simulator's global fingerprint
// bit for bit — a mismatch aborts the bench, because every other
// number in the table would then be measuring a broken cluster.
//
// Part B: the recovery-cost knob. A 3-site journaled cluster takes a
// real SIGKILL at a barrier boundary and the killed site rejoins from
// its WAL, at snapshot intervals from every-batch to effectively-never.
// Small intervals buy short replay at the price of constant snapshot
// rewrites; the table shows both sides (wall time, snapshots written,
// batches journaled) so the trade is explicit. Fingerprints are
// checked here too: a recovery that converges to the wrong state is a
// bench bug, not a data point.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "bench_util.hpp"
#include "distrib/cluster_driver.hpp"
#include "support/timer.hpp"
#include "workloads/workloads.hpp"

using namespace parulel;
using namespace parulel::bench;
namespace fs = std::filesystem;

namespace {

struct TempDir {
  fs::path path;
  TempDir()
      : path(fs::temp_directory_path() /
             ("parulel_bench_s6_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

std::string write_program(const TempDir& dir, const std::string& source) {
  const fs::path p = dir.path / "prog.clp";
  std::ofstream(p) << source;
  return p.string();
}

std::string partition_spec_of(const workloads::Workload& wl) {
  std::string spec;
  for (const auto& [tmpl, slot] : wl.partition) {
    if (!spec.empty()) spec += ",";
    spec += tmpl + "=" + slot;
  }
  return spec;
}

struct ClusterRun {
  ClusterOutcome out;
  double wall_ms = 0;
};

ClusterRun run_cluster(const workloads::Workload& wl, unsigned sites,
                       const std::string& fault_spec,
                       std::uint64_t checkpoint_every, bool journal) {
  TempDir dir;  // fresh per run: WALs must not leak across legs
  const Program program = parse_program(wl.source);
  ClusterConfig cfg;
  cfg.sites = sites;
  cfg.program_path = write_program(dir, wl.source);
  cfg.site_bin = PARULEL_SITE_BIN;
  if (journal) {
    const fs::path wal_dir = dir.path / "wal";
    fs::create_directories(wal_dir);
    cfg.journal_dir = wal_dir.string();
  }
  cfg.partition_spec = partition_spec_of(wl);
  cfg.fault_spec = fault_spec;
  if (!fault_spec.empty()) cfg.faults = FaultPlan::parse(fault_spec);
  cfg.max_cycles = 10'000;
  cfg.checkpoint_every = checkpoint_every;
  cfg.fsync = false;  // ordering still holds; fsync cost is R-S3's story
  ClusterDriver driver(program, cfg);
  ClusterRun r;
  Timer t;
  r.out = driver.run();
  r.wall_ms = ms(t.elapsed_ns());
  return r;
}

std::uint64_t simulator_fingerprint(const workloads::Workload& wl,
                                    unsigned sites, double* wall_ms) {
  const Program program = parse_program(wl.source);
  DistConfig cfg;
  cfg.sites = sites;
  cfg.max_cycles = 10'000;
  PartitionScheme scheme(program, wl.partition);
  DistributedEngine engine(program, std::move(scheme), cfg);
  engine.assert_initial_facts();
  Timer t;
  engine.run();
  if (wall_ms) *wall_ms = ms(t.elapsed_ns());
  return engine.global_fingerprint();
}

void require_match(std::uint64_t got, std::uint64_t want, const char* leg) {
  if (got != want) {
    std::fprintf(stderr,
                 "R-S6 FATAL: %s fingerprint %016llx != reference %016llx\n",
                 leg, static_cast<unsigned long long>(got),
                 static_cast<unsigned long long>(want));
    std::exit(1);
  }
}

}  // namespace

int main() {
  const auto wl = workloads::make_tc(14, 30, 5);
  JsonReport json("R-S6");

  // ---------------------------------------------------- Part A: scaling
  header("R-S6a", "cluster barrier throughput vs site count  (" + wl.name +
                      ", fault-free, volatile sites)");
  std::printf("%-22s %9s %9s %9s %9s %11s\n", "config", "wall ms", "barriers",
              "sent", "firings", "barriers/s");
  for (unsigned sites = 1; sites <= 4; ++sites) {
    double sim_ms = 0;
    const std::uint64_t want = simulator_fingerprint(wl, sites, &sim_ms);
    const ClusterRun r = run_cluster(wl, sites, "", /*checkpoint_every=*/32,
                                     /*journal=*/false);
    require_match(r.out.fingerprint, want,
                  ("cluster x" + std::to_string(sites)).c_str());
    const double per_s =
        r.wall_ms > 0 ? 1e3 * static_cast<double>(r.out.cycles) / r.wall_ms
                      : 0;
    std::printf("%-22s %9.1f %9llu %9llu %9llu %11.0f\n",
                ("processes x" + std::to_string(sites)).c_str(), r.wall_ms,
                static_cast<unsigned long long>(r.out.cycles),
                static_cast<unsigned long long>(r.out.stats.sent),
                static_cast<unsigned long long>(r.out.stats.firings), per_s);
    std::printf("%-22s %9.1f %9s %9s %9s %11s\n",
                ("  simulator x" + std::to_string(sites)).c_str(), sim_ms,
                "-", "-", "-", "-");
    json.add_row("cluster_x" + std::to_string(sites),
                 {{"sites", static_cast<double>(sites)},
                  {"wall_ms", r.wall_ms},
                  {"sim_wall_ms", sim_ms},
                  {"barriers", static_cast<double>(r.out.cycles)},
                  {"facts", static_cast<double>(r.out.facts)},
                  {"sent", static_cast<double>(r.out.stats.sent)},
                  {"applied", static_cast<double>(r.out.stats.applied)},
                  {"firings", static_cast<double>(r.out.stats.firings)},
                  {"barriers_per_s", per_s}});
  }

  // ------------------------------------------- Part B: recovery knob
  const char* kCrashPlan = "crash=1@2+2";
  header("R-S6b", std::string("recovery cost vs snapshot interval  (3 sites, "
                              "journaled, ") +
                      kCrashPlan + ")");
  const std::uint64_t want3 = simulator_fingerprint(wl, 3, nullptr);
  std::printf("%-22s %9s %9s %9s %9s %9s\n", "checkpoint-every", "wall ms",
              "barriers", "batches", "snapshots", "restores");
  for (std::uint64_t every : {1ull, 4ull, 16ull, 64ull}) {
    const ClusterRun r = run_cluster(wl, 3, kCrashPlan, every,
                                     /*journal=*/true);
    require_match(r.out.fingerprint, want3,
                  ("checkpoint=" + std::to_string(every)).c_str());
    std::printf("%-22llu %9.1f %9llu %9llu %9llu %9llu\n",
                static_cast<unsigned long long>(every), r.wall_ms,
                static_cast<unsigned long long>(r.out.cycles),
                static_cast<unsigned long long>(r.out.stats.batches),
                static_cast<unsigned long long>(r.out.stats.snapshots),
                static_cast<unsigned long long>(r.out.stats.restores));
    json.add_row("checkpoint_" + std::to_string(every),
                 {{"checkpoint_every", static_cast<double>(every)},
                  {"wall_ms", r.wall_ms},
                  {"barriers", static_cast<double>(r.out.cycles)},
                  {"batches", static_cast<double>(r.out.stats.batches)},
                  {"snapshots", static_cast<double>(r.out.stats.snapshots)},
                  {"kills", static_cast<double>(r.out.stats.kills)},
                  {"restores", static_cast<double>(r.out.stats.restores)}});
  }

  std::printf("\nall cluster fingerprints matched the simulator reference\n");
  return 0;
}
