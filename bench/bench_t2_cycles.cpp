// R-T2 — Cycles to completion: OPS5 select-one vs PARULEL fire-all.
//
// The headline table: identical programs, identical total work, but the
// set-oriented firing semantics collapses the cycle count by orders of
// magnitude on saturation workloads, while Miss Manners (inherently
// sequential) shows the semantics alone creates no parallelism.
#include "bench_util.hpp"

using namespace parulel;
using namespace parulel::bench;

int main() {
  header("R-T2", "cycles to completion: OPS5 select-one vs PARULEL fire-all");

  const workloads::Workload all[] = {
      workloads::make_tc(64, 160, 7),
      workloads::make_sieve(400, true),
      workloads::make_waltz(16),
      workloads::make_manners(32, 6, 11),
  };

  JsonReport json("R-T2");
  std::printf("%-12s %12s %12s %12s %12s %9s\n", "workload", "ops5-cycles",
              "ops5-fires", "prll-cycles", "prll-fires", "reduction");
  for (const auto& w : all) {
    const Program p = parse_program(w.source);
    const RunStats seq = run_sequential(p, MatcherKind::Rete);
    const RunStats par = run_parallel(p, 4);
    const double reduction =
        par.cycles == 0 ? 0.0
                        : static_cast<double>(seq.cycles) /
                              static_cast<double>(par.cycles);
    std::printf("%-12s %12llu %12llu %12llu %12llu %8.1fx\n",
                w.name.c_str(),
                static_cast<unsigned long long>(seq.cycles),
                static_cast<unsigned long long>(seq.total_firings),
                static_cast<unsigned long long>(par.cycles),
                static_cast<unsigned long long>(par.total_firings),
                reduction);
    json.add_run(w.name + "/ops5", seq);
    json.add_run(w.name + "/parulel", par,
                 {{"cycle_reduction", reduction}});
  }
  std::printf("\nExpected shape: >=10x cycle reduction on tc/sieve/waltz;\n"
              "manners stays ~1 firing per cycle by construction.\n");
  return 0;
}
