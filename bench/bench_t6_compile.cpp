// R-T6 — Compiled bytecode VM vs the interpreted TREAT matcher.
//
// Single-thread match throughput on the real workloads: fold the
// initial fact set into the conflict set under the interpreter and
// under the compiled discrimination-net + join bytecode, then churn a
// steady-state retract/assert loop over the same facts. Both matchers
// produce bit-identical conflict sets (the differential sweep holds
// them to it), so every speedup row compares identical work.
//
// Both engines route added facts through the *same* alpha-memory
// upkeep code (discrimination + insertion), and each reports that
// shared slice via MatchStats::alpha_upkeep_ns. The bench therefore
// shows two speedups per workload: end-to-end fold time, and match
// work proper (fold minus shared upkeep) — the latter is the honest
// measure of the bytecode VM against the interpreted join, since no
// matcher choice can change the shared upkeep floor.
//
// BENCH_R-T6.json records, per workload: best-of-N fold and match
// times, throughput, both speedups, and the compiler's own costs
// (codegen time, image size) so the trade stays visible as the
// trajectory accumulates.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "compile/vm.hpp"
#include "parulel.hpp"
#include "support/timer.hpp"

namespace {

using namespace parulel;

struct Case {
  const char* name;
  workloads::Workload workload;
};

std::vector<Case> cases() {
  std::vector<Case> cs;
  cs.push_back({"waltz", workloads::make_waltz(8)});
  cs.push_back({"tc", workloads::make_tc(72, 180, 7)});
  cs.push_back({"manners", workloads::make_manners(24, 4, 5)});
  cs.push_back({"synth", workloads::make_synth(3, 220, 40, 17)});
  return cs;
}

struct Measurement {
  double initial_ms = 0.0;   ///< best-of-N initial fold, end to end
  double match_ms = 0.0;     ///< fold minus shared alpha upkeep (same rep)
  double churn_ms = 0.0;     ///< best-of-N steady-state churn pass
  std::uint64_t insts = 0;   ///< insts_derived after the initial fold
  std::size_t conflict = 0;
};

/// Time `kind` on one workload: the initial fold, then a fixed
/// retract/assert churn over every tenth initial fact.
Measurement measure(const Program& program, MatcherKind kind) {
  constexpr int kReps = 5;
  Measurement m;
  for (int rep = 0; rep < kReps; ++rep) {
    WorkingMemory wm(program.schema);
    for (const auto& f : program.initial_facts) {
      wm.assert_fact(f.tmpl, f.slots);
    }
    auto matcher = make_matcher(kind, program);

    const Timer t0;
    matcher->apply_delta(wm, wm.drain_delta());
    const double initial_ms = t0.elapsed_ms();
    const double match_ms =
        initial_ms -
        static_cast<double>(matcher->stats().alpha_upkeep_ns) / 1e6;

    std::vector<GroundFact> victims;
    for (std::size_t i = 0; i < program.initial_facts.size(); i += 10) {
      victims.push_back(program.initial_facts[i]);
    }
    const Timer t1;
    for (int round = 0; round < 10; ++round) {
      for (const auto& v : victims) {
        if (auto id = wm.find(v.tmpl, v.slots)) wm.retract(*id);
      }
      matcher->apply_delta(wm, wm.drain_delta());
      for (const auto& v : victims) {
        wm.assert_fact(v.tmpl, v.slots);
      }
      matcher->apply_delta(wm, wm.drain_delta());
    }
    const double churn_ms = t1.elapsed_ms();

    if (rep == 0 || initial_ms < m.initial_ms) {
      m.initial_ms = initial_ms;
      m.match_ms = match_ms;
    }
    if (rep == 0 || churn_ms < m.churn_ms) m.churn_ms = churn_ms;
    m.insts = matcher->stats().insts_derived;
    m.conflict = matcher->conflict_set().size();
  }
  return m;
}

}  // namespace

int main() {
  using parulel::bench::JsonReport;
  parulel::bench::header("R-T6", "Compiled VM vs interpreted TREAT "
                                 "(single-thread match)");
  JsonReport json("R-T6");

  std::printf("%-8s %9s %9s %7s %9s %9s %7s %9s %9s %7s %9s\n", "workload",
              "fold-tr", "fold-co", "x", "match-tr", "match-co", "x",
              "churn-tr", "churn-co", "x", "conflicts");

  for (const Case& c : cases()) {
    const Program p = parse_program(c.workload.source);
    const Measurement treat = measure(p, MatcherKind::Treat);
    const Measurement compiled = measure(p, MatcherKind::Compiled);
    if (treat.conflict != compiled.conflict || treat.insts != compiled.insts) {
      std::fprintf(stderr,
                   "error: %s conflict sets diverged (treat %zu/%llu vs "
                   "compiled %zu/%llu) — the speedup rows are meaningless\n",
                   c.name, treat.conflict,
                   static_cast<unsigned long long>(treat.insts),
                   compiled.conflict,
                   static_cast<unsigned long long>(compiled.insts));
      return 1;
    }

    // The compiler's own price, measured on a fresh matcher.
    CompiledMatcher vm(p.rules, p.alphas, p.schema.size());
    const CompileStats& cs = *vm.compile_stats();

    const double initial_speedup = treat.initial_ms / compiled.initial_ms;
    const double match_speedup = treat.match_ms / compiled.match_ms;
    const double churn_speedup = treat.churn_ms / compiled.churn_ms;
    std::printf(
        "%-8s %9.3f %9.3f %6.2fx %9.3f %9.3f %6.2fx %9.3f %9.3f %6.2fx %9zu\n",
        c.name, treat.initial_ms, compiled.initial_ms, initial_speedup,
        treat.match_ms, compiled.match_ms, match_speedup, treat.churn_ms,
        compiled.churn_ms, churn_speedup, compiled.conflict);

    json.add_row(
        std::string(c.name) + "/treat",
        {{"initial_match_ms", treat.initial_ms},
         {"match_work_ms", treat.match_ms},
         {"churn_ms", treat.churn_ms},
         {"throughput_inst_per_ms",
          static_cast<double>(treat.insts) / treat.initial_ms},
         {"match_throughput_inst_per_ms",
          static_cast<double>(treat.insts) / treat.match_ms},
         {"conflict_set", static_cast<double>(treat.conflict)}});
    json.add_row(
        std::string(c.name) + "/compiled",
        {{"initial_match_ms", compiled.initial_ms},
         {"match_work_ms", compiled.match_ms},
         {"churn_ms", compiled.churn_ms},
         {"throughput_inst_per_ms",
          static_cast<double>(compiled.insts) / compiled.initial_ms},
         {"match_throughput_inst_per_ms",
          static_cast<double>(compiled.insts) / compiled.match_ms},
         {"conflict_set", static_cast<double>(compiled.conflict)},
         {"speedup_vs_treat", initial_speedup},
         {"match_speedup_vs_treat", match_speedup},
         {"churn_speedup_vs_treat", churn_speedup},
         {"codegen_ms",
          static_cast<double>(cs.codegen_ns) / 1e6},
         {"code_bytes", static_cast<double>(cs.code_bytes)},
         {"instructions", static_cast<double>(cs.instructions)},
         {"net_nodes", static_cast<double>(cs.net_nodes)},
         {"net_shared", static_cast<double>(cs.net_shared)}});
  }

  std::printf(
      "\nExpected shape: the compiled VM clears 2x on match work for\n"
      "the join-heavy workloads; end-to-end fold gains are smaller\n"
      "because both engines share the alpha-upkeep floor. Codegen\n"
      "stays in the microsecond range, far below one initial fold.\n");
  return 0;
}
