// Cachegrind driver: the waltz match loop, and nothing else.
//
// scripts/check_cache_smoke.py runs this under
// `valgrind --tool=cachegrind --cache-sim=yes` and budgets the L1d
// miss rate — the figure the struct-of-arrays fact store is supposed
// to keep low (ROADMAP item 2; see ARCHITECTURE.md, working-memory
// data layout). A plain google-benchmark binary is the wrong vehicle
// under a 50-100x simulator: this driver folds the waltz-8 initial
// fact set through the TREAT matcher a fixed number of times and
// exits, so nearly every simulated reference belongs to the loop
// being budgeted.
#include <cstdio>
#include <cstdlib>

#include "parulel.hpp"

int main(int argc, char** argv) {
  using namespace parulel;
  const int reps = argc > 1 ? std::atoi(argv[1]) : 20;
  const Program program =
      parse_program(workloads::make_waltz(8).source);
  std::size_t conflict = 0;
  for (int rep = 0; rep < reps; ++rep) {
    WorkingMemory wm(program.schema);
    for (const auto& f : program.initial_facts) {
      wm.assert_fact(f.tmpl, f.slots);
    }
    auto matcher = make_matcher(MatcherKind::Treat, program, nullptr);
    matcher->apply_delta(wm, wm.drain_delta());
    conflict = matcher->conflict_set().size();
  }
  std::printf("waltz8 treat fold x%d, conflict set %zu\n", reps, conflict);
  return conflict == 0 ? 1 : 0;
}
