// R-F2 — Per-cycle time breakdown: match / redact / fire / merge.
//
// Shows where a PARULEL cycle spends its time as the workload scales —
// match dominates (the classic production-system result), redaction
// stays a modest slice even with meta-rules active.
#include "bench_util.hpp"

using namespace parulel;
using namespace parulel::bench;

namespace {

void row(JsonReport& json, const char* label, const Program& p,
         unsigned threads) {
  const RunStats s = run_parallel(p, threads);
  const double total =
      ms(s.match_ns) + ms(s.redact_ns) + ms(s.fire_ns) + ms(s.merge_ns);
  auto pct = [&](std::uint64_t ns) {
    return total == 0 ? 0.0 : 100.0 * ms(ns) / total;
  };
  std::printf("%-14s %8llu %9.1f %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", label,
              static_cast<unsigned long long>(s.cycles), total,
              pct(s.match_ns), pct(s.redact_ns), pct(s.fire_ns),
              pct(s.merge_ns));
  json.add_run(label, s,
               {{"match_pct", pct(s.match_ns)},
                {"redact_pct", pct(s.redact_ns)},
                {"fire_pct", pct(s.fire_ns)},
                {"merge_pct", pct(s.merge_ns)}});
}

}  // namespace

int main() {
  header("R-F2", "cycle time breakdown (4 threads)");
  std::printf("%-14s %8s %9s %8s %8s %8s %8s\n", "workload", "cycles",
              "total-ms", "match", "redact", "fire", "merge");

  JsonReport json("R-F2");
  for (int scale : {8, 16, 32, 64}) {
    const auto w = workloads::make_waltz(scale);
    const Program p = parse_program(w.source);
    const std::string label = "waltz/" + std::to_string(scale);
    row(json, label.c_str(), p, 4);
  }
  for (int scale : {64, 128, 192}) {
    const auto w = workloads::make_tc(scale, scale * 5 / 2, 7);
    const Program p = parse_program(w.source);
    const std::string label = "tc/" + std::to_string(scale);
    row(json, label.c_str(), p, 4);
  }
  std::printf("\nExpected shape: match is the dominant phase and grows\n"
              "with scale; redact is non-zero only for waltz (meta-rules)\n"
              "and stays a small share.\n");
  return 0;
}
