// R-T3 — Meta-rule redaction overhead and effect.
//
// For each meta-rule-bearing workload: peak conflict-set size, total
// redactions, redacted fraction of eligible instantiations, and the
// share of wall time spent in the redaction fixpoint.
#include "bench_util.hpp"

using namespace parulel;
using namespace parulel::bench;

int main() {
  header("R-T3", "meta-rule redaction: effect and overhead");

  const workloads::Workload all[] = {
      workloads::make_sieve(400, true),
      // The meta-stress waltz variant: witnesses built BY rules with the
      // defer-prune meta-rule doing the stratification (small scale —
      // its meta conflict set is quadratic per cycle 1, by design).
      workloads::make_waltz(4, /*prebuilt_witnesses=*/false),
      workloads::make_routing(48, 140, 11, /*best_only_meta=*/true),
      workloads::make_manners(32, 6, 11),
  };

  JsonReport json("R-T3");
  std::printf("%-12s %9s %10s %10s %10s %11s\n", "workload", "peak-cs",
              "firings", "redacted", "red-frac", "redact-time");
  for (const auto& w : all) {
    const Program p = parse_program(w.source);
    const RunStats s = run_parallel(p, 4);
    const double eligible =
        static_cast<double>(s.total_firings + s.total_redactions);
    const double frac =
        eligible == 0 ? 0 : static_cast<double>(s.total_redactions) /
                                eligible;
    const double redact_share =
        s.wall_ns == 0 ? 0 : 100.0 * static_cast<double>(s.redact_ns) /
                                 static_cast<double>(s.wall_ns);
    std::printf("%-12s %9llu %10llu %10llu %9.1f%% %10.1f%%\n",
                w.name.c_str(),
                static_cast<unsigned long long>(s.peak_conflict_set),
                static_cast<unsigned long long>(s.total_firings),
                static_cast<unsigned long long>(s.total_redactions),
                100.0 * frac, redact_share);
    json.add_run(w.name, s,
                 {{"redacted_frac", frac}, {"redact_share_pct", redact_share}});
  }
  std::printf("\nNote: 'redacted' counts per-cycle withholdings; a redacted\n"
              "instantiation may be counted again in a later cycle (it stays\n"
              "eligible until fired or invalidated).\n"
              "Expected shape: manners redacts nearly everything each cycle\n"
              "(one survivor); sieve+meta redacts the redundant strikes.\n"
              "Redaction time tracks the meta conflict-set size: pairwise\n"
              "meta-rules over large conflict sets (sieve, stress waltz)\n"
              "pay a quadratic meta-match — the engineering trade-off the\n"
              "PARULEL design accepts for programmability.\n");
  return 0;
}
