// R-T5 — Ablation: parallel firing with vs without meta-rule safety.
//
// The sieve fires every (factor, composite) strike in one cycle. Without
// the dedup meta-rule, redundant strikes turn into write conflicts that
// the merge must absorb (first-writer-wins); with it, the conflicts are
// redacted away before firing. This quantifies what programmable
// conflict resolution buys beyond raw detection.
#include "bench_util.hpp"

using namespace parulel;
using namespace parulel::bench;

int main() {
  header("R-T5", "ablation: write-conflict detection vs meta-rule redaction");

  JsonReport json("R-T5");
  std::printf("%8s %-10s %9s %10s %10s %10s %9s\n", "n", "variant",
              "firings", "conflicts", "redacted", "wall-ms", "primes");
  for (int n : {200, 400, 800}) {
    for (bool dedup : {false, true}) {
      const auto w = workloads::make_sieve(n, dedup);
      const Program p = parse_program(w.source);
      EngineConfig cfg;
      cfg.threads = 4;
      cfg.matcher = MatcherKind::ParallelTreat;
      ParallelEngine engine(p, cfg);
      engine.assert_initial_facts();
      const RunStats s = engine.run();
      const TemplateId num_t =
          *p.schema.find(p.symbols->intern("number"));
      std::printf("%8d %-10s %9llu %10llu %10llu %10.1f %9zu\n", n,
                  dedup ? "meta" : "detect",
                  static_cast<unsigned long long>(s.total_firings),
                  static_cast<unsigned long long>(s.total_write_conflicts),
                  static_cast<unsigned long long>(s.total_redactions),
                  ms(s.wall_ns), engine.wm().extent(num_t).size());
      json.add_run(
          "sieve" + std::to_string(n) + (dedup ? "/meta" : "/detect"), s,
          {{"n", static_cast<double>(n)},
           {"primes",
            static_cast<double>(engine.wm().extent(num_t).size())}});
    }
  }
  std::printf("\nExpected shape: identical prime counts; the meta variant\n"
              "trades redactions for firings and drives write conflicts\n"
              "to zero.\n");
  return 0;
}
