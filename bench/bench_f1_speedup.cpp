// R-F1 — Speedup vs processors of the PARULEL engine, per workload.
//
// Two views:
//
//  measured — median wall time with a real thread pool of P workers.
//    Only meaningful on multicore hardware; on a single-core host every
//    P measures ~the same (documented substitution, DESIGN.md).
//
//  simulated — an execution model driven by the 1-thread per-cycle
//    trace: within each cycle the parallel phases (match derivation,
//    rule firing) divide their measured time across P virtual workers
//    (uniform task cost, ceil-division for remainders), while redaction
//    and merge stay serial (they are serial in the engine). This is the
//    speedup an ideal P-core machine with zero scheduling overhead
//    would see — the upper envelope the original paper's processor
//    counts trace.
#include <algorithm>
#include <cmath>
#include <vector>

#include "bench_util.hpp"

using namespace parulel;
using namespace parulel::bench;

namespace {

double median_wall_ms(const Program& p, unsigned threads, int reps) {
  std::vector<double> walls;
  for (int r = 0; r < reps; ++r) {
    walls.push_back(ms(run_parallel(p, threads).wall_ns));
  }
  std::sort(walls.begin(), walls.end());
  return walls[walls.size() / 2];
}

/// Parallel-phase shrink factor for `items` uniform tasks on P workers.
double shrink(std::uint64_t items, unsigned p) {
  if (items == 0) return 1.0;
  const double chunks = std::ceil(static_cast<double>(items) /
                                  static_cast<double>(p));
  return chunks * static_cast<double>(p) / static_cast<double>(items) /
         static_cast<double>(p);
}

/// Simulated wall time (ns) at P processors from a 1-thread trace.
double simulate(const RunStats& trace, std::size_t initial_facts,
                unsigned p) {
  double total = 0;
  std::uint64_t prev_items = initial_facts;  // cycle 0 folds the deffacts
  for (const auto& c : trace.per_cycle) {
    const std::uint64_t match_items = std::max<std::uint64_t>(prev_items, 1);
    const std::uint64_t fire_items = std::max<std::uint64_t>(c.fired, 1);
    total += static_cast<double>(c.match_ns) * shrink(match_items, p);
    total += static_cast<double>(c.fire_ns) * shrink(fire_items, p);
    total += static_cast<double>(c.redact_ns + c.merge_ns);  // serial
    prev_items = c.asserts + c.retracts;
  }
  return total;
}

}  // namespace

int main() {
  header("R-F1", "PARULEL speedup vs processors");
  std::printf("(measured: real threads on this host; simulated: ideal "
              "P-core model from the 1-thread trace)\n\n");

  const workloads::Workload all[] = {
      workloads::make_tc(192, 520, 7),
      workloads::make_sieve(1000, true),
      workloads::make_waltz(128),
      workloads::make_manners(24, 6, 11),
  };
  const unsigned hw = ThreadPool::default_threads();
  constexpr int kReps = 3;
  const unsigned procs[] = {1, 2, 4, 8, 16};

  JsonReport json("R-F1");
  for (const auto& w : all) {
    const Program p = parse_program(w.source);

    // 1-thread traced run for the simulation model.
    EngineConfig cfg;
    cfg.threads = 1;
    cfg.matcher = MatcherKind::ParallelTreat;
    cfg.trace_cycles = true;
    ParallelEngine engine(p, cfg);
    engine.assert_initial_facts();
    const RunStats trace = engine.run();
    const double sim1 = simulate(trace, p.initial_facts.size(), 1);

    std::printf("%s — %s\n", w.name.c_str(), w.description.c_str());
    std::printf("  %6s %14s %14s %12s %12s\n", "P", "measured-ms",
                "meas-speedup", "sim-ms", "sim-speedup");
    double measured_base = 0;
    for (unsigned t : procs) {
      const double sim = simulate(trace, p.initial_facts.size(), t) / 1e6;
      if (t <= hw) {
        const double wall = median_wall_ms(p, t, kReps);
        if (t == 1) measured_base = wall;
        std::printf("  %6u %14.1f %14.2f %12.2f %12.2f\n", t, wall,
                    measured_base / wall, sim,
                    sim1 / 1e6 / sim);
        json.add_row(w.name + "/P" + std::to_string(t),
                     {{"procs", static_cast<double>(t)},
                      {"measured_ms", wall},
                      {"measured_speedup", measured_base / wall},
                      {"sim_ms", sim},
                      {"sim_speedup", sim1 / 1e6 / sim}});
      } else {
        std::printf("  %6u %14s %14s %12.2f %12.2f\n", t, "-", "-", sim,
                    sim1 / 1e6 / sim);
        json.add_row(w.name + "/P" + std::to_string(t),
                     {{"procs", static_cast<double>(t)},
                      {"sim_ms", sim},
                      {"sim_speedup", sim1 / 1e6 / sim}});
      }
    }
    std::printf("\n");
  }
  std::printf("Expected shape: near-linear simulated scaling on tc/waltz\n"
              "(big conflict sets), saturating by Amdahl on sieve (serial\n"
              "redaction share), flat on manners (1 firing per cycle).\n");
  return 0;
}
