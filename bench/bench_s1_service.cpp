// R-S1 — Rule service: ingestion throughput, commit latency, and the
// value of retained match state.
//
// Part A: service throughput and per-request commit latency (p50/p99
// from the service's bounded reservoir) as sessions x pool threads x
// batch size vary. Client threads stream a shuffled external fact feed
// into their sessions (a run barrier every few ops) while background
// workers drain and commit. Expected shapes: bigger batches amortize
// the per-commit fixpoint and lift throughput at the cost of p99;
// more sessions raise aggregate throughput until commits serialize on
// the shared pool.
//
// Part B: incremental vs rebuild. The same batched feed is processed
// (a) by one retained session — each batch folds its delta into the
// live TREAT network — and (b) by rebuilding a fresh engine over the
// cumulative fact set at every batch, which is what a service without
// retained sessions would do. Speedup = rebuild time / incremental
// time; it grows with batch count because rebuild pays the whole
// prefix again at every arrival.
#include <algorithm>
#include <random>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "support/timer.hpp"

using namespace parulel;
using namespace parulel::bench;

namespace {

std::vector<GroundFact> shuffled_feed(const Program& p, std::uint64_t seed) {
  std::vector<GroundFact> feed = p.initial_facts;
  std::mt19937_64 rng(seed);
  std::shuffle(feed.begin(), feed.end(), rng);
  return feed;
}

struct ThroughputResult {
  ServiceStats stats;
  double wall_ms = 0;
  double ops_per_sec = 0;
};

ThroughputResult run_throughput(const Program& p, unsigned sessions,
                                unsigned pool_threads,
                                std::size_t batch_max) {
  service::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.pool_threads = pool_threads;
  cfg.batch_max = batch_max;
  cfg.queue_capacity = 1024;
  service::RuleService svc(cfg);

  std::vector<service::SessionId> ids;
  for (unsigned s = 0; s < sessions; ++s) {
    ids.push_back(svc.open_session(p));
  }

  Timer wall;
  std::vector<std::thread> clients;
  std::uint64_t ops_per_client = 0;
  for (unsigned s = 0; s < sessions; ++s) {
    const std::vector<GroundFact> feed = shuffled_feed(p, 7 + s);
    ops_per_client = feed.size();
    clients.emplace_back([&svc, id = ids[s], feed] {
      for (std::size_t i = 0; i < feed.size(); ++i) {
        while (svc.submit(id, service::Request::make_assert(
                                  feed[i].tmpl, feed[i].slots)) ==
               service::SubmitResult::QueueFull) {
          std::this_thread::yield();
        }
        if (i % 16 == 0) svc.submit(id, service::Request::make_run());
      }
    });
  }
  for (auto& t : clients) t.join();
  svc.flush_all();

  ThroughputResult out;
  out.wall_ms = ms(wall.elapsed_ns());
  out.stats = svc.stats_snapshot();
  out.ops_per_sec = static_cast<double>(ops_per_client) * sessions /
                    (out.wall_ms / 1e3);
  return out;
}

struct IncRebuild {
  double incremental_ms = 0;
  double rebuild_ms = 0;
  std::uint64_t fingerprint_inc = 0;
  std::uint64_t fingerprint_rebuild = 0;
};

IncRebuild run_incremental_vs_rebuild(const Program& p, std::size_t batches,
                                      unsigned threads) {
  const std::vector<GroundFact> feed = shuffled_feed(p, 99);
  const std::size_t per =
      std::max<std::size_t>(1, (feed.size() + batches - 1) / batches);

  service::SessionConfig scfg;
  scfg.matcher = MatcherKind::ParallelTreat;
  scfg.threads = threads;
  scfg.assert_initial_facts = false;

  IncRebuild out;
  {
    // (a) one retained session, one delta fold per batch.
    Timer t;
    service::Session session(p, scfg);
    for (std::size_t start = 0; start < feed.size(); start += per) {
      const std::size_t end = std::min(feed.size(), start + per);
      for (std::size_t i = start; i < end; ++i) {
        session.assert_fact(feed[i].tmpl, feed[i].slots);
      }
      session.run_to_quiescence();
    }
    out.incremental_ms = ms(t.elapsed_ns());
    out.fingerprint_inc = session.fingerprint();
    if (session.counters().rebuilds != 0) {
      std::fprintf(stderr, "error: incremental path rebuilt the matcher\n");
    }
  }
  {
    // (b) a fresh engine over the cumulative prefix at every batch.
    Timer t;
    std::uint64_t fp = 0;
    for (std::size_t end = per; ; end += per) {
      const std::size_t n = std::min(feed.size(), end);
      service::Session session(p, scfg);
      for (std::size_t i = 0; i < n; ++i) {
        session.assert_fact(feed[i].tmpl, feed[i].slots);
      }
      session.run_to_quiescence();
      fp = session.fingerprint();
      if (n == feed.size()) break;
    }
    out.rebuild_ms = ms(t.elapsed_ns());
    out.fingerprint_rebuild = fp;
  }
  return out;
}

}  // namespace

int main() {
  header("R-S1", "rule service: throughput, latency, retained-state value");

  const auto w = workloads::make_tc(56, 150, 21);
  const Program p = parse_program(w.source);
  JsonReport json("R-S1");

  std::printf("\n%s — %s\n", w.name.c_str(), w.description.c_str());
  std::printf("\nPart A: throughput and commit latency (workers=2, feed=%zu "
              "ops/session)\n",
              p.initial_facts.size());
  std::printf("%9s %8s %10s %9s %11s %9s %9s %8s\n", "sessions", "threads",
              "batch_max", "wall_ms", "ops/s", "p50_us", "p99_us", "commits");
  for (const unsigned sessions : {1u, 2u, 4u}) {
    for (const unsigned threads : {1u, 4u}) {
      for (const std::size_t batch_max : {1u, 32u, 256u}) {
        const ThroughputResult r =
            run_throughput(p, sessions, threads, batch_max);
        std::printf("%9u %8u %10zu %9.2f %11.0f %9.1f %9.1f %8llu\n",
                    sessions, threads, batch_max, r.wall_ms, r.ops_per_sec,
                    r.stats.latency_p50_ns / 1e3,
                    r.stats.latency_p99_ns / 1e3,
                    static_cast<unsigned long long>(r.stats.batches));
        json.add_service(
            "throughput/s" + std::to_string(sessions) + "/t" +
                std::to_string(threads) + "/b" + std::to_string(batch_max),
            r.stats,
            {{"sessions", static_cast<double>(sessions)},
             {"threads", static_cast<double>(threads)},
             {"batch_max", static_cast<double>(batch_max)},
             {"wall_ms", r.wall_ms},
             {"ops_per_sec", r.ops_per_sec}});
      }
    }
  }

  std::printf("\nPart B: incremental (retained session) vs rebuild-per-batch "
              "(threads=2)\n");
  std::printf("%8s %15s %12s %9s %6s\n", "batches", "incremental_ms",
              "rebuild_ms", "speedup", "same");
  bool all_match = true;
  for (const std::size_t batches : {4u, 16u, 64u}) {
    const IncRebuild r = run_incremental_vs_rebuild(p, batches, 2);
    const bool same = r.fingerprint_inc == r.fingerprint_rebuild;
    all_match = all_match && same;
    const double speedup =
        r.incremental_ms > 0 ? r.rebuild_ms / r.incremental_ms : 0;
    std::printf("%8zu %15.2f %12.2f %9.2fx %6s\n", batches, r.incremental_ms,
                r.rebuild_ms, speedup, same ? "yes" : "NO");
    json.add_row("incremental-vs-rebuild/b" + std::to_string(batches),
                 {{"batches", static_cast<double>(batches)},
                  {"incremental_ms", r.incremental_ms},
                  {"rebuild_ms", r.rebuild_ms},
                  {"speedup", speedup}});
  }
  if (!all_match) {
    std::fprintf(stderr,
                 "error: incremental and rebuild fixpoints diverged\n");
    return 1;
  }
  return 0;
}
