// R-S3 — Durability: what the write-ahead journal costs and what
// recovery buys back.
//
// Part A: commit-path throughput over the same batched feed (K asserts
// + one run per commit) in three durability modes — journal off,
// journal on with fsync off (kill -9 safe), journal on with fsync on
// (power-loss safe). The gap between the last two is the price of the
// fsync barrier alone; the gap to the first is serialization + write().
//
// Part B: startup recovery wall time as the journal grows, batches x
// snapshot interval. Replay-from-zero recovery is linear in logged
// batches; snapshot truncation bounds both the file and the replay, at
// the cost of a periodic rewrite. Every recovered session is checked
// against the fingerprint the builder saw — a mismatch is a bench bug.
//
// R-S5 (separate BENCH_R-S5.json): the semi-sync replication ack tax.
// Same fsync-on feed through a REAL replication channel — a
// ReplicationHub shipping to a ReplicaApplier over a loopback socket —
// in three modes: fsync-only (no replica), semi-sync (every commit
// waits for the replica's ack), and degraded-async (timeout 0: ship
// and go). Each replicated leg ends with a byte-compare of the two
// journal files; divergence is a bench bug.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "net/replication.hpp"
#include "support/timer.hpp"

using namespace parulel;
using namespace parulel::bench;
namespace fs = std::filesystem;

namespace {

// Rewrite workload: every batch's items are each rewritten to a done
// fact (one firing per item, no cross-item joins), so working memory
// grows linearly and the measured cost is the commit machinery (queue,
// fixpoint, journal record, fsync) rather than match work.
constexpr const char* kSource = R"((deftemplate item (slot v))
(deftemplate done (slot v))
(defrule rewrite
  ?i <- (item (v ?x))
  =>
  (retract ?i)
  (assert (done (v (+ ?x 1))))))";

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("parulel_bench_s3_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

service::ServiceConfig base_config() {
  service::ServiceConfig cfg;
  cfg.workers = 0;  // synchronous: the mode durable sessions require
  cfg.queue_capacity = 1024;
  return cfg;
}

void submit_spin(service::RuleService& svc, service::SessionId id,
                 service::Request req) {
  while (svc.submit(id, std::move(req)) == service::SubmitResult::QueueFull) {
    std::this_thread::yield();
  }
}

struct FeedResult {
  double wall_ms = 0;
  std::uint64_t fingerprint = 0;
};

/// Drive `batches` commits of `ops_per_batch` asserts + one run through
/// an already-open session. The durable path mirrors protocol.cpp's
/// run handler: response bytes are fixed before durable_commit so the
/// record carries the exact ack.
FeedResult drive(service::RuleService& svc, service::SessionId id,
                 TemplateId item, std::uint64_t batches,
                 std::uint64_t ops_per_batch, bool durable) {
  Timer wall;
  for (std::uint64_t b = 0; b < batches; ++b) {
    for (std::uint64_t k = 0; k < ops_per_batch; ++k) {
      submit_spin(svc, id,
                  service::Request::make_assert(
                      item, {Value::integer(static_cast<std::int64_t>(
                                (b * ops_per_batch + k) % 97))}));
    }
    submit_spin(svc, id, service::Request::make_run());
    svc.flush(id);
    if (durable) {
      std::string why;
      if (!svc.durable_commit(id, b + 1, "ok run committed=bench\n", &why)) {
        std::fprintf(stderr, "error: durable_commit: %s\n", why.c_str());
        std::exit(1);
      }
    }
  }
  FeedResult out;
  out.wall_ms = ms(wall.elapsed_ns());
  svc.with_session(id,
                   [&](service::Session& s) { out.fingerprint = s.fingerprint(); });
  return out;
}

struct DurableRun {
  FeedResult feed;
  JournalStats journal;
  std::uint64_t file_bytes = 0;
  ReplStats repl;  ///< replicated legs only (R-S5)
};

DurableRun run_durable(const TempDir& dir, std::uint64_t batches,
                       std::uint64_t ops_per_batch, bool fsync,
                       std::uint64_t snapshot_every) {
  service::ServiceConfig cfg = base_config();
  cfg.journal.dir = dir.str();
  cfg.journal.fsync = fsync;
  cfg.journal.snapshot_every = snapshot_every;
  service::RuleService svc(cfg);
  std::string err;
  const service::SessionId id = svc.open_durable(
      "bench", std::make_unique<Program>(parse_program(kSource)), kSource,
      &err);
  if (id == 0) {
    std::fprintf(stderr, "error: open_durable: %s\n", err.c_str());
    std::exit(1);
  }
  const Program* prog = svc.durable_program(id);
  const TemplateId item = *prog->schema.find(prog->symbols->intern("item"));
  DurableRun out;
  out.feed = drive(svc, id, item, batches, ops_per_batch, /*durable=*/true);
  out.journal = svc.journal_stats_snapshot();
  std::error_code ec;
  out.file_bytes = fs::file_size(dir.path / "bench.wal", ec);
  svc.release_session(id);  // detach: keep the journal for recovery
  return out;
}

/// A real replication channel without a full NetServer: one listening
/// socket, the applier dials it, a tiny acceptor thread performs the
/// repl-hello handshake and hands the connection to the hub — exactly
/// the hand-off NetServer does on `repl-hello`.
struct ReplPipe {
  net::ReplicationHub hub;
  std::unique_ptr<net::ReplicaApplier> applier;
  int listen_fd = -1;
  std::thread acceptor;

  ReplPipe(std::uint64_t timeout_ms, const std::string& replica_dir)
      : hub(timeout_ms, /*injector=*/nullptr) {
    listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (listen_fd < 0 ||
        ::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd, 1) != 0) {
      std::fprintf(stderr, "error: repl pipe listen failed\n");
      std::exit(1);
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
    acceptor = std::thread([this] {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) return;
      std::string line;
      char c;
      while (::recv(fd, &c, 1, 0) == 1 && c != '\n') line += c;
      const char ok[] = "ok repl-hello parulel/2\n";
      ::send(fd, ok, sizeof(ok) - 1, MSG_NOSIGNAL);
      hub.adopt(fd);
    });
    net::ReplicaApplier::Config rcfg;
    rcfg.host = "127.0.0.1";
    rcfg.port = ntohs(addr.sin_port);
    rcfg.journal_dir = replica_dir;
    rcfg.fsync = true;  // mirror the primary's durability
    applier = std::make_unique<net::ReplicaApplier>(rcfg, nullptr);
    applier->start();
    while (hub.stats_snapshot().replica_connects == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  ~ReplPipe() {
    applier->stop();
    hub.shutdown();
    if (acceptor.joinable()) acceptor.join();
    if (listen_fd >= 0) ::close(listen_fd);
  }

  /// Every shipped frame acked, bounded wait (async legs lag by design).
  bool drain(std::uint64_t deadline_ms) {
    Timer t;
    while (!hub.caught_up()) {
      if (ms(t.elapsed_ns()) > double(deadline_ms)) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
  }
};

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

/// One R-S5 leg: fsync-on feed with the journal shipped through `pipe`
/// (null = the fsync-only baseline). Dies on replica divergence.
DurableRun run_replicated(const TempDir& dir, const TempDir& rdir,
                          std::uint64_t batches, std::uint64_t ops_per_batch,
                          std::uint64_t repl_timeout_ms, bool replicate) {
  std::unique_ptr<ReplPipe> pipe;
  if (replicate) {
    pipe = std::make_unique<ReplPipe>(repl_timeout_ms, rdir.str());
  }
  service::ServiceConfig cfg = base_config();
  cfg.journal.dir = dir.str();
  cfg.journal.fsync = true;
  if (pipe) {
    const std::string jdir = dir.str();
    cfg.on_batch_durable = [&pipe, jdir](const std::string& name,
                                         std::uint64_t seq,
                                         const std::string& payload) {
      pipe->hub.ship_batch(
          name, seq, payload, (fs::path(jdir) / (name + ".wal")).string());
    };
    cfg.on_journal_rewritten = [&pipe](const std::string& name,
                                       const std::string& path) {
      pipe->hub.ship_file(name, path);
    };
    cfg.on_journal_removed = [&pipe](const std::string& name) {
      pipe->hub.ship_remove(name);
    };
  }
  service::RuleService svc(cfg);
  std::string err;
  const service::SessionId id = svc.open_durable(
      "bench", std::make_unique<Program>(parse_program(kSource)), kSource,
      &err);
  if (id == 0) {
    std::fprintf(stderr, "error: open_durable: %s\n", err.c_str());
    std::exit(1);
  }
  const Program* prog = svc.durable_program(id);
  const TemplateId item = *prog->schema.find(prog->symbols->intern("item"));
  DurableRun out;
  out.feed = drive(svc, id, item, batches, ops_per_batch, /*durable=*/true);
  out.journal = svc.journal_stats_snapshot();
  std::error_code ec;
  out.file_bytes = fs::file_size(dir.path / "bench.wal", ec);
  if (pipe) {
    if (!pipe->drain(10'000) ||
        slurp(dir.path / "bench.wal") != slurp(rdir.path / "bench.wal")) {
      std::fprintf(stderr, "error: replica diverged from the primary\n");
      std::exit(1);
    }
    out.repl = pipe->hub.stats_snapshot();
  }
  svc.release_session(id);
  return out;
}

}  // namespace

int main() {
  const std::uint64_t kBatches = 512;
  const std::uint64_t kOps = 16;

  JsonReport json("R-S3");

  header("R-S3a", "durability tax: commit throughput by journal mode");
  std::printf("%-14s %10s %12s %12s %12s %10s\n", "mode", "wall_ms",
              "batches/s", "ops/s", "bytes", "fsyncs");

  double baseline_ms = 0;
  {
    // Journal off: same synchronous service, no durability.
    const Program program = parse_program(kSource);
    service::RuleService svc(base_config());
    const service::SessionId id = svc.open_session(program);
    const TemplateId item =
        *program.schema.find(program.symbols->intern("item"));
    const FeedResult r =
        drive(svc, id, item, kBatches, kOps, /*durable=*/false);
    baseline_ms = r.wall_ms;
    std::printf("%-14s %10.2f %12.0f %12.0f %12s %10s\n", "off", r.wall_ms,
                kBatches / (r.wall_ms / 1e3),
                kBatches * kOps / (r.wall_ms / 1e3), "-", "-");
    json.add_row("mode/off",
                 {{"wall_ms", r.wall_ms},
                  {"batches", double(kBatches)},
                  {"ops_per_batch", double(kOps)},
                  {"batches_per_sec", kBatches / (r.wall_ms / 1e3)}});
  }
  for (const bool fsync : {false, true}) {
    TempDir dir(fsync ? "a_sync" : "a_nosync");
    const DurableRun r =
        run_durable(dir, kBatches, kOps, fsync, /*snapshot_every=*/0);
    const char* label = fsync ? "fsync-on" : "fsync-off";
    std::printf("%-14s %10.2f %12.0f %12.0f %12llu %10llu\n", label,
                r.feed.wall_ms, kBatches / (r.feed.wall_ms / 1e3),
                kBatches * kOps / (r.feed.wall_ms / 1e3),
                static_cast<unsigned long long>(r.journal.bytes_written),
                static_cast<unsigned long long>(r.journal.fsyncs));
    json.add_row(std::string("mode/") + label,
                 {{"wall_ms", r.feed.wall_ms},
                  {"batches", double(kBatches)},
                  {"ops_per_batch", double(kOps)},
                  {"batches_per_sec", kBatches / (r.feed.wall_ms / 1e3)},
                  {"bytes_written", double(r.journal.bytes_written)},
                  {"fsyncs", double(r.journal.fsyncs)},
                  {"slowdown_vs_off", r.feed.wall_ms / baseline_ms}});
  }

  header("R-S3b", "recovery wall time: batches x snapshot interval");
  std::printf("%-22s %10s %12s %12s %10s\n", "config", "file_kb",
              "recover_ms", "replayed", "snapshot");
  for (const std::uint64_t batches : {64ull, 256ull}) {
    for (const std::uint64_t every : {0ull, 8ull, 32ull}) {
      TempDir dir("b" + std::to_string(batches) + "_" +
                  std::to_string(every));
      const DurableRun built =
          run_durable(dir, batches, kOps, /*fsync=*/false, every);
      // The builder's service is gone; a cold service must rebuild the
      // session purely from the file.
      service::ServiceConfig cfg = base_config();
      cfg.journal.dir = dir.str();
      cfg.journal.fsync = false;
      service::RuleService svc(cfg);
      Timer t;
      const auto reports = svc.recover_journals();
      const double recover_ms = ms(t.elapsed_ns());
      if (reports.size() != 1 || !reports[0].ok ||
          reports[0].fingerprint != built.feed.fingerprint) {
        std::fprintf(stderr, "error: recovery diverged from the builder\n");
        return 1;
      }
      const std::string label =
          "b=" + std::to_string(batches) + "/snap=" + std::to_string(every);
      std::printf("%-22s %10.1f %12.3f %12llu %10s\n", label.c_str(),
                  built.file_bytes / 1024.0, recover_ms,
                  static_cast<unsigned long long>(reports[0].batches),
                  reports[0].from_snapshot ? "yes" : "no");
      json.add_row("recovery/" + label,
                   {{"batches", double(batches)},
                    {"snapshot_every", double(every)},
                    {"file_bytes", double(built.file_bytes)},
                    {"recover_ms", recover_ms},
                    {"replayed_batches", double(reports[0].batches)},
                    {"from_snapshot", reports[0].from_snapshot ? 1.0 : 0.0}});
    }
  }

  {
    JsonReport json5("R-S5");
    const std::uint64_t kReplBatches = 256;
    header("R-S5", "replication ack tax: fsync-only vs semi-sync vs async");
    std::printf("%-14s %10s %12s %10s %10s %12s\n", "mode", "wall_ms",
                "batches/s", "sync", "async", "shipped_kb");
    struct Leg {
      const char* label;
      bool replicate;
      std::uint64_t timeout_ms;
    };
    const Leg legs[] = {
        {"fsync-only", false, 0},
        {"semi-sync", true, 1'000},
        {"async", true, 0},  // degraded mode: ship, never wait
    };
    double fsync_only_ms = 0;
    for (const Leg& leg : legs) {
      TempDir dir(std::string("s5_") + leg.label + "_p");
      TempDir rdir(std::string("s5_") + leg.label + "_r");
      const DurableRun r = run_replicated(dir, rdir, kReplBatches, kOps,
                                          leg.timeout_ms, leg.replicate);
      if (!leg.replicate) fsync_only_ms = r.feed.wall_ms;
      std::printf("%-14s %10.2f %12.0f %10llu %10llu %12.1f\n", leg.label,
                  r.feed.wall_ms, kReplBatches / (r.feed.wall_ms / 1e3),
                  static_cast<unsigned long long>(r.repl.sync_commits),
                  static_cast<unsigned long long>(r.repl.async_commits),
                  r.repl.bytes_shipped / 1024.0);
      json5.add_row(std::string("repl/") + leg.label,
                    {{"wall_ms", r.feed.wall_ms},
                     {"batches", double(kReplBatches)},
                     {"ops_per_batch", double(kOps)},
                     {"batches_per_sec", kReplBatches / (r.feed.wall_ms / 1e3)},
                     {"sync_commits", double(r.repl.sync_commits)},
                     {"async_commits", double(r.repl.async_commits)},
                     {"repl_degraded", double(r.repl.repl_degraded)},
                     {"bytes_shipped", double(r.repl.bytes_shipped)},
                     {"ack_tax_vs_fsync_only",
                      fsync_only_ms > 0 ? r.feed.wall_ms / fsync_only_ms
                                        : 1.0}});
    }
  }
  return 0;
}
