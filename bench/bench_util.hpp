// Shared helpers for the experiment harness binaries.
//
// Each bench binary regenerates one table or figure of the (reconstructed)
// PARULEL evaluation — see DESIGN.md's experiment index. Output format is
// aligned text columns so the shapes are readable straight off a terminal
// and diffable across runs.
// Machine-readable output: every bench also writes BENCH_<id>.json next
// to its table (JsonReport below) so per-phase numbers accumulate as a
// trajectory across PRs instead of living only in terminal scrollback.
#pragma once

#include <cstdio>
#include <fstream>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "parulel.hpp"

namespace parulel::bench {

inline RunStats run_sequential(const Program& p, MatcherKind matcher,
                               Strategy strategy = Strategy::Lex,
                               std::uint64_t max_cycles = 10'000'000) {
  EngineConfig cfg;
  cfg.matcher = matcher;
  cfg.strategy = strategy;
  cfg.max_cycles = max_cycles;
  SequentialEngine engine(p, cfg);
  engine.assert_initial_facts();
  return engine.run();
}

inline RunStats run_parallel(const Program& p, unsigned threads,
                             bool trace = false) {
  EngineConfig cfg;
  cfg.threads = threads;
  cfg.matcher = MatcherKind::ParallelTreat;
  cfg.trace_cycles = trace;
  ParallelEngine engine(p, cfg);
  engine.assert_initial_facts();
  return engine.run();
}

inline double ms(std::uint64_t ns) {
  return static_cast<double>(ns) / 1e6;
}

inline void header(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s  %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

/// Collects one JSON row per measured configuration and writes
/// BENCH_<id>.json on destruction: {"bench":id,"rows":[{...},...]}.
/// Rows built from a RunStats carry the full obs run_fields() schema, so
/// per-phase timings land in the file without per-bench field lists.
class JsonReport {
 public:
  explicit JsonReport(std::string id) : id_(std::move(id)) {}
  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;
  ~JsonReport() { write(); }

  /// One row for a full engine run: label + every run_fields() entry.
  /// `extras` appends bench-specific numbers (sizes, speedups, ...).
  void add_run(
      const std::string& label, const RunStats& stats,
      std::initializer_list<std::pair<const char*, double>> extras = {}) {
    obs::JsonWriter w;
    w.begin_object();
    w.field("label", label);
    for (const auto& f : obs::run_fields()) w.field(f.name, stats.*f.member);
    for (const auto& [k, v] : extras) w.field(k, v);
    w.end_object();
    rows_.push_back(w.str());
  }

  /// One row for a distributed run: label + every run_fields() entry,
  /// message accounting, and every fault_fields() entry (prefixed
  /// "faults_") — the same shared schema the trace and metrics
  /// exporters use, so fault counters land in bench JSON for free.
  void add_dist(
      const std::string& label, const DistStats& stats,
      std::initializer_list<std::pair<const char*, double>> extras = {}) {
    obs::JsonWriter w;
    w.begin_object();
    w.field("label", label);
    for (const auto& f : obs::run_fields()) {
      w.field(f.name, stats.run.*f.member);
    }
    w.field("messages", stats.messages);
    w.field("broadcasts", stats.broadcasts);
    for (const auto& f : obs::fault_fields()) {
      w.field("faults_" + std::string(f.name), stats.faults.*f.member);
    }
    for (const auto& [k, v] : extras) w.field(k, v);
    w.end_object();
    rows_.push_back(w.str());
  }

  /// One row for a rule-service measurement: label + every
  /// service_fields() entry (requests, batches, rejections, queue
  /// depths, latency percentiles), same shared schema as the trace and
  /// metrics exporters.
  void add_service(
      const std::string& label, const ServiceStats& stats,
      std::initializer_list<std::pair<const char*, double>> extras = {}) {
    obs::JsonWriter w;
    w.begin_object();
    w.field("label", label);
    for (const auto& f : obs::service_fields()) {
      w.field(f.name, stats.*f.member);
    }
    for (const auto& [k, v] : extras) w.field(k, v);
    w.end_object();
    rows_.push_back(w.str());
  }

  /// One row for a TCP front-end measurement: label + every
  /// net_fields() entry (connection lifecycle, wire volume, protection
  /// counters), same shared schema as the metrics exporter.
  void add_net(
      const std::string& label, const NetStats& stats,
      std::initializer_list<std::pair<const char*, double>> extras = {}) {
    obs::JsonWriter w;
    w.begin_object();
    w.field("label", label);
    for (const auto& f : obs::net_fields()) {
      w.field(f.name, stats.*f.member);
    }
    for (const auto& [k, v] : extras) w.field(k, v);
    w.end_object();
    rows_.push_back(w.str());
  }

  /// One free-form row of bench-specific numbers.
  void add_row(const std::string& label,
               std::initializer_list<std::pair<const char*, double>> fields) {
    obs::JsonWriter w;
    w.begin_object();
    w.field("label", label);
    for (const auto& [k, v] : fields) w.field(k, v);
    w.end_object();
    rows_.push_back(w.str());
  }

  void write() const {
    const std::string path = "BENCH_" + id_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    obs::JsonWriter w;
    w.begin_object();
    w.field("bench", id_);
    w.end_object();
    // Splice rows into the object by hand: rows are pre-serialized.
    std::string doc = w.str();
    doc.pop_back();  // drop '}'
    doc += ",\"rows\":[";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (i) doc += ',';
      doc += rows_[i];
    }
    doc += "]}";
    out << doc << "\n";
    std::printf("[json] wrote %s (%zu rows)\n", path.c_str(), rows_.size());
  }

 private:
  std::string id_;
  std::vector<std::string> rows_;
};

}  // namespace parulel::bench
