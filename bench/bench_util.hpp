// Shared helpers for the experiment harness binaries.
//
// Each bench binary regenerates one table or figure of the (reconstructed)
// PARULEL evaluation — see DESIGN.md's experiment index. Output format is
// aligned text columns so the shapes are readable straight off a terminal
// and diffable across runs.
#pragma once

#include <cstdio>
#include <string>

#include "parulel.hpp"

namespace parulel::bench {

inline RunStats run_sequential(const Program& p, MatcherKind matcher,
                               Strategy strategy = Strategy::Lex,
                               std::uint64_t max_cycles = 10'000'000) {
  EngineConfig cfg;
  cfg.matcher = matcher;
  cfg.strategy = strategy;
  cfg.max_cycles = max_cycles;
  SequentialEngine engine(p, cfg);
  engine.assert_initial_facts();
  return engine.run();
}

inline RunStats run_parallel(const Program& p, unsigned threads,
                             bool trace = false) {
  EngineConfig cfg;
  cfg.threads = threads;
  cfg.matcher = MatcherKind::ParallelTreat;
  cfg.trace_cycles = trace;
  ParallelEngine engine(p, cfg);
  engine.assert_initial_facts();
  return engine.run();
}

inline double ms(std::uint64_t ns) {
  return static_cast<double>(ns) / 1e6;
}

inline void header(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s  %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

}  // namespace parulel::bench
