// R-S2 — Networked rule service: TCP throughput and client-visible
// latency as connections x pipelining depth x batch size vary.
//
// An in-process NetServer fronts one shared RuleService; C client
// threads each dial it with the blocking NetClient, open a private
// session, and stream `assert`s with a `run` every B ops, keeping D
// commands in flight (send a window of D, then collect the D responses
// in order — the server guarantees 1:1 request:response ordering).
//
// Reported shapes:
//   - throughput (protocol ops/s) should rise with connections until
//     the single-threaded event loop + synchronous service saturate —
//     the poll loop multiplexes the sockets, but recognize-act work is
//     serialized, so scaling flattens rather than climbing forever;
//   - pipelining depth D amortizes round trips: D=1 pays a full RTT
//     per command, deeper windows approach the server's service rate;
//   - batch size B trades per-run fixpoint amortization against the
//     latency of the window that carries the run.
//
// Latency is measured client-side per pipeline window (send first byte
// of the window -> last response of the window read); p50/p99 are over
// all windows of all clients. Server-side NetStats for every
// configuration land in BENCH_R-S2.json through the shared net_fields()
// schema.
//
// R-S4 — shard scaling (second phase, BENCH_R-S4.json): the same feed
// against the sharded server at --shards {1, 2, 4}. Each row reports
// BOTH the measured wall-clock throughput and the simulated
// ideal-multicore model of DESIGN.md's substitution #2: shards share
// nothing on the data path, so on a P-core host the wall time is the
// SLOWEST shard's busy time (NetStats::busy_ns, accumulated around
// request execution per shard thread) — total_ops / max_shard_busy is
// the modeled ops/s, exactly the per-site slowest-busy makespan idiom
// R-F3 uses. On this repo's single-core reference host the measured
// column cannot scale (every shard thread shares one core); the model
// column is the scaling claim, and `balance` (sum / (shards * max))
// reports how evenly the round-robin spread the work. The durable legs
// (journal on, fsync on/off) are measured honestly even on one core:
// fsync waits are I/O, so per-shard journals genuinely overlap them.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "support/timer.hpp"

using namespace parulel;
using namespace parulel::bench;

namespace {

// Each asserted (item ID new) yields one promote firing at the next
// run, so server work scales with the feed and every run has real
// match/fire work to do.
constexpr const char* kProgram = R"((deftemplate item (slot id) (slot state))
(deftemplate seen (slot id))
(defrule promote
  (item (id ?i) (state new))
  (not (seen (id ?i)))
  =>
  (assert (seen (id ?i))))
)";

constexpr const char* kProgramPath = "bench_s2_program.clp";
constexpr std::size_t kOpsPerClient = 256;

struct ClientResult {
  std::uint64_t ops = 0;                 ///< protocol commands completed
  std::uint64_t errors = 0;              ///< `err` responses seen
  std::vector<std::uint64_t> window_ns;  ///< per-window round trips
  bool io_ok = true;
};

ClientResult run_client(std::uint16_t port, unsigned conn_id,
                        std::size_t depth, std::size_t batch,
                        const std::string& name) {
  ClientResult result;
  net::NetClient client;
  if (!client.connect("127.0.0.1", port)) {
    result.io_ok = false;
    return result;
  }

  // The command stream: open, a batched assert/run feed, close.
  std::vector<std::string> cmds;
  cmds.push_back("open " + name + " " + std::string(kProgramPath));
  for (std::size_t i = 0; i < kOpsPerClient; ++i) {
    cmds.push_back("assert " + name + " item " +
                   std::to_string(conn_id * 1'000'000 + i) + " new");
    if ((i + 1) % batch == 0) cmds.push_back("run " + name);
  }
  cmds.push_back("run " + name);
  cmds.push_back("close " + name);

  std::size_t i = 0;
  net::Response response;
  while (i < cmds.size()) {
    const std::size_t window = std::min(depth, cmds.size() - i);
    Timer t;
    for (std::size_t j = 0; j < window; ++j) {
      if (!client.send_line(cmds[i + j])) {
        result.io_ok = false;
        return result;
      }
    }
    for (std::size_t j = 0; j < window; ++j) {
      if (!client.read_response(response)) {
        result.io_ok = false;
        return result;
      }
      if (!response.ok()) ++result.errors;
      ++result.ops;
    }
    result.window_ns.push_back(t.elapsed_ns());
    i += window;
  }
  return result;
}

std::uint64_t percentile(std::vector<std::uint64_t>& v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t idx =
      static_cast<std::size_t>(q * static_cast<double>(v.size() - 1));
  return v[idx];
}

/// One bench run's shape. `journal_dir` empty means a plain
/// (non-durable) server; `names` gives each client its session name
/// (empty = everyone uses the connection-local "s").
struct BenchConfig {
  unsigned connections = 1;
  std::size_t depth = 8;
  std::size_t batch = 8;
  unsigned shards = 1;
  std::string journal_dir;
  bool fsync = false;
  std::vector<std::string> names;
};

struct SweepResult {
  double wall_ms = 0;
  double ops_per_sec = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t errors = 0;
  std::uint64_t total_ops = 0;
  NetStats net;
  std::vector<NetStats> shard_rows;
  bool ok = true;
};

SweepResult run_config(const BenchConfig& bc) {
  net::NetServerConfig cfg;
  cfg.max_connections = bc.connections + 8;
  cfg.shards = bc.shards;
  if (!bc.journal_dir.empty()) {
    std::filesystem::remove_all(bc.journal_dir);
    std::filesystem::create_directories(bc.journal_dir);
    cfg.service.journal.dir = bc.journal_dir;
    cfg.service.journal.fsync = bc.fsync;
  }
  net::NetServer server(cfg);
  SweepResult result;
  if (!server.start()) {
    std::fprintf(stderr, "error: %s\n", server.error().c_str());
    result.ok = false;
    return result;
  }
  std::thread server_thread([&server] { server.run(); });

  Timer wall;
  std::vector<std::thread> threads;
  std::vector<ClientResult> clients(bc.connections);
  for (unsigned c = 0; c < bc.connections; ++c) {
    const std::string name =
        bc.names.empty() ? std::string("s") : bc.names[c % bc.names.size()];
    threads.emplace_back(
        [&clients, c, &bc, name, port = server.port()] {
          clients[c] = run_client(port, c, bc.depth, bc.batch, name);
        });
  }
  for (auto& t : threads) t.join();
  result.wall_ms = ms(wall.elapsed_ns());

  server.stop();
  server_thread.join();
  result.net = server.stats_snapshot();
  result.shard_rows = server.shard_stats();

  std::vector<std::uint64_t> windows;
  for (ClientResult& c : clients) {
    result.ok = result.ok && c.io_ok;
    result.total_ops += c.ops;
    result.errors += c.errors;
    windows.insert(windows.end(), c.window_ns.begin(), c.window_ns.end());
  }
  result.ops_per_sec =
      static_cast<double>(result.total_ops) / (result.wall_ms / 1e3);
  result.p50_ns = percentile(windows, 0.50);
  result.p99_ns = percentile(windows, 0.99);
  return result;
}

/// DESIGN.md substitution #2: the ideal-P-core model. Shards share
/// nothing on the data path, so modeled wall time = the slowest shard's
/// busy_ns (its request-execution makespan); modeled throughput =
/// total_ops / that makespan. `balance` = sum / (shards * max): 1.0 is a
/// perfectly even spread, 1/shards is all work on one shard.
struct ShardModel {
  std::uint64_t max_busy_ns = 0;
  std::uint64_t sum_busy_ns = 0;
  double modeled_ops_per_sec = 0;
  double balance = 1.0;
};

ShardModel shard_model(const SweepResult& r) {
  ShardModel m;
  for (const NetStats& row : r.shard_rows) {
    m.max_busy_ns = std::max(m.max_busy_ns, row.busy_ns);
    m.sum_busy_ns += row.busy_ns;
  }
  if (m.max_busy_ns > 0) {
    m.modeled_ops_per_sec = static_cast<double>(r.total_ops) /
                            (static_cast<double>(m.max_busy_ns) / 1e9);
    m.balance = static_cast<double>(m.sum_busy_ns) /
                (static_cast<double>(r.shard_rows.size()) *
                 static_cast<double>(m.max_busy_ns));
  }
  return m;
}

}  // namespace

int main() {
  header("R-S2", "networked rule service: connections x depth x batch");

  {
    std::ofstream program(kProgramPath);
    if (!program) {
      std::fprintf(stderr, "error: cannot write %s\n", kProgramPath);
      return 1;
    }
    program << kProgram;
  }

  bool all_ok = true;
  {
    JsonReport json("R-S2");
    std::printf("\nfeed: %zu asserts/connection, window latency is one "
                "pipeline round trip\n\n",
                kOpsPerClient);
    std::printf("%6s %6s %6s %9s %11s %10s %10s %5s\n", "conns", "depth",
                "batch", "wall_ms", "ops/s", "p50_us", "p99_us", "errs");

    for (const unsigned connections : {1u, 2u, 4u, 8u}) {
      for (const std::size_t depth : {1u, 8u, 32u}) {
        for (const std::size_t batch : {8u, 64u}) {
          BenchConfig bc;
          bc.connections = connections;
          bc.depth = depth;
          bc.batch = batch;
          const SweepResult r = run_config(bc);
          all_ok = all_ok && r.ok && r.errors == 0;
          std::printf("%6u %6zu %6zu %9.2f %11.0f %10.1f %10.1f %5llu\n",
                      connections, depth, batch, r.wall_ms, r.ops_per_sec,
                      static_cast<double>(r.p50_ns) / 1e3,
                      static_cast<double>(r.p99_ns) / 1e3,
                      static_cast<unsigned long long>(r.errors));
          json.add_net("net/c" + std::to_string(connections) + "/d" +
                           std::to_string(depth) + "/b" +
                           std::to_string(batch),
                       r.net,
                       {{"connections", static_cast<double>(connections)},
                        {"depth", static_cast<double>(depth)},
                        {"batch", static_cast<double>(batch)},
                        {"wall_ms", r.wall_ms},
                        {"ops_per_sec", r.ops_per_sec},
                        {"window_p50_us", static_cast<double>(r.p50_ns) / 1e3},
                        {"window_p99_us", static_cast<double>(r.p99_ns) / 1e3},
                        {"client_errors", static_cast<double>(r.errors)}});
        }
      }
    }
  }

  // ---- R-S4: shard scaling -------------------------------------------
  header("R-S4", "shard scaling: measured + ideal-multicore model");
  {
    JsonReport json("R-S4");
    std::printf("\nmodel ops/s = total_ops / slowest-shard busy_ns "
                "(DESIGN.md substitution #2);\nbalance = sum busy / "
                "(shards x max busy), 1.00 = even spread\n\n");
    std::printf("%6s %6s %6s %9s %11s %11s %7s %5s\n", "shards", "conns",
                "depth", "wall_ms", "ops/s", "model/s", "balance", "errs");

    // Scaling legs: plain server, session names are connection-local so
    // every connection's work runs wholly on its round-robin shard.
    // The speedup summary keys on conns=8 (two connections per shard at
    // shards=4): with one connection per shard a single slow shard
    // dominates the makespan, so the 2-per-shard spread is the fairer
    // balance for the scaling claim.
    double modeled_at[5] = {0, 0, 0, 0, 0};  // index = shards, conns=8 d=32
    for (const unsigned shards : {1u, 2u, 4u}) {
      for (const unsigned connections : {4u, 8u}) {
        for (const std::size_t depth : {8u, 32u}) {
          BenchConfig bc;
          bc.connections = connections;
          bc.depth = depth;
          bc.batch = 8;
          bc.shards = shards;
          const SweepResult r = run_config(bc);
          const ShardModel m = shard_model(r);
          all_ok = all_ok && r.ok && r.errors == 0;
          if (connections == 8 && depth == 32) {
            modeled_at[shards] = m.modeled_ops_per_sec;
          }
          std::printf("%6u %6u %6zu %9.2f %11.0f %11.0f %7.2f %5llu\n",
                      shards, connections, depth, r.wall_ms, r.ops_per_sec,
                      m.modeled_ops_per_sec, m.balance,
                      static_cast<unsigned long long>(r.errors));
          json.add_net(
              "scale/s" + std::to_string(shards) + "/c" +
                  std::to_string(connections) + "/d" + std::to_string(depth),
              r.net,
              {{"shards", static_cast<double>(shards)},
               {"connections", static_cast<double>(connections)},
               {"depth", static_cast<double>(depth)},
               {"batch", 8.0},
               {"wall_ms", r.wall_ms},
               {"ops_per_sec", r.ops_per_sec},
               {"modeled_ops_per_sec", m.modeled_ops_per_sec},
               {"max_shard_busy_ms", ms(m.max_busy_ns)},
               {"sum_shard_busy_ms", ms(m.sum_busy_ns)},
               {"busy_balance", m.balance},
               {"client_errors", static_cast<double>(r.errors)}});
        }
      }
    }

    // Fsync-concurrency legs: durable server, one pinned session name
    // per client chosen so the four names land on four distinct shards
    // (service::shard_for_name anchors in test_journal.cpp). fsync
    // waits are I/O, not CPU, so per-shard journals overlap them and
    // even the MEASURED column can move on a single core.
    std::printf("\ndurable (journaled) legs, conns=4 depth=8 batch=8, one "
                "pinned session/client:\n\n");
    std::printf("%6s %6s %9s %11s %11s %9s %5s\n", "shards", "fsync",
                "wall_ms", "ops/s", "model/s", "forwards", "errs");
    const std::vector<std::string> pinned = {"s", "t", "a", "b"};
    for (const unsigned shards : {1u, 4u}) {
      for (const bool fsync : {false, true}) {
        BenchConfig bc;
        bc.connections = 4;
        bc.depth = 8;
        bc.batch = 8;
        bc.shards = shards;
        bc.journal_dir = "bench_s4_journal";
        bc.fsync = fsync;
        bc.names = pinned;
        const SweepResult r = run_config(bc);
        const ShardModel m = shard_model(r);
        all_ok = all_ok && r.ok && r.errors == 0;
        std::printf("%6u %6s %9.2f %11.0f %11.0f %9llu %5llu\n", shards,
                    fsync ? "on" : "off", r.wall_ms, r.ops_per_sec,
                    m.modeled_ops_per_sec,
                    static_cast<unsigned long long>(r.net.forwarded),
                    static_cast<unsigned long long>(r.errors));
        json.add_net(
            "fsync/s" + std::to_string(shards) + "/" +
                (fsync ? "on" : "off"),
            r.net,
            {{"shards", static_cast<double>(shards)},
             {"connections", 4.0},
             {"depth", 8.0},
             {"batch", 8.0},
             {"fsync", fsync ? 1.0 : 0.0},
             {"wall_ms", r.wall_ms},
             {"ops_per_sec", r.ops_per_sec},
             {"modeled_ops_per_sec", m.modeled_ops_per_sec},
             {"max_shard_busy_ms", ms(m.max_busy_ns)},
             {"busy_balance", m.balance},
             {"client_errors", static_cast<double>(r.errors)}});
      }
    }
    std::filesystem::remove_all("bench_s4_journal");

    const double speedup2 =
        modeled_at[1] > 0 ? modeled_at[2] / modeled_at[1] : 0;
    const double speedup4 =
        modeled_at[1] > 0 ? modeled_at[4] / modeled_at[1] : 0;
    std::printf("\nmodeled speedup vs 1 shard (conns=8, depth=32): "
                "2 shards %.2fx, 4 shards %.2fx\n",
                speedup2, speedup4);
    json.add_row("summary/modeled_speedup",
                 {{"shards2_vs_1", speedup2}, {"shards4_vs_1", speedup4}});
  }

  if (!all_ok) {
    std::fprintf(stderr, "error: a client saw I/O failures or `err` "
                         "responses\n");
    return 1;
  }
  return 0;
}
