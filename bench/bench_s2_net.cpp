// R-S2 — Networked rule service: TCP throughput and client-visible
// latency as connections x pipelining depth x batch size vary.
//
// An in-process NetServer fronts one shared RuleService; C client
// threads each dial it with the blocking NetClient, open a private
// session, and stream `assert`s with a `run` every B ops, keeping D
// commands in flight (send a window of D, then collect the D responses
// in order — the server guarantees 1:1 request:response ordering).
//
// Reported shapes:
//   - throughput (protocol ops/s) should rise with connections until
//     the single-threaded event loop + synchronous service saturate —
//     the poll loop multiplexes the sockets, but recognize-act work is
//     serialized, so scaling flattens rather than climbing forever;
//   - pipelining depth D amortizes round trips: D=1 pays a full RTT
//     per command, deeper windows approach the server's service rate;
//   - batch size B trades per-run fixpoint amortization against the
//     latency of the window that carries the run.
//
// Latency is measured client-side per pipeline window (send first byte
// of the window -> last response of the window read); p50/p99 are over
// all windows of all clients. Server-side NetStats for every
// configuration land in BENCH_R-S2.json through the shared net_fields()
// schema.
#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "support/timer.hpp"

using namespace parulel;
using namespace parulel::bench;

namespace {

// Each asserted (item ID new) yields one promote firing at the next
// run, so server work scales with the feed and every run has real
// match/fire work to do.
constexpr const char* kProgram = R"((deftemplate item (slot id) (slot state))
(deftemplate seen (slot id))
(defrule promote
  (item (id ?i) (state new))
  (not (seen (id ?i)))
  =>
  (assert (seen (id ?i))))
)";

constexpr const char* kProgramPath = "bench_s2_program.clp";
constexpr std::size_t kOpsPerClient = 256;

struct ClientResult {
  std::uint64_t ops = 0;                 ///< protocol commands completed
  std::uint64_t errors = 0;              ///< `err` responses seen
  std::vector<std::uint64_t> window_ns;  ///< per-window round trips
  bool io_ok = true;
};

ClientResult run_client(std::uint16_t port, unsigned conn_id,
                        std::size_t depth, std::size_t batch) {
  ClientResult result;
  net::NetClient client;
  if (!client.connect("127.0.0.1", port)) {
    result.io_ok = false;
    return result;
  }

  // The command stream: open, a batched assert/run feed, close.
  std::vector<std::string> cmds;
  cmds.push_back("open s " + std::string(kProgramPath));
  for (std::size_t i = 0; i < kOpsPerClient; ++i) {
    cmds.push_back("assert s item " +
                   std::to_string(conn_id * 1'000'000 + i) + " new");
    if ((i + 1) % batch == 0) cmds.push_back("run s");
  }
  cmds.push_back("run s");
  cmds.push_back("close s");

  std::size_t i = 0;
  net::Response response;
  while (i < cmds.size()) {
    const std::size_t window = std::min(depth, cmds.size() - i);
    Timer t;
    for (std::size_t j = 0; j < window; ++j) {
      if (!client.send_line(cmds[i + j])) {
        result.io_ok = false;
        return result;
      }
    }
    for (std::size_t j = 0; j < window; ++j) {
      if (!client.read_response(response)) {
        result.io_ok = false;
        return result;
      }
      if (!response.ok()) ++result.errors;
      ++result.ops;
    }
    result.window_ns.push_back(t.elapsed_ns());
    i += window;
  }
  return result;
}

std::uint64_t percentile(std::vector<std::uint64_t>& v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t idx =
      static_cast<std::size_t>(q * static_cast<double>(v.size() - 1));
  return v[idx];
}

struct SweepResult {
  double wall_ms = 0;
  double ops_per_sec = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t errors = 0;
  NetStats net;
  bool ok = true;
};

SweepResult run_config(unsigned connections, std::size_t depth,
                       std::size_t batch) {
  net::NetServerConfig cfg;
  cfg.max_connections = connections + 8;
  net::NetServer server(cfg);
  SweepResult result;
  if (!server.start()) {
    std::fprintf(stderr, "error: %s\n", server.error().c_str());
    result.ok = false;
    return result;
  }
  std::thread server_thread([&server] { server.run(); });

  Timer wall;
  std::vector<std::thread> threads;
  std::vector<ClientResult> clients(connections);
  for (unsigned c = 0; c < connections; ++c) {
    threads.emplace_back([&clients, c, depth, batch, port = server.port()] {
      clients[c] = run_client(port, c, depth, batch);
    });
  }
  for (auto& t : threads) t.join();
  result.wall_ms = ms(wall.elapsed_ns());

  server.stop();
  server_thread.join();
  result.net = server.stats_snapshot();

  std::uint64_t total_ops = 0;
  std::vector<std::uint64_t> windows;
  for (ClientResult& c : clients) {
    result.ok = result.ok && c.io_ok;
    total_ops += c.ops;
    result.errors += c.errors;
    windows.insert(windows.end(), c.window_ns.begin(), c.window_ns.end());
  }
  result.ops_per_sec =
      static_cast<double>(total_ops) / (result.wall_ms / 1e3);
  result.p50_ns = percentile(windows, 0.50);
  result.p99_ns = percentile(windows, 0.99);
  return result;
}

}  // namespace

int main() {
  header("R-S2", "networked rule service: connections x depth x batch");

  {
    std::ofstream program(kProgramPath);
    if (!program) {
      std::fprintf(stderr, "error: cannot write %s\n", kProgramPath);
      return 1;
    }
    program << kProgram;
  }

  JsonReport json("R-S2");
  std::printf("\nfeed: %zu asserts/connection, window latency is one "
              "pipeline round trip\n\n",
              kOpsPerClient);
  std::printf("%6s %6s %6s %9s %11s %10s %10s %5s\n", "conns", "depth",
              "batch", "wall_ms", "ops/s", "p50_us", "p99_us", "errs");

  bool all_ok = true;
  for (const unsigned connections : {1u, 2u, 4u, 8u}) {
    for (const std::size_t depth : {1u, 8u, 32u}) {
      for (const std::size_t batch : {8u, 64u}) {
        const SweepResult r = run_config(connections, depth, batch);
        all_ok = all_ok && r.ok && r.errors == 0;
        std::printf("%6u %6zu %6zu %9.2f %11.0f %10.1f %10.1f %5llu\n",
                    connections, depth, batch, r.wall_ms, r.ops_per_sec,
                    static_cast<double>(r.p50_ns) / 1e3,
                    static_cast<double>(r.p99_ns) / 1e3,
                    static_cast<unsigned long long>(r.errors));
        json.add_net("net/c" + std::to_string(connections) + "/d" +
                         std::to_string(depth) + "/b" +
                         std::to_string(batch),
                     r.net,
                     {{"connections", static_cast<double>(connections)},
                      {"depth", static_cast<double>(depth)},
                      {"batch", static_cast<double>(batch)},
                      {"wall_ms", r.wall_ms},
                      {"ops_per_sec", r.ops_per_sec},
                      {"window_p50_us", static_cast<double>(r.p50_ns) / 1e3},
                      {"window_p99_us", static_cast<double>(r.p99_ns) / 1e3},
                      {"client_errors", static_cast<double>(r.errors)}});
      }
    }
  }

  if (!all_ok) {
    std::fprintf(stderr, "error: a client saw I/O failures or `err` "
                         "responses\n");
    return 1;
  }
  return 0;
}
