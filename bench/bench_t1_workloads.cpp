// R-T1 — Workload characteristics table.
//
// Columns: rules, meta-rules, templates, initial facts, total firings to
// quiescence, peak conflict-set size (under the PARULEL engine).
#include "bench_util.hpp"

using namespace parulel;
using namespace parulel::bench;

int main() {
  header("R-T1", "workload characteristics");

  struct Row {
    workloads::Workload workload;
  };
  const workloads::Workload all[] = {
      workloads::make_tc(64, 160, 7),
      workloads::make_sieve(400, false),
      workloads::make_sieve(400, true),
      workloads::make_waltz(16),
      workloads::make_manners(32, 6, 11),
      workloads::make_synth(4, 60, 12, 13),
  };

  JsonReport json("R-T1");
  std::printf("%-12s %6s %6s %6s %8s %9s %9s\n", "workload", "rules",
              "meta", "tmpls", "facts", "firings", "peak-cs");
  for (const auto& w : all) {
    const Program p = parse_program(w.source);
    const RunStats stats = run_parallel(p, 4);
    std::printf("%-12s %6zu %6zu %6zu %8zu %9llu %9llu\n", w.name.c_str(),
                p.rules.size(), p.meta_rules.size(), p.schema.size(),
                p.initial_facts.size(),
                static_cast<unsigned long long>(stats.total_firings),
                static_cast<unsigned long long>(stats.peak_conflict_set));
    json.add_run(w.name, stats,
                 {{"rules", static_cast<double>(p.rules.size())},
                  {"meta_rules", static_cast<double>(p.meta_rules.size())},
                  {"templates", static_cast<double>(p.schema.size())},
                  {"facts", static_cast<double>(p.initial_facts.size())}});
  }
  return 0;
}
