// Distributed PARULEL: copy-and-constrain over simulated sites.
//
// Runs transitive closure partitioned by path source vertex across a
// configurable number of sites, then checks the result against the
// shared-memory engine and reports the message traffic the distribution
// cost.
//
// Usage: distributed_closure [nodes] [edges] [sites]
#include <cstdlib>
#include <iostream>

#include "parulel.hpp"

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 64;
  const int edges = argc > 2 ? std::atoi(argv[2]) : 160;
  const unsigned sites =
      argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 4;

  const auto workload = parulel::workloads::make_tc(nodes, edges, 97);
  const parulel::Program program =
      parulel::parse_program(workload.source);

  // Shared-memory reference run.
  parulel::EngineConfig cfg;
  cfg.threads = parulel::ThreadPool::default_threads();
  cfg.matcher = parulel::MatcherKind::ParallelTreat;
  parulel::ParallelEngine shared(program, cfg);
  shared.assert_initial_facts();
  const parulel::RunStats shared_stats = shared.run();

  // Distributed run.
  parulel::PartitionScheme scheme(program, workload.partition);
  const auto offending = scheme.validate(program);
  if (!offending.empty()) {
    std::cerr << "partition scheme invalid\n";
    return 1;
  }
  parulel::DistConfig dist_cfg;
  dist_cfg.sites = sites;
  parulel::DistributedEngine dist(program, std::move(scheme), dist_cfg);
  dist.assert_initial_facts();
  const parulel::DistStats dist_stats = dist.run();

  std::cout << "transitive closure: " << workload.description << "\n\n"
            << "shared-memory: " << shared_stats.summary() << "\n"
            << "distributed (" << sites
            << " sites): " << dist_stats.run.summary() << "\n"
            << "  messages=" << dist_stats.messages
            << " broadcasts=" << dist_stats.broadcasts << "\n"
            << "  per-site firings:";
  for (auto f : dist_stats.per_site_firings) std::cout << " " << f;
  std::cout << "\n\n";

  const bool agree =
      dist.global_fingerprint() == shared.wm().content_fingerprint();
  std::cout << "distributed result matches shared-memory: "
            << (agree ? "yes" : "NO") << "\n";
  return agree ? 0 : 1;
}
